// Ablation A2: optimal vs greedy bipartite assignment, and the effect of
// masking above-threshold pairs before solving.
//
// The paper uses scipy's optimal linear sum assignment (Jonker-Volgenant)
// and filters matches above θ afterwards. This ablation quantifies (a) the
// quality gap to a greedy matcher and (b) the gain from masking doomed
// pairs before the solve (DESIGN.md §4.2).
#include <cstdio>

#include "bench_common.h"
#include "embedding/model_zoo.h"
#include "metrics/report.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/str.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  AutoJoinOptions gen = PaperAutoJoinOptions();
  gen.entities_per_set = static_cast<size_t>(flags.GetInt("entities", 120));

  std::printf(
      "=== Ablation A2: assignment algorithm (Auto-Join, Mistral, θ=0.7) "
      "===\n\n");
  auto sets = GenerateAutoJoinBenchmark(gen);
  auto model = MakeModel(ModelKind::kMistral);

  struct Config {
    const char* name;
    AssignmentAlgorithm algorithm;
    bool mask;
  };
  const Config configs[] = {
      {"optimal JV, filter-after (paper/scipy; default)",
       AssignmentAlgorithm::kOptimal, false},
      {"optimal JV + mask-before-solve", AssignmentAlgorithm::kOptimal, true},
      {"greedy + mask", AssignmentAlgorithm::kGreedy, true},
      {"greedy, filter-after", AssignmentAlgorithm::kGreedy, false},
  };

  ReportTable table({"configuration", "Precision", "Recall", "F1",
                     "time (s)"});
  for (const Config& cfg : configs) {
    ValueMatcherOptions opts;
    opts.model = model;
    opts.algorithm = cfg.algorithm;
    opts.mask_before_solve = cfg.mask;
    // Disable the exact pre-pass so the assignment algorithm sees the whole
    // problem — this ablation isolates the solver.
    opts.exact_match_prepass = false;
    Stopwatch watch;
    std::vector<Prf> parts;
    for (const auto& set : sets) {
      parts.push_back(EvaluateAutoJoinSet(set, opts));
    }
    MacroPrf macro = MacroAverage(parts);
    table.AddRow({cfg.name, FormatDouble(macro.precision, 3),
                  FormatDouble(macro.recall, 3), FormatDouble(macro.f1, 3),
                  FormatDouble(watch.ElapsedSeconds(), 2)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nExpected shape: optimal ≥ greedy on F1 (they tie when cost margins "
      "are wide);\nmask-before-solve LOSES to filter-after — under masking "
      "the solver maximizes the\nnumber of sub-θ matches and pairs leftover "
      "values with barely-admissible wrong\npartners. The paper's "
      "solve-then-filter is the right call.\n");
  return 0;
}
