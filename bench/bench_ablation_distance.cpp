// Ablation A3: embedding cosine distance vs classic string distances
// inside the Match Values component.
//
// Table 1 compares embedding families; this ablation adds the baselines an
// engineer would reach for first — edit distance, Jaro-Winkler, n-gram
// Jaccard — showing what the embedding (and its alias knowledge)
// contributes beyond surface similarity.
#include <cstdio>

#include "bench_common.h"
#include "embedding/model_zoo.h"
#include "metrics/report.h"
#include "text/distance.h"
#include "util/flags.h"
#include "util/str.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  AutoJoinOptions gen = PaperAutoJoinOptions();
  gen.entities_per_set = static_cast<size_t>(flags.GetInt("entities", 120));

  std::printf(
      "=== Ablation A3: distance function in Match Values (Auto-Join, "
      "θ=0.7) ===\n\n");
  auto sets = GenerateAutoJoinBenchmark(gen);

  ReportTable table({"distance", "Precision", "Recall", "F1"});

  // Classic string distances. Note: θ=0.7 is calibrated for cosine space;
  // each classic distance gets a reasonable threshold of its own.
  struct Classic {
    StringDistanceKind kind;
    double threshold;
  };
  for (const auto& [kind, threshold] :
       std::initializer_list<Classic>{
           {StringDistanceKind::kNormalizedLevenshtein, 0.45},
           {StringDistanceKind::kJaroWinkler, 0.25},
           {StringDistanceKind::kNgramJaccard, 0.75},
           {StringDistanceKind::kTokenJaccard, 0.6}}) {
    ValueMatcherOptions opts;
    opts.string_distance = MakeStringDistance(kind);
    opts.threshold = threshold;
    std::vector<Prf> parts;
    for (const auto& set : sets) {
      parts.push_back(EvaluateAutoJoinSet(set, opts));
    }
    MacroPrf macro = MacroAverage(parts);
    table.AddRow({std::string(StringDistanceKindToString(kind)) +
                      StrFormat(" (θ=%.2f)", threshold),
                  FormatDouble(macro.precision, 3),
                  FormatDouble(macro.recall, 3), FormatDouble(macro.f1, 3)});
  }

  // The paper's choice: embedding cosine (Mistral profile), θ=0.7.
  {
    ValueMatcherOptions opts;
    opts.model = MakeModel(ModelKind::kMistral);
    opts.threshold = 0.7;
    std::vector<Prf> parts;
    for (const auto& set : sets) {
      parts.push_back(EvaluateAutoJoinSet(set, opts));
    }
    MacroPrf macro = MacroAverage(parts);
    table.AddRow({"embedding cosine, Mistral (θ=0.70)",
                  FormatDouble(macro.precision, 3),
                  FormatDouble(macro.recall, 3), FormatDouble(macro.f1, 3)});
  }

  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nExpected shape: classic distances handle typo/case topics but miss "
      "alias/code\ntopics entirely (no world knowledge), so the embedding "
      "row wins on recall and F1.\n");
  return 0;
}
