// Ablation A4: the engineering choices behind the "no overhead" claim.
//
//   (a) exact-match pre-pass on/off — matching time on the equi-join IMDB
//       workload (this is what makes Fuzzy FD free when nothing is fuzzy);
//   (b) sequential vs component-parallel FD executor;
//   (c) dense vs blocking+sparse assignment on a large fuzzy instance.
#include <cstdio>

#include "bench_common.h"
#include "core/fuzzy_fd.h"
#include "datagen/imdb.h"
#include "embedding/knowledge_base.h"
#include "embedding/model_zoo.h"
#include "fd/aligned_schema.h"
#include "metrics/report.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/str.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  size_t imdb_tuples = static_cast<size_t>(flags.GetInt("tuples", 10000));
  auto model = MakeModel(ModelKind::kMistral);

  // ---------------------------------------------------------- (a) pre-pass
  std::printf(
      "=== Ablation A4a: exact-match pre-pass on the IMDB equi-join "
      "workload (S=%zu) ===\n\n",
      imdb_tuples);
  {
    ImdbOptions gen;
    gen.target_tuples = imdb_tuples;
    ImdbBenchmark bench = GenerateImdb(gen);
    auto aligned = AlignByName(bench.tables);
    if (!aligned.ok()) return 1;

    ReportTable table({"configuration", "match (s)", "FD (s)", "total (s)",
                       "assignment matches"});
    for (bool prepass : {true, false}) {
      FuzzyFdOptions opts;
      opts.matcher.model = model;
      opts.matcher.exact_match_prepass = prepass;
      // Without the pre-pass the join columns form one large assignment
      // problem; route it through blocking+sparse so it stays feasible.
      opts.matcher.max_dense_cells = size_t{1} << 20;
      opts.matcher.blocking.knowledge_base =
          std::make_shared<KnowledgeBase>(KnowledgeBase::BuiltIn());
      FuzzyFdReport report;
      auto result = FuzzyFullDisjunction(opts).RunToTuples(bench.tables,
                                                           *aligned, &report);
      if (!result.ok()) {
        std::fprintf(stderr, "failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      table.AddRow({prepass ? "pre-pass ON (default)" : "pre-pass OFF",
                    FormatDouble(report.match_seconds, 3),
                    FormatDouble(report.fd_seconds, 3),
                    FormatDouble(report.total_seconds(), 3),
                    std::to_string(report.match_stats.assignment_matches)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // ------------------------------------------------------- (b) parallel FD
  std::printf("=== Ablation A4b: sequential vs parallel FD executor ===\n\n");
  {
    ImdbOptions gen;
    gen.target_tuples = imdb_tuples * 2;
    ImdbBenchmark bench = GenerateImdb(gen);
    auto aligned = AlignByName(bench.tables);
    if (!aligned.ok()) return 1;

    ReportTable table({"executor", "FD (s)", "output tuples"});
    for (bool parallel : {false, true}) {
      FuzzyFdReport report;
      auto result = RegularFdBaseline(bench.tables, *aligned, FdOptions(),
                                      parallel, 0, &report);
      if (!result.ok()) return 1;
      table.AddRow({parallel ? "parallel (hardware threads)" : "sequential",
                    FormatDouble(report.fd_seconds, 3),
                    WithThousandsSep(
                        static_cast<int64_t>(result->tuples.size()))});
    }
    std::printf(
        "%s\nParallel gains are bounded by the largest join-graph component "
        "(skewed on\nentity-linked lakes) and by the machine's core count.\n\n",
        table.Render().c_str());
  }

  // --------------------------------------------- (c) dense vs sparse match
  std::printf(
      "=== Ablation A4c: dense vs blocking+sparse assignment on a large "
      "fuzzy instance ===\n\n");
  {
    AutoJoinOptions gen = PaperAutoJoinOptions();
    gen.entities_per_set = 1500;  // ~1300-value columns → ~2M-cell matrices
    // Combinatorial topics only (officials/companies/cities/songs): the
    // alias vocabularies cap out near 60 entities and never get large.
    std::vector<AutoJoinSet> sets;
    for (size_t topic : {13u, 14u, 15u, 16u}) {
      sets.push_back(GenerateAutoJoinSet(topic, gen, 9000 + topic));
    }

    ReportTable table({"solver", "Precision", "Recall", "F1", "time (s)"});
    for (bool sparse : {false, true}) {
      ValueMatcherOptions opts;
      opts.model = model;
      if (sparse) {
        opts.max_dense_cells = 0;  // force the blocking path
        opts.blocking.knowledge_base =
            std::make_shared<KnowledgeBase>(KnowledgeBase::BuiltIn());
      }
      Stopwatch watch;
      std::vector<Prf> parts;
      for (const auto& set : sets) {
        parts.push_back(EvaluateAutoJoinSet(set, opts));
      }
      MacroPrf macro = MacroAverage(parts);
      table.AddRow({sparse ? "blocking + sparse components" : "dense JV",
                    FormatDouble(macro.precision, 3),
                    FormatDouble(macro.recall, 3), FormatDouble(macro.f1, 3),
                    FormatDouble(watch.ElapsedSeconds(), 2)});
    }
    std::printf("%s", table.Render().c_str());
    std::printf(
        "\nExpected shape: the sparse solver trades a little recall "
        "(blocking prunes\ncandidates sharing no key) for a large speedup "
        "on big columns.\n");
  }
  return 0;
}
