// Ablation A1: sensitivity to the matching threshold θ.
//
// The paper reports results at θ = 0.7, "which gives the best results"
// (Sec 3.1, following the thresholds used in the joinability-search
// literature). This sweep regenerates that choice: macro P/R/F1 on the
// Auto-Join benchmark as θ varies from 0.3 to 0.9.
#include <cstdio>

#include "bench_common.h"
#include "embedding/model_zoo.h"
#include "metrics/report.h"
#include "util/flags.h"
#include "util/str.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  AutoJoinOptions gen = PaperAutoJoinOptions();
  gen.entities_per_set = static_cast<size_t>(flags.GetInt("entities", 120));

  std::printf(
      "=== Ablation A1: matching threshold θ (Auto-Join, Mistral profile) "
      "===\n\n");
  auto sets = GenerateAutoJoinBenchmark(gen);
  auto model = MakeModel(ModelKind::kMistral);

  ReportTable table({"θ", "Precision", "Recall", "F1"});
  double best_f1 = -1.0;
  double best_theta = 0.0;
  for (double theta : {0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    ValueMatcherOptions opts;
    opts.model = model;
    opts.threshold = theta;
    std::vector<Prf> parts;
    for (const auto& set : sets) {
      parts.push_back(EvaluateAutoJoinSet(set, opts));
    }
    MacroPrf macro = MacroAverage(parts);
    if (macro.f1 > best_f1) {
      best_f1 = macro.f1;
      best_theta = theta;
    }
    table.AddRow({FormatDouble(theta, 1), FormatDouble(macro.precision, 3),
                  FormatDouble(macro.recall, 3), FormatDouble(macro.f1, 3)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nBest F1 at θ=%.1f. Expected shape: recall rises and precision "
      "falls with θ;\nF1 plateaus around θ≈0.7-0.8 and drops at both ends — "
      "consistent with the\npaper picking θ=0.7 as its best setting.\n",
      best_theta);
  return 0;
}
