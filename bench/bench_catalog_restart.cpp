// Catalog restart benchmark: cold lake build vs warm OpenCatalog.
//
// Generates the standard planted-group lake (datagen/lake.h), then measures
// the three phases of a catalog-backed restart:
//
//   1. COLD build: register every table into a fresh engine and run one
//      discovery probe — the price a catalog-less process pays on every
//      start (sketching the whole lake, interning every value);
//   2. SAVE: SaveCatalog checkpoints the dictionary, code columns, sketches
//      and LSH band keys to disk (atomic manifest commit);
//   3. WARM open: a fresh engine per thread count mmaps the catalog back.
//      The gates are hard: zero columns re-sketched, every table loaded,
//      top-k discovery identical to cold, and one Integrate byte-identical
//      to the cold engine's answer — warm must be a restart, not a rebuild.
//
// Flags:
//   --tables=N --groups=N --group_size=N   lake shape (default 240/24/5)
//   --rows=N --cols=N                      table shape (default 800/6)
//   --overlap=P        member-vs-pool sampling fraction (default 0.8)
//   --reps=N           repetitions, best time kept (default 3)
//   --threads=a,b,c    warm-open sweep (default "1,2,8")
//   --dir=PATH         catalog directory (default: under TMPDIR)
//   --smoke            tiny instance + 1 rep: CI bit-rot guard
//   --json_out=PATH    machine-readable artifact (bench-regression gate)
//
// Warm open is dominated by the dictionary replay + table materialization;
// sketches and band keys load as raw bytes. The speedup over cold grows
// with rows-per-table (sketching is the cold path's dominant term).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "datagen/lake.h"
#include "obs/stats_export.h"
#include "util/rss.h"

using namespace lakefuzz;

namespace {

std::unique_ptr<LakeEngine> MakeEngine(size_t threads) {
  auto engine =
      LakeEngine::Create(EngineOptions().SetNumThreads(threads));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine setup failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(engine).value();
}

std::vector<std::string> CandidateNames(
    const std::vector<DiscoveryCandidate>& candidates) {
  std::vector<std::string> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) out.push_back(c.name);
  return out;
}

bool TablesIdentical(const Table& a, const Table& b) {
  if (a.NumRows() != b.NumRows() || a.NumColumns() != b.NumColumns()) {
    return false;
  }
  for (size_t r = 0; r < a.NumRows(); ++r) {
    for (size_t c = 0; c < a.NumColumns(); ++c) {
      if (!(a.At(r, c) == b.At(r, c))) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  LakeOptions lake_opts;
  lake_opts.num_tables =
      static_cast<size_t>(flags.GetInt("tables", smoke ? 24 : 240));
  lake_opts.num_groups =
      static_cast<size_t>(flags.GetInt("groups", smoke ? 4 : 24));
  lake_opts.group_size =
      static_cast<size_t>(flags.GetInt("group_size", smoke ? 3 : 5));
  lake_opts.rows_per_table =
      static_cast<size_t>(flags.GetInt("rows", smoke ? 40 : 800));
  lake_opts.columns_per_table =
      static_cast<size_t>(flags.GetInt("cols", 6));
  lake_opts.value_overlap = flags.GetDouble("overlap", 0.8);
  const int reps = static_cast<int>(flags.GetInt("reps", smoke ? 1 : 3));
  std::string sweep = flags.GetString("threads", smoke ? "1,2" : "1,2,8");
  std::string json_out = flags.GetString("json_out", "");
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "lakefuzz_bench_catalog")
              .string();
  }
  std::filesystem::remove_all(dir);
  BenchJsonWriter json;

  if (lake_opts.num_tables < lake_opts.num_groups * lake_opts.group_size) {
    std::fprintf(stderr, "lake shape: tables < groups * group_size\n");
    return 1;
  }
  auto lake = GenerateLake(lake_opts);
  std::printf(
      "=== catalog restart: cold build vs warm mmap open ===\n"
      "%zu tables, %zu x %zu cells each, catalog dir %s\n\n",
      lake.tables.size(), lake_opts.rows_per_table,
      lake_opts.columns_per_table, dir.c_str());

  const std::string probe = lake.groups[0][0];
  const size_t k = lake_opts.group_size;
  RequestOptions integrate_req;
  integrate_req.holistic_alignment = false;
  // One planted group integrates cheaply and deterministically — the
  // byte-identity gate for warm engines.
  const std::vector<std::string> integrate_names = lake.groups[0];

  std::vector<size_t> sweep_threads;
  for (const std::string& part : Split(sweep, ',')) {
    size_t t = 0;
    if (!ParseThreadCount(part, &t)) {
      std::fprintf(stderr, "--threads: skipping invalid entry \"%s\"\n",
                   part.c_str());
      continue;
    }
    sweep_threads.push_back(t);
  }
  std::stable_partition(sweep_threads.begin(), sweep_threads.end(),
                        [](size_t t) { return t == 1; });
  if (sweep_threads.empty() || sweep_threads.front() != 1) {
    std::fprintf(stderr, "--threads must include 1 (the serial baseline)\n");
    return 1;
  }

  // ---- phase 1: cold build (serial — the restart price being amortized).
  BenchRunStats cold_run;
  double cold_ms = 1e100;
  std::unique_ptr<LakeEngine> cold_engine;
  std::vector<std::string> cold_topk;
  for (int rep = 0; rep < reps; ++rep) {
    const size_t rss_before = CurrentRssBytes();
    auto engine = MakeEngine(1);
    Stopwatch watch;
    for (const auto& t : lake.tables) {
      Status s = engine->RegisterTable(t.name(), t);
      if (!s.ok()) {
        std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    auto top = engine->DiscoverUnionable(probe, k);
    const double ms = watch.ElapsedMillis();
    if (!top.ok()) {
      std::fprintf(stderr, "cold discovery failed: %s\n",
                   top.status().ToString().c_str());
      return 1;
    }
    cold_run.unit_ms.push_back(ms);
    if (ms < cold_ms) cold_ms = ms;
    cold_topk = CandidateNames(*top);
    if (cold_engine == nullptr) {
      cold_engine = std::move(engine);
      const size_t rss_after = CurrentRssBytes();
      json.AddFromStats(
          "catalog_cold_build", 1, cold_run,
          {{"build_ms", ms},
           {"tables", static_cast<double>(lake.tables.size())},
           {"rss_delta_mb",
            rss_after > rss_before
                ? static_cast<double>(rss_after - rss_before) / (1 << 20)
                : 0.0}});
    }
  }
  std::printf("cold build t=1: %.1f ms (%zu tables sketched + interned)\n",
              cold_ms, lake.tables.size());

  auto cold_integrated = cold_engine->Integrate(integrate_names,
                                                integrate_req);
  if (!cold_integrated.ok()) {
    std::fprintf(stderr, "cold integrate failed: %s\n",
                 cold_integrated.status().ToString().c_str());
    return 1;
  }

  // ---- phase 2: save.
  Stopwatch save_watch;
  auto saved = cold_engine->SaveCatalog(dir);
  const double save_ms = save_watch.ElapsedMillis();
  if (!saved.ok()) {
    std::fprintf(stderr, "SaveCatalog failed: %s\n",
                 saved.status().ToString().c_str());
    return 1;
  }
  BenchRunStats save_run;
  save_run.unit_ms.push_back(save_ms);
  json.AddFromStats(
      "catalog_save", 1, save_run,
      {{"save_ms", save_ms},
       {"bytes_written", static_cast<double>(saved->bytes_written)},
       {"tables_written", static_cast<double>(saved->tables_written)},
       {"columns_resketched",
        static_cast<double>(saved->columns_resketched)}});
  std::printf("save: %.1f ms, %.2f MB written, %zu tables\n", save_ms,
              static_cast<double>(saved->bytes_written) / (1 << 20),
              saved->tables_written);

  // ---- phase 3: warm open sweep. Every gate is fatal: this artifact
  // certifies restart correctness, not just speed.
  for (size_t t : sweep_threads) {
    BenchRunStats run;
    double warm_ms = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      auto engine = MakeEngine(t);
      Stopwatch watch;
      auto opened = engine->OpenCatalog(dir);
      const double open_ms = watch.ElapsedMillis();
      if (!opened.ok()) {
        std::fprintf(stderr, "OpenCatalog failed at t=%zu: %s\n", t,
                     opened.status().ToString().c_str());
        return 1;
      }
      run.unit_ms.push_back(open_ms);
      if (open_ms < warm_ms) warm_ms = open_ms;
      if (opened->columns_resketched != 0) {
        std::fprintf(stderr,
                     "warm open re-sketched %zu columns (must be 0)\n",
                     opened->columns_resketched);
        return 1;
      }
      if (opened->tables_loaded != lake.tables.size()) {
        std::fprintf(stderr, "warm open loaded %zu of %zu tables\n",
                     opened->tables_loaded, lake.tables.size());
        return 1;
      }
      auto top = engine->DiscoverUnionable(probe, k);
      if (!top.ok() || CandidateNames(*top) != cold_topk) {
        std::fprintf(stderr, "warm top-k differs from cold at t=%zu\n", t);
        return 1;
      }
      auto integrated = engine->Integrate(integrate_names, integrate_req);
      if (!integrated.ok() ||
          !TablesIdentical(integrated->integrated,
                           cold_integrated->integrated)) {
        std::fprintf(stderr,
                     "warm Integrate differs from cold at t=%zu\n", t);
        return 1;
      }
      if (rep + 1 == reps) {
        json.AddFromStats(
            StrFormat("catalog_warm_open_t%zu", t), ResolveNumThreads(t),
            run,
            {{"open_ms", warm_ms},
             {"speedup_vs_cold", cold_ms / warm_ms},
             {"mmap_mb",
              static_cast<double>(opened->mapped_bytes) / (1 << 20)},
             {"peak_rss_mb", PeakRssMb()},
             {"tables", static_cast<double>(opened->tables_loaded)},
             {"resketched",
              static_cast<double>(opened->columns_resketched)}});
      }
    }
    std::printf(
        "warm open t=%zu: %.1f ms (%.2fx vs cold), 0 columns re-sketched, "
        "top-k + Integrate identical\n",
        t, warm_ms, cold_ms / warm_ms);
  }

  // ---- phase 4: read-only replica open. Same identity gates as the warm
  // writer open, plus the refresh fast path (no new generation → the poll
  // must cost a locked CURRENT read, not a reload).
  {
    BenchRunStats run;
    double replica_ms = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      Stopwatch watch;
      auto replica = LakeEngine::OpenReplica(
          dir, EngineOptions().SetNumThreads(1));
      const double open_ms = watch.ElapsedMillis();
      if (!replica.ok()) {
        std::fprintf(stderr, "OpenReplica failed: %s\n",
                     replica.status().ToString().c_str());
        return 1;
      }
      run.unit_ms.push_back(open_ms);
      if (open_ms < replica_ms) replica_ms = open_ms;
      auto top = (*replica)->DiscoverUnionable(probe, k);
      if (!top.ok() || CandidateNames(*top) != cold_topk) {
        std::fprintf(stderr, "replica top-k differs from cold\n");
        return 1;
      }
      auto integrated =
          (*replica)->Integrate(integrate_names, integrate_req);
      if (!integrated.ok() ||
          !TablesIdentical(integrated->integrated,
                           cold_integrated->integrated)) {
        std::fprintf(stderr, "replica Integrate differs from cold\n");
        return 1;
      }
      Stopwatch refresh_watch;
      auto refreshed = (*replica)->RefreshReplica();
      const double refresh_ms = refresh_watch.ElapsedMillis();
      if (!refreshed.ok() ||
          refreshed->generation != (*replica)->catalog_generation()) {
        std::fprintf(stderr, "replica refresh fast path failed\n");
        return 1;
      }
      if (rep + 1 == reps) {
        json.AddFromStats(
            "catalog_replica_open", 1, run,
            {{"open_ms", replica_ms},
             {"refresh_noop_ms", refresh_ms},
             {"generation",
              static_cast<double>((*replica)->catalog_generation())},
             {"tables",
              static_cast<double>((*replica)->NumTables())}});
        std::printf(
            "replica open t=1: %.1f ms, no-op refresh %.3f ms, top-k + "
            "Integrate identical\n",
            replica_ms, refresh_ms);
      }
    }
  }

  if (!json.WriteFile(json_out)) return 1;
  std::printf(
      "\nExpected shape: warm open skips all sketching (signatures and LSH "
      "band\nkeys load as raw bytes) and replays the dictionary once, so it "
      "beats the\ncold build by a widening margin as rows-per-table grows. "
      "The identity\ngates make the artifact a restart-correctness check, "
      "not just a timer.\n");
  return 0;
}
