// Shared helpers for the paper-reproduction benchmark binaries.
#ifndef LAKEFUZZ_BENCH_BENCH_COMMON_H_
#define LAKEFUZZ_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "assignment/parallel_cost.h"
#include "core/value_matcher.h"
#include "datagen/autojoin.h"
#include "metrics/pair_eval.h"
#include "metrics/prf.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/str.h"

namespace lakefuzz {

/// Per-run counters a benchmark can accumulate alongside its quality score.
struct BenchRunStats {
  /// Wall time of each timed unit (per integration set, per repetition, ...)
  /// in milliseconds; percentiles are computed over these.
  std::vector<double> unit_ms;
  size_t cost_evaluations = 0;
  size_t pruned_evaluations = 0;
  size_t embedding_cache_hits = 0;
  size_t embedding_cache_misses = 0;
};

/// Runs the Match Values component over one Auto-Join set and scores the
/// predicted cross-column value pairs against ground truth — the unit of
/// the paper's Table 1 evaluation. When `run_stats` is non-null, the set's
/// wall time and matcher counters are accumulated into it.
inline Prf EvaluateAutoJoinSet(const AutoJoinSet& set,
                               const ValueMatcherOptions& opts,
                               BenchRunStats* run_stats = nullptr) {
  ValueMatcher matcher(opts);
  Stopwatch watch;
  auto result = matcher.MatchColumns(set.columns);
  double elapsed_ms = watch.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "matcher failed on %s: %s\n", set.name.c_str(),
                 result.status().ToString().c_str());
    return Prf{};
  }
  if (run_stats != nullptr) {
    run_stats->unit_ms.push_back(elapsed_ms);
    run_stats->cost_evaluations += result->stats.cost_evaluations;
    run_stats->pruned_evaluations += result->stats.pruned_evaluations;
    run_stats->embedding_cache_hits += result->stats.embedding_cache_hits;
    run_stats->embedding_cache_misses += result->stats.embedding_cache_misses;
  }
  std::set<ItemPair> predicted;
  for (const auto& [a, b] : CrossColumnPairs(*result)) {
    predicted.insert(MakePair(ValueItemId(a.first, a.second),
                              ValueItemId(b.first, b.second)));
  }
  return EvaluatePairs(predicted, set.GroundTruthPairs());
}

/// Largest thread count the benchmark flags accept — a typo must not
/// request 2^64 workers.
inline constexpr size_t kMaxBenchThreads = 256;

/// Parses one thread-count token: an integer in [0, kMaxBenchThreads]
/// (0 = hardware concurrency). Returns false on malformed or out-of-range
/// input. The single validator behind --threads and --scale_threads.
inline bool ParseThreadCount(const std::string& token, size_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || token[0] == '-' ||
      parsed > kMaxBenchThreads) {
    return false;
  }
  *out = static_cast<size_t>(parsed);
  return true;
}

/// Reads the --threads flag through ParseThreadCount; invalid values get a
/// stderr note and the default.
inline size_t ParseThreadsFlag(const Flags& flags, size_t def = 1) {
  std::string raw = flags.GetString("threads", std::to_string(def));
  size_t threads = def;
  if (!ParseThreadCount(raw, &threads)) {
    std::fprintf(stderr, "--threads=%s invalid (want an integer in [0, %zu]); using %zu\n",
                 raw.c_str(), kMaxBenchThreads, def);
    return def;
  }
  return threads;
}

/// Hardware context of a benchmark run, recorded into every artifact so a
/// flat speedup curve is attributable: a sweep to 8 threads on a container
/// granted 1 core *cannot* show speedups, and the artifact now says so
/// instead of looking like a regression. `cores_granted` is the scheduler
/// affinity count (cgroup/taskset-aware on Linux), which on shared CI
/// runners is often far below `hardware_concurrency`.
struct HardwareInfo {
  size_t hardware_concurrency = 0;
  size_t cores_granted = 0;
};

inline HardwareInfo QueryHardware() {
  HardwareInfo hw;
  hw.hardware_concurrency = std::thread::hardware_concurrency();
  hw.cores_granted = hw.hardware_concurrency;
#if defined(__linux__)
  cpu_set_t mask;
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    hw.cores_granted = static_cast<size_t>(CPU_COUNT(&mask));
  }
#endif
  return hw;
}

/// q-th percentile (q in [0,1]) by linear interpolation; 0 when empty.
inline double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double pos = q * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

/// Collects per-configuration benchmark records and renders them as a JSON
/// object `{"hardware": {...}, "records": [...]}` — the machine-readable
/// artifact (--json_out) that tracks the perf trajectory across PRs. The
/// hardware block makes scaling numbers interpretable (bench/compare_bench.py
/// refuses to enforce speedup gates recorded on a core-starved machine);
/// `samples` per record makes total_s interpretable (it sums that many timed
/// units, so rep-count changes can't masquerade as regressions).
class BenchJsonWriter {
 public:
  struct Record {
    std::string name;
    size_t threads = 1;
    /// Number of timed units behind the percentiles (and summed in total_s).
    size_t samples = 0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double mean_ms = 0.0;
    double total_s = 0.0;
    size_t cost_evaluations = 0;
    size_t pruned_evaluations = 0;
    size_t embedding_cache_hits = 0;
    size_t embedding_cache_misses = 0;
    /// Free-form numeric extras (f1, output tuples, ...), emitted in order.
    std::vector<std::pair<std::string, double>> extra;
  };

  BenchJsonWriter() : hardware_(QueryHardware()) {}

  void Add(Record record) { records_.push_back(std::move(record)); }

  void AddFromStats(const std::string& name, size_t threads,
                    const BenchRunStats& stats,
                    std::vector<std::pair<std::string, double>> extra = {}) {
    Record rec;
    rec.name = name;
    rec.threads = threads;
    rec.samples = stats.unit_ms.size();
    rec.p50_ms = Percentile(stats.unit_ms, 0.50);
    rec.p95_ms = Percentile(stats.unit_ms, 0.95);
    for (double ms : stats.unit_ms) rec.total_s += ms / 1e3;
    if (rec.samples > 0) {
      rec.mean_ms = rec.total_s * 1e3 / static_cast<double>(rec.samples);
    }
    rec.cost_evaluations = stats.cost_evaluations;
    rec.pruned_evaluations = stats.pruned_evaluations;
    rec.embedding_cache_hits = stats.embedding_cache_hits;
    rec.embedding_cache_misses = stats.embedding_cache_misses;
    rec.extra = std::move(extra);
    Add(std::move(rec));
  }

  std::string Render() const {
    std::string out = StrFormat(
        "{\n\"hardware\": {\"hardware_concurrency\": %zu, "
        "\"cores_granted\": %zu},\n\"records\": [\n",
        hardware_.hardware_concurrency, hardware_.cores_granted);
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out += StrFormat(
          "  {\"name\": \"%s\", \"threads\": %zu, \"samples\": %zu, "
          "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"mean_ms\": %.4f, "
          "\"total_s\": %.4f, \"cost_evaluations\": %zu, "
          "\"pruned_evaluations\": %zu, \"embedding_cache_hits\": %zu, "
          "\"embedding_cache_misses\": %zu",
          r.name.c_str(), r.threads, r.samples, r.p50_ms, r.p95_ms, r.mean_ms,
          r.total_s, r.cost_evaluations, r.pruned_evaluations,
          r.embedding_cache_hits, r.embedding_cache_misses);
      for (const auto& [key, value] : r.extra) {
        out += StrFormat(", \"%s\": %.6f", key.c_str(), value);
      }
      out += i + 1 < records_.size() ? "},\n" : "}\n";
    }
    out += "]\n}\n";
    return out;
  }

  /// Writes the array to `path`; returns false (with a stderr note) on I/O
  /// failure — including short writes, so a truncated artifact is never
  /// reported as success. No-op returning true when `path` is empty.
  bool WriteFile(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string body = Render();
    size_t written = std::fwrite(body.data(), 1, body.size(), f);
    bool closed = std::fclose(f) == 0;
    if (written != body.size() || !closed) {
      std::fprintf(stderr, "short write to %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  HardwareInfo hardware_;
  std::vector<Record> records_;
};

/// The benchmark configuration used by all Table-1-family binaries:
/// 31 sets over 17 topics, ~150 entities per set (paper Sec 3.1).
inline AutoJoinOptions PaperAutoJoinOptions() {
  AutoJoinOptions opts;
  opts.num_sets = 31;
  opts.entities_per_set = 150;
  opts.seed = 42;
  return opts;
}

}  // namespace lakefuzz

#endif  // LAKEFUZZ_BENCH_BENCH_COMMON_H_
