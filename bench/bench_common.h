// Shared helpers for the paper-reproduction benchmark binaries.
#ifndef LAKEFUZZ_BENCH_BENCH_COMMON_H_
#define LAKEFUZZ_BENCH_BENCH_COMMON_H_

#include <cstdio>

#include "core/value_matcher.h"
#include "datagen/autojoin.h"
#include "metrics/pair_eval.h"
#include "metrics/prf.h"

namespace lakefuzz {

/// Runs the Match Values component over one Auto-Join set and scores the
/// predicted cross-column value pairs against ground truth — the unit of
/// the paper's Table 1 evaluation.
inline Prf EvaluateAutoJoinSet(const AutoJoinSet& set,
                               const ValueMatcherOptions& opts) {
  ValueMatcher matcher(opts);
  auto result = matcher.MatchColumns(set.columns);
  if (!result.ok()) {
    std::fprintf(stderr, "matcher failed on %s: %s\n", set.name.c_str(),
                 result.status().ToString().c_str());
    return Prf{};
  }
  std::set<ItemPair> predicted;
  for (const auto& [a, b] : CrossColumnPairs(*result)) {
    predicted.insert(MakePair(ValueItemId(a.first, a.second),
                              ValueItemId(b.first, b.second)));
  }
  return EvaluatePairs(predicted, set.GroundTruthPairs());
}

/// The benchmark configuration used by all Table-1-family binaries:
/// 31 sets over 17 topics, ~150 entities per set (paper Sec 3.1).
inline AutoJoinOptions PaperAutoJoinOptions() {
  AutoJoinOptions opts;
  opts.num_sets = 31;
  opts.entities_per_set = 150;
  opts.seed = 42;
  return opts;
}

}  // namespace lakefuzz

#endif  // LAKEFUZZ_BENCH_BENCH_COMMON_H_
