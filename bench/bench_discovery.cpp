// Lake-scale discovery benchmark: sketch-index build + top-k query.
//
// Generates a lake of planted unionable groups plus noise tables
// (datagen/lake.h), registers it into a LakeEngine with deferred discovery
// (DiscoveryOptions::build_at_register = false), then measures
//
//   1. index BUILD: the first discovery call bulk-builds the sketch + LSH
//      index over the whole lake, parallelized over (table, column) tasks
//      on the session pool — swept across engine thread counts, with the
//      top-k result asserted identical at every setting;
//   2. QUERY: per-call latency of DiscoverUnionable at k = group size over
//      every planted member, plus the achieved recall of planted partners
//      (gated at >= 0.9 — the artifact stays honest about quality, not
//      just speed).
//
// Flags:
//   --tables=N --groups=N --group_size=N   lake shape (default 240/24/5)
//   --rows=N --cols=N                      table shape (default 800/6)
//   --overlap=P        member-vs-pool sampling fraction (default 0.8)
//   --reps=N           repetitions, best build kept (default 3)
//   --threads=a,b,c    build sweep (default "1,2,8")
//   --smoke            tiny instance + 1 rep: CI bit-rot guard
//   --json_out=PATH    machine-readable artifact (bench-regression gate)
//
// On a single-core runner the build sweep collapses to ~serial time; the
// committed artifact records whatever the baseline machine produced.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "datagen/lake.h"

using namespace lakefuzz;

namespace {

std::unique_ptr<LakeEngine> MakeEngine(size_t threads) {
  auto engine = LakeEngine::Create(
      EngineOptions().SetNumThreads(threads).SetDiscovery(
          DiscoveryOptions().SetBuildAtRegister(false)));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine setup failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(engine).value();
}

void RegisterLake(LakeEngine* engine, const GeneratedLake& lake) {
  for (const auto& t : lake.tables) {
    Status s = engine->RegisterTable(t.name(), t);
    if (!s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
}

std::vector<std::string> CandidateNames(
    const std::vector<DiscoveryCandidate>& candidates) {
  std::vector<std::string> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) out.push_back(c.name);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  LakeOptions lake_opts;
  lake_opts.num_tables =
      static_cast<size_t>(flags.GetInt("tables", smoke ? 24 : 240));
  lake_opts.num_groups =
      static_cast<size_t>(flags.GetInt("groups", smoke ? 4 : 24));
  lake_opts.group_size =
      static_cast<size_t>(flags.GetInt("group_size", smoke ? 3 : 5));
  lake_opts.rows_per_table =
      static_cast<size_t>(flags.GetInt("rows", smoke ? 40 : 800));
  lake_opts.columns_per_table =
      static_cast<size_t>(flags.GetInt("cols", 6));
  lake_opts.value_overlap = flags.GetDouble("overlap", 0.8);
  const int reps = static_cast<int>(flags.GetInt("reps", smoke ? 1 : 3));
  std::string sweep = flags.GetString("threads", smoke ? "1,2" : "1,2,8");
  std::string json_out = flags.GetString("json_out", "");
  BenchJsonWriter json;

  if (lake_opts.num_tables < lake_opts.num_groups * lake_opts.group_size) {
    std::fprintf(stderr, "lake shape: tables < groups * group_size\n");
    return 1;
  }
  auto lake = GenerateLake(lake_opts);
  std::printf(
      "=== discovery: sketch-index build + top-k unionable search ===\n"
      "%zu tables (%zu groups x %zu members + %zu noise), %zu x %zu cells "
      "each, overlap %.2f\n\n",
      lake.tables.size(), lake_opts.num_groups, lake_opts.group_size,
      lake.tables.size() - lake_opts.num_groups * lake_opts.group_size,
      lake_opts.rows_per_table, lake_opts.columns_per_table,
      lake_opts.value_overlap);

  // The reference query: fixed across the thread sweep so top-k identity is
  // checkable. Build time = first discovery call (version-mismatch bulk
  // resync); the single embedded query adds microseconds.
  const std::string probe = lake.groups[0][0];
  const size_t k = lake_opts.group_size;

  // Parse the sweep up front and process t=1 first: it is the serial
  // baseline every speedup_vs_serial is computed against (and the engine
  // later queries run on), so it must exist before any other entry.
  std::vector<size_t> sweep_threads;
  for (const std::string& part : Split(sweep, ',')) {
    size_t t = 0;
    if (!ParseThreadCount(part, &t)) {
      std::fprintf(stderr, "--threads: skipping invalid entry \"%s\"\n",
                   part.c_str());
      continue;
    }
    sweep_threads.push_back(t);
  }
  std::stable_partition(sweep_threads.begin(), sweep_threads.end(),
                        [](size_t t) { return t == 1; });
  if (sweep_threads.empty() || sweep_threads.front() != 1) {
    std::fprintf(stderr, "--threads must include 1 (the serial baseline)\n");
    return 1;
  }

  double serial_build = 1e100;
  std::vector<std::string> reference_topk;
  std::unique_ptr<LakeEngine> query_engine;  // t=1 engine kept for queries
  for (size_t t : sweep_threads) {
    BenchRunStats run;
    double best_build = 1e100;
    size_t indexed_columns = 0;
    for (int rep = 0; rep < reps; ++rep) {
      auto engine = MakeEngine(t);
      RegisterLake(engine.get(), lake);
      Stopwatch watch;
      auto top = engine->DiscoverUnionable(probe, k);
      const double build_ms = watch.ElapsedMillis();
      if (!top.ok()) {
        std::fprintf(stderr, "discovery failed at t=%zu: %s\n", t,
                     top.status().ToString().c_str());
        return 1;
      }
      run.unit_ms.push_back(build_ms);
      best_build = std::min(best_build, build_ms);
      indexed_columns = engine->discovery_index().num_columns();
      // Determinism across build thread counts: same top-k, every rep.
      auto names = CandidateNames(*top);
      if (reference_topk.empty()) {
        reference_topk = names;
      } else if (names != reference_topk) {
        std::fprintf(stderr, "top-k mismatch at t=%zu\n", t);
        return 1;
      }
      if (t == 1 && query_engine == nullptr) {
        query_engine = std::move(engine);
      }
    }
    if (t == 1) serial_build = std::min(serial_build, best_build);
    json.AddFromStats(
        StrFormat("discovery_build_t%zu", t), ResolveNumThreads(t), run,
        {{"build_ms", best_build},
         {"speedup_vs_serial", serial_build / best_build},
         {"tables", static_cast<double>(lake.tables.size())},
         {"indexed_columns", static_cast<double>(indexed_columns)}});
    std::printf(
        "build t=%zu: %.1f ms (%.2fx vs serial), %zu tables / %zu columns "
        "indexed, top-k identical\n",
        t, best_build, serial_build / best_build, lake.tables.size(),
        indexed_columns);
  }
  if (query_engine == nullptr) {
    std::fprintf(stderr, "thread sweep must include 1 (query baseline)\n");
    return 1;
  }

  // Query sweep: every planted member asks for its group at k = group size.
  BenchRunStats query_run;
  size_t expected = 0, found = 0;
  for (const auto& group : lake.groups) {
    for (const auto& member : group) {
      Stopwatch watch;
      auto top = query_engine->DiscoverUnionable(member, k);
      query_run.unit_ms.push_back(watch.ElapsedMillis());
      if (!top.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     top.status().ToString().c_str());
        return 1;
      }
      std::set<std::string> names;
      for (const auto& c : *top) names.insert(c.name);
      for (const auto& partner : group) {
        if (partner == member) continue;
        ++expected;
        found += names.count(partner);
      }
    }
  }
  const double recall =
      static_cast<double>(found) / static_cast<double>(expected);
  json.AddFromStats(
      "discovery_query", 1, query_run,
      {{"recall", recall},
       {"queries", static_cast<double>(query_run.unit_ms.size())},
       {"k", static_cast<double>(k)}});
  std::printf(
      "query: %zu queries, p50 %.3f ms, recall %.3f at k=%zu\n",
      query_run.unit_ms.size(), Percentile(query_run.unit_ms, 0.5), recall,
      k);
  if (recall < 0.9) {
    std::fprintf(stderr, "recall %.3f below the 0.9 gate\n", recall);
    return 1;
  }

  if (!json.WriteFile(json_out)) return 1;
  std::printf(
      "\nExpected shape: bulk index build scales with threads ((table, "
      "column)\nsketch tasks on the session pool) with identical top-k at "
      "every count;\nqueries touch sketches only. On a single-core runner "
      "the build sweep\ncollapses to ~serial time.\n");
  return 0;
}
