// Downstream-task reproduction (paper Sec 3.2, "Downstreaming Task
// Effectiveness"): entity matching over the table integrated by Fuzzy FD
// vs by regular FD, on the ALITE entity-matching benchmark.
//
// Paper:   Fuzzy FD  → P = 86%, R = 85%, F1 = 85%
//          regular FD → P = 79%, R = 83%, F1 = 81%
//
// Evaluation unit: pairs of *input tuples* co-clustered by EM (via FD
// provenance), against planted entity labels — identical integrations are
// thus comparable even when their row granularity differs.
#include <cstdio>

#include "core/fuzzy_fd.h"
#include "datagen/embench.h"
#include "em/entity_matcher.h"
#include "embedding/model_zoo.h"
#include "metrics/pair_eval.h"
#include "metrics/prf.h"
#include "metrics/report.h"
#include "util/flags.h"
#include "util/str.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  size_t num_entities = static_cast<size_t>(flags.GetInt("entities", 400));
  size_t trials = static_cast<size_t>(flags.GetInt("trials", 5));

  std::printf(
      "=== Sec 3.2 (in-text table): Entity matching over integrated tables "
      "===\nALITE EM benchmark (simulated): %zu entities scattered over "
      "%d tables,\naveraged over %zu seeds.\n\n",
      num_entities, 3, trials);

  auto model = MakeModel(ModelKind::kMistral);
  EntityMatcherOptions em_opts;
  em_opts.similarity_threshold = flags.GetDouble("em-threshold", 0.80);
  em_opts.model = model;  // embedding-based cell similarity
  EntityMatcher em(em_opts);

  std::vector<Prf> fuzzy_parts, regular_parts;
  for (size_t trial = 0; trial < trials; ++trial) {
    EmBenchOptions gen;
    gen.num_entities = num_entities;
    gen.seed = 1000 + trial;
    EmBenchmark bench = GenerateEmBenchmark(gen);
    auto aligned = AlignByName(bench.tables);
    if (!aligned.ok()) {
      std::fprintf(stderr, "%s\n", aligned.status().ToString().c_str());
      return 1;
    }

    FuzzyFdOptions opts;
    opts.matcher.model = model;
    auto fuzzy =
        FuzzyFullDisjunction(opts).RunToTuples(bench.tables, *aligned);
    auto regular = RegularFdBaseline(bench.tables, *aligned, FdOptions(),
                                     false, 0, nullptr);
    if (!fuzzy.ok() || !regular.ok()) {
      std::fprintf(stderr, "integration failed on trial %zu\n", trial);
      return 1;
    }
    auto evaluate = [&](const FdResult& fd) {
      Table integrated =
          FdResultsToTable(fd.tuples, aligned->universal_names, "integrated");
      auto clusters = em.Cluster(integrated);
      return EvaluateClustering(ExpandClustersToTids(fd.tuples, clusters),
                                bench.tid_entity);
    };
    fuzzy_parts.push_back(evaluate(*fuzzy));
    regular_parts.push_back(evaluate(*regular));
  }

  MacroPrf fuzzy_macro = MacroAverage(fuzzy_parts);
  MacroPrf regular_macro = MacroAverage(regular_parts);
  ReportTable table(
      {"Integration", "Precision", "Recall", "F1", "paper P/R/F1"});
  table.AddRow({"regular FD (ALITE)", FormatDouble(regular_macro.precision, 2),
                FormatDouble(regular_macro.recall, 2),
                FormatDouble(regular_macro.f1, 2), "0.79/0.83/0.81"});
  table.AddRow({"Fuzzy FD", FormatDouble(fuzzy_macro.precision, 2),
                FormatDouble(fuzzy_macro.recall, 2),
                FormatDouble(fuzzy_macro.f1, 2), "0.86/0.85/0.85"});
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nExpected shape: Fuzzy FD ahead on all three metrics — it merges "
      "the corrupted\njoin values regular FD fragments, giving EM fuller "
      "rows (recall) and enough\nconflicting evidence to reject homonym "
      "false positives (precision).\n");
  return 0;
}
