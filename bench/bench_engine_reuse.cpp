// Engine-reuse benchmark: the session API's reason to exist, measured.
//
// One lake (the 6-table IMDB benchmark), N sequential Integrate calls.
// A LakeEngine pays model construction once and carries its embedding
// cache across calls, so call 1 ("cold") embeds every distinct value and
// calls 2..N ("warm") re-embed nothing; the legacy one-shot facade
// (IntegrateTables) rebuilds the session per call and stays cold forever.
//
//   --tuples=8000   IMDB scale (input tuples across the 6 tables)
//   --calls=5       Integrate calls per engine session
//   --reps=3        sessions (cold-call samples) per configuration
//   --threads=1     engine worker threads (0 = hardware concurrency)
//   --json_out=PATH machine-readable artifact (BENCH_engine_reuse.json)
//
// JSON records: engine_reuse_cold (first call per session),
// engine_reuse_warm (calls 2..N), oneshot_facade (IntegrateTables per
// call). The warm record's match_ms_avg < cold's is the acceptance signal
// for cross-call cache reuse.
//
// The three buckets hold different sample counts (cold: one per session,
// warm: calls-1 per session), so total_s is NOT comparable across records —
// warm's total once read as "slower than cold" purely because it summed 4x
// the calls. Every record therefore carries samples/mean_ms (writer fields)
// plus explicit reps/calls extras; compare mean_ms or p50_ms, never raw
// total_s.
#include <cstdio>

#include "bench_common.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "datagen/imdb.h"
#include "util/flags.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  size_t tuples = static_cast<size_t>(flags.GetInt("tuples", 8000));
  int calls = static_cast<int>(flags.GetInt("calls", 5));
  int reps = static_cast<int>(flags.GetInt("reps", 3));
  size_t threads = ParseThreadsFlag(flags);
  std::string json_out = flags.GetString("json_out", "");
  if (calls < 2) calls = 2;  // warm requires at least one reuse call

  ImdbOptions gen;
  gen.target_tuples = tuples;
  ImdbBenchmark bench = GenerateImdb(gen);
  std::vector<std::string> names;
  for (const auto& t : bench.tables) names.push_back(t.name());

  std::printf(
      "=== Engine reuse: %d Integrate calls per session over the IMDB lake "
      "(%zu input tuples, %zu threads, %d sessions) ===\n\n",
      calls, bench.total_tuples, threads, reps);

  BenchRunStats cold_stats;
  BenchRunStats warm_stats;
  double cold_match_ms = 0.0;
  double warm_match_ms = 0.0;
  size_t result_rows = 0;

  RequestOptions req;
  req.holistic_alignment = false;  // IMDB headers are trustworthy

  for (int rep = 0; rep < reps; ++rep) {
    auto engine = LakeEngine::Create(EngineOptions()
                                         .SetModel(ModelKind::kMistral)
                                         .SetNumThreads(threads));
    if (!engine.ok()) {
      std::fprintf(stderr, "engine setup failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    for (const auto& t : bench.tables) {
      Status s = (*engine)->RegisterTable(t.name(), t);
      if (!s.ok()) {
        std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    for (int call = 0; call < calls; ++call) {
      Stopwatch watch;
      auto result = (*engine)->Integrate(names, req);
      double elapsed_ms = watch.ElapsedMillis();
      if (!result.ok()) {
        std::fprintf(stderr, "call failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      result_rows = result->integrated.NumRows();
      const auto& stats = result->report.match_stats;
      BenchRunStats* bucket = call == 0 ? &cold_stats : &warm_stats;
      bucket->unit_ms.push_back(elapsed_ms);
      bucket->cost_evaluations += stats.cost_evaluations;
      bucket->embedding_cache_hits += stats.embedding_cache_hits;
      bucket->embedding_cache_misses += stats.embedding_cache_misses;
      (call == 0 ? cold_match_ms : warm_match_ms) +=
          result->report.match_seconds * 1e3;
    }
  }
  const double cold_match_avg = cold_match_ms / reps;
  const double warm_match_avg =
      warm_match_ms / (static_cast<double>(reps) * (calls - 1));

  // Baseline: the deprecated one-shot facade, which rebuilds the session
  // (model + empty cache) on every call.
  BenchRunStats oneshot_stats;
  double oneshot_match_ms = 0.0;
  PipelineOptions oneshot_opts;
  oneshot_opts.holistic_alignment = false;
  for (int call = 0; call < calls; ++call) {
    Stopwatch watch;
    auto result = IntegrateTables(bench.tables, oneshot_opts);
    double elapsed_ms = watch.ElapsedMillis();
    if (!result.ok()) {
      std::fprintf(stderr, "one-shot call failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    oneshot_stats.unit_ms.push_back(elapsed_ms);
    oneshot_stats.embedding_cache_hits +=
        result->report.match_stats.embedding_cache_hits;
    oneshot_stats.embedding_cache_misses +=
        result->report.match_stats.embedding_cache_misses;
    oneshot_match_ms += result->report.match_seconds * 1e3;
  }
  const double oneshot_match_avg = oneshot_match_ms / calls;

  std::printf("engine cold call:   p50 %8.2f ms  (match avg %6.2f ms)\n",
              Percentile(cold_stats.unit_ms, 0.5), cold_match_avg);
  std::printf("engine warm calls:  p50 %8.2f ms  (match avg %6.2f ms, "
              "%zu cache hits / %zu misses)\n",
              Percentile(warm_stats.unit_ms, 0.5), warm_match_avg,
              warm_stats.embedding_cache_hits,
              warm_stats.embedding_cache_misses);
  std::printf("one-shot facade:    p50 %8.2f ms  (match avg %6.2f ms)\n",
              Percentile(oneshot_stats.unit_ms, 0.5), oneshot_match_avg);
  std::printf("output: %zu integrated rows per call\n", result_rows);
  if (warm_match_avg < cold_match_avg) {
    std::printf("OK: warm match time below cold (cache reuse pays off)\n");
  } else {
    std::printf("NOTE: warm match time not below cold on this run\n");
  }

  BenchJsonWriter json;
  json.AddFromStats("engine_reuse_cold", threads, cold_stats,
                    {{"match_ms_avg", cold_match_avg},
                     {"reps", static_cast<double>(reps)},
                     {"calls_per_rep", 1.0},
                     {"rows", static_cast<double>(result_rows)}});
  json.AddFromStats("engine_reuse_warm", threads, warm_stats,
                    {{"match_ms_avg", warm_match_avg},
                     {"reps", static_cast<double>(reps)},
                     {"calls_per_rep", static_cast<double>(calls - 1)},
                     {"rows", static_cast<double>(result_rows)}});
  json.AddFromStats("oneshot_facade", threads, oneshot_stats,
                    {{"match_ms_avg", oneshot_match_avg},
                     {"reps", 1.0},
                     {"calls_per_rep", static_cast<double>(calls)},
                     {"rows", static_cast<double>(result_rows)}});
  if (!json.WriteFile(json_out)) return 1;
  return 0;
}
