// Skewed-lake FD benchmark: a single giant join-graph component.
//
// Real lakes are skewed: once fuzzy rewriting merges variants of a shared
// key (or a Gen-T-style reclamation workload links everything through one
// hub value), most tuples collapse into ONE component — and before PR 4 the
// component-parallel executor ran that component on one worker no matter
// how many threads the engine owned. This benchmark builds exactly that
// shape (every tuple shares a hub value; a corrupted key column partitions
// consistency), then sweeps the parallel executor across thread counts.
// Intra-component splitting must keep output byte-identical at every
// setting; the enumeration time column is the one the ROADMAP tracks.
//
// Flags:
//   --tables=N --keys=N --rows_per_key=N   instance shape (default 4/500/2
//                                          → 4000-tuple single component)
//   --corrupt=P        typo probability on key cells (seeded; default 0.15)
//   --reps=N           repetitions, best time kept (default 3)
//   --threads=a,b,c    sweep list (default "1,2,4,8")
//   --smoke            tiny instance + 1 rep: CI bit-rot guard, not a
//                      measurement
//   --json_out=PATH    machine-readable artifact (bench-regression gate)
#include <cstdio>

#include "bench_common.h"
#include "core/fuzzy_fd.h"
#include "datagen/corruption.h"
#include "fd/aligned_schema.h"
#include "obs/stats_export.h"
#include "util/rng.h"
#include "util/str.h"

using namespace lakefuzz;

namespace {

std::vector<Table> MakeSkewLake(size_t num_tables, size_t num_keys,
                                size_t rows_per_key, double corrupt_p,
                                uint64_t seed) {
  Rng rng(seed);
  CorruptionConfig config;
  config.typo = 1.0;
  std::vector<Table> tables;
  for (size_t l = 0; l < num_tables; ++l) {
    Table t("t" + std::to_string(l),
            Schema::FromNames({"key", "hub", "p" + std::to_string(l)}));
    for (size_t k = 0; k < num_keys; ++k) {
      for (size_t r = 0; r < rows_per_key; ++r) {
        std::string key = StrFormat("key_%05zu", k);
        // Shared-key corruption: some copies of the key carry a typo, the
        // noise Auto-Join catalogued between real joinable web tables.
        if (rng.Bernoulli(corrupt_p)) key = Corrupt(&rng, key, config);
        Status s = t.AppendRow(
            {Value::String(std::move(key)), Value::String("hub"),
             Value::String(StrFormat("v%zu_%zu_%zu", l, k, r))});
        if (!s.ok()) {
          std::fprintf(stderr, "%s\n", s.ToString().c_str());
          std::exit(1);
        }
      }
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  size_t num_tables = static_cast<size_t>(flags.GetInt("tables", 4));
  size_t num_keys =
      static_cast<size_t>(flags.GetInt("keys", smoke ? 12 : 500));
  size_t rows_per_key = static_cast<size_t>(flags.GetInt("rows_per_key", 2));
  double corrupt = flags.GetDouble("corrupt", 0.15);
  int reps = static_cast<int>(flags.GetInt("reps", smoke ? 1 : 3));
  std::string sweep = flags.GetString("threads", "1,2,4,8");
  std::string json_out = flags.GetString("json_out", "");
  BenchJsonWriter json;

  FdOptions fd_options;
  // Smoke instances are far below the production split threshold; lower it
  // so the CI bit-rot guard still drives the intra-component machinery.
  if (smoke) fd_options.intra_component_min_size = 2;

  auto tables = MakeSkewLake(num_tables, num_keys, rows_per_key, corrupt,
                             /*seed=*/20260730);
  auto aligned = AlignByName(tables);
  if (!aligned.ok()) {
    std::fprintf(stderr, "%s\n", aligned.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "=== FD skew: one giant component, intra-component thread sweep ===\n"
      "%zu tables x %zu keys x %zu rows/key = %zu tuples, typo p=%.2f\n\n",
      num_tables, num_keys, rows_per_key,
      num_tables * num_keys * rows_per_key, corrupt);

  // Serial reference (the pre-PR4 behavior for a single component).
  FdResult reference;
  double serial_enum = 1e100;
  BenchRunStats serial_run;
  FuzzyFdReport serial_report;
  for (int rep = 0; rep < reps; ++rep) {
    FuzzyFdReport report;
    auto result = RegularFdBaseline(tables, *aligned, fd_options,
                                    /*parallel=*/false, 0, &report);
    if (!result.ok()) {
      std::fprintf(stderr, "serial FD failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    serial_run.unit_ms.push_back(report.fd_stats.enumeration_seconds * 1e3);
    if (report.fd_stats.enumeration_seconds < serial_enum) {
      serial_enum = report.fd_stats.enumeration_seconds;
      serial_report = report;
    }
    reference = std::move(result).value();
  }
  if (serial_report.fd_stats.num_components != 1) {
    std::fprintf(stderr,
                 "instance is not a single component (%zu); the benchmark "
                 "premise is broken\n",
                 serial_report.fd_stats.num_components);
    return 1;
  }
  json.AddFromStats(
      "fd_skew_giant_serial", 1, serial_run,
      {{"enum_s", serial_enum},
       {"output_tuples", static_cast<double>(reference.tuples.size())},
       {"search_nodes",
        static_cast<double>(serial_report.fd_stats.search_nodes)}});
  std::printf("serial: enum %.3f s, %zu tuples, %llu nodes\n", serial_enum,
              reference.tuples.size(),
              static_cast<unsigned long long>(
                  serial_report.fd_stats.search_nodes));

  for (const std::string& part : Split(sweep, ',')) {
    size_t t = 0;
    if (!ParseThreadCount(part, &t)) {
      std::fprintf(stderr, "--threads: skipping invalid entry \"%s\"\n",
                   part.c_str());
      continue;
    }
    double best_enum = 1e100;
    uint64_t intra_tasks = 0;
    FdStats best_stats;
    BenchRunStats run;
    for (int rep = 0; rep < reps; ++rep) {
      FuzzyFdReport report;
      auto result = RegularFdBaseline(tables, *aligned, fd_options,
                                      /*parallel=*/true, t, &report);
      if (!result.ok()) {
        std::fprintf(stderr, "parallel FD failed at t=%zu: %s\n", t,
                     result.status().ToString().c_str());
        return 1;
      }
      run.unit_ms.push_back(report.fd_stats.enumeration_seconds * 1e3);
      if (report.fd_stats.enumeration_seconds < best_enum) {
        best_enum = report.fd_stats.enumeration_seconds;
        intra_tasks = report.fd_stats.intra_tasks;
        best_stats = report.fd_stats;
      }
      // Byte-identity against the serial reference, every rep.
      if (result->tuples.size() != reference.tuples.size()) {
        std::fprintf(stderr, "output size mismatch at t=%zu\n", t);
        return 1;
      }
      for (size_t i = 0; i < reference.tuples.size(); ++i) {
        if (!(result->tuples[i] == reference.tuples[i])) {
          std::fprintf(stderr, "output mismatch at t=%zu tuple %zu\n", t, i);
          return 1;
        }
      }
    }
    // Task-grain evidence from the best rep comes from the shared
    // FdStats→extras mapping (obs/stats_export.h), so this artifact and the
    // engine's /metrics report the same numbers from the same fields.
    const FdTaskProfile& prof = best_stats.task_profile;
    const double tasks_d = prof.tasks > 0 ? static_cast<double>(prof.tasks)
                                          : 1.0;
    std::vector<std::pair<std::string, double>> extras = {
        {"enum_s", best_enum},
        {"speedup_vs_serial", serial_enum / best_enum},
        {"output_tuples", static_cast<double>(reference.tuples.size())}};
    for (auto& kv : FdExecutionExtras(best_stats)) {
      extras.push_back(std::move(kv));
    }
    json.AddFromStats(StrFormat("fd_skew_giant_t%zu", t),
                      ResolveNumThreads(t), run, std::move(extras));
    std::printf(
        "threads=%zu: enum %.3f s (%.2fx vs serial), %llu subtree tasks "
        "(mean %.0f nodes), busy %.3f s / wait %.3f s, output identical\n",
        t, best_enum, serial_enum / best_enum,
        static_cast<unsigned long long>(intra_tasks),
        static_cast<double>(prof.nodes_sum) / tasks_d,
        static_cast<double>(prof.busy_ns) * 1e-9,
        static_cast<double>(prof.wait_ns) * 1e-9);
  }

  if (!json.WriteFile(json_out)) return 1;
  std::printf(
      "\nExpected shape: enumeration scales with threads on the giant "
      "component\n(intra-component subtree tasks), with byte-identical "
      "output at every count.\nOn a single-core runner the sweep rows "
      "collapse to ~serial time.\n");
  return 0;
}
