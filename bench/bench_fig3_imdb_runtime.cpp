// Figure 3 reproduction: runtime of regular Full Disjunction (ALITE) vs
// Fuzzy FD on the IMDB benchmark, as the number of input tuples grows from
// 5K to 30K.
//
// Paper (Fig. 3): both curves almost overlap across the whole range (the
// fuzzy matching step adds no visible overhead on an equi-join workload),
// growing superlinearly to ~4000 s at 30K tuples on their Python/ALITE
// stack. Our absolute numbers are far smaller (compiled C++ vs Python);
// the claims under reproduction are the overlap and the growth shape.
#include <cstdio>

#include "bench_common.h"
#include "core/fuzzy_fd.h"
#include "datagen/imdb.h"
#include "embedding/model_zoo.h"
#include "fd/aligned_schema.h"
#include "metrics/report.h"
#include "util/flags.h"
#include "util/str.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  size_t max_tuples = static_cast<size_t>(flags.GetInt("max-tuples", 30000));
  size_t step = static_cast<size_t>(flags.GetInt("step", 5000));
  int repetitions = static_cast<int>(flags.GetInt("reps", 3));
  size_t threads = ParseThreadsFlag(flags);
  std::string json_out = flags.GetString("json_out", "");
  BenchJsonWriter json;

  std::printf(
      "=== Fig. 3: Runtime comparison of Regular FD (ALITE) with Fuzzy FD "
      "in IMDB Benchmark ===\nS = number of input tuples across the 6 IMDB "
      "tables; times are best of %d runs.\n\n",
      repetitions);

  auto model = MakeModel(ModelKind::kMistral);
  ReportTable table({"S (input tuples)", "ALITE / regular FD (s)",
                     "Fuzzy FD (s)", "fuzzy overhead (s)", "output tuples"});

  for (size_t s = step; s <= max_tuples; s += step) {
    ImdbOptions gen;
    gen.target_tuples = s;
    ImdbBenchmark bench = GenerateImdb(gen);
    auto aligned = AlignByName(bench.tables);
    if (!aligned.ok()) {
      std::fprintf(stderr, "%s\n", aligned.status().ToString().c_str());
      return 1;
    }

    double best_regular = 1e100;
    double best_fuzzy = 1e100;
    double best_overhead = 1e100;
    size_t results = 0;
    BenchRunStats run;
    for (int rep = 0; rep < repetitions; ++rep) {
      FuzzyFdReport regular_report;
      auto regular = RegularFdBaseline(bench.tables, *aligned, FdOptions(),
                                       /*parallel=*/false, 0, &regular_report);
      if (!regular.ok()) {
        std::fprintf(stderr, "regular FD failed at S=%zu: %s\n", s,
                     regular.status().ToString().c_str());
        return 1;
      }
      FuzzyFdOptions opts;
      opts.matcher.model = model;
      opts.matcher.num_threads = threads;
      FuzzyFdReport fuzzy_report;
      auto fuzzy = FuzzyFullDisjunction(opts).RunToTuples(
          bench.tables, *aligned, &fuzzy_report);
      if (!fuzzy.ok()) {
        std::fprintf(stderr, "fuzzy FD failed at S=%zu: %s\n", s,
                     fuzzy.status().ToString().c_str());
        return 1;
      }
      best_regular = std::min(best_regular, regular_report.fd_seconds);
      best_fuzzy = std::min(best_fuzzy, fuzzy_report.total_seconds());
      best_overhead =
          std::min(best_overhead, fuzzy_report.match_seconds +
                                      fuzzy_report.rewrite_seconds);
      results = fuzzy->tuples.size();
      run.unit_ms.push_back(fuzzy_report.total_seconds() * 1e3);
      // Matcher counters are deterministic across repetitions; keep the
      // last rep's values rather than summing rep copies.
      run.cost_evaluations = fuzzy_report.match_stats.cost_evaluations;
      run.pruned_evaluations = fuzzy_report.match_stats.pruned_evaluations;
      run.embedding_cache_hits =
          fuzzy_report.match_stats.embedding_cache_hits;
      run.embedding_cache_misses =
          fuzzy_report.match_stats.embedding_cache_misses;
    }
    json.AddFromStats(StrFormat("fig3_imdb_s%zu", s), ResolveNumThreads(threads),
                      run,
                      {{"regular_fd_s", best_regular},
                       {"fuzzy_fd_s", best_fuzzy},
                       {"fuzzy_overhead_s", best_overhead},
                       {"output_tuples", static_cast<double>(results)}});
    table.AddRow({WithThousandsSep(static_cast<int64_t>(bench.total_tuples)),
                  FormatDouble(best_regular, 3), FormatDouble(best_fuzzy, 3),
                  FormatDouble(best_overhead, 3),
                  WithThousandsSep(static_cast<int64_t>(results))});
  }
  std::printf("%s", table.Render().c_str());
  if (!json.WriteFile(json_out)) return 1;
  std::printf(
      "\nExpected shape: the two runtime columns nearly coincide at every "
      "S — the fuzzy\nmatching step (exact-match pre-pass on consistent "
      "keys) contributes only the\n'fuzzy overhead' column, a small "
      "fraction of total runtime (paper Fig. 3).\n");
  return 0;
}
