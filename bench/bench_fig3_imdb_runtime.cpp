// Figure 3 reproduction: runtime of regular Full Disjunction (ALITE) vs
// Fuzzy FD on the IMDB benchmark, as the number of input tuples grows from
// 5K to 30K.
//
// Paper (Fig. 3): both curves almost overlap across the whole range (the
// fuzzy matching step adds no visible overhead on an equi-join workload),
// growing superlinearly to ~4000 s at 30K tuples on their Python/ALITE
// stack. Our absolute numbers are far smaller (compiled C++ vs Python);
// the claims under reproduction are the overlap and the growth shape.
//
// Performance flags:
//   --threads=N         matcher worker threads (0 = hardware concurrency)
//   --fd_threads=a,b,c  additionally run both executors through
//                       ParallelFullDisjunction once per listed thread
//                       count (default "1,2,8"; empty disables the sweep).
//                       Output cardinality is asserted identical across all
//                       thread counts.
//   --json_out=PATH     machine-readable artifact with per-stage timings
//                       (fd_index_s, fd_enum_s, subsumption_s) and the
//                       interned-core counters.
#include <cstdio>

#include "bench_common.h"
#include "core/fuzzy_fd.h"
#include "datagen/imdb.h"
#include "embedding/model_zoo.h"
#include "fd/aligned_schema.h"
#include "metrics/report.h"
#include "util/flags.h"
#include "util/str.h"

using namespace lakefuzz;

namespace {

/// Per-stage extras shared by the serial rows and the sweep rows.
void AppendFdStageExtras(std::vector<std::pair<std::string, double>>* extra,
                         const FuzzyFdReport& report) {
  extra->emplace_back("fd_index_s", report.fd_stats.index_seconds);
  extra->emplace_back("fd_enum_s", report.fd_stats.enumeration_seconds);
  extra->emplace_back("subsumption_s", report.fd_stats.subsumption_seconds);
  extra->emplace_back("posting_lists",
                      static_cast<double>(report.fd_stats.posting_lists));
  extra->emplace_back("distinct_values",
                      static_cast<double>(report.fd_stats.distinct_values));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  size_t max_tuples = static_cast<size_t>(flags.GetInt("max-tuples", 30000));
  size_t step = static_cast<size_t>(flags.GetInt("step", 5000));
  int repetitions = static_cast<int>(flags.GetInt("reps", 3));
  size_t threads = ParseThreadsFlag(flags);
  std::string fd_threads = flags.GetString("fd_threads", "1,2,8");
  std::string json_out = flags.GetString("json_out", "");
  BenchJsonWriter json;

  std::printf(
      "=== Fig. 3: Runtime comparison of Regular FD (ALITE) with Fuzzy FD "
      "in IMDB Benchmark ===\nS = number of input tuples across the 6 IMDB "
      "tables; times are best of %d runs.\n\n",
      repetitions);

  auto model = MakeModel(ModelKind::kMistral);
  ReportTable table({"S (input tuples)", "ALITE / regular FD (s)",
                     "Fuzzy FD (s)", "fuzzy overhead (s)", "output tuples"});

  for (size_t s = step; s <= max_tuples; s += step) {
    ImdbOptions gen;
    gen.target_tuples = s;
    ImdbBenchmark bench = GenerateImdb(gen);
    auto aligned = AlignByName(bench.tables);
    if (!aligned.ok()) {
      std::fprintf(stderr, "%s\n", aligned.status().ToString().c_str());
      return 1;
    }

    double best_regular = 1e100;
    double best_fuzzy = 1e100;
    double best_overhead = 1e100;
    size_t results = 0;
    size_t regular_results = 0;
    BenchRunStats run;
    FuzzyFdReport best_fuzzy_report;
    for (int rep = 0; rep < repetitions; ++rep) {
      FuzzyFdReport regular_report;
      auto regular = RegularFdBaseline(bench.tables, *aligned, FdOptions(),
                                       /*parallel=*/false, 0, &regular_report);
      if (!regular.ok()) {
        std::fprintf(stderr, "regular FD failed at S=%zu: %s\n", s,
                     regular.status().ToString().c_str());
        return 1;
      }
      FuzzyFdOptions opts;
      opts.matcher.model = model;
      opts.matcher.num_threads = threads;
      FuzzyFdReport fuzzy_report;
      auto fuzzy = FuzzyFullDisjunction(opts).RunToTuples(
          bench.tables, *aligned, &fuzzy_report);
      if (!fuzzy.ok()) {
        std::fprintf(stderr, "fuzzy FD failed at S=%zu: %s\n", s,
                     fuzzy.status().ToString().c_str());
        return 1;
      }
      best_regular = std::min(best_regular, regular_report.fd_seconds);
      regular_results = regular->tuples.size();
      if (fuzzy_report.total_seconds() < best_fuzzy) {
        best_fuzzy = fuzzy_report.total_seconds();
        best_fuzzy_report = fuzzy_report;
      }
      best_overhead =
          std::min(best_overhead, fuzzy_report.match_seconds +
                                      fuzzy_report.rewrite_seconds);
      results = fuzzy->tuples.size();
      run.unit_ms.push_back(fuzzy_report.total_seconds() * 1e3);
      // Matcher counters are deterministic across repetitions; keep the
      // last rep's values rather than summing rep copies.
      run.cost_evaluations = fuzzy_report.match_stats.cost_evaluations;
      run.pruned_evaluations = fuzzy_report.match_stats.pruned_evaluations;
      run.embedding_cache_hits =
          fuzzy_report.match_stats.embedding_cache_hits;
      run.embedding_cache_misses =
          fuzzy_report.match_stats.embedding_cache_misses;
    }
    std::vector<std::pair<std::string, double>> extra = {
        {"regular_fd_s", best_regular},
        {"fuzzy_fd_s", best_fuzzy},
        {"fuzzy_overhead_s", best_overhead},
        {"output_tuples", static_cast<double>(results)}};
    AppendFdStageExtras(&extra, best_fuzzy_report);
    json.AddFromStats(StrFormat("fig3_imdb_s%zu", s), ResolveNumThreads(threads),
                      run, std::move(extra));
    table.AddRow({WithThousandsSep(static_cast<int64_t>(bench.total_tuples)),
                  FormatDouble(best_regular, 3), FormatDouble(best_fuzzy, 3),
                  FormatDouble(best_overhead, 3),
                  WithThousandsSep(static_cast<int64_t>(results))});

    // --fd_threads sweep: the same workload through the component-parallel
    // executor (index build, enumeration, and subsumption all run on its
    // pool). Output must be identical at every thread count.
    if (!fd_threads.empty()) {
      for (const std::string& part : Split(fd_threads, ',')) {
        size_t t = 0;
        if (!ParseThreadCount(part, &t)) {
          std::fprintf(stderr,
                       "--fd_threads: skipping invalid entry \"%s\" "
                       "(want an integer in [0, %zu])\n",
                       part.c_str(), kMaxBenchThreads);
          continue;
        }
        double sweep_regular = 1e100;
        double sweep_fuzzy = 1e100;
        size_t sweep_results = 0;
        size_t sweep_regular_results = 0;
        BenchRunStats sweep_run;
        FuzzyFdReport sweep_report;
        for (int rep = 0; rep < repetitions; ++rep) {
          FuzzyFdReport regular_report;
          auto regular =
              RegularFdBaseline(bench.tables, *aligned, FdOptions(),
                                /*parallel=*/true, t, &regular_report);
          FuzzyFdOptions opts;
          opts.matcher.model = model;
          opts.matcher.num_threads = threads;
          opts.parallel = true;
          opts.num_threads = t;
          FuzzyFdReport fuzzy_report;
          auto fuzzy = FuzzyFullDisjunction(opts).RunToTuples(
              bench.tables, *aligned, &fuzzy_report);
          if (!regular.ok() || !fuzzy.ok()) {
            std::fprintf(stderr, "parallel FD failed at S=%zu t=%zu\n", s, t);
            return 1;
          }
          sweep_regular = std::min(sweep_regular, regular_report.fd_seconds);
          sweep_regular_results = regular->tuples.size();
          if (fuzzy_report.total_seconds() < sweep_fuzzy) {
            sweep_fuzzy = fuzzy_report.total_seconds();
            sweep_report = fuzzy_report;
          }
          sweep_results = fuzzy->tuples.size();
          sweep_run.unit_ms.push_back(fuzzy_report.total_seconds() * 1e3);
        }
        if (sweep_results != results ||
            sweep_regular_results != regular_results) {
          std::fprintf(stderr,
                       "output mismatch at S=%zu threads=%zu: fuzzy "
                       "%zu vs serial %zu, regular %zu vs serial %zu\n",
                       s, t, sweep_results, results, sweep_regular_results,
                       regular_results);
          return 1;
        }
        std::vector<std::pair<std::string, double>> sweep_extra = {
            {"regular_fd_s", sweep_regular},
            {"fuzzy_fd_s", sweep_fuzzy},
            {"output_tuples", static_cast<double>(sweep_results)}};
        AppendFdStageExtras(&sweep_extra, sweep_report);
        json.AddFromStats(StrFormat("fig3_imdb_s%zu_fdt%zu", s, t),
                          ResolveNumThreads(t), sweep_run,
                          std::move(sweep_extra));
        std::printf(
            "  fd_threads=%zu: regular %.3f s, fuzzy %.3f s "
            "(index %.3f, enum %.3f, subsume %.3f), %zu tuples\n",
            t, sweep_regular, sweep_fuzzy,
            sweep_report.fd_stats.index_seconds,
            sweep_report.fd_stats.enumeration_seconds,
            sweep_report.fd_stats.subsumption_seconds, sweep_results);
      }
    }
  }
  std::printf("%s", table.Render().c_str());
  if (!json.WriteFile(json_out)) return 1;
  std::printf(
      "\nExpected shape: the two runtime columns nearly coincide at every "
      "S — the fuzzy\nmatching step (exact-match pre-pass on consistent "
      "keys) contributes only the\n'fuzzy overhead' column, a small "
      "fraction of total runtime (paper Fig. 3).\n");
  return 0;
}
