// Micro-benchmarks (google-benchmark) for the substrates behind the paper
// pipeline: the JV assignment solver, Full Disjunction enumeration,
// embedding throughput, string distances, CSV parsing, and subsumption.
#include <benchmark/benchmark.h>

#include "assignment/jonker_volgenant.h"
#include "core/value_matcher.h"
#include "datagen/imdb.h"
#include "embedding/model_zoo.h"
#include "fd/aligned_schema.h"
#include "fd/full_disjunction.h"
#include "fd/subsumption.h"
#include "table/csv.h"
#include "text/distance.h"
#include "util/rng.h"

namespace lakefuzz {
namespace {

void BM_JonkerVolgenant(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  CostMatrix m(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) m.set(r, c, rng.UniformReal());
  }
  for (auto _ : state) {
    auto result = SolveAssignment(m);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_JonkerVolgenant)->Range(16, 1024)->Complexity();

void BM_FullDisjunctionImdb(benchmark::State& state) {
  ImdbOptions gen;
  gen.target_tuples = static_cast<size_t>(state.range(0));
  ImdbBenchmark bench = GenerateImdb(gen);
  auto aligned = AlignByName(bench.tables);
  for (auto _ : state) {
    auto problem = FdProblem::Build(bench.tables, *aligned);
    auto result = FullDisjunction().Run(&problem.value());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(bench.total_tuples));
}
BENCHMARK(BM_FullDisjunctionImdb)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_EmbedValue(benchmark::State& state) {
  auto model = MakeModel(ModelKind::kMistral);
  Rng rng(3);
  std::vector<std::string> values;
  for (int i = 0; i < 512; ++i) values.push_back(rng.AlphaString(12));
  size_t i = 0;
  for (auto _ : state) {
    // Rotate through distinct values to defeat the embedding cache.
    Vec v = model->Embed(values[i++ & 511]);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmbedValue);

void BM_Levenshtein(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::string a = rng.AlphaString(len);
  std::string b = rng.AlphaString(len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Levenshtein(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(len));
}
BENCHMARK(BM_Levenshtein)->Range(8, 512)->Complexity();

void BM_CsvParse(benchmark::State& state) {
  ImdbOptions gen;
  gen.target_tuples = 4000;
  ImdbBenchmark bench = GenerateImdb(gen);
  std::string csv = WriteCsv(bench.tables[4]);  // title_principals
  for (auto _ : state) {
    auto table = ReadCsv(csv, "principals");
    benchmark::DoNotOptimize(table);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(csv.size()));
}
BENCHMARK(BM_CsvParse);

void BM_Subsumption(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  std::vector<FdResultTuple> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    FdResultTuple t;
    t.values.resize(6);
    for (size_t c = 0; c < 6; ++c) {
      if (rng.Bernoulli(0.4)) continue;
      t.values[c] = Value::Int(static_cast<int64_t>(rng.Uniform(n / 4 + 1)));
    }
    t.tids = {static_cast<uint32_t>(i)};
    tuples.push_back(std::move(t));
  }
  for (auto _ : state) {
    auto copy = tuples;
    auto result = EliminateSubsumed(std::move(copy));
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Subsumption)->Range(256, 8192)->Complexity();

void BM_ValueMatcherColumnPair(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto model = MakeModel(ModelKind::kMistral);
  Rng rng(13);
  std::vector<std::string> left, right;
  for (size_t i = 0; i < n; ++i) {
    std::string base = rng.AlphaString(10);
    left.push_back(base);
    std::string variant = base;
    variant[5] = 'z';  // one substitution → fuzzy pair
    right.push_back(variant);
  }
  ValueMatcherOptions opts;
  opts.model = model;
  ValueMatcher matcher(opts);
  for (auto _ : state) {
    auto result = matcher.MatchColumns({left, right});
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ValueMatcherColumnPair)->Range(32, 512)->Complexity()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lakefuzz
