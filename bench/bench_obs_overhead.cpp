// Telemetry overhead benchmark: the observability tax on a full request.
//
// PR 10 threads a tracer and a metrics registry through every pipeline
// stage. The contract is that observation is (a) free when no tracer is
// attached — the null-state ScopedSpan path must stay out of the profile —
// and (b) cheap when one is: spans live only at stage/component/task
// seams, never per tuple. This benchmark measures both sides on the same
// IMDB-shaped workload:
//
//   obs_untraced   Integrate with no tracer (the default production path).
//                  This row is the regression gate: CI compares its p50
//                  against the committed baseline at a 3% threshold.
//   obs_traced     Same requests with a fresh Tracer each; the traced_over
//                  head_pct extra reports the relative cost of full span
//                  capture + Chrome JSON export.
//
// Flags:
//   --tuples=N         IMDB generator target (default 6000; smoke 800)
//   --threads=N        engine pool size (default 2; 0 = hardware)
//   --reps=N           repetitions per row, all kept (default 5; smoke 2)
//   --smoke            tiny instance: CI bit-rot guard, not a measurement
//   --json_out=PATH    machine-readable artifact (bench-regression gate)
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "datagen/imdb.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const size_t tuples =
      static_cast<size_t>(flags.GetInt("tuples", smoke ? 800 : 6000));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 2));
  const int reps = static_cast<int>(flags.GetInt("reps", smoke ? 2 : 5));
  const std::string json_out = flags.GetString("json_out", "");
  BenchJsonWriter json;

  ImdbOptions imdb;
  imdb.target_tuples = tuples;
  auto bench = GenerateImdb(imdb);

  MetricsRegistry metrics;
  auto engine = LakeEngine::Create(
      EngineOptions().SetNumThreads(threads).SetMetrics(&metrics));
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> names;
  for (auto& t : bench.tables) {
    std::string name = t.name();
    names.push_back(name);
    Status s = (*engine)->RegisterTable(std::move(name), std::move(t));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  std::printf(
      "=== observability overhead: traced vs untraced Integrate ===\n"
      "%zu input tuples across %zu tables, %zu threads, %d reps\n"
      "(tracing compiled %s)\n\n",
      bench.total_tuples, names.size(), threads, reps,
      kTracingCompiledIn ? "in" : "out — LAKEFUZZ_DISABLE_TRACING");

  // Warm the session caches once so neither row pays the cold-start cost.
  {
    auto warm = (*engine)->Integrate(names);
    if (!warm.ok()) {
      std::fprintf(stderr, "%s\n", warm.status().ToString().c_str());
      return 1;
    }
  }

  // Interleave traced and untraced reps so frequency scaling, allocator
  // warm-up, and cache drift hit both rows equally instead of biasing
  // whichever loop runs second.
  BenchRunStats untraced_run;
  BenchRunStats traced_run;
  size_t result_tuples = 0;
  size_t span_count = 0;
  size_t json_bytes = 0;
  for (int rep = 0; rep < reps; ++rep) {
    {
      Stopwatch watch;
      auto result = (*engine)->Integrate(names);
      const double elapsed_ms = watch.ElapsedSeconds() * 1e3;
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      untraced_run.unit_ms.push_back(elapsed_ms);
      result_tuples = result->integrated.NumRows();
    }
    {
      Tracer tracer;
      RequestOptions req;
      req.tracer = &tracer;
      Stopwatch watch;
      auto result = (*engine)->Integrate(names, req);
      // Export is part of the bill: a scraper renders the trace per
      // request.
      const std::string chrome = tracer.ToChromeJson();
      const double elapsed_ms = watch.ElapsedSeconds() * 1e3;
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      if (result->integrated.NumRows() != result_tuples) {
        std::fprintf(stderr, "traced output diverged: %zu vs %zu tuples\n",
                     result->integrated.NumRows(), result_tuples);
        return 1;
      }
      traced_run.unit_ms.push_back(elapsed_ms);
      span_count = tracer.span_count();
      json_bytes = chrome.size();
    }
  }
  const double untraced_p50 = Percentile(untraced_run.unit_ms, 0.5);
  std::printf("untraced: p50 %.2f ms, %zu output tuples\n", untraced_p50,
              result_tuples);
  const double traced_p50 = Percentile(traced_run.unit_ms, 0.5);
  const double overhead_pct =
      untraced_p50 > 0.0 ? (traced_p50 / untraced_p50 - 1.0) * 1e2 : 0.0;
  std::printf(
      "traced:   p50 %.2f ms (%+.1f%%), %zu spans, %zu bytes of Chrome "
      "JSON\n",
      traced_p50, overhead_pct, span_count, json_bytes);

  const MetricsSnapshot snap = (*engine)->MetricsSnapshot();
  json.AddFromStats(
      "obs_untraced", ResolveNumThreads(threads), untraced_run,
      {{"output_tuples", static_cast<double>(result_tuples)},
       {"tracing_compiled_in", kTracingCompiledIn ? 1.0 : 0.0}});
  json.AddFromStats(
      "obs_traced", ResolveNumThreads(threads), traced_run,
      {{"traced_overhead_pct", overhead_pct},
       {"spans_per_request", static_cast<double>(span_count)},
       {"chrome_json_bytes", static_cast<double>(json_bytes)},
       {"metric_samples", static_cast<double>(snap.samples.size())}});
  if (!json.WriteFile(json_out)) return 1;

  std::printf(
      "\nExpected shape: the untraced row is the production hot path — CI "
      "gates it\nagainst the committed baseline at 3%%. The traced row "
      "stays within a few\npercent because spans exist only at stage and "
      "component seams.\n");
  return 0;
}
