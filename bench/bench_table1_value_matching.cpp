// Table 1 reproduction: value-matching effectiveness of the five embedding
// models on the Auto-Join benchmark.
//
// Paper (Table 1):             P     R     F1
//   FastText                  0.70  0.67  0.66
//   BERT                      0.72  0.76  0.73
//   RoBERTa                   0.73  0.77  0.74
//   Llama3                    0.81  0.85  0.81
//   Mistral                   0.81  0.86  0.82
//
// We report macro-averaged P/R/F1 over the 31 generated integration sets
// (θ = 0.7, the paper's setting). Absolute values need not match — the
// models and the benchmark are simulated (DESIGN.md §1) — but the ordering
// and the LLM-vs-pretrained gap are the claims under reproduction.
//
// Performance flags:
//   --threads=N        matcher worker threads for the main pass (0 = all
//                      hardware threads, 1 = serial)
//   --scale_threads=a,b,c  additionally run the Mistral configuration once
//                      per listed thread count (throughput scaling curve)
//   --json_out=PATH    write p50/p95 wall times + matcher counters per
//                      configuration as a JSON array (BENCH_value_matching
//                      artifact)
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "embedding/model_zoo.h"
#include "metrics/report.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/str.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  AutoJoinOptions gen = PaperAutoJoinOptions();
  gen.entities_per_set =
      static_cast<size_t>(flags.GetInt("entities", 150));
  double theta = flags.GetDouble("theta", 0.7);
  size_t threads = ParseThreadsFlag(flags);
  std::string json_out = flags.GetString("json_out", "");
  std::string scale_threads = flags.GetString("scale_threads", "");

  std::printf(
      "=== Table 1: Value Matching effectiveness in Auto-Join Benchmark "
      "===\n%zu integration sets, %zu topics, ~%zu entities/set, θ=%.2f, "
      "threads=%zu\n\n",
      gen.num_sets, AutoJoinNumTopics(), gen.entities_per_set, theta,
      threads);

  auto sets = GenerateAutoJoinBenchmark(gen);
  BenchJsonWriter json;

  struct PaperRow {
    double p, r, f1;
  };
  const std::map<std::string, PaperRow> paper = {
      {"FastText", {0.70, 0.67, 0.66}}, {"BERT", {0.72, 0.76, 0.73}},
      {"RoBERTa", {0.73, 0.77, 0.74}},  {"Llama3", {0.81, 0.85, 0.81}},
      {"Mistral", {0.81, 0.86, 0.82}},
  };

  ReportTable table({"Model", "Precision", "Recall", "F1-Score",
                     "paper P/R/F1", "time (s)"});
  for (ModelKind kind : AllModelKinds()) {
    ValueMatcherOptions opts;
    opts.model = MakeModel(kind);
    opts.threshold = theta;
    opts.num_threads = threads;
    Stopwatch watch;
    BenchRunStats run;
    std::vector<Prf> parts;
    parts.reserve(sets.size());
    for (const auto& set : sets) {
      parts.push_back(EvaluateAutoJoinSet(set, opts, &run));
    }
    MacroPrf macro = MacroAverage(parts);
    const std::string name(ModelKindToString(kind));
    const PaperRow& ref = paper.at(name);
    table.AddRow({name, FormatDouble(macro.precision, 2),
                  FormatDouble(macro.recall, 2), FormatDouble(macro.f1, 2),
                  StrFormat("%.2f/%.2f/%.2f", ref.p, ref.r, ref.f1),
                  FormatDouble(watch.ElapsedSeconds(), 2)});
    json.AddFromStats("table1_" + name, ResolveNumThreads(threads), run,
                      {{"precision", macro.precision},
                       {"recall", macro.recall},
                       {"f1", macro.f1}});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nExpected shape: Mistral ≥ Llama3 > RoBERTa ≥ BERT > FastText, "
      "LLM-grade models\nahead of the pre-trained LMs by a clear margin on "
      "every metric (paper Sec 3.2).\n");

  // Thread-scaling curve: same Mistral workload at each requested thread
  // count. Groups are asserted identical run-to-run elsewhere (ctest); here
  // the JSON records the throughput trajectory.
  if (!scale_threads.empty()) {
    std::printf("\n--- thread scaling (Mistral) ---\n");
    for (const std::string& part : Split(scale_threads, ',')) {
      size_t t = 0;
      if (!ParseThreadCount(part, &t)) {
        std::fprintf(stderr,
                     "--scale_threads: skipping invalid entry \"%s\" "
                     "(want an integer in [0, %zu])\n",
                     part.c_str(), kMaxBenchThreads);
        continue;
      }
      ValueMatcherOptions opts;
      opts.model = MakeModel(ModelKind::kMistral);
      opts.threshold = theta;
      opts.num_threads = t;
      Stopwatch watch;
      BenchRunStats run;
      for (const auto& set : sets) {
        EvaluateAutoJoinSet(set, opts, &run);
      }
      double secs = watch.ElapsedSeconds();
      std::printf("threads=%zu (resolved %zu): %.3f s, p50 %.2f ms, "
                  "p95 %.2f ms/set\n",
                  t, ResolveNumThreads(t), secs,
                  Percentile(run.unit_ms, 0.50), Percentile(run.unit_ms, 0.95));
      json.AddFromStats(StrFormat("scaling_mistral_t%zu", t),
                        ResolveNumThreads(t), run);
    }
  }

  if (!json.WriteFile(json_out)) return 1;
  return 0;
}
