// Table 1 reproduction: value-matching effectiveness of the five embedding
// models on the Auto-Join benchmark.
//
// Paper (Table 1):             P     R     F1
//   FastText                  0.70  0.67  0.66
//   BERT                      0.72  0.76  0.73
//   RoBERTa                   0.73  0.77  0.74
//   Llama3                    0.81  0.85  0.81
//   Mistral                   0.81  0.86  0.82
//
// We report macro-averaged P/R/F1 over the 31 generated integration sets
// (θ = 0.7, the paper's setting). Absolute values need not match — the
// models and the benchmark are simulated (DESIGN.md §1) — but the ordering
// and the LLM-vs-pretrained gap are the claims under reproduction.
#include <cstdio>

#include "bench_common.h"
#include "embedding/model_zoo.h"
#include "metrics/report.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/str.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  AutoJoinOptions gen = PaperAutoJoinOptions();
  gen.entities_per_set =
      static_cast<size_t>(flags.GetInt("entities", 150));
  double theta = flags.GetDouble("theta", 0.7);

  std::printf(
      "=== Table 1: Value Matching effectiveness in Auto-Join Benchmark "
      "===\n%zu integration sets, %zu topics, ~%zu entities/set, θ=%.2f\n\n",
      gen.num_sets, AutoJoinNumTopics(), gen.entities_per_set, theta);

  auto sets = GenerateAutoJoinBenchmark(gen);

  struct PaperRow {
    double p, r, f1;
  };
  const std::map<std::string, PaperRow> paper = {
      {"FastText", {0.70, 0.67, 0.66}}, {"BERT", {0.72, 0.76, 0.73}},
      {"RoBERTa", {0.73, 0.77, 0.74}},  {"Llama3", {0.81, 0.85, 0.81}},
      {"Mistral", {0.81, 0.86, 0.82}},
  };

  ReportTable table({"Model", "Precision", "Recall", "F1-Score",
                     "paper P/R/F1", "time (s)"});
  for (ModelKind kind : AllModelKinds()) {
    ValueMatcherOptions opts;
    opts.model = MakeModel(kind);
    opts.threshold = theta;
    Stopwatch watch;
    std::vector<Prf> parts;
    parts.reserve(sets.size());
    for (const auto& set : sets) {
      parts.push_back(EvaluateAutoJoinSet(set, opts));
    }
    MacroPrf macro = MacroAverage(parts);
    const PaperRow& ref = paper.at(std::string(ModelKindToString(kind)));
    table.AddRow({std::string(ModelKindToString(kind)),
                  FormatDouble(macro.precision, 2),
                  FormatDouble(macro.recall, 2), FormatDouble(macro.f1, 2),
                  StrFormat("%.2f/%.2f/%.2f", ref.p, ref.r, ref.f1),
                  FormatDouble(watch.ElapsedSeconds(), 2)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nExpected shape: Mistral ≥ Llama3 > RoBERTa ≥ BERT > FastText, "
      "LLM-grade models\nahead of the pre-trained LMs by a clear margin on "
      "every metric (paper Sec 3.2).\n");
  return 0;
}
