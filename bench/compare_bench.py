#!/usr/bin/env python3
"""Compare a freshly produced --json_out benchmark artifact against the
committed baseline under bench/results/ and fail on p50 regressions.

Records are matched by (name, threads). Records present on only one side are
reported but never fail the run (benchmarks gain and retire configurations
across PRs).

Baselines are committed from whatever machine produced them, so absolute
wall-clock comparison would gate on runner speed, not code. By default the
gate therefore self-normalizes: it computes the median candidate/baseline
p50 ratio across all shared records (the machine-speed factor) and flags a
record when it is slower than that median by more than the threshold:

    cand_p50 > base_p50 * median_ratio * (1 + threshold) + slack_ms

A code change that slows one benchmark while the rest hold moves that
record's ratio away from the median and trips the gate on any machine; a
uniformly slower runner moves every ratio equally and trips nothing. The
deliberate blind spot — a change that slows *all* benchmarks by the same
factor looks like a slow machine — can be closed with --no-normalize when
baseline and candidate come from the same machine. The additive slack keeps
sub-millisecond rows (where scheduler noise easily exceeds 25%) from
producing false alarms.

Artifacts come in two shapes: the legacy bare JSON array of records, and
the current object {"hardware": {...}, "records": [...]} whose hardware
block records what the producing machine could actually run
(hardware_concurrency and, on Linux, the affinity-mask core count actually
granted to the process). Both load transparently.

--speedup-gate NAME:MIN (repeatable) additionally requires the candidate
record NAME (any thread count) to carry speedup_vs_serial >= MIN. The gate
is hardware-aware rather than silently green: when the candidate's
hardware block shows fewer granted cores than the record's thread count,
the gate cannot be demonstrated on that machine, so it prints SKIPPED with
the recorded core counts and does not fail; when the artifact predates the
hardware block, the gate is also skipped, flagged as such. It only fails
when the machine demonstrably had the cores and the speedup still missed.

Exit status: 0 = no regressions, 1 = at least one regression or failed
speedup gate, 2 = usage or I/O error.
"""

import argparse
import contextlib
import json
import os
import signal
import statistics
import sys

# Die quietly when stdout is a closed pipe (e.g. piped through `head`).
with contextlib.suppress(AttributeError, ValueError):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load_artifact(path):
    """Returns (records dict keyed by (name, threads), hardware dict or None).

    Accepts both artifact shapes: the legacy bare array (hardware None) and
    the current {"hardware": ..., "records": [...]} object.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)
    hardware = None
    if isinstance(doc, dict):
        hardware = doc.get("hardware")
        records = doc.get("records")
        if not isinstance(records, list):
            print(f"error: {path}: object artifact lacks a 'records' array",
                  file=sys.stderr)
            sys.exit(2)
    elif isinstance(doc, list):
        records = doc
    else:
        print(f"error: {path}: expected a JSON array or object",
              file=sys.stderr)
        sys.exit(2)
    out = {}
    for rec in records:
        key = (rec.get("name", "?"), rec.get("threads", 1))
        out[key] = rec
    return out, hardware


def check_speedup_gates(gates, candidate, hardware):
    """Returns the number of FAILED gates (skips are reported, not failed)."""
    failures = 0
    for spec in gates:
        name, _, min_str = spec.partition(":")
        try:
            min_speedup = float(min_str)
        except ValueError:
            print(f"error: --speedup-gate {spec!r}: want NAME:MIN",
                  file=sys.stderr)
            sys.exit(2)
        rows = [(threads, rec) for (n, threads), rec in candidate.items()
                if n == name]
        if not rows:
            print(f"speedup gate {name}: SKIPPED (record absent from "
                  f"candidate)")
            continue
        for threads, rec in sorted(rows):
            speedup = rec.get("speedup_vs_serial")
            if speedup is None:
                print(f"speedup gate {name} (threads={threads}): SKIPPED "
                      f"(record carries no speedup_vs_serial)")
                continue
            cores = None if hardware is None else hardware.get("cores_granted")
            if cores is None:
                print(f"speedup gate {name} (threads={threads}): SKIPPED "
                      f"(artifact has no hardware block; cannot tell "
                      f"starvation from regression)")
                continue
            if cores < threads:
                print(f"speedup gate {name} (threads={threads}): SKIPPED "
                      f"(machine granted {cores} core(s) < {threads} "
                      f"threads; speedup {speedup:.2f}x recorded, not "
                      f"gated)")
                continue
            if speedup >= min_speedup:
                print(f"speedup gate {name} (threads={threads}): OK "
                      f"({speedup:.2f}x >= {min_speedup:.2f}x on "
                      f"{cores} cores)")
            else:
                print(f"speedup gate {name} (threads={threads}): FAILED "
                      f"({speedup:.2f}x < {min_speedup:.2f}x despite "
                      f"{cores} granted cores)", file=sys.stderr)
                failures += 1
    return failures


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="committed artifact (bench/results/*.json)")
    parser.add_argument("--candidate", required=True,
                        help="freshly produced --json_out artifact")
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get(
                            "BENCH_REGRESSION_THRESHOLD", "0.25")),
                        help="relative p50 regression tolerance "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--slack-ms", type=float,
                        default=float(os.environ.get(
                            "BENCH_REGRESSION_SLACK_MS", "2.0")),
                        help="additive tolerance for sub-millisecond rows")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare absolute p50 (same-machine baselines)")
    parser.add_argument("--speedup-gate", action="append", default=[],
                        metavar="NAME:MIN",
                        help="require candidate record NAME to carry "
                             "speedup_vs_serial >= MIN; skipped (with a "
                             "note) when the recording machine was granted "
                             "fewer cores than the record's thread count")
    args = parser.parse_args()

    baseline, base_hw = load_artifact(args.baseline)
    candidate, cand_hw = load_artifact(args.candidate)
    for label, hw in (("baseline", base_hw), ("candidate", cand_hw)):
        if hw is None:
            print(f"note: {label} artifact has no hardware block "
                  f"(pre-hardware format)")
        else:
            print(f"{label} hardware: {hw.get('cores_granted', '?')} core(s) "
                  f"granted of {hw.get('hardware_concurrency', '?')} "
                  f"advertised")

    shared = [key for key in baseline if key in candidate]
    ratios = []
    for key in shared:
        base_p50 = float(baseline[key].get("p50_ms", 0.0))
        cand_p50 = float(candidate[key].get("p50_ms", 0.0))
        if base_p50 > 0:
            ratios.append(cand_p50 / base_p50)
    speed = 1.0
    if not args.no_normalize and ratios:
        speed = statistics.median(ratios)
    print(f"machine-speed factor (median cand/base p50 over "
          f"{len(ratios)} records): {speed:.3f}"
          + ("  [normalization disabled]" if args.no_normalize else ""))

    regressions = []
    improvements = 0
    width = max([len(name) for name, _ in baseline] + [10])
    print(f"{'record':<{width}}  {'thr':>3}  {'base p50':>10}  "
          f"{'cand p50':>10}  {'ratio':>6}")
    for key in sorted(baseline):
        if key not in candidate:
            print(f"{key[0]:<{width}}  {key[1]:>3}  "
                  f"{baseline[key].get('p50_ms', 0.0):>10.3f}  "
                  f"{'absent':>10}  {'-':>6}")
            continue
        base_p50 = float(baseline[key].get("p50_ms", 0.0))
        cand_p50 = float(candidate[key].get("p50_ms", 0.0))
        ratio = cand_p50 / base_p50 if base_p50 > 0 else float("inf")
        limit = base_p50 * speed * (1.0 + args.threshold) + args.slack_ms
        status = ""
        if cand_p50 > limit:
            regressions.append((key, base_p50, cand_p50))
            status = "  REGRESSION"
        elif cand_p50 < base_p50:
            improvements += 1
        print(f"{key[0]:<{width}}  {key[1]:>3}  {base_p50:>10.3f}  "
              f"{cand_p50:>10.3f}  {ratio:>6.2f}{status}")
    for key in sorted(set(candidate) - set(baseline)):
        print(f"{key[0]:<{width}}  {key[1]:>3}  {'absent':>10}  "
              f"{candidate[key].get('p50_ms', 0.0):>10.3f}  {'-':>6}  (new)")

    print(f"\ncompared {len(shared)} record(s): {improvements} faster, "
          f"{len(regressions)} regression(s) beyond "
          f"+{args.threshold * 100:.0f}% of the speed-adjusted baseline "
          f"(+{args.slack_ms:g} ms slack)")
    gate_failures = 0
    if args.speedup_gate:
        gate_failures = check_speedup_gates(args.speedup_gate, candidate,
                                            cand_hw)
    if regressions:
        for (name, threads), base_p50, cand_p50 in regressions:
            print(f"  {name} (threads={threads}): "
                  f"{base_p50:.3f} ms -> {cand_p50:.3f} ms "
                  f"(speed-adjusted limit "
                  f"{base_p50 * speed * (1 + args.threshold):.3f} ms)",
                  file=sys.stderr)
        return 1
    return 1 if gate_failures else 0


if __name__ == "__main__":
    sys.exit(main())
