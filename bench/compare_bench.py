#!/usr/bin/env python3
"""Compare a freshly produced --json_out benchmark artifact against the
committed baseline under bench/results/ and fail on p50 regressions.

Records are matched by (name, threads). Records present on only one side are
reported but never fail the run (benchmarks gain and retire configurations
across PRs).

Baselines are committed from whatever machine produced them, so absolute
wall-clock comparison would gate on runner speed, not code. By default the
gate therefore self-normalizes: it computes the median candidate/baseline
p50 ratio across all shared records (the machine-speed factor) and flags a
record when it is slower than that median by more than the threshold:

    cand_p50 > base_p50 * median_ratio * (1 + threshold) + slack_ms

A code change that slows one benchmark while the rest hold moves that
record's ratio away from the median and trips the gate on any machine; a
uniformly slower runner moves every ratio equally and trips nothing. The
deliberate blind spot — a change that slows *all* benchmarks by the same
factor looks like a slow machine — can be closed with --no-normalize when
baseline and candidate come from the same machine. The additive slack keeps
sub-millisecond rows (where scheduler noise easily exceeds 25%) from
producing false alarms.

Exit status: 0 = no regressions, 1 = at least one regression, 2 = usage or
I/O error.
"""

import argparse
import contextlib
import json
import os
import signal
import statistics
import sys

# Die quietly when stdout is a closed pipe (e.g. piped through `head`).
with contextlib.suppress(AttributeError, ValueError):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            records = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(records, list):
        print(f"error: {path}: expected a JSON array", file=sys.stderr)
        sys.exit(2)
    out = {}
    for rec in records:
        key = (rec.get("name", "?"), rec.get("threads", 1))
        out[key] = rec
    return out


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="committed artifact (bench/results/*.json)")
    parser.add_argument("--candidate", required=True,
                        help="freshly produced --json_out artifact")
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get(
                            "BENCH_REGRESSION_THRESHOLD", "0.25")),
                        help="relative p50 regression tolerance "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--slack-ms", type=float,
                        default=float(os.environ.get(
                            "BENCH_REGRESSION_SLACK_MS", "2.0")),
                        help="additive tolerance for sub-millisecond rows")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare absolute p50 (same-machine baselines)")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    candidate = load_records(args.candidate)

    shared = [key for key in baseline if key in candidate]
    ratios = []
    for key in shared:
        base_p50 = float(baseline[key].get("p50_ms", 0.0))
        cand_p50 = float(candidate[key].get("p50_ms", 0.0))
        if base_p50 > 0:
            ratios.append(cand_p50 / base_p50)
    speed = 1.0
    if not args.no_normalize and ratios:
        speed = statistics.median(ratios)
    print(f"machine-speed factor (median cand/base p50 over "
          f"{len(ratios)} records): {speed:.3f}"
          + ("  [normalization disabled]" if args.no_normalize else ""))

    regressions = []
    improvements = 0
    width = max([len(name) for name, _ in baseline] + [10])
    print(f"{'record':<{width}}  {'thr':>3}  {'base p50':>10}  "
          f"{'cand p50':>10}  {'ratio':>6}")
    for key in sorted(baseline):
        if key not in candidate:
            print(f"{key[0]:<{width}}  {key[1]:>3}  "
                  f"{baseline[key].get('p50_ms', 0.0):>10.3f}  "
                  f"{'absent':>10}  {'-':>6}")
            continue
        base_p50 = float(baseline[key].get("p50_ms", 0.0))
        cand_p50 = float(candidate[key].get("p50_ms", 0.0))
        ratio = cand_p50 / base_p50 if base_p50 > 0 else float("inf")
        limit = base_p50 * speed * (1.0 + args.threshold) + args.slack_ms
        status = ""
        if cand_p50 > limit:
            regressions.append((key, base_p50, cand_p50))
            status = "  REGRESSION"
        elif cand_p50 < base_p50:
            improvements += 1
        print(f"{key[0]:<{width}}  {key[1]:>3}  {base_p50:>10.3f}  "
              f"{cand_p50:>10.3f}  {ratio:>6.2f}{status}")
    for key in sorted(set(candidate) - set(baseline)):
        print(f"{key[0]:<{width}}  {key[1]:>3}  {'absent':>10}  "
              f"{candidate[key].get('p50_ms', 0.0):>10.3f}  {'-':>6}  (new)")

    print(f"\ncompared {len(shared)} record(s): {improvements} faster, "
          f"{len(regressions)} regression(s) beyond "
          f"+{args.threshold * 100:.0f}% of the speed-adjusted baseline "
          f"(+{args.slack_ms:g} ms slack)")
    if regressions:
        for (name, threads), base_p50, cand_p50 in regressions:
            print(f"  {name} (threads={threads}): "
                  f"{base_p50:.3f} ms -> {cand_p50:.3f} ms "
                  f"(speed-adjusted limit "
                  f"{base_p50 * speed * (1 + args.threshold):.3f} ms)",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
