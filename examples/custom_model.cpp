// Plugging a custom embedding model into the fuzzy matcher.
//
// The ValueMatcher accepts any EmbeddingModel. This example implements a
// tiny domain-specific model for ISO-date-like strings ("2021-03-05",
// "05/03/2021", "March 5, 2021") that embeds the *parsed* date rather than
// its surface form — a kind of semantic normalization no generic text
// embedding provides — and contrasts it with the generic Mistral profile.
//
//   ./custom_model
#include <cstdio>
#include <optional>

#include "core/value_matcher.h"
#include "embedding/model_zoo.h"
#include "text/tokenize.h"
#include "util/hash.h"
#include "util/str.h"

using namespace lakefuzz;

namespace {

struct Ymd {
  int year;
  int month;
  int day;
};

/// Very small date parser: handles YYYY-MM-DD, DD/MM/YYYY and
/// "MonthName D, YYYY". Returns nullopt for non-dates.
std::optional<Ymd> ParseDate(std::string_view s) {
  static const char* kMonths[] = {"january", "february", "march",  "april",
                                  "may",     "june",     "july",   "august",
                                  "september", "october", "november",
                                  "december"};
  auto tokens = WordTokens(s);
  if (tokens.size() != 3) return std::nullopt;
  auto is_num = [](const std::string& t) {
    for (char c : t) {
      if (c < '0' || c > '9') return false;
    }
    return !t.empty();
  };
  if (is_num(tokens[0]) && is_num(tokens[1]) && is_num(tokens[2])) {
    int a = std::stoi(tokens[0]);
    int b = std::stoi(tokens[1]);
    int c = std::stoi(tokens[2]);
    if (tokens[0].size() == 4) return Ymd{a, b, c};   // YYYY-MM-DD
    if (tokens[2].size() == 4) return Ymd{c, b, a};   // DD/MM/YYYY
    return std::nullopt;
  }
  // "March 5, 2021"
  std::string m = ToLower(tokens[0]);
  for (int i = 0; i < 12; ++i) {
    if (m == kMonths[i] && is_num(tokens[1]) && is_num(tokens[2])) {
      return Ymd{std::stoi(tokens[2]), i + 1, std::stoi(tokens[1])};
    }
  }
  return std::nullopt;
}

/// Embeds parseable dates by their (year, month, day) identity; everything
/// else by a hash of its raw text (so unrelated values stay far apart).
class DateAwareModel : public EmbeddingModel {
 public:
  explicit DateAwareModel(size_t dim = 64) : dim_(dim) {}

  Vec Embed(std::string_view value) const override {
    uint64_t id;
    if (auto d = ParseDate(value)) {
      id = Mix64((uint64_t(d->year) << 16) ^ (uint64_t(d->month) << 8) ^
                 uint64_t(d->day));
    } else {
      id = Fnv1a64(value);
    }
    Vec v(dim_);
    for (size_t i = 0; i < dim_; ++i) {
      uint64_t h = Mix64(id ^ Mix64(i));
      v[i] = static_cast<float>(
          2.0 * (static_cast<double>(h >> 11) * 0x1.0p-53) - 1.0);
    }
    NormalizeInPlace(&v);
    return v;
  }
  size_t dim() const override { return dim_; }
  std::string name() const override { return "date-aware"; }

 private:
  size_t dim_;
};

void RunWith(std::shared_ptr<const EmbeddingModel> model) {
  ValueMatcherOptions opts;
  opts.model = std::move(model);
  ValueMatcher matcher(opts);
  auto result = matcher.MatchColumns({
      {"2021-03-05", "2020-12-24", "1999-07-01"},
      {"05/03/2021", "24/12/2020", "14/02/2005"},
  });
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("model=%s → %zu groups:\n", opts.model->name().c_str(),
              result->groups.size());
  for (const auto& g : result->groups) {
    std::printf("  {");
    for (size_t i = 0; i < g.members.size(); ++i) {
      std::printf("%s\"%s\"", i ? ", " : "", g.members[i].second.c_str());
    }
    std::printf("}  rep=\"%s\"\n", g.representative.c_str());
  }
}

}  // namespace

int main() {
  std::printf(
      "Matching two date columns written in different conventions.\n"
      "A generic text embedding sees different surfaces; the custom\n"
      "date-aware model sees the same dates.\n\n");
  RunWith(MakeModel(ModelKind::kMistral));
  std::printf("\n");
  RunWith(std::make_shared<DateAwareModel>());
  return 0;
}
