// Session-oriented engine walkthrough: the LakeEngine API end to end.
//
//   1. Build one engine (model + shared embedding cache + worker pool).
//   2. Register the 6-table IMDB-style integration set.
//   3. Serve the same Integrate request several times — the first call
//      pays the embedding misses, later calls hit the session cache.
//   4. Stream the result through a RowSink in fixed-size batches.
//   5. Fire a CancelToken from a progress callback mid-FD and observe the
//      request fail fast with ErrorCode::kCancelled.
//   6. Discovery: ask the session which registered tables are unionable
//      with one of them (DiscoverUnionable), and — when --discover=<csv>
//      names a query file — register it, discover its top-k partners, and
//      stream the integrated result (DiscoverAndIntegrate).
//
//   7. Lifecycle hardening: run the same request under a wall-clock
//      deadline and an FD node budget (--deadline_ms / --budget_nodes,
//      kTruncate policy → partial results with a truncation report), and
//      — with --max_concurrent — overload the admission gate from
//      concurrent threads and read the admitted/queued/rejected counters.
//
//   8. Durable catalog (--catalog=<dir>): open the catalog before
//      registering — a warm start loads the dictionary, tables, sketches
//      and LSH index from the memory-mapped files and skips all sketching —
//      and checkpoint it again on exit. Run the binary twice with the same
//      --catalog to see the cold build once and the warm restart after.
//
//   9. Read-only replica (--replica=<dir>): instead of the writer
//      walkthrough, open the directory's latest committed generation as a
//      replica, serve discovery + integration from it, and poll
//      RefreshReplica() between queries — generation transitions are
//      printed as the writer (another process on the same --catalog dir)
//      keeps checkpointing. Mutations are rejected with a typed error.
//
//  10. Telemetry: every request carries a monotonically increasing id
//      (printed as req=N on its output lines). --trace_out=<dir> attaches a
//      Tracer per request and writes one Chrome trace_event JSON per request
//      (<dir>/trace_<id>.json — load in chrome://tracing or Perfetto);
//      --slow_ms=<n> arms the engine's slow-request log; --metrics_out=<path>
//      dumps the engine's Prometheus-style metrics text at exit ("-" for
//      stdout).
//
//   ./engine_service [--tuples=3000] [--calls=3] [--threads=2]
//                    [--discover=query.csv] [--discover_k=3]
//                    [--deadline_ms=0] [--budget_nodes=0]
//                    [--max_concurrent=0] [--catalog=<dir>]
//                    [--replica=<dir>] [--replica_polls=3]
//                    [--replica_poll_ms=200]
//                    [--trace_out=<dir>] [--slow_ms=0] [--metrics_out=<path|->]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datagen/imdb.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/str.h"

using namespace lakefuzz;

namespace {

/// Counts batches/rows without retaining them — a stand-in for a network
/// response stream.
class CountingSink : public RowSink {
 public:
  Status OnBatch(const std::vector<FdResultTuple>& batch) override {
    ++batches_;
    rows_ += batch.size();
    return Status::OK();
  }
  size_t batches() const { return batches_; }
  size_t rows() const { return rows_; }

 private:
  size_t batches_ = 0;
  size_t rows_ = 0;
};

/// One request's telemetry handle: the service-assigned monotonic id plus
/// (under --trace_out) the Tracer whose span tree becomes the request's
/// Chrome JSON file. Owned on the caller's stack, so the admission-storm
/// threads need no shared tracer bookkeeping.
struct TracedRequest {
  uint64_t id = 0;
  std::unique_ptr<Tracer> tracer;
};

/// Assigns the next request id and, when `trace_dir` is set, attaches a
/// fresh Tracer to `req`.
TracedRequest BeginRequest(std::atomic<uint64_t>* counter,
                           const std::string& trace_dir,
                           RequestOptions* req) {
  TracedRequest tr;
  tr.id = counter->fetch_add(1) + 1;
  req->request_id = tr.id;
  if (!trace_dir.empty()) {
    TraceOptions topts;
    topts.request_id = tr.id;
    tr.tracer = std::make_unique<Tracer>(topts);
    req->tracer = tr.tracer.get();
  }
  return tr;
}

/// Writes <trace_dir>/trace_<id>.json when the request was traced.
void FinishRequest(const std::string& trace_dir, const TracedRequest& tr) {
  if (tr.tracer == nullptr) return;
  const std::string path =
      trace_dir + "/trace_" + std::to_string(tr.id) + ".json";
  const std::string json = tr.tracer->ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

/// --replica=<dir>: the read-only side of the crash-consistent catalog.
/// Opens the latest committed generation, proves mutations are fenced off,
/// then alternates queries with RefreshReplica() polls, printing every
/// generation transition it observes.
int RunReplica(const std::string& dir, const Flags& flags) {
  const int polls = flags.GetInt("replica_polls", 3);
  const int poll_ms = flags.GetInt("replica_poll_ms", 200);

  auto replica = LakeEngine::OpenReplica(
      dir, EngineOptions().SetModel(ModelKind::kMistral).SetNumThreads(2));
  if (!replica.ok()) {
    std::fprintf(stderr, "replica open of '%s' failed: %s\n", dir.c_str(),
                 replica.status().ToString().c_str());
    return 1;
  }
  uint64_t generation = (*replica)->catalog_generation();
  std::printf("Replica '%s': opened at generation %llu with %zu tables\n",
              dir.c_str(), static_cast<unsigned long long>(generation),
              (*replica)->NumTables());

  // Read-only fencing: any mutation is a typed kFailedPrecondition, and
  // the replica stays fully serviceable afterwards.
  Status denied = (*replica)->SaveCatalog(dir).status();
  std::printf("  mutation fenced off: %s\n", denied.ToString().c_str());

  RequestOptions req;
  req.holistic_alignment = false;
  for (int poll = 0; poll <= polls; ++poll) {
    if (poll > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      auto refreshed = (*replica)->RefreshReplica();
      if (!refreshed.ok()) {
        std::fprintf(stderr, "refresh failed: %s\n",
                     refreshed.status().ToString().c_str());
        return 1;
      }
      if (refreshed->generation != generation) {
        std::printf(
            "  refresh: generation %llu -> %llu (%zu loaded, %zu replaced, "
            "%zu dropped, %zu kept)\n",
            static_cast<unsigned long long>(generation),
            static_cast<unsigned long long>(refreshed->generation),
            refreshed->tables_loaded, refreshed->tables_replaced,
            refreshed->tables_dropped, refreshed->tables_kept);
        generation = refreshed->generation;
      } else {
        std::printf("  refresh: generation %llu unchanged\n",
                    static_cast<unsigned long long>(generation));
      }
    }
    std::vector<std::string> names = (*replica)->TableNames();
    std::sort(names.begin(), names.end());
    if (names.empty()) continue;
    auto top = (*replica)->DiscoverUnionable(names.front(), 3);
    auto integrated = (*replica)->Integrate(names, req);
    if (!top.ok() || !integrated.ok()) {
      std::fprintf(stderr, "replica query failed: %s\n",
                   (top.ok() ? integrated.status() : top.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    std::printf(
        "  poll %d @ generation %llu: %zu tables, %zu unionable with '%s', "
        "integrate -> %zu rows\n",
        poll, static_cast<unsigned long long>(generation), names.size(),
        top->size(), names.front().c_str(), integrated->integrated.NumRows());
  }
  const CatalogStats stats = (*replica)->catalog_stats();
  std::printf("Replica stats: %llu opens, %llu refreshes, final generation "
              "%llu\n",
              static_cast<unsigned long long>(stats.opens),
              static_cast<unsigned long long>(stats.refreshes),
              static_cast<unsigned long long>(stats.generation));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  // 9. Replica mode replaces the writer walkthrough entirely.
  const std::string replica_dir = flags.GetString("replica", "");
  if (!replica_dir.empty()) return RunReplica(replica_dir, flags);
  ImdbOptions gen;
  gen.target_tuples = static_cast<size_t>(flags.GetInt("tuples", 3000));
  const int calls = flags.GetInt("calls", 3);
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 2));
  const int deadline_ms = flags.GetInt("deadline_ms", 0);
  const int budget_nodes = flags.GetInt("budget_nodes", 0);
  const size_t max_concurrent =
      static_cast<size_t>(flags.GetInt("max_concurrent", 0));

  // 10. Telemetry knobs: per-request trace files, the slow-request log
  //     threshold, and the metrics dump destination.
  const std::string trace_dir = flags.GetString("trace_out", "");
  const double slow_ms = flags.GetDouble("slow_ms", 0.0);
  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --trace_out dir %s: %s\n",
                   trace_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }
  std::atomic<uint64_t> request_counter{0};

  // 1. The session: constructed once, reused for every request below.
  //    --max_concurrent bounds in-flight integrate requests (one queued
  //    slot; further arrivals are rejected with kResourceExhausted).
  auto engine = LakeEngine::Create(EngineOptions()
                                       .SetModel(ModelKind::kMistral)
                                       .SetNumThreads(threads)
                                       .SetMaxConcurrentRequests(max_concurrent)
                                       .SetMaxQueuedRequests(
                                           max_concurrent > 0 ? 1 : 0)
                                       .SetSlowRequestMs(slow_ms));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine setup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // 8. Warm start: open the durable catalog first. A failed open (first
  //    run, corruption, version skew) is a typed error and a cold start,
  //    never a crash; the re-registration below rebuilds what is missing.
  const std::string catalog_dir = flags.GetString("catalog", "");
  bool warm_start = false;
  if (!catalog_dir.empty()) {
    auto opened = (*engine)->OpenCatalog(catalog_dir);
    if (opened.ok()) {
      warm_start = opened->tables_loaded > 0;
      std::printf(
          "Catalog '%s': loaded %zu tables / %zu dict values, %.2f MB "
          "mapped, %zu columns re-sketched, %.1f ms\n",
          catalog_dir.c_str(), opened->tables_loaded, opened->values_loaded,
          static_cast<double>(opened->mapped_bytes) / (1 << 20),
          opened->columns_resketched, opened->seconds * 1e3);
    } else {
      std::printf("Catalog '%s': cold start (%s)\n", catalog_dir.c_str(),
                  opened.status().ToString().c_str());
    }
  }

  // 2. Register the lake. On a warm start the catalog already registered
  //    these names; kAlreadyExists simply means the loaded table stands.
  ImdbBenchmark bench = GenerateImdb(gen);
  std::vector<std::string> names;
  for (const auto& t : bench.tables) {
    Status s = (*engine)->RegisterTable(t.name(), t);
    if (!s.ok() &&
        !(warm_start && s.code() == ErrorCode::kAlreadyExists)) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
    names.push_back(t.name());
  }
  std::printf("Session over %zu tables (%zu input tuples), %zu threads\n",
              (*engine)->NumTables(), bench.total_tuples, threads);

  // 3. Same request, several times: the shared cache turns repeat
  //    embeddings into hits and shrinks match time.
  RequestOptions req;
  req.holistic_alignment = false;  // IMDB headers are trustworthy
  for (int call = 1; call <= calls; ++call) {
    RequestOptions call_req = req;
    TracedRequest tr = BeginRequest(&request_counter, trace_dir, &call_req);
    auto result = (*engine)->Integrate(names, call_req);
    FinishRequest(trace_dir, tr);
    if (!result.ok()) {
      std::fprintf(stderr, "req=%llu call %d failed: %s\n",
                   static_cast<unsigned long long>(tr.id), call,
                   result.status().ToString().c_str());
      return 1;
    }
    const auto& stats = result->report.match_stats;
    std::printf(
        "  req=%llu call %d: %zu rows, match %.1f ms, FD %.1f ms "
        "(cache: %zu hits / %zu misses this call)\n",
        static_cast<unsigned long long>(tr.id), call,
        result->integrated.NumRows(), result->report.match_seconds * 1e3,
        result->report.fd_seconds * 1e3, stats.embedding_cache_hits,
        stats.embedding_cache_misses);
  }

  // 4. Streaming: same pipeline, constant-memory output path.
  CountingSink sink;
  RequestOptions stream_req = req;
  stream_req.batch_rows = 512;
  TracedRequest stream_tr =
      BeginRequest(&request_counter, trace_dir, &stream_req);
  auto streamed = (*engine)->IntegrateToSink(names, &sink, stream_req);
  FinishRequest(trace_dir, stream_tr);
  if (!streamed.ok()) {
    std::fprintf(stderr, "req=%llu streaming failed: %s\n",
                 static_cast<unsigned long long>(stream_tr.id),
                 streamed.status().ToString().c_str());
    return 1;
  }
  std::printf("  req=%llu streamed %zu rows in %zu batches of <=%zu\n",
              static_cast<unsigned long long>(stream_tr.id), sink.rows(),
              sink.batches(), stream_req.batch_rows);

  // 5. Cancellation: fire the token the moment the FD stage begins; the
  //    request returns kCancelled from the next checkpoint instead of
  //    finishing.
  RequestOptions cancel_req = req;
  cancel_req.cancel = CancelToken::Create();
  cancel_req.progress = [&cancel_req](const ProgressEvent& e) {
    if (e.stage == Stage::kFdEnumerate && e.done == 0) {
      cancel_req.cancel.Cancel();
    }
  };
  TracedRequest cancel_tr =
      BeginRequest(&request_counter, trace_dir, &cancel_req);
  auto cancelled = (*engine)->Integrate(names, cancel_req);
  FinishRequest(trace_dir, cancel_tr);
  if (cancelled.code() == ErrorCode::kCancelled) {
    std::printf("  req=%llu cancelled request surfaced as expected: %s\n",
                static_cast<unsigned long long>(cancel_tr.id),
                cancelled.status().ToString().c_str());
  } else {
    std::fprintf(stderr,
                 "expected kCancelled, got %s\n",
                 cancelled.ok()
                     ? "a successful result"
                     : cancelled.status().ToString().c_str());
    return 1;
  }

  // 6. Discovery: which registered tables union with this one? The index
  //    was built incrementally at registration; queries touch sketches
  //    only.
  const size_t discover_k =
      static_cast<size_t>(flags.GetInt("discover_k", 3));
  // Discovery queries take a bare RequestContext; the tracer rides on it.
  RequestOptions discover_opts;
  TracedRequest discover_tr =
      BeginRequest(&request_counter, trace_dir, &discover_opts);
  RequestContext discover_ctx;
  discover_ctx.tracer = discover_opts.tracer;
  auto unionable =
      (*engine)->DiscoverUnionable(names.front(), discover_k, discover_ctx);
  FinishRequest(trace_dir, discover_tr);
  if (!unionable.ok()) {
    std::fprintf(stderr, "req=%llu discovery failed: %s\n",
                 static_cast<unsigned long long>(discover_tr.id),
                 unionable.status().ToString().c_str());
    return 1;
  }
  std::printf("  req=%llu top-%zu unionable with '%s':\n",
              static_cast<unsigned long long>(discover_tr.id), discover_k,
              names.front().c_str());
  for (const auto& c : *unionable) {
    std::printf("    %-20s score %.3f (overlap %.3f, schema %.3f, %zu cols)\n",
                c.name.c_str(), c.score, c.overlap, c.compat,
                c.matched_columns);
  }

  // Optional: discover partners for an external CSV and integrate the
  // discovered set in one call.
  const std::string discover_csv = flags.GetString("discover", "");
  if (!discover_csv.empty()) {
    // A warm start may have restored a stale "query" from the last run's
    // checkpoint; drop it so this run's CSV is what gets discovered.
    if (warm_start) (*engine)->Unregister("query");
    Status reg = (*engine)->RegisterCsv("query", discover_csv);
    if (!reg.ok()) {
      std::fprintf(stderr, "discover: register failed: %s\n",
                   reg.ToString().c_str());
      return 1;
    }
    CountingSink discover_sink;
    std::vector<DiscoveryCandidate> discovered;
    RequestOptions dreq = req;
    TracedRequest dtr = BeginRequest(&request_counter, trace_dir, &dreq);
    auto dreport = (*engine)->DiscoverAndIntegrate(
        "query", discover_k, &discover_sink, dreq, &discovered);
    FinishRequest(trace_dir, dtr);
    if (!dreport.ok()) {
      std::fprintf(stderr, "req=%llu discover+integrate failed: %s\n",
                   static_cast<unsigned long long>(dtr.id),
                   dreport.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "  req=%llu discover '%s' k=%zu: %zu candidates, integrated %zu rows "
        "in %zu batches\n",
        static_cast<unsigned long long>(dtr.id), discover_csv.c_str(),
        discover_k, discovered.size(), discover_sink.rows(),
        discover_sink.batches());
  }

  // 7. Lifecycle hardening. A deadline and/or FD node budget under the
  //    kTruncate policy degrades gracefully: the request stays ok() and the
  //    truncation report says what was cut.
  size_t truncated_requests = 0;
  if (deadline_ms > 0 || budget_nodes > 0) {
    RequestOptions bounded = req;
    bounded.budget_policy = BudgetPolicy::kTruncate;
    if (deadline_ms > 0) {
      bounded.deadline = Deadline::AfterMillis(deadline_ms);
    }
    if (budget_nodes > 0) {
      bounded.budget.max_fd_nodes = static_cast<size_t>(budget_nodes);
    }
    TracedRequest btr = BeginRequest(&request_counter, trace_dir, &bounded);
    auto bounded_result = (*engine)->Integrate(names, bounded);
    FinishRequest(trace_dir, btr);
    if (!bounded_result.ok()) {
      // Under kTruncate only kCancelled (not used here) or a genuine error
      // escapes; report and keep going — the engine must stay serviceable.
      std::printf("  req=%llu bounded request failed: %s\n",
                  static_cast<unsigned long long>(btr.id),
                  bounded_result.status().ToString().c_str());
    } else {
      const Truncation& cut = bounded_result->report.truncation;
      if (cut.truncated) ++truncated_requests;
      const std::string detail =
          cut.truncated
              ? StrFormat("TRUNCATED (%s; %zu components kept, %zu skipped)",
                          cut.reason.c_str(), cut.components_completed,
                          cut.components_skipped)
              : "complete";
      std::printf(
          "  req=%llu bounded request (deadline %d ms, budget %d nodes): "
          "%zu rows, %s\n",
          static_cast<unsigned long long>(btr.id), deadline_ms, budget_nodes,
          bounded_result->integrated.NumRows(), detail.c_str());
    }
  }

  // Overload the admission gate: more concurrent requests than slots +
  // queue. The surplus must be rejected fast, and the engine must keep
  // serving afterwards.
  size_t rejected_requests = 0;
  if (max_concurrent > 0) {
    const size_t storm = 2 * max_concurrent + 2;
    std::atomic<size_t> ok_count{0}, rejected{0}, other{0};
    std::vector<std::thread> workers;
    workers.reserve(storm);
    const uint64_t storm_first_id = request_counter.load() + 1;
    for (size_t i = 0; i < storm; ++i) {
      workers.emplace_back([&] {
        RequestOptions storm_req = req;
        TracedRequest storm_tr =
            BeginRequest(&request_counter, trace_dir, &storm_req);
        auto r = (*engine)->Integrate(names, storm_req);
        FinishRequest(trace_dir, storm_tr);
        if (r.ok()) {
          ok_count.fetch_add(1);
        } else if (r.code() == ErrorCode::kResourceExhausted) {
          rejected.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    rejected_requests = rejected.load();
    const AdmissionStats stats = (*engine)->admission_stats();
    std::printf(
        "  req=%llu..%llu admission storm of %zu (max %zu in flight, "
        "1 queued): %zu ok, %zu rejected, %zu other; session counters "
        "admitted=%llu queued=%llu rejected=%llu\n",
        static_cast<unsigned long long>(storm_first_id),
        static_cast<unsigned long long>(request_counter.load()), storm,
        max_concurrent, ok_count.load(), rejected.load(), other.load(),
        static_cast<unsigned long long>(stats.admitted),
        static_cast<unsigned long long>(stats.queued),
        static_cast<unsigned long long>(stats.rejected));
    if (other.load() != 0) {
      std::fprintf(stderr, "unexpected non-admission failure under storm\n");
      return 1;
    }
  }

  if (deadline_ms > 0 || budget_nodes > 0 || max_concurrent > 0) {
    std::printf("  lifecycle counters: truncated=%zu rejected=%zu\n",
                truncated_requests, rejected_requests);
  }

  // 8. Checkpoint: persist the session's lake for the next process. After
  //    a warm start with no changes this is a cheap incremental save that
  //    reuses every table's on-disk extents.
  if (!catalog_dir.empty()) {
    auto saved = (*engine)->SaveCatalog(catalog_dir);
    if (!saved.ok()) {
      std::fprintf(stderr, "SaveCatalog failed: %s\n",
                   saved.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "Catalog '%s': saved %s (%zu tables written, %zu reused, %zu values "
        "appended, %.2f MB, %.1f ms)\n",
        catalog_dir.c_str(), saved->incremental ? "incrementally" : "in full",
        saved->tables_written, saved->tables_reused, saved->values_appended,
        static_cast<double>(saved->bytes_written) / (1 << 20),
        saved->seconds * 1e3);
  }

  // 10. Metrics scrape: the same snapshot LakeEngine::MetricsSnapshot()
  //     returns, rendered in Prometheus text exposition format.
  if (!metrics_out.empty()) {
    const std::string text = RenderMetricsText((*engine)->MetricsSnapshot());
    if (metrics_out == "-") {
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else {
      std::FILE* f = std::fopen(metrics_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write --metrics_out %s\n",
                     metrics_out.c_str());
        return 1;
      }
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("Metrics written to %s\n", metrics_out.c_str());
    }
  }
  return 0;
}
