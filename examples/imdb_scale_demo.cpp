// IMDB-scale integration demo: the Fig. 3 workload at a chosen size.
//
// Generates the 6-table IMDB-style benchmark, integrates it with regular
// FD and with Fuzzy FD, and prints stage timings plus join-graph
// statistics — a single point of the Fig. 3 curve, inspectable by hand.
//
//   ./imdb_scale_demo [--tuples=5000] [--parallel] [--threads=4]
#include <cstdio>

#include "core/fuzzy_fd.h"
#include "datagen/imdb.h"
#include "embedding/model_zoo.h"
#include "fd/aligned_schema.h"
#include "metrics/report.h"
#include "util/flags.h"
#include "util/str.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  ImdbOptions gen;
  gen.target_tuples = static_cast<size_t>(flags.GetInt("tuples", 5000));
  bool parallel = flags.GetBool("parallel", false);
  size_t threads = static_cast<size_t>(flags.GetInt("threads", 0));

  ImdbBenchmark bench = GenerateImdb(gen);
  std::printf("Generated IMDB-style integration set (%s input tuples):\n",
              WithThousandsSep(static_cast<int64_t>(bench.total_tuples)).c_str());
  for (const auto& t : bench.tables) {
    std::printf("  %-17s %6zu rows x %zu cols\n", t.name().c_str(),
                t.NumRows(), t.NumColumns());
  }

  auto aligned = AlignByName(bench.tables);
  if (!aligned.ok()) {
    std::fprintf(stderr, "%s\n", aligned.status().ToString().c_str());
    return 1;
  }

  FuzzyFdReport regular_report;
  auto regular = RegularFdBaseline(bench.tables, *aligned, FdOptions(),
                                   parallel, threads, &regular_report);
  if (!regular.ok()) {
    std::fprintf(stderr, "regular FD failed: %s\n",
                 regular.status().ToString().c_str());
    return 1;
  }

  FuzzyFdOptions opts;
  opts.matcher.model = MakeModel(ModelKind::kMistral);
  opts.parallel = parallel;
  opts.num_threads = threads;
  FuzzyFdReport fuzzy_report;
  auto fuzzy = FuzzyFullDisjunction(opts).RunToTuples(bench.tables, *aligned,
                                                      &fuzzy_report);
  if (!fuzzy.ok()) {
    std::fprintf(stderr, "fuzzy FD failed: %s\n",
                 fuzzy.status().ToString().c_str());
    return 1;
  }

  ReportTable report({"method", "match (s)", "FD (s)", "total (s)",
                      "output tuples", "components", "largest"});
  auto row = [&](const char* name, const FuzzyFdReport& r, size_t results) {
    report.AddRow({name, FormatDouble(r.match_seconds, 3),
                   FormatDouble(r.fd_seconds, 3),
                   FormatDouble(r.total_seconds(), 3),
                   std::to_string(results),
                   std::to_string(r.fd_stats.num_components),
                   std::to_string(r.fd_stats.largest_component)});
  };
  row("regular FD (ALITE)", regular_report, regular->tuples.size());
  row("fuzzy FD", fuzzy_report, fuzzy->tuples.size());
  std::printf("\n%s", report.Render().c_str());

  std::printf(
      "\nThe IMDB workload is an equi-join: the fuzzy matcher's exact-match "
      "pre-pass\nresolves every join value, so fuzzy FD adds only %.3f s of "
      "matching —\nthe paper's Fig. 3 'no overhead' claim.\n",
      fuzzy_report.match_seconds);
  return 0;
}
