// Full data-lake pipeline on generated open-data-style tables:
//
//   CSV files on disk → LakeEngine registry → holistic schema matching
//   (headers are deliberately unreliable) → fuzzy Full Disjunction streamed
//   through a RowSink → entity matching over the integrated tuples →
//   P/R/F1 against ground truth.
//
// This is the scenario the paper's introduction motivates: discovered
// tables about the same entities, scattered attributes, inconsistent
// values. The engine session runs both the regular-FD baseline and the
// fuzzy pipeline over the same registered tables, sharing the embedding
// cache between the two requests.
//
//   ./lake_integration [--entities=150] [--seed=11] [--dir=/tmp/lakefuzz_demo]
#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "datagen/embench.h"
#include "em/entity_matcher.h"
#include "metrics/pair_eval.h"
#include "table/csv.h"
#include "table/print.h"
#include "util/flags.h"

using namespace lakefuzz;

namespace {

/// Collects streamed result batches — the minimal RowSink. A real service
/// would serialize each batch to its response stream instead of keeping
/// them; the per-batch vector is reused by the engine, hence the copy.
class CollectingSink : public RowSink {
 public:
  Status Begin(const std::vector<std::string>& universal_names) override {
    universal_names_ = universal_names;
    return Status::OK();
  }
  Status OnBatch(const std::vector<FdResultTuple>& batch) override {
    ++batches_;
    tuples_.insert(tuples_.end(), batch.begin(), batch.end());
    return Status::OK();
  }
  const std::vector<std::string>& universal_names() const {
    return universal_names_;
  }
  const std::vector<FdResultTuple>& tuples() const { return tuples_; }
  size_t batches() const { return batches_; }

 private:
  std::vector<std::string> universal_names_;
  std::vector<FdResultTuple> tuples_;
  size_t batches_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  std::string dir = flags.GetString("dir", "/tmp/lakefuzz_demo");

  // 1. Simulate a discovered integration set and drop it as CSV files —
  //    the shape in which a data lake actually hands you tables.
  EmBenchOptions gen;
  gen.num_entities = static_cast<size_t>(flags.GetInt("entities", 150));
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  EmBenchmark bench = GenerateEmBenchmark(gen);

  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  for (const auto& t : bench.tables) {
    std::string path = dir + "/" + t.name() + ".csv";
    Status s = WriteCsvFile(t, path);
    if (!s.ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    paths.push_back(path);
  }
  std::printf("Wrote %zu tables to %s\n", paths.size(), dir.c_str());

  // 2. One session for the whole workload: model + embedding cache +
  //    registry built once, reused by both integration requests below.
  auto engine = LakeEngine::Create(
      EngineOptions().SetModel(ModelKind::kMistral));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine setup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> names;
  for (size_t i = 0; i < paths.size(); ++i) {
    std::string name = bench.tables[i].name();
    Status s = (*engine)->RegisterCsv(name, paths[i]);
    if (!s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("  registered %-8s %4zu rows x %zu cols\n", name.c_str(),
                bench.tables[i].NumRows(), bench.tables[i].NumColumns());
    names.push_back(std::move(name));
  }

  // 3+4. Integrate both ways through the streaming sink (columns align
  //      holistically — by content, not headers). The second request hits
  //      the session embedding cache warmed by the first.
  auto integrate = [&](bool fuzzy, CollectingSink* sink,
                       FuzzyFdReport* report) -> bool {
    RequestOptions req;
    req.fuzzy = fuzzy;
    req.batch_rows = 256;
    auto r = (*engine)->IntegrateToSink(names, sink, req);
    if (!r.ok()) {
      std::fprintf(stderr, "integration failed: %s\n",
                   r.status().ToString().c_str());
      return false;
    }
    *report = *r;
    return true;
  };
  CollectingSink regular_sink;
  CollectingSink fuzzy_sink;
  FuzzyFdReport regular_report;
  FuzzyFdReport fuzzy_report;
  if (!integrate(false, &regular_sink, &regular_report) ||
      !integrate(true, &fuzzy_sink, &fuzzy_report)) {
    return 1;
  }

  std::printf("\nAligned into %zu universal columns:",
              fuzzy_sink.universal_names().size());
  for (const auto& name : fuzzy_sink.universal_names()) {
    std::printf(" [%s]", name.c_str());
  }
  std::printf("\n");
  std::printf(
      "\nIntegration: regular FD → %zu rows in %.1f ms; fuzzy FD → %zu "
      "rows in %zu batches\n(%zu values rewritten, %.1f ms align + %.1f ms "
      "matching + %.1f ms FD = %.1f ms total;\ncache after both requests: "
      "%zu hits / %zu misses)\n",
      regular_sink.tuples().size(), regular_report.total_seconds() * 1e3,
      fuzzy_sink.tuples().size(), fuzzy_sink.batches(),
      fuzzy_report.values_rewritten, fuzzy_report.align_seconds * 1e3,
      fuzzy_report.match_seconds * 1e3, fuzzy_report.fd_seconds * 1e3,
      fuzzy_report.total_seconds() * 1e3,
      (*engine)->embedding_cache().hits(),
      (*engine)->embedding_cache().misses());

  // 5. Downstream entity matching, evaluated on input-tuple pairs.
  EntityMatcherOptions em_opts;
  em_opts.similarity_threshold = 0.8;
  em_opts.model = (*engine)->model();  // embedding-based cell similarity
  EntityMatcher em(em_opts);
  auto evaluate = [&](const CollectingSink& sink, const char* label) {
    Table integrated =
        FdResultsToTable(sink.tuples(), sink.universal_names(), label);
    auto clusters = em.Cluster(integrated);
    Prf prf = EvaluateClustering(ExpandClustersToTids(sink.tuples(), clusters),
                                 bench.tid_entity);
    std::printf("  EM over %-28s %s\n", label, prf.ToString().c_str());
  };
  std::printf("\nDownstream entity matching quality:\n");
  evaluate(regular_sink, "regular FD (ALITE baseline):");
  evaluate(fuzzy_sink, "fuzzy FD (this paper):");
  return 0;
}
