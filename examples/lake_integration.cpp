// Full data-lake pipeline on generated open-data-style tables:
//
//   CSV files on disk → parse → holistic schema matching (headers are
//   deliberately unreliable) → fuzzy Full Disjunction → entity matching
//   over the integrated table → P/R/F1 against ground truth.
//
// This is the scenario the paper's introduction motivates: discovered
// tables about the same entities, scattered attributes, inconsistent
// values.
//
//   ./lake_integration [--entities=150] [--seed=11] [--dir=/tmp/lakefuzz_demo]
#include <cstdio>
#include <filesystem>

#include "core/fuzzy_fd.h"
#include "datagen/embench.h"
#include "em/entity_matcher.h"
#include "embedding/model_zoo.h"
#include "match/schema_matcher.h"
#include "metrics/pair_eval.h"
#include "table/csv.h"
#include "table/print.h"
#include "util/flags.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  std::string dir = flags.GetString("dir", "/tmp/lakefuzz_demo");

  // 1. Simulate a discovered integration set and drop it as CSV files —
  //    the shape in which a data lake actually hands you tables.
  EmBenchOptions gen;
  gen.num_entities = static_cast<size_t>(flags.GetInt("entities", 150));
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  EmBenchmark bench = GenerateEmBenchmark(gen);

  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  for (const auto& t : bench.tables) {
    std::string path = dir + "/" + t.name() + ".csv";
    Status s = WriteCsvFile(t, path);
    if (!s.ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    paths.push_back(path);
  }
  std::printf("Wrote %zu tables to %s\n", paths.size(), dir.c_str());

  // 2. Ingest.
  std::vector<Table> tables;
  for (const auto& path : paths) {
    auto t = ReadCsvFile(path);
    if (!t.ok()) {
      std::fprintf(stderr, "read failed: %s\n", t.status().ToString().c_str());
      return 1;
    }
    std::printf("  parsed %-8s %4zu rows x %zu cols\n", t->name().c_str(),
                t->NumRows(), t->NumColumns());
    tables.push_back(std::move(t).value());
  }

  // 3. Align columns holistically (by content, not headers).
  auto model = MakeModel(ModelKind::kMistral);
  HolisticSchemaMatcher schema_matcher(model);
  auto aligned = schema_matcher.Align(tables);
  if (!aligned.ok()) {
    std::fprintf(stderr, "alignment failed: %s\n",
                 aligned.status().ToString().c_str());
    return 1;
  }
  std::printf("\nAligned into %zu universal columns:", aligned->NumUniversal());
  for (const auto& name : aligned->universal_names) {
    std::printf(" [%s]", name.c_str());
  }
  std::printf("\n");

  // 4. Integrate, both ways.
  FuzzyFdOptions opts;
  opts.matcher.model = model;
  FuzzyFdReport report;
  auto fuzzy = FuzzyFullDisjunction(opts).RunToTuples(tables, *aligned,
                                                      &report);
  auto regular = RegularFdBaseline(tables, *aligned, FdOptions(), false, 0,
                                   nullptr);
  if (!fuzzy.ok() || !regular.ok()) {
    std::fprintf(stderr, "integration failed\n");
    return 1;
  }
  std::printf(
      "\nIntegration: regular FD → %zu rows; fuzzy FD → %zu rows "
      "(%zu values rewritten, %.1f ms matching + %.1f ms FD)\n",
      regular->tuples.size(), fuzzy->tuples.size(), report.values_rewritten,
      report.match_seconds * 1e3, report.fd_seconds * 1e3);

  // 5. Downstream entity matching, evaluated on input-tuple pairs.
  EntityMatcherOptions em_opts;
  em_opts.similarity_threshold = 0.8;
  em_opts.model = model;  // embedding-based cell similarity
  EntityMatcher em(em_opts);
  auto evaluate = [&](const FdResult& fd, const char* label) {
    Table integrated =
        FdResultsToTable(fd.tuples, aligned->universal_names, label);
    auto clusters = em.Cluster(integrated);
    Prf prf = EvaluateClustering(ExpandClustersToTids(fd.tuples, clusters),
                                 bench.tid_entity);
    std::printf("  EM over %-28s %s\n", label, prf.ToString().c_str());
  };
  std::printf("\nDownstream entity matching quality:\n");
  evaluate(*regular, "regular FD (ALITE baseline):");
  evaluate(*fuzzy, "fuzzy FD (this paper):");
  return 0;
}
