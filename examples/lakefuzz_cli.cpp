// lakefuzz_cli: integrate CSV files from the command line.
//
//   ./lakefuzz_cli t1.csv t2.csv t3.csv [--out=integrated.csv]
//                  [--model=Mistral] [--theta=0.7] [--auto-theta]
//                  [--align=holistic|by-name] [--regular-fd] [--provenance]
//                  [--stats]
//
// The thin shell around core/pipeline.h — the way a practitioner would
// actually invoke the system on discovered tables.
#include <cstdio>

#include "core/pipeline.h"
#include "table/csv.h"
#include "table/print.h"
#include "table/stats.h"
#include "util/flags.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.positional().size() < 2) {
    std::fprintf(stderr,
                 "usage: lakefuzz_cli <a.csv> <b.csv> [more.csv...] "
                 "[--out=path] [--model=Mistral] [--theta=0.7] "
                 "[--auto-theta] [--align=holistic|by-name] [--regular-fd] "
                 "[--provenance] [--stats]\n");
    return 2;
  }

  PipelineOptions opts;
  auto kind = ModelKindFromString(flags.GetString("model", "Mistral"));
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 2;
  }
  opts.model = kind.value();
  opts.holistic_alignment =
      flags.GetString("align", "holistic") != "by-name";
  opts.fuzzy = !flags.GetBool("regular-fd", false);
  opts.include_provenance = flags.GetBool("provenance", false);
  opts.fuzzy_fd.matcher.threshold = flags.GetDouble("theta", 0.7);
  opts.fuzzy_fd.matcher.auto_threshold = flags.GetBool("auto-theta", false);

  auto result = IntegrateCsvFiles(flags.positional(), opts);
  if (!result.ok()) {
    std::fprintf(stderr, "integration failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::fprintf(stderr,
               "aligned %zu universal columns in %.1f ms; matching %.1f ms "
               "(%zu values rewritten); FD %.1f ms → %zu rows\n",
               result->aligned.NumUniversal(), result->align_seconds * 1e3,
               result->report.match_seconds * 1e3,
               result->report.values_rewritten,
               result->report.fd_seconds * 1e3,
               result->integrated.NumRows());

  if (flags.GetBool("stats", false)) {
    for (size_t c = 0; c < result->integrated.NumColumns(); ++c) {
      std::fprintf(
          stderr, "  column %-24s %s\n",
          result->integrated.schema().field(c).name.c_str(),
          RenderColumnStats(ComputeColumnStats(result->integrated, c))
              .c_str());
    }
  }

  std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::printf("%s", RenderTable(result->integrated).c_str());
  } else {
    Status s = WriteCsvFile(result->integrated, out_path);
    if (!s.ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}
