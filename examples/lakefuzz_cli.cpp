// lakefuzz_cli: integrate CSV files from the command line.
//
//   ./lakefuzz_cli t1.csv t2.csv t3.csv [--out=integrated.csv]
//                  [--model=Mistral] [--theta=0.7] [--auto-theta]
//                  [--align=holistic|by-name] [--regular-fd] [--provenance]
//                  [--threads=1] [--stats] [--progress]
//
// The thin shell around core/engine.h — the way a practitioner would
// actually invoke the system on discovered tables: register every CSV into
// a LakeEngine session, then integrate the lot.
#include <cstdio>

#include "core/engine.h"
#include "table/csv.h"
#include "table/print.h"
#include "table/stats.h"
#include "util/flags.h"

using namespace lakefuzz;

namespace {

/// Registry name for a path: the file stem, suffixed until free when stems
/// collide (integrating a.csv from two directories must not fail — and the
/// suffixed candidate may itself collide with a stem like "a_2").
std::string RegistryName(const std::string& path, size_t index,
                         const LakeEngine& engine) {
  size_t slash = path.find_last_of('/');
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
  if (stem.empty()) stem = "table";
  auto taken = [&engine](const std::string& name) {
    for (const auto& existing : engine.TableNames()) {
      if (existing == name) return true;
    }
    return false;
  };
  std::string candidate = stem;
  for (size_t suffix = index; taken(candidate); ++suffix) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "_%zu", suffix);
    candidate = stem + buf;
  }
  return candidate;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.positional().size() < 2) {
    std::fprintf(stderr,
                 "usage: lakefuzz_cli <a.csv> <b.csv> [more.csv...] "
                 "[--out=path] [--model=Mistral] [--theta=0.7] "
                 "[--auto-theta] [--align=holistic|by-name] [--regular-fd] "
                 "[--provenance] [--threads=1] [--stats] [--progress]\n");
    return 2;
  }

  auto kind = ModelKindFromString(flags.GetString("model", "Mistral"));
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 2;
  }

  // Session setup: model + shared embedding cache + worker pool, once.
  EngineOptions engine_opts;
  engine_opts.SetModel(kind.value())
      .SetNumThreads(static_cast<size_t>(flags.GetInt("threads", 1)));
  auto engine = LakeEngine::Create(engine_opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine setup failed: %s\n",
                 engine.status().ToString().c_str());
    return 2;
  }

  std::vector<std::string> names;
  for (size_t i = 0; i < flags.positional().size(); ++i) {
    const std::string& path = flags.positional()[i];
    std::string name = RegistryName(path, i, **engine);
    Status s = (*engine)->RegisterCsv(name, path);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot register %s: %s\n", path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    names.push_back(std::move(name));
  }

  RequestOptions req;
  req.holistic_alignment = flags.GetString("align", "holistic") != "by-name";
  req.fuzzy = !flags.GetBool("regular-fd", false);
  req.include_provenance = flags.GetBool("provenance", false);
  req.fuzzy_fd.matcher.threshold = flags.GetDouble("theta", 0.7);
  req.fuzzy_fd.matcher.auto_threshold = flags.GetBool("auto-theta", false);
  if (flags.GetBool("progress", false)) {
    req.progress = [](const ProgressEvent& e) {
      std::fprintf(stderr, "[%s] %zu/%zu\n",
                   std::string(StageName(e.stage)).c_str(), e.done, e.total);
    };
  }

  auto result = (*engine)->Integrate(names, req);
  if (!result.ok()) {
    std::fprintf(stderr, "integration failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const FuzzyFdReport& report = result->report;
  std::fprintf(stderr,
               "aligned %zu universal columns in %.1f ms; matching %.1f ms "
               "(%zu values rewritten); FD %.1f ms → %zu rows "
               "(total %.1f ms)\n",
               result->aligned.NumUniversal(), report.align_seconds * 1e3,
               report.match_seconds * 1e3, report.values_rewritten,
               report.fd_seconds * 1e3, result->integrated.NumRows(),
               report.total_seconds() * 1e3);

  if (flags.GetBool("stats", false)) {
    for (size_t c = 0; c < result->integrated.NumColumns(); ++c) {
      std::fprintf(
          stderr, "  column %-24s %s\n",
          result->integrated.schema().field(c).name.c_str(),
          RenderColumnStats(ComputeColumnStats(result->integrated, c))
              .c_str());
    }
  }

  std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::printf("%s", RenderTable(result->integrated).c_str());
  } else {
    Status s = WriteCsvFile(result->integrated, out_path);
    if (!s.ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}
