// Figure 2 walkthrough: the Match Values component step by step.
//
// Feeds the three City columns of Fig. 1 through the ValueMatcher and
// prints the resulting disjoint value groups, elected representatives, and
// the final combined column — mirroring the paper's Example 4.
//
//   ./match_values_walkthrough [--theta=0.7] [--model=Mistral]
#include <cstdio>

#include "core/value_matcher.h"
#include "embedding/model_zoo.h"
#include "metrics/report.h"
#include "util/flags.h"

using namespace lakefuzz;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  auto kind = ModelKindFromString(flags.GetString("model", "Mistral"));
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 1;
  }

  // The aligning City columns of T1, T2, T3 (paper Fig. 2, left).
  std::vector<std::vector<std::string>> columns = {
      {"Berlinn", "Toronto", "Barcelona", "New Delhi"},
      {"Toronto", "Boston", "Berlin", "Barcelona"},
      {"Berlin", "barcelona", "Boston"},
  };
  std::printf("Aligning City columns:\n");
  for (size_t c = 0; c < columns.size(); ++c) {
    std::printf("  T%zu.City: ", c + 1);
    for (const auto& v : columns[c]) std::printf("[%s] ", v.c_str());
    std::printf("\n");
  }

  ValueMatcherOptions opts;
  opts.model = MakeModel(kind.value());
  opts.threshold = flags.GetDouble("theta", 0.7);
  ValueMatcher matcher(opts);
  auto result = matcher.MatchColumns(columns);
  if (!result.ok()) {
    std::fprintf(stderr, "matching failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "\nMatched value groups (θ=%.2f, model=%s).\n"
      "Each group is one value of the final combined column; the\n"
      "representative is the value appearing most often across all\n"
      "aligning columns (ties → the earlier table):\n\n",
      opts.threshold, opts.model->name().c_str());

  ReportTable report({"representative", "members (column: value)"});
  for (const auto& g : result->groups) {
    std::string members;
    for (const auto& [col, value] : g.members) {
      if (!members.empty()) members += ", ";
      members += "T" + std::to_string(col + 1) + ": " + value;
    }
    report.AddRow({g.representative, members});
  }
  std::printf("%s", report.Render().c_str());

  std::printf(
      "\nStats: %zu exact matches, %zu assignment matches, %zu dense "
      "solve(s), %zu cost evaluations.\n",
      result->stats.exact_matches, result->stats.assignment_matches,
      result->stats.dense_solves, result->stats.cost_evaluations);

  std::printf("\nFinal combined column: ");
  for (const auto& g : result->groups) {
    std::printf("[%s] ", g.representative.c_str());
  }
  std::printf("\n");
  return 0;
}
