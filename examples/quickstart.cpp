// Quickstart: the paper's Figure 1, end to end, through the LakeEngine API.
//
// Registers the three COVID tables into an engine session, runs regular
// (equi-join) Full Disjunction and Fuzzy Full Disjunction over them, and
// prints all five tables — reproducing FD(T1,T2,T3) (9 fragmented tuples)
// vs Fuzzy FD(T1,T2,T3) (5 integrated tuples) from the paper. Both
// requests share the session's embedding cache.
//
//   ./quickstart [--theta=0.7]
#include <cstdio>

#include "core/engine.h"
#include "table/print.h"
#include "util/flags.h"

using namespace lakefuzz;

namespace {

Value S(const char* s) { return Value::String(s); }

std::vector<Table> BuildFig1Tables() {
  auto t1 = Table::FromRows(
      "T1", {"City", "Country"},
      {{S("Berlinn"), S("Germany")},
       {S("Toronto"), S("Canada")},
       {S("Barcelona"), S("Spain")},
       {S("New Delhi"), S("India")}});
  auto t2 = Table::FromRows(
      "T2", {"Country", "City", "Vac. Rate (1+ dose)"},
      {{S("CA"), S("Toronto"), S("83%")},
       {S("US"), S("Boston"), S("62%")},
       {S("DE"), S("Berlin"), S("63%")},
       {S("ES"), S("Barcelona"), S("82%")}});
  auto t3 = Table::FromRows(
      "T3", {"City", "Total Cases", "Death Rate (per 100k)"},
      {{S("Berlin"), S("1.4M"), S("147")},
       {S("barcelona"), S("2.68M"), S("275")},
       {S("Boston"), S("263K"), S("335")}});
  if (!t1.ok() || !t2.ok() || !t3.ok()) {
    std::fprintf(stderr, "failed to build example tables\n");
    std::exit(1);
  }
  return {std::move(t1).value(), std::move(t2).value(),
          std::move(t3).value()};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  double theta = flags.GetDouble("theta", 0.7);

  std::vector<Table> tables = BuildFig1Tables();
  std::printf("Input tables (Fig. 1 of the paper):\n\n");
  for (const auto& t : tables) std::printf("%s\n", RenderTable(t).c_str());

  // One engine session serves both integration requests. The Mistral
  // profile embeds values for the fuzzy matcher; the regular-FD request
  // never touches it.
  auto engine = LakeEngine::Create(
      EngineOptions().SetModel(ModelKind::kMistral));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine setup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> names;
  for (auto& t : tables) {
    std::string name = t.name();  // read before the move below
    names.push_back(name);
    Status s = (*engine)->RegisterTable(std::move(name), std::move(t));
    if (!s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Regular (equi-join) Full Disjunction — the ALITE baseline. Tuples with
  // inconsistent join values (Berlinn/Berlin, CA/Canada, barcelona/
  // Barcelona) stay fragmented.
  RequestOptions req;
  req.holistic_alignment = false;  // Fig. 1 headers are trustworthy
  req.include_provenance = true;
  req.fuzzy = false;
  auto regular = (*engine)->Integrate(names, req);
  if (!regular.ok()) {
    std::fprintf(stderr, "FD failed: %s\n",
                 regular.status().ToString().c_str());
    return 1;
  }
  Table regular_table = regular->integrated;
  regular_table.set_name("FD(T1,T2,T3)  [equi-join]");
  std::printf("%s\n", RenderTable(regular_table).c_str());

  // Fuzzy Full Disjunction: embed values with the session model, match
  // them across aligning columns with optimal bipartite assignment under
  // threshold θ, rewrite to representatives, then run the same FD.
  req.fuzzy = true;
  req.fuzzy_fd.matcher.threshold = theta;
  auto fuzzy = (*engine)->Integrate(names, req);
  if (!fuzzy.ok()) {
    std::fprintf(stderr, "fuzzy FD failed: %s\n",
                 fuzzy.status().ToString().c_str());
    return 1;
  }
  Table fuzzy_table = fuzzy->integrated;
  fuzzy_table.set_name("Fuzzy FD(T1,T2,T3)  [this paper]");
  std::printf("%s\n", RenderTable(fuzzy_table).c_str());

  std::printf(
      "Summary: equi-join FD produced %zu tuples; fuzzy FD produced %zu "
      "(θ=%.2f,\n%zu cell values rewritten in %.1f ms of matching).\n",
      regular_table.NumRows(), fuzzy_table.NumRows(), theta,
      fuzzy->report.values_rewritten, fuzzy->report.match_seconds * 1e3);
  return 0;
}
