// Quickstart: the paper's Figure 1, end to end.
//
// Builds the three COVID tables, runs regular (equi-join) Full Disjunction
// and Fuzzy Full Disjunction, and prints all five tables — reproducing
// FD(T1,T2,T3) (9 fragmented tuples) vs Fuzzy FD(T1,T2,T3) (5 integrated
// tuples) from the paper.
//
//   ./quickstart [--theta=0.7]
#include <cstdio>

#include "core/fuzzy_fd.h"
#include "embedding/model_zoo.h"
#include "fd/aligned_schema.h"
#include "table/print.h"
#include "util/flags.h"

using namespace lakefuzz;

namespace {

Value S(const char* s) { return Value::String(s); }

std::vector<Table> BuildFig1Tables() {
  auto t1 = Table::FromRows(
      "T1", {"City", "Country"},
      {{S("Berlinn"), S("Germany")},
       {S("Toronto"), S("Canada")},
       {S("Barcelona"), S("Spain")},
       {S("New Delhi"), S("India")}});
  auto t2 = Table::FromRows(
      "T2", {"Country", "City", "Vac. Rate (1+ dose)"},
      {{S("CA"), S("Toronto"), S("83%")},
       {S("US"), S("Boston"), S("62%")},
       {S("DE"), S("Berlin"), S("63%")},
       {S("ES"), S("Barcelona"), S("82%")}});
  auto t3 = Table::FromRows(
      "T3", {"City", "Total Cases", "Death Rate (per 100k)"},
      {{S("Berlin"), S("1.4M"), S("147")},
       {S("barcelona"), S("2.68M"), S("275")},
       {S("Boston"), S("263K"), S("335")}});
  if (!t1.ok() || !t2.ok() || !t3.ok()) {
    std::fprintf(stderr, "failed to build example tables\n");
    std::exit(1);
  }
  return {std::move(t1).value(), std::move(t2).value(),
          std::move(t3).value()};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  double theta = flags.GetDouble("theta", 0.7);

  std::vector<Table> tables = BuildFig1Tables();
  std::printf("Input tables (Fig. 1 of the paper):\n\n");
  for (const auto& t : tables) std::printf("%s\n", RenderTable(t).c_str());

  auto aligned = AlignByName(tables);
  if (!aligned.ok()) {
    std::fprintf(stderr, "alignment failed: %s\n",
                 aligned.status().ToString().c_str());
    return 1;
  }

  // Regular (equi-join) Full Disjunction — the ALITE baseline. Tuples with
  // inconsistent join values (Berlinn/Berlin, CA/Canada, barcelona/
  // Barcelona) stay fragmented.
  FuzzyFdReport regular_report;
  auto regular = RegularFdBaseline(tables, *aligned, FdOptions(),
                                   /*parallel=*/false, 0, &regular_report);
  if (!regular.ok()) {
    std::fprintf(stderr, "FD failed: %s\n",
                 regular.status().ToString().c_str());
    return 1;
  }
  Table regular_table =
      FdResultsToTable(regular->tuples, aligned->universal_names,
                       "FD(T1,T2,T3)  [equi-join]", /*include_provenance=*/true);
  std::printf("%s\n", RenderTable(regular_table).c_str());

  // Fuzzy Full Disjunction: embed values with the Mistral profile, match
  // them across aligning columns with optimal bipartite assignment under
  // threshold θ, rewrite to representatives, then run the same FD.
  FuzzyFdOptions opts;
  opts.matcher.model = MakeModel(ModelKind::kMistral);
  opts.matcher.threshold = theta;
  opts.include_provenance = true;
  FuzzyFdReport fuzzy_report;
  auto fuzzy =
      FuzzyFullDisjunction(opts).Run(tables, *aligned, &fuzzy_report);
  if (!fuzzy.ok()) {
    std::fprintf(stderr, "fuzzy FD failed: %s\n",
                 fuzzy.status().ToString().c_str());
    return 1;
  }
  Table fuzzy_table = *fuzzy;
  fuzzy_table.set_name("Fuzzy FD(T1,T2,T3)  [this paper]");
  std::printf("%s\n", RenderTable(fuzzy_table).c_str());

  std::printf(
      "Summary: equi-join FD produced %zu tuples; fuzzy FD produced %zu "
      "(θ=%.2f,\n%zu cell values rewritten in %.1f ms of matching).\n",
      regular_table.NumRows(), fuzzy_table.NumRows(), theta,
      fuzzy_report.values_rewritten, fuzzy_report.match_seconds * 1e3);
  return 0;
}
