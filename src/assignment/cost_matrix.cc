#include "assignment/cost_matrix.h"

namespace lakefuzz {

double CostMatrix::MaxFinite() const {
  double m = 0.0;
  bool any = false;
  for (double v : data_) {
    if (v == kForbidden) continue;
    if (!any || v > m) m = v;
    any = true;
  }
  return any ? m : 0.0;
}

}  // namespace lakefuzz
