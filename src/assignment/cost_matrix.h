// Dense row-major cost matrix for bipartite assignment.
#ifndef LAKEFUZZ_ASSIGNMENT_COST_MATRIX_H_
#define LAKEFUZZ_ASSIGNMENT_COST_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

namespace lakefuzz {

/// Cost of pairing row i with column j. `kForbidden` marks pairs that must
/// never be assigned (used to encode sparse candidate sets in a dense
/// solver).
class CostMatrix {
 public:
  static constexpr double kForbidden = std::numeric_limits<double>::infinity();

  CostMatrix() = default;
  CostMatrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  void set(size_t r, size_t c, double v) {
    assert(r < rows_ && c < cols_);
    data_[r * cols_ + c] = v;
  }

  bool forbidden(size_t r, size_t c) const {
    return at(r, c) == kForbidden;
  }

  /// Largest finite cost, or 0 when all entries are forbidden/empty.
  double MaxFinite() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// One solved assignment: row → column pairs with their costs.
struct Assignment {
  /// pairs[k] = {row, col}; at most min(rows, cols) entries; rows/cols not
  /// listed are unassigned.
  std::vector<std::pair<size_t, size_t>> pairs;
  /// Sum of the matched pairs' costs.
  double total_cost = 0.0;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_ASSIGNMENT_COST_MATRIX_H_
