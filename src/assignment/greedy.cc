#include "assignment/greedy.h"

#include <algorithm>
#include <tuple>
#include <vector>

namespace lakefuzz {

Assignment SolveGreedy(const CostMatrix& cost) {
  struct Edge {
    double c;
    size_t r;
    size_t col;
  };
  std::vector<Edge> edges;
  edges.reserve(cost.rows() * cost.cols());
  for (size_t r = 0; r < cost.rows(); ++r) {
    for (size_t c = 0; c < cost.cols(); ++c) {
      if (!cost.forbidden(r, c)) edges.push_back({cost.at(r, c), r, c});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.c, a.r, a.col) < std::tie(b.c, b.r, b.col);
  });

  std::vector<char> row_used(cost.rows(), 0);
  std::vector<char> col_used(cost.cols(), 0);
  Assignment out;
  for (const Edge& e : edges) {
    if (row_used[e.r] || col_used[e.col]) continue;
    row_used[e.r] = col_used[e.col] = 1;
    out.pairs.emplace_back(e.r, e.col);
    out.total_cost += e.c;
  }
  std::sort(out.pairs.begin(), out.pairs.end());
  return out;
}

}  // namespace lakefuzz
