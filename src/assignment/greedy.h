// Greedy bipartite matching baseline (ablation A2 in DESIGN.md).
#ifndef LAKEFUZZ_ASSIGNMENT_GREEDY_H_
#define LAKEFUZZ_ASSIGNMENT_GREEDY_H_

#include "assignment/cost_matrix.h"

namespace lakefuzz {

/// Picks pairs in ascending cost order, skipping rows/columns already
/// matched and forbidden pairs. Not optimal: a cheap pair can block two
/// pairs whose sum is lower — that gap is what the A2 ablation measures.
/// Ties are broken by (row, col) for determinism.
Assignment SolveGreedy(const CostMatrix& cost);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_ASSIGNMENT_GREEDY_H_
