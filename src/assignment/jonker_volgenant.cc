#include "assignment/jonker_volgenant.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace lakefuzz {
namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

/// Core solver; requires nr <= nc, all costs finite, and (*u, *v) a
/// dual-feasible starting potential (u[i] + v[j] <= cost[i][j] — zeros work
/// for non-negative costs, clamped warm starts in general). Returns
/// col4row: for each row, its assigned column; (*u, *v) become the final
/// duals.
std::vector<size_t> SolveCore(size_t nr, size_t nc,
                              const std::vector<double>& cost,
                              std::vector<double>* u_inout,
                              std::vector<double>* v_inout) {
  std::vector<double>& u = *u_inout;
  std::vector<double>& v = *v_inout;
  std::vector<size_t> col4row(nr, kNone);
  std::vector<size_t> row4col(nc, kNone);

  std::vector<double> shortest(nc);
  std::vector<size_t> path(nc);
  std::vector<char> sr(nr);
  std::vector<char> sc(nc);
  std::vector<size_t> remaining(nc);

  for (size_t cur_row = 0; cur_row < nr; ++cur_row) {
    std::fill(shortest.begin(), shortest.end(),
              std::numeric_limits<double>::infinity());
    std::fill(path.begin(), path.end(), kNone);
    std::fill(sr.begin(), sr.end(), 0);
    std::fill(sc.begin(), sc.end(), 0);
    size_t num_remaining = nc;
    // Stored reversed so removal is O(1) swap-with-last.
    for (size_t j = 0; j < nc; ++j) remaining[j] = nc - 1 - j;

    double min_val = 0.0;
    size_t sink = kNone;
    size_t i = cur_row;
    while (sink == kNone) {
      sr[i] = 1;
      size_t index = kNone;
      double lowest = std::numeric_limits<double>::infinity();
      for (size_t it = 0; it < num_remaining; ++it) {
        size_t j = remaining[it];
        double r = min_val + cost[i * nc + j] - u[i] - v[j];
        if (r < shortest[j]) {
          path[j] = i;
          shortest[j] = r;
        }
        // Tie-break toward unassigned columns: lets augmentation terminate
        // as early as possible (scipy does the same).
        if (shortest[j] < lowest ||
            (shortest[j] == lowest && row4col[j] == kNone)) {
          lowest = shortest[j];
          index = it;
        }
      }
      min_val = lowest;
      size_t j = remaining[index];
      if (row4col[j] == kNone) {
        sink = j;
      } else {
        i = row4col[j];
      }
      sc[j] = 1;
      remaining[index] = remaining[--num_remaining];
    }

    u[cur_row] += min_val;
    for (size_t r = 0; r < nr; ++r) {
      if (sr[r] && r != cur_row) u[r] += min_val - shortest[col4row[r]];
    }
    for (size_t j = 0; j < nc; ++j) {
      if (sc[j]) v[j] -= min_val - shortest[j];
    }

    // Augment along the found path.
    size_t j = sink;
    while (true) {
      size_t r = path[j];
      row4col[j] = r;
      std::swap(col4row[r], j);
      if (r == cur_row) break;
    }
  }
  return col4row;
}

}  // namespace

Result<Assignment> SolveAssignment(const CostMatrix& cost, JvDuals* duals) {
  const size_t rows = cost.rows();
  const size_t cols = cost.cols();
  Assignment out;
  if (rows == 0 || cols == 0) return out;

  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (std::isnan(cost.at(r, c))) {
        return Status::InvalidArgument("cost matrix contains NaN");
      }
    }
  }

  // Forbidden → large finite surrogate so the solver always completes; such
  // assignments are stripped from the result below. The surrogate dominates
  // any sum of real costs, so it is only used when unavoidable.
  const size_t n_small = std::min(rows, cols);
  const double big =
      (cost.MaxFinite() + 1.0) * (static_cast<double>(n_small) + 1.0);

  const bool transpose = rows > cols;
  const size_t nr = transpose ? cols : rows;
  const size_t nc = transpose ? rows : cols;
  std::vector<double> data(nr * nc);
  for (size_t r = 0; r < nr; ++r) {
    for (size_t c = 0; c < nc; ++c) {
      double v = transpose ? cost.at(c, r) : cost.at(r, c);
      data[r * nc + c] = (v == CostMatrix::kForbidden) ? big : v;
    }
  }

  std::vector<double> u(nr, 0.0);
  std::vector<double> v(nc, 0.0);
  if (duals != nullptr && duals->col.size() == nc && nr == nc) {
    // Warm start from the previous solve's column potentials, clamped to
    // dual feasibility for THIS matrix (v[j] <= min_i cost[i][j] with
    // u = 0). Square problems only: there every column ends up matched, so
    // termination feasibility + complementary slackness is a complete
    // optimality certificate under ANY feasible start. In the rectangular
    // case the sink choice compares shortest[] across free columns, which
    // is only meaningful while free columns share one potential — the
    // zero-init invariant — so non-square solves deliberately start cold.
    for (size_t c = 0; c < nc; ++c) {
      double col_min = data[c];
      for (size_t r = 1; r < nr; ++r) {
        col_min = std::min(col_min, data[r * nc + c]);
      }
      v[c] = std::min(duals->col[c], col_min);
    }
  }
  std::vector<size_t> col4row = SolveCore(nr, nc, data, &u, &v);
  if (duals != nullptr) {
    duals->row = std::move(u);
    duals->col = std::move(v);
  }
  for (size_t r = 0; r < nr; ++r) {
    size_t c = col4row[r];
    if (c == kNone) continue;
    size_t orow = transpose ? c : r;
    size_t ocol = transpose ? r : c;
    if (cost.forbidden(orow, ocol)) continue;  // matched through a surrogate
    out.pairs.emplace_back(orow, ocol);
    out.total_cost += cost.at(orow, ocol);
  }
  std::sort(out.pairs.begin(), out.pairs.end());
  return out;
}

}  // namespace lakefuzz
