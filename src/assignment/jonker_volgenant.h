// Optimal rectangular linear sum assignment (Jonker-Volgenant).
//
// This is the algorithm behind scipy.optimize.linear_sum_assignment (Crouse,
// IEEE TAES 2016), which the paper calls for its bipartite value matching:
// shortest augmenting paths with dual variables, O(n²m) worst case, fast in
// practice. Forbidden pairs (CostMatrix::kForbidden) are internally replaced
// by a large finite cost and excluded from the returned assignment.
#ifndef LAKEFUZZ_ASSIGNMENT_JONKER_VOLGENANT_H_
#define LAKEFUZZ_ASSIGNMENT_JONKER_VOLGENANT_H_

#include <vector>

#include "assignment/cost_matrix.h"
#include "util/result.h"

namespace lakefuzz {

/// Dual variables of a solved assignment, in the solver's internal
/// orientation (the matrix is transposed when rows > cols, so `row` has
/// min(rows, cols) entries and `col` the other dimension). Feeding the
/// duals of one solve into a related one warm-starts the shortest-
/// augmenting-path search: auto_threshold's probe loop re-solves similar
/// matrices every merge round, and a good starting potential shrinks every
/// Dijkstra pass. Warm duals are clamped to dual feasibility
/// (v[j] <= min_i cost[i][j], u = 0) before use — the invariant the classic
/// LAPJV column reduction establishes — and are applied only to square
/// problems, where termination feasibility + complementary slackness
/// certifies optimality under any feasible start (rectangular instances
/// additionally rely on free columns sharing one potential, so they start
/// cold; see the comment in SolveAssignment). Any input is therefore safe:
/// the result is always an optimal assignment.
struct JvDuals {
  std::vector<double> row;  ///< u
  std::vector<double> col;  ///< v
};

/// Solves min-cost assignment over a dense cost matrix. Every row (when
/// rows <= cols; otherwise every column) is matched unless all its pairs are
/// forbidden. Costs must be finite or kForbidden; NaN is rejected.
///
/// `duals`, when non-null, is both a warm start (col potentials from a
/// previous related solve; ignored when the size does not match) and an
/// output (the final duals of this solve).
Result<Assignment> SolveAssignment(const CostMatrix& cost,
                                   JvDuals* duals = nullptr);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_ASSIGNMENT_JONKER_VOLGENANT_H_
