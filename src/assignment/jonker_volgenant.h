// Optimal rectangular linear sum assignment (Jonker-Volgenant).
//
// This is the algorithm behind scipy.optimize.linear_sum_assignment (Crouse,
// IEEE TAES 2016), which the paper calls for its bipartite value matching:
// shortest augmenting paths with dual variables, O(n²m) worst case, fast in
// practice. Forbidden pairs (CostMatrix::kForbidden) are internally replaced
// by a large finite cost and excluded from the returned assignment.
#ifndef LAKEFUZZ_ASSIGNMENT_JONKER_VOLGENANT_H_
#define LAKEFUZZ_ASSIGNMENT_JONKER_VOLGENANT_H_

#include "assignment/cost_matrix.h"
#include "util/result.h"

namespace lakefuzz {

/// Solves min-cost assignment over a dense cost matrix. Every row (when
/// rows <= cols; otherwise every column) is matched unless all its pairs are
/// forbidden. Costs must be finite or kForbidden; NaN is rejected.
Result<Assignment> SolveAssignment(const CostMatrix& cost);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_ASSIGNMENT_JONKER_VOLGENANT_H_
