#include "assignment/parallel_cost.h"

#include <algorithm>
#include <thread>

namespace lakefuzz {
namespace {

/// Target blocks per worker for dynamic load balancing.
constexpr size_t kBlocksPerWorker = 4;

/// Splits [0, n) into roughly equal contiguous blocks and runs `body(lo, hi)`
/// for each across the pool. Each block is claimed by exactly one worker.
void BlockedFor(size_t n, ThreadPool* pool,
                const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || n < 2) {
    body(0, n);
    return;
  }
  size_t num_blocks =
      std::min(n, pool->num_threads() * kBlocksPerWorker);
  size_t block = (n + num_blocks - 1) / num_blocks;
  size_t actual_blocks = (n + block - 1) / block;
  pool->ParallelFor(actual_blocks, [&](size_t b) {
    size_t lo = b * block;
    size_t hi = std::min(n, lo + block);
    body(lo, hi);
  });
}

}  // namespace

bool WorthParallelizing(size_t work_items) {
  return work_items >= kMinParallelWork;
}

size_t ResolveNumThreads(size_t num_threads) {
  if (num_threads != 0) return num_threads;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void FillCostMatrixParallel(CostMatrix* cost, const PairCostFn& fn,
                            ThreadPool* pool) {
  const size_t rows = cost->rows();
  const size_t cols = cost->cols();
  if (rows == 0 || cols == 0) return;
  if (!WorthParallelizing(rows * cols)) pool = nullptr;
  // Block by rows: a row block is a contiguous slice of the row-major
  // backing array, so each worker streams through its own write range.
  BlockedFor(rows, pool, [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        cost->set(r, c, fn(r, c));
      }
    }
  });
}

void ScoreEdgesParallel(std::vector<SparseEdge>* edges, const PairCostFn& fn,
                        ThreadPool* pool) {
  if (!WorthParallelizing(edges->size())) pool = nullptr;
  BlockedFor(edges->size(), pool, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      SparseEdge& e = (*edges)[i];
      e.cost = fn(e.row, e.col);
    }
  });
}

void ParallelIndexFor(size_t n, const std::function<void(size_t)>& fn,
                      ThreadPool* pool) {
  // Embedding calls are heavyweight; parallelize even short ranges.
  if (n < 2) pool = nullptr;
  BlockedFor(n, pool, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace lakefuzz
