// Parallel, cache-aware construction of assignment inputs.
//
// Cost-matrix construction is the value matcher's hot path: every residual
// group×value pair costs an embedding dot product or an edit-distance DP.
// The work is embarrassingly parallel — each cell depends only on its own
// (row, col) — so it is row-blocked across a ThreadPool:
//
//   * the CostMatrix is row-major, so a contiguous row block is a contiguous
//     write range — workers never share a cache line except at block seams;
//   * blocks are oversubscribed (several per worker) and claimed dynamically,
//     absorbing skew from variable-length strings;
//   * output is deterministic regardless of thread count: the cost function
//     must be a pure function of (row, col), and every cell is computed
//     exactly once into its own slot.
//
// The same blocking applies to sparse candidate-edge scoring (contiguous
// index ranges of the edge array).
#ifndef LAKEFUZZ_ASSIGNMENT_PARALLEL_COST_H_
#define LAKEFUZZ_ASSIGNMENT_PARALLEL_COST_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "assignment/cost_matrix.h"
#include "assignment/thresholded.h"
#include "util/thread_pool.h"

namespace lakefuzz {

/// Pure pairwise cost: must return the same value for the same (row, col)
/// on every invocation, and be safe to call concurrently.
using PairCostFn = std::function<double(size_t row, size_t col)>;

/// Maps the user-facing thread-count knob to a worker count:
/// 0 → hardware concurrency (at least 1), otherwise the value itself.
size_t ResolveNumThreads(size_t num_threads);

/// Below this many scoring calls the dispatch overhead (futures, wakeups)
/// exceeds the work: the fill functions fall back to serial, and callers
/// that create thread pools lazily should not pay for one.
inline constexpr size_t kMinParallelWork = 2048;

/// True when `work_items` scoring calls are enough to amortize pool
/// dispatch.
bool WorthParallelizing(size_t work_items);

/// Fills every cell of `cost` with fn(r, c). Runs serially when `pool` is
/// null or the matrix is too small to amortize dispatch; otherwise
/// row-blocks across the pool. Deterministic for pure `fn`.
void FillCostMatrixParallel(CostMatrix* cost, const PairCostFn& fn,
                            ThreadPool* pool);

/// Scores edges[i].cost = fn(edges[i].row, edges[i].col) for all i, blocked
/// across the pool (serial when `pool` is null or the list is small).
void ScoreEdgesParallel(std::vector<SparseEdge>* edges, const PairCostFn& fn,
                        ThreadPool* pool);

/// Calls fn(i) for i in [0, n), blocked across the pool (serial fallback as
/// above). Used to pre-warm the embedding cache for a column's values.
void ParallelIndexFor(size_t n, const std::function<void(size_t)>& fn,
                      ThreadPool* pool);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_ASSIGNMENT_PARALLEL_COST_H_
