#include "assignment/thresholded.h"

#include <algorithm>
#include <unordered_map>

#include "assignment/greedy.h"
#include "assignment/jonker_volgenant.h"

namespace lakefuzz {
namespace {

Result<Assignment> SolveWith(const CostMatrix& cost,
                             AssignmentAlgorithm algorithm,
                             JvDuals* duals = nullptr) {
  switch (algorithm) {
    case AssignmentAlgorithm::kOptimal:
      return SolveAssignment(cost, duals);
    case AssignmentAlgorithm::kGreedy:
      return SolveGreedy(cost);
  }
  return Status::InvalidArgument("unknown assignment algorithm");
}

/// Union-find over row/col node ids.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n), rank_(n, 0) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> rank_;
};

}  // namespace

Result<Assignment> SolveThresholded(const CostMatrix& cost,
                                    const ThresholdedOptions& options,
                                    JvDuals* duals) {
  Result<Assignment> solved = Status::Internal("unreachable");
  if (options.mask_before_solve) {
    CostMatrix masked(cost.rows(), cost.cols());
    for (size_t r = 0; r < cost.rows(); ++r) {
      for (size_t c = 0; c < cost.cols(); ++c) {
        double v = cost.at(r, c);
        masked.set(r, c,
                   v >= options.threshold ? CostMatrix::kForbidden : v);
      }
    }
    solved = SolveWith(masked, options.algorithm, duals);
  } else {
    solved = SolveWith(cost, options.algorithm, duals);
  }
  if (!solved.ok()) return solved.status();

  Assignment out;
  for (auto [r, c] : solved->pairs) {
    double v = cost.at(r, c);
    if (v < options.threshold) {
      out.pairs.emplace_back(r, c);
      out.total_cost += v;
    }
  }
  return out;
}

Result<Assignment> SolveSparseThresholded(size_t num_rows, size_t num_cols,
                                          const std::vector<SparseEdge>& edges,
                                          const ThresholdedOptions& options) {
  // Node ids: rows are [0, num_rows), cols are [num_rows, num_rows+num_cols).
  DisjointSets dsu(num_rows + num_cols);
  std::vector<SparseEdge> kept;
  kept.reserve(edges.size());
  for (const auto& e : edges) {
    if (e.row >= num_rows || e.col >= num_cols) {
      return Status::InvalidArgument("sparse edge out of range");
    }
    if (e.cost >= options.threshold) continue;  // can never become a match
    kept.push_back(e);
    dsu.Union(e.row, num_rows + e.col);
  }

  // Bucket edges by component root.
  std::unordered_map<size_t, std::vector<const SparseEdge*>> comps;
  for (const auto& e : kept) comps[dsu.Find(e.row)].push_back(&e);

  Assignment out;
  for (auto& [root, comp_edges] : comps) {
    (void)root;
    // Local dense problem over the component's distinct rows/cols.
    std::unordered_map<size_t, size_t> row_ids;
    std::unordered_map<size_t, size_t> col_ids;
    std::vector<size_t> row_back;
    std::vector<size_t> col_back;
    for (const auto* e : comp_edges) {
      if (row_ids.emplace(e->row, row_ids.size()).second) {
        row_back.push_back(e->row);
      }
      if (col_ids.emplace(e->col, col_ids.size()).second) {
        col_back.push_back(e->col);
      }
    }
    CostMatrix local(row_back.size(), col_back.size(),
                     CostMatrix::kForbidden);
    for (const auto* e : comp_edges) {
      size_t lr = row_ids[e->row];
      size_t lc = col_ids[e->col];
      // Parallel edges: keep the cheapest.
      if (local.forbidden(lr, lc) || e->cost < local.at(lr, lc)) {
        local.set(lr, lc, e->cost);
      }
    }
    LAKEFUZZ_ASSIGN_OR_RETURN(Assignment local_solved,
                              SolveThresholded(local, options));
    for (auto [lr, lc] : local_solved.pairs) {
      out.pairs.emplace_back(row_back[lr], col_back[lc]);
    }
    out.total_cost += local_solved.total_cost;
  }
  std::sort(out.pairs.begin(), out.pairs.end());
  return out;
}

}  // namespace lakefuzz
