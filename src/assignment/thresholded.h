// Threshold-aware assignment: the form the value matcher actually calls.
//
// Definition 2 of the paper admits a match (u, v) only when dist(u, v) < θ.
// This wrapper solves the assignment and drops pairs at or above θ; it can
// also mask such pairs *before* solving so the optimizer never trades a
// below-threshold pair away in favor of a doomed one.
#ifndef LAKEFUZZ_ASSIGNMENT_THRESHOLDED_H_
#define LAKEFUZZ_ASSIGNMENT_THRESHOLDED_H_

#include <vector>

#include "assignment/cost_matrix.h"
#include "assignment/jonker_volgenant.h"
#include "util/result.h"

namespace lakefuzz {

enum class AssignmentAlgorithm {
  kOptimal,  ///< Jonker-Volgenant (scipy-equivalent; the paper's choice)
  kGreedy,   ///< ablation baseline
};

struct ThresholdedOptions {
  double threshold = 0.7;  ///< the paper's θ (best-performing setting)
  AssignmentAlgorithm algorithm = AssignmentAlgorithm::kOptimal;
  /// Mask pairs with cost >= θ as forbidden before solving. The paper runs
  /// scipy on the raw matrix and filters afterwards (mask_before_solve =
  /// false), which is the default. Masking first makes the solver maximize
  /// the *number* of sub-θ matches, pairing leftover values with
  /// barely-below-threshold wrong partners — ablation A2 shows it loses
  /// both precision and recall on crowded instances.
  bool mask_before_solve = false;
};

/// Solves and returns only pairs with cost < options.threshold. `duals`
/// (optimal algorithm only) warm-starts the solver and receives the final
/// dual variables — see JvDuals.
Result<Assignment> SolveThresholded(const CostMatrix& cost,
                                    const ThresholdedOptions& options,
                                    JvDuals* duals = nullptr);

/// One sparse candidate edge for SolveSparseThresholded.
struct SparseEdge {
  size_t row;
  size_t col;
  double cost;
};

/// Threshold-aware assignment over an explicit (typically pruned) edge list.
///
/// Splits the bipartite graph into connected components and solves each as a
/// small dense problem — the path the engineering pre-passes feed (DESIGN.md
/// §4.2): after exact-match unification, residual fuzzy candidates form many
/// tiny components instead of one huge matrix.
Result<Assignment> SolveSparseThresholded(size_t num_rows, size_t num_cols,
                                          const std::vector<SparseEdge>& edges,
                                          const ThresholdedOptions& options);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_ASSIGNMENT_THRESHOLDED_H_
