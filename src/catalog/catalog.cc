#include "catalog/catalog.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#define LAKEFUZZ_CATALOG_POSIX 1
#endif

#include "catalog/mapped_file.h"
#include "discovery/lsh_index.h"
#include "util/fault_injection.h"
#include "util/hash.h"
#include "util/stopwatch.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

// ------------------------------------------------------------ byte codecs
// All integers are written in host byte order; the manifest's endianness
// probe (kCatalogEndianCheck) rejects a catalog written on a different
// architecture with a typed error instead of silently mis-decoding.

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  void Raw(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  const std::string& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a byte span. Any overrun sets a sticky
/// failure flag (checked by the caller at block granularity) and returns
/// zeros — corrupt input can never read out of bounds or loop unbounded.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : p_(data), size_(size) {}

  uint8_t U8() {
    if (!Require(1)) return 0;
    return p_[off_++];
  }
  uint32_t U32() {
    uint32_t v = 0;
    if (!Require(sizeof(v))) return 0;
    std::memcpy(&v, p_ + off_, sizeof(v));
    off_ += sizeof(v);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    if (!Require(sizeof(v))) return 0;
    std::memcpy(&v, p_ + off_, sizeof(v));
    off_ += sizeof(v);
    return v;
  }
  double F64() {
    double v = 0;
    if (!Require(sizeof(v))) return 0;
    std::memcpy(&v, p_ + off_, sizeof(v));
    off_ += sizeof(v);
    return v;
  }
  bool Str(std::string* out) {
    const uint32_t n = U32();
    if (!Require(n)) return false;
    out->assign(reinterpret_cast<const char*>(p_ + off_), n);
    off_ += n;
    return true;
  }
  bool U64Span(size_t count, std::vector<uint64_t>* out) {
    if (count > (size_ - off_) / sizeof(uint64_t)) {
      failed_ = true;
      return false;
    }
    out->resize(count);
    std::memcpy(out->data(), p_ + off_, count * sizeof(uint64_t));
    off_ += count * sizeof(uint64_t);
    return true;
  }
  bool U32Span(size_t count, std::vector<uint32_t>* out) {
    if (count > (size_ - off_) / sizeof(uint32_t)) {
      failed_ = true;
      return false;
    }
    out->resize(count);
    std::memcpy(out->data(), p_ + off_, count * sizeof(uint32_t));
    off_ += count * sizeof(uint32_t);
    return true;
  }

  bool failed() const { return failed_; }
  size_t offset() const { return off_; }
  size_t remaining() const { return size_ - off_; }

 private:
  bool Require(size_t n) {
    if (failed_ || size_ - off_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const uint8_t* p_;
  size_t size_;
  size_t off_ = 0;
  bool failed_ = false;
};

// --------------------------------------------------------------- file I/O

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

Status EnsureDir(const std::string& dir) {
#ifdef LAKEFUZZ_CATALOG_POSIX
  if (mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::IoError(
      StrFormat("cannot create catalog directory '%s'", dir.c_str()));
#else
  (void)dir;
  return Status::Unimplemented("catalog requires a POSIX filesystem");
#endif
}

/// Size of `path`, or -1 when it does not exist / cannot be stat'ed.
int64_t FileSizeOf(const std::string& path) {
#ifdef LAKEFUZZ_CATALOG_POSIX
  struct stat st;
  if (stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_size);
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  long len = std::ftell(f);
  std::fclose(f);
  return len;
#endif
}

/// Flush + fsync + close, each surfacing its own typed kIoError naming the
/// path — a failed close after a clean write is still a lost write. The
/// fclose always runs (even when flush/fsync failed or the "catalog/fsync"
/// fault fired), so no FILE* leaks on any error path. The fault is poked
/// directly instead of via LAKEFUZZ_FAULT_POINT because the macro returns
/// from the enclosing function, which would skip the close.
Status SyncAndClose(std::FILE* f, const std::string& path) {
  Status injected = Status::OK();
#ifdef LAKEFUZZ_FAULT_POINTS
  if (FaultInjector::Instance().enabled()) {
    injected = FaultInjector::Instance().Poke("catalog/fsync");
  }
#endif
  Status st = Status::OK();
  if (std::fflush(f) != 0) {
    st = Status::IoError(StrFormat("cannot flush '%s'", path.c_str()));
  }
#ifdef LAKEFUZZ_CATALOG_POSIX
  if (st.ok() && injected.ok() && fsync(fileno(f)) != 0) {
    st = Status::IoError(StrFormat("cannot fsync '%s'", path.c_str()));
  }
#endif
  if (std::fclose(f) != 0 && st.ok()) {
    st = Status::IoError(StrFormat("cannot close '%s'", path.c_str()));
  }
  return injected.ok() ? st : injected;
}

/// fsync on the directory, making a rename inside it durable. Failure is
/// surfaced: an un-fsynced rename can vanish on power loss, which for the
/// CURRENT commit would silently roll back a checkpoint the caller was
/// told succeeded.
Status SyncDirDurable(const std::string& dir) {
#ifdef LAKEFUZZ_CATALOG_POSIX
  LAKEFUZZ_FAULT_POINT("catalog/fsync");
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(
        StrFormat("cannot open directory '%s' for fsync", dir.c_str()));
  }
  const bool ok = fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    return Status::IoError(
        StrFormat("cannot fsync directory '%s'", dir.c_str()));
  }
#else
  (void)dir;
#endif
  return Status::OK();
}

/// rename with its own fault point; the temp file is removed on failure.
Status RenameFile(const std::string& from, const std::string& to) {
#ifdef LAKEFUZZ_FAULT_POINTS
  if (FaultInjector::Instance().enabled()) {
    Status injected = FaultInjector::Instance().Poke("catalog/rename");
    if (!injected.ok()) {
      std::remove(from.c_str());
      return injected;
    }
  }
#endif
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    std::remove(from.c_str());
    return Status::IoError(
        StrFormat("cannot rename '%s' to '%s'", from.c_str(), to.c_str()));
  }
  return Status::OK();
}

Status ReadFileBytes(const std::string& path, std::string* out) {
  LAKEFUZZ_FAULT_POINT("catalog/read");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot open catalog file '%s'", path.c_str()));
  }
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  if (len < 0) {
    std::fclose(f);
    return Status::IoError(StrFormat("cannot size '%s'", path.c_str()));
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(len));
  const size_t got =
      out->empty() ? 0 : std::fread(&(*out)[0], 1, out->size(), f);
  std::fclose(f);
  if (got != out->size()) {
    return Status::IoError(StrFormat("short read on '%s'", path.c_str()));
  }
  return Status::OK();
}

/// Temp file + fsync + rename + directory fsync: readers observe either the
/// old bytes or the new bytes, never a torn write.
Status WriteFileAtomic(const std::string& dir, const std::string& name,
                       const std::string& bytes) {
  LAKEFUZZ_FAULT_POINT("catalog/write");
  const std::string final_path = JoinPath(dir, name);
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot create catalog file '%s'", tmp_path.c_str()));
  }
  const size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  if (written != bytes.size()) {
    std::fclose(f);
    std::remove(tmp_path.c_str());
    return Status::IoError(
        StrFormat("short write to '%s'", tmp_path.c_str()));
  }
  Status synced = SyncAndClose(f, tmp_path);
  if (!synced.ok()) {
    std::remove(tmp_path.c_str());
    return synced;
  }
  LAKEFUZZ_RETURN_IF_ERROR(RenameFile(tmp_path, final_path));
  return SyncDirDurable(dir);
}

/// Appends past the committed prefix. A crash mid-append leaves trailing
/// garbage beyond the manifest's logical size, which the prefix checksums
/// ignore — the previous catalog stays openable.
Status AppendToFile(const std::string& path, const std::string& bytes) {
  if (bytes.empty()) return Status::OK();
  LAKEFUZZ_FAULT_POINT("catalog/write");
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot append to catalog file '%s'", path.c_str()));
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  if (written != bytes.size()) {
    std::fclose(f);
    return Status::IoError(StrFormat("short append to '%s'", path.c_str()));
  }
  return SyncAndClose(f, path);
}

// --------------------------------------------------- fencing + generations

/// Advisory lock fencing CURRENT commits, CURRENT reads + pin creation, and
/// generation GC. Held on kCatalogLockFile (stable inode), never on CURRENT
/// itself — CURRENT is replaced by rename every commit and flock binds to
/// the inode, so a lock on it would fence nothing after the first commit.
/// flock is released by the kernel when the holder dies, so a killed writer
/// never wedges the directory.
class CatalogLock {
 public:
  CatalogLock() = default;
  CatalogLock(CatalogLock&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  CatalogLock& operator=(CatalogLock&& other) noexcept {
    if (this != &other) {
      Release();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  CatalogLock(const CatalogLock&) = delete;
  CatalogLock& operator=(const CatalogLock&) = delete;
  ~CatalogLock() { Release(); }

  /// Writer side: commits and GC.
  static Result<CatalogLock> Exclusive(const std::string& dir) {
    return Acquire(dir, true);
  }
  /// Reader side: CURRENT read + pin creation (held briefly).
  static Result<CatalogLock> Shared(const std::string& dir) {
    return Acquire(dir, false);
  }

 private:
  static Result<CatalogLock> Acquire(const std::string& dir, bool exclusive) {
#ifdef LAKEFUZZ_CATALOG_POSIX
    const std::string path = JoinPath(dir, kCatalogLockFile);
    const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::IoError(
          StrFormat("cannot open catalog lock '%s'", path.c_str()));
    }
    while (flock(fd, exclusive ? LOCK_EX : LOCK_SH) != 0) {
      if (errno != EINTR) {
        ::close(fd);
        return Status::IoError(
            StrFormat("cannot lock catalog lock '%s'", path.c_str()));
      }
    }
    CatalogLock lock;
    lock.fd_ = fd;
    return lock;
#else
    (void)dir;
    (void)exclusive;
    return CatalogLock();
#endif
  }

  void Release() {
#ifdef LAKEFUZZ_CATALOG_POSIX
    if (fd_ >= 0) {
      ::close(fd_);  // closing the descriptor drops the flock
      fd_ = -1;
    }
#endif
  }

  int fd_ = -1;
};

/// CURRENT body: "LFCUR1 <decimal generation>\n". Committed whole via
/// temp + fsync + rename, so readers see the old pointer or the new one.
std::string SerializeCurrent(uint64_t gen) {
  return StrFormat("LFCUR1 %llu\n", static_cast<unsigned long long>(gen));
}

Status ParseCurrent(const std::string& bytes, uint64_t* gen) {
  static constexpr char kPrefix[] = "LFCUR1 ";
  const size_t prefix_len = sizeof(kPrefix) - 1;
  Status torn = Status::IoError("catalog CURRENT pointer is torn or invalid");
  if (bytes.size() < prefix_len + 2 ||
      bytes.compare(0, prefix_len, kPrefix) != 0 || bytes.back() != '\n') {
    return torn;
  }
  uint64_t g = 0;
  for (size_t i = prefix_len; i + 1 < bytes.size(); ++i) {
    const char c = bytes[i];
    if (c < '0' || c > '9') return torn;
    g = g * 10 + static_cast<uint64_t>(c - '0');
  }
  if (g == 0) return torn;
  *gen = g;
  return Status::OK();
}

/// The committed generation, or a typed error when the directory holds no
/// committed catalog / a torn pointer. Caller must hold the lock.
Status ReadCurrent(const std::string& dir, uint64_t* gen) {
  std::string bytes;
  LAKEFUZZ_RETURN_IF_ERROR(
      ReadFileBytes(JoinPath(dir, kCatalogCurrentFile), &bytes));
  return ParseCurrent(bytes, gen);
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

uint64_t DigitsToU64(const std::string& s) {
  uint64_t v = 0;
  for (char c : s) v = v * 10 + static_cast<uint64_t>(c - '0');
  return v;
}

std::vector<std::string> SplitDots(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '.') {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool ParseManifestFileName(const std::string& name, uint64_t* gen) {
  const auto parts = SplitDots(name);
  if (parts.size() != 3 || parts[0] != "manifest" || parts[2] != "lfc" ||
      !AllDigits(parts[1])) {
    return false;
  }
  *gen = DigitsToU64(parts[1]);
  return true;
}

bool ParseSegmentFileName(const std::string& name, uint64_t* base) {
  const auto parts = SplitDots(name);
  if (parts.size() != 3 || parts[2] != "seg" || !AllDigits(parts[1])) {
    return false;
  }
  if (parts[0] != kCatalogValuesStem && parts[0] != kCatalogHashesStem &&
      parts[0] != kCatalogTablesStem && parts[0] != kCatalogSketchesStem) {
    return false;
  }
  *base = DigitsToU64(parts[1]);
  return true;
}

bool ParsePinFileName(const std::string& name, uint64_t* gen, int64_t* pid) {
  const auto parts = SplitDots(name);
  if (parts.size() != 4 || parts[0] != "pin" || !AllDigits(parts[1]) ||
      !AllDigits(parts[2]) || !AllDigits(parts[3])) {
    return false;
  }
  *gen = DigitsToU64(parts[1]);
  *pid = static_cast<int64_t>(DigitsToU64(parts[2]));
  return true;
}

Status ListDir(const std::string& dir, std::vector<std::string>* names) {
#ifdef LAKEFUZZ_CATALOG_POSIX
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IoError(
        StrFormat("cannot list catalog directory '%s'", dir.c_str()));
  }
  while (struct dirent* e = readdir(d)) {
    names->emplace_back(e->d_name);
  }
  closedir(d);
  return Status::OK();
#else
  (void)dir;
  (void)names;
  return Status::Unimplemented("catalog requires a POSIX filesystem");
#endif
}

/// Creates the reader's retention claim on `gen`. Must be called while
/// holding at least the shared lock, so the writer's GC (exclusive lock)
/// can never observe CURRENT-read-done-but-pin-not-yet-created.
Result<std::string> CreatePinFile(const std::string& dir, uint64_t gen) {
  static std::atomic<uint64_t> seq{0};
#ifdef LAKEFUZZ_CATALOG_POSIX
  const int64_t pid = static_cast<int64_t>(::getpid());
#else
  const int64_t pid = 0;
#endif
  const std::string path = JoinPath(
      dir, CatalogPinFileName(gen, pid, seq.fetch_add(1)));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot create catalog pin '%s'", path.c_str()));
  }
  std::fclose(f);
  return path;
}

/// Removes the pin on destruction unless released — keeps a failed open
/// from leaking a retention claim that would pin generations forever.
class PinGuard {
 public:
  explicit PinGuard(std::string path) : path_(std::move(path)) {}
  ~PinGuard() {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  void Release() { path_.clear(); }

 private:
  std::string path_;
};

// ------------------------------------------------------ value (de)coding

void WriteValue(ByteWriter* w, const Value& v) {
  w->U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;  // never stored: dict codes are non-null by construction
    case ValueType::kString:
      w->Str(v.AsString());
      break;
    case ValueType::kInt64: {
      uint64_t bits;
      int64_t i = v.AsInt();
      std::memcpy(&bits, &i, sizeof(bits));
      w->U64(bits);
      break;
    }
    case ValueType::kDouble: {
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      w->U64(bits);
      break;
    }
    case ValueType::kBool:
      w->U8(v.AsBool() ? 1 : 0);
      break;
  }
}

Status ReadValue(ByteReader* r, Value* out) {
  const uint8_t type = r->U8();
  switch (static_cast<ValueType>(type)) {
    case ValueType::kString: {
      std::string s;
      if (!r->Str(&s)) break;
      *out = Value::String(std::move(s));
      return Status::OK();
    }
    case ValueType::kInt64: {
      const uint64_t bits = r->U64();
      if (r->failed()) break;
      int64_t i;
      std::memcpy(&i, &bits, sizeof(i));
      *out = Value::Int(i);
      return Status::OK();
    }
    case ValueType::kDouble: {
      const uint64_t bits = r->U64();
      if (r->failed()) break;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      return Status::OK();
    }
    case ValueType::kBool: {
      const uint8_t b = r->U8();
      if (r->failed()) break;
      *out = Value::Bool(b != 0);
      return Status::OK();
    }
    default:
      return Status::IoError(StrFormat(
          "catalog value segment holds unknown type tag %u", unsigned{type}));
  }
  return Status::IoError("catalog value segment truncated");
}

// --------------------------------------------------------- table payloads

/// Everything SaveCatalog needs about one registered table, gathered from
/// the live session before any byte is written.
struct TablePayload {
  std::string name;
  std::shared_ptr<const Table> table;
  std::vector<std::shared_ptr<const std::vector<uint32_t>>> codes;
  std::shared_ptr<const std::vector<ColumnSketch>> sketches;
  uint64_t fingerprint = 0;
};

uint64_t FingerprintFromCodes(
    const Table& table,
    const std::vector<std::shared_ptr<const std::vector<uint32_t>>>& codes,
    const ValueDict& dict) {
  uint64_t fp = Fnv1a64("lakefuzz.catalog.table.v1");
  fp = HashCombine(fp, table.NumRows());
  fp = HashCombine(fp, table.NumColumns());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const Field& f = table.schema().field(c);
    fp = HashCombine(fp, Fnv1a64(f.name));
    fp = HashCombine(fp, static_cast<uint64_t>(f.type));
  }
  for (const auto& col : codes) {
    for (uint32_t code : *col) {
      fp = HashCombine(fp,
                       code == ValueDict::kNullCode ? 0 : dict.HashOf(code));
    }
  }
  return fp;
}

void SerializeTableBlock(ByteWriter* w, const TablePayload& p) {
  const Table& t = *p.table;
  w->U32(static_cast<uint32_t>(t.NumColumns()));
  w->U64(t.NumRows());
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    const Field& f = t.schema().field(c);
    w->Str(f.name);
    w->U8(static_cast<uint8_t>(f.type));
  }
  for (const auto& col : p.codes) {
    w->Raw(col->data(), col->size() * sizeof(uint32_t));
  }
}

void SerializeSketchBlock(ByteWriter* w,
                          const std::vector<ColumnSketch>& sketches,
                          const LshIndex& keyer) {
  w->U32(static_cast<uint32_t>(sketches.size()));
  std::vector<uint64_t> keys;
  for (const ColumnSketch& s : sketches) {
    w->Str(s.name);
    w->U64(s.profile.rows);
    w->U64(s.profile.nulls);
    w->U64(s.profile.distinct);
    w->F64(s.profile.frac_string);
    w->F64(s.profile.frac_int);
    w->F64(s.profile.frac_double);
    w->F64(s.profile.frac_bool);
    w->F64(s.profile.avg_len);
    // Empty columns carry no signature or band keys (they are never
    // LSH-indexed); non-empty ones persist both, so a warm load re-buckets
    // the LSH index without recomputing a single MinHash or band key.
    if (s.empty()) {
      w->U32(0);
      w->U32(0);
      continue;
    }
    w->U32(static_cast<uint32_t>(s.signature.size()));
    w->Raw(s.signature.data(), s.signature.size() * sizeof(uint64_t));
    keyer.ComputeBandKeys(s.signature, &keys);
    w->U32(static_cast<uint32_t>(keys.size()));
    w->Raw(keys.data(), keys.size() * sizeof(uint64_t));
  }
}

// --------------------------------------------------------------- manifest

struct ManifestEntry {
  std::string name;
  CatalogState::TableState state;
};

struct Manifest {
  uint64_t generation = 0;  ///< the generation this manifest commits
  uint64_t base = 0;        ///< segment base its extents reference
  uint64_t signature_size = 0, bands = 0, rows_per_band = 0, seed = 0;
  uint64_t value_count = 0;
  CatalogState::Segment values, hashes, tables, sketches;
  std::vector<ManifestEntry> entries;
};

std::string SerializeManifest(const Manifest& m) {
  ByteWriter w;
  w.Raw(kCatalogMagic, sizeof(kCatalogMagic));
  w.U32(kCatalogFormatVersion);
  w.U32(kCatalogEndianCheck);
  w.U64(m.generation);
  w.U64(m.base);
  w.U64(m.signature_size);
  w.U64(m.bands);
  w.U64(m.rows_per_band);
  w.U64(m.seed);
  w.U64(m.value_count);
  for (const CatalogState::Segment* seg :
       {&m.values, &m.hashes, &m.tables, &m.sketches}) {
    w.U64(seg->size);
    w.U64(seg->checksum);
  }
  w.U64(m.entries.size());
  for (const ManifestEntry& e : m.entries) {
    w.Str(e.name);
    w.U64(e.state.fingerprint);
    w.U64(e.state.rows);
    w.U32(e.state.cols);
    w.U64(e.state.table_off);
    w.U64(e.state.table_size);
    w.U64(e.state.sketch_off);
    w.U64(e.state.sketch_size);
  }
  ByteWriter out;
  out.Raw(w.bytes().data(), w.size());
  out.U64(Fnv1a64(w.bytes().data(), w.size()));
  return out.bytes();
}

/// Cap on manifest table entries — a corrupt count must not drive a
/// multi-gigabyte allocation before the bounds checks catch it.
constexpr uint64_t kMaxManifestTables = 16u << 20;

/// `discovery_options` may be null (GC parses manifests only for their
/// base; it has no discovery context and skips the parameter check).
Status ParseManifest(const std::string& bytes,
                     const DiscoveryOptions* discovery_options,
                     Manifest* out) {
  if (bytes.size() < sizeof(kCatalogMagic) + 2 * sizeof(uint32_t) +
                         sizeof(uint64_t)) {
    return Status::IoError("catalog manifest truncated");
  }
  if (std::memcmp(bytes.data(), kCatalogMagic, sizeof(kCatalogMagic)) != 0) {
    return Status::InvalidArgument(
        "not a lakefuzz catalog manifest (bad magic)");
  }
  ByteReader r(reinterpret_cast<const uint8_t*>(bytes.data()),
               bytes.size() - sizeof(uint64_t));
  r.U64();  // magic, already checked
  const uint32_t format_version = r.U32();
  if (format_version != kCatalogFormatVersion) {
    return Status::InvalidArgument(StrFormat(
        "catalog format version %u is not supported (this build reads %u)",
        format_version, kCatalogFormatVersion));
  }
  const uint32_t endian = r.U32();
  if (endian != kCatalogEndianCheck) {
    return Status::InvalidArgument(
        "catalog was written with a different byte order");
  }
  // Integrity before content: the trailing checksum covers every preceding
  // byte, so any flip in the body below surfaces here as kIoError.
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum,
              bytes.data() + bytes.size() - sizeof(uint64_t),
              sizeof(uint64_t));
  if (Fnv1a64(bytes.data(), bytes.size() - sizeof(uint64_t)) !=
      stored_checksum) {
    return Status::IoError("catalog manifest checksum mismatch");
  }
  out->generation = r.U64();
  out->base = r.U64();
  out->signature_size = r.U64();
  out->bands = r.U64();
  out->rows_per_band = r.U64();
  out->seed = r.U64();
  out->value_count = r.U64();
  for (CatalogState::Segment* seg :
       {&out->values, &out->hashes, &out->tables, &out->sketches}) {
    seg->size = r.U64();
    seg->checksum = r.U64();
  }
  const uint64_t num_tables = r.U64();
  if (r.failed() || num_tables > kMaxManifestTables ||
      out->value_count >= UINT32_MAX || out->generation == 0 ||
      out->base == 0 || out->base > out->generation) {
    return Status::IoError("catalog manifest truncated");
  }
  out->entries.resize(static_cast<size_t>(num_tables));
  for (ManifestEntry& e : out->entries) {
    if (!r.Str(&e.name)) break;
    e.state.fingerprint = r.U64();
    e.state.rows = r.U64();
    e.state.cols = r.U32();
    e.state.table_off = r.U64();
    e.state.table_size = r.U64();
    e.state.sketch_off = r.U64();
    e.state.sketch_size = r.U64();
  }
  if (r.failed()) return Status::IoError("catalog manifest truncated");
  if (discovery_options != nullptr &&
      (out->signature_size != discovery_options->signature_size ||
       out->bands != discovery_options->bands ||
       out->rows_per_band != discovery_options->rows_per_band ||
       out->seed != discovery_options->seed)) {
    return Status::InvalidArgument(StrFormat(
        "catalog sketch parameters (k=%llu, %llux%llu, seed=%llu) do not "
        "match this engine's discovery options — rebuild required",
        static_cast<unsigned long long>(out->signature_size),
        static_cast<unsigned long long>(out->bands),
        static_cast<unsigned long long>(out->rows_per_band),
        static_cast<unsigned long long>(out->seed)));
  }
  return Status::OK();
}

Status VerifySegment(const MappedFile& file, const CatalogState::Segment& seg,
                     const char* name) {
  if (file.size() < seg.size) {
    return Status::IoError(
        StrFormat("catalog segment '%s' truncated (%zu < committed %llu)",
                  name, file.size(),
                  static_cast<unsigned long long>(seg.size)));
  }
  // Only the committed prefix participates: bytes past it are an aborted
  // append, not corruption.
  if (Fnv1a64(file.data(), static_cast<size_t>(seg.size)) != seg.checksum) {
    return Status::IoError(
        StrFormat("catalog segment '%s' checksum mismatch", name));
  }
  return Status::OK();
}

Status GatherPayloads(TableRegistry* registry, SessionDict* dict,
                      DiscoveryIndex* discovery,
                      std::vector<TablePayload>* payloads,
                      size_t* columns_resketched) {
  auto snapshot = registry->Snapshot();
  payloads->reserve(snapshot.size());
  for (auto& [name, table] : snapshot) {
    TablePayload p;
    p.name = name;
    p.table = table;
    p.codes.reserve(table->NumColumns());
    for (size_t c = 0; c < table->NumColumns(); ++c) {
      // Memoized for pinned (registered) tables; this also forces every
      // cell into the dictionary before the persisted code range is fixed.
      p.codes.push_back(dict->ColumnCodes(*table, c));
    }
    p.sketches = discovery->TableSketches(name, table.get());
    if (p.sketches == nullptr || p.sketches->size() != table->NumColumns()) {
      // Index was never built (lazy mode, unsynced) — sketch here so the
      // catalog is complete either way.
      p.sketches = std::make_shared<const std::vector<ColumnSketch>>(
          discovery->SketchTable(*table));
      *columns_resketched += table->NumColumns();
    }
    p.fingerprint = FingerprintFromCodes(*table, p.codes, dict->dict());
    payloads->push_back(std::move(p));
  }
  return Status::OK();
}

// -------------------------------------------------------------- retention

/// Garbage-collects retired generations under the exclusive lock, after a
/// commit. Keeps: the newest `retain` committed generations (always
/// including `current_gen`), every generation a live process has pinned,
/// and the segment bases any kept manifest references. Removes: retired
/// manifests, orphan manifests above `current_gen` (uncommitted partials
/// from a crashed writer), segment files whose base no kept manifest uses,
/// stale pins of dead processes, and leftover *.tmp files. Best-effort —
/// a failure here can only leave extra files, never break a reader.
size_t CollectGarbage(const std::string& dir, uint64_t current_gen,
                      size_t retain) {
  if (retain == 0) retain = 1;
  std::vector<std::string> names;
  if (!ListDir(dir, &names).ok()) return 0;

  std::vector<uint64_t> manifest_gens;
  std::vector<std::pair<std::string, uint64_t>> segment_files;
  std::set<uint64_t> pinned;
  std::vector<std::string> tmp_files;
  for (const std::string& name : names) {
    uint64_t gen = 0, base = 0;
    int64_t pid = 0;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      tmp_files.push_back(name);
    } else if (ParseManifestFileName(name, &gen)) {
      manifest_gens.push_back(gen);
    } else if (ParseSegmentFileName(name, &base)) {
      segment_files.emplace_back(name, base);
    } else if (ParsePinFileName(name, &gen, &pid)) {
#ifdef LAKEFUZZ_CATALOG_POSIX
      if (kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) {
        // The pinning process is gone; its claim dies with it.
        std::remove(JoinPath(dir, name).c_str());
        continue;
      }
#endif
      pinned.insert(gen);
    }
  }

  std::sort(manifest_gens.begin(), manifest_gens.end(),
            std::greater<uint64_t>());
  std::set<uint64_t> keep;
  for (uint64_t gen : manifest_gens) {
    if (gen > current_gen) continue;  // uncommitted partial — garbage
    if (gen == current_gen || keep.size() < retain ||
        pinned.count(gen) != 0) {
      keep.insert(gen);
    }
  }

  // Bases the kept manifests reference. If any kept manifest fails to parse
  // we cannot know which segments are live — skip segment GC this round.
  std::set<uint64_t> keep_bases;
  bool bases_known = true;
  for (uint64_t gen : keep) {
    std::string bytes;
    Manifest m;
    if (!ReadFileBytes(JoinPath(dir, CatalogManifestFileName(gen)), &bytes)
             .ok() ||
        !ParseManifest(bytes, nullptr, &m).ok()) {
      bases_known = false;
      break;
    }
    keep_bases.insert(m.base);
  }

  size_t removed = 0;
  for (uint64_t gen : manifest_gens) {
    if (keep.count(gen) != 0) continue;
    if (std::remove(JoinPath(dir, CatalogManifestFileName(gen)).c_str()) ==
        0) {
      ++removed;
    }
  }
  if (bases_known) {
    for (const auto& [name, base] : segment_files) {
      if (keep_bases.count(base) == 0) {
        std::remove(JoinPath(dir, name).c_str());
      }
    }
  }
  for (const std::string& name : tmp_files) {
    std::remove(JoinPath(dir, name).c_str());
  }
  return removed;
}

}  // namespace

// ----------------------------------------------------------- public names

std::string CatalogManifestFileName(uint64_t generation) {
  return StrFormat("manifest.%llu.lfc",
                   static_cast<unsigned long long>(generation));
}

std::string CatalogSegmentFileName(const char* stem, uint64_t base) {
  return StrFormat("%s.%llu.seg", stem,
                   static_cast<unsigned long long>(base));
}

std::string CatalogPinFileName(uint64_t generation, int64_t pid,
                               uint64_t seq) {
  return StrFormat("pin.%llu.%lld.%llu",
                   static_cast<unsigned long long>(generation),
                   static_cast<long long>(pid),
                   static_cast<unsigned long long>(seq));
}

uint64_t CatalogTableFingerprint(const Table& table, SessionDict* dict) {
  std::vector<std::shared_ptr<const std::vector<uint32_t>>> codes;
  codes.reserve(table.NumColumns());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    codes.push_back(dict->ColumnCodes(table, c));
  }
  return FingerprintFromCodes(table, codes, dict->dict());
}

Result<uint64_t> CatalogCurrentGeneration(const std::string& dir) {
  LAKEFUZZ_ASSIGN_OR_RETURN(CatalogLock lock, CatalogLock::Shared(dir));
  uint64_t gen = 0;
  LAKEFUZZ_RETURN_IF_ERROR(ReadCurrent(dir, &gen));
  return gen;
}

// ---------------------------------------------------------------- save

Result<CatalogSaveReport> SaveCatalogFrom(
    const std::string& dir, TableRegistry* registry, SessionDict* dict,
    DiscoveryIndex* discovery, const DiscoveryOptions& discovery_options,
    CatalogState* state, size_t retain_generations) {
  Stopwatch watch;
  CatalogSaveReport report;
  LAKEFUZZ_RETURN_IF_ERROR(EnsureDir(dir));
  // Exclusive for the whole save: serializes concurrent writers and fences
  // readers' CURRENT-read + pin-creation against the commit and the GC.
  LAKEFUZZ_ASSIGN_OR_RETURN(CatalogLock lock, CatalogLock::Exclusive(dir));

  // Committed generation on disk. A missing or torn CURRENT reads as 0; the
  // new generation is still allocated past every manifest present, so
  // observers never see the sequence go backwards even when recovering
  // from a corrupt pointer.
  uint64_t committed = 0;
  {
    Status current = ReadCurrent(dir, &committed);
    if (!current.ok()) committed = 0;
  }
  uint64_t max_gen = committed;
  if (state->valid() && state->dir == dir) {
    max_gen = std::max(max_gen, state->generation);
  }
  {
    std::vector<std::string> names;
    if (ListDir(dir, &names).ok()) {
      for (const std::string& name : names) {
        uint64_t gen = 0;
        if (ParseManifestFileName(name, &gen)) {
          max_gen = std::max(max_gen, gen);
        }
      }
    }
  }
  const uint64_t gen = max_gen + 1;

  std::vector<TablePayload> payloads;
  LAKEFUZZ_RETURN_IF_ERROR(GatherPayloads(registry, dict, discovery,
                                          &payloads,
                                          &report.columns_resketched));
  // Captured AFTER gathering: every code referenced by a payload is
  // <= value_count, and codes appended by concurrent requests past it are
  // simply left for the next checkpoint (the dict is append-only).
  const uint64_t value_count = dict->NumDistinct();

  // Incremental only when this engine's state mirrors the committed
  // generation (another writer advancing the directory invalidates our
  // extents) and the base segments still end exactly at the committed
  // sizes. Appends go to the same base; a full rewrite allocates base=gen
  // so files older generations reference are never touched.
  const bool incremental =
      state->valid() && state->dir == dir && committed != 0 &&
      state->generation == committed && state->codes_identical &&
      value_count >= state->values_persisted &&
      FileSizeOf(JoinPath(dir, CatalogSegmentFileName(kCatalogValuesStem,
                                                      state->base))) ==
          static_cast<int64_t>(state->values.size) &&
      FileSizeOf(JoinPath(dir, CatalogSegmentFileName(kCatalogHashesStem,
                                                      state->base))) ==
          static_cast<int64_t>(state->hashes.size) &&
      FileSizeOf(JoinPath(dir, CatalogSegmentFileName(kCatalogTablesStem,
                                                      state->base))) ==
          static_cast<int64_t>(state->tables.size) &&
      FileSizeOf(JoinPath(dir, CatalogSegmentFileName(kCatalogSketchesStem,
                                                      state->base))) ==
          static_cast<int64_t>(state->sketches.size);
  const uint64_t base = incremental ? state->base : gen;

  // Band keys are recomputed once per signature at save time (cheap FNV
  // folds); persisting them makes the warm open's LSH rebuild a pure copy.
  const LshIndex keyer(discovery_options.bands,
                       discovery_options.rows_per_band);

  Manifest m;
  m.generation = gen;
  m.base = base;
  m.signature_size = discovery_options.signature_size;
  m.bands = discovery_options.bands;
  m.rows_per_band = discovery_options.rows_per_band;
  m.seed = discovery_options.seed;
  m.value_count = value_count;

  std::map<std::string, CatalogState::TableState> table_states;

  const std::string values_file = CatalogSegmentFileName(kCatalogValuesStem, base);
  const std::string hashes_file = CatalogSegmentFileName(kCatalogHashesStem, base);
  const std::string tables_file = CatalogSegmentFileName(kCatalogTablesStem, base);
  const std::string sketches_file =
      CatalogSegmentFileName(kCatalogSketchesStem, base);

  if (incremental) {
    report.incremental = true;
    // Dict delta: entries [values_persisted+1, value_count] append; the
    // prefix checksum streams forward (FNV seeded with the old checksum).
    ByteWriter vbuf, hbuf;
    for (uint64_t code = state->values_persisted + 1; code <= value_count;
         ++code) {
      WriteValue(&vbuf, dict->dict().Decode(static_cast<uint32_t>(code)));
      hbuf.U64(dict->dict().HashOf(static_cast<uint32_t>(code)));
    }
    m.values.size = state->values.size + vbuf.size();
    m.values.checksum =
        vbuf.size() == 0
            ? state->values.checksum
            : Fnv1a64(vbuf.bytes().data(), vbuf.size(), state->values.checksum);
    m.hashes.size = state->hashes.size + hbuf.size();
    m.hashes.checksum =
        hbuf.size() == 0
            ? state->hashes.checksum
            : Fnv1a64(hbuf.bytes().data(), hbuf.size(), state->hashes.checksum);

    ByteWriter tbuf, sbuf;
    for (const TablePayload& p : payloads) {
      auto it = state->tables_by_name.find(p.name);
      if (it != state->tables_by_name.end() &&
          it->second.fingerprint == p.fingerprint) {
        table_states[p.name] = it->second;
        ++report.tables_reused;
        continue;
      }
      CatalogState::TableState ts;
      ts.fingerprint = p.fingerprint;
      ts.rows = p.table->NumRows();
      ts.cols = static_cast<uint32_t>(p.table->NumColumns());
      ts.table_off = state->tables.size + tbuf.size();
      SerializeTableBlock(&tbuf, p);
      ts.table_size = state->tables.size + tbuf.size() - ts.table_off;
      ts.sketch_off = state->sketches.size + sbuf.size();
      SerializeSketchBlock(&sbuf, *p.sketches, keyer);
      ts.sketch_size = state->sketches.size + sbuf.size() - ts.sketch_off;
      table_states[p.name] = ts;
      ++report.tables_written;
    }
    m.tables.size = state->tables.size + tbuf.size();
    m.tables.checksum =
        tbuf.size() == 0
            ? state->tables.checksum
            : Fnv1a64(tbuf.bytes().data(), tbuf.size(), state->tables.checksum);
    m.sketches.size = state->sketches.size + sbuf.size();
    m.sketches.checksum =
        sbuf.size() == 0 ? state->sketches.checksum
                         : Fnv1a64(sbuf.bytes().data(), sbuf.size(),
                                   state->sketches.checksum);

    LAKEFUZZ_RETURN_IF_ERROR(
        AppendToFile(JoinPath(dir, values_file), vbuf.bytes()));
    LAKEFUZZ_RETURN_IF_ERROR(
        AppendToFile(JoinPath(dir, hashes_file), hbuf.bytes()));
    LAKEFUZZ_RETURN_IF_ERROR(
        AppendToFile(JoinPath(dir, tables_file), tbuf.bytes()));
    LAKEFUZZ_RETURN_IF_ERROR(
        AppendToFile(JoinPath(dir, sketches_file), sbuf.bytes()));
    report.values_appended = value_count - state->values_persisted;
    report.bytes_written +=
        vbuf.size() + hbuf.size() + tbuf.size() + sbuf.size();
  } else {
    // Full rewrite under a fresh base: everything is serialized into new
    // segment files via the temp-file commit. Segments of prior generations
    // are left untouched (retention GC retires them later), so a crash at
    // any point leaves every committed generation fully intact.
    ByteWriter vbuf, hbuf;
    for (uint64_t code = 1; code <= value_count; ++code) {
      WriteValue(&vbuf, dict->dict().Decode(static_cast<uint32_t>(code)));
      hbuf.U64(dict->dict().HashOf(static_cast<uint32_t>(code)));
    }
    ByteWriter tbuf, sbuf;
    for (const TablePayload& p : payloads) {
      CatalogState::TableState ts;
      ts.fingerprint = p.fingerprint;
      ts.rows = p.table->NumRows();
      ts.cols = static_cast<uint32_t>(p.table->NumColumns());
      ts.table_off = tbuf.size();
      SerializeTableBlock(&tbuf, p);
      ts.table_size = tbuf.size() - ts.table_off;
      ts.sketch_off = sbuf.size();
      SerializeSketchBlock(&sbuf, *p.sketches, keyer);
      ts.sketch_size = sbuf.size() - ts.sketch_off;
      table_states[p.name] = ts;
      ++report.tables_written;
    }
    m.values = {vbuf.size(), Fnv1a64(vbuf.bytes().data(), vbuf.size())};
    m.hashes = {hbuf.size(), Fnv1a64(hbuf.bytes().data(), hbuf.size())};
    m.tables = {tbuf.size(), Fnv1a64(tbuf.bytes().data(), tbuf.size())};
    m.sketches = {sbuf.size(), Fnv1a64(sbuf.bytes().data(), sbuf.size())};
    LAKEFUZZ_RETURN_IF_ERROR(
        WriteFileAtomic(dir, values_file, vbuf.bytes()));
    LAKEFUZZ_RETURN_IF_ERROR(
        WriteFileAtomic(dir, hashes_file, hbuf.bytes()));
    LAKEFUZZ_RETURN_IF_ERROR(
        WriteFileAtomic(dir, tables_file, tbuf.bytes()));
    LAKEFUZZ_RETURN_IF_ERROR(
        WriteFileAtomic(dir, sketches_file, sbuf.bytes()));
    report.values_appended = value_count;
    report.bytes_written +=
        vbuf.size() + hbuf.size() + tbuf.size() + sbuf.size();
  }

  m.entries.reserve(table_states.size());
  for (auto& [name, ts] : table_states) {
    m.entries.push_back(ManifestEntry{name, ts});
  }
  const std::string manifest = SerializeManifest(m);
  LAKEFUZZ_RETURN_IF_ERROR(
      WriteFileAtomic(dir, CatalogManifestFileName(gen), manifest));
  report.bytes_written += manifest.size();

  // THE commit point: readers follow CURRENT, so until this rename lands
  // the new generation does not exist for them — and after it, the old one
  // is still complete (only GC below may retire it).
  LAKEFUZZ_RETURN_IF_ERROR(
      WriteFileAtomic(dir, kCatalogCurrentFile, SerializeCurrent(gen)));

  report.generations_removed = CollectGarbage(dir, gen, retain_generations);

  state->dir = dir;
  state->generation = gen;
  state->base = base;
  state->codes_identical = true;  // file codes 1..value_count == session codes
  state->values_persisted = value_count;
  state->values = m.values;
  state->hashes = m.hashes;
  state->tables = m.tables;
  state->sketches = m.sketches;
  state->tables_by_name = std::move(table_states);
  report.generation = gen;
  report.base = base;
  report.seconds = watch.ElapsedSeconds();
  return report;
}

// ---------------------------------------------------------------- open

namespace {

/// One fully parsed, not-yet-registered catalog table.
struct StagedTable {
  std::string name;
  std::shared_ptr<const Table> table;
  std::vector<std::shared_ptr<const std::vector<uint32_t>>> columns;
  std::vector<ColumnSketch> sketches;
  std::vector<std::vector<uint64_t>> band_keys;
  bool replaces_live = false;  ///< refresh: a stale live table must go first
};

Status ParseTableBlock(const MappedFile& seg, const ManifestEntry& e,
                       uint64_t value_count,
                       const std::vector<uint32_t>& remap,
                       const ValueDict& dict, StagedTable* out) {
  if (e.state.table_off > seg.size() ||
      e.state.table_size > seg.size() - e.state.table_off) {
    return Status::IoError(StrFormat(
        "catalog table block for '%s' out of bounds", e.name.c_str()));
  }
  ByteReader r(seg.data() + e.state.table_off,
               static_cast<size_t>(e.state.table_size));
  const uint32_t cols = r.U32();
  const uint64_t rows = r.U64();
  if (r.failed() || cols != e.state.cols || rows != e.state.rows) {
    return Status::IoError(StrFormat(
        "catalog table block for '%s' does not match its manifest entry",
        e.name.c_str()));
  }
  std::vector<Field> fields(cols);
  for (Field& f : fields) {
    if (!r.Str(&f.name)) break;
    f.type = static_cast<ValueType>(r.U8());
  }
  if (r.failed()) {
    return Status::IoError(
        StrFormat("catalog table block for '%s' truncated", e.name.c_str()));
  }
  out->columns.reserve(cols);
  std::vector<uint32_t> file_codes;
  for (uint32_t c = 0; c < cols; ++c) {
    if (!r.U32Span(static_cast<size_t>(rows), &file_codes)) {
      return Status::IoError(StrFormat(
          "catalog table block for '%s' truncated", e.name.c_str()));
    }
    auto session_codes = std::make_shared<std::vector<uint32_t>>();
    session_codes->reserve(file_codes.size());
    for (uint32_t code : file_codes) {
      if (code > value_count) {
        return Status::IoError(StrFormat(
            "catalog table block for '%s' references code %u beyond the "
            "dictionary (%llu entries)",
            e.name.c_str(), code,
            static_cast<unsigned long long>(value_count)));
      }
      session_codes->push_back(remap[code]);
    }
    out->columns.push_back(std::move(session_codes));
  }
  // Materialize the Table row-wise from the remapped codes: cells decode to
  // exactly the writer's values, so results downstream are byte-identical.
  Table table(e.name, Schema(std::move(fields)));
  std::vector<Value> row(cols);
  for (uint64_t rr = 0; rr < rows; ++rr) {
    for (uint32_t c = 0; c < cols; ++c) {
      row[c] = dict.Decode((*out->columns[c])[static_cast<size_t>(rr)]);
    }
    Status appended = table.AppendRow(row);
    if (!appended.ok()) return appended;
  }
  out->name = e.name;
  out->table = std::make_shared<const Table>(std::move(table));
  return Status::OK();
}

Status ParseSketchBlock(const MappedFile& seg, const ManifestEntry& e,
                        const DiscoveryOptions& options, StagedTable* out) {
  if (e.state.sketch_off > seg.size() ||
      e.state.sketch_size > seg.size() - e.state.sketch_off) {
    return Status::IoError(StrFormat(
        "catalog sketch block for '%s' out of bounds", e.name.c_str()));
  }
  ByteReader r(seg.data() + e.state.sketch_off,
               static_cast<size_t>(e.state.sketch_size));
  const uint32_t cols = r.U32();
  if (r.failed() || cols != e.state.cols) {
    return Status::IoError(StrFormat(
        "catalog sketch block for '%s' does not match its manifest entry",
        e.name.c_str()));
  }
  out->sketches.resize(cols);
  out->band_keys.resize(cols);
  for (uint32_t c = 0; c < cols; ++c) {
    ColumnSketch& s = out->sketches[c];
    if (!r.Str(&s.name)) break;
    s.profile.rows = r.U64();
    s.profile.nulls = r.U64();
    s.profile.distinct = r.U64();
    s.profile.frac_string = r.F64();
    s.profile.frac_int = r.F64();
    s.profile.frac_double = r.F64();
    s.profile.frac_bool = r.F64();
    s.profile.avg_len = r.F64();
    const uint32_t sig_count = r.U32();
    if (sig_count != 0 && sig_count != options.signature_size) {
      return Status::IoError(StrFormat(
          "catalog sketch for '%s' has signature size %u (expected %zu)",
          e.name.c_str(), sig_count, options.signature_size));
    }
    if (!r.U64Span(sig_count, &s.signature)) break;
    const uint32_t band_count = r.U32();
    if (band_count != 0 && band_count != options.bands) {
      return Status::IoError(StrFormat(
          "catalog sketch for '%s' has %u band keys (expected %zu)",
          e.name.c_str(), band_count, options.bands));
    }
    if (!r.U64Span(band_count, &out->band_keys[c])) break;
    // A column with values must carry a signature (and vice versa) or the
    // LSH rebuild would silently drop it from the index.
    if (s.empty() != (sig_count == 0)) {
      return Status::IoError(StrFormat(
          "catalog sketch for '%s' is inconsistent (distinct=%llu, "
          "signature=%u)",
          e.name.c_str(),
          static_cast<unsigned long long>(s.profile.distinct), sig_count));
    }
  }
  if (r.failed()) {
    return Status::IoError(StrFormat(
        "catalog sketch block for '%s' truncated", e.name.c_str()));
  }
  return Status::OK();
}

/// The engine's Unregister sequence, replicated for refresh: take the table
/// out of the registry, drop its code memo, remove it from discovery.
void DropLiveTable(const std::string& name, TableRegistry* registry,
                   SessionDict* dict, DiscoveryIndex* discovery) {
  uint64_t version = 0;
  std::shared_ptr<const Table> removed = registry->Take(name, &version);
  if (removed == nullptr) return;
  dict->DropTable(removed.get());
  discovery->RemoveTable(name, version);
}

}  // namespace

Result<CatalogOpenReport> OpenCatalogInto(
    const std::string& dir, TableRegistry* registry, SessionDict* dict,
    DiscoveryIndex* discovery, const DiscoveryOptions& discovery_options,
    CatalogState* state, const CatalogOpenRequest& request) {
  Stopwatch watch;
  CatalogOpenReport report;
  const bool refresh = request.mode == CatalogOpenMode::kRefresh;

  // Read CURRENT and (for replicas) pin its generation under the shared
  // lock: the writer's GC takes the exclusive lock, so it can never retire
  // a generation between our CURRENT read and the pin landing.
  uint64_t gen = 0;
  std::string pin_path;
  {
    LAKEFUZZ_ASSIGN_OR_RETURN(CatalogLock lock, CatalogLock::Shared(dir));
    LAKEFUZZ_RETURN_IF_ERROR(ReadCurrent(dir, &gen));
    if (request.pin_path != nullptr) {
      LAKEFUZZ_ASSIGN_OR_RETURN(pin_path, CreatePinFile(dir, gen));
    }
  }
  PinGuard pin_guard(pin_path);
  report.generation = gen;

  // Refresh fast path: the engine already mirrors this generation.
  if (refresh && state->valid() && state->dir == dir &&
      state->generation == gen) {
    report.tables_kept = state->tables_by_name.size();
    if (request.pin_path != nullptr) *request.pin_path = pin_path;
    pin_guard.Release();
    report.seconds = watch.ElapsedSeconds();
    return report;
  }

  std::string manifest_bytes;
  LAKEFUZZ_RETURN_IF_ERROR(ReadFileBytes(
      JoinPath(dir, CatalogManifestFileName(gen)), &manifest_bytes));
  Manifest m;
  LAKEFUZZ_RETURN_IF_ERROR(
      ParseManifest(manifest_bytes, &discovery_options, &m));
  if (m.generation != gen) {
    return Status::IoError(StrFormat(
        "catalog manifest records generation %llu but CURRENT points at "
        "%llu",
        static_cast<unsigned long long>(m.generation),
        static_cast<unsigned long long>(gen)));
  }

  // Map and verify every segment BEFORE touching any engine structure: a
  // corrupt catalog degrades to a cold rebuild with a typed error; it never
  // half-loads.
  LAKEFUZZ_ASSIGN_OR_RETURN(
      MappedFile values_seg,
      MappedFile::Open(JoinPath(
          dir, CatalogSegmentFileName(kCatalogValuesStem, m.base))));
  LAKEFUZZ_ASSIGN_OR_RETURN(
      MappedFile hashes_seg,
      MappedFile::Open(JoinPath(
          dir, CatalogSegmentFileName(kCatalogHashesStem, m.base))));
  LAKEFUZZ_ASSIGN_OR_RETURN(
      MappedFile tables_seg,
      MappedFile::Open(JoinPath(
          dir, CatalogSegmentFileName(kCatalogTablesStem, m.base))));
  LAKEFUZZ_ASSIGN_OR_RETURN(
      MappedFile sketches_seg,
      MappedFile::Open(JoinPath(
          dir, CatalogSegmentFileName(kCatalogSketchesStem, m.base))));
  LAKEFUZZ_RETURN_IF_ERROR(VerifySegment(values_seg, m.values, "values"));
  LAKEFUZZ_RETURN_IF_ERROR(VerifySegment(hashes_seg, m.hashes, "hashes"));
  LAKEFUZZ_RETURN_IF_ERROR(VerifySegment(tables_seg, m.tables, "tables"));
  LAKEFUZZ_RETURN_IF_ERROR(
      VerifySegment(sketches_seg, m.sketches, "sketches"));
  if (m.hashes.size != m.value_count * sizeof(uint64_t)) {
    return Status::IoError(
        "catalog hash segment size does not match the dictionary count");
  }
  for (const MappedFile* f :
       {&values_seg, &hashes_seg, &tables_seg, &sketches_seg}) {
    if (f->mapped()) report.mapped_bytes += f->size();
  }

  // Dict replay in file-code order. The persisted hash side table is the
  // point: values re-enter the session dictionary without a single
  // re-hash (the hashes are read straight out of the mapping), and the
  // file→session code remap is identity on a fresh engine. A refreshing
  // replica whose dict already mirrors the committed prefix of the same
  // segment base replays only the delta — O(new values), not O(values).
  LAKEFUZZ_FAULT_POINT("catalog/read");
  const bool delta_replay =
      refresh && state->valid() && state->dir == dir &&
      state->base == m.base && state->codes_identical &&
      m.value_count >= state->values_persisted &&
      dict->NumDistinct() == state->values_persisted;
  std::vector<uint32_t> remap(static_cast<size_t>(m.value_count) + 1, 0);
  bool identical = true;
  uint64_t first = 1;
  uint64_t values_off = 0;
  if (delta_replay) {
    for (uint64_t i = 1; i <= state->values_persisted; ++i) {
      remap[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
    }
    first = state->values_persisted + 1;
    values_off = state->values.size;
  }
  ByteReader vr(values_seg.data() + values_off,
                static_cast<size_t>(m.values.size - values_off));
  for (uint64_t i = first; i <= m.value_count; ++i) {
    Value v;
    LAKEFUZZ_RETURN_IF_ERROR(ReadValue(&vr, &v));
    uint64_t hash;
    std::memcpy(&hash, hashes_seg.data() + (i - 1) * sizeof(uint64_t),
                sizeof(hash));
    const uint32_t code = dict->RestoreValue(std::move(v), hash);
    remap[static_cast<size_t>(i)] = code;
    identical = identical && code == i;
  }
  report.values_loaded = m.value_count - (first - 1);

  // Stage every table that needs (re)loading before committing any: a
  // corrupt block aborts the whole open with the registry untouched.
  // kOpen: live tables win over the persisted snapshot. kRefresh: the
  // catalog wins — unchanged fingerprints keep the live table, changed
  // ones are staged for replacement.
  std::vector<StagedTable> staged;
  staged.reserve(m.entries.size());
  std::set<std::string> manifest_names;
  for (const ManifestEntry& e : m.entries) {
    manifest_names.insert(e.name);
    const bool live = registry->Get(e.name).ok();
    if (live) {
      if (!refresh) {
        ++report.tables_kept;
        continue;
      }
      auto it = state->tables_by_name.find(e.name);
      if (it != state->tables_by_name.end() &&
          it->second.fingerprint == e.state.fingerprint) {
        ++report.tables_kept;
        continue;
      }
    }
    LAKEFUZZ_FAULT_POINT("catalog/read");
    StagedTable st;
    st.replaces_live = live;
    LAKEFUZZ_RETURN_IF_ERROR(ParseTableBlock(tables_seg, e, m.value_count,
                                             remap, dict->dict(), &st));
    LAKEFUZZ_RETURN_IF_ERROR(
        ParseSketchBlock(sketches_seg, e, discovery_options, &st));
    staged.push_back(std::move(st));
  }
  // Refresh: live tables the new manifest no longer lists are dropped at
  // commit — the replica must mirror the generation, not accrete history.
  std::vector<std::string> vanished;
  if (refresh) {
    for (const auto& [name, ts] : state->tables_by_name) {
      if (manifest_names.count(name) == 0 && registry->Get(name).ok()) {
        vanished.push_back(name);
      }
    }
  }

  // Commit: replace/register, seed the column-code memo, and insert the
  // pre-built sketches + band keys — zero columns re-sketched for an
  // unchanged lake.
  for (StagedTable& st : staged) {
    if (st.replaces_live) {
      DropLiveTable(st.name, registry, dict, discovery);
      ++report.tables_replaced;
    }
    uint64_t version = 0;
    Status registered = registry->Register(st.name, st.table, &version);
    if (!registered.ok()) {
      ++report.tables_kept;  // raced by a concurrent registration
      continue;
    }
    dict->PinTableWithCodes(st.table, std::move(st.columns));
    discovery->LoadTable(st.name, st.table, std::move(st.sketches),
                         st.band_keys, version);
    ++report.tables_loaded;
  }
  for (const std::string& name : vanished) {
    DropLiveTable(name, registry, dict, discovery);
    ++report.tables_dropped;
  }

  state->dir = dir;
  state->generation = gen;
  state->base = m.base;
  state->codes_identical = delta_replay ? true : identical;
  state->values_persisted = m.value_count;
  state->values = m.values;
  state->hashes = m.hashes;
  state->tables = m.tables;
  state->sketches = m.sketches;
  state->tables_by_name.clear();
  for (ManifestEntry& e : m.entries) {
    state->tables_by_name[e.name] = e.state;
  }
  if (request.pin_path != nullptr) *request.pin_path = pin_path;
  pin_guard.Release();
  report.seconds = watch.ElapsedSeconds();
  return report;
}

}  // namespace lakefuzz
