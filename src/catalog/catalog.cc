#include "catalog/catalog.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#define LAKEFUZZ_CATALOG_POSIX 1
#endif

#include "catalog/mapped_file.h"
#include "discovery/lsh_index.h"
#include "util/fault_injection.h"
#include "util/hash.h"
#include "util/stopwatch.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

// ------------------------------------------------------------ byte codecs
// All integers are written in host byte order; the manifest's endianness
// probe (kCatalogEndianCheck) rejects a catalog written on a different
// architecture with a typed error instead of silently mis-decoding.

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  void Raw(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  const std::string& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a byte span. Any overrun sets a sticky
/// failure flag (checked by the caller at block granularity) and returns
/// zeros — corrupt input can never read out of bounds or loop unbounded.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : p_(data), size_(size) {}

  uint8_t U8() {
    if (!Require(1)) return 0;
    return p_[off_++];
  }
  uint32_t U32() {
    uint32_t v = 0;
    if (!Require(sizeof(v))) return 0;
    std::memcpy(&v, p_ + off_, sizeof(v));
    off_ += sizeof(v);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    if (!Require(sizeof(v))) return 0;
    std::memcpy(&v, p_ + off_, sizeof(v));
    off_ += sizeof(v);
    return v;
  }
  double F64() {
    double v = 0;
    if (!Require(sizeof(v))) return 0;
    std::memcpy(&v, p_ + off_, sizeof(v));
    off_ += sizeof(v);
    return v;
  }
  bool Str(std::string* out) {
    const uint32_t n = U32();
    if (!Require(n)) return false;
    out->assign(reinterpret_cast<const char*>(p_ + off_), n);
    off_ += n;
    return true;
  }
  bool U64Span(size_t count, std::vector<uint64_t>* out) {
    if (count > (size_ - off_) / sizeof(uint64_t)) {
      failed_ = true;
      return false;
    }
    out->resize(count);
    std::memcpy(out->data(), p_ + off_, count * sizeof(uint64_t));
    off_ += count * sizeof(uint64_t);
    return true;
  }
  bool U32Span(size_t count, std::vector<uint32_t>* out) {
    if (count > (size_ - off_) / sizeof(uint32_t)) {
      failed_ = true;
      return false;
    }
    out->resize(count);
    std::memcpy(out->data(), p_ + off_, count * sizeof(uint32_t));
    off_ += count * sizeof(uint32_t);
    return true;
  }

  bool failed() const { return failed_; }
  size_t offset() const { return off_; }
  size_t remaining() const { return size_ - off_; }

 private:
  bool Require(size_t n) {
    if (failed_ || size_ - off_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const uint8_t* p_;
  size_t size_;
  size_t off_ = 0;
  bool failed_ = false;
};

// --------------------------------------------------------------- file I/O

std::string JoinPath(const std::string& dir, const char* name) {
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

Status EnsureDir(const std::string& dir) {
#ifdef LAKEFUZZ_CATALOG_POSIX
  if (mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::IoError(
      StrFormat("cannot create catalog directory '%s'", dir.c_str()));
#else
  (void)dir;
  return Status::Unimplemented("catalog requires a POSIX filesystem");
#endif
}

/// Size of `path`, or -1 when it does not exist / cannot be stat'ed.
int64_t FileSizeOf(const std::string& path) {
#ifdef LAKEFUZZ_CATALOG_POSIX
  struct stat st;
  if (stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_size);
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  long len = std::ftell(f);
  std::fclose(f);
  return len;
#endif
}

Status SyncAndClose(std::FILE* f, const std::string& path) {
  bool ok = std::fflush(f) == 0;
#ifdef LAKEFUZZ_CATALOG_POSIX
  ok = ok && fsync(fileno(f)) == 0;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    return Status::IoError(StrFormat("cannot sync '%s'", path.c_str()));
  }
  return Status::OK();
}

void SyncDir(const std::string& dir) {
#ifdef LAKEFUZZ_CATALOG_POSIX
  // Durability of the rename itself; failure here is not actionable.
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    fsync(fd);
    ::close(fd);
  }
#else
  (void)dir;
#endif
}

Status ReadFileBytes(const std::string& path, std::string* out) {
  LAKEFUZZ_FAULT_POINT("catalog/read");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot open catalog file '%s'", path.c_str()));
  }
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  if (len < 0) {
    std::fclose(f);
    return Status::IoError(StrFormat("cannot size '%s'", path.c_str()));
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(len));
  const size_t got =
      out->empty() ? 0 : std::fread(&(*out)[0], 1, out->size(), f);
  std::fclose(f);
  if (got != out->size()) {
    return Status::IoError(StrFormat("short read on '%s'", path.c_str()));
  }
  return Status::OK();
}

/// Temp file + fsync + rename + directory fsync: readers observe either the
/// old bytes or the new bytes, never a torn write.
Status WriteFileAtomic(const std::string& dir, const char* name,
                       const std::string& bytes) {
  LAKEFUZZ_FAULT_POINT("catalog/write");
  const std::string final_path = JoinPath(dir, name);
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot create catalog file '%s'", tmp_path.c_str()));
  }
  const size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  if (written != bytes.size()) {
    std::fclose(f);
    std::remove(tmp_path.c_str());
    return Status::IoError(
        StrFormat("short write to '%s'", tmp_path.c_str()));
  }
  Status synced = SyncAndClose(f, tmp_path);
  if (!synced.ok()) {
    std::remove(tmp_path.c_str());
    return synced;
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError(StrFormat("cannot commit catalog file '%s'",
                                     final_path.c_str()));
  }
  SyncDir(dir);
  return Status::OK();
}

/// Appends past the committed prefix. A crash mid-append leaves trailing
/// garbage beyond the manifest's logical size, which the prefix checksums
/// ignore — the previous catalog stays openable.
Status AppendToFile(const std::string& path, const std::string& bytes) {
  if (bytes.empty()) return Status::OK();
  LAKEFUZZ_FAULT_POINT("catalog/write");
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot append to catalog file '%s'", path.c_str()));
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  if (written != bytes.size()) {
    std::fclose(f);
    return Status::IoError(StrFormat("short append to '%s'", path.c_str()));
  }
  return SyncAndClose(f, path);
}

// ------------------------------------------------------ value (de)coding

void WriteValue(ByteWriter* w, const Value& v) {
  w->U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;  // never stored: dict codes are non-null by construction
    case ValueType::kString:
      w->Str(v.AsString());
      break;
    case ValueType::kInt64: {
      uint64_t bits;
      int64_t i = v.AsInt();
      std::memcpy(&bits, &i, sizeof(bits));
      w->U64(bits);
      break;
    }
    case ValueType::kDouble: {
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      w->U64(bits);
      break;
    }
    case ValueType::kBool:
      w->U8(v.AsBool() ? 1 : 0);
      break;
  }
}

Status ReadValue(ByteReader* r, Value* out) {
  const uint8_t type = r->U8();
  switch (static_cast<ValueType>(type)) {
    case ValueType::kString: {
      std::string s;
      if (!r->Str(&s)) break;
      *out = Value::String(std::move(s));
      return Status::OK();
    }
    case ValueType::kInt64: {
      const uint64_t bits = r->U64();
      if (r->failed()) break;
      int64_t i;
      std::memcpy(&i, &bits, sizeof(i));
      *out = Value::Int(i);
      return Status::OK();
    }
    case ValueType::kDouble: {
      const uint64_t bits = r->U64();
      if (r->failed()) break;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      return Status::OK();
    }
    case ValueType::kBool: {
      const uint8_t b = r->U8();
      if (r->failed()) break;
      *out = Value::Bool(b != 0);
      return Status::OK();
    }
    default:
      return Status::IoError(StrFormat(
          "catalog value segment holds unknown type tag %u", unsigned{type}));
  }
  return Status::IoError("catalog value segment truncated");
}

// --------------------------------------------------------- table payloads

/// Everything SaveCatalog needs about one registered table, gathered from
/// the live session before any byte is written.
struct TablePayload {
  std::string name;
  std::shared_ptr<const Table> table;
  std::vector<std::shared_ptr<const std::vector<uint32_t>>> codes;
  std::shared_ptr<const std::vector<ColumnSketch>> sketches;
  uint64_t fingerprint = 0;
};

uint64_t FingerprintFromCodes(
    const Table& table,
    const std::vector<std::shared_ptr<const std::vector<uint32_t>>>& codes,
    const ValueDict& dict) {
  uint64_t fp = Fnv1a64("lakefuzz.catalog.table.v1");
  fp = HashCombine(fp, table.NumRows());
  fp = HashCombine(fp, table.NumColumns());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const Field& f = table.schema().field(c);
    fp = HashCombine(fp, Fnv1a64(f.name));
    fp = HashCombine(fp, static_cast<uint64_t>(f.type));
  }
  for (const auto& col : codes) {
    for (uint32_t code : *col) {
      fp = HashCombine(fp,
                       code == ValueDict::kNullCode ? 0 : dict.HashOf(code));
    }
  }
  return fp;
}

void SerializeTableBlock(ByteWriter* w, const TablePayload& p) {
  const Table& t = *p.table;
  w->U32(static_cast<uint32_t>(t.NumColumns()));
  w->U64(t.NumRows());
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    const Field& f = t.schema().field(c);
    w->Str(f.name);
    w->U8(static_cast<uint8_t>(f.type));
  }
  for (const auto& col : p.codes) {
    w->Raw(col->data(), col->size() * sizeof(uint32_t));
  }
}

void SerializeSketchBlock(ByteWriter* w,
                          const std::vector<ColumnSketch>& sketches,
                          const LshIndex& keyer) {
  w->U32(static_cast<uint32_t>(sketches.size()));
  std::vector<uint64_t> keys;
  for (const ColumnSketch& s : sketches) {
    w->Str(s.name);
    w->U64(s.profile.rows);
    w->U64(s.profile.nulls);
    w->U64(s.profile.distinct);
    w->F64(s.profile.frac_string);
    w->F64(s.profile.frac_int);
    w->F64(s.profile.frac_double);
    w->F64(s.profile.frac_bool);
    w->F64(s.profile.avg_len);
    // Empty columns carry no signature or band keys (they are never
    // LSH-indexed); non-empty ones persist both, so a warm load re-buckets
    // the LSH index without recomputing a single MinHash or band key.
    if (s.empty()) {
      w->U32(0);
      w->U32(0);
      continue;
    }
    w->U32(static_cast<uint32_t>(s.signature.size()));
    w->Raw(s.signature.data(), s.signature.size() * sizeof(uint64_t));
    keyer.ComputeBandKeys(s.signature, &keys);
    w->U32(static_cast<uint32_t>(keys.size()));
    w->Raw(keys.data(), keys.size() * sizeof(uint64_t));
  }
}

// --------------------------------------------------------------- manifest

struct ManifestEntry {
  std::string name;
  CatalogState::TableState state;
};

struct Manifest {
  uint64_t signature_size = 0, bands = 0, rows_per_band = 0, seed = 0;
  uint64_t value_count = 0;
  CatalogState::Segment values, hashes, tables, sketches;
  std::vector<ManifestEntry> entries;
};

std::string SerializeManifest(const Manifest& m) {
  ByteWriter w;
  w.Raw(kCatalogMagic, sizeof(kCatalogMagic));
  w.U32(kCatalogFormatVersion);
  w.U32(kCatalogEndianCheck);
  w.U64(m.signature_size);
  w.U64(m.bands);
  w.U64(m.rows_per_band);
  w.U64(m.seed);
  w.U64(m.value_count);
  for (const CatalogState::Segment* seg :
       {&m.values, &m.hashes, &m.tables, &m.sketches}) {
    w.U64(seg->size);
    w.U64(seg->checksum);
  }
  w.U64(m.entries.size());
  for (const ManifestEntry& e : m.entries) {
    w.Str(e.name);
    w.U64(e.state.fingerprint);
    w.U64(e.state.rows);
    w.U32(e.state.cols);
    w.U64(e.state.table_off);
    w.U64(e.state.table_size);
    w.U64(e.state.sketch_off);
    w.U64(e.state.sketch_size);
  }
  ByteWriter out;
  out.Raw(w.bytes().data(), w.size());
  out.U64(Fnv1a64(w.bytes().data(), w.size()));
  return out.bytes();
}

/// Cap on manifest table entries — a corrupt count must not drive a
/// multi-gigabyte allocation before the bounds checks catch it.
constexpr uint64_t kMaxManifestTables = 16u << 20;

Status ParseManifest(const std::string& bytes,
                     const DiscoveryOptions& discovery_options,
                     Manifest* out) {
  if (bytes.size() < sizeof(kCatalogMagic) + 2 * sizeof(uint32_t) +
                         sizeof(uint64_t)) {
    return Status::IoError("catalog manifest truncated");
  }
  if (std::memcmp(bytes.data(), kCatalogMagic, sizeof(kCatalogMagic)) != 0) {
    return Status::InvalidArgument(
        "not a lakefuzz catalog manifest (bad magic)");
  }
  ByteReader r(reinterpret_cast<const uint8_t*>(bytes.data()),
               bytes.size() - sizeof(uint64_t));
  r.U64();  // magic, already checked
  const uint32_t format_version = r.U32();
  if (format_version != kCatalogFormatVersion) {
    return Status::InvalidArgument(StrFormat(
        "catalog format version %u is not supported (this build reads %u)",
        format_version, kCatalogFormatVersion));
  }
  const uint32_t endian = r.U32();
  if (endian != kCatalogEndianCheck) {
    return Status::InvalidArgument(
        "catalog was written with a different byte order");
  }
  // Integrity before content: the trailing checksum covers every preceding
  // byte, so any flip in the body below surfaces here as kIoError.
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum,
              bytes.data() + bytes.size() - sizeof(uint64_t),
              sizeof(uint64_t));
  if (Fnv1a64(bytes.data(), bytes.size() - sizeof(uint64_t)) !=
      stored_checksum) {
    return Status::IoError("catalog manifest checksum mismatch");
  }
  out->signature_size = r.U64();
  out->bands = r.U64();
  out->rows_per_band = r.U64();
  out->seed = r.U64();
  out->value_count = r.U64();
  for (CatalogState::Segment* seg :
       {&out->values, &out->hashes, &out->tables, &out->sketches}) {
    seg->size = r.U64();
    seg->checksum = r.U64();
  }
  const uint64_t num_tables = r.U64();
  if (r.failed() || num_tables > kMaxManifestTables ||
      out->value_count >= UINT32_MAX) {
    return Status::IoError("catalog manifest truncated");
  }
  out->entries.resize(static_cast<size_t>(num_tables));
  for (ManifestEntry& e : out->entries) {
    if (!r.Str(&e.name)) break;
    e.state.fingerprint = r.U64();
    e.state.rows = r.U64();
    e.state.cols = r.U32();
    e.state.table_off = r.U64();
    e.state.table_size = r.U64();
    e.state.sketch_off = r.U64();
    e.state.sketch_size = r.U64();
  }
  if (r.failed()) return Status::IoError("catalog manifest truncated");
  if (out->signature_size != discovery_options.signature_size ||
      out->bands != discovery_options.bands ||
      out->rows_per_band != discovery_options.rows_per_band ||
      out->seed != discovery_options.seed) {
    return Status::InvalidArgument(StrFormat(
        "catalog sketch parameters (k=%llu, %llux%llu, seed=%llu) do not "
        "match this engine's discovery options — rebuild required",
        static_cast<unsigned long long>(out->signature_size),
        static_cast<unsigned long long>(out->bands),
        static_cast<unsigned long long>(out->rows_per_band),
        static_cast<unsigned long long>(out->seed)));
  }
  return Status::OK();
}

Status VerifySegment(const MappedFile& file, const CatalogState::Segment& seg,
                     const char* name) {
  if (file.size() < seg.size) {
    return Status::IoError(
        StrFormat("catalog segment '%s' truncated (%zu < committed %llu)",
                  name, file.size(),
                  static_cast<unsigned long long>(seg.size)));
  }
  // Only the committed prefix participates: bytes past it are an aborted
  // append, not corruption.
  if (Fnv1a64(file.data(), static_cast<size_t>(seg.size)) != seg.checksum) {
    return Status::IoError(
        StrFormat("catalog segment '%s' checksum mismatch", name));
  }
  return Status::OK();
}

Status GatherPayloads(TableRegistry* registry, SessionDict* dict,
                      DiscoveryIndex* discovery,
                      std::vector<TablePayload>* payloads,
                      size_t* columns_resketched) {
  auto snapshot = registry->Snapshot();
  payloads->reserve(snapshot.size());
  for (auto& [name, table] : snapshot) {
    TablePayload p;
    p.name = name;
    p.table = table;
    p.codes.reserve(table->NumColumns());
    for (size_t c = 0; c < table->NumColumns(); ++c) {
      // Memoized for pinned (registered) tables; this also forces every
      // cell into the dictionary before the persisted code range is fixed.
      p.codes.push_back(dict->ColumnCodes(*table, c));
    }
    p.sketches = discovery->TableSketches(name, table.get());
    if (p.sketches == nullptr || p.sketches->size() != table->NumColumns()) {
      // Index was never built (lazy mode, unsynced) — sketch here so the
      // catalog is complete either way.
      p.sketches = std::make_shared<const std::vector<ColumnSketch>>(
          discovery->SketchTable(*table));
      *columns_resketched += table->NumColumns();
    }
    p.fingerprint = FingerprintFromCodes(*table, p.codes, dict->dict());
    payloads->push_back(std::move(p));
  }
  return Status::OK();
}

}  // namespace

uint64_t CatalogTableFingerprint(const Table& table, SessionDict* dict) {
  std::vector<std::shared_ptr<const std::vector<uint32_t>>> codes;
  codes.reserve(table.NumColumns());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    codes.push_back(dict->ColumnCodes(table, c));
  }
  return FingerprintFromCodes(table, codes, dict->dict());
}

// ---------------------------------------------------------------- save

Result<CatalogSaveReport> SaveCatalogFrom(
    const std::string& dir, TableRegistry* registry, SessionDict* dict,
    DiscoveryIndex* discovery, const DiscoveryOptions& discovery_options,
    CatalogState* state) {
  Stopwatch watch;
  CatalogSaveReport report;
  LAKEFUZZ_RETURN_IF_ERROR(EnsureDir(dir));

  std::vector<TablePayload> payloads;
  LAKEFUZZ_RETURN_IF_ERROR(GatherPayloads(registry, dict, discovery,
                                          &payloads,
                                          &report.columns_resketched));
  // Captured AFTER gathering: every code referenced by a payload is
  // <= value_count, and codes appended by concurrent requests past it are
  // simply left for the next checkpoint (the dict is append-only).
  const uint64_t value_count = dict->NumDistinct();

  const bool incremental =
      state->valid() && state->dir == dir && state->codes_identical &&
      value_count >= state->values_persisted &&
      FileSizeOf(JoinPath(dir, kCatalogValuesFile)) ==
          static_cast<int64_t>(state->values.size) &&
      FileSizeOf(JoinPath(dir, kCatalogHashesFile)) ==
          static_cast<int64_t>(state->hashes.size) &&
      FileSizeOf(JoinPath(dir, kCatalogTablesFile)) ==
          static_cast<int64_t>(state->tables.size) &&
      FileSizeOf(JoinPath(dir, kCatalogSketchesFile)) ==
          static_cast<int64_t>(state->sketches.size);

  // Band keys are recomputed once per signature at save time (cheap FNV
  // folds); persisting them makes the warm open's LSH rebuild a pure copy.
  const LshIndex keyer(discovery_options.bands,
                       discovery_options.rows_per_band);

  Manifest m;
  m.signature_size = discovery_options.signature_size;
  m.bands = discovery_options.bands;
  m.rows_per_band = discovery_options.rows_per_band;
  m.seed = discovery_options.seed;
  m.value_count = value_count;

  std::map<std::string, CatalogState::TableState> table_states;

  if (incremental) {
    report.incremental = true;
    // Dict delta: entries [values_persisted+1, value_count] append; the
    // prefix checksum streams forward (FNV seeded with the old checksum).
    ByteWriter vbuf, hbuf;
    for (uint64_t code = state->values_persisted + 1; code <= value_count;
         ++code) {
      WriteValue(&vbuf, dict->dict().Decode(static_cast<uint32_t>(code)));
      hbuf.U64(dict->dict().HashOf(static_cast<uint32_t>(code)));
    }
    m.values.size = state->values.size + vbuf.size();
    m.values.checksum =
        vbuf.size() == 0
            ? state->values.checksum
            : Fnv1a64(vbuf.bytes().data(), vbuf.size(), state->values.checksum);
    m.hashes.size = state->hashes.size + hbuf.size();
    m.hashes.checksum =
        hbuf.size() == 0
            ? state->hashes.checksum
            : Fnv1a64(hbuf.bytes().data(), hbuf.size(), state->hashes.checksum);

    ByteWriter tbuf, sbuf;
    for (const TablePayload& p : payloads) {
      auto it = state->tables_by_name.find(p.name);
      if (it != state->tables_by_name.end() &&
          it->second.fingerprint == p.fingerprint) {
        table_states[p.name] = it->second;
        ++report.tables_reused;
        continue;
      }
      CatalogState::TableState ts;
      ts.fingerprint = p.fingerprint;
      ts.rows = p.table->NumRows();
      ts.cols = static_cast<uint32_t>(p.table->NumColumns());
      ts.table_off = state->tables.size + tbuf.size();
      SerializeTableBlock(&tbuf, p);
      ts.table_size = state->tables.size + tbuf.size() - ts.table_off;
      ts.sketch_off = state->sketches.size + sbuf.size();
      SerializeSketchBlock(&sbuf, *p.sketches, keyer);
      ts.sketch_size = state->sketches.size + sbuf.size() - ts.sketch_off;
      table_states[p.name] = ts;
      ++report.tables_written;
    }
    m.tables.size = state->tables.size + tbuf.size();
    m.tables.checksum =
        tbuf.size() == 0
            ? state->tables.checksum
            : Fnv1a64(tbuf.bytes().data(), tbuf.size(), state->tables.checksum);
    m.sketches.size = state->sketches.size + sbuf.size();
    m.sketches.checksum =
        sbuf.size() == 0 ? state->sketches.checksum
                         : Fnv1a64(sbuf.bytes().data(), sbuf.size(),
                                   state->sketches.checksum);

    LAKEFUZZ_RETURN_IF_ERROR(
        AppendToFile(JoinPath(dir, kCatalogValuesFile), vbuf.bytes()));
    LAKEFUZZ_RETURN_IF_ERROR(
        AppendToFile(JoinPath(dir, kCatalogHashesFile), hbuf.bytes()));
    LAKEFUZZ_RETURN_IF_ERROR(
        AppendToFile(JoinPath(dir, kCatalogTablesFile), tbuf.bytes()));
    LAKEFUZZ_RETURN_IF_ERROR(
        AppendToFile(JoinPath(dir, kCatalogSketchesFile), sbuf.bytes()));
    report.values_appended = value_count - state->values_persisted;
    report.bytes_written +=
        vbuf.size() + hbuf.size() + tbuf.size() + sbuf.size();
  } else {
    // Full rewrite: everything is serialized into fresh buffers and every
    // segment goes through the temp-file commit, so a crash at any point
    // leaves the previous catalog (if any) fully intact.
    ByteWriter vbuf, hbuf;
    for (uint64_t code = 1; code <= value_count; ++code) {
      WriteValue(&vbuf, dict->dict().Decode(static_cast<uint32_t>(code)));
      hbuf.U64(dict->dict().HashOf(static_cast<uint32_t>(code)));
    }
    ByteWriter tbuf, sbuf;
    for (const TablePayload& p : payloads) {
      CatalogState::TableState ts;
      ts.fingerprint = p.fingerprint;
      ts.rows = p.table->NumRows();
      ts.cols = static_cast<uint32_t>(p.table->NumColumns());
      ts.table_off = tbuf.size();
      SerializeTableBlock(&tbuf, p);
      ts.table_size = tbuf.size() - ts.table_off;
      ts.sketch_off = sbuf.size();
      SerializeSketchBlock(&sbuf, *p.sketches, keyer);
      ts.sketch_size = sbuf.size() - ts.sketch_off;
      table_states[p.name] = ts;
      ++report.tables_written;
    }
    m.values = {vbuf.size(), Fnv1a64(vbuf.bytes().data(), vbuf.size())};
    m.hashes = {hbuf.size(), Fnv1a64(hbuf.bytes().data(), hbuf.size())};
    m.tables = {tbuf.size(), Fnv1a64(tbuf.bytes().data(), tbuf.size())};
    m.sketches = {sbuf.size(), Fnv1a64(sbuf.bytes().data(), sbuf.size())};
    LAKEFUZZ_RETURN_IF_ERROR(
        WriteFileAtomic(dir, kCatalogValuesFile, vbuf.bytes()));
    LAKEFUZZ_RETURN_IF_ERROR(
        WriteFileAtomic(dir, kCatalogHashesFile, hbuf.bytes()));
    LAKEFUZZ_RETURN_IF_ERROR(
        WriteFileAtomic(dir, kCatalogTablesFile, tbuf.bytes()));
    LAKEFUZZ_RETURN_IF_ERROR(
        WriteFileAtomic(dir, kCatalogSketchesFile, sbuf.bytes()));
    report.values_appended = value_count;
    report.bytes_written +=
        vbuf.size() + hbuf.size() + tbuf.size() + sbuf.size();
  }

  m.entries.reserve(table_states.size());
  for (auto& [name, ts] : table_states) {
    m.entries.push_back(ManifestEntry{name, ts});
  }
  const std::string manifest = SerializeManifest(m);
  LAKEFUZZ_RETURN_IF_ERROR(
      WriteFileAtomic(dir, kCatalogManifestFile, manifest));
  report.bytes_written += manifest.size();

  state->dir = dir;
  state->codes_identical = true;  // file codes 1..value_count == session codes
  state->values_persisted = value_count;
  state->values = m.values;
  state->hashes = m.hashes;
  state->tables = m.tables;
  state->sketches = m.sketches;
  state->tables_by_name = std::move(table_states);
  report.seconds = watch.ElapsedSeconds();
  return report;
}

// ---------------------------------------------------------------- open

namespace {

/// One fully parsed, not-yet-registered catalog table.
struct StagedTable {
  std::string name;
  std::shared_ptr<const Table> table;
  std::vector<std::shared_ptr<const std::vector<uint32_t>>> columns;
  std::vector<ColumnSketch> sketches;
  std::vector<std::vector<uint64_t>> band_keys;
};

Status ParseTableBlock(const MappedFile& seg, const ManifestEntry& e,
                       uint64_t value_count,
                       const std::vector<uint32_t>& remap,
                       const ValueDict& dict, StagedTable* out) {
  if (e.state.table_off > seg.size() ||
      e.state.table_size > seg.size() - e.state.table_off) {
    return Status::IoError(StrFormat(
        "catalog table block for '%s' out of bounds", e.name.c_str()));
  }
  ByteReader r(seg.data() + e.state.table_off,
               static_cast<size_t>(e.state.table_size));
  const uint32_t cols = r.U32();
  const uint64_t rows = r.U64();
  if (r.failed() || cols != e.state.cols || rows != e.state.rows) {
    return Status::IoError(StrFormat(
        "catalog table block for '%s' does not match its manifest entry",
        e.name.c_str()));
  }
  std::vector<Field> fields(cols);
  for (Field& f : fields) {
    if (!r.Str(&f.name)) break;
    f.type = static_cast<ValueType>(r.U8());
  }
  if (r.failed()) {
    return Status::IoError(
        StrFormat("catalog table block for '%s' truncated", e.name.c_str()));
  }
  out->columns.reserve(cols);
  std::vector<uint32_t> file_codes;
  for (uint32_t c = 0; c < cols; ++c) {
    if (!r.U32Span(static_cast<size_t>(rows), &file_codes)) {
      return Status::IoError(StrFormat(
          "catalog table block for '%s' truncated", e.name.c_str()));
    }
    auto session_codes = std::make_shared<std::vector<uint32_t>>();
    session_codes->reserve(file_codes.size());
    for (uint32_t code : file_codes) {
      if (code > value_count) {
        return Status::IoError(StrFormat(
            "catalog table block for '%s' references code %u beyond the "
            "dictionary (%llu entries)",
            e.name.c_str(), code,
            static_cast<unsigned long long>(value_count)));
      }
      session_codes->push_back(remap[code]);
    }
    out->columns.push_back(std::move(session_codes));
  }
  // Materialize the Table row-wise from the remapped codes: cells decode to
  // exactly the writer's values, so results downstream are byte-identical.
  Table table(e.name, Schema(std::move(fields)));
  std::vector<Value> row(cols);
  for (uint64_t rr = 0; rr < rows; ++rr) {
    for (uint32_t c = 0; c < cols; ++c) {
      row[c] = dict.Decode((*out->columns[c])[static_cast<size_t>(rr)]);
    }
    Status appended = table.AppendRow(row);
    if (!appended.ok()) return appended;
  }
  out->name = e.name;
  out->table = std::make_shared<const Table>(std::move(table));
  return Status::OK();
}

Status ParseSketchBlock(const MappedFile& seg, const ManifestEntry& e,
                        const DiscoveryOptions& options, StagedTable* out) {
  if (e.state.sketch_off > seg.size() ||
      e.state.sketch_size > seg.size() - e.state.sketch_off) {
    return Status::IoError(StrFormat(
        "catalog sketch block for '%s' out of bounds", e.name.c_str()));
  }
  ByteReader r(seg.data() + e.state.sketch_off,
               static_cast<size_t>(e.state.sketch_size));
  const uint32_t cols = r.U32();
  if (r.failed() || cols != e.state.cols) {
    return Status::IoError(StrFormat(
        "catalog sketch block for '%s' does not match its manifest entry",
        e.name.c_str()));
  }
  out->sketches.resize(cols);
  out->band_keys.resize(cols);
  for (uint32_t c = 0; c < cols; ++c) {
    ColumnSketch& s = out->sketches[c];
    if (!r.Str(&s.name)) break;
    s.profile.rows = r.U64();
    s.profile.nulls = r.U64();
    s.profile.distinct = r.U64();
    s.profile.frac_string = r.F64();
    s.profile.frac_int = r.F64();
    s.profile.frac_double = r.F64();
    s.profile.frac_bool = r.F64();
    s.profile.avg_len = r.F64();
    const uint32_t sig_count = r.U32();
    if (sig_count != 0 && sig_count != options.signature_size) {
      return Status::IoError(StrFormat(
          "catalog sketch for '%s' has signature size %u (expected %zu)",
          e.name.c_str(), sig_count, options.signature_size));
    }
    if (!r.U64Span(sig_count, &s.signature)) break;
    const uint32_t band_count = r.U32();
    if (band_count != 0 && band_count != options.bands) {
      return Status::IoError(StrFormat(
          "catalog sketch for '%s' has %u band keys (expected %zu)",
          e.name.c_str(), band_count, options.bands));
    }
    if (!r.U64Span(band_count, &out->band_keys[c])) break;
    // A column with values must carry a signature (and vice versa) or the
    // LSH rebuild would silently drop it from the index.
    if (s.empty() != (sig_count == 0)) {
      return Status::IoError(StrFormat(
          "catalog sketch for '%s' is inconsistent (distinct=%llu, "
          "signature=%u)",
          e.name.c_str(),
          static_cast<unsigned long long>(s.profile.distinct), sig_count));
    }
  }
  if (r.failed()) {
    return Status::IoError(StrFormat(
        "catalog sketch block for '%s' truncated", e.name.c_str()));
  }
  return Status::OK();
}

}  // namespace

Result<CatalogOpenReport> OpenCatalogInto(
    const std::string& dir, TableRegistry* registry, SessionDict* dict,
    DiscoveryIndex* discovery, const DiscoveryOptions& discovery_options,
    CatalogState* state) {
  Stopwatch watch;
  CatalogOpenReport report;

  std::string manifest_bytes;
  LAKEFUZZ_RETURN_IF_ERROR(
      ReadFileBytes(JoinPath(dir, kCatalogManifestFile), &manifest_bytes));
  Manifest m;
  LAKEFUZZ_RETURN_IF_ERROR(
      ParseManifest(manifest_bytes, discovery_options, &m));

  // Map and verify every segment BEFORE touching any engine structure: a
  // corrupt catalog degrades to a cold rebuild with a typed error; it never
  // half-loads.
  LAKEFUZZ_ASSIGN_OR_RETURN(MappedFile values_seg,
                            MappedFile::Open(JoinPath(dir, kCatalogValuesFile)));
  LAKEFUZZ_ASSIGN_OR_RETURN(MappedFile hashes_seg,
                            MappedFile::Open(JoinPath(dir, kCatalogHashesFile)));
  LAKEFUZZ_ASSIGN_OR_RETURN(MappedFile tables_seg,
                            MappedFile::Open(JoinPath(dir, kCatalogTablesFile)));
  LAKEFUZZ_ASSIGN_OR_RETURN(
      MappedFile sketches_seg,
      MappedFile::Open(JoinPath(dir, kCatalogSketchesFile)));
  LAKEFUZZ_RETURN_IF_ERROR(VerifySegment(values_seg, m.values, "values"));
  LAKEFUZZ_RETURN_IF_ERROR(VerifySegment(hashes_seg, m.hashes, "hashes"));
  LAKEFUZZ_RETURN_IF_ERROR(VerifySegment(tables_seg, m.tables, "tables"));
  LAKEFUZZ_RETURN_IF_ERROR(
      VerifySegment(sketches_seg, m.sketches, "sketches"));
  if (m.hashes.size != m.value_count * sizeof(uint64_t)) {
    return Status::IoError(
        "catalog hash segment size does not match the dictionary count");
  }
  for (const MappedFile* f :
       {&values_seg, &hashes_seg, &tables_seg, &sketches_seg}) {
    if (f->mapped()) report.mapped_bytes += f->size();
  }

  // Dict replay in file-code order. The persisted hash side table is the
  // point: values re-enter the session dictionary without a single
  // re-hash (the hashes are read straight out of the mapping), and the
  // file→session code remap is identity on a fresh engine.
  LAKEFUZZ_FAULT_POINT("catalog/read");
  ByteReader vr(values_seg.data(), static_cast<size_t>(m.values.size));
  std::vector<uint32_t> remap(static_cast<size_t>(m.value_count) + 1, 0);
  bool identical = true;
  for (uint64_t i = 1; i <= m.value_count; ++i) {
    Value v;
    LAKEFUZZ_RETURN_IF_ERROR(ReadValue(&vr, &v));
    uint64_t hash;
    std::memcpy(&hash, hashes_seg.data() + (i - 1) * sizeof(uint64_t),
                sizeof(hash));
    const uint32_t code = dict->RestoreValue(std::move(v), hash);
    remap[static_cast<size_t>(i)] = code;
    identical = identical && code == i;
  }
  report.values_loaded = m.value_count;

  // Stage every table (parse + validate + rebuild) before committing any:
  // a corrupt block aborts the whole open with the registry untouched.
  std::vector<StagedTable> staged;
  staged.reserve(m.entries.size());
  for (const ManifestEntry& e : m.entries) {
    if (registry->Get(e.name).ok()) {
      ++report.tables_kept;  // live table wins over the persisted snapshot
      continue;
    }
    LAKEFUZZ_FAULT_POINT("catalog/read");
    StagedTable st;
    LAKEFUZZ_RETURN_IF_ERROR(ParseTableBlock(tables_seg, e, m.value_count,
                                             remap, dict->dict(), &st));
    LAKEFUZZ_RETURN_IF_ERROR(
        ParseSketchBlock(sketches_seg, e, discovery_options, &st));
    staged.push_back(std::move(st));
  }

  // Commit: register, seed the column-code memo, and insert the pre-built
  // sketches + band keys — zero columns re-sketched for an unchanged lake.
  for (StagedTable& st : staged) {
    uint64_t version = 0;
    Status registered = registry->Register(st.name, st.table, &version);
    if (!registered.ok()) {
      ++report.tables_kept;  // raced by a concurrent registration
      continue;
    }
    dict->PinTableWithCodes(st.table, std::move(st.columns));
    discovery->LoadTable(st.name, st.table, std::move(st.sketches),
                         st.band_keys, version);
    ++report.tables_loaded;
  }

  state->dir = dir;
  state->codes_identical = identical;
  state->values_persisted = m.value_count;
  state->values = m.values;
  state->hashes = m.hashes;
  state->tables = m.tables;
  state->sketches = m.sketches;
  state->tables_by_name.clear();
  for (ManifestEntry& e : m.entries) {
    state->tables_by_name[e.name] = e.state;
  }
  report.seconds = watch.ElapsedSeconds();
  return report;
}

}  // namespace lakefuzz
