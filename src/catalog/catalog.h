// Durable lake catalog: persist session state, restart warm, serve replicas.
//
// Everything a LakeEngine session derives from its lake — the interned
// ValueDict (values + content hashes), per-table column code spans, and the
// discovery index's MinHash sketches, profiles, and LSH band keys — dies
// with the process, so every restart re-reads, re-interns, and re-sketches
// the whole lake. The catalog is that state on disk, in a directory of
// append-only segments plus generation-numbered manifests:
//
//   values.<base>.seg    dict entries in code order (type tag + payload)
//   hashes.<base>.seg    the 64-bit content hash per code (HashOf side table)
//   tables.<base>.seg    per-table blocks: schema + per-column uint32 code rows
//   sketches.<base>.seg  per-column profile + MinHash signature + LSH band keys
//   manifest.<gen>.lfc   magic, format version, generation, segment base,
//                        discovery params, segment sizes/checksums, and
//                        per-table entries (name, content fingerprint, extents)
//   CURRENT              the commit pointer: the generation readers open
//   CURRENT.lock         stable flock target fencing commits, reads, and GC
//   pin.<gen>.<pid>.<seq>  a reader's claim that generation <gen> must survive
//
// Every SaveCatalog commits a new generation: segments are written (full
// rewrite, under a fresh <base> = <gen>) or appended (incremental, same
// <base>), then `manifest.<gen>.lfc` and finally `CURRENT` go through the
// temp-file + fsync + rename commit. The CURRENT rename is the single commit
// point — a crash anywhere before it leaves the previous generation exactly
// as it was, because a committed generation's extents are immutable: full
// rewrites allocate a new base instead of truncating files an older manifest
// references, incremental checkpoints only append past the committed prefix,
// and every checksum covers exactly the logical prefix its manifest records.
//
// Readers (OpenCatalogInto, LakeEngine::OpenReplica) take a shared flock on
// CURRENT.lock, read CURRENT, and optionally drop a pin file for that
// generation before releasing the lock. The writer garbage-collects old
// generations under the exclusive lock after each commit, keeping the newest
// `retain_generations` plus any generation a live process has pinned (pins
// whose pid is dead are swept). CURRENT itself is replaced by rename on
// every commit and flock binds to the inode, hence the stable sibling lock.
//
// A reopened engine replays the dict with the persisted hashes (no value
// re-hashing), seeds the per-column code memo, and inserts pre-built
// sketches — re-sketching 0 columns for an unchanged lake. Corruption never
// crashes: a truncated, bit-flipped, or version-skewed file fails
// OpenCatalogInto with a typed kIoError / kInvalidArgument before any
// engine structure is touched, and the caller rebuilds cold.
// LAKEFUZZ_FAULT_POINT seams "catalog/read", "catalog/write",
// "catalog/fsync", "catalog/rename", and "catalog/mmap" wire the IO paths
// into the chaos harness, and LAKEFUZZ_CRASH_POINT (see fault_injection.h)
// turns any of them into a process kill for the recovery harness.
#ifndef LAKEFUZZ_CATALOG_CATALOG_H_
#define LAKEFUZZ_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/engine_registry.h"
#include "discovery/discovery.h"
#include "fd/session_dict.h"
#include "util/result.h"

namespace lakefuzz {

// ------------------------------------------------------------- file format
// Public so tests can craft precise corruption (bad magic with a fixed-up
// checksum, version skew, truncation at exact boundaries, torn CURRENT).

inline constexpr const char* kCatalogCurrentFile = "CURRENT";
/// flock target for commit/read/GC fencing. CURRENT is replaced by rename on
/// every commit and flock binds to the inode, so the lock needs a sibling
/// file that is never renamed.
inline constexpr const char* kCatalogLockFile = "CURRENT.lock";

inline constexpr const char* kCatalogValuesStem = "values";
inline constexpr const char* kCatalogHashesStem = "hashes";
inline constexpr const char* kCatalogTablesStem = "tables";
inline constexpr const char* kCatalogSketchesStem = "sketches";

/// "manifest.<gen>.lfc"
std::string CatalogManifestFileName(uint64_t generation);
/// "<stem>.<base>.seg" — base is the generation of the last full rewrite;
/// incremental checkpoints append to the same base files.
std::string CatalogSegmentFileName(const char* stem, uint64_t base);
/// "pin.<gen>.<pid>.<seq>" — a live reader's retention claim on <gen>.
std::string CatalogPinFileName(uint64_t generation, int64_t pid, uint64_t seq);

/// First 8 manifest bytes. Followed by format version (u32) and an
/// endianness probe (u32 = kCatalogEndianCheck as written by the producer).
inline constexpr char kCatalogMagic[8] = {'L', 'F', 'C', 'A',
                                          'T', 'L', 'G', '1'};
/// v2 added generation numbers, segment bases, and the CURRENT pointer.
inline constexpr uint32_t kCatalogFormatVersion = 2;
inline constexpr uint32_t kCatalogEndianCheck = 0x01020304u;

/// Default for the retention knob: how many committed generations a save
/// keeps on disk (pinned generations always survive in addition).
inline constexpr size_t kCatalogDefaultRetainGenerations = 2;

// ------------------------------------------------------------ engine state

/// What the engine remembers about the directory it last opened or saved,
/// enabling incremental checkpoints and replica refreshes. Invalidated
/// (full rewrite on next save) whenever the session's code assignment
/// diverged from the file's.
struct CatalogState {
  struct Segment {
    uint64_t size = 0;      ///< committed logical size (files may be longer)
    uint64_t checksum = 0;  ///< streaming FNV-1a over the logical prefix
  };
  struct TableState {
    uint64_t fingerprint = 0;  ///< content hash (schema + cell hashes)
    uint64_t rows = 0;
    uint32_t cols = 0;
    uint64_t table_off = 0, table_size = 0;    ///< extent in tables.<base>.seg
    uint64_t sketch_off = 0, sketch_size = 0;  ///< extent in sketches.<base>.seg
  };

  std::string dir;  ///< empty = no catalog association yet
  /// The committed generation this state mirrors (0 = none yet).
  uint64_t generation = 0;
  /// Segment base the generation's extents live in (gen of last full rewrite).
  uint64_t base = 0;
  /// File code i == session code i for all persisted codes. Required for
  /// appending dict entries and reusing table blocks (their code rows are
  /// file codes). False after opening into a non-fresh dictionary.
  bool codes_identical = false;
  /// Dict codes 1..values_persisted are on disk.
  uint64_t values_persisted = 0;
  Segment values, hashes, tables, sketches;
  /// Ordered by name — the manifest serialization order, so manifests are
  /// byte-deterministic for a given lake.
  std::map<std::string, TableState> tables_by_name;

  bool valid() const { return !dir.empty(); }
};

/// One OpenCatalog / RefreshReplica outcome (accumulated into CatalogStats).
struct CatalogOpenReport {
  uint64_t generation = 0;   ///< the committed generation that was opened
  size_t tables_loaded = 0;  ///< reconstructed + registered from the catalog
  size_t tables_kept = 0;    ///< names already live and current (skipped)
  size_t tables_replaced = 0;  ///< refresh: live tables superseded on disk
  size_t tables_dropped = 0;   ///< refresh: live tables gone from the manifest
  uint64_t values_loaded = 0;
  /// Columns that had to be re-sketched. 0 for an unchanged lake — the
  /// round-trip acceptance gate.
  size_t columns_resketched = 0;
  /// Bytes of segment data served via mmap during the load.
  uint64_t mapped_bytes = 0;
  double seconds = 0.0;
};

/// One SaveCatalog outcome.
struct CatalogSaveReport {
  uint64_t generation = 0;  ///< the generation this save committed
  uint64_t base = 0;        ///< segment base the generation's extents live in
  bool incremental = false;
  size_t tables_written = 0;
  size_t tables_reused = 0;  ///< unchanged fingerprint, extents reused
  /// Manifest files garbage-collected after the commit (their orphaned
  /// segment bases go with them).
  size_t generations_removed = 0;
  uint64_t values_appended = 0;
  uint64_t bytes_written = 0;
  /// Columns sketched during the save because the discovery index had no
  /// current sketch for them (engine was never synced, e.g. lazy mode).
  size_t columns_resketched = 0;
  double seconds = 0.0;
};

/// Engine-lifetime catalog counters (LakeEngine::catalog_stats()).
struct CatalogStats {
  uint64_t opens = 0;
  uint64_t open_failures = 0;  ///< typed failures that degraded to rebuild
  uint64_t saves = 0;
  uint64_t refreshes = 0;  ///< replica refreshes that loaded a new generation
  uint64_t generation = 0;  ///< last committed/observed generation
  uint64_t generations_removed = 0;  ///< retired by retention GC
  uint64_t tables_loaded = 0;
  uint64_t tables_written = 0;
  uint64_t tables_reused = 0;
  uint64_t values_loaded = 0;
  uint64_t values_appended = 0;
  uint64_t columns_resketched = 0;
  uint64_t mmap_bytes = 0;  ///< segment bytes mapped by the last open
  uint64_t bytes_written = 0;
};

// -------------------------------------------------------------- operations

/// Content fingerprint of a registered table: schema (field names + types),
/// row count, and the per-cell content hash sequence (ValueDict::HashOf of
/// the interned codes — order-sensitive, null = 0). Independent of code
/// numbering, so writer and reader agree across sessions. This is what
/// keys "rebuild only tables whose content changed".
uint64_t CatalogTableFingerprint(const Table& table, SessionDict* dict);

/// How OpenCatalogInto reconciles the manifest with tables already live in
/// the registry.
enum class CatalogOpenMode {
  /// Initial open: live tables win; manifest entries whose name is already
  /// registered are skipped (counted in tables_kept).
  kOpen,
  /// Replica refresh: the catalog wins. Live tables whose fingerprint
  /// changed on disk are replaced, tables that vanished from the manifest
  /// are dropped, unchanged tables are kept without reload.
  kRefresh,
};

struct CatalogOpenRequest {
  CatalogOpenMode mode = CatalogOpenMode::kOpen;
  /// When non-null, a generation pin file is created for the opened
  /// generation (under the shared CURRENT lock, so GC can never race it
  /// away) and its path is returned here. The caller owns the pin: remove
  /// the file to release the generation. Replica fencing uses this.
  std::string* pin_path = nullptr;
};

/// The committed generation at `dir` (reads CURRENT under a shared lock).
/// kIoError when the directory holds no committed catalog or CURRENT is
/// torn. Cheap — replicas poll this to detect new generations.
Result<uint64_t> CatalogCurrentGeneration(const std::string& dir);

/// Loads the committed generation at `dir` into the engine structures. The
/// entire generation is validated (CURRENT, manifest header, version,
/// discovery params, per-segment checksums, block bounds) and parsed into
/// staging buffers BEFORE any table is registered, so a corrupt catalog
/// returns its typed error with the registry, memo, and discovery index
/// untouched (the dictionary may have interned the catalog's values —
/// harmless, it only grows). On success `state` records the directory and
/// generation for incremental saves / refreshes. `discovery_options` must
/// match the persisted sketch parameters (signature size, banding, seed) or
/// the open fails with kInvalidArgument — signatures from a different
/// family are garbage.
Result<CatalogOpenReport> OpenCatalogInto(const std::string& dir,
                                          TableRegistry* registry,
                                          SessionDict* dict,
                                          DiscoveryIndex* discovery,
                                          const DiscoveryOptions& discovery_options,
                                          CatalogState* state,
                                          const CatalogOpenRequest& request = {});

/// Persists the engine's current lake to `dir` (created if missing) as a
/// new generation, then garbage-collects generations beyond
/// `retain_generations` that no live reader has pinned. Incremental when
/// `state` matches the committed generation and the on-disk segments still
/// have the committed sizes: new dict entries and changed tables append to
/// the same segment base, unchanged tables reuse their extents. Otherwise a
/// full rewrite under a fresh base — segment files a prior generation
/// references are never modified. The CURRENT rename is the commit point.
/// The caller must have the discovery index synced to the registry if it
/// wants sketches persisted without re-sketching (LakeEngine::SaveCatalog
/// does).
Result<CatalogSaveReport> SaveCatalogFrom(
    const std::string& dir, TableRegistry* registry, SessionDict* dict,
    DiscoveryIndex* discovery, const DiscoveryOptions& discovery_options,
    CatalogState* state,
    size_t retain_generations = kCatalogDefaultRetainGenerations);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CATALOG_CATALOG_H_
