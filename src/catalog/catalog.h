// Durable lake catalog: persist session state, restart warm.
//
// Everything a LakeEngine session derives from its lake — the interned
// ValueDict (values + content hashes), per-table column code spans, and the
// discovery index's MinHash sketches, profiles, and LSH band keys — dies
// with the process, so every restart re-reads, re-interns, and re-sketches
// the whole lake. The catalog is that state on disk, in a directory of
// append-only segments plus one versioned manifest:
//
//   values.seg    dict entries in code order (type tag + payload)
//   hashes.seg    the 64-bit content hash per code (HashOf side table)
//   tables.seg    per-table blocks: schema + per-column uint32 code rows
//   sketches.seg  per-column profile + MinHash signature + LSH band keys
//   manifest.lfc  magic, format version, discovery params, segment
//                 sizes/checksums, and per-table entries (name, content
//                 fingerprint, block extents)
//
// The manifest is the commit point: it is written to a temp file, fsynced,
// and renamed into place, and every checksum covers exactly the logical
// prefix it records — so a crash mid-save (full rewrite goes through temp
// files; incremental checkpoints append past the committed prefix) always
// leaves the previous catalog openable. A reopened engine replays the dict
// with the persisted hashes (no value re-hashing), seeds the per-column
// code memo, and inserts pre-built sketches — re-sketching 0 columns for
// an unchanged lake. SaveCatalog checkpoints incrementally when the engine
// last opened/saved the same directory: only dict entries and tables whose
// content fingerprint changed are appended; unchanged tables reuse their
// recorded extents, and dropped tables simply leave the manifest (their
// stale bytes are unreachable, so they can never resurrect).
//
// Corruption never crashes: a truncated, bit-flipped, or version-skewed
// file fails OpenCatalogInto with a typed kIoError / kInvalidArgument
// before any engine structure is touched, and the caller rebuilds cold.
// LAKEFUZZ_FAULT_POINT seams "catalog/read", "catalog/write", and
// "catalog/mmap" wire the IO paths into the chaos harness.
#ifndef LAKEFUZZ_CATALOG_CATALOG_H_
#define LAKEFUZZ_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/engine_registry.h"
#include "discovery/discovery.h"
#include "fd/session_dict.h"
#include "util/result.h"

namespace lakefuzz {

// ------------------------------------------------------------- file format
// Public so tests can craft precise corruption (bad magic with a fixed-up
// checksum, version skew, truncation at exact boundaries).

inline constexpr const char* kCatalogManifestFile = "manifest.lfc";
inline constexpr const char* kCatalogValuesFile = "values.seg";
inline constexpr const char* kCatalogHashesFile = "hashes.seg";
inline constexpr const char* kCatalogTablesFile = "tables.seg";
inline constexpr const char* kCatalogSketchesFile = "sketches.seg";

/// First 8 manifest bytes. Followed by format version (u32) and an
/// endianness probe (u32 = kCatalogEndianCheck as written by the producer).
inline constexpr char kCatalogMagic[8] = {'L', 'F', 'C', 'A',
                                          'T', 'L', 'G', '1'};
inline constexpr uint32_t kCatalogFormatVersion = 1;
inline constexpr uint32_t kCatalogEndianCheck = 0x01020304u;

// ------------------------------------------------------------ engine state

/// What the engine remembers about the directory it last opened or saved,
/// enabling incremental checkpoints. Invalidated (full rewrite on next
/// save) whenever the session's code assignment diverged from the file's.
struct CatalogState {
  struct Segment {
    uint64_t size = 0;      ///< committed logical size (files may be longer)
    uint64_t checksum = 0;  ///< streaming FNV-1a over the logical prefix
  };
  struct TableState {
    uint64_t fingerprint = 0;  ///< content hash (schema + cell hashes)
    uint64_t rows = 0;
    uint32_t cols = 0;
    uint64_t table_off = 0, table_size = 0;    ///< extent in tables.seg
    uint64_t sketch_off = 0, sketch_size = 0;  ///< extent in sketches.seg
  };

  std::string dir;  ///< empty = no catalog association yet
  /// File code i == session code i for all persisted codes. Required for
  /// appending dict entries and reusing table blocks (their code rows are
  /// file codes). False after opening into a non-fresh dictionary.
  bool codes_identical = false;
  /// Dict codes 1..values_persisted are on disk.
  uint64_t values_persisted = 0;
  Segment values, hashes, tables, sketches;
  /// Ordered by name — the manifest serialization order, so manifests are
  /// byte-deterministic for a given lake.
  std::map<std::string, TableState> tables_by_name;

  bool valid() const { return !dir.empty(); }
};

/// One OpenCatalog outcome (also accumulated into CatalogStats).
struct CatalogOpenReport {
  size_t tables_loaded = 0;  ///< reconstructed + registered from the catalog
  size_t tables_kept = 0;    ///< names already live in the engine (skipped)
  uint64_t values_loaded = 0;
  /// Columns that had to be re-sketched. 0 for an unchanged lake — the
  /// round-trip acceptance gate.
  size_t columns_resketched = 0;
  /// Bytes of segment data served via mmap during the load.
  uint64_t mapped_bytes = 0;
  double seconds = 0.0;
};

/// One SaveCatalog outcome.
struct CatalogSaveReport {
  bool incremental = false;
  size_t tables_written = 0;
  size_t tables_reused = 0;  ///< unchanged fingerprint, extents reused
  uint64_t values_appended = 0;
  uint64_t bytes_written = 0;
  /// Columns sketched during the save because the discovery index had no
  /// current sketch for them (engine was never synced, e.g. lazy mode).
  size_t columns_resketched = 0;
  double seconds = 0.0;
};

/// Engine-lifetime catalog counters (LakeEngine::catalog_stats()).
struct CatalogStats {
  uint64_t opens = 0;
  uint64_t open_failures = 0;  ///< typed failures that degraded to rebuild
  uint64_t saves = 0;
  uint64_t tables_loaded = 0;
  uint64_t tables_written = 0;
  uint64_t tables_reused = 0;
  uint64_t values_loaded = 0;
  uint64_t values_appended = 0;
  uint64_t columns_resketched = 0;
  uint64_t mmap_bytes = 0;  ///< segment bytes mapped by the last open
  uint64_t bytes_written = 0;
};

// -------------------------------------------------------------- operations

/// Content fingerprint of a registered table: schema (field names + types),
/// row count, and the per-cell content hash sequence (ValueDict::HashOf of
/// the interned codes — order-sensitive, null = 0). Independent of code
/// numbering, so writer and reader agree across sessions. This is what
/// keys "rebuild only tables whose content changed".
uint64_t CatalogTableFingerprint(const Table& table, SessionDict* dict);

/// Loads the catalog at `dir` into the engine structures. The entire
/// directory is validated (header, version, discovery params, per-segment
/// checksums, block bounds) and parsed into staging buffers BEFORE any
/// table is registered, so a corrupt catalog returns its typed error with
/// the registry, memo, and discovery index untouched (the dictionary may
/// have interned the catalog's values — harmless, it only grows). Tables
/// whose name is already registered are kept as-is and counted in
/// tables_kept. On success `state` records the directory association for
/// incremental saves. `discovery_options` must match the persisted sketch
/// parameters (signature size, banding, seed) or the open fails with
/// kInvalidArgument — signatures from a different family are garbage.
Result<CatalogOpenReport> OpenCatalogInto(const std::string& dir,
                                          TableRegistry* registry,
                                          SessionDict* dict,
                                          DiscoveryIndex* discovery,
                                          const DiscoveryOptions& discovery_options,
                                          CatalogState* state);

/// Persists the engine's current lake to `dir` (created if missing).
/// Incremental when `state` matches `dir` and the on-disk segments still
/// have the committed sizes: new dict entries and changed tables append,
/// unchanged tables reuse their extents, and the manifest rewrite commits
/// the checkpoint. Otherwise a full rewrite (through temp files). The
/// caller must have the discovery index synced to the registry if it wants
/// sketches persisted without re-sketching (LakeEngine::SaveCatalog does).
Result<CatalogSaveReport> SaveCatalogFrom(const std::string& dir,
                                          TableRegistry* registry,
                                          SessionDict* dict,
                                          DiscoveryIndex* discovery,
                                          const DiscoveryOptions& discovery_options,
                                          CatalogState* state);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CATALOG_CATALOG_H_
