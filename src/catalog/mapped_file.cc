#include "catalog/mapped_file.h"

#include <cstdio>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define LAKEFUZZ_HAVE_MMAP 1
#endif

#include "util/fault_injection.h"
#include "util/str.h"

namespace lakefuzz {

MappedFile::~MappedFile() { Release(); }

void MappedFile::Release() {
#ifdef LAKEFUZZ_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  Release();
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  fallback_ = std::move(other.fallback_);
  if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  LAKEFUZZ_FAULT_POINT("catalog/mmap");
  MappedFile out;
#ifdef LAKEFUZZ_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(
        StrFormat("cannot open catalog file '%s'", path.c_str()));
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(
        StrFormat("cannot stat catalog file '%s'", path.c_str()));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap of length 0 is undefined; an empty view needs no mapping.
    ::close(fd);
    return out;
  }
  void* addr = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr != MAP_FAILED) {
    out.data_ = static_cast<const uint8_t*>(addr);
    out.size_ = size;
    out.mapped_ = true;
    return out;
  }
#endif
  // Fallback: plain buffered read (also the non-POSIX path).
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot open catalog file '%s'", path.c_str()));
  }
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  if (len < 0) {
    std::fclose(f);
    return Status::IoError(
        StrFormat("cannot size catalog file '%s'", path.c_str()));
  }
  std::fseek(f, 0, SEEK_SET);
  out.fallback_.resize(static_cast<size_t>(len));
  const size_t got =
      len == 0 ? 0 : std::fread(out.fallback_.data(), 1, out.fallback_.size(), f);
  std::fclose(f);
  if (got != out.fallback_.size()) {
    return Status::IoError(
        StrFormat("short read on catalog file '%s'", path.c_str()));
  }
  out.data_ = out.fallback_.empty() ? nullptr : out.fallback_.data();
  out.size_ = out.fallback_.size();
  return out;
}

}  // namespace lakefuzz
