// MappedFile: RAII read-only memory mapping for catalog segments.
//
// Catalog segments are append-only byte streams validated by prefix
// checksums; mapping them read-only lets the loader walk POD regions (hash
// side tables, code rows, MinHash signatures, LSH band keys) without a
// bulk read into heap buffers. When mmap is unavailable or fails (some
// filesystems, 0-byte files), Open falls back to a plain read — callers
// see the same data()/size() view either way and can report mapped() bytes
// separately from copied ones.
#ifndef LAKEFUZZ_CATALOG_MAPPED_FILE_H_
#define LAKEFUZZ_CATALOG_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace lakefuzz {

class MappedFile {
 public:
  /// Maps `path` read-only (LAKEFUZZ_FAULT_POINT "catalog/mmap").
  /// ErrorCode::kIoError when the file cannot be opened or read.
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  /// True when the view is an actual mmap (false on the read fallback).
  bool mapped() const { return mapped_; }

 private:
  void Release();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> fallback_;  ///< owns the bytes when !mapped_
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CATALOG_MAPPED_FILE_H_
