#include "core/auto_threshold.h"

#include <algorithm>

namespace lakefuzz {

double SelectThresholdByGap(std::vector<double> distances,
                            const AutoThresholdOptions& options) {
  if (distances.size() < 3) return options.fallback;
  std::sort(distances.begin(), distances.end());

  // Widest gap between consecutive distances whose midpoint lies in the
  // search window. Ties (rare with float data) keep the lower midpoint,
  // favoring precision.
  double best_gap = 0.0;
  double best_theta = options.fallback;
  for (size_t i = 1; i < distances.size(); ++i) {
    double gap = distances[i] - distances[i - 1];
    double mid = 0.5 * (distances[i] + distances[i - 1]);
    if (mid < options.min_threshold || mid > options.max_threshold) continue;
    if (gap > best_gap) {
      best_gap = gap;
      best_theta = mid;
    }
  }
  // A gap must be decisive to overrule the default: distances spread
  // uniformly (no bimodality) carry no threshold signal.
  double span = distances.back() - distances.front();
  if (span <= 0.0 || best_gap < 0.05 * (1.0 + span)) return options.fallback;
  return best_theta;
}

}  // namespace lakefuzz
