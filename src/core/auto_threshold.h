// Unsupervised per-instance threshold selection — the extension direction
// the paper points to (it fixes θ = 0.7 globally; its related work,
// Auto-FuzzyJoin [Li et al., SIGMOD 2021], argues thresholds should be
// chosen per input without labels).
//
// Heuristic implemented here: in the clean-clean setting, true matches form
// a low-distance mode well separated from the non-match mode near 1.0 (for
// cosine distances of unrelated values). Given the distances of the optimal
// assignment's candidate pairs, we place θ at the widest gap between
// consecutive sorted distances inside a plausibility window — a 1-D
// two-cluster split (the largest-gap variant of Otsu/kernel splits, robust
// to the unknown match fraction).
#ifndef LAKEFUZZ_CORE_AUTO_THRESHOLD_H_
#define LAKEFUZZ_CORE_AUTO_THRESHOLD_H_

#include <vector>

#include "util/result.h"

namespace lakefuzz {

struct AutoThresholdOptions {
  /// θ is only searched inside [min_threshold, max_threshold]: below the
  /// window every instance looks all-non-match, above it all-match.
  double min_threshold = 0.3;
  double max_threshold = 0.9;
  /// Fallback when the distance list is empty or shows no usable gap.
  double fallback = 0.7;
};

/// Selects a matching threshold from candidate-pair distances (typically
/// the pair costs of an optimal assignment between two aligning columns).
/// Returns `fallback` when fewer than 3 distances are available.
double SelectThresholdByGap(std::vector<double> distances,
                            const AutoThresholdOptions& options =
                                AutoThresholdOptions());

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CORE_AUTO_THRESHOLD_H_
