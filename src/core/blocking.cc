#include "core/blocking.h"

#include <algorithm>
#include <unordered_map>

#include "text/acronym.h"
#include "text/normalize.h"
#include "text/tokenize.h"
#include "util/hash.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

/// All blocking keys of one value, hashed to 64-bit.
std::vector<uint64_t> KeysOf(const std::string& value,
                             const BlockingOptions& options) {
  std::vector<uint64_t> keys;
  std::string norm = Normalize(value);
  // Unpadded grams: padded boundary grams would make every short string a
  // candidate of every string sharing a first/last letter.
  for (const auto& gram : CharNgrams(norm, options.ngram, /*pad=*/false)) {
    keys.push_back(Fnv1a64("g:" + gram));
  }
  auto tokens = WordTokens(norm);
  if (tokens.size() >= 2) {
    keys.push_back(Fnv1a64("i:" + Initials(norm)));
  } else if (!tokens.empty() && tokens[0].size() <= 4) {
    keys.push_back(Fnv1a64("i:" + tokens[0]));
  }
  if (options.knowledge_base != nullptr) {
    if (const auto* senses = options.knowledge_base->LookupAll(value)) {
      for (ConceptId id : *senses) {
        keys.push_back(Mix64(id ^ 0xb10c));
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

}  // namespace

std::vector<std::pair<size_t, size_t>> GenerateCandidates(
    const std::vector<std::string>& left,
    const std::vector<std::string>& right, const BlockingOptions& options) {
  // Inverted index over the smaller side.
  const bool left_small = left.size() <= right.size();
  const auto& small = left_small ? left : right;
  const auto& large = left_small ? right : left;

  std::unordered_map<uint64_t, std::vector<size_t>> index;
  for (size_t i = 0; i < small.size(); ++i) {
    for (uint64_t k : KeysOf(small[i], options)) {
      index[k].push_back(i);
    }
  }
  const size_t max_posting = std::max<size_t>(
      8, static_cast<size_t>(options.max_key_frequency *
                             static_cast<double>(small.size())));

  std::vector<std::pair<size_t, size_t>> pairs;
  std::vector<uint64_t> seen_stamp(small.size(), ~uint64_t{0});
  for (size_t j = 0; j < large.size(); ++j) {
    for (uint64_t k : KeysOf(large[j], options)) {
      auto it = index.find(k);
      if (it == index.end() || it->second.size() > max_posting) continue;
      for (size_t i : it->second) {
        if (seen_stamp[i] == j) continue;
        seen_stamp[i] = j;
        pairs.emplace_back(left_small ? i : j, left_small ? j : i);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace lakefuzz
