// Candidate blocking for large value-matching instances.
//
// A dense |A|×|B| cost matrix is quadratic in the column sizes; above a size
// budget the matcher switches to candidate generation: value pairs are
// considered only when they share a blocking key. Keys are chosen so that
// every signal the distance function can fire on has a key:
//   * normalized character 3-grams  → surface similarity (typos, casing)
//   * knowledge-base concept id     → semantic aliases ("CA" / "Canada")
//   * initials / acronym key        → "US" / "United States"
// Pairs sharing no key would be far in every distance we use, so pruning
// them is safe in practice (and is ablated in bench_ablation_engineering).
#ifndef LAKEFUZZ_CORE_BLOCKING_H_
#define LAKEFUZZ_CORE_BLOCKING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "embedding/knowledge_base.h"

namespace lakefuzz {

struct BlockingOptions {
  /// Keys: character n-gram size.
  size_t ngram = 3;
  /// Skip n-gram keys occurring in more than this fraction of one side's
  /// values (stop-gram suppression; keeps candidate sets near-linear).
  double max_key_frequency = 0.25;
  /// Knowledge base for concept keys; nullptr disables semantic keys.
  std::shared_ptr<const KnowledgeBase> knowledge_base;
};

/// Generates candidate index pairs (i into `left`, j into `right`).
/// Deduplicated, sorted. Pairs of byte-identical strings are included
/// (callers usually resolve those in an exact pre-pass first).
std::vector<std::pair<size_t, size_t>> GenerateCandidates(
    const std::vector<std::string>& left,
    const std::vector<std::string>& right, const BlockingOptions& options);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CORE_BLOCKING_H_
