#include "core/engine.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "assignment/parallel_cost.h"
#include "match/schema_matcher.h"
#include "util/stopwatch.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace lakefuzz {
namespace {

/// Ceiling on SetNumThreads — a typo must not try to spawn 2^62 workers.
constexpr size_t kMaxEngineThreads = 4096;
/// Ceiling on cache shard counts (each shard is a mutex + map).
constexpr size_t kMaxCacheShards = size_t{1} << 20;

/// The request's lifecycle fields bundled for the pipeline layers.
RequestContext MakeContext(const RequestOptions& request) {
  RequestContext ctx;
  ctx.cancel = request.cancel;
  ctx.deadline = request.deadline;
  ctx.budget = request.budget;
  ctx.policy = request.budget_policy;
  return ctx;
}

/// Every mutating entry point on a replica fails the same way.
Status ReplicaForbidden(const char* op) {
  return Status::FailedPrecondition(StrFormat(
      "%s is not available on a read-only replica engine", op));
}

}  // namespace

Status EngineOptions::Validate() const {
  if (num_threads > kMaxEngineThreads) {
    return Status::InvalidArgument(
        StrFormat("num_threads=%zu exceeds the engine ceiling of %zu",
                  num_threads, kMaxEngineThreads));
  }
  if (embedding_cache.shards == 0) {
    return Status::InvalidArgument(
        "embedding_cache.shards must be at least 1");
  }
  if (embedding_cache.shards > kMaxCacheShards) {
    return Status::InvalidArgument(
        StrFormat("embedding_cache.shards=%zu exceeds the ceiling of %zu",
                  embedding_cache.shards, kMaxCacheShards));
  }
  if (catalog_retain_generations == 0) {
    return Status::InvalidArgument(
        "catalog_retain_generations must be at least 1 (the current "
        "generation always survives)");
  }
  LAKEFUZZ_RETURN_IF_ERROR(discovery.Validate());
  return Status::OK();
}

LakeEngine::~LakeEngine() {
  // Release the replica's retention claim; a crashed replica leaves the pin
  // behind and the writer's GC sweeps it once the pid is gone.
  if (!replica_pin_.empty()) std::remove(replica_pin_.c_str());
}

LakeEngine::LakeEngine(EngineOptions options,
                       std::shared_ptr<const EmbeddingModel> model,
                       std::shared_ptr<EmbeddingCache> cache,
                       std::unique_ptr<ThreadPool> pool)
    : options_(std::move(options)),
      model_(std::move(model)),
      cache_(std::move(cache)),
      pool_(std::move(pool)),
      session_dict_(std::make_unique<SessionDict>()),
      discovery_(std::make_unique<DiscoveryIndex>(
          options_.discovery, session_dict_.get(), pool_.get())) {}

Result<std::unique_ptr<LakeEngine>> LakeEngine::Create(
    EngineOptions options) {
  LAKEFUZZ_RETURN_IF_ERROR(options.Validate());
  std::shared_ptr<const EmbeddingModel> model = MakeModel(options.model);
  auto cache =
      std::make_shared<EmbeddingCache>(model, options.embedding_cache);
  // num_threads == 1 keeps the engine poolless: requests run serially and a
  // shim-style throwaway engine costs no thread spawns.
  std::unique_ptr<ThreadPool> pool;
  const size_t threads = ResolveNumThreads(options.num_threads);
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  return std::unique_ptr<LakeEngine>(
      new LakeEngine(std::move(options), std::move(model), std::move(cache),
                     std::move(pool)));
}

Status LakeEngine::RegisterTable(std::string name, Table table) {
  return RegisterTable(std::move(name),
                       std::make_shared<const Table>(std::move(table)));
}

Status LakeEngine::RegisterTable(std::string name,
                                 std::shared_ptr<const Table> table) {
  if (replica_) return ReplicaForbidden("RegisterTable");
  uint64_t version = 0;
  LAKEFUZZ_RETURN_IF_ERROR(registry_.Register(name, table, &version));
  // Pin the snapshot in the session dictionary so its interned column codes
  // are memoized across requests (released again by Unregister).
  session_dict_->PinTable(table);
  // Incremental discovery build: sketch the new table (column-parallel on
  // the session pool). `version` was captured under the registry lock, so
  // the index attributes exactly this mutation (and refuses to fast-forward
  // past concurrent ones it has not seen). With build_at_register off, the
  // index simply falls behind the registry version and the first discovery
  // call bulk-syncs it.
  if (options_.discovery.build_at_register) {
    discovery_->AddTable(name, std::move(table), version);
  }
  return Status::OK();
}

Status LakeEngine::RegisterCsv(std::string name, const std::string& path,
                               const CsvOptions& csv) {
  if (replica_) return ReplicaForbidden("RegisterCsv");
  Result<Table> table = ReadCsvFile(path, csv);
  if (!table.ok()) return table.status();
  table->set_name(name);
  return RegisterTable(std::move(name), std::move(table).value());
}

Status LakeEngine::Unregister(const std::string& name) {
  if (replica_) return ReplicaForbidden("Unregister");
  // Atomically take exactly the snapshot being removed, THEN unpin it from
  // the session dictionary. A non-atomic get/drop/remove could race a
  // concurrent unregister + re-register of the same name and drop (or
  // leak) the replacement's pin.
  uint64_t version = 0;
  std::shared_ptr<const Table> removed = registry_.Take(name, &version);
  if (removed == nullptr) {
    return Status::NotFound(
        StrFormat("table '%s' is not registered", name.c_str()));
  }
  session_dict_->DropTable(removed.get());
  // `version` is exactly this removal's registry version; a discovery
  // query racing in between sees a version mismatch and re-syncs.
  discovery_->RemoveTable(name, version);
  return Status::OK();
}

Result<std::unique_ptr<LakeEngine>> LakeEngine::OpenReplica(
    const std::string& dir, EngineOptions options) {
  LAKEFUZZ_ASSIGN_OR_RETURN(std::unique_ptr<LakeEngine> engine,
                            Create(std::move(options)));
  engine->replica_ = true;
  std::lock_guard<std::mutex> lock(engine->catalog_mu_);
  CatalogOpenRequest request;
  request.mode = CatalogOpenMode::kOpen;
  request.pin_path = &engine->replica_pin_;
  Result<CatalogOpenReport> report = OpenCatalogInto(
      dir, &engine->registry_, engine->session_dict_.get(),
      engine->discovery_.get(), engine->options_.discovery,
      &engine->catalog_state_, request);
  ++engine->catalog_stats_.opens;
  if (!report.ok()) {
    ++engine->catalog_stats_.open_failures;
    return report.status();
  }
  engine->AccumulateOpen(*report);
  return engine;
}

Result<CatalogOpenReport> LakeEngine::OpenCatalog(const std::string& dir) {
  if (replica_) return ReplicaForbidden("OpenCatalog");
  std::lock_guard<std::mutex> lock(catalog_mu_);
  Result<CatalogOpenReport> report =
      OpenCatalogInto(dir, &registry_, session_dict_.get(), discovery_.get(),
                      options_.discovery, &catalog_state_);
  ++catalog_stats_.opens;
  if (!report.ok()) {
    ++catalog_stats_.open_failures;
    return report;
  }
  AccumulateOpen(*report);
  return report;
}

Result<CatalogOpenReport> LakeEngine::RefreshReplica() {
  if (!replica_) {
    return Status::FailedPrecondition(
        "RefreshReplica requires a replica engine (use OpenReplica)");
  }
  std::lock_guard<std::mutex> lock(catalog_mu_);
  // Fast path: CURRENT has not advanced — one locked read, no manifest
  // parse, no staging. The existing pin stays.
  Result<uint64_t> current = CatalogCurrentGeneration(catalog_state_.dir);
  if (current.ok() && *current == catalog_state_.generation) {
    CatalogOpenReport report;
    report.generation = catalog_state_.generation;
    report.tables_kept = catalog_state_.tables_by_name.size();
    return report;
  }
  const uint64_t prev_generation = catalog_state_.generation;
  std::string new_pin;
  CatalogOpenRequest request;
  request.mode = CatalogOpenMode::kRefresh;
  request.pin_path = &new_pin;
  Result<CatalogOpenReport> report = OpenCatalogInto(
      catalog_state_.dir, &registry_, session_dict_.get(), discovery_.get(),
      options_.discovery, &catalog_state_, request);
  ++catalog_stats_.opens;
  if (!report.ok()) {
    // The old pin still stands and the old generation still serves — a
    // failed refresh degrades to staleness, never to a torn lake view.
    ++catalog_stats_.open_failures;
    return report;
  }
  // Hand-over-hand pin move: the new generation was claimed (under the
  // shared lock, inside OpenCatalogInto) before the old claim is dropped,
  // so the writer's GC never sees this replica unpinned.
  if (!replica_pin_.empty() && replica_pin_ != new_pin) {
    std::remove(replica_pin_.c_str());
  }
  replica_pin_ = std::move(new_pin);
  if (report->generation != prev_generation) ++catalog_stats_.refreshes;
  AccumulateOpen(*report);
  return report;
}

uint64_t LakeEngine::catalog_generation() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return catalog_state_.generation;
}

void LakeEngine::AccumulateOpen(const CatalogOpenReport& report) const {
  catalog_stats_.tables_loaded += report.tables_loaded;
  catalog_stats_.values_loaded += report.values_loaded;
  catalog_stats_.columns_resketched += report.columns_resketched;
  catalog_stats_.mmap_bytes = report.mapped_bytes;
  catalog_stats_.generation = report.generation;
}

Result<CatalogSaveReport> LakeEngine::SaveCatalog(const std::string& dir) {
  if (replica_) return ReplicaForbidden("SaveCatalog");
  // Sync first so the discovery index holds a sketch for every registered
  // table — the save then persists them as-is instead of re-sketching.
  LAKEFUZZ_RETURN_IF_ERROR(EnsureDiscoverySynced(RequestContext()));
  std::lock_guard<std::mutex> lock(catalog_mu_);
  Result<CatalogSaveReport> report = SaveCatalogFrom(
      dir, &registry_, session_dict_.get(), discovery_.get(),
      options_.discovery, &catalog_state_,
      options_.catalog_retain_generations);
  if (!report.ok()) return report;
  ++catalog_stats_.saves;
  catalog_stats_.tables_written += report->tables_written;
  catalog_stats_.tables_reused += report->tables_reused;
  catalog_stats_.values_appended += report->values_appended;
  catalog_stats_.columns_resketched += report->columns_resketched;
  catalog_stats_.bytes_written += report->bytes_written;
  catalog_stats_.generation = report->generation;
  catalog_stats_.generations_removed += report->generations_removed;
  return report;
}

CatalogStats LakeEngine::catalog_stats() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return catalog_stats_;
}

Status LakeEngine::EnsureDiscoverySynced(const RequestContext& ctx) const {
  // Cheap fast path: versions match means the index reflects exactly the
  // current name → snapshot mapping (TableRegistry::version() invariant).
  if (discovery_->version() == registry_.version()) return Status::OK();
  uint64_t version = 0;
  auto snapshot = registry_.Snapshot(&version);
  return discovery_->Resync(snapshot, version, ctx);
}

Result<std::vector<DiscoveryCandidate>> LakeEngine::DiscoverUnionable(
    const std::string& name, size_t k, const RequestContext& ctx,
    Truncation* truncation) const {
  if (k == 0) {
    return Status::InvalidArgument("discovery k must be positive");
  }
  // Truncation-aware pre-check: under kTruncate an already-expired
  // deadline still yields a best-so-far (possibly empty) ranking with
  // the cut recorded downstream, instead of a hard error.
  Status pre = ctx.CheckStop("discovery");
  if (!pre.ok() && !ctx.ShouldTruncate(pre.code())) return pre;
  Status synced = EnsureDiscoverySynced(ctx);
  if (!synced.ok()) {
    if (!ctx.ShouldTruncate(synced.code())) return synced;
    // Best-effort under kTruncate: search whatever the index already holds
    // (possibly a stale lake view) and record the cut.
    if (truncation != nullptr && !truncation->truncated) {
      truncation->truncated = true;
      truncation->stage = Stage::kDiscover;
      truncation->reason = synced.message();
    }
  }
  // Once degraded, the query itself is cleanup: cancel still aborts it, the
  // already-expired deadline does not re-fire.
  const RequestContext query_ctx = synced.ok() ? ctx : ctx.CancelOnly();
  return discovery_->TopKByName(name, k, query_ctx, truncation);
}

Result<std::vector<DiscoveryCandidate>> LakeEngine::DiscoverUnionable(
    const Table& query, size_t k, const RequestContext& ctx,
    Truncation* truncation) const {
  if (k == 0) {
    return Status::InvalidArgument("discovery k must be positive");
  }
  // Truncation-aware pre-check: under kTruncate an already-expired
  // deadline still yields a best-so-far (possibly empty) ranking with
  // the cut recorded downstream, instead of a hard error.
  Status pre = ctx.CheckStop("discovery");
  if (!pre.ok() && !ctx.ShouldTruncate(pre.code())) return pre;
  Status synced = EnsureDiscoverySynced(ctx);
  if (!synced.ok()) {
    if (!ctx.ShouldTruncate(synced.code())) return synced;
    if (truncation != nullptr && !truncation->truncated) {
      truncation->truncated = true;
      truncation->stage = Stage::kDiscover;
      truncation->reason = synced.message();
    }
  }
  const RequestContext query_ctx = synced.ok() ? ctx : ctx.CancelOnly();
  // SketchQuery hashes the cells directly — an ad-hoc query never grows
  // the session dictionary.
  std::vector<ColumnSketch> sketches = discovery_->SketchQuery(query);
  return discovery_->TopK(sketches, k, query_ctx, truncation);
}

Result<FuzzyFdReport> LakeEngine::DiscoverAndIntegrate(
    const std::string& query_name, size_t k, RowSink* sink,
    const RequestOptions& request,
    std::vector<DiscoveryCandidate>* discovered) const {
  const RequestContext ctx = MakeContext(request);
  // One admission slot covers the whole discover → integrate span.
  LAKEFUZZ_RETURN_IF_ERROR(Admit(ctx));
  AdmissionSlot slot(this);
  ReportProgress(request.progress, Stage::kDiscover, 0, 1);
  Truncation discover_cut;
  LAKEFUZZ_ASSIGN_OR_RETURN(
      std::vector<DiscoveryCandidate> candidates,
      DiscoverUnionable(query_name, k, ctx, &discover_cut));
  ReportProgress(request.progress, Stage::kDiscover, 1, 1);
  // Query first, then candidates in rank order: the name list defines TID
  // numbering, so the discovered integration is reproducible from the
  // candidate list alone (and bit-identical to IntegrateToSink on it).
  std::vector<std::string> names;
  names.reserve(candidates.size() + 1);
  names.push_back(query_name);
  for (const DiscoveryCandidate& c : candidates) names.push_back(c.name);
  if (discovered != nullptr) *discovered = std::move(candidates);
  Result<FuzzyFdReport> report = IntegrateToSinkImpl(names, sink, request);
  if (report.ok() && discover_cut.truncated) {
    // Discovery was cut first; keep its stage/reason as the report's
    // primary cut and fold in whatever the pipeline added.
    discover_cut.Merge(report->truncation);
    report->truncation = discover_cut;
  }
  return report;
}

uint64_t LakeEngine::schema_cache_hits() const {
  std::lock_guard<std::mutex> lock(schema_mu_);
  return schema_cache_hits_;
}

AdmissionStats LakeEngine::admission_stats() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return admission_stats_;
}

Status LakeEngine::Admit(const RequestContext& ctx) const {
  const size_t max = options_.max_concurrent_requests;
  std::unique_lock<std::mutex> lock(admission_mu_);
  if (max != 0 && active_requests_ >= max) {
    if (waiting_requests_ >= options_.max_queued_requests) {
      ++admission_stats_.rejected;
      return Status::ResourceExhausted(StrFormat(
          "engine overloaded: %zu requests in flight and %zu queued "
          "(max_concurrent_requests=%zu, max_queued_requests=%zu)",
          active_requests_, waiting_requests_,
          options_.max_concurrent_requests, options_.max_queued_requests));
    }
    ++waiting_requests_;
    ++admission_stats_.queued;
    while (active_requests_ >= max) {
      // Bounded waits so a queued request still honors its own token and
      // deadline (a queue-wait stop has no partial result — it fails hard
      // regardless of BudgetPolicy).
      admission_cv_.wait_for(lock, std::chrono::milliseconds(5));
      Status stop = ctx.CheckStop("admission wait");
      if (!stop.ok()) {
        --waiting_requests_;
        return stop;
      }
    }
    --waiting_requests_;
  }
  ++admission_stats_.admitted;
  ++active_requests_;
  return Status::OK();
}

void LakeEngine::ReleaseAdmission() const {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --active_requests_;
  }
  admission_cv_.notify_one();
}

LakeEngine::AdmissionSlot::~AdmissionSlot() { engine_->ReleaseAdmission(); }

std::vector<std::string> LakeEngine::TableNames() const {
  return registry_.Names();
}

size_t LakeEngine::NumTables() const { return registry_.size(); }

Result<LakeEngine::PreparedRequest> LakeEngine::Prepare(
    const std::vector<std::string>& names,
    const RequestOptions& request) const {
  if (names.empty()) {
    return Status::InvalidArgument("integration set is empty");
  }
  const RequestContext ctx = MakeContext(request);
  LAKEFUZZ_RETURN_IF_ERROR(ctx.CheckStop("request"));
  PreparedRequest prep;
  uint64_t registry_version = 0;
  LAKEFUZZ_ASSIGN_OR_RETURN(prep.pinned,
                            registry_.GetMany(names, &registry_version));
  prep.tables.reserve(prep.pinned.size());
  for (const auto& t : prep.pinned) prep.tables.push_back(t.get());

  ReportProgress(request.progress, Stage::kAlign, 0, 1);
  Stopwatch align_watch;
  // Alignment cache: keyed by (mode, ordered name set) and valid only at
  // the registry version the snapshot was resolved at — any Register /
  // Unregister bumps the version, so a cached alignment can never outlive
  // the tables it was computed from. Cached repeated Integrate calls skip
  // holistic re-alignment entirely (ROADMAP PR 3 follow-up).
  std::string schema_key = request.holistic_alignment ? "h" : "n";
  for (const auto& name : names) {
    schema_key.push_back('\x1f');
    schema_key += name;
  }
  bool cached = false;
  {
    std::lock_guard<std::mutex> lock(schema_mu_);
    auto it = schema_cache_.find(schema_key);
    if (it != schema_cache_.end() &&
        it->second.version == registry_version) {
      prep.aligned = it->second.aligned;
      ++schema_cache_hits_;
      cached = true;
    }
  }
  if (!cached) {
    Result<AlignedSchema> aligned = Status::Internal("unreachable");
    if (request.holistic_alignment) {
      aligned = HolisticSchemaMatcher(model_).Align(prep.tables);
    } else {
      aligned = AlignByName(prep.tables);
    }
    if (!aligned.ok()) return aligned.status();
    prep.aligned = std::move(aligned).value();
    std::lock_guard<std::mutex> lock(schema_mu_);
    // Entries from older registry versions can never validate again (the
    // version only grows); sweep them on insert so a long-lived engine
    // with a churning registry stays bounded by its live name sets.
    for (auto it = schema_cache_.begin(); it != schema_cache_.end();) {
      if (it->second.version != registry_version) {
        it = schema_cache_.erase(it);
      } else {
        ++it;
      }
    }
    schema_cache_[schema_key] =
        CachedSchema{registry_version, prep.aligned};
  }
  prep.align_seconds = align_watch.ElapsedSeconds();
  ReportProgress(request.progress, Stage::kAlign, 1, 1);

  // Session resources override the per-request knobs they replace; the
  // remaining matcher/FD knobs pass through untouched.
  FuzzyFdOptions eff = request.fuzzy_fd;
  eff.matcher.model = model_;
  eff.matcher.shared_cache = cache_;
  eff.session_dict = session_dict_.get();
  eff.include_provenance = request.include_provenance;
  eff.context = ctx;
  eff.progress = request.progress;
  if (pool_ != nullptr) {
    eff.pool = pool_.get();
    eff.matcher.pool = pool_.get();
    eff.matcher.num_threads = pool_->num_threads();
    // parallel_fd is authoritative on pooled engines: it also clears a
    // caller-supplied fuzzy_fd.parallel, so "force the serial executor"
    // means what it says.
    eff.parallel = request.parallel_fd;
    if (request.parallel_fd) eff.num_threads = pool_->num_threads();
  }
  prep.effective = std::move(eff);
  return prep;
}

Result<PipelineResult> LakeEngine::Integrate(
    const std::vector<std::string>& names,
    const RequestOptions& request) const {
  LAKEFUZZ_RETURN_IF_ERROR(Admit(MakeContext(request)));
  AdmissionSlot slot(this);
  LAKEFUZZ_ASSIGN_OR_RETURN(PreparedRequest prep, Prepare(names, request));
  FuzzyFdReport report;
  Result<FdResult> fd = Status::Internal("unreachable");
  if (request.fuzzy) {
    fd = FuzzyFullDisjunction(prep.effective)
             .RunToTuples(prep.tables, prep.aligned, &report);
  } else {
    fd = RegularFdBaseline(prep.tables, prep.aligned, prep.effective.fd,
                           prep.effective.parallel,
                           prep.effective.num_threads, &report,
                           prep.effective.pool, prep.effective.context,
                           prep.effective.progress,
                           prep.effective.session_dict);
  }
  if (!fd.ok()) return fd.status();
  report.align_seconds = prep.align_seconds;

  ReportProgress(request.progress, Stage::kEmit, 0, 1);
  Table integrated = FdResultsToTable(
      fd->tuples, prep.aligned.universal_names,
      request.fuzzy ? "fuzzy_full_disjunction" : "full_disjunction",
      request.include_provenance);
  ReportProgress(request.progress, Stage::kEmit, 1, 1);
  return PipelineResult{std::move(integrated), std::move(prep.aligned),
                        report, prep.align_seconds};
}

Result<FuzzyFdReport> LakeEngine::IntegrateToSink(
    const std::vector<std::string>& names, RowSink* sink,
    const RequestOptions& request) const {
  LAKEFUZZ_RETURN_IF_ERROR(Admit(MakeContext(request)));
  AdmissionSlot slot(this);
  return IntegrateToSinkImpl(names, sink, request);
}

Result<FuzzyFdReport> LakeEngine::IntegrateToSinkImpl(
    const std::vector<std::string>& names, RowSink* sink,
    const RequestOptions& request) const {
  if (sink == nullptr) {
    return Status::InvalidArgument("IntegrateToSink requires a sink");
  }
  if (request.batch_rows == 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  LAKEFUZZ_ASSIGN_OR_RETURN(PreparedRequest prep, Prepare(names, request));
  LAKEFUZZ_RETURN_IF_ERROR(sink->Begin(prep.aligned.universal_names));

  FuzzyFdReport report;
  FdBatchFn emit = [sink](const std::vector<FdResultTuple>& batch) {
    return sink->OnBatch(batch);
  };
  Result<size_t> emitted = Status::Internal("unreachable");
  if (request.fuzzy) {
    emitted = FuzzyFullDisjunction(prep.effective)
                  .RunToBatches(prep.tables, prep.aligned,
                                request.batch_rows, emit, &report);
  } else {
    emitted = RegularFdToBatches(
        prep.tables, prep.aligned, prep.effective.fd,
        prep.effective.parallel, prep.effective.num_threads,
        prep.effective.pool, prep.effective.context, prep.effective.progress,
        request.batch_rows, emit, &report, prep.effective.session_dict);
  }
  if (!emitted.ok()) return emitted.status();
  report.align_seconds = prep.align_seconds;
  LAKEFUZZ_RETURN_IF_ERROR(sink->End(report));
  return report;
}

}  // namespace lakefuzz
