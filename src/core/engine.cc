#include "core/engine.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "assignment/parallel_cost.h"
#include "match/schema_matcher.h"
#include "util/rss.h"
#include "util/stopwatch.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace lakefuzz {
namespace {

/// Ceiling on SetNumThreads — a typo must not try to spawn 2^62 workers.
constexpr size_t kMaxEngineThreads = 4096;
/// Ceiling on cache shard counts (each shard is a mutex + map).
constexpr size_t kMaxCacheShards = size_t{1} << 20;

/// The request's lifecycle fields bundled for the pipeline layers.
RequestContext MakeContext(const RequestOptions& request) {
  RequestContext ctx;
  ctx.cancel = request.cancel;
  ctx.deadline = request.deadline;
  ctx.budget = request.budget;
  ctx.policy = request.budget_policy;
  ctx.tracer = request.tracer;
  return ctx;
}

/// Seconds → histogram nanoseconds (clamped at zero).
uint64_t SecondsToNs(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9);
}

/// Every mutating entry point on a replica fails the same way.
Status ReplicaForbidden(const char* op) {
  return Status::FailedPrecondition(StrFormat(
      "%s is not available on a read-only replica engine", op));
}

}  // namespace

Status EngineOptions::Validate() const {
  if (num_threads > kMaxEngineThreads) {
    return Status::InvalidArgument(
        StrFormat("num_threads=%zu exceeds the engine ceiling of %zu",
                  num_threads, kMaxEngineThreads));
  }
  if (embedding_cache.shards == 0) {
    return Status::InvalidArgument(
        "embedding_cache.shards must be at least 1");
  }
  if (embedding_cache.shards > kMaxCacheShards) {
    return Status::InvalidArgument(
        StrFormat("embedding_cache.shards=%zu exceeds the ceiling of %zu",
                  embedding_cache.shards, kMaxCacheShards));
  }
  if (catalog_retain_generations == 0) {
    return Status::InvalidArgument(
        "catalog_retain_generations must be at least 1 (the current "
        "generation always survives)");
  }
  LAKEFUZZ_RETURN_IF_ERROR(discovery.Validate());
  return Status::OK();
}

LakeEngine::~LakeEngine() {
  // Release the replica's retention claim; a crashed replica leaves the pin
  // behind and the writer's GC sweeps it once the pid is gone.
  if (!replica_pin_.empty()) std::remove(replica_pin_.c_str());
}

LakeEngine::LakeEngine(EngineOptions options,
                       std::shared_ptr<const EmbeddingModel> model,
                       std::shared_ptr<EmbeddingCache> cache,
                       std::unique_ptr<ThreadPool> pool)
    : options_(std::move(options)),
      model_(std::move(model)),
      cache_(std::move(cache)),
      pool_(std::move(pool)),
      session_dict_(std::make_unique<SessionDict>()),
      discovery_(std::make_unique<DiscoveryIndex>(
          options_.discovery, session_dict_.get(), pool_.get())) {
  // Resolve the metric handles once; increments then never touch the
  // registry lock. A shared external registry whose names are already
  // taken by a different metric kind falls back to a private registry —
  // an engine must never run without its counters.
  auto wire = [](MetricsRegistry* registry, EngineMetrics* em) {
    em->requests_total = registry->GetCounter(
        "lakefuzz_requests_total", "requests served (all request forms)");
    em->requests_failed = registry->GetCounter(
        "lakefuzz_requests_failed_total", "requests that returned an error");
    em->requests_truncated = registry->GetCounter(
        "lakefuzz_requests_truncated_total",
        "requests degraded to a partial result (BudgetPolicy::kTruncate)");
    em->fd_search_nodes = registry->GetCounter(
        "lakefuzz_fd_search_nodes_total", "FD enumerator search nodes");
    em->fd_result_tuples = registry->GetCounter(
        "lakefuzz_fd_result_tuples_total",
        "post-subsumption result tuples produced");
    em->fd_intra_tasks = registry->GetCounter(
        "lakefuzz_fd_intra_tasks_total",
        "intra-component FD subtree tasks spawned");
    em->fd_task_busy_ns = registry->GetCounter(
        "lakefuzz_fd_task_busy_ns_total",
        "FD subtree-task busy time (FdTaskProfile::busy_ns)");
    em->values_rewritten = registry->GetCounter(
        "lakefuzz_values_rewritten_total",
        "cell values rewritten to fuzzy-group representatives");
    em->discovery_queries = registry->GetCounter(
        "lakefuzz_discovery_queries_total", "DiscoverUnionable calls");
    em->request_ns = registry->GetHistogram(
        "lakefuzz_request_latency_ns", "end-to-end request wall time");
    em->align_ns = registry->GetHistogram("lakefuzz_stage_align_latency_ns",
                                          "schema alignment wall time");
    em->match_ns = registry->GetHistogram("lakefuzz_stage_match_latency_ns",
                                          "value matching wall time");
    em->rewrite_ns = registry->GetHistogram(
        "lakefuzz_stage_rewrite_latency_ns", "value rewrite wall time");
    em->fd_ns = registry->GetHistogram(
        "lakefuzz_stage_fd_latency_ns",
        "full-disjunction stage wall time (build+enumerate+subsume+decode)");
    return em->requests_total != nullptr && em->requests_failed != nullptr &&
           em->requests_truncated != nullptr &&
           em->fd_search_nodes != nullptr &&
           em->fd_result_tuples != nullptr &&
           em->fd_intra_tasks != nullptr &&
           em->fd_task_busy_ns != nullptr &&
           em->values_rewritten != nullptr &&
           em->discovery_queries != nullptr && em->request_ns != nullptr &&
           em->align_ns != nullptr && em->match_ns != nullptr &&
           em->rewrite_ns != nullptr && em->fd_ns != nullptr;
  };
  metrics_ = options_.metrics;
  if (metrics_ == nullptr || !wire(metrics_, &em_)) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
    wire(metrics_, &em_);
  }
}

Result<std::unique_ptr<LakeEngine>> LakeEngine::Create(
    EngineOptions options) {
  LAKEFUZZ_RETURN_IF_ERROR(options.Validate());
  std::shared_ptr<const EmbeddingModel> model = MakeModel(options.model);
  auto cache =
      std::make_shared<EmbeddingCache>(model, options.embedding_cache);
  // num_threads == 1 keeps the engine poolless: requests run serially and a
  // shim-style throwaway engine costs no thread spawns.
  std::unique_ptr<ThreadPool> pool;
  const size_t threads = ResolveNumThreads(options.num_threads);
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  return std::unique_ptr<LakeEngine>(
      new LakeEngine(std::move(options), std::move(model), std::move(cache),
                     std::move(pool)));
}

Status LakeEngine::RegisterTable(std::string name, Table table) {
  return RegisterTable(std::move(name),
                       std::make_shared<const Table>(std::move(table)));
}

Status LakeEngine::RegisterTable(std::string name,
                                 std::shared_ptr<const Table> table) {
  if (replica_) return ReplicaForbidden("RegisterTable");
  uint64_t version = 0;
  LAKEFUZZ_RETURN_IF_ERROR(registry_.Register(name, table, &version));
  // Pin the snapshot in the session dictionary so its interned column codes
  // are memoized across requests (released again by Unregister).
  session_dict_->PinTable(table);
  // Incremental discovery build: sketch the new table (column-parallel on
  // the session pool). `version` was captured under the registry lock, so
  // the index attributes exactly this mutation (and refuses to fast-forward
  // past concurrent ones it has not seen). With build_at_register off, the
  // index simply falls behind the registry version and the first discovery
  // call bulk-syncs it.
  if (options_.discovery.build_at_register) {
    discovery_->AddTable(name, std::move(table), version);
  }
  return Status::OK();
}

Status LakeEngine::RegisterCsv(std::string name, const std::string& path,
                               const CsvOptions& csv) {
  if (replica_) return ReplicaForbidden("RegisterCsv");
  Result<Table> table = ReadCsvFile(path, csv);
  if (!table.ok()) return table.status();
  table->set_name(name);
  return RegisterTable(std::move(name), std::move(table).value());
}

Status LakeEngine::Unregister(const std::string& name) {
  if (replica_) return ReplicaForbidden("Unregister");
  // Atomically take exactly the snapshot being removed, THEN unpin it from
  // the session dictionary. A non-atomic get/drop/remove could race a
  // concurrent unregister + re-register of the same name and drop (or
  // leak) the replacement's pin.
  uint64_t version = 0;
  std::shared_ptr<const Table> removed = registry_.Take(name, &version);
  if (removed == nullptr) {
    return Status::NotFound(
        StrFormat("table '%s' is not registered", name.c_str()));
  }
  session_dict_->DropTable(removed.get());
  // `version` is exactly this removal's registry version; a discovery
  // query racing in between sees a version mismatch and re-syncs.
  discovery_->RemoveTable(name, version);
  return Status::OK();
}

Result<std::unique_ptr<LakeEngine>> LakeEngine::OpenReplica(
    const std::string& dir, EngineOptions options) {
  LAKEFUZZ_ASSIGN_OR_RETURN(std::unique_ptr<LakeEngine> engine,
                            Create(std::move(options)));
  engine->replica_ = true;
  std::lock_guard<std::mutex> lock(engine->catalog_mu_);
  CatalogOpenRequest request;
  request.mode = CatalogOpenMode::kOpen;
  request.pin_path = &engine->replica_pin_;
  Result<CatalogOpenReport> report = OpenCatalogInto(
      dir, &engine->registry_, engine->session_dict_.get(),
      engine->discovery_.get(), engine->options_.discovery,
      &engine->catalog_state_, request);
  ++engine->catalog_stats_.opens;
  if (!report.ok()) {
    ++engine->catalog_stats_.open_failures;
    return report.status();
  }
  engine->AccumulateOpen(*report);
  return engine;
}

Result<CatalogOpenReport> LakeEngine::OpenCatalog(const std::string& dir,
                                                  Tracer* tracer) {
  if (replica_) return ReplicaForbidden("OpenCatalog");
  ScopedSpan span(tracer, "catalog_open");
  std::lock_guard<std::mutex> lock(catalog_mu_);
  Result<CatalogOpenReport> report =
      OpenCatalogInto(dir, &registry_, session_dict_.get(), discovery_.get(),
                      options_.discovery, &catalog_state_);
  ++catalog_stats_.opens;
  if (!report.ok()) {
    ++catalog_stats_.open_failures;
    span.AddAttr("error", std::string(ErrorCodeToString(report.code())));
    return report;
  }
  span.AddAttr("tables_loaded", static_cast<int64_t>(report->tables_loaded));
  span.AddAttr("values_loaded", static_cast<int64_t>(report->values_loaded));
  span.AddAttr("generation", static_cast<int64_t>(report->generation));
  AccumulateOpen(*report);
  return report;
}

Result<CatalogOpenReport> LakeEngine::RefreshReplica() {
  if (!replica_) {
    return Status::FailedPrecondition(
        "RefreshReplica requires a replica engine (use OpenReplica)");
  }
  std::lock_guard<std::mutex> lock(catalog_mu_);
  // Fast path: CURRENT has not advanced — one locked read, no manifest
  // parse, no staging. The existing pin stays.
  Result<uint64_t> current = CatalogCurrentGeneration(catalog_state_.dir);
  if (current.ok() && *current == catalog_state_.generation) {
    CatalogOpenReport report;
    report.generation = catalog_state_.generation;
    report.tables_kept = catalog_state_.tables_by_name.size();
    return report;
  }
  const uint64_t prev_generation = catalog_state_.generation;
  std::string new_pin;
  CatalogOpenRequest request;
  request.mode = CatalogOpenMode::kRefresh;
  request.pin_path = &new_pin;
  Result<CatalogOpenReport> report = OpenCatalogInto(
      catalog_state_.dir, &registry_, session_dict_.get(), discovery_.get(),
      options_.discovery, &catalog_state_, request);
  ++catalog_stats_.opens;
  if (!report.ok()) {
    // The old pin still stands and the old generation still serves — a
    // failed refresh degrades to staleness, never to a torn lake view.
    ++catalog_stats_.open_failures;
    return report;
  }
  // Hand-over-hand pin move: the new generation was claimed (under the
  // shared lock, inside OpenCatalogInto) before the old claim is dropped,
  // so the writer's GC never sees this replica unpinned.
  if (!replica_pin_.empty() && replica_pin_ != new_pin) {
    std::remove(replica_pin_.c_str());
  }
  replica_pin_ = std::move(new_pin);
  if (report->generation != prev_generation) ++catalog_stats_.refreshes;
  AccumulateOpen(*report);
  return report;
}

uint64_t LakeEngine::catalog_generation() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return catalog_state_.generation;
}

void LakeEngine::AccumulateOpen(const CatalogOpenReport& report) const {
  catalog_stats_.tables_loaded += report.tables_loaded;
  catalog_stats_.values_loaded += report.values_loaded;
  catalog_stats_.columns_resketched += report.columns_resketched;
  catalog_stats_.mmap_bytes = report.mapped_bytes;
  catalog_stats_.generation = report.generation;
}

Result<CatalogSaveReport> LakeEngine::SaveCatalog(const std::string& dir,
                                                  Tracer* tracer) {
  if (replica_) return ReplicaForbidden("SaveCatalog");
  ScopedSpan span(tracer, "catalog_save");
  // Sync first so the discovery index holds a sketch for every registered
  // table — the save then persists them as-is instead of re-sketching.
  LAKEFUZZ_RETURN_IF_ERROR(EnsureDiscoverySynced(RequestContext()));
  std::lock_guard<std::mutex> lock(catalog_mu_);
  Result<CatalogSaveReport> report = SaveCatalogFrom(
      dir, &registry_, session_dict_.get(), discovery_.get(),
      options_.discovery, &catalog_state_,
      options_.catalog_retain_generations);
  if (!report.ok()) return report;
  ++catalog_stats_.saves;
  catalog_stats_.tables_written += report->tables_written;
  catalog_stats_.tables_reused += report->tables_reused;
  catalog_stats_.values_appended += report->values_appended;
  catalog_stats_.columns_resketched += report->columns_resketched;
  catalog_stats_.bytes_written += report->bytes_written;
  catalog_stats_.generation = report->generation;
  catalog_stats_.generations_removed += report->generations_removed;
  span.AddAttr("tables_written",
               static_cast<int64_t>(report->tables_written));
  span.AddAttr("bytes_written", static_cast<int64_t>(report->bytes_written));
  span.AddAttr("generation", static_cast<int64_t>(report->generation));
  return report;
}

CatalogStats LakeEngine::catalog_stats() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return catalog_stats_;
}

Status LakeEngine::EnsureDiscoverySynced(const RequestContext& ctx) const {
  // Cheap fast path: versions match means the index reflects exactly the
  // current name → snapshot mapping (TableRegistry::version() invariant).
  if (discovery_->version() == registry_.version()) return Status::OK();
  uint64_t version = 0;
  auto snapshot = registry_.Snapshot(&version);
  return discovery_->Resync(snapshot, version, ctx);
}

Result<std::vector<DiscoveryCandidate>> LakeEngine::DiscoverUnionable(
    const std::string& name, size_t k, const RequestContext& ctx,
    Truncation* truncation) const {
  if (k == 0) {
    return Status::InvalidArgument("discovery k must be positive");
  }
  em_.discovery_queries->Increment();
  ScopedSpan discover_span(ctx, "discover");
  discover_span.AddAttr("k", static_cast<int64_t>(k));
  const RequestContext span_ctx = ctx.WithSpan(discover_span.id());
  // Truncation-aware pre-check: under kTruncate an already-expired
  // deadline still yields a best-so-far (possibly empty) ranking with
  // the cut recorded downstream, instead of a hard error.
  Status pre = ctx.CheckStop("discovery");
  if (!pre.ok() && !ctx.ShouldTruncate(pre.code())) return pre;
  Status synced = EnsureDiscoverySynced(span_ctx);
  if (!synced.ok()) {
    if (!ctx.ShouldTruncate(synced.code())) return synced;
    // Best-effort under kTruncate: search whatever the index already holds
    // (possibly a stale lake view) and record the cut.
    if (truncation != nullptr && !truncation->truncated) {
      truncation->truncated = true;
      truncation->stage = Stage::kDiscover;
      truncation->reason = synced.message();
    }
  }
  // Once degraded, the query itself is cleanup: cancel still aborts it, the
  // already-expired deadline does not re-fire.
  const RequestContext query_ctx =
      synced.ok() ? span_ctx : span_ctx.CancelOnly();
  Result<std::vector<DiscoveryCandidate>> candidates =
      discovery_->TopKByName(name, k, query_ctx, truncation);
  if (candidates.ok()) {
    discover_span.AddAttr("candidates",
                          static_cast<int64_t>(candidates->size()));
  }
  return candidates;
}

Result<std::vector<DiscoveryCandidate>> LakeEngine::DiscoverUnionable(
    const Table& query, size_t k, const RequestContext& ctx,
    Truncation* truncation) const {
  if (k == 0) {
    return Status::InvalidArgument("discovery k must be positive");
  }
  em_.discovery_queries->Increment();
  ScopedSpan discover_span(ctx, "discover");
  discover_span.AddAttr("k", static_cast<int64_t>(k));
  const RequestContext span_ctx = ctx.WithSpan(discover_span.id());
  // Truncation-aware pre-check: under kTruncate an already-expired
  // deadline still yields a best-so-far (possibly empty) ranking with
  // the cut recorded downstream, instead of a hard error.
  Status pre = ctx.CheckStop("discovery");
  if (!pre.ok() && !ctx.ShouldTruncate(pre.code())) return pre;
  Status synced = EnsureDiscoverySynced(span_ctx);
  if (!synced.ok()) {
    if (!ctx.ShouldTruncate(synced.code())) return synced;
    if (truncation != nullptr && !truncation->truncated) {
      truncation->truncated = true;
      truncation->stage = Stage::kDiscover;
      truncation->reason = synced.message();
    }
  }
  const RequestContext query_ctx =
      synced.ok() ? span_ctx : span_ctx.CancelOnly();
  // SketchQuery hashes the cells directly — an ad-hoc query never grows
  // the session dictionary.
  std::vector<ColumnSketch> sketches = discovery_->SketchQuery(query);
  Result<std::vector<DiscoveryCandidate>> candidates =
      discovery_->TopK(sketches, k, query_ctx, truncation);
  if (candidates.ok()) {
    discover_span.AddAttr("candidates",
                          static_cast<int64_t>(candidates->size()));
  }
  return candidates;
}

Result<FuzzyFdReport> LakeEngine::DiscoverAndIntegrate(
    const std::string& query_name, size_t k, RowSink* sink,
    const RequestOptions& request,
    std::vector<DiscoveryCandidate>* discovered) const {
  Stopwatch total_watch;
  const uint64_t request_id = ResolveRequestId(request);
  RequestContext ctx = MakeContext(request);
  ScopedSpan root(ctx.tracer, "request");
  root.AddAttr("mode", std::string("discover+integrate"));
  root.AddAttr("request_id", static_cast<int64_t>(request_id));
  ctx.trace_parent = root.id();
  std::vector<std::string> names{query_name};
  auto finish = [&](Result<FuzzyFdReport> report) {
    root.End();
    RecordRequest("discover+integrate", request_id, names, report.status(),
                  report.ok() ? &*report : nullptr,
                  total_watch.ElapsedSeconds(), ctx.tracer);
    return report;
  };
  // One admission slot covers the whole discover → integrate span.
  {
    ScopedSpan admit_span(ctx, "admission_wait");
    Status admitted = Admit(ctx);
    if (!admitted.ok()) return finish(admitted);
  }
  AdmissionSlot slot(this);
  ReportProgress(request.progress, Stage::kDiscover, 0, 1);
  Truncation discover_cut;
  Result<std::vector<DiscoveryCandidate>> found =
      DiscoverUnionable(query_name, k, ctx, &discover_cut);
  if (!found.ok()) return finish(found.status());
  std::vector<DiscoveryCandidate> candidates = std::move(found).value();
  ReportProgress(request.progress, Stage::kDiscover, 1, 1);
  // Query first, then candidates in rank order: the name list defines TID
  // numbering, so the discovered integration is reproducible from the
  // candidate list alone (and bit-identical to IntegrateToSink on it).
  names.reserve(candidates.size() + 1);
  for (const DiscoveryCandidate& c : candidates) names.push_back(c.name);
  if (discovered != nullptr) *discovered = std::move(candidates);
  Result<FuzzyFdReport> report =
      IntegrateToSinkImpl(names, sink, request, ctx);
  if (report.ok() && discover_cut.truncated) {
    // Discovery was cut first; keep its stage/reason as the report's
    // primary cut and fold in whatever the pipeline added.
    discover_cut.Merge(report->truncation);
    report->truncation = discover_cut;
  }
  return finish(std::move(report));
}

uint64_t LakeEngine::schema_cache_hits() const {
  std::lock_guard<std::mutex> lock(schema_mu_);
  return schema_cache_hits_;
}

AdmissionStats LakeEngine::admission_stats() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return admission_stats_;
}

uint64_t LakeEngine::ResolveRequestId(const RequestOptions& request) const {
  if (request.request_id != 0) return request.request_id;
  return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void LakeEngine::RecordRequest(const char* mode, uint64_t request_id,
                               const std::vector<std::string>& names,
                               const Status& status,
                               const FuzzyFdReport* report,
                               double total_seconds, Tracer* tracer) const {
  em_.requests_total->Increment();
  if (!status.ok()) em_.requests_failed->Increment();
  em_.request_ns->Observe(SecondsToNs(total_seconds));
  if (report != nullptr) {
    if (report->truncation.truncated) em_.requests_truncated->Increment();
    em_.align_ns->Observe(SecondsToNs(report->align_seconds));
    em_.match_ns->Observe(SecondsToNs(report->match_seconds));
    em_.rewrite_ns->Observe(SecondsToNs(report->rewrite_seconds));
    em_.fd_ns->Observe(SecondsToNs(report->fd_seconds));
    em_.fd_search_nodes->Add(report->fd_stats.search_nodes);
    em_.fd_result_tuples->Add(report->fd_stats.results);
    em_.fd_intra_tasks->Add(report->fd_stats.intra_tasks);
    em_.fd_task_busy_ns->Add(report->fd_stats.task_profile.busy_ns);
    em_.values_rewritten->Add(report->values_rewritten);
  }
  const double total_ms = total_seconds * 1e3;
  if (options_.slow_request_ms > 0.0 &&
      total_ms >= options_.slow_request_ms) {
    SlowLogInfo info;
    info.request_id = request_id;
    info.mode = mode;
    info.tables = names;
    info.total_ms = total_ms;
    info.threshold_ms = options_.slow_request_ms;
    info.error =
        status.ok() ? "ok" : std::string(ErrorCodeToString(status.code()));
    info.truncated = report != nullptr && report->truncation.truncated;
    const std::string line = SlowRequestLine(info, tracer);
    if (options_.slow_log) {
      options_.slow_log(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
}

void LakeEngine::RefreshGauges() const {
  auto set = [&](const char* name, const char* help, uint64_t v) {
    Gauge* g = metrics_->GetGauge(name, help);
    if (g != nullptr) g->Set(static_cast<int64_t>(v));
  };
  const AdmissionStats adm = admission_stats();
  set("lakefuzz_admission_admitted_total", "requests past the gate",
      adm.admitted);
  set("lakefuzz_admission_rejected_total", "overload fast-rejections",
      adm.rejected);
  set("lakefuzz_admission_queued_total", "requests that waited for a slot",
      adm.queued);
  const CatalogStats cat = catalog_stats();
  set("lakefuzz_catalog_generation", "last committed/observed generation",
      cat.generation);
  set("lakefuzz_catalog_opens_total", "catalog opens attempted", cat.opens);
  set("lakefuzz_catalog_saves_total", "catalog checkpoints committed",
      cat.saves);
  set("lakefuzz_catalog_refreshes_total",
      "replica refreshes that loaded a new generation", cat.refreshes);
  set("lakefuzz_catalog_bytes_written_total", "catalog bytes written",
      cat.bytes_written);
  const SessionDict::Stats dict = session_dict_->stats();
  set("lakefuzz_dict_values_interned_total",
      "distinct values in the session dictionary", dict.values_interned);
  set("lakefuzz_dict_column_hits_total",
      "column code requests answered from the memo", dict.column_hits);
  set("lakefuzz_dict_column_requests_total", "column code requests",
      dict.column_requests);
  // Pool / task-grain / RSS gauges read the same single sources the bench
  // artifacts do (PoolStats, FdTaskProfile via the request counters above,
  // util/rss.h) — /metrics and bench JSON can never drift apart.
  if (pool_ != nullptr) {
    const PoolStats ps = pool_->stats();
    set("lakefuzz_pool_tasks_total", "pool tasks executed", ps.tasks);
    set("lakefuzz_pool_busy_ns_total", "summed task execution time",
        ps.busy_ns);
    set("lakefuzz_pool_wait_ns_total", "summed enqueue-to-dequeue latency",
        ps.queue_wait_ns);
  }
  set("lakefuzz_schema_cache_hits_total",
      "requests that reused a cached alignment", schema_cache_hits());
  set("lakefuzz_registered_tables", "tables in the registry", NumTables());
  set("lakefuzz_discovery_index_tables", "tables in the discovery index",
      discovery_->num_tables());
  set("lakefuzz_discovery_index_columns", "columns in the discovery index",
      discovery_->num_columns());
  set("lakefuzz_process_peak_rss_bytes",
      "process peak RSS (getrusage high-water mark)", PeakRssBytes());
}

lakefuzz::MetricsSnapshot LakeEngine::MetricsSnapshot() const {
  RefreshGauges();
  return metrics_->Snapshot();
}

Status LakeEngine::Admit(const RequestContext& ctx) const {
  const size_t max = options_.max_concurrent_requests;
  std::unique_lock<std::mutex> lock(admission_mu_);
  if (max != 0 && active_requests_ >= max) {
    if (waiting_requests_ >= options_.max_queued_requests) {
      ++admission_stats_.rejected;
      return Status::ResourceExhausted(StrFormat(
          "engine overloaded: %zu requests in flight and %zu queued "
          "(max_concurrent_requests=%zu, max_queued_requests=%zu)",
          active_requests_, waiting_requests_,
          options_.max_concurrent_requests, options_.max_queued_requests));
    }
    ++waiting_requests_;
    ++admission_stats_.queued;
    while (active_requests_ >= max) {
      // Bounded waits so a queued request still honors its own token and
      // deadline (a queue-wait stop has no partial result — it fails hard
      // regardless of BudgetPolicy).
      admission_cv_.wait_for(lock, std::chrono::milliseconds(5));
      Status stop = ctx.CheckStop("admission wait");
      if (!stop.ok()) {
        --waiting_requests_;
        return stop;
      }
    }
    --waiting_requests_;
  }
  ++admission_stats_.admitted;
  ++active_requests_;
  return Status::OK();
}

void LakeEngine::ReleaseAdmission() const {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --active_requests_;
  }
  admission_cv_.notify_one();
}

LakeEngine::AdmissionSlot::~AdmissionSlot() { engine_->ReleaseAdmission(); }

std::vector<std::string> LakeEngine::TableNames() const {
  return registry_.Names();
}

size_t LakeEngine::NumTables() const { return registry_.size(); }

Result<LakeEngine::PreparedRequest> LakeEngine::Prepare(
    const std::vector<std::string>& names, const RequestOptions& request,
    const RequestContext& ctx) const {
  if (names.empty()) {
    return Status::InvalidArgument("integration set is empty");
  }
  LAKEFUZZ_RETURN_IF_ERROR(ctx.CheckStop("request"));
  PreparedRequest prep;
  uint64_t registry_version = 0;
  LAKEFUZZ_ASSIGN_OR_RETURN(prep.pinned,
                            registry_.GetMany(names, &registry_version));
  prep.tables.reserve(prep.pinned.size());
  for (const auto& t : prep.pinned) prep.tables.push_back(t.get());

  ReportProgress(request.progress, Stage::kAlign, 0, 1);
  // The align span brackets exactly the align_watch region, so the trace
  // tree's stage durations reconcile with FuzzyFdReport::align_seconds.
  ScopedSpan align_span(ctx, "align");
  Stopwatch align_watch;
  // Alignment cache: keyed by (mode, ordered name set) and valid only at
  // the registry version the snapshot was resolved at — any Register /
  // Unregister bumps the version, so a cached alignment can never outlive
  // the tables it was computed from. Cached repeated Integrate calls skip
  // holistic re-alignment entirely (ROADMAP PR 3 follow-up).
  std::string schema_key = request.holistic_alignment ? "h" : "n";
  for (const auto& name : names) {
    schema_key.push_back('\x1f');
    schema_key += name;
  }
  bool cached = false;
  {
    std::lock_guard<std::mutex> lock(schema_mu_);
    auto it = schema_cache_.find(schema_key);
    if (it != schema_cache_.end() &&
        it->second.version == registry_version) {
      prep.aligned = it->second.aligned;
      ++schema_cache_hits_;
      cached = true;
    }
  }
  if (!cached) {
    Result<AlignedSchema> aligned = Status::Internal("unreachable");
    if (request.holistic_alignment) {
      aligned = HolisticSchemaMatcher(model_).Align(prep.tables);
    } else {
      aligned = AlignByName(prep.tables);
    }
    if (!aligned.ok()) return aligned.status();
    prep.aligned = std::move(aligned).value();
    std::lock_guard<std::mutex> lock(schema_mu_);
    // Entries from older registry versions can never validate again (the
    // version only grows); sweep them on insert so a long-lived engine
    // with a churning registry stays bounded by its live name sets.
    for (auto it = schema_cache_.begin(); it != schema_cache_.end();) {
      if (it->second.version != registry_version) {
        it = schema_cache_.erase(it);
      } else {
        ++it;
      }
    }
    schema_cache_[schema_key] =
        CachedSchema{registry_version, prep.aligned};
  }
  prep.align_seconds = align_watch.ElapsedSeconds();
  align_span.AddAttr("cached", cached ? int64_t{1} : int64_t{0});
  align_span.AddAttr(
      "universal_columns",
      static_cast<int64_t>(prep.aligned.universal_names.size()));
  align_span.End();
  ReportProgress(request.progress, Stage::kAlign, 1, 1);

  // Session resources override the per-request knobs they replace; the
  // remaining matcher/FD knobs pass through untouched.
  FuzzyFdOptions eff = request.fuzzy_fd;
  eff.matcher.model = model_;
  eff.matcher.shared_cache = cache_;
  eff.session_dict = session_dict_.get();
  eff.include_provenance = request.include_provenance;
  eff.context = ctx;
  eff.progress = request.progress;
  if (pool_ != nullptr) {
    eff.pool = pool_.get();
    eff.matcher.pool = pool_.get();
    eff.matcher.num_threads = pool_->num_threads();
    // parallel_fd is authoritative on pooled engines: it also clears a
    // caller-supplied fuzzy_fd.parallel, so "force the serial executor"
    // means what it says.
    eff.parallel = request.parallel_fd;
    if (request.parallel_fd) eff.num_threads = pool_->num_threads();
  }
  prep.effective = std::move(eff);
  return prep;
}

Result<PipelineResult> LakeEngine::Integrate(
    const std::vector<std::string>& names,
    const RequestOptions& request) const {
  Stopwatch total_watch;
  const uint64_t request_id = ResolveRequestId(request);
  RequestContext ctx = MakeContext(request);
  ScopedSpan root(ctx.tracer, "request");
  root.AddAttr("mode", std::string("integrate"));
  root.AddAttr("request_id", static_cast<int64_t>(request_id));
  ctx.trace_parent = root.id();
  auto finish = [&](Result<PipelineResult> result) {
    root.End();
    RecordRequest("integrate", request_id, names, result.status(),
                  result.ok() ? &result->report : nullptr,
                  total_watch.ElapsedSeconds(), ctx.tracer);
    return result;
  };
  {
    ScopedSpan admit_span(ctx, "admission_wait");
    Status admitted = Admit(ctx);
    if (!admitted.ok()) return finish(admitted);
  }
  AdmissionSlot slot(this);
  Result<PreparedRequest> prepared = Prepare(names, request, ctx);
  if (!prepared.ok()) return finish(prepared.status());
  PreparedRequest prep = std::move(prepared).value();
  FuzzyFdReport report;
  Result<FdResult> fd = Status::Internal("unreachable");
  if (request.fuzzy) {
    fd = FuzzyFullDisjunction(prep.effective)
             .RunToTuples(prep.tables, prep.aligned, &report);
  } else {
    fd = RegularFdBaseline(prep.tables, prep.aligned, prep.effective.fd,
                           prep.effective.parallel,
                           prep.effective.num_threads, &report,
                           prep.effective.pool, prep.effective.context,
                           prep.effective.progress,
                           prep.effective.session_dict);
  }
  if (!fd.ok()) return finish(fd.status());
  report.align_seconds = prep.align_seconds;

  ReportProgress(request.progress, Stage::kEmit, 0, 1);
  ScopedSpan emit_span(ctx, "emit");
  emit_span.AddAttr("tuples", static_cast<int64_t>(fd->tuples.size()));
  Table integrated = FdResultsToTable(
      fd->tuples, prep.aligned.universal_names,
      request.fuzzy ? "fuzzy_full_disjunction" : "full_disjunction",
      request.include_provenance);
  emit_span.End();
  ReportProgress(request.progress, Stage::kEmit, 1, 1);
  return finish(PipelineResult{std::move(integrated),
                               std::move(prep.aligned), report,
                               prep.align_seconds});
}

Result<FuzzyFdReport> LakeEngine::IntegrateToSink(
    const std::vector<std::string>& names, RowSink* sink,
    const RequestOptions& request) const {
  Stopwatch total_watch;
  const uint64_t request_id = ResolveRequestId(request);
  RequestContext ctx = MakeContext(request);
  ScopedSpan root(ctx.tracer, "request");
  root.AddAttr("mode", std::string("sink"));
  root.AddAttr("request_id", static_cast<int64_t>(request_id));
  ctx.trace_parent = root.id();
  auto finish = [&](Result<FuzzyFdReport> report) {
    root.End();
    RecordRequest("sink", request_id, names, report.status(),
                  report.ok() ? &*report : nullptr,
                  total_watch.ElapsedSeconds(), ctx.tracer);
    return report;
  };
  {
    ScopedSpan admit_span(ctx, "admission_wait");
    Status admitted = Admit(ctx);
    if (!admitted.ok()) return finish(admitted);
  }
  AdmissionSlot slot(this);
  return finish(IntegrateToSinkImpl(names, sink, request, ctx));
}

Result<FuzzyFdReport> LakeEngine::IntegrateToSinkImpl(
    const std::vector<std::string>& names, RowSink* sink,
    const RequestOptions& request, const RequestContext& ctx) const {
  if (sink == nullptr) {
    return Status::InvalidArgument("IntegrateToSink requires a sink");
  }
  if (request.batch_rows == 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  LAKEFUZZ_ASSIGN_OR_RETURN(PreparedRequest prep,
                            Prepare(names, request, ctx));
  LAKEFUZZ_RETURN_IF_ERROR(sink->Begin(prep.aligned.universal_names));

  FuzzyFdReport report;
  FdBatchFn emit = [sink](const std::vector<FdResultTuple>& batch) {
    return sink->OnBatch(batch);
  };
  Result<size_t> emitted = Status::Internal("unreachable");
  if (request.fuzzy) {
    emitted = FuzzyFullDisjunction(prep.effective)
                  .RunToBatches(prep.tables, prep.aligned,
                                request.batch_rows, emit, &report);
  } else {
    emitted = RegularFdToBatches(
        prep.tables, prep.aligned, prep.effective.fd,
        prep.effective.parallel, prep.effective.num_threads,
        prep.effective.pool, prep.effective.context, prep.effective.progress,
        request.batch_rows, emit, &report, prep.effective.session_dict);
  }
  if (!emitted.ok()) return emitted.status();
  report.align_seconds = prep.align_seconds;
  LAKEFUZZ_RETURN_IF_ERROR(sink->End(report));
  return report;
}

}  // namespace lakefuzz
