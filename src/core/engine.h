// LakeEngine: the session-oriented public API of lakefuzz.
//
// The paper's operator is one-shot, but real workloads (Gen-T style table
// reclamation, query-time integration) issue *many* integrate calls over
// the same lake. A LakeEngine is constructed once from validated
// EngineOptions and owns the process-wide resources every call used to
// rebuild: the embedding model, a cross-call EmbeddingCache (values
// embedded by one request are hits for every later one), and one session
// ThreadPool. Tables register once into a TableRegistry and are borrowed —
// never copied — per request.
//
//   auto engine = LakeEngine::Create(
//       EngineOptions().SetModel(ModelKind::kMistral).SetNumThreads(8));
//   (*engine)->RegisterCsv("cities", "cities.csv");
//   (*engine)->RegisterTable("rates", std::move(rates_table));
//   auto result = (*engine)->Integrate({"cities", "rates"});
//
// Requests take per-call RequestOptions carrying matcher/FD knobs, a
// CancelToken (cooperative abort → ErrorCode::kCancelled), and a
// ProgressFn. IntegrateToSink streams result tuples to a RowSink in
// batches without materializing the integrated table. One engine serves
// concurrent Integrate calls; the registry, cache, and pool are all
// thread-safe.
//
// The former free functions IntegrateTables / IntegrateCsvFiles
// (core/pipeline.h) remain as deprecated shims over a temporary engine.
#ifndef LAKEFUZZ_CORE_ENGINE_H_
#define LAKEFUZZ_CORE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "core/engine_registry.h"
#include "core/fuzzy_fd.h"
#include "discovery/discovery.h"
#include "embedding/embedding_cache.h"
#include "embedding/model_zoo.h"
#include "fd/session_dict.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "table/csv.h"
#include "util/request_context.h"
#include "util/result.h"

namespace lakefuzz {

class ThreadPool;

/// Engine construction knobs, builder-style:
///
///   EngineOptions().SetModel(ModelKind::kMistral).SetNumThreads(8)
///
/// Validate() is called by LakeEngine::Create; invalid options surface as
/// ErrorCode::kInvalidArgument before any resource is allocated.
struct EngineOptions {
  /// Embedding model backing alignment, value matching, and the shared
  /// cache. Built once per engine.
  ModelKind model = ModelKind::kMistral;
  /// Session worker threads: 1 = serial (no pool is created), 0 = hardware
  /// concurrency, N = exactly N. With a pool, requests run the
  /// component-parallel FD executor and parallel matcher fills on it;
  /// results are identical at every setting.
  size_t num_threads = 1;
  /// Sizing of the cross-call embedding cache (max_entries 0 = unbounded).
  EmbeddingCacheOptions embedding_cache;
  /// Discovery-index knobs (signature size, LSH banding, score weights,
  /// eager vs bulk build — see discovery/discovery.h).
  DiscoveryOptions discovery;
  /// Admission control: at most this many integrate-class requests
  /// (Integrate / IntegrateToSink / DiscoverAndIntegrate) run at once;
  /// 0 = unlimited (the default — admission only counts). Overload beyond
  /// the wait queue rejects fast with ErrorCode::kResourceExhausted.
  size_t max_concurrent_requests = 0;
  /// Bounded wait queue in front of the concurrency gate: requests arriving
  /// while `max_concurrent_requests` are in flight wait here (still honoring
  /// their cancel token and deadline); once `max_queued_requests` are
  /// already waiting, further arrivals are rejected immediately.
  size_t max_queued_requests = 0;
  /// Durable-catalog retention: how many committed generations SaveCatalog
  /// keeps on disk. Older generations are garbage-collected after each
  /// commit unless a live reader has them pinned. Minimum 1 — the current
  /// generation always survives.
  size_t catalog_retain_generations = kCatalogDefaultRetainGenerations;
  /// External metrics registry (obs/metrics.h) shared across engines in
  /// one process; null (the default) gives the engine a private registry.
  /// Either way MetricsSnapshot() scrapes it plus the engine-level gauges.
  /// Not owned; must outlive the engine.
  MetricsRegistry* metrics = nullptr;
  /// Slow-request log threshold in milliseconds: any Integrate /
  /// IntegrateToSink / DiscoverAndIntegrate whose end-to-end wall time
  /// reaches it emits one structured line (see obs/trace.h
  /// SlowRequestLine) through `slow_log`. 0 (the default) disables the
  /// log. The per-stage breakdown comes from the request's tracer when one
  /// was attached; untraced slow requests log with an empty stage list.
  double slow_request_ms = 0.0;
  /// Destination for slow-request lines; defaults to stderr when unset.
  /// Invoked on the request thread, after the request finished.
  std::function<void(const std::string&)> slow_log;

  EngineOptions& SetModel(ModelKind kind) {
    model = kind;
    return *this;
  }
  EngineOptions& SetNumThreads(size_t n) {
    num_threads = n;
    return *this;
  }
  EngineOptions& SetEmbeddingCache(EmbeddingCacheOptions options) {
    embedding_cache = options;
    return *this;
  }
  EngineOptions& SetDiscovery(DiscoveryOptions options) {
    discovery = std::move(options);
    return *this;
  }
  EngineOptions& SetMaxConcurrentRequests(size_t n) {
    max_concurrent_requests = n;
    return *this;
  }
  EngineOptions& SetMaxQueuedRequests(size_t n) {
    max_queued_requests = n;
    return *this;
  }
  EngineOptions& SetCatalogRetainGenerations(size_t n) {
    catalog_retain_generations = n;
    return *this;
  }
  EngineOptions& SetMetrics(MetricsRegistry* registry) {
    metrics = registry;
    return *this;
  }
  EngineOptions& SetSlowRequestMs(double ms) {
    slow_request_ms = ms;
    return *this;
  }
  EngineOptions& SetSlowLog(std::function<void(const std::string&)> fn) {
    slow_log = std::move(fn);
    return *this;
  }

  /// Checks the option combination without allocating anything.
  Status Validate() const;
};

/// Per-request knobs. The engine fills in everything session-owned
/// (model, shared cache, pool) on top of these.
struct RequestOptions {
  /// Align columns by content (holistic schema matching); when false,
  /// columns align by equal header names.
  bool holistic_alignment = true;
  /// Fuzzy matching on/off — off degrades to the regular-FD baseline.
  bool fuzzy = true;
  /// Add the "TIDs" provenance column to the output table.
  bool include_provenance = false;
  /// Matcher/FD knobs. The engine overwrites the session-owned fields:
  /// matcher.model, matcher.shared_cache, pool/matcher.pool, cancel,
  /// progress, include_provenance — and, on a pooled engine with
  /// `parallel_fd` left true, also `parallel`/`num_threads` (both point at
  /// the session pool). The remaining knobs pass through untouched.
  FuzzyFdOptions fuzzy_fd;
  /// On a pooled engine, run the FD stage on the component-parallel
  /// executor (the default; output is identical to serial). Set false to
  /// force the serial executor for this request — profiling, bug
  /// isolation — while matcher fills still use the session pool.
  bool parallel_fd = true;
  /// Cooperative cancellation (CancelToken::Create(); fire from any
  /// thread). A cancelled request returns ErrorCode::kCancelled.
  CancelToken cancel;
  /// Request deadline (Deadline::AfterMillis(...)), polled at the same
  /// checkpoints as `cancel`. Expiry returns ErrorCode::kDeadlineExceeded —
  /// or, under BudgetPolicy::kTruncate, a partial result with
  /// FuzzyFdReport::truncation populated.
  Deadline deadline;
  /// Per-request resource ceilings (FD search nodes, result tuples, FD
  /// scratch bytes); zero fields are unlimited.
  ResourceBudget budget;
  /// What budget/deadline exhaustion does: kFail (default) surfaces the
  /// typed error, kTruncate degrades to the best partial result computed
  /// so far. Cancellation always fails regardless of policy.
  BudgetPolicy budget_policy = BudgetPolicy::kFail;
  /// Stage progress, invoked on the request thread.
  ProgressFn progress;
  /// Sink mode: decoded tuples per OnBatch call (bounds peak memory).
  size_t batch_rows = 1024;
  /// Request tracing (obs/trace.h): when set, the engine opens a root
  /// "request" span and every stage hangs a timed child span off it —
  /// export with Tracer::ToChromeJson() / FlameSummary() afterward.
  /// Observation-only: results are byte-identical with or without a
  /// tracer. Not owned; use one Tracer per request (its spans are the
  /// request's trace tree).
  Tracer* tracer = nullptr;
  /// Caller-assigned id stamped on the root span and the slow-request log
  /// line; 0 (the default) makes the engine assign one from its own
  /// monotonic sequence.
  uint64_t request_id = 0;
};

/// Engine-lifetime admission counters (see EngineOptions::
/// max_concurrent_requests). admitted counts requests that got a slot
/// (including after queueing), queued counts those that had to wait first,
/// rejected counts fast-fail overload rejections.
struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t queued = 0;
};

/// Streaming consumer for IntegrateToSink. Methods are invoked on the
/// request thread, in order: Begin, then OnBatch zero or more times, then
/// End exactly once on success (not after an error/cancellation). Any
/// non-OK return aborts the request with that status.
class RowSink {
 public:
  virtual ~RowSink() = default;

  /// Announces the universal schema before the first batch.
  virtual Status Begin(const std::vector<std::string>& universal_names) {
    (void)universal_names;
    return Status::OK();
  }

  /// One window of result tuples in FdTupleLess order. The vector is
  /// reused between calls — copy what outlives the call.
  virtual Status OnBatch(const std::vector<FdResultTuple>& batch) = 0;

  /// Final stage report after the last batch.
  virtual Status End(const FuzzyFdReport& report) {
    (void)report;
    return Status::OK();
  }
};

/// End-to-end result of LakeEngine::Integrate (and the legacy
/// IntegrateTables shim).
struct PipelineResult {
  Table integrated;
  AlignedSchema aligned;
  FuzzyFdReport report;
  /// Deprecated: duplicate of report.align_seconds, kept for existing
  /// callers; report.total_seconds() now covers alignment too.
  double align_seconds = 0.0;
};

/// A long-lived integration session over one data lake. Create once, serve
/// many requests; safe for concurrent use.
class LakeEngine {
 public:
  /// Validates `options`, then builds the session resources (model, shared
  /// embedding cache, worker pool when num_threads != 1).
  static Result<std::unique_ptr<LakeEngine>> Create(
      EngineOptions options = EngineOptions());

  /// Opens a read-only replica over the committed catalog at `dir`: the
  /// latest generation is loaded (segments served via mmap, zero columns
  /// re-sketched) and pinned against the writer's retention GC, so the
  /// writer can keep checkpointing the same directory while this engine
  /// serves queries. The replica answers DiscoverUnionable / Integrate
  /// byte-identically to the writer at that generation; every mutation
  /// (RegisterTable, RegisterCsv, Unregister, SaveCatalog, OpenCatalog)
  /// fails with kFailedPrecondition. Follow the writer's newer checkpoints
  /// with RefreshReplica(). The pin is released when the engine is
  /// destroyed (or swept as stale if the process dies).
  static Result<std::unique_ptr<LakeEngine>> OpenReplica(
      const std::string& dir, EngineOptions options = EngineOptions());

  ~LakeEngine();  // out of line: ThreadPool is incomplete here

  // ------------------------------------------------------------ registry
  /// Registers an in-memory table under `name`
  /// (ErrorCode::kAlreadyExists on duplicates).
  Status RegisterTable(std::string name, Table table);
  /// Shared-ownership form (no copy); the snapshot must stay immutable.
  Status RegisterTable(std::string name, std::shared_ptr<const Table> table);
  /// Reads `path` as CSV and registers it under `name` (the table is
  /// renamed to `name` so diagnostics match the registry).
  Status RegisterCsv(std::string name, const std::string& path,
                     const CsvOptions& csv = CsvOptions());
  /// Typed removal: ErrorCode::kNotFound when absent. Drops the name from
  /// the registry, the session dictionary's column memo, and the discovery
  /// index; in-flight requests holding the snapshot are unaffected, and any
  /// cached alignment involving the name stops validating (version bump).
  Status Unregister(const std::string& name);
  /// Legacy boolean form of Unregister.
  bool UnregisterTable(const std::string& name) {
    return Unregister(name).ok();
  }
  std::vector<std::string> TableNames() const;
  size_t NumTables() const;

  // ------------------------------------------------------------- catalog
  /// Loads the durable catalog at `dir` (see catalog/catalog.h): replays
  /// the persisted dictionary (no value re-hashing), registers every
  /// cataloged table whose name is not already live, seeds their column
  /// code memos, and inserts pre-built discovery sketches — a warm restart
  /// re-sketches zero columns for an unchanged lake. A corrupt, truncated,
  /// or version-skewed catalog fails with kIoError / kInvalidArgument
  /// before any table is registered; the engine stays fully usable and the
  /// caller rebuilds cold. On success the engine remembers `dir`, so the
  /// next SaveCatalog checkpoints incrementally. A non-null `tracer`
  /// records the open as a "catalog_open" span.
  Result<CatalogOpenReport> OpenCatalog(const std::string& dir,
                                        Tracer* tracer = nullptr);

  /// Persists the current lake to `dir` (created if missing). Syncs the
  /// discovery index first so sketches persist without re-sketching, then
  /// checkpoints: incremental (append new dict entries + changed tables,
  /// reuse unchanged extents, atomically rewrite the manifest) when the
  /// engine last opened/saved the same directory, full rewrite otherwise.
  /// Dropped tables leave the manifest and cannot resurrect; re-registered
  /// (changed) tables refresh their content fingerprint. A non-null
  /// `tracer` records the checkpoint as a "catalog_save" span.
  Result<CatalogSaveReport> SaveCatalog(const std::string& dir,
                                        Tracer* tracer = nullptr);

  /// Replica only: follows the writer to the latest committed generation.
  /// When CURRENT is unchanged this is a cheap no-op (one locked read, no
  /// manifest parse). When it advanced, the new generation loads with the
  /// same stage-then-commit discipline as an open: tables whose content
  /// fingerprint changed are replaced, tables gone from the manifest are
  /// dropped, unchanged tables are kept untouched — and the retention pin
  /// moves to the new generation only after the load succeeds, so a failed
  /// refresh leaves the replica serving its old generation consistently.
  /// kFailedPrecondition on a writer engine.
  Result<CatalogOpenReport> RefreshReplica();

  /// True for engines constructed by OpenReplica.
  bool is_replica() const { return replica_; }

  /// The committed generation this engine last saved (writer) or loaded
  /// (replica); 0 before any catalog interaction.
  uint64_t catalog_generation() const;

  /// Lifetime catalog counters (opens, saves, refreshes, bytes,
  /// re-sketches, generations).
  CatalogStats catalog_stats() const;

  // ------------------------------------------------------------ requests
  /// Integrates the named tables (registry lookup order = `names` order,
  /// which defines TID numbering) into one table, with stage report.
  Result<PipelineResult> Integrate(
      const std::vector<std::string>& names,
      const RequestOptions& request = RequestOptions()) const;

  /// Streaming form: emits result tuples to `sink` in batches of at most
  /// request.batch_rows without materializing the integrated table.
  /// Returns the final stage report (fd_stats.results = emitted tuples).
  Result<FuzzyFdReport> IntegrateToSink(
      const std::vector<std::string>& names, RowSink* sink,
      const RequestOptions& request = RequestOptions()) const;

  // ----------------------------------------------------------- discovery
  /// Top-k tables unionable with the registered table `name` (itself
  /// excluded), ranked by sketch-estimated column overlap + schema
  /// compatibility with deterministic (score desc, name asc) order.
  /// ErrorCode::kNotFound for unknown names, kCancelled when the context's
  /// token fires mid-search, kDeadlineExceeded when its deadline expires.
  /// Under BudgetPolicy::kTruncate a deadline stop instead returns the
  /// best-so-far candidates (scored over whatever the index held) and
  /// records the cut in `truncation` when given. The discovery index is
  /// brought up to date with the registry (TableRegistry::version())
  /// before the search. A bare CancelToken still converts implicitly.
  Result<std::vector<DiscoveryCandidate>> DiscoverUnionable(
      const std::string& name, size_t k,
      const RequestContext& ctx = RequestContext(),
      Truncation* truncation = nullptr) const;

  /// Ad-hoc form: sketches `query` in place (not registered; the session
  /// dictionary is untouched — sketches hash cell content directly) and
  /// searches the lake with it.
  Result<std::vector<DiscoveryCandidate>> DiscoverUnionable(
      const Table& query, size_t k,
      const RequestContext& ctx = RequestContext(),
      Truncation* truncation = nullptr) const;

  /// Discovery feeding integration: finds the top-k unionable partners of
  /// registered table `query_name`, then streams the integration of
  /// {query_name} ∪ partners (in rank order — that order defines TID
  /// numbering) through the align → match → fuzzy-FD pipeline into `sink`.
  /// Output is bit-identical to IntegrateToSink on the same name list.
  /// `request.cancel` / `request.progress` cover the discovery stage too
  /// (Stage::kDiscover). When `discovered` is non-null it receives the
  /// candidate list that was integrated.
  Result<FuzzyFdReport> DiscoverAndIntegrate(
      const std::string& query_name, size_t k, RowSink* sink,
      const RequestOptions& request = RequestOptions(),
      std::vector<DiscoveryCandidate>* discovered = nullptr) const;

  // ------------------------------------------------------------ session
  const EngineOptions& options() const { return options_; }
  /// The cross-call cache (inspect hits()/misses() to observe reuse).
  const EmbeddingCache& embedding_cache() const { return *cache_; }
  const std::shared_ptr<const EmbeddingModel>& model() const {
    return model_;
  }
  /// The session interning dictionary (inspect stats() to observe column-
  /// cache reuse across Integrate calls).
  const SessionDict& session_dict() const { return *session_dict_; }
  /// AlignedSchema cache traffic: requests that skipped re-alignment
  /// because the same name set was aligned at the same registry version.
  uint64_t schema_cache_hits() const;
  /// Admission-control traffic (admitted / rejected / queued) across the
  /// engine's lifetime.
  AdmissionStats admission_stats() const;
  /// One consistent scrape of the engine's metrics registry plus the
  /// engine-level gauges sampled from their single authoritative sources
  /// at call time (admission/catalog/dict/pool stats, schema cache hits,
  /// registered tables, discovery index size, process peak RSS). The text
  /// exposition (`RenderMetricsText`) renders exactly this snapshot, so
  /// the two can never disagree. Request counters and per-stage latency
  /// histograms accumulate across the engine's lifetime.
  lakefuzz::MetricsSnapshot MetricsSnapshot() const;
  /// The registry behind MetricsSnapshot(): the engine-private one, or the
  /// external registry passed via EngineOptions::metrics.
  MetricsRegistry& metrics_registry() const { return *metrics_; }
  /// The discovery index (sketch + LSH state; num_tables/num_columns for
  /// observability). Kept in sync with the registry by Register/Unregister
  /// when discovery.build_at_register is set, and by the version-mismatch
  /// resync in every discovery call either way.
  const DiscoveryIndex& discovery_index() const { return *discovery_; }

 private:
  struct PreparedRequest {
    std::vector<std::shared_ptr<const Table>> pinned;  ///< lifetime anchors
    TableList tables;
    AlignedSchema aligned;
    double align_seconds = 0.0;
    FuzzyFdOptions effective;  ///< request knobs + session resources
  };

  /// One memoized alignment: valid while the registry still is at
  /// `version` (any mutation bumps it, so stale snapshots never resolve).
  struct CachedSchema {
    uint64_t version = 0;
    AlignedSchema aligned;
  };

  LakeEngine(EngineOptions options,
             std::shared_ptr<const EmbeddingModel> model,
             std::shared_ptr<EmbeddingCache> cache,
             std::unique_ptr<ThreadPool> pool);

  /// RAII admission slot: releases the concurrency gate (and wakes one
  /// queued waiter) on destruction. Constructed only after Admit succeeds.
  class AdmissionSlot {
   public:
    explicit AdmissionSlot(const LakeEngine* engine) : engine_(engine) {}
    ~AdmissionSlot();
    AdmissionSlot(const AdmissionSlot&) = delete;
    AdmissionSlot& operator=(const AdmissionSlot&) = delete;

   private:
    const LakeEngine* engine_;
  };

  /// Resolves names, aligns, and merges session resources into the
  /// request's FuzzyFdOptions — the shared front half of both request
  /// forms. `ctx` is the request's lifecycle bundle (already carrying the
  /// root trace span, when the request is traced).
  Result<PreparedRequest> Prepare(const std::vector<std::string>& names,
                                  const RequestOptions& request,
                                  const RequestContext& ctx) const;

  /// Brings the discovery index to the current registry version (resync on
  /// mismatch) — the invalidation contract every discovery query runs
  /// behind. The bulk sketch honors the context's token and deadline.
  Status EnsureDiscoverySynced(const RequestContext& ctx) const;

  /// Concurrency gate (EngineOptions::max_concurrent_requests). Blocks in
  /// the bounded wait queue until a slot frees, polling the context's token
  /// and deadline; overload past the queue bound rejects immediately with
  /// kResourceExhausted. On OK the caller owns one slot (pair with an
  /// AdmissionSlot).
  Status Admit(const RequestContext& ctx) const;
  void ReleaseAdmission() const;

  /// IntegrateToSink minus the admission gate, so DiscoverAndIntegrate
  /// admits exactly once for its whole discover → integrate span.
  Result<FuzzyFdReport> IntegrateToSinkImpl(
      const std::vector<std::string>& names, RowSink* sink,
      const RequestOptions& request, const RequestContext& ctx) const;

  /// Stable pointers into the metrics registry, resolved once at
  /// construction (increments never take the registry lock).
  struct EngineMetrics {
    Counter* requests_total = nullptr;
    Counter* requests_failed = nullptr;
    Counter* requests_truncated = nullptr;
    Counter* fd_search_nodes = nullptr;
    Counter* fd_result_tuples = nullptr;
    Counter* fd_intra_tasks = nullptr;
    Counter* fd_task_busy_ns = nullptr;
    Counter* values_rewritten = nullptr;
    Counter* discovery_queries = nullptr;
    Histogram* request_ns = nullptr;
    Histogram* align_ns = nullptr;
    Histogram* match_ns = nullptr;
    Histogram* rewrite_ns = nullptr;
    Histogram* fd_ns = nullptr;
  };

  /// Picks the request id: the caller's, or the engine's next sequential.
  uint64_t ResolveRequestId(const RequestOptions& request) const;

  /// Per-request epilogue shared by every request form: bumps the request
  /// counters, observes the per-stage latency histograms (from `report`,
  /// the single source bench JSON also reads), and emits the slow-request
  /// line when EngineOptions::slow_request_ms is armed.
  void RecordRequest(const char* mode, uint64_t request_id,
                     const std::vector<std::string>& names,
                     const Status& status, const FuzzyFdReport* report,
                     double total_seconds, Tracer* tracer) const;

  /// Engine-level gauges refreshed from their authoritative sources on
  /// every scrape (the MetricsSnapshot() front half).
  void RefreshGauges() const;

  EngineOptions options_;
  std::shared_ptr<const EmbeddingModel> model_;
  std::shared_ptr<EmbeddingCache> cache_;
  std::unique_ptr<ThreadPool> pool_;
  /// Metrics: the external registry from EngineOptions::metrics, or the
  /// engine-private owned_metrics_. em_ caches the metric pointers.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  EngineMetrics em_;
  /// Engine-assigned request-id sequence (RequestOptions::request_id == 0).
  mutable std::atomic<uint64_t> next_request_id_{0};
  std::unique_ptr<SessionDict> session_dict_;
  std::unique_ptr<DiscoveryIndex> discovery_;
  TableRegistry registry_;

  /// AlignedSchema per (alignment mode, ordered name set), validated
  /// against the registry version its snapshot was taken at.
  mutable std::mutex schema_mu_;
  mutable std::unordered_map<std::string, CachedSchema> schema_cache_;
  mutable uint64_t schema_cache_hits_ = 0;

  /// Catalog association + counters. catalog_mu_ serializes OpenCatalog /
  /// SaveCatalog against each other (registry/dict/discovery mutations from
  /// other threads stay safe — those structures have their own locks).
  /// Folds a successful open/refresh report into catalog_stats_ (caller
  /// holds catalog_mu_).
  void AccumulateOpen(const CatalogOpenReport& report) const;

  mutable std::mutex catalog_mu_;
  CatalogState catalog_state_;
  mutable CatalogStats catalog_stats_;
  /// Read-only replica mode (set once by OpenReplica before any request).
  bool replica_ = false;
  /// The replica's generation pin file (guarded by catalog_mu_); removed on
  /// refresh-to-newer-generation and on destruction.
  std::string replica_pin_;

  /// Admission gate state (see Admit).
  mutable std::mutex admission_mu_;
  mutable std::condition_variable admission_cv_;
  mutable size_t active_requests_ = 0;
  mutable size_t waiting_requests_ = 0;
  mutable AdmissionStats admission_stats_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CORE_ENGINE_H_
