#include "core/engine_registry.h"

#include <algorithm>

#include "util/str.h"

namespace lakefuzz {

Status TableRegistry::Register(std::string name, Table table) {
  return Register(std::move(name),
                  std::make_shared<const Table>(std::move(table)));
}

Status TableRegistry::Register(std::string name,
                               std::shared_ptr<const Table> table,
                               uint64_t* version) {
  if (name.empty()) {
    return Status::InvalidArgument("registry table name must be non-empty");
  }
  if (table == nullptr) {
    return Status::InvalidArgument(
        StrFormat("cannot register null table '%s'", name.c_str()));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tables_.emplace(std::move(name), std::move(table));
  if (!inserted) {
    return Status::AlreadyExists(StrFormat(
        "table '%s' is already registered", it->first.c_str()));
  }
  ++version_;
  if (version != nullptr) *version = version_;
  return Status::OK();
}

Result<std::shared_ptr<const Table>> TableRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(
        StrFormat("table '%s' is not registered", name.c_str()));
  }
  return it->second;
}

Result<std::vector<std::shared_ptr<const Table>>> TableRegistry::GetMany(
    const std::vector<std::string>& names, uint64_t* version) const {
  std::vector<std::shared_ptr<const Table>> out;
  out.reserve(names.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& name : names) {
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound(
          StrFormat("table '%s' is not registered", name.c_str()));
    }
    out.push_back(it->second);
  }
  if (version != nullptr) *version = version_;
  return out;
}

bool TableRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(name) == 0) return false;
  ++version_;
  return true;
}

Status TableRegistry::Unregister(const std::string& name) {
  if (!Remove(name)) {
    return Status::NotFound(
        StrFormat("table '%s' is not registered", name.c_str()));
  }
  return Status::OK();
}

std::shared_ptr<const Table> TableRegistry::Take(const std::string& name,
                                                 uint64_t* version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return nullptr;
  std::shared_ptr<const Table> out = std::move(it->second);
  tables_.erase(it);
  ++version_;
  if (version != nullptr) *version = version_;
  return out;
}

uint64_t TableRegistry::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

std::vector<std::string> TableRegistry::Names() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(tables_.size());
    for (const auto& [name, table] : tables_) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, std::shared_ptr<const Table>>>
TableRegistry::Snapshot(uint64_t* version) const {
  std::vector<std::pair<std::string, std::shared_ptr<const Table>>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(tables_.size());
    for (const auto& [name, table] : tables_) out.emplace_back(name, table);
    if (version != nullptr) *version = version_;
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

size_t TableRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.size();
}

}  // namespace lakefuzz
