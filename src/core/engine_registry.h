// TableRegistry: the named-table store behind a LakeEngine session.
//
// A long-lived engine serves many Integrate calls over one lake, so tables
// are registered once under a unique name and borrowed per request instead
// of being re-read / re-copied per call. Entries are immutable
// shared_ptr<const Table>: a request pins the snapshot it resolved even if
// another thread replaces or removes the name mid-flight, so there is no
// torn read and no lifetime coupling between requests.
#ifndef LAKEFUZZ_CORE_ENGINE_REGISTRY_H_
#define LAKEFUZZ_CORE_ENGINE_REGISTRY_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "table/table.h"
#include "util/result.h"

namespace lakefuzz {

/// Thread-safe name → table map. All methods may be called concurrently.
class TableRegistry {
 public:
  /// Registers a table under `name`. ErrorCode::kAlreadyExists when the
  /// name is taken, kInvalidArgument on an empty name.
  Status Register(std::string name, Table table);

  /// Shared-ownership form: registers an externally owned snapshot without
  /// copying (the shims wrap caller-owned tables in non-owning aliases;
  /// callers sharing real ownership just pass their shared_ptr).
  Status Register(std::string name, std::shared_ptr<const Table> table);

  /// The snapshot registered under `name`, or ErrorCode::kNotFound.
  Result<std::shared_ptr<const Table>> Get(const std::string& name) const;

  /// Resolves every name (in the given order) under one lock acquisition,
  /// so an Integrate request sees a consistent snapshot of the registry.
  /// Fails with kNotFound naming the first missing table.
  Result<std::vector<std::shared_ptr<const Table>>> GetMany(
      const std::vector<std::string>& names) const;

  /// Removes `name`; false when absent. In-flight requests holding the
  /// snapshot are unaffected.
  bool Remove(const std::string& name);

  /// Registered names, sorted (deterministic listing for CLIs and tests).
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Table>> tables_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CORE_ENGINE_REGISTRY_H_
