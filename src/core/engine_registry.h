// TableRegistry: the named-table store behind a LakeEngine session.
//
// A long-lived engine serves many Integrate calls over one lake, so tables
// are registered once under a unique name and borrowed per request instead
// of being re-read / re-copied per call. Entries are immutable
// shared_ptr<const Table>: a request pins the snapshot it resolved even if
// another thread replaces or removes the name mid-flight, so there is no
// torn read and no lifetime coupling between requests.
#ifndef LAKEFUZZ_CORE_ENGINE_REGISTRY_H_
#define LAKEFUZZ_CORE_ENGINE_REGISTRY_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "table/table.h"
#include "util/result.h"

namespace lakefuzz {

/// Thread-safe name → table map. All methods may be called concurrently.
class TableRegistry {
 public:
  /// Registers a table under `name`. ErrorCode::kAlreadyExists when the
  /// name is taken, kInvalidArgument on an empty name.
  Status Register(std::string name, Table table);

  /// Shared-ownership form: registers an externally owned snapshot without
  /// copying (the shims wrap caller-owned tables in non-owning aliases;
  /// callers sharing real ownership just pass their shared_ptr). On
  /// success, a non-null `version` receives the registry version this
  /// registration produced — read under the same lock, so derived indexes
  /// can attribute the mutation exactly even under concurrent writers.
  Status Register(std::string name, std::shared_ptr<const Table> table,
                  uint64_t* version = nullptr);

  /// The snapshot registered under `name`, or ErrorCode::kNotFound.
  Result<std::shared_ptr<const Table>> Get(const std::string& name) const;

  /// Resolves every name (in the given order) under one lock acquisition,
  /// so an Integrate request sees a consistent snapshot of the registry.
  /// Fails with kNotFound naming the first missing table. When `version` is
  /// non-null it receives the registry version the snapshot was taken at
  /// (same lock hold), the key derived caches — the engine's AlignedSchema
  /// cache — validate against.
  Result<std::vector<std::shared_ptr<const Table>>> GetMany(
      const std::vector<std::string>& names,
      uint64_t* version = nullptr) const;

  /// Removes `name`; false when absent. In-flight requests holding the
  /// snapshot are unaffected.
  bool Remove(const std::string& name);

  /// Typed removal: ErrorCode::kNotFound when `name` is absent (so callers
  /// branch on codes, matching Register's kAlreadyExists), version bump on
  /// success. In-flight requests holding the snapshot are unaffected.
  Status Unregister(const std::string& name);

  /// Atomic remove-and-return: the snapshot that was registered under
  /// `name`, or null when absent. Lets a caller release exactly the
  /// registration it removed (LakeEngine unpins it from the session
  /// dictionary) without racing a concurrent re-registration of the name.
  /// On removal, a non-null `version` receives the resulting registry
  /// version (same lock hold, like Register).
  std::shared_ptr<const Table> Take(const std::string& name,
                                    uint64_t* version = nullptr);

  /// Mutation counter: bumped by every successful Register and Remove.
  /// Equal versions ⇒ identical name → snapshot mapping.
  uint64_t version() const;

  /// Registered names, sorted (deterministic listing for CLIs and tests).
  std::vector<std::string> Names() const;

  /// Every (name, snapshot) pair sorted by name, resolved in one lock hold
  /// together with the registry version — the consistent view derived
  /// indexes (the engine's discovery index) resync against.
  std::vector<std::pair<std::string, std::shared_ptr<const Table>>> Snapshot(
      uint64_t* version = nullptr) const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Table>> tables_;
  uint64_t version_ = 0;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CORE_ENGINE_REGISTRY_H_
