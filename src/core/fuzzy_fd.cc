#include "core/fuzzy_fd.h"

#include <algorithm>
#include <unordered_map>

#include "assignment/parallel_cost.h"
#include "fd/session_dict.h"
#include "fd/value_dict.h"
#include "obs/trace.h"
#include "util/fault_injection.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace lakefuzz {
namespace {

/// Original typed Value for each distinct string of one source column
/// (first occurrence wins; ToString is injective enough in practice, and
/// collisions only affect which typed twin survives the rewrite).
using StringToValue = std::unordered_map<std::string, Value>;

/// Output of the FD stage proper: the problem (owning the decode
/// dictionary) plus the post-subsumption interned result rows. Keeping
/// results interned here is what lets RunToBatches stream decoded tuples
/// without ever materializing the full result set.
struct FdStage {
  FdProblem problem;
  std::vector<FdCodeTuple> codes;
  FdStats stats;
  /// Pool the stage ran on, alive for the caller's decode: the session
  /// pool, a stage-owned one (parallel executor without a session), or
  /// null in serial mode.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = nullptr;
};

/// Shared FD stage of the fuzzy pipeline and the regular-FD baseline:
/// outer-union build + executor run to interned codes. With a session
/// dictionary the build interns codes straight from the source tables
/// (tables pinned in the dictionary scatter memoized column codes);
/// otherwise the legacy padded-row Build runs. Also fills
/// `report->fd_build_seconds` / `report->fd_stats` when a report is given;
/// the caller owns the fd_seconds watch (decode time differs per
/// consumer).
Result<FdStage> RunFdStage(const TableList& tables,
                           const AlignedSchema& aligned,
                           const FdOptions& fd_options, bool parallel,
                           size_t num_threads, ThreadPool* pool,
                           SessionDict* session_dict,
                           const RequestContext& ctx,
                           const ProgressFn& progress,
                           FuzzyFdReport* report) {
  ReportProgress(progress, Stage::kFdBuild, 0, 1);
  LAKEFUZZ_FAULT_POINT("fd/build");
  ScopedSpan build_span(ctx, "fd_build");
  Stopwatch build_watch;
  Result<FdProblem> built =
      session_dict != nullptr
          ? FdProblem::BuildInterned(tables, aligned, session_dict)
          : FdProblem::Build(tables, aligned);
  if (!built.ok()) return built.status();
  FdProblem problem = std::move(built).value();
  const double build_seconds = build_watch.ElapsedSeconds();
  build_span.AddAttr("tuples", static_cast<int64_t>(problem.num_tuples()));
  build_span.End();
  ReportProgress(progress, Stage::kFdBuild, 1, 1);
  // Post-build stop: under kTruncate a deadline that expired during the
  // build falls through to the executor, whose first per-component
  // checkpoint records the truncation (0 components completed) — the
  // graceful-degradation path, not a hard error.
  Status post_build = ctx.CheckStop("full disjunction");
  if (!post_build.ok() && !ctx.ShouldTruncate(post_build.code())) {
    return post_build;
  }

  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* stage_pool = pool;
  if (parallel && stage_pool == nullptr) {
    // Poolless parallel caller (the legacy executor path): one stage pool
    // shared by the executor and the caller's decode, so decode stays
    // parallel as it was before the RunCodes split.
    owned_pool = std::make_unique<ThreadPool>(ResolveNumThreads(num_threads));
    stage_pool = owned_pool.get();
  }
  FdStats stats;
  Result<std::vector<FdCodeTuple>> codes = Status::Internal("unreachable");
  if (parallel) {
    ParallelFdOptions popts;
    popts.fd = fd_options;
    popts.num_threads = num_threads;
    popts.pool = stage_pool;
    codes = ParallelFullDisjunction(popts).RunCodes(&problem, &stats, ctx,
                                                    progress);
  } else {
    codes = FullDisjunction(fd_options).RunCodes(&problem, &stats, ctx,
                                                 progress);
  }
  if (!codes.ok()) return codes.status();
  std::vector<FdCodeTuple> code_vec = std::move(codes).value();

  // Result-tuple budget, enforced once here post-subsumption so both the
  // materializing and the streaming consumers see the same cut.
  if (ctx.budget.max_result_tuples > 0 &&
      code_vec.size() > ctx.budget.max_result_tuples) {
    if (ctx.policy != BudgetPolicy::kTruncate) {
      return Status::ResourceExhausted(
          "result budget exhausted (ResourceBudget::max_result_tuples)");
    }
    code_vec.resize(ctx.budget.max_result_tuples);
    if (!stats.truncation.truncated) {
      stats.truncation.truncated = true;
      stats.truncation.stage = Stage::kEmit;
      stats.truncation.reason =
          "result budget exhausted (ResourceBudget::max_result_tuples)";
    }
    stats.truncation.tuples_emitted = code_vec.size();
  }

  if (report != nullptr) {
    report->fd_build_seconds = build_seconds;
    report->fd_stats = stats;
    report->truncation.Merge(stats.truncation);
  }
  return FdStage{std::move(problem), std::move(code_vec), stats,
                 std::move(owned_pool), stage_pool};
}

/// Decodes an FD stage's full code set into an FdResult (the
/// materializing consumers' shared epilogue).
FdResult DecodeStage(const FdStage& stage, ThreadPool* pool) {
  FdResult result;
  result.stats = stage.stats;
  result.tuples.resize(stage.codes.size());
  MaybeParallelFor(pool, stage.codes.size(), [&](size_t i) {
    result.tuples[i] = DecodeCodeTuple(stage.codes[i], stage.problem.dict());
  });
  return result;
}

/// Shared argument guard of the streaming entry points, cheap enough to
/// run before any pipeline work.
Status ValidateStreamArgs(size_t batch_rows, const FdBatchFn& emit) {
  if (batch_rows == 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  if (emit == nullptr) {
    return Status::InvalidArgument("streaming requires an emit callback");
  }
  return Status::OK();
}

/// Shared back half of the streaming entry points: FD stage over
/// already-consistent tables, then batched decode + emission.
Result<size_t> StreamFdStage(const TableList& tables,
                             const AlignedSchema& aligned,
                             const FdOptions& fd_options, bool parallel,
                             size_t num_threads, ThreadPool* pool,
                             SessionDict* session_dict,
                             const RequestContext& ctx,
                             const ProgressFn& progress, size_t batch_rows,
                             const FdBatchFn& emit, FuzzyFdReport* report);

/// Decodes `codes` in windows of `batch_rows` and hands each window to
/// `emit` (reusing one batch buffer). Returns the number of tuples emitted.
/// A stop between batches aborts the stream — except a deadline/budget stop
/// under kTruncate, which ends it cleanly after the batches already
/// delivered and records the cut in `truncation` (when given).
Result<size_t> EmitCodeBatches(const FdProblem& problem,
                               const std::vector<FdCodeTuple>& codes,
                               size_t batch_rows, const FdBatchFn& emit,
                               const RequestContext& ctx,
                               const ProgressFn& progress,
                               Truncation* truncation) {
  ScopedSpan emit_span(ctx, "emit");
  std::vector<FdResultTuple> batch;
  batch.reserve(std::min(batch_rows, codes.size()));
  size_t emitted = 0;
  for (size_t start = 0; start < codes.size(); start += batch_rows) {
    Status stop = ctx.CheckStop("result emission");
    if (!stop.ok()) {
      if (!ctx.ShouldTruncate(stop.code())) return stop;
      if (truncation != nullptr) {
        if (!truncation->truncated) {
          truncation->truncated = true;
          truncation->stage = Stage::kEmit;
          truncation->reason = stop.message();
        }
        truncation->tuples_emitted = emitted;
      }
      break;
    }
    LAKEFUZZ_FAULT_POINT("sink/write");
    const size_t end = std::min(codes.size(), start + batch_rows);
    batch.clear();
    for (size_t i = start; i < end; ++i) {
      batch.push_back(DecodeCodeTuple(codes[i], problem.dict()));
    }
    LAKEFUZZ_RETURN_IF_ERROR(emit(batch));
    emitted += batch.size();
    ReportProgress(progress, Stage::kEmit, emitted, codes.size());
  }
  if (codes.empty()) ReportProgress(progress, Stage::kEmit, 0, 0);
  emit_span.AddAttr("tuples", static_cast<int64_t>(emitted));
  emit_span.AddAttr(
      "batches",
      static_cast<int64_t>((emitted + batch_rows - 1) / batch_rows));
  return emitted;
}

Result<size_t> StreamFdStage(const TableList& tables,
                             const AlignedSchema& aligned,
                             const FdOptions& fd_options, bool parallel,
                             size_t num_threads, ThreadPool* pool,
                             SessionDict* session_dict,
                             const RequestContext& ctx,
                             const ProgressFn& progress, size_t batch_rows,
                             const FdBatchFn& emit, FuzzyFdReport* report) {
  // The fd span brackets exactly the fd_watch region (build + enumerate +
  // subsume + batch decode/emit), so its duration reconciles with
  // FuzzyFdReport::fd_seconds; the sub-stages hang off it as children.
  ScopedSpan fd_span(ctx, "fd");
  const RequestContext fd_ctx = ctx.WithSpan(fd_span.id());
  Stopwatch fd_watch;
  LAKEFUZZ_ASSIGN_OR_RETURN(
      FdStage stage,
      RunFdStage(tables, aligned, fd_options, parallel, num_threads, pool,
                 session_dict, fd_ctx, progress, report));
  // Emitting an already-truncated partial is cleanup: it still honors
  // cancellation but is not re-aborted by the expired deadline.
  const RequestContext emit_ctx =
      stage.stats.truncation.truncated ? fd_ctx.CancelOnly() : fd_ctx;
  Result<size_t> emitted = EmitCodeBatches(
      stage.problem, stage.codes, batch_rows, emit, emit_ctx, progress,
      report != nullptr ? &report->truncation : nullptr);
  fd_span.AddAttr("results", static_cast<int64_t>(stage.codes.size()));
  fd_span.AddAttr("search_nodes",
                  static_cast<int64_t>(stage.stats.search_nodes));
  fd_span.AddAttr("components",
                  static_cast<int64_t>(stage.stats.num_components));
  fd_span.End();
  // fd_seconds covers batch decode + sink emission, mirroring the
  // materializing path where decode sits inside the fd watch.
  if (report != nullptr) report->fd_seconds = fd_watch.ElapsedSeconds();
  return emitted;
}

/// Match + rewrite output in borrowed form: tables the rewrite stage never
/// touched stay caller-owned pointers (so a session dictionary can serve
/// their memoized column codes), only modified tables are materialized.
struct RewrittenSet {
  std::vector<Table> storage;  ///< rewritten copies, in input order
  TableList list;              ///< per input: original pointer or &storage[k]
  std::vector<char> borrowed;  ///< list[l] points at the caller's table
};

/// The match + rewrite stages (paper Sec 2.2): shared core of the public
/// copying RewriteTables and the borrowing pipeline entry points.
Result<RewrittenSet> RewriteCore(const FuzzyFdOptions& options,
                                 const TableList& tables,
                                 const AlignedSchema& aligned,
                                 FuzzyFdReport* report) {
  LAKEFUZZ_RETURN_IF_ERROR(ValidateAlignedSchema(aligned, tables));
  // match/rewrite spans bracket exactly the match_watch/rewrite_watch
  // regions so trace durations reconcile with the report's stage seconds.
  ScopedSpan match_span(options.context, "match");
  Stopwatch match_watch;
  ValueMatcherOptions matcher_options = options.matcher;
  // Session plumbing: the request's token, deadline, and pool reach the
  // matcher unless the caller already set matcher-specific ones.
  if (!matcher_options.cancel.can_cancel()) {
    matcher_options.cancel = options.context.cancel;
  }
  if (!matcher_options.deadline.set()) {
    matcher_options.deadline = options.context.deadline;
  }
  if (matcher_options.pool == nullptr) {
    matcher_options.pool = options.pool;
  }
  ValueMatcher matcher(matcher_options);

  // Per (table, column): value-string → replacement Value.
  std::vector<std::vector<std::unordered_map<std::string, Value>>> rewrites(
      tables.size());
  for (size_t l = 0; l < tables.size(); ++l) {
    rewrites[l].resize(tables[l]->NumColumns());
  }

  double match_seconds = 0.0;
  size_t sets_matched = 0;
  ValueMatchStats agg_stats;

  // Under kTruncate, a deadline (or matcher-internal budget) stop here
  // degrades instead of failing: matching stops at the current universal
  // column and integration proceeds over the groups found so far — the FD
  // stage then truncates in turn at its own first checkpoint.
  auto degrade = [&](const Status& stop) {
    if (report != nullptr && !report->truncation.truncated) {
      report->truncation.truncated = true;
      report->truncation.stage = Stage::kMatch;
      report->truncation.reason = stop.message();
    }
  };

  const size_t num_universal = aligned.NumUniversal();
  for (size_t u = 0; u < num_universal; ++u) {
    ReportProgress(options.progress, Stage::kMatch, u, num_universal);
    Status stop = options.context.CheckStop("fuzzy value matching");
    if (!stop.ok()) {
      if (!options.context.ShouldTruncate(stop.code())) return stop;
      degrade(stop);
      break;
    }
    auto sources = aligned.SourcesOf(u);
    if (sources.size() < 2) continue;  // nothing to make consistent

    // Distinct value strings per aligning column, plus their typed originals.
    std::vector<std::vector<std::string>> columns(sources.size());
    std::vector<StringToValue> originals(sources.size());
    for (size_t s = 0; s < sources.size(); ++s) {
      auto [l, c] = sources[s];
      for (const Value& v : tables[l]->DistinctNonNull(c)) {
        std::string str = v.ToString();
        if (originals[s].emplace(str, v).second) {
          columns[s].push_back(std::move(str));
        }
      }
    }

    Result<ValueMatchResult> matched_result = matcher.MatchColumns(columns);
    if (!matched_result.ok()) {
      if (!options.context.ShouldTruncate(matched_result.code())) {
        return matched_result.status();
      }
      degrade(matched_result.status());
      break;
    }
    ValueMatchResult matched = std::move(matched_result).value();
    ++sets_matched;
    agg_stats.exact_matches += matched.stats.exact_matches;
    agg_stats.assignment_matches += matched.stats.assignment_matches;
    agg_stats.dense_solves += matched.stats.dense_solves;
    agg_stats.sparse_solves += matched.stats.sparse_solves;
    agg_stats.cost_evaluations += matched.stats.cost_evaluations;
    agg_stats.pruned_evaluations += matched.stats.pruned_evaluations;
    agg_stats.embedding_cache_hits += matched.stats.embedding_cache_hits;
    agg_stats.embedding_cache_misses += matched.stats.embedding_cache_misses;
    agg_stats.thresholds_used.insert(agg_stats.thresholds_used.end(),
                                     matched.stats.thresholds_used.begin(),
                                     matched.stats.thresholds_used.end());

    for (const auto& g : matched.groups) {
      if (g.members.size() < 2) continue;
      // Typed representative: the original Value of the elected member.
      const auto& [rep_src, rep_str] = g.members[g.representative_member];
      const Value& rep_value = originals[rep_src].at(rep_str);
      for (const auto& [src, str] : g.members) {
        if (str == rep_str) continue;
        auto [l, c] = sources[src];
        rewrites[l][c].emplace(str, rep_value);
      }
    }
  }
  ReportProgress(options.progress, Stage::kMatch, num_universal,
                 num_universal);
  match_seconds = match_watch.ElapsedSeconds();
  match_span.AddAttr("sets_matched", static_cast<int64_t>(sets_matched));
  match_span.AddAttr("cost_evaluations",
                     static_cast<int64_t>(agg_stats.cost_evaluations));
  match_span.AddAttr(
      "embedding_cache_hits",
      static_cast<int64_t>(agg_stats.embedding_cache_hits));
  match_span.End();

  ScopedSpan rewrite_span(options.context, "rewrite");
  Stopwatch rewrite_watch;
  ReportProgress(options.progress, Stage::kRewrite, 0, tables.size());
  RewrittenSet out;
  // Reserve up front: list holds pointers into storage, which must not
  // reallocate as modified tables are appended.
  out.storage.reserve(tables.size());
  out.list.reserve(tables.size());
  out.borrowed.assign(tables.size(), 0);
  size_t values_rewritten = 0;
  for (size_t l = 0; l < tables.size(); ++l) {
    bool touched = false;
    for (const auto& map : rewrites[l]) {
      if (!map.empty()) {
        touched = true;
        break;
      }
    }
    if (!touched) {
      // No value of this table matched anything fuzzily: borrow the
      // caller's table instead of copying it. On the engine path this keeps
      // the registry snapshot's identity, so its interned column codes stay
      // cache hits.
      out.borrowed[l] = 1;
      out.list.push_back(tables[l]);
      continue;
    }
    Table t = *tables[l];
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      const auto& map = rewrites[l][c];
      if (map.empty()) continue;
      // Interned scan (ROADMAP PR-2 follow-up): cells are interned into a
      // per-column ValueDict, so the string key is materialized and hashed
      // once per *distinct* value; every repeat of a value hits the flat
      // code-indexed replacement table instead of re-running ToString +
      // string hashing per cell. Codes are dense, so the table grows by
      // exactly one slot per new value; slot 0 is the (unused) null code.
      ValueDict dict;
      std::vector<const Value*> replacement(1, nullptr);
      for (size_t r = 0; r < t.NumRows(); ++r) {
        const Value& v = t.At(r, c);
        if (v.is_null()) continue;
        const uint32_t code = dict.Intern(v);
        if (code >= replacement.size()) {
          auto it = map.find(v.ToString());
          replacement.push_back(it != map.end() ? &it->second : nullptr);
        }
        if (replacement[code] != nullptr) {
          t.Set(r, c, *replacement[code]);
          ++values_rewritten;
        }
      }
    }
    out.storage.push_back(std::move(t));
    out.list.push_back(&out.storage.back());
  }
  ReportProgress(options.progress, Stage::kRewrite, tables.size(),
                 tables.size());
  rewrite_span.AddAttr("values_rewritten",
                       static_cast<int64_t>(values_rewritten));
  rewrite_span.End();

  if (report != nullptr) {
    report->match_seconds = match_seconds;
    report->rewrite_seconds = rewrite_watch.ElapsedSeconds();
    report->aligned_sets_matched = sets_matched;
    report->values_rewritten = values_rewritten;
    report->match_stats = agg_stats;
  }
  return out;
}

}  // namespace

Result<std::vector<Table>> FuzzyFullDisjunction::RewriteTables(
    const TableList& tables, const AlignedSchema& aligned,
    FuzzyFdReport* report) const {
  LAKEFUZZ_ASSIGN_OR_RETURN(RewrittenSet set,
                            RewriteCore(options_, tables, aligned, report));
  std::vector<Table> out;
  out.reserve(tables.size());
  size_t k = 0;
  for (size_t l = 0; l < tables.size(); ++l) {
    if (set.borrowed[l]) {
      out.push_back(*tables[l]);
    } else {
      out.push_back(std::move(set.storage[k++]));
    }
  }
  return out;
}

Result<std::vector<Table>> FuzzyFullDisjunction::RewriteTables(
    const std::vector<Table>& tables, const AlignedSchema& aligned,
    FuzzyFdReport* report) const {
  return RewriteTables(BorrowTables(tables), aligned, report);
}

Result<FdResult> FuzzyFullDisjunction::RunToTuples(
    const TableList& tables, const AlignedSchema& aligned,
    FuzzyFdReport* report) const {
  LAKEFUZZ_ASSIGN_OR_RETURN(RewrittenSet set,
                            RewriteCore(options_, tables, aligned, report));
  ScopedSpan fd_span(options_.context, "fd");
  const RequestContext fd_ctx = options_.context.WithSpan(fd_span.id());
  Stopwatch fd_watch;
  LAKEFUZZ_ASSIGN_OR_RETURN(
      FdStage stage,
      RunFdStage(set.list, aligned, options_.fd, options_.parallel,
                 options_.num_threads, options_.pool, options_.session_dict,
                 fd_ctx, options_.progress, report));
  FdResult result = DecodeStage(stage, stage.pool);
  fd_span.AddAttr("results", static_cast<int64_t>(result.tuples.size()));
  fd_span.AddAttr("search_nodes",
                  static_cast<int64_t>(stage.stats.search_nodes));
  fd_span.AddAttr("components",
                  static_cast<int64_t>(stage.stats.num_components));
  fd_span.End();
  if (report != nullptr) report->fd_seconds = fd_watch.ElapsedSeconds();
  return result;
}

Result<FdResult> FuzzyFullDisjunction::RunToTuples(
    const std::vector<Table>& tables, const AlignedSchema& aligned,
    FuzzyFdReport* report) const {
  return RunToTuples(BorrowTables(tables), aligned, report);
}

Result<Table> FuzzyFullDisjunction::Run(const TableList& tables,
                                        const AlignedSchema& aligned,
                                        FuzzyFdReport* report) const {
  LAKEFUZZ_ASSIGN_OR_RETURN(FdResult result,
                            RunToTuples(tables, aligned, report));
  return FdResultsToTable(result.tuples, aligned.universal_names,
                          "fuzzy_full_disjunction",
                          options_.include_provenance);
}

Result<Table> FuzzyFullDisjunction::Run(const std::vector<Table>& tables,
                                        const AlignedSchema& aligned,
                                        FuzzyFdReport* report) const {
  return Run(BorrowTables(tables), aligned, report);
}

Result<size_t> FuzzyFullDisjunction::RunToBatches(
    const TableList& tables, const AlignedSchema& aligned, size_t batch_rows,
    const FdBatchFn& emit, FuzzyFdReport* report) const {
  LAKEFUZZ_RETURN_IF_ERROR(ValidateStreamArgs(batch_rows, emit));
  LAKEFUZZ_ASSIGN_OR_RETURN(RewrittenSet set,
                            RewriteCore(options_, tables, aligned, report));
  return StreamFdStage(set.list, aligned, options_.fd, options_.parallel,
                       options_.num_threads, options_.pool,
                       options_.session_dict, options_.context,
                       options_.progress, batch_rows, emit, report);
}

Result<FdResult> RegularFdBaseline(const TableList& tables,
                                   const AlignedSchema& aligned,
                                   const FdOptions& fd_options, bool parallel,
                                   size_t num_threads, FuzzyFdReport* report,
                                   ThreadPool* pool,
                                   const RequestContext& ctx,
                                   const ProgressFn& progress,
                                   SessionDict* session_dict) {
  ScopedSpan fd_span(ctx, "fd");
  const RequestContext fd_ctx = ctx.WithSpan(fd_span.id());
  Stopwatch fd_watch;
  LAKEFUZZ_ASSIGN_OR_RETURN(
      FdStage stage,
      RunFdStage(tables, aligned, fd_options, parallel, num_threads, pool,
                 session_dict, fd_ctx, progress, report));
  FdResult result = DecodeStage(stage, stage.pool);
  fd_span.AddAttr("results", static_cast<int64_t>(result.tuples.size()));
  fd_span.End();
  if (report != nullptr) report->fd_seconds = fd_watch.ElapsedSeconds();
  return result;
}

Result<FdResult> RegularFdBaseline(const std::vector<Table>& tables,
                                   const AlignedSchema& aligned,
                                   const FdOptions& fd_options, bool parallel,
                                   size_t num_threads, FuzzyFdReport* report) {
  return RegularFdBaseline(BorrowTables(tables), aligned, fd_options,
                           parallel, num_threads, report);
}

Result<size_t> RegularFdToBatches(const TableList& tables,
                                  const AlignedSchema& aligned,
                                  const FdOptions& fd_options, bool parallel,
                                  size_t num_threads, ThreadPool* pool,
                                  const RequestContext& ctx,
                                  const ProgressFn& progress,
                                  size_t batch_rows, const FdBatchFn& emit,
                                  FuzzyFdReport* report,
                                  SessionDict* session_dict) {
  LAKEFUZZ_RETURN_IF_ERROR(ValidateStreamArgs(batch_rows, emit));
  return StreamFdStage(tables, aligned, fd_options, parallel, num_threads,
                       pool, session_dict, ctx, progress, batch_rows, emit,
                       report);
}

}  // namespace lakefuzz
