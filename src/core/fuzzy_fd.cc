#include "core/fuzzy_fd.h"

#include <unordered_map>

#include "util/stopwatch.h"

namespace lakefuzz {
namespace {

/// Original typed Value for each distinct string of one source column
/// (first occurrence wins; ToString is injective enough in practice, and
/// collisions only affect which typed twin survives the rewrite).
using StringToValue = std::unordered_map<std::string, Value>;

}  // namespace

Result<std::vector<Table>> FuzzyFullDisjunction::RewriteTables(
    const std::vector<Table>& tables, const AlignedSchema& aligned,
    FuzzyFdReport* report) const {
  LAKEFUZZ_RETURN_IF_ERROR(ValidateAlignedSchema(aligned, tables));
  Stopwatch match_watch;
  ValueMatcher matcher(options_.matcher);

  // Per (table, column): value-string → replacement Value.
  std::vector<std::vector<std::unordered_map<std::string, Value>>> rewrites(
      tables.size());
  for (size_t l = 0; l < tables.size(); ++l) {
    rewrites[l].resize(tables[l].NumColumns());
  }

  double match_seconds = 0.0;
  size_t sets_matched = 0;
  ValueMatchStats agg_stats;

  for (size_t u = 0; u < aligned.NumUniversal(); ++u) {
    auto sources = aligned.SourcesOf(u);
    if (sources.size() < 2) continue;  // nothing to make consistent

    // Distinct value strings per aligning column, plus their typed originals.
    std::vector<std::vector<std::string>> columns(sources.size());
    std::vector<StringToValue> originals(sources.size());
    for (size_t s = 0; s < sources.size(); ++s) {
      auto [l, c] = sources[s];
      for (const Value& v : tables[l].DistinctNonNull(c)) {
        std::string str = v.ToString();
        if (originals[s].emplace(str, v).second) {
          columns[s].push_back(std::move(str));
        }
      }
    }

    LAKEFUZZ_ASSIGN_OR_RETURN(ValueMatchResult matched,
                              matcher.MatchColumns(columns));
    ++sets_matched;
    agg_stats.exact_matches += matched.stats.exact_matches;
    agg_stats.assignment_matches += matched.stats.assignment_matches;
    agg_stats.dense_solves += matched.stats.dense_solves;
    agg_stats.sparse_solves += matched.stats.sparse_solves;
    agg_stats.cost_evaluations += matched.stats.cost_evaluations;
    agg_stats.pruned_evaluations += matched.stats.pruned_evaluations;
    agg_stats.embedding_cache_hits += matched.stats.embedding_cache_hits;
    agg_stats.embedding_cache_misses += matched.stats.embedding_cache_misses;
    agg_stats.thresholds_used.insert(agg_stats.thresholds_used.end(),
                                     matched.stats.thresholds_used.begin(),
                                     matched.stats.thresholds_used.end());

    for (const auto& g : matched.groups) {
      if (g.members.size() < 2) continue;
      // Typed representative: the original Value of the elected member.
      const auto& [rep_src, rep_str] = g.members[g.representative_member];
      const Value& rep_value = originals[rep_src].at(rep_str);
      for (const auto& [src, str] : g.members) {
        if (str == rep_str) continue;
        auto [l, c] = sources[src];
        rewrites[l][c].emplace(str, rep_value);
      }
    }
  }
  match_seconds = match_watch.ElapsedSeconds();

  Stopwatch rewrite_watch;
  std::vector<Table> out;
  out.reserve(tables.size());
  size_t values_rewritten = 0;
  for (size_t l = 0; l < tables.size(); ++l) {
    Table t = tables[l];
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      const auto& map = rewrites[l][c];
      if (map.empty()) continue;
      for (size_t r = 0; r < t.NumRows(); ++r) {
        const Value& v = t.At(r, c);
        if (v.is_null()) continue;
        auto it = map.find(v.ToString());
        if (it != map.end()) {
          t.Set(r, c, it->second);
          ++values_rewritten;
        }
      }
    }
    out.push_back(std::move(t));
  }

  if (report != nullptr) {
    report->match_seconds = match_seconds;
    report->rewrite_seconds = rewrite_watch.ElapsedSeconds();
    report->aligned_sets_matched = sets_matched;
    report->values_rewritten = values_rewritten;
    report->match_stats = agg_stats;
  }
  return out;
}

Result<FdResult> FuzzyFullDisjunction::RunToTuples(
    const std::vector<Table>& tables, const AlignedSchema& aligned,
    FuzzyFdReport* report) const {
  LAKEFUZZ_ASSIGN_OR_RETURN(std::vector<Table> rewritten,
                            RewriteTables(tables, aligned, report));
  Stopwatch fd_watch;
  LAKEFUZZ_ASSIGN_OR_RETURN(FdProblem problem,
                            FdProblem::Build(rewritten, aligned));
  const double build_seconds = fd_watch.ElapsedSeconds();
  Result<FdResult> fd_result = Status::Internal("unreachable");
  if (options_.parallel) {
    ParallelFdOptions popts;
    popts.fd = options_.fd;
    popts.num_threads = options_.num_threads;
    fd_result = ParallelFullDisjunction(popts).Run(&problem);
  } else {
    fd_result = FullDisjunction(options_.fd).Run(&problem);
  }
  if (!fd_result.ok()) return fd_result.status();
  if (report != nullptr) {
    report->fd_build_seconds = build_seconds;
    report->fd_seconds = fd_watch.ElapsedSeconds();
    report->fd_stats = fd_result->stats;
  }
  return fd_result;
}

Result<Table> FuzzyFullDisjunction::Run(const std::vector<Table>& tables,
                                        const AlignedSchema& aligned,
                                        FuzzyFdReport* report) const {
  LAKEFUZZ_ASSIGN_OR_RETURN(FdResult result,
                            RunToTuples(tables, aligned, report));
  return FdResultsToTable(result.tuples, aligned.universal_names,
                          "fuzzy_full_disjunction",
                          options_.include_provenance);
}

Result<FdResult> RegularFdBaseline(const std::vector<Table>& tables,
                                   const AlignedSchema& aligned,
                                   const FdOptions& fd_options, bool parallel,
                                   size_t num_threads, FuzzyFdReport* report) {
  Stopwatch fd_watch;
  LAKEFUZZ_ASSIGN_OR_RETURN(FdProblem problem,
                            FdProblem::Build(tables, aligned));
  const double build_seconds = fd_watch.ElapsedSeconds();
  Result<FdResult> fd_result = Status::Internal("unreachable");
  if (parallel) {
    ParallelFdOptions popts;
    popts.fd = fd_options;
    popts.num_threads = num_threads;
    fd_result = ParallelFullDisjunction(popts).Run(&problem);
  } else {
    fd_result = FullDisjunction(fd_options).Run(&problem);
  }
  if (!fd_result.ok()) return fd_result.status();
  if (report != nullptr) {
    report->fd_build_seconds = build_seconds;
    report->fd_seconds = fd_watch.ElapsedSeconds();
    report->fd_stats = fd_result->stats;
  }
  return fd_result;
}

}  // namespace lakefuzz
