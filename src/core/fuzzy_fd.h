// FuzzyFullDisjunction: the paper's end-to-end operator.
//
// Pipeline (paper Sec 2): for every universal column fed by two or more
// tables, run the ValueMatcher over its aligning columns, rewrite every
// matched value to its group representative, then compute the ordinary
// equi-join Full Disjunction over the rewritten tables. With matching
// disabled this degenerates to regular FD (the ALITE baseline), so both
// sides of the paper's comparisons share one code path.
#ifndef LAKEFUZZ_CORE_FUZZY_FD_H_
#define LAKEFUZZ_CORE_FUZZY_FD_H_

#include "core/value_matcher.h"
#include "fd/full_disjunction.h"
#include "fd/parallel.h"
#include "util/result.h"

namespace lakefuzz {

struct FuzzyFdOptions {
  ValueMatcherOptions matcher;
  FdOptions fd;
  /// Use the component-parallel FD executor.
  bool parallel = false;
  size_t num_threads = 0;
  /// Add the "TIDs" provenance column to the output table (Fig. 1 style).
  bool include_provenance = false;
};

/// Stage timings and counters for the efficiency experiments (Fig. 3).
struct FuzzyFdReport {
  double match_seconds = 0.0;
  double rewrite_seconds = 0.0;
  /// Outer-union construction (FdProblem::Build); also included in
  /// fd_seconds. The index/enumeration/subsumption split inside fd_seconds
  /// is in fd_stats.
  double fd_build_seconds = 0.0;
  double fd_seconds = 0.0;
  size_t aligned_sets_matched = 0;
  size_t values_rewritten = 0;
  ValueMatchStats match_stats;
  FdStats fd_stats;

  double total_seconds() const {
    return match_seconds + rewrite_seconds + fd_seconds;
  }
};

class FuzzyFullDisjunction {
 public:
  explicit FuzzyFullDisjunction(FuzzyFdOptions options)
      : options_(std::move(options)) {}

  /// Value matching + value rewriting only (no FD); exposed for tests and
  /// for inspecting the consistent tables (Fig. 2 bottom-left).
  Result<std::vector<Table>> RewriteTables(const std::vector<Table>& tables,
                                           const AlignedSchema& aligned,
                                           FuzzyFdReport* report) const;

  /// Full pipeline; returns the integrated table.
  Result<Table> Run(const std::vector<Table>& tables,
                    const AlignedSchema& aligned,
                    FuzzyFdReport* report = nullptr) const;

  /// Full pipeline, returning raw FD tuples (provenance TIDs are global
  /// outer-union ids: table order, then row order).
  Result<FdResult> RunToTuples(const std::vector<Table>& tables,
                               const AlignedSchema& aligned,
                               FuzzyFdReport* report = nullptr) const;

 private:
  FuzzyFdOptions options_;
};

/// Regular (equi-join) Full Disjunction with the same reporting interface —
/// the ALITE baseline in the paper's experiments.
Result<FdResult> RegularFdBaseline(const std::vector<Table>& tables,
                                   const AlignedSchema& aligned,
                                   const FdOptions& fd_options,
                                   bool parallel, size_t num_threads,
                                   FuzzyFdReport* report);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CORE_FUZZY_FD_H_
