// FuzzyFullDisjunction: the paper's end-to-end operator.
//
// Pipeline (paper Sec 2): for every universal column fed by two or more
// tables, run the ValueMatcher over its aligning columns, rewrite every
// matched value to its group representative, then compute the ordinary
// equi-join Full Disjunction over the rewritten tables. With matching
// disabled this degenerates to regular FD (the ALITE baseline), so both
// sides of the paper's comparisons share one code path.
//
// Session integration: every entry point has a TableList (borrowed
// pointers) form so a LakeEngine can serve requests over registry-owned
// tables without copying; options carry an optional session ThreadPool,
// a RequestContext (cancel + deadline + resource budget, honored at matcher
// merge rounds, per FD component, and inside the enumerator), and a
// ProgressFn fired at stage boundaries.
#ifndef LAKEFUZZ_CORE_FUZZY_FD_H_
#define LAKEFUZZ_CORE_FUZZY_FD_H_

#include <functional>

#include "core/value_matcher.h"
#include "fd/full_disjunction.h"
#include "fd/parallel.h"
#include "util/request_context.h"
#include "util/result.h"

namespace lakefuzz {

class SessionDict;

struct FuzzyFdOptions {
  ValueMatcherOptions matcher;
  FdOptions fd;
  /// Use the component-parallel FD executor.
  bool parallel = false;
  size_t num_threads = 0;
  /// Add the "TIDs" provenance column to the output table (Fig. 1 style).
  bool include_provenance = false;
  /// Externally owned session pool (LakeEngine). Used by the parallel FD
  /// executor and result decode; also handed to the matcher unless
  /// `matcher.pool` is already set. Not owned.
  ThreadPool* pool = nullptr;
  /// Session-lived interning dictionary (LakeEngine). When set, the FD
  /// problem is built with FdProblem::BuildInterned — codes scatter straight
  /// from source-table cells, no padded Value rows — and input tables the
  /// rewrite stage left untouched are interned through the per-column code
  /// cache (they must be session-owned snapshots; see fd/session_dict.h for
  /// the invalidation contract). Not owned; must outlive every result
  /// decoded against it.
  SessionDict* session_dict = nullptr;
  /// Request lifecycle: cancel token, deadline, resource budget, and the
  /// truncate-vs-fail policy. The cancel token is also threaded into
  /// `matcher.cancel` (and the deadline into `matcher.deadline`) when those
  /// are unset. A fired token surfaces as Status::Cancelled, an expired
  /// deadline as Status::DeadlineExceeded, from the nearest checkpoint —
  /// unless BudgetPolicy::kTruncate turns the latter into a partial result
  /// with a populated FuzzyFdReport::truncation.
  RequestContext context;
  /// Stage-boundary progress (see util/cancellation.h). Invoked on the
  /// calling thread: kMatch counts universal columns, the FD stages report
  /// (0,1) on entry and (1,1) on completion.
  ProgressFn progress;
};

/// Stage timings and counters for the efficiency experiments (Fig. 3) and
/// engine observability. One report covers every stage of a request, so
/// total_seconds() is the end-to-end pipeline time.
struct FuzzyFdReport {
  /// Column alignment (filled by the pipeline/engine layer that ran it;
  /// zero when the caller aligned out of band).
  double align_seconds = 0.0;
  double match_seconds = 0.0;
  double rewrite_seconds = 0.0;
  /// Outer-union construction (FdProblem::Build); also included in
  /// fd_seconds. The index/enumeration/subsumption split inside fd_seconds
  /// is in fd_stats.
  double fd_build_seconds = 0.0;
  double fd_seconds = 0.0;
  size_t aligned_sets_matched = 0;
  size_t values_rewritten = 0;
  ValueMatchStats match_stats;
  FdStats fd_stats;
  /// Request-level degradation report (BudgetPolicy::kTruncate): folds the
  /// FD executor's fd_stats.truncation together with match-stage and
  /// emit-stage cuts. truncated == false means the result is complete.
  Truncation truncation;

  /// End-to-end wall time across all stages (align + match + rewrite + FD).
  double total_seconds() const {
    return align_seconds + match_seconds + rewrite_seconds + fd_seconds;
  }
};

/// Receives one decoded result batch in streaming mode. Returning a non-OK
/// status aborts the run and propagates the status to the caller.
using FdBatchFn = std::function<Status(const std::vector<FdResultTuple>&)>;

class FuzzyFullDisjunction {
 public:
  explicit FuzzyFullDisjunction(FuzzyFdOptions options)
      : options_(std::move(options)) {}

  /// Value matching + value rewriting only (no FD); exposed for tests and
  /// for inspecting the consistent tables (Fig. 2 bottom-left).
  Result<std::vector<Table>> RewriteTables(const TableList& tables,
                                           const AlignedSchema& aligned,
                                           FuzzyFdReport* report) const;
  Result<std::vector<Table>> RewriteTables(const std::vector<Table>& tables,
                                           const AlignedSchema& aligned,
                                           FuzzyFdReport* report) const;

  /// Full pipeline; returns the integrated table.
  Result<Table> Run(const TableList& tables, const AlignedSchema& aligned,
                    FuzzyFdReport* report = nullptr) const;
  Result<Table> Run(const std::vector<Table>& tables,
                    const AlignedSchema& aligned,
                    FuzzyFdReport* report = nullptr) const;

  /// Full pipeline, returning raw FD tuples (provenance TIDs are global
  /// outer-union ids: table order, then row order).
  Result<FdResult> RunToTuples(const TableList& tables,
                               const AlignedSchema& aligned,
                               FuzzyFdReport* report = nullptr) const;
  Result<FdResult> RunToTuples(const std::vector<Table>& tables,
                               const AlignedSchema& aligned,
                               FuzzyFdReport* report = nullptr) const;

  /// Streaming form: runs the full pipeline but never materializes the
  /// decoded result set. Result tuples are decoded in windows of at most
  /// `batch_rows` (the final batch may be smaller) and handed to `emit` in
  /// FdTupleLess order; the batch vector is reused, so `emit` must copy
  /// what it keeps. Returns the number of tuples emitted. Cancellation is
  /// additionally polled between batches.
  Result<size_t> RunToBatches(const TableList& tables,
                              const AlignedSchema& aligned, size_t batch_rows,
                              const FdBatchFn& emit,
                              FuzzyFdReport* report = nullptr) const;

 private:
  FuzzyFdOptions options_;
};

/// Regular (equi-join) Full Disjunction with the same reporting interface —
/// the ALITE baseline in the paper's experiments. The TableList form takes
/// the session extras (pool / cancel / progress); the vector<Table>
/// overload keeps the historical signature.
/// `session_dict`, when set, builds the problem with BuildInterned and
/// treats every input table as a session-cached snapshot (the engine only
/// passes registry-owned tables here).
Result<FdResult> RegularFdBaseline(
    const TableList& tables, const AlignedSchema& aligned,
    const FdOptions& fd_options, bool parallel, size_t num_threads,
    FuzzyFdReport* report, ThreadPool* pool = nullptr,
    const RequestContext& ctx = RequestContext(),
    const ProgressFn& progress = ProgressFn(),
    SessionDict* session_dict = nullptr);
Result<FdResult> RegularFdBaseline(const std::vector<Table>& tables,
                                   const AlignedSchema& aligned,
                                   const FdOptions& fd_options,
                                   bool parallel, size_t num_threads,
                                   FuzzyFdReport* report);

/// Streaming twin of RegularFdBaseline (see RunToBatches for the batch
/// contract). Returns the number of tuples emitted.
Result<size_t> RegularFdToBatches(const TableList& tables,
                                  const AlignedSchema& aligned,
                                  const FdOptions& fd_options, bool parallel,
                                  size_t num_threads, ThreadPool* pool,
                                  const RequestContext& ctx,
                                  const ProgressFn& progress,
                                  size_t batch_rows, const FdBatchFn& emit,
                                  FuzzyFdReport* report,
                                  SessionDict* session_dict = nullptr);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CORE_FUZZY_FD_H_
