#include "core/pipeline.h"

#include "table/csv.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

/// Maps the legacy one-shot knobs onto a per-request options struct.
RequestOptions ToRequestOptions(const PipelineOptions& options) {
  RequestOptions request;
  request.holistic_alignment = options.holistic_alignment;
  request.fuzzy = options.fuzzy;
  request.include_provenance = options.include_provenance;
  request.fuzzy_fd = options.fuzzy_fd;
  return request;
}

}  // namespace

Result<PipelineResult> IntegrateTables(const std::vector<Table>& tables,
                                       const PipelineOptions& options) {
  if (tables.empty()) {
    return Status::InvalidArgument("integration set is empty");
  }
  // Throwaway single-call session: serial (num_threads=1 spawns no pool),
  // with the caller's model choice. The caller's per-call cache sizing
  // becomes the session cache sizing — same bound, one call. Outputs are
  // identical to the historical inline implementation — the engine runs
  // the same alignment, matcher, and FD code paths.
  LAKEFUZZ_ASSIGN_OR_RETURN(
      std::unique_ptr<LakeEngine> engine,
      LakeEngine::Create(
          EngineOptions()
              .SetModel(options.model)
              .SetEmbeddingCache(options.fuzzy_fd.matcher.embedding_cache)));
  std::vector<std::string> names;
  names.reserve(tables.size());
  for (size_t i = 0; i < tables.size(); ++i) {
    // Positional registry names: input table names may collide or be empty.
    // The tables are borrowed, not copied — the engine dies before they do.
    names.push_back(StrFormat("__t%zu", i));
    LAKEFUZZ_RETURN_IF_ERROR(engine->RegisterTable(
        names.back(),
        std::shared_ptr<const Table>(&tables[i], [](const Table*) {})));
  }
  return engine->Integrate(names, ToRequestOptions(options));
}

Result<PipelineResult> IntegrateCsvFiles(const std::vector<std::string>& paths,
                                         const PipelineOptions& options) {
  std::vector<Table> tables;
  tables.reserve(paths.size());
  for (const auto& path : paths) {
    LAKEFUZZ_ASSIGN_OR_RETURN(Table t, ReadCsvFile(path));
    tables.push_back(std::move(t));
  }
  return IntegrateTables(tables, options);
}

}  // namespace lakefuzz
