#include "core/pipeline.h"

#include "match/schema_matcher.h"
#include "table/csv.h"
#include "util/stopwatch.h"

namespace lakefuzz {

Result<PipelineResult> IntegrateTables(const std::vector<Table>& tables,
                                       const PipelineOptions& options) {
  if (tables.empty()) {
    return Status::InvalidArgument("integration set is empty");
  }
  auto model = MakeModel(options.model);

  Stopwatch align_watch;
  Result<AlignedSchema> aligned = Status::Internal("unreachable");
  if (options.holistic_alignment) {
    aligned = HolisticSchemaMatcher(model).Align(tables);
  } else {
    aligned = AlignByName(tables);
  }
  if (!aligned.ok()) return aligned.status();
  double align_seconds = align_watch.ElapsedSeconds();

  FuzzyFdOptions fd_opts = options.fuzzy_fd;
  fd_opts.matcher.model = model;
  fd_opts.include_provenance = options.include_provenance;
  FuzzyFdReport report;

  Result<Table> integrated = Status::Internal("unreachable");
  if (options.fuzzy) {
    integrated =
        FuzzyFullDisjunction(fd_opts).Run(tables, *aligned, &report);
  } else {
    LAKEFUZZ_ASSIGN_OR_RETURN(
        FdResult fd, RegularFdBaseline(tables, *aligned, fd_opts.fd,
                                       fd_opts.parallel, fd_opts.num_threads,
                                       &report));
    integrated =
        FdResultsToTable(fd.tuples, aligned->universal_names,
                         "full_disjunction", options.include_provenance);
  }
  if (!integrated.ok()) return integrated.status();

  PipelineResult out{std::move(integrated).value(),
                     std::move(aligned).value(), report, align_seconds};
  return out;
}

Result<PipelineResult> IntegrateCsvFiles(const std::vector<std::string>& paths,
                                         const PipelineOptions& options) {
  std::vector<Table> tables;
  tables.reserve(paths.size());
  for (const auto& path : paths) {
    LAKEFUZZ_ASSIGN_OR_RETURN(Table t, ReadCsvFile(path));
    tables.push_back(std::move(t));
  }
  return IntegrateTables(tables, options);
}

}  // namespace lakefuzz
