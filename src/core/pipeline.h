// IntegrationPipeline: the one-call facade for the full ALITE + Fuzzy FD
// flow — the API a downstream user actually adopts.
//
//   load CSVs → align columns (holistic or by-name) → fuzzy value matching
//   → Full Disjunction → integrated table + stage report.
#ifndef LAKEFUZZ_CORE_PIPELINE_H_
#define LAKEFUZZ_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "core/fuzzy_fd.h"
#include "embedding/model_zoo.h"
#include "fd/aligned_schema.h"
#include "util/result.h"

namespace lakefuzz {

struct PipelineOptions {
  /// Embedding model used for alignment, value matching, and (optionally)
  /// downstream EM.
  ModelKind model = ModelKind::kMistral;
  /// Align columns by content (holistic schema matching); when false,
  /// columns align by equal header names.
  bool holistic_alignment = true;
  /// Fuzzy matching on/off — off degrades to the regular-FD baseline.
  bool fuzzy = true;
  FuzzyFdOptions fuzzy_fd;  ///< matcher/FD knobs (model is filled in)
  bool include_provenance = false;
};

struct PipelineResult {
  Table integrated;
  AlignedSchema aligned;
  FuzzyFdReport report;
  double align_seconds = 0.0;
};

/// End-to-end integration of a set of in-memory tables.
Result<PipelineResult> IntegrateTables(const std::vector<Table>& tables,
                                       const PipelineOptions& options =
                                           PipelineOptions());

/// Convenience: reads every path as CSV, then IntegrateTables.
Result<PipelineResult> IntegrateCsvFiles(const std::vector<std::string>& paths,
                                         const PipelineOptions& options =
                                             PipelineOptions());

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CORE_PIPELINE_H_
