// DEPRECATED one-shot facade over core/engine.h.
//
// IntegrateTables / IntegrateCsvFiles predate LakeEngine and pay full
// session setup (model build, empty embedding cache) on every call. They
// are kept as thin shims over a temporary engine so existing code and the
// published examples keep working, but new code should construct a
// LakeEngine once and call Integrate per request — see the README's
// migration table. These shims will be removed once the benchmarks and
// examples no longer reference them.
#ifndef LAKEFUZZ_CORE_PIPELINE_H_
#define LAKEFUZZ_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "util/result.h"

namespace lakefuzz {

/// One-shot knobs; the session-oriented twin is RequestOptions +
/// EngineOptions (engine.h).
struct PipelineOptions {
  /// Embedding model used for alignment, value matching, and (optionally)
  /// downstream EM.
  ModelKind model = ModelKind::kMistral;
  /// Align columns by content (holistic schema matching); when false,
  /// columns align by equal header names.
  bool holistic_alignment = true;
  /// Fuzzy matching on/off — off degrades to the regular-FD baseline.
  bool fuzzy = true;
  FuzzyFdOptions fuzzy_fd;  ///< matcher/FD knobs (model is filled in)
  bool include_provenance = false;
};

/// DEPRECATED: end-to-end integration of a set of in-memory tables through
/// a throwaway LakeEngine. Prefer a long-lived engine.
Result<PipelineResult> IntegrateTables(const std::vector<Table>& tables,
                                       const PipelineOptions& options =
                                           PipelineOptions());

/// DEPRECATED: reads every path as CSV, then IntegrateTables. Prefer
/// LakeEngine::RegisterCsv + Integrate.
Result<PipelineResult> IntegrateCsvFiles(const std::vector<std::string>& paths,
                                         const PipelineOptions& options =
                                             PipelineOptions());

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CORE_PIPELINE_H_
