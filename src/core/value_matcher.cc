#include "core/value_matcher.h"

#include "assignment/jonker_volgenant.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "assignment/parallel_cost.h"
#include "embedding/vector_ops.h"
#include "text/normalize.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace lakefuzz {
namespace {

/// Working state of one group during the sequential merge.
struct GroupState {
  ValueGroup group;
  /// Unit-normalized representative embedding, shared with the cache
  /// (embedding mode only).
  std::shared_ptr<const Vec> rep_embedding;
};

}  // namespace

ValueMatcher::ValueMatcher(ValueMatcherOptions options)
    : options_(std::move(options)) {}

std::vector<std::pair<std::pair<size_t, std::string>,
                      std::pair<size_t, std::string>>>
CrossColumnPairs(const ValueMatchResult& result) {
  std::vector<std::pair<std::pair<size_t, std::string>,
                        std::pair<size_t, std::string>>>
      pairs;
  for (const auto& g : result.groups) {
    for (size_t i = 0; i < g.members.size(); ++i) {
      for (size_t j = i + 1; j < g.members.size(); ++j) {
        const auto& a = g.members[i];
        const auto& b = g.members[j];
        if (a.first == b.first) continue;  // cannot happen (clean-clean)
        if (a.first < b.first) {
          pairs.emplace_back(a, b);
        } else {
          pairs.emplace_back(b, a);
        }
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

Result<ValueMatchResult> ValueMatcher::MatchColumns(
    const std::vector<std::vector<std::string>>& columns) const {
  const bool use_embeddings = options_.model != nullptr;
  const bool use_bounded_distance =
      !use_embeddings && options_.bounded_string_distance != nullptr;
  if (!use_embeddings && options_.string_distance == nullptr &&
      !use_bounded_distance) {
    return Status::InvalidArgument(
        "ValueMatcherOptions: one of model, string_distance, or "
        "bounded_string_distance must be set");
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    std::unordered_set<std::string> distinct(columns[c].begin(),
                                             columns[c].end());
    if (distinct.size() != columns[c].size()) {
      return Status::InvalidArgument(StrFormat(
          "column %zu contains duplicate values (clean-clean violated)", c));
    }
  }

  ValueMatchResult result;
  if (columns.empty()) return result;

  // Scoring substrate: an embedding cache (representatives recur across
  // merge rounds; values recur across columns — and, with a session-shared
  // cache, across MatchColumns calls) and one thread pool shared by every
  // fill below. A session (LakeEngine) may supply both; otherwise the
  // cache is per-call and the pool is created lazily on the first fill
  // large enough to use it — the many small residual problems left after
  // the exact-match prepass run serially either way and must not pay N
  // thread spawns per column. Output is identical at any thread count and
  // any cache state because each cost cell is a pure function of its
  // (group, value) pair.
  std::unique_ptr<EmbeddingCache> local_cache;
  EmbeddingCache* cache = nullptr;
  if (use_embeddings) {
    if (options_.shared_cache != nullptr) {
      cache = options_.shared_cache.get();
    } else {
      local_cache = std::make_unique<EmbeddingCache>(
          options_.model, options_.embedding_cache);
      cache = local_cache.get();
    }
  }
  const EmbeddingCache::Counters counters_before =
      cache != nullptr ? cache->counters() : EmbeddingCache::Counters{};
  const size_t num_threads = ResolveNumThreads(options_.num_threads);
  std::unique_ptr<ThreadPool> pool;
  auto pool_for = [&](size_t work_items, size_t min_work) -> ThreadPool* {
    if (work_items < min_work) return nullptr;
    if (options_.pool != nullptr) return options_.pool;
    if (num_threads <= 1) return nullptr;
    if (pool == nullptr) pool = std::make_unique<ThreadPool>(num_threads);
    return pool.get();
  };
  // Embedding calls are heavyweight relative to pool dispatch; a much
  // smaller batch than a cost fill already amortizes the pool.
  constexpr size_t kMinParallelEmbeds = 64;

  std::atomic<size_t> pruned_evaluations{0};

  auto string_cost = [&](const std::string& rep, const std::string& value,
                         double budget) -> double {
    if (use_bounded_distance) {
      bool pruned = false;
      double d =
          options_.bounded_string_distance(rep, value, budget, &pruned);
      if (pruned) pruned_evaluations.fetch_add(1, std::memory_order_relaxed);
      return d;
    }
    return options_.string_distance(rep, value);
  };

  // Global frequency of each value across all aligning columns — the
  // electorate for representative selection (paper Sec 2.2, Ex. 4).
  std::unordered_map<std::string, size_t> freq;
  for (const auto& col : columns) {
    for (const auto& v : col) ++freq[v];
  }

  auto elect_representative = [&](GroupState* g) {
    size_t best = 0;
    size_t best_freq = 0;
    for (size_t m = 0; m < g->group.members.size(); ++m) {
      const auto& [col, value] = g->group.members[m];
      size_t f = freq[value];
      // Tie → the member from the earliest column; members are appended in
      // column order, so strict '>' keeps the earliest.
      if (f > best_freq) {
        best_freq = f;
        best = m;
      }
    }
    const std::string& rep = g->group.members[best].second;
    if (rep != g->group.representative || g->group.members.size() == 1) {
      g->group.representative = rep;
      g->group.representative_member = best;
      // Cache hit whenever the representative survived a previous round or
      // equals any already-seen value — the common case.
      if (use_embeddings) g->rep_embedding = cache->GetNormalized(rep);
    }
  };

  std::vector<GroupState> combined;
  combined.reserve(columns[0].size());
  for (const auto& v : columns[0]) {
    GroupState g;
    g.group.members.emplace_back(0, v);
    elect_representative(&g);
    combined.push_back(std::move(g));
  }

  // auto_threshold's dense probe solves one unconstrained assignment per
  // merge round over closely related matrices (the group side only grows).
  // The duals of each probe warm-start the next (ROADMAP PR 1 follow-up) —
  // clamped to feasibility inside the solver, so every solve stays exactly
  // optimal.
  JvDuals probe_duals;

  for (size_t c = 1; c < columns.size(); ++c) {
    // Cooperative cancellation / deadline between merge rounds — the unit
    // after which no partial state escapes.
    if (options_.cancel.cancelled()) {
      return Status::Cancelled("value matching cancelled");
    }
    if (options_.deadline.expired()) {
      return Status::DeadlineExceeded("value matching deadline exceeded");
    }
    const auto& values = columns[c];
    std::vector<char> value_matched(values.size(), 0);

    // Exact pre-pass: identity-equal values never need the assignment.
    if (options_.exact_match_prepass) {
      std::unordered_map<std::string, size_t> rep_index;
      for (size_t gi = 0; gi < combined.size(); ++gi) {
        std::string key = options_.normalize_identity
                              ? NormalizeForIdentity(combined[gi].group.representative)
                              : combined[gi].group.representative;
        rep_index.emplace(std::move(key), gi);  // first group wins
      }
      std::vector<char> group_claimed(combined.size(), 0);
      for (size_t vi = 0; vi < values.size(); ++vi) {
        std::string key = options_.normalize_identity
                              ? NormalizeForIdentity(values[vi])
                              : values[vi];
        auto it = rep_index.find(key);
        if (it == rep_index.end() || group_claimed[it->second]) continue;
        group_claimed[it->second] = 1;
        value_matched[vi] = 1;
        combined[it->second].group.members.emplace_back(c, values[vi]);
        elect_representative(&combined[it->second]);
        ++result.stats.exact_matches;
      }
    }

    // Residual assignment problem over unmatched groups × unmatched values.
    std::vector<size_t> open_groups;
    for (size_t gi = 0; gi < combined.size(); ++gi) {
      // A group may absorb at most one value per column (bipartite 1:1);
      // skip groups that already took a value from column c.
      if (!combined[gi].group.members.empty() &&
          combined[gi].group.members.back().first == c) {
        continue;
      }
      open_groups.push_back(gi);
    }
    std::vector<size_t> open_values;
    for (size_t vi = 0; vi < values.size(); ++vi) {
      if (!value_matched[vi]) open_values.push_back(vi);
    }

    if (!open_groups.empty() && !open_values.empty()) {
      std::vector<std::shared_ptr<const Vec>> value_embs;
      if (use_embeddings) {
        // Warm the cache in parallel; each slot is written by exactly one
        // worker, and the vectors themselves are deterministic, so the
        // outcome is thread-count independent.
        value_embs.resize(open_values.size());
        ParallelIndexFor(
            open_values.size(),
            [&](size_t k) {
              value_embs[k] = cache->GetNormalized(values[open_values[k]]);
            },
            pool_for(open_values.size(), kMinParallelEmbeds));
      }
      const size_t cells = open_groups.size() * open_values.size();
      const bool dense = cells <= options_.max_dense_cells;
      // Pruning budget for the bounded string distance. A pruned pair is
      // reported as distance 1.0 instead of its true above-budget value, so
      // pruning is enabled only where that substitution provably cannot
      // change the result: sparse mode drops edges >= θ before solving, and
      // dense mask-before-solve masks cells >= θ to forbidden either way.
      // The default dense solve-then-filter mode optimizes the
      // *unconstrained* matrix — a capped above-θ cost could flip which
      // below-θ pairs win — and auto-threshold reads the entire distance
      // distribution; both get budget 1.0, which the bounded-distance
      // contract defines as fully exact.
      const bool prune_safe =
          !options_.auto_threshold && (!dense || options_.mask_before_solve);
      const double distance_budget = prune_safe ? options_.threshold : 1.0;
      auto pair_cost = [&](size_t r, size_t k) -> double {
        const GroupState& g = combined[open_groups[r]];
        if (use_embeddings) {
          return CosineDistancePrenormalized(*g.rep_embedding, *value_embs[k]);
        }
        return string_cost(g.group.representative, values[open_values[k]],
                           distance_budget);
      };

      ThresholdedOptions topts;
      topts.threshold = options_.threshold;
      topts.algorithm = options_.algorithm;
      topts.mask_before_solve = options_.mask_before_solve;

      Assignment assignment;
      if (dense) {
        CostMatrix cost(open_groups.size(), open_values.size());
        FillCostMatrixParallel(&cost, pair_cost,
                               pool_for(cells, kMinParallelWork));
        result.stats.cost_evaluations += cells;
        if (options_.auto_threshold) {
          // Probe solve without a threshold: the optimal pairing's distance
          // distribution is bimodal (matches vs forced non-matches); the
          // widest gap locates this instance's θ. The probe is warm-started
          // from the previous round's duals.
          LAKEFUZZ_ASSIGN_OR_RETURN(Assignment probe,
                                    SolveAssignment(cost, &probe_duals));
          std::vector<double> dists;
          dists.reserve(probe.pairs.size());
          for (auto [r, k] : probe.pairs) dists.push_back(cost.at(r, k));
          AutoThresholdOptions ato = options_.auto_threshold_options;
          ato.fallback = options_.threshold;
          topts.threshold = SelectThresholdByGap(std::move(dists), ato);
          result.stats.thresholds_used.push_back(topts.threshold);
          if (!topts.mask_before_solve &&
              topts.algorithm == AssignmentAlgorithm::kOptimal) {
            // Solve-then-filter over the unchanged matrix would re-run the
            // exact solve the probe just did — filter the probe instead.
            // This halves the O(n³) work of every auto-threshold round.
            assignment = Assignment{};
            for (auto [r, k] : probe.pairs) {
              const double d = cost.at(r, k);
              if (d < topts.threshold) {
                assignment.pairs.emplace_back(r, k);
                assignment.total_cost += d;
              }
            }
          } else {
            // Masked (or greedy) final solve: a different matrix, but the
            // probe duals still warm-start it.
            LAKEFUZZ_ASSIGN_OR_RETURN(
                assignment, SolveThresholded(cost, topts, &probe_duals));
          }
        } else {
          result.stats.thresholds_used.push_back(topts.threshold);
          LAKEFUZZ_ASSIGN_OR_RETURN(assignment,
                                    SolveThresholded(cost, topts));
        }
        ++result.stats.dense_solves;
      } else {
        std::vector<std::string> reps;
        reps.reserve(open_groups.size());
        for (size_t gi : open_groups) {
          reps.push_back(combined[gi].group.representative);
        }
        std::vector<std::string> vals;
        vals.reserve(open_values.size());
        for (size_t vi : open_values) vals.push_back(values[vi]);
        auto candidates = GenerateCandidates(reps, vals, options_.blocking);
        std::vector<SparseEdge> edges;
        edges.reserve(candidates.size());
        for (auto [r, k] : candidates) {
          edges.push_back(SparseEdge{r, k, 0.0});
        }
        ScoreEdgesParallel(&edges, pair_cost,
                           pool_for(edges.size(), kMinParallelWork));
        result.stats.cost_evaluations += edges.size();
        if (options_.auto_threshold && !edges.empty()) {
          // No cheap unconstrained probe in sparse mode; the candidate-edge
          // distances themselves carry the bimodal signal.
          std::vector<double> dists;
          dists.reserve(edges.size());
          for (const auto& e : edges) dists.push_back(e.cost);
          AutoThresholdOptions ato = options_.auto_threshold_options;
          ato.fallback = options_.threshold;
          topts.threshold = SelectThresholdByGap(std::move(dists), ato);
        }
        result.stats.thresholds_used.push_back(topts.threshold);
        LAKEFUZZ_ASSIGN_OR_RETURN(
            assignment, SolveSparseThresholded(open_groups.size(),
                                               open_values.size(), edges,
                                               topts));
        ++result.stats.sparse_solves;
      }

      for (auto [r, k] : assignment.pairs) {
        size_t gi = open_groups[r];
        size_t vi = open_values[k];
        combined[gi].group.members.emplace_back(c, values[vi]);
        elect_representative(&combined[gi]);
        value_matched[vi] = 1;
        ++result.stats.assignment_matches;
      }
    }

    // Values with no partner join the combined column as singletons.
    for (size_t vi = 0; vi < values.size(); ++vi) {
      if (value_matched[vi]) continue;
      GroupState g;
      g.group.members.emplace_back(c, values[vi]);
      elect_representative(&g);
      combined.push_back(std::move(g));
    }
  }

  result.stats.pruned_evaluations =
      pruned_evaluations.load(std::memory_order_relaxed);
  if (cache != nullptr) {
    // Delta against the call-start snapshot: identical to the absolute
    // counters for a per-call cache, and the per-call share for a
    // session-shared one.
    const EmbeddingCache::Counters after = cache->counters();
    result.stats.embedding_cache_hits = after.hits - counters_before.hits;
    result.stats.embedding_cache_misses =
        after.misses - counters_before.misses;
  }
  result.groups.reserve(combined.size());
  for (auto& g : combined) result.groups.push_back(std::move(g.group));
  return result;
}

}  // namespace lakefuzz
