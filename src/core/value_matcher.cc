#include "core/value_matcher.h"

#include "assignment/jonker_volgenant.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "embedding/vector_ops.h"
#include "text/normalize.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

/// Working state of one group during the sequential merge.
struct GroupState {
  ValueGroup group;
  Vec rep_embedding;  // valid only in embedding mode
};

}  // namespace

ValueMatcher::ValueMatcher(ValueMatcherOptions options)
    : options_(std::move(options)) {}

std::vector<std::pair<std::pair<size_t, std::string>,
                      std::pair<size_t, std::string>>>
CrossColumnPairs(const ValueMatchResult& result) {
  std::vector<std::pair<std::pair<size_t, std::string>,
                        std::pair<size_t, std::string>>>
      pairs;
  for (const auto& g : result.groups) {
    for (size_t i = 0; i < g.members.size(); ++i) {
      for (size_t j = i + 1; j < g.members.size(); ++j) {
        const auto& a = g.members[i];
        const auto& b = g.members[j];
        if (a.first == b.first) continue;  // cannot happen (clean-clean)
        if (a.first < b.first) {
          pairs.emplace_back(a, b);
        } else {
          pairs.emplace_back(b, a);
        }
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

Result<ValueMatchResult> ValueMatcher::MatchColumns(
    const std::vector<std::vector<std::string>>& columns) const {
  if (options_.model == nullptr && options_.string_distance == nullptr) {
    return Status::InvalidArgument(
        "ValueMatcherOptions: either model or string_distance must be set");
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    std::unordered_set<std::string> distinct(columns[c].begin(),
                                             columns[c].end());
    if (distinct.size() != columns[c].size()) {
      return Status::InvalidArgument(StrFormat(
          "column %zu contains duplicate values (clean-clean violated)", c));
    }
  }

  ValueMatchResult result;
  if (columns.empty()) return result;

  // Global frequency of each value across all aligning columns — the
  // electorate for representative selection (paper Sec 2.2, Ex. 4).
  std::unordered_map<std::string, size_t> freq;
  for (const auto& col : columns) {
    for (const auto& v : col) ++freq[v];
  }

  const bool use_embeddings = options_.model != nullptr;
  auto embed = [&](const std::string& s) { return options_.model->Embed(s); };
  auto pair_cost = [&](const GroupState& g,
                       const std::string& value, const Vec* value_emb) {
    if (use_embeddings) return CosineDistance(g.rep_embedding, *value_emb);
    return options_.string_distance(g.group.representative, value);
  };

  auto elect_representative = [&](GroupState* g) {
    size_t best = 0;
    size_t best_freq = 0;
    for (size_t m = 0; m < g->group.members.size(); ++m) {
      const auto& [col, value] = g->group.members[m];
      size_t f = freq[value];
      // Tie → the member from the earliest column; members are appended in
      // column order, so strict '>' keeps the earliest.
      if (f > best_freq) {
        best_freq = f;
        best = m;
      }
    }
    const std::string& rep = g->group.members[best].second;
    if (rep != g->group.representative || g->group.members.size() == 1) {
      g->group.representative = rep;
      g->group.representative_member = best;
      if (use_embeddings) g->rep_embedding = embed(rep);
    }
  };

  std::vector<GroupState> combined;
  combined.reserve(columns[0].size());
  for (const auto& v : columns[0]) {
    GroupState g;
    g.group.members.emplace_back(0, v);
    elect_representative(&g);
    combined.push_back(std::move(g));
  }

  for (size_t c = 1; c < columns.size(); ++c) {
    const auto& values = columns[c];
    std::vector<char> value_matched(values.size(), 0);

    // Exact pre-pass: identity-equal values never need the assignment.
    if (options_.exact_match_prepass) {
      std::unordered_map<std::string, size_t> rep_index;
      for (size_t gi = 0; gi < combined.size(); ++gi) {
        std::string key = options_.normalize_identity
                              ? NormalizeForIdentity(combined[gi].group.representative)
                              : combined[gi].group.representative;
        rep_index.emplace(std::move(key), gi);  // first group wins
      }
      std::vector<char> group_claimed(combined.size(), 0);
      for (size_t vi = 0; vi < values.size(); ++vi) {
        std::string key = options_.normalize_identity
                              ? NormalizeForIdentity(values[vi])
                              : values[vi];
        auto it = rep_index.find(key);
        if (it == rep_index.end() || group_claimed[it->second]) continue;
        group_claimed[it->second] = 1;
        value_matched[vi] = 1;
        combined[it->second].group.members.emplace_back(c, values[vi]);
        elect_representative(&combined[it->second]);
        ++result.stats.exact_matches;
      }
    }

    // Residual assignment problem over unmatched groups × unmatched values.
    std::vector<size_t> open_groups;
    for (size_t gi = 0; gi < combined.size(); ++gi) {
      // A group may absorb at most one value per column (bipartite 1:1);
      // skip groups that already took a value from column c.
      if (!combined[gi].group.members.empty() &&
          combined[gi].group.members.back().first == c) {
        continue;
      }
      open_groups.push_back(gi);
    }
    std::vector<size_t> open_values;
    for (size_t vi = 0; vi < values.size(); ++vi) {
      if (!value_matched[vi]) open_values.push_back(vi);
    }

    if (!open_groups.empty() && !open_values.empty()) {
      std::vector<Vec> value_embs;
      if (use_embeddings) {
        value_embs.reserve(open_values.size());
        for (size_t vi : open_values) value_embs.push_back(embed(values[vi]));
      }
      ThresholdedOptions topts;
      topts.threshold = options_.threshold;
      topts.algorithm = options_.algorithm;
      topts.mask_before_solve = options_.mask_before_solve;

      Assignment assignment;
      const size_t cells = open_groups.size() * open_values.size();
      if (cells <= options_.max_dense_cells) {
        CostMatrix cost(open_groups.size(), open_values.size());
        for (size_t r = 0; r < open_groups.size(); ++r) {
          for (size_t k = 0; k < open_values.size(); ++k) {
            cost.set(r, k,
                     pair_cost(combined[open_groups[r]], values[open_values[k]],
                               use_embeddings ? &value_embs[k] : nullptr));
            ++result.stats.cost_evaluations;
          }
        }
        if (options_.auto_threshold) {
          // Probe solve without a threshold: the optimal pairing's distance
          // distribution is bimodal (matches vs forced non-matches); the
          // widest gap locates this instance's θ.
          LAKEFUZZ_ASSIGN_OR_RETURN(Assignment probe, SolveAssignment(cost));
          std::vector<double> dists;
          dists.reserve(probe.pairs.size());
          for (auto [r, k] : probe.pairs) dists.push_back(cost.at(r, k));
          AutoThresholdOptions ato = options_.auto_threshold_options;
          ato.fallback = options_.threshold;
          topts.threshold = SelectThresholdByGap(std::move(dists), ato);
        }
        result.stats.thresholds_used.push_back(topts.threshold);
        LAKEFUZZ_ASSIGN_OR_RETURN(assignment, SolveThresholded(cost, topts));
        ++result.stats.dense_solves;
      } else {
        std::vector<std::string> reps;
        reps.reserve(open_groups.size());
        for (size_t gi : open_groups) {
          reps.push_back(combined[gi].group.representative);
        }
        std::vector<std::string> vals;
        vals.reserve(open_values.size());
        for (size_t vi : open_values) vals.push_back(values[vi]);
        auto candidates = GenerateCandidates(reps, vals, options_.blocking);
        std::vector<SparseEdge> edges;
        edges.reserve(candidates.size());
        for (auto [r, k] : candidates) {
          double d =
              pair_cost(combined[open_groups[r]], values[open_values[k]],
                        use_embeddings ? &value_embs[k] : nullptr);
          ++result.stats.cost_evaluations;
          edges.push_back(SparseEdge{r, k, d});
        }
        if (options_.auto_threshold && !edges.empty()) {
          // No cheap unconstrained probe in sparse mode; the candidate-edge
          // distances themselves carry the bimodal signal.
          std::vector<double> dists;
          dists.reserve(edges.size());
          for (const auto& e : edges) dists.push_back(e.cost);
          AutoThresholdOptions ato = options_.auto_threshold_options;
          ato.fallback = options_.threshold;
          topts.threshold = SelectThresholdByGap(std::move(dists), ato);
        }
        result.stats.thresholds_used.push_back(topts.threshold);
        LAKEFUZZ_ASSIGN_OR_RETURN(
            assignment, SolveSparseThresholded(open_groups.size(),
                                               open_values.size(), edges,
                                               topts));
        ++result.stats.sparse_solves;
      }

      for (auto [r, k] : assignment.pairs) {
        size_t gi = open_groups[r];
        size_t vi = open_values[k];
        combined[gi].group.members.emplace_back(c, values[vi]);
        elect_representative(&combined[gi]);
        value_matched[vi] = 1;
        ++result.stats.assignment_matches;
      }
    }

    // Values with no partner join the combined column as singletons.
    for (size_t vi = 0; vi < values.size(); ++vi) {
      if (value_matched[vi]) continue;
      GroupState g;
      g.group.members.emplace_back(c, values[vi]);
      elect_representative(&g);
      combined.push_back(std::move(g));
    }
  }

  result.groups.reserve(combined.size());
  for (auto& g : combined) result.groups.push_back(std::move(g.group));
  return result;
}

}  // namespace lakefuzz
