// ValueMatcher: the paper's Match Values component (Sec 2.2).
//
// Solves the Fuzzy Value Match Problem (Definition 2): given a set of
// aligning columns (clean-clean — values within a column are consistent),
// partition all values into disjoint groups such that values in a group are
// within distance θ, by *sequential bipartite matching*:
//
//   combined ← column 1
//   for each next column c:
//     cost[i][j] = dist(representative(combined_i), value(c_j))
//     optimal linear sum assignment; drop pairs with cost ≥ θ
//     merge matched values into their groups; unmatched values become
//     singleton groups; re-elect each group's representative = the value
//     occurring most often across ALL aligning columns (tie → the member
//     from the earliest column)
//
// dist is cosine distance between embeddings (the paper's choice) or any
// classic string distance (ablation A3).
//
// Engineering additions, both ablatable (DESIGN.md §4.2):
//   * exact-match pre-pass — identical (identity-normalized) values match
//     without entering the assignment problem;
//   * blocking + sparse assignment above a dense-size budget.
#ifndef LAKEFUZZ_CORE_VALUE_MATCHER_H_
#define LAKEFUZZ_CORE_VALUE_MATCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "assignment/thresholded.h"
#include "core/auto_threshold.h"
#include "core/blocking.h"
#include "embedding/embedding_cache.h"
#include "embedding/model.h"
#include "text/distance.h"
#include "util/request_context.h"
#include "util/result.h"

namespace lakefuzz {

class ThreadPool;

struct ValueMatcherOptions {
  /// Matching threshold θ (paper default 0.7 — their best setting).
  double threshold = 0.7;
  /// Select θ per column pair from the observed distance distribution
  /// (extension; Auto-FuzzyJoin direction — see core/auto_threshold.h).
  /// `threshold` then only serves as the fallback.
  bool auto_threshold = false;
  AutoThresholdOptions auto_threshold_options;
  AssignmentAlgorithm algorithm = AssignmentAlgorithm::kOptimal;
  /// See ThresholdedOptions::mask_before_solve (default: the paper's
  /// solve-then-filter behavior, which ablation A2 shows is also better).
  bool mask_before_solve = false;
  /// Unify identity-equal values (exact bytes, or equal after case/space
  /// normalization) before the assignment stage.
  bool exact_match_prepass = true;
  /// Identity normalization in the pre-pass (false = exact bytes only).
  bool normalize_identity = true;
  /// Above this many cells, the dense cost matrix is replaced by blocking +
  /// sparse per-component assignment.
  size_t max_dense_cells = size_t{1} << 22;
  BlockingOptions blocking;
  /// Distance source: embedding cosine when `model` is set (paper), else
  /// `string_distance` (must be set; ablation A3).
  std::shared_ptr<const EmbeddingModel> model;
  StringDistanceFn string_distance;
  /// Optional threshold-aware replacement for `string_distance` (takes
  /// precedence when both are set): exact below its budget, may prune
  /// hopeless pairs to 1.0 (see MakeBoundedStringDistance). Match results
  /// are guaranteed identical to the plain distance, so the matcher passes
  /// θ as the budget only where a capped above-θ value provably cannot
  /// change the assignment: sparse mode (edges ≥ θ are dropped before
  /// solving) and dense mode with `mask_before_solve` (cells ≥ θ are
  /// masked either way). In the default dense solve-then-filter mode and
  /// under `auto_threshold` the budget is lifted to 1.0 — every value
  /// exact, zero prunes; the banded DP still applies.
  BoundedStringDistanceFn bounded_string_distance;
  /// Worker threads for cost-matrix fill, sparse-edge scoring, and value
  /// embedding: 0 = hardware concurrency, 1 = serial (no pool is created).
  /// Results are deterministic regardless of the setting.
  size_t num_threads = 1;
  /// Sizing of the per-MatchColumns embedding cache (embedding mode only;
  /// ignored when `shared_cache` is set).
  EmbeddingCacheOptions embedding_cache;
  /// Cross-call embedding cache owned by a long-lived session (LakeEngine).
  /// When set, MatchColumns memoizes into it instead of a fresh per-call
  /// cache, so values and representatives embedded by one call are hits for
  /// every later call over the same lake. Must wrap the same model as
  /// `model`. stats.embedding_cache_{hits,misses} then report this call's
  /// delta of the cache's counters. Match results are unaffected — the
  /// cache memoizes a pure function.
  std::shared_ptr<EmbeddingCache> shared_cache;
  /// Externally owned worker pool (a LakeEngine's session pool). Takes
  /// precedence over the lazily created per-call pool; `num_threads` then
  /// only matters as documentation. Not owned. Work below the
  /// parallelization thresholds still runs serially.
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation, polled between merge rounds (once per
  /// aligning column). A fired token returns Status::Cancelled.
  CancelToken cancel;
  /// Request deadline, polled at the same merge-round checkpoints. Once
  /// expired, MatchColumns returns Status::DeadlineExceeded (the pipeline
  /// layer may degrade that into a partial match under kTruncate).
  Deadline deadline;
};

/// One disjoint set of matched values.
struct ValueGroup {
  /// (aligned-column index, value); at most one member per column
  /// (clean-clean ⇒ bipartite 1:1 matching per column).
  std::vector<std::pair<size_t, std::string>> members;
  /// The elected representative value.
  std::string representative;
  /// Index into `members` of the representative.
  size_t representative_member = 0;
};

struct ValueMatchStats {
  size_t exact_matches = 0;
  size_t assignment_matches = 0;
  size_t dense_solves = 0;
  size_t sparse_solves = 0;
  size_t cost_evaluations = 0;
  /// Pairs the bounded string distance proved hopeless without a full DP
  /// (subset of cost_evaluations).
  size_t pruned_evaluations = 0;
  /// Embedding-cache traffic (embedding mode only): hits are value→vector
  /// lookups answered from the cache. Deterministic with an unbounded cache
  /// (misses = distinct strings embedded); with `embedding_cache.max_entries`
  /// set AND num_threads > 1, which keys stay cached depends on arrival
  /// order, so these two counters may vary run-to-run. Match results never
  /// do.
  size_t embedding_cache_hits = 0;
  size_t embedding_cache_misses = 0;
  /// θ actually used per assignment round (one entry per solve; equals the
  /// configured threshold unless auto_threshold is on).
  std::vector<double> thresholds_used;
};

struct ValueMatchResult {
  std::vector<ValueGroup> groups;
  ValueMatchStats stats;
};

/// All cross-column matched value pairs implied by the grouping, as
/// ((col_a, value_a), (col_b, value_b)) with col_a < col_b — the unit the
/// Auto-Join benchmark evaluates P/R/F1 on.
std::vector<std::pair<std::pair<size_t, std::string>,
                      std::pair<size_t, std::string>>>
CrossColumnPairs(const ValueMatchResult& result);

class ValueMatcher {
 public:
  explicit ValueMatcher(ValueMatcherOptions options);

  /// Matches values across aligned columns. `columns[i]` holds the distinct
  /// values of the i-th aligning column, in table order. Duplicate values
  /// within one column violate clean-clean and are rejected.
  Result<ValueMatchResult> MatchColumns(
      const std::vector<std::vector<std::string>>& columns) const;

 private:
  ValueMatcherOptions options_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_CORE_VALUE_MATCHER_H_
