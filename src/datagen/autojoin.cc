#include "datagen/autojoin.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "datagen/corruption.h"
#include "embedding/vocab.h"
#include "util/hash.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

/// A benchmark entity: one canonical surface plus known alternate forms.
struct GenEntity {
  std::string canonical;
  std::vector<std::string> aliases;
};

/// The 17 topics: 13 alias vocabularies + 4 combinatorial generators.
const std::vector<std::string>& TopicNamesImpl() {
  static const auto* names = new std::vector<std::string>{
      "countries",     "us_states",   "months",
      "weekdays",      "elements",    "currencies",
      "airports",      "languages",   "universities",
      "units",         "car_brands",  "sports_teams",
      "programming_languages",        "officials",
      "companies",     "cities",      "songs",
  };
  return *names;
}

std::vector<GenEntity> VocabEntities(const std::string& topic) {
  std::vector<GenEntity> out;
  for (const auto& g : TopicByName(topic).groups) {
    out.push_back(GenEntity{g.canonical, g.aliases});
  }
  return out;
}

std::vector<GenEntity> OfficialEntities(size_t want, Rng* rng) {
  // First×Last pairs; aliases: "Last, First", "Nick Last", "F. Last".
  std::unordered_map<std::string, std::string> nick;
  for (const auto& [formal, n] : Nicknames()) {
    nick.emplace(formal, n);  // first nickname wins
  }
  std::unordered_set<std::string> used;
  std::vector<GenEntity> out;
  while (out.size() < want) {
    const std::string& first = FirstNames()[rng->Uniform(FirstNames().size())];
    const std::string& last = LastNames()[rng->Uniform(LastNames().size())];
    std::string canonical = first + " " + last;
    if (!used.insert(canonical).second) continue;
    GenEntity e;
    e.canonical = canonical;
    e.aliases.push_back(last + ", " + first);
    auto it = nick.find(first);
    if (it != nick.end()) e.aliases.push_back(it->second + " " + last);
    e.aliases.push_back(first.substr(0, 1) + ". " + last);
    out.push_back(std::move(e));
    if (used.size() >= FirstNames().size() * LastNames().size()) break;
  }
  return out;
}

std::vector<GenEntity> CompanyEntities(size_t want, Rng* rng) {
  std::unordered_set<std::string> used;
  std::vector<GenEntity> out;
  const auto& heads = CompanyHeadWords();
  const auto& tails = CompanyTailWords();
  const auto& suffixes = CompanyLegalSuffixes();
  while (out.size() < want) {
    std::string base = heads[rng->Uniform(heads.size())] + " " +
                       tails[rng->Uniform(tails.size())];
    if (!used.insert(base).second) continue;
    const std::string& suffix = suffixes[rng->Uniform(suffixes.size())];
    GenEntity e;
    e.canonical = base + " " + suffix;
    e.aliases.push_back(base);  // legal suffix dropped
    e.aliases.push_back(ToUpper(base));
    out.push_back(std::move(e));
    if (used.size() >= heads.size() * tails.size()) break;
  }
  return out;
}

std::vector<GenEntity> CityEntities(size_t want, Rng* rng) {
  std::vector<size_t> idx = rng->Sample(CityNames().size(), want);
  std::vector<GenEntity> out;
  out.reserve(idx.size());
  for (size_t i : idx) {
    // No aliases: city columns differ only syntactically (typos, case).
    out.push_back(GenEntity{CityNames()[i], {}});
  }
  return out;
}

std::vector<GenEntity> SongEntities(size_t want, Rng* rng) {
  std::unordered_set<std::string> used;
  std::vector<GenEntity> out;
  const auto& adjs = TitleAdjectives();
  const auto& nouns = TitleNouns();
  while (out.size() < want) {
    std::string title = adjs[rng->Uniform(adjs.size())] + " " +
                        nouns[rng->Uniform(nouns.size())];
    if (!used.insert(title).second) continue;
    int year = 1960 + static_cast<int>(rng->Uniform(60));
    GenEntity e;
    e.canonical = title;
    e.aliases.push_back(StrFormat("%s (%d)", title.c_str(), year));
    e.aliases.push_back(ToLower(title));
    out.push_back(std::move(e));
    if (used.size() >= adjs.size() * nouns.size()) break;
  }
  return out;
}

std::vector<GenEntity> TopicEntities(const std::string& topic, size_t want,
                                     Rng* rng) {
  std::vector<GenEntity> all;
  if (topic == "officials") {
    all = OfficialEntities(want, rng);
  } else if (topic == "companies") {
    all = CompanyEntities(want, rng);
  } else if (topic == "cities") {
    all = CityEntities(want, rng);
  } else if (topic == "songs") {
    all = SongEntities(want, rng);
  } else {
    all = VocabEntities(topic);
  }
  if (all.size() > want) {
    rng->Shuffle(&all);
    all.resize(want);
  }
  return all;
}

/// Per-column surface style: which transformation family a column applies —
/// mirrors Auto-Join, where e.g. one web table lists country codes and the
/// other full names.
enum class ColumnStyle {
  kCanonical,
  kAlias,     ///< a known alternate form (code, reordering, nickname)
  kTypo,      ///< character edit
  kCaseNoise, ///< casing / punctuation noise
  kMixed,     ///< per-value random pick among the above
};

std::string RenderSurface(const GenEntity& e, ColumnStyle style, Rng* rng) {
  auto alias_or_canonical = [&]() -> const std::string& {
    if (e.aliases.empty()) return e.canonical;
    return e.aliases[rng->Uniform(e.aliases.size())];
  };
  switch (style) {
    case ColumnStyle::kCanonical:
      return e.canonical;
    case ColumnStyle::kAlias:
      if (e.aliases.empty()) {
        // Alias-free topic (cities): fall back to light corruption.
        return rng->Bernoulli(0.5) ? ApplyTypo(rng, e.canonical)
                                   : ApplyCaseNoise(rng, e.canonical);
      }
      // Compound corruption: real web tables misspell codes too, and a
      // typo'd short code easily collides with a *different* entity's code
      // — the main precision hazard of the real benchmark.
      if (rng->Bernoulli(0.15)) {
        return ApplyTypo(rng, alias_or_canonical());
      }
      return alias_or_canonical();
    case ColumnStyle::kTypo:
      return rng->Bernoulli(0.7) ? ApplyTypo(rng, e.canonical) : e.canonical;
    case ColumnStyle::kCaseNoise:
      return rng->Bernoulli(0.8) ? ApplyCaseNoise(rng, e.canonical)
                                 : e.canonical;
    case ColumnStyle::kMixed: {
      switch (rng->Uniform(4)) {
        case 0:
          return e.canonical;
        case 1:
          return style == ColumnStyle::kMixed && !e.aliases.empty()
                     ? alias_or_canonical()
                     : ApplyCaseNoise(rng, e.canonical);
        case 2:
          return ApplyTypo(rng, e.canonical);
        default:
          return ApplyCaseNoise(rng, e.canonical);
      }
    }
  }
  return e.canonical;
}

}  // namespace

size_t AutoJoinNumTopics() { return TopicNamesImpl().size(); }

const std::vector<std::string>& AutoJoinTopicNames() {
  return TopicNamesImpl();
}

uint64_t ValueItemId(size_t column, const std::string& value) {
  return HashCombine(Mix64(column ^ 0xa07030), Fnv1a64(value));
}

std::set<ItemPair> AutoJoinSet::GroundTruthPairs() const {
  // entity id → (column, value) items.
  std::unordered_map<uint64_t, std::vector<uint64_t>> by_entity;
  for (size_t c = 0; c < columns.size(); ++c) {
    for (size_t i = 0; i < columns[c].size(); ++i) {
      by_entity[entity_of[c][i]].push_back(ValueItemId(c, columns[c][i]));
    }
  }
  std::set<ItemPair> pairs;
  for (const auto& [e, items] : by_entity) {
    (void)e;
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        if (items[i] == items[j]) continue;
        pairs.insert(MakePair(items[i], items[j]));
      }
    }
  }
  return pairs;
}

AutoJoinSet GenerateAutoJoinSet(size_t topic_index,
                                const AutoJoinOptions& options,
                                uint64_t seed) {
  const auto& topics = TopicNamesImpl();
  topic_index %= topics.size();
  Rng rng(seed);

  AutoJoinSet set;
  set.topic = topics[topic_index];
  std::vector<GenEntity> entities =
      TopicEntities(set.topic, options.entities_per_set, &rng);

  size_t span = options.max_columns - options.min_columns + 1;
  size_t num_cols = options.min_columns + rng.Uniform(span);
  set.columns.resize(num_cols);
  set.entity_of.resize(num_cols);

  std::vector<ColumnStyle> styles(num_cols);
  styles[0] = ColumnStyle::kCanonical;
  // Alias columns dominate, as in the real benchmark: Auto-Join's web
  // tables mostly differ by codes/abbreviations/reorderings, with typo and
  // case noise as secondary classes.
  const ColumnStyle fuzzy_styles[] = {ColumnStyle::kAlias, ColumnStyle::kAlias,
                                      ColumnStyle::kMixed, ColumnStyle::kMixed,
                                      ColumnStyle::kTypo,
                                      ColumnStyle::kCaseNoise};
  for (size_t c = 1; c < num_cols; ++c) {
    styles[c] = fuzzy_styles[rng.Uniform(6)];
  }

  for (size_t c = 0; c < num_cols; ++c) {
    std::unordered_set<std::string> used;
    for (size_t e = 0; e < entities.size(); ++e) {
      if (!rng.Bernoulli(options.presence)) continue;
      std::string surface = RenderSurface(entities[e], styles[c], &rng);
      // Clean-clean: surfaces must be distinct within a column. Retry a few
      // times with corruption, else skip the entity here.
      for (int attempt = 0; attempt < 3 && used.count(surface); ++attempt) {
        surface = ApplyTypo(&rng, surface);
      }
      if (!used.insert(surface).second) continue;
      set.columns[c].push_back(surface);
      set.entity_of[c].push_back(static_cast<uint64_t>(e));
    }
  }
  return set;
}

std::vector<AutoJoinSet> GenerateAutoJoinBenchmark(
    const AutoJoinOptions& options) {
  std::vector<AutoJoinSet> sets;
  sets.reserve(options.num_sets);
  Rng seeder(options.seed);
  for (size_t s = 0; s < options.num_sets; ++s) {
    size_t topic = s % TopicNamesImpl().size();
    AutoJoinSet set = GenerateAutoJoinSet(topic, options, seeder.Next());
    set.name = StrFormat("%s-%02zu", set.topic.c_str(), s);
    sets.push_back(std::move(set));
  }
  return sets;
}

}  // namespace lakefuzz
