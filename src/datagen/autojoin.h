// Auto-Join-style fuzzy value-matching benchmark generator.
//
// The real Auto-Join benchmark (Zhu/He/Chaudhuri, VLDB 2017; used by the
// paper for Table 1) ships 31 integration sets over 17 topics scraped from
// web tables, each a set of aligning columns (~150 values per column on
// average) whose values match fuzzily across columns in a clean-clean way.
// Offline we regenerate its structure: 17 built-in topics (entity
// vocabularies with real alias/code/abbreviation groups, plus combinatorial
// person/company/title generators), per-column surface styles (one column
// uses codes, another full names, another corrupted forms — exactly the
// transformation classes Auto-Join catalogued), and exact ground-truth
// match pairs. See DESIGN.md §1.
#ifndef LAKEFUZZ_DATAGEN_AUTOJOIN_H_
#define LAKEFUZZ_DATAGEN_AUTOJOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/pair_eval.h"
#include "util/result.h"

namespace lakefuzz {

/// One generated integration set: aligned columns + ground truth.
struct AutoJoinSet {
  std::string name;   ///< e.g. "countries-03"
  std::string topic;  ///< one of the 17 topic names
  /// columns[c] = distinct values of aligning column c (clean-clean).
  std::vector<std::vector<std::string>> columns;
  /// entity_of[c] maps value index in columns[c] → entity id. Values of the
  /// same entity across different columns are true matches.
  std::vector<std::vector<uint64_t>> entity_of;

  /// Ground-truth cross-column match pairs, as hashed (column, value) item
  /// ids compatible with ValueItemId() below.
  std::set<ItemPair> GroundTruthPairs() const;
};

/// Stable id of a (column, value) item for pair evaluation.
uint64_t ValueItemId(size_t column, const std::string& value);

struct AutoJoinOptions {
  /// Number of integration sets (the benchmark has 31).
  size_t num_sets = 31;
  /// Entities sampled per set (→ ~values per column; benchmark avg ~150).
  size_t entities_per_set = 150;
  /// Columns per set (2..4; the matcher's sequential merge is exercised by
  /// sets with 3+).
  size_t min_columns = 2;
  size_t max_columns = 4;
  /// Probability an entity appears in a given column (injects unmatchable
  /// values — the matcher must leave them singleton).
  double presence = 0.85;
  uint64_t seed = 42;
};

/// Number of distinct topics (17, as in the benchmark).
size_t AutoJoinNumTopics();

/// Topic names in order.
const std::vector<std::string>& AutoJoinTopicNames();

/// Generates the benchmark: `options.num_sets` sets cycling over the 17
/// topics with per-set seeds.
std::vector<AutoJoinSet> GenerateAutoJoinBenchmark(
    const AutoJoinOptions& options = AutoJoinOptions());

/// Generates a single set for a given topic index (0..16) and seed.
AutoJoinSet GenerateAutoJoinSet(size_t topic_index,
                                const AutoJoinOptions& options,
                                uint64_t seed);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_DATAGEN_AUTOJOIN_H_
