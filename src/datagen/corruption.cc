#include "datagen/corruption.h"

#include <cctype>

#include "text/tokenize.h"
#include "util/str.h"

namespace lakefuzz {

std::string ApplyTypo(Rng* rng, const std::string& s) {
  if (s.size() < 2) return s;
  std::string out = s;
  size_t kind = rng->Uniform(4);
  size_t pos = 1 + rng->Uniform(out.size() - 1);  // keep the first character
  switch (kind) {
    case 0:  // insert
      out.insert(out.begin() + pos, static_cast<char>('a' + rng->Uniform(26)));
      break;
    case 1:  // delete
      out.erase(out.begin() + pos);
      break;
    case 2:  // substitute
      out[pos] = static_cast<char>('a' + rng->Uniform(26));
      break;
    case 3:  // transpose
      if (pos + 1 < out.size()) {
        std::swap(out[pos], out[pos + 1]);
      } else if (pos >= 1) {
        std::swap(out[pos - 1], out[pos]);
      }
      break;
  }
  return out;
}

std::string ApplyCaseNoise(Rng* rng, const std::string& s) {
  switch (rng->Uniform(3)) {
    case 0:
      return ToLower(s);
    case 1:
      return ToUpper(s);
    default: {
      std::string out = s;
      if (!out.empty()) {
        unsigned char c = out[0];
        out[0] = std::isupper(c) ? static_cast<char>(std::tolower(c))
                                 : static_cast<char>(std::toupper(c));
      }
      return out;
    }
  }
}

std::string ReverseTokens(const std::string& s) {
  auto tokens = WordTokens(s);
  if (tokens.size() < 2) return s;
  std::string last = tokens.back();
  tokens.pop_back();
  return last + ", " + Join(tokens, " ");
}

std::string DropVowels(Rng* rng, const std::string& s) {
  // Collect positions of vowels after the first character.
  std::vector<size_t> vowels;
  for (size_t i = 1; i < s.size(); ++i) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(s[i])));
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') {
      vowels.push_back(i);
    }
  }
  if (vowels.empty()) return s;
  size_t drop = vowels[rng->Uniform(vowels.size())];
  std::string out = s;
  out.erase(out.begin() + drop);
  return out;
}

std::string TruncateTokens(const std::string& s, size_t max_tokens) {
  auto tokens = WordTokens(s);
  if (tokens.size() <= max_tokens) return s;
  tokens.resize(max_tokens);
  return Join(tokens, " ");
}

std::string ApplyPunctuationNoise(Rng* rng, const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '.' && rng->Bernoulli(0.5)) continue;  // drop period
    out.push_back(c);
    if (c == ' ' && rng->Bernoulli(0.15)) out.push_back(' ');  // double space
  }
  return out;
}

std::string Corrupt(Rng* rng, const std::string& s,
                    const CorruptionConfig& config) {
  std::string out = s;
  if (config.reverse_tokens > 0 && rng->Bernoulli(config.reverse_tokens)) {
    out = ReverseTokens(out);
  }
  if (config.drop_vowels > 0 && rng->Bernoulli(config.drop_vowels)) {
    out = DropVowels(rng, out);
  }
  if (config.typo > 0 && rng->Bernoulli(config.typo)) {
    out = ApplyTypo(rng, out);
  }
  if (config.case_noise > 0 && rng->Bernoulli(config.case_noise)) {
    out = ApplyCaseNoise(rng, out);
  }
  if (config.punctuation > 0 && rng->Bernoulli(config.punctuation)) {
    out = ApplyPunctuationNoise(rng, out);
  }
  return out;
}

}  // namespace lakefuzz
