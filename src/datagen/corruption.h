// Syntactic corruptions applied by the benchmark generators.
//
// These are the transformation classes the Auto-Join paper (Zhu, He,
// Chaudhuri, VLDB 2017) catalogued between real joinable web tables: typos,
// case changes, punctuation differences, token reordering ("John Smith" /
// "Smith, John"), truncation, and whitespace noise. All corruption is
// seeded and deterministic.
#ifndef LAKEFUZZ_DATAGEN_CORRUPTION_H_
#define LAKEFUZZ_DATAGEN_CORRUPTION_H_

#include <string>

#include "util/rng.h"

namespace lakefuzz {

/// One random character edit: insert, delete, substitute, or transpose at a
/// random position. Strings of length < 2 are returned unchanged.
std::string ApplyTypo(Rng* rng, const std::string& s);

/// Random case change: all-lower, all-upper, or first-letter toggle.
std::string ApplyCaseNoise(Rng* rng, const std::string& s);

/// "First Last" → "Last, First" (no-op for single-token strings).
std::string ReverseTokens(const std::string& s);

/// Drops a random non-leading vowel run ("Department" → "Dpartment"-ish
/// abbreviation noise).
std::string DropVowels(Rng* rng, const std::string& s);

/// Truncates to the first `max_tokens` tokens.
std::string TruncateTokens(const std::string& s, size_t max_tokens);

/// Adds/removes periods and doubles spaces.
std::string ApplyPunctuationNoise(Rng* rng, const std::string& s);

/// Per-class probabilities for Corrupt(); all independent.
struct CorruptionConfig {
  double typo = 0.0;
  double case_noise = 0.0;
  double reverse_tokens = 0.0;
  double drop_vowels = 0.0;
  double punctuation = 0.0;
};

/// Applies each enabled corruption with its probability, in a fixed order.
std::string Corrupt(Rng* rng, const std::string& s,
                    const CorruptionConfig& config);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_DATAGEN_CORRUPTION_H_
