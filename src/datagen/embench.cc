#include "datagen/embench.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "datagen/corruption.h"
#include "embedding/vocab.h"
#include "util/rng.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

struct EmEntity {
  std::string name;      // canonical join value (tables 0, 1)
  std::string nickname;  // optional nickname form ("" if none)
  std::string email;     // canonical join value (tables 1, 2)
  std::string city;
  std::string country;       // canonical
  std::string country_code;  // alias form
  std::string university;
  int64_t birth_year;
  std::string profession;
};

const char* kProfessions[] = {"engineer", "teacher",  "physician",
                              "lawyer",   "designer", "journalist"};

}  // namespace

EmBenchmark GenerateEmBenchmark(const EmBenchOptions& options) {
  Rng rng(options.seed);
  EmBenchmark bench;

  std::unordered_map<std::string, std::string> nick;
  for (const auto& [formal, n] : Nicknames()) nick.emplace(formal, n);
  const auto& countries = TopicByName("countries").groups;
  const auto& universities = TopicByName("universities").groups;

  // Entities; homonyms deliberately reuse an earlier entity's name with
  // different attributes. All other names are unique — with a middle
  // initial, so near-collisions ("Robert Q. Smith" / "Robert J. Smith")
  // exist but exact accidental collisions don't.
  std::vector<EmEntity> entities;
  entities.reserve(options.num_entities);
  std::unordered_set<std::string> used_names;
  for (size_t e = 0; e < options.num_entities; ++e) {
    EmEntity ent;
    if (e > 0 && rng.Bernoulli(options.homonyms)) {
      ent.name = entities[rng.Uniform(entities.size())].name;
    } else {
      do {
        const std::string& first =
            FirstNames()[rng.Uniform(FirstNames().size())];
        char middle = static_cast<char>('A' + rng.Uniform(26));
        ent.name = first + " " + std::string(1, middle) + ". " +
                   LastNames()[rng.Uniform(LastNames().size())];
      } while (!used_names.insert(ent.name).second);
    }
    {
      auto first_token = ent.name.substr(0, ent.name.find(' '));
      auto it = nick.find(first_token);
      if (it != nick.end()) {
        ent.nickname =
            it->second + ent.name.substr(ent.name.find(' '));
      }
    }
    {
      // Unique email derived from the name plus a discriminating number.
      std::string local = ToLower(ent.name);
      std::string cleaned;
      for (char c : local) {
        if (c >= 'a' && c <= 'z') cleaned.push_back(c);
        if (c == ' ' && !cleaned.empty() && cleaned.back() != '.') {
          cleaned.push_back('.');
        }
      }
      ent.email = cleaned + std::to_string(e % 97) + "@example.org";
    }
    ent.city = CityNames()[rng.Uniform(CityNames().size())];
    const auto& country = countries[rng.Uniform(countries.size())];
    ent.country = country.canonical;
    ent.country_code =
        country.aliases.empty() ? country.canonical : country.aliases[0];
    ent.university = universities[rng.Uniform(universities.size())].canonical;
    ent.birth_year = 1940 + static_cast<int64_t>(rng.Uniform(65));
    ent.profession = kProfessions[rng.Uniform(6)];
    entities.push_back(std::move(ent));
  }

  // Vertical partitions forming a join *chain*, as in real open-data
  // integration sets: table 0 and 1 join on name; table 2 joins table 1 on
  // email only. When an equi-join breaks at a corrupted link, the orphaned
  // fragment shares nothing identifying with the rest of its entity — the
  // situation Fuzzy FD repairs. Some attribute columns use alias forms
  // (country code vs full name), like real open-data tables.
  size_t k = std::max<size_t>(2, options.num_tables);
  std::vector<Table> tables;
  for (size_t l = 0; l < k; ++l) {
    switch (l % 3) {
      case 0:
        tables.emplace_back(StrFormat("em_t%zu", l),
                            Schema::FromNames({"name", "city", "country"}));
        break;
      case 1:
        tables.emplace_back(
            StrFormat("em_t%zu", l),
            Schema::FromNames({"name", "email", "birthYear"}));
        break;
      default:
        tables.emplace_back(
            StrFormat("em_t%zu", l),
            Schema::FromNames({"email", "university", "profession"}));
        break;
    }
  }

  CorruptionConfig name_noise;
  name_noise.typo = 0.45;
  name_noise.case_noise = 0.25;
  name_noise.reverse_tokens = 0.3;

  std::vector<std::vector<uint64_t>> row_entities(k);
  for (size_t e = 0; e < entities.size(); ++e) {
    const EmEntity& ent = entities[e];
    for (size_t l = 0; l < k; ++l) {
      if (!rng.Bernoulli(options.presence)) continue;
      // Join value surface for this table.
      std::string surface = ent.name;
      if (rng.Bernoulli(options.corruption)) {
        if (!ent.nickname.empty() && rng.Bernoulli(0.3)) {
          surface = ent.nickname;
        } else {
          surface = Corrupt(&rng, surface, name_noise);
        }
      }
      // Email join values get corrupted too (typos only — emails have no
      // reorderings or nicknames).
      std::string email_surface = ent.email;
      if (rng.Bernoulli(options.corruption * 0.7)) {
        email_surface = ApplyTypo(&rng, email_surface);
      }
      std::vector<Value> row;
      switch (l % 3) {
        case 0:
          row = {Value::String(surface), Value::String(ent.city),
                 Value::String(rng.Bernoulli(0.5) ? ent.country
                                                  : ent.country_code)};
          break;
        case 1:
          row = {Value::String(surface), Value::String(email_surface),
                 Value::Int(ent.birth_year)};
          break;
        default:
          row = {Value::String(email_surface), Value::String(ent.university),
                 Value::String(ent.profession)};
          break;
      }
      Status s = tables[l].AppendRow(std::move(row));
      assert(s.ok());
      (void)s;
      row_entities[l].push_back(static_cast<uint64_t>(e));
    }
  }

  // TIDs in outer-union order.
  uint64_t tid = 0;
  for (size_t l = 0; l < k; ++l) {
    for (uint64_t e : row_entities[l]) {
      bench.tid_entity.emplace_back(tid++, e);
    }
  }
  bench.tables = std::move(tables);
  return bench;
}

}  // namespace lakefuzz
