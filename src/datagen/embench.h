// Entity-matching benchmark generator (ALITE EM dataset, Sec 3.2).
//
// Plants E entities whose attributes are vertically partitioned across k
// tables joined on a name column. The name surface is corrupted per table
// (typos, "Last, First" reorderings, nicknames — the inconsistencies the
// paper's motivating example shows), so equi-join FD fails to merge a
// fraction of each entity's rows while Fuzzy FD recovers them. A small
// share of entities are homonyms (same name, different cities/attributes),
// which punishes EM precision exactly where fragmented integrations are
// weakest: rows with too few attributes to tell homonyms apart.
#ifndef LAKEFUZZ_DATAGEN_EMBENCH_H_
#define LAKEFUZZ_DATAGEN_EMBENCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "fd/aligned_schema.h"
#include "table/table.h"

namespace lakefuzz {

struct EmBenchOptions {
  size_t num_entities = 200;
  size_t num_tables = 3;
  /// Probability an entity has a row in a given table.
  double presence = 0.9;
  /// Probability a join value (name) is written in a non-canonical form.
  double corruption = 0.28;
  /// Fraction of entities sharing their name with another entity.
  double homonyms = 0.05;
  uint64_t seed = 99;
};

struct EmBenchmark {
  std::vector<Table> tables;
  /// Ground truth: (TID, entity id) for every input tuple, in outer-union
  /// TID order (table order, then row order — matching FdProblem::Build).
  std::vector<std::pair<uint64_t, uint64_t>> tid_entity;
};

EmBenchmark GenerateEmBenchmark(const EmBenchOptions& options);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_DATAGEN_EMBENCH_H_
