#include "datagen/imdb.h"

#include <cassert>

#include "embedding/vocab.h"
#include "util/rng.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

// Average generated rows per title: 1 basics + ~2 akas + 1 ratings +
// ~2.5 principals + 1 crew = ~7.5, plus ~1 name row per ~2.5 titles' worth
// of distinct principals. Used to size the title count for a tuple target.
constexpr double kRowsPerTitle = 8.2;

const char* kGenres[] = {"Drama",  "Comedy", "Action",  "Thriller",
                         "Horror", "Romance", "Sci-Fi", "Documentary"};
const char* kCategories[] = {"actor", "actress", "self", "producer"};
const char* kProfessions[] = {"actor", "writer", "director", "composer"};

}  // namespace

ImdbBenchmark GenerateImdb(const ImdbOptions& options) {
  Rng rng(options.seed);
  ImdbBenchmark bench;

  size_t num_titles = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(options.target_tuples) /
                             kRowsPerTitle));
  // Name pool: roughly 0.9 names per title; Zipf sampling reuses the head.
  size_t name_pool = std::max<size_t>(2, (num_titles * 9) / 10);

  Table names("name_basics",
              Schema::FromNames(
                  {"nconst", "primaryName", "birthYear", "primaryProfession"}));
  Table basics("title_basics",
               Schema::FromNames({"tconst", "primaryTitle", "startYear",
                                  "genres"}));
  Table akas("title_akas",
             Schema::FromNames({"tconst", "akaTitle", "region"}));
  Table ratings("title_ratings",
                Schema::FromNames({"tconst", "averageRating", "numVotes"}));
  Table principals("title_principals",
                   Schema::FromNames({"tconst", "nconst", "category"}));
  Table crew("title_crew", Schema::FromNames({"tconst", "nconst", "role"}));

  auto append = [](Table* t, std::vector<Value> row) {
    Status s = t->AppendRow(std::move(row));
    assert(s.ok());
    (void)s;
  };

  // Names (only those actually referenced are emitted, see below).
  std::vector<std::string> nconsts(name_pool);
  std::vector<char> name_used(name_pool, 0);
  for (size_t i = 0; i < name_pool; ++i) {
    nconsts[i] = StrFormat("nm%07zu", i);
  }

  const auto& countries = TopicByName("countries").groups;
  const auto& adjs = TitleAdjectives();
  const auto& nouns = TitleNouns();

  size_t budget = options.target_tuples;
  auto spend = [&budget](size_t n) {
    budget = budget > n ? budget - n : 0;
  };

  for (size_t t = 0; t < num_titles && budget > 0; ++t) {
    std::string tconst = StrFormat("tt%07zu", t);
    std::string title =
        StrFormat("%s %s %zu", adjs[rng.Uniform(adjs.size())].c_str(),
                  nouns[rng.Uniform(nouns.size())].c_str(), t);
    int64_t year = 1950 + static_cast<int64_t>(rng.Uniform(75));

    append(&basics, {Value::String(tconst), Value::String(title),
                     Value::Int(year),
                     Value::String(kGenres[rng.Uniform(8)])});
    spend(1);

    size_t n_akas = 1 + rng.Uniform(3);
    for (size_t a = 0; a < n_akas && budget > 0; ++a) {
      const auto& region = countries[rng.Uniform(countries.size())];
      std::string code =
          region.aliases.empty() ? region.canonical : region.aliases[0];
      append(&akas, {Value::String(tconst),
                     Value::String(StrFormat("%s (%s)", title.c_str(),
                                             code.c_str())),
                     Value::String(code)});
      spend(1);
    }

    if (budget > 0) {
      append(&ratings,
             {Value::String(tconst),
              Value::Double(1.0 + rng.Uniform(90) / 10.0),
              Value::Int(static_cast<int64_t>(10 + rng.Zipf(1000, 1.2)))});
      spend(1);
    }

    size_t n_principals = 1 + rng.Uniform(4);
    for (size_t p = 0; p < n_principals && budget > 0; ++p) {
      size_t who = rng.Zipf(name_pool, options.name_zipf);
      name_used[who] = 1;
      append(&principals, {Value::String(tconst), Value::String(nconsts[who]),
                           Value::String(kCategories[rng.Uniform(4)])});
      spend(1);
    }

    if (budget > 0) {
      size_t director = rng.Zipf(name_pool, options.name_zipf);
      name_used[director] = 1;
      append(&crew, {Value::String(tconst), Value::String(nconsts[director]),
                     Value::String("director")});
      spend(1);
    }
  }

  // Emit name rows for referenced names, while budget remains.
  for (size_t i = 0; i < name_pool && budget > 0; ++i) {
    if (!name_used[i]) continue;
    std::string full =
        FirstNames()[rng.Uniform(FirstNames().size())] + " " +
        LastNames()[rng.Uniform(LastNames().size())];
    append(&names, {Value::String(nconsts[i]), Value::String(full),
                    Value::Int(1920 + static_cast<int64_t>(rng.Uniform(85))),
                    Value::String(kProfessions[rng.Uniform(4)])});
    spend(1);
  }

  bench.tables = {std::move(names),      std::move(basics),
                  std::move(akas),       std::move(ratings),
                  std::move(principals), std::move(crew)};
  for (const auto& t : bench.tables) bench.total_tuples += t.NumRows();
  return bench;
}

}  // namespace lakefuzz
