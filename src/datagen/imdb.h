// IMDB-style efficiency benchmark generator (ALITE benchmark, Fig. 3).
//
// The paper measures FD runtime on integration sets sampled from the public
// IMDB dump (~106M tuples across 6 tables), scaled from 5K to 30K input
// tuples. Offline we regenerate the *join topology* that drives FD cost:
// the 6-table star schema keyed by tconst/nconst, multi-row fan-out of
// akas/principals per title, and Zipf-skewed reuse of names across titles
// (popular actors connect many titles into one join-graph component). The
// workload is equi-join (values are consistent), exactly like the original:
// what Fig. 3 tests is that the *fuzzy* pipeline adds no overhead when
// there is nothing fuzzy to match.
#ifndef LAKEFUZZ_DATAGEN_IMDB_H_
#define LAKEFUZZ_DATAGEN_IMDB_H_

#include <cstdint>
#include <vector>

#include "table/table.h"

namespace lakefuzz {

struct ImdbOptions {
  /// Total input tuples across all 6 tables (the paper's x-axis, 5K–30K).
  size_t target_tuples = 10000;
  /// Skew of name popularity (Zipf exponent; higher → bigger components).
  double name_zipf = 1.05;
  uint64_t seed = 7;
};

struct ImdbBenchmark {
  /// name_basics, title_basics, title_akas, title_ratings,
  /// title_principals, title_crew — join columns share names (tconst,
  /// nconst) so AlignByName produces the intended alignment.
  std::vector<Table> tables;
  size_t total_tuples = 0;
};

ImdbBenchmark GenerateImdb(const ImdbOptions& options);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_DATAGEN_IMDB_H_
