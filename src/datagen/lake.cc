#include "datagen/lake.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

/// Pool value i of (group, column): disjoint namespaces per group keep the
/// planted structure the only unionable signal.
std::string PoolValue(size_t group, size_t col, size_t i) {
  return StrFormat("g%zu_c%zu_v%05zu", group, col, i);
}

std::string NoiseValue(size_t table, size_t col, size_t i) {
  return StrFormat("n%zu_c%zu_v%05zu", table, col, i);
}

}  // namespace

GeneratedLake GenerateLake(const LakeOptions& options) {
  assert(options.num_tables >= options.num_groups * options.group_size);
  assert(options.value_overlap > 0.0 && options.value_overlap <= 1.0);
  GeneratedLake lake;
  Rng rng(options.seed);
  const size_t cols = options.columns_per_table;
  const size_t rows = options.rows_per_table;
  // Pool size per (group, column): members sample `rows` of these, hitting
  // the requested overlap fraction.
  const size_t pool =
      std::max<size_t>(rows, static_cast<size_t>(
                                 static_cast<double>(rows) /
                                 options.value_overlap));

  size_t table_idx = 0;
  auto next_name = [&table_idx] {
    return StrFormat("lake_%04zu", table_idx++);
  };

  for (size_t g = 0; g < options.num_groups; ++g) {
    std::vector<std::string> members;
    // Shared headers within the group: by-name alignment of a discovered
    // group reproduces the planted union schema.
    std::vector<std::string> headers;
    for (size_t c = 0; c < cols; ++c) {
      headers.push_back(StrFormat("g%zu_col%zu", g, c));
    }
    for (size_t m = 0; m < options.group_size; ++m) {
      Table t(next_name(), Schema::FromNames(headers));
      // Per-column independent samples of the group pool.
      std::vector<std::vector<size_t>> picks(cols);
      for (size_t c = 0; c < cols; ++c) picks[c] = rng.Sample(pool, rows);
      for (size_t r = 0; r < rows; ++r) {
        std::vector<Value> row;
        row.reserve(cols);
        for (size_t c = 0; c < cols; ++c) {
          if (rng.Bernoulli(options.null_p)) {
            row.push_back(Value::Null());
          } else {
            row.push_back(Value::String(PoolValue(g, c, picks[c][r])));
          }
        }
        Status s = t.AppendRow(std::move(row));
        assert(s.ok());
        (void)s;
      }
      lake.total_cells += rows * cols;
      members.push_back(t.name());
      lake.tables.push_back(std::move(t));
    }
    lake.groups.push_back(std::move(members));
  }

  // Noise tables: private value universes, private headers — they should
  // never outrank a planted member.
  while (lake.tables.size() < options.num_tables) {
    const size_t n = lake.tables.size();
    std::vector<std::string> headers;
    for (size_t c = 0; c < cols; ++c) {
      headers.push_back(StrFormat("n%zu_col%zu", n, c));
    }
    Table t(next_name(), Schema::FromNames(headers));
    for (size_t r = 0; r < rows; ++r) {
      std::vector<Value> row;
      row.reserve(cols);
      for (size_t c = 0; c < cols; ++c) {
        if (rng.Bernoulli(options.null_p)) {
          row.push_back(Value::Null());
        } else {
          row.push_back(Value::String(
              NoiseValue(n, c, static_cast<size_t>(rng.Uniform(pool * 4)))));
        }
      }
      Status s = t.AppendRow(std::move(row));
      assert(s.ok());
      (void)s;
    }
    lake.total_cells += rows * cols;
    lake.tables.push_back(std::move(t));
  }
  return lake;
}

}  // namespace lakefuzz
