// Synthetic data-lake generator with planted unionable groups — the ground
// truth behind discovery recall tests and bench_discovery.
//
// A generated lake is num_tables small tables: num_groups planted groups of
// group_size members each, padded with noise tables. Members of one group
// draw their rows from shared per-column value pools (each member samples a
// `value_overlap` fraction of its column's pool), so any two members have
// expected pairwise value Jaccard ≈ overlap / (2 − overlap) per shared
// column — discoverable by MinHash, non-trivial for exact matching. Value
// pools are disjoint across groups and noise tables draw from their own
// private pools, so the planted grouping is the unique unionable structure.
//
// Generation is fully deterministic in LakeOptions::seed (Rng is
// platform-stable), so recall numbers and benchmark artifacts reproduce.
#ifndef LAKEFUZZ_DATAGEN_LAKE_H_
#define LAKEFUZZ_DATAGEN_LAKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/table.h"

namespace lakefuzz {

struct LakeOptions {
  /// Total tables; must be >= num_groups * group_size (the rest are noise).
  size_t num_tables = 200;
  size_t num_groups = 24;
  size_t group_size = 5;
  size_t rows_per_table = 40;
  /// Columns shared by the members of one group (and width of noise
  /// tables).
  size_t columns_per_table = 4;
  /// Fraction of a group's per-column value pool each member samples;
  /// pairwise member Jaccard ≈ overlap / (2 − overlap).
  double value_overlap = 0.8;
  /// Probability that a cell is nulled out (exercises null handling in
  /// sketches; keep small so overlap stays near nominal).
  double null_p = 0.02;
  uint64_t seed = 20260730;
};

struct GeneratedLake {
  /// Tables named "lake_0000" ... in generation order: group members first
  /// (group g member m at index g * group_size + m), then noise tables.
  std::vector<Table> tables;
  /// Planted ground truth: groups[g] lists the member table names.
  std::vector<std::vector<std::string>> groups;
  size_t total_cells = 0;
};

GeneratedLake GenerateLake(const LakeOptions& options);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_DATAGEN_LAKE_H_
