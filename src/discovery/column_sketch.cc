#include "discovery/column_sketch.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/hash.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

/// The i-th MinHash function applied to a value's content hash. Mix64 over
/// (hash ^ per-function salt) gives k independent-enough permutations
/// without re-touching the value.
inline uint64_t MinHashAt(uint64_t value_hash, uint64_t salt) {
  return Mix64(value_hash ^ salt);
}

/// Shared accumulation core of the two builders: signature minima + profile
/// over distinct non-null values. Both feed it (value, Value::Hash()) pairs,
/// so sketches are identical whether values arrive as interned codes or raw
/// cells.
class SketchAccumulator {
 public:
  /// `hoisted_salts` (from a SketchScratch) skips the per-column salt
  /// derivation; null derives them locally.
  SketchAccumulator(std::string name, const SketchOptions& options,
                    const std::vector<uint64_t>* hoisted_salts) {
    sketch_.name = std::move(name);
    const size_t k = std::max<size_t>(1, options.signature_size);
    sketch_.signature.assign(k, UINT64_MAX);
    if (hoisted_salts != nullptr) {
      salts_ = hoisted_salts->data();
    } else {
      // Per-function salts; Mix64(seed + i) decorrelates consecutive
      // function indices.
      local_salts_.resize(k);
      for (size_t i = 0; i < k; ++i) local_salts_[i] = Mix64(options.seed + i);
      salts_ = local_salts_.data();
    }
  }

  void AddNull() { ++sketch_.profile.nulls; }

  /// One occurrence of a *distinct* value (callers deduplicate).
  void AddDistinct(const Value& v, uint64_t value_hash) {
    auto& sig = sketch_.signature;
    for (size_t i = 0; i < sig.size(); ++i) {
      const uint64_t h = MinHashAt(value_hash, salts_[i]);
      if (h < sig[i]) sig[i] = h;
    }
    switch (v.type()) {
      case ValueType::kString:
        ++n_string_;
        len_sum_ += static_cast<double>(v.AsString().size());
        break;
      case ValueType::kInt64:
        ++n_int_;
        len_sum_ += static_cast<double>(v.ToString().size());
        break;
      case ValueType::kDouble:
        ++n_double_;
        len_sum_ += static_cast<double>(v.ToString().size());
        break;
      case ValueType::kBool:
        ++n_bool_;
        len_sum_ += static_cast<double>(v.ToString().size());
        break;
      case ValueType::kNull:
        break;  // unreachable: nulls go through AddNull
    }
  }

  ColumnSketch Finish(uint64_t rows, uint64_t distinct) && {
    ColumnProfile& p = sketch_.profile;
    p.rows = rows;
    p.distinct = distinct;
    if (distinct > 0) {
      const double d = static_cast<double>(distinct);
      p.frac_string = static_cast<double>(n_string_) / d;
      p.frac_int = static_cast<double>(n_int_) / d;
      p.frac_double = static_cast<double>(n_double_) / d;
      p.frac_bool = static_cast<double>(n_bool_) / d;
      p.avg_len = len_sum_ / d;
    }
    return std::move(sketch_);
  }

 private:
  ColumnSketch sketch_;
  const uint64_t* salts_ = nullptr;
  std::vector<uint64_t> local_salts_;
  double len_sum_ = 0.0;
  uint64_t n_string_ = 0, n_int_ = 0, n_double_ = 0, n_bool_ = 0;
};

/// Dedup set on a per-lane arena (no-op deallocate; the whole set vanishes
/// at the next Reset) or on the heap when no scratch is supplied.
template <typename T>
using ArenaSet = std::unordered_set<T, std::hash<T>, std::equal_to<T>,
                                    ArenaStlAllocator<T>>;

template <typename Set>
ColumnSketch SketchCodes(SketchAccumulator&& acc,
                         const std::vector<uint32_t>& codes,
                         const ValueDict& dict, Set& seen) {
  // Duplicate occurrences cannot change a minimum, so the k-hash work runs
  // once per *distinct* code.
  seen.reserve(codes.size() / 2 + 1);
  for (uint32_t code : codes) {
    if (code == ValueDict::kNullCode) {
      acc.AddNull();
      continue;
    }
    if (!seen.insert(code).second) continue;
    acc.AddDistinct(dict.Decode(code), dict.HashOf(code));
  }
  return std::move(acc).Finish(codes.size(), seen.size());
}

template <typename Set>
ColumnSketch SketchValues(SketchAccumulator&& acc,
                          const std::vector<Value>& values, Set& seen) {
  // Dedup by content hash — the same 64-bit hash MinHash consumes, so a
  // (cosmically unlikely) collision merges two values here exactly as it
  // would merge their signatures.
  seen.reserve(values.size() / 2 + 1);
  for (const Value& v : values) {
    if (v.is_null()) {
      acc.AddNull();
      continue;
    }
    const uint64_t h = v.Hash();
    if (!seen.insert(h).second) continue;
    acc.AddDistinct(v, h);
  }
  return std::move(acc).Finish(values.size(), seen.size());
}

}  // namespace

const std::vector<uint64_t>& SketchScratch::Salts(
    const SketchOptions& options) {
  const size_t k = std::max<size_t>(1, options.signature_size);
  if (salts_.size() != k || salts_seed_ != options.seed) {
    salts_seed_ = options.seed;
    salts_.resize(k);
    for (size_t i = 0; i < k; ++i) salts_[i] = Mix64(options.seed + i);
  }
  return salts_;
}

ColumnSketch BuildColumnSketch(std::string name,
                               const std::vector<uint32_t>& codes,
                               const ValueDict& dict,
                               const SketchOptions& options,
                               SketchScratch* scratch) {
  if (scratch != nullptr) {
    SketchAccumulator acc(std::move(name), options, &scratch->Salts(options));
    scratch->arena()->Reset();
    ArenaSet<uint32_t> seen(0, std::hash<uint32_t>(), std::equal_to<uint32_t>(),
                            ArenaStlAllocator<uint32_t>(scratch->arena()));
    return SketchCodes(std::move(acc), codes, dict, seen);
  }
  SketchAccumulator acc(std::move(name), options, nullptr);
  std::unordered_set<uint32_t> seen;
  return SketchCodes(std::move(acc), codes, dict, seen);
}

ColumnSketch BuildColumnSketchFromValues(std::string name,
                                         const std::vector<Value>& values,
                                         const SketchOptions& options,
                                         SketchScratch* scratch) {
  if (scratch != nullptr) {
    SketchAccumulator acc(std::move(name), options, &scratch->Salts(options));
    scratch->arena()->Reset();
    ArenaSet<uint64_t> seen(0, std::hash<uint64_t>(), std::equal_to<uint64_t>(),
                            ArenaStlAllocator<uint64_t>(scratch->arena()));
    return SketchValues(std::move(acc), values, seen);
  }
  SketchAccumulator acc(std::move(name), options, nullptr);
  std::unordered_set<uint64_t> seen;
  return SketchValues(std::move(acc), values, seen);
}

double EstimateJaccard(const ColumnSketch& a, const ColumnSketch& b) {
  if (a.empty() || b.empty()) return 0.0;
  if (a.signature.size() != b.signature.size() || a.signature.empty()) {
    return 0.0;
  }
  size_t equal = 0;
  for (size_t i = 0; i < a.signature.size(); ++i) {
    if (a.signature[i] == b.signature[i]) ++equal;
  }
  return static_cast<double>(equal) / static_cast<double>(a.signature.size());
}

double SchemaCompatibility(const ColumnSketch& a, const ColumnSketch& b) {
  const ColumnProfile& pa = a.profile;
  const ColumnProfile& pb = b.profile;
  // Type-mix agreement: 1 - half the L1 distance between the fraction
  // vectors (total variation distance), in [0, 1].
  const double l1 = std::abs(pa.frac_string - pb.frac_string) +
                    std::abs(pa.frac_int - pb.frac_int) +
                    std::abs(pa.frac_double - pb.frac_double) +
                    std::abs(pa.frac_bool - pb.frac_bool);
  const double type_sim = 1.0 - 0.5 * l1;
  // Length-shape agreement: ratio of mean rendered lengths (+1 smooths
  // empty-string columns), in (0, 1].
  const double la = pa.avg_len + 1.0;
  const double lb = pb.avg_len + 1.0;
  const double len_sim = la < lb ? la / lb : lb / la;
  const double name_sim = EqualsIgnoreCase(a.name, b.name) ? 1.0 : 0.0;
  return 0.6 * type_sim + 0.25 * len_sim + 0.15 * name_sim;
}

}  // namespace lakefuzz
