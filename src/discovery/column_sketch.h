// Per-column sketches for lake-scale table discovery.
//
// Discovery must answer "which registered tables are unionable with this
// one?" without scanning cell data per query. Each column is summarized
// once, at registration (or bulk resync) time, into a ColumnSketch:
//
//  * a MinHash signature estimating value-set overlap (Jaccard) between any
//    two columns in O(signature_size) — built over the *content hashes* the
//    session dictionary already stores per interned code
//    (ValueDict::HashOf), so sketching a registered table re-hashes no
//    strings and, crucially, is invariant to code assignment order: the
//    same column yields bit-identical signatures no matter how many
//    threads were interning concurrently;
//  * a lightweight profile (type mix, length, null/distinct counts) feeding
//    the schema-compatibility half of the discovery score.
//
// Sketches are plain data: building them is the only part that touches the
// dictionary, and comparing them (EstimateJaccard / SchemaCompatibility) is
// pure arithmetic, safe from any thread.
#ifndef LAKEFUZZ_DISCOVERY_COLUMN_SKETCH_H_
#define LAKEFUZZ_DISCOVERY_COLUMN_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fd/value_dict.h"
#include "util/arena.h"

namespace lakefuzz {

struct SketchOptions {
  /// MinHash functions per signature. More = tighter Jaccard estimates
  /// (standard error ~ 1/sqrt(k)); 64 keeps a column sketch at 512 bytes.
  size_t signature_size = 64;
  /// Salt for the MinHash function family. Engines that must agree on
  /// signatures (none today) need equal seeds.
  uint64_t seed = 0x1a4ef0 + 2026;
};

/// Shape summary of one column, filled by BuildColumnSketch.
struct ColumnProfile {
  uint64_t rows = 0;      ///< cells scanned
  uint64_t nulls = 0;     ///< null cells
  uint64_t distinct = 0;  ///< distinct non-null values
  /// Type mix over distinct values (fractions sum to 1 when distinct > 0).
  double frac_string = 0.0;
  double frac_int = 0.0;
  double frac_double = 0.0;
  double frac_bool = 0.0;
  /// Mean rendered length of distinct values (string length for strings,
  /// decimal rendering for numerics).
  double avg_len = 0.0;
};

/// One column's discovery summary: header + MinHash signature + profile.
struct ColumnSketch {
  std::string name;
  /// signature_size minima; UINT64_MAX slots when the column has no
  /// non-null value (empty() below).
  std::vector<uint64_t> signature;
  ColumnProfile profile;

  bool empty() const { return profile.distinct == 0; }
};

/// Reusable per-lane scratch for the sketch builders. Hoists the MinHash
/// salt table (derived once per (seed, signature_size), not once per
/// column) and owns the bump arena backing the per-column dedup set, reset
/// per column. One scratch per worker lane — nothing here is thread-safe.
/// Sketches are bit-identical with or without a scratch.
class SketchScratch {
 public:
  /// Salt table for `options`, derived on first use and cached until the
  /// seed or signature size changes.
  const std::vector<uint64_t>& Salts(const SketchOptions& options);

  ArenaAllocator* arena() { return &arena_; }

 private:
  std::vector<uint64_t> salts_;
  uint64_t salts_seed_ = 0;
  ArenaAllocator arena_;
};

/// Sketches one interned column. `codes` is the column's code span (from
/// SessionDict::ColumnCodes); `dict` supplies Decode/HashOf for profiling
/// and hashing. Deterministic: depends only on the multiset of values, not
/// on code numbering, intern interleaving, or thread count. `scratch`
/// (optional) supplies the reusable salt table + dedup arena of the calling
/// lane.
ColumnSketch BuildColumnSketch(std::string name,
                               const std::vector<uint32_t>& codes,
                               const ValueDict& dict,
                               const SketchOptions& options,
                               SketchScratch* scratch = nullptr);

/// Same sketch, built from raw cells without any dictionary (MinHash input
/// is Value::Hash() on both paths, so the two builders agree bit for bit).
/// Used for ad-hoc discovery queries, which must not grow the session
/// dictionary.
ColumnSketch BuildColumnSketchFromValues(std::string name,
                                         const std::vector<Value>& values,
                                         const SketchOptions& options,
                                         SketchScratch* scratch = nullptr);

/// MinHash estimate of the value-set Jaccard similarity of two columns,
/// in [0, 1]. Zero when either side is empty or signature sizes differ.
double EstimateJaccard(const ColumnSketch& a, const ColumnSketch& b);

/// Profile-based schema compatibility in [0, 1]: type-mix agreement,
/// length-shape agreement, and a case-insensitive header-equality bonus.
/// Complements EstimateJaccard for columns whose *domains* align even when
/// their current value sets barely overlap.
double SchemaCompatibility(const ColumnSketch& a, const ColumnSketch& b);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_DISCOVERY_COLUMN_SKETCH_H_
