#include "discovery/discovery.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "obs/trace.h"

#include "util/str.h"
#include "util/thread_pool.h"

namespace lakefuzz {

Status DiscoveryOptions::Validate() const {
  if (signature_size == 0 || signature_size > 4096) {
    return Status::InvalidArgument(StrFormat(
        "discovery.signature_size=%zu out of range [1, 4096]",
        signature_size));
  }
  if (bands == 0 || rows_per_band == 0) {
    return Status::InvalidArgument(
        "discovery.bands and rows_per_band must be positive");
  }
  if (bands * rows_per_band > signature_size) {
    return Status::InvalidArgument(StrFormat(
        "discovery banding %zu x %zu needs %zu signature slots but "
        "signature_size is %zu",
        bands, rows_per_band, bands * rows_per_band, signature_size));
  }
  if (overlap_weight < 0.0 || schema_weight < 0.0 ||
      overlap_weight + schema_weight <= 0.0) {
    return Status::InvalidArgument(
        "discovery weights must be non-negative and not both zero");
  }
  return Status::OK();
}

DiscoveryIndex::DiscoveryIndex(DiscoveryOptions options, SessionDict* dict,
                               ThreadPool* pool)
    : options_(std::move(options)),
      dict_(dict),
      pool_(pool),
      lsh_(options_.bands, options_.rows_per_band) {
  sketch_options_.signature_size = options_.signature_size;
  sketch_options_.seed = options_.seed;
}

std::vector<ColumnSketch> DiscoveryIndex::SketchTable(
    const Table& table) const {
  std::vector<ColumnSketch> sketches(table.NumColumns());
  // Column-parallel: each worker interns its column through the sharded
  // session dictionary and sketches the returned code span. Results land in
  // distinct slots, so no synchronization beyond the ParallelFor barrier.
  // Lane-indexed scratches carry the salt table and dedup arena across the
  // columns a worker sketches.
  std::vector<SketchScratch> scratches(
      MaxLanes(pool_, table.NumColumns()));
  MaybeParallelForWithLane(pool_, table.NumColumns(), [&](size_t lane,
                                                          size_t c) {
    auto codes = dict_->ColumnCodes(table, c);
    sketches[c] = BuildColumnSketch(table.schema().field(c).name, *codes,
                                    dict_->dict(), sketch_options_,
                                    &scratches[lane]);
  });
  return sketches;
}

std::vector<ColumnSketch> DiscoveryIndex::SketchQuery(
    const Table& table) const {
  std::vector<ColumnSketch> sketches(table.NumColumns());
  std::vector<SketchScratch> scratches(
      MaxLanes(pool_, table.NumColumns()));
  MaybeParallelForWithLane(pool_, table.NumColumns(), [&](size_t lane,
                                                          size_t c) {
    sketches[c] = BuildColumnSketchFromValues(
        table.schema().field(c).name, table.ColumnValues(c), sketch_options_,
        &scratches[lane]);
  });
  return sketches;
}

void DiscoveryIndex::AddTableLocked(
    const std::string& name, std::shared_ptr<const Table> table,
    std::vector<ColumnSketch> sketches,
    const std::vector<std::vector<uint64_t>>* band_keys) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) RemoveSlotLocked(it->second);

  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = entries_.size();
    entries_.emplace_back();
  }
  TableEntry& entry = entries_[slot];
  entry.name = name;
  entry.pin = std::move(table);
  entry.columns =
      std::make_shared<const std::vector<ColumnSketch>>(std::move(sketches));
  entry.live = true;
  const std::vector<ColumnSketch>& columns = *entry.columns;
  entry.col_ids.assign(columns.size(), kNoColId);
  for (size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].empty()) continue;  // nothing to collide on
    uint32_t id;
    if (!free_col_ids_.empty()) {
      id = free_col_ids_.back();
      free_col_ids_.pop_back();
      col_refs_[id] = {static_cast<uint32_t>(slot), static_cast<uint32_t>(c)};
    } else {
      id = static_cast<uint32_t>(col_refs_.size());
      col_refs_.emplace_back(static_cast<uint32_t>(slot),
                             static_cast<uint32_t>(c));
    }
    entry.col_ids[c] = id;
    if (band_keys != nullptr && c < band_keys->size() &&
        !(*band_keys)[c].empty()) {
      lsh_.AddWithKeys(id, (*band_keys)[c]);
    } else {
      lsh_.Add(id, columns[c].signature);
    }
  }
  by_name_[name] = slot;
}

void DiscoveryIndex::RemoveSlotLocked(size_t slot) {
  TableEntry& entry = entries_[slot];
  for (size_t c = 0; c < entry.col_ids.size(); ++c) {
    const uint32_t id = entry.col_ids[c];
    if (id == kNoColId) continue;
    lsh_.Remove(id, (*entry.columns)[c].signature);
    free_col_ids_.push_back(id);
  }
  by_name_.erase(entry.name);
  entry = TableEntry();
  free_slots_.push_back(slot);
}

void DiscoveryIndex::AddTable(const std::string& name,
                              std::shared_ptr<const Table> table,
                              uint64_t version) {
  if (table == nullptr) return;
  std::vector<ColumnSketch> sketches = SketchTable(*table);
  std::lock_guard<std::mutex> lock(mu_);
  AddTableLocked(name, std::move(table), std::move(sketches));
  // Advance only from the immediate predecessor: this mutation makes a
  // current index current again, but can never make a stale index (lazy
  // mode, or one that missed a concurrent mutation) claim freshness — the
  // next query's version check still triggers the reconciling Resync.
  if (version_ + 1 == version) version_ = version;
}

void DiscoveryIndex::LoadTable(
    const std::string& name, std::shared_ptr<const Table> table,
    std::vector<ColumnSketch> sketches,
    const std::vector<std::vector<uint64_t>>& band_keys, uint64_t version) {
  if (table == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  AddTableLocked(name, std::move(table), std::move(sketches), &band_keys);
  // Predecessor-only advance, as in AddTable: loading into a fresh engine
  // (registry versions 1, 2, 3, ...) keeps the index current step by step;
  // loading into a session that was already stale leaves it observably
  // stale, and the next query's Resync finds the loaded pins in place.
  if (version_ + 1 == version) version_ = version;
}

std::shared_ptr<const std::vector<ColumnSketch>> DiscoveryIndex::TableSketches(
    const std::string& name, const Table* pin) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  const TableEntry& entry = entries_[it->second];
  if (!entry.live || entry.pin.get() != pin) return nullptr;
  return entry.columns;
}

void DiscoveryIndex::RemoveTable(const std::string& name, uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) RemoveSlotLocked(it->second);
  // Same predecessor-only rule as AddTable (see there): a stale index must
  // stay observably stale.
  if (version_ + 1 == version) version_ = version;
}

Status DiscoveryIndex::Resync(
    const std::vector<std::pair<std::string, std::shared_ptr<const Table>>>&
        snapshot,
    uint64_t version, const RequestContext& ctx) {
  // One resync at a time: a second stale query waits here, then finds the
  // version already advanced and diffs to a no-op.
  std::lock_guard<std::mutex> sync_lock(resync_mu_);
  std::vector<std::pair<std::string, std::shared_ptr<const Table>>> to_add;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (version_ >= version) return Status::OK();
    // Pass 1: drop entries the snapshot no longer has (or has replaced —
    // the pin's pointer identity is the check, matching SessionDict's
    // address-keyed memo).
    for (size_t slot = 0; slot < entries_.size(); ++slot) {
      if (!entries_[slot].live) continue;
      auto it = std::lower_bound(
          snapshot.begin(), snapshot.end(), entries_[slot].name,
          [](const auto& p, const std::string& n) { return p.first < n; });
      if (it == snapshot.end() || it->first != entries_[slot].name ||
          it->second.get() != entries_[slot].pin.get()) {
        RemoveSlotLocked(slot);
      }
    }
    // Pass 2: collect what is missing.
    for (const auto& [name, table] : snapshot) {
      if (by_name_.find(name) == by_name_.end()) {
        to_add.emplace_back(name, table);
      }
    }
  }

  // Bulk sketching outside the index lock, parallel over (table, column)
  // tasks — the bulk-load path scales past per-table column counts.
  std::vector<std::pair<size_t, size_t>> tasks;  // (to_add idx, column)
  std::vector<std::vector<ColumnSketch>> built(to_add.size());
  for (size_t t = 0; t < to_add.size(); ++t) {
    built[t].resize(to_add[t].second->NumColumns());
    for (size_t c = 0; c < to_add[t].second->NumColumns(); ++c) {
      tasks.emplace_back(t, c);
    }
  }
  std::vector<SketchScratch> scratches(MaxLanes(pool_, tasks.size()));
  std::atomic<bool> stop_flag{false};
  MaybeParallelForWithLane(pool_, tasks.size(), [&](size_t lane, size_t i) {
    // Cooperative stop checkpoint per sketch task: remaining tasks degrade
    // to no-ops so a fired token / expired deadline drains the bulk build
    // quickly (the typed status is re-derived on the driving thread below).
    if (stop_flag.load(std::memory_order_relaxed)) return;
    if (!ctx.CheckStop("discovery index resync").ok()) {
      stop_flag.store(true, std::memory_order_relaxed);
      return;
    }
    const auto [t, c] = tasks[i];
    const Table& table = *to_add[t].second;
    auto codes = dict_->ColumnCodes(table, c);
    built[t][c] = BuildColumnSketch(table.schema().field(c).name, *codes,
                                    dict_->dict(), sketch_options_,
                                    &scratches[lane]);
  });
  // Nothing is inserted on a stop and the version stays behind: the index
  // remains observably stale and the next discovery call resyncs from
  // scratch. A resync has no partial result, so kTruncate does not apply —
  // the stop is always the request's error.
  LAKEFUZZ_RETURN_IF_ERROR(ctx.CheckStop("discovery index resync"));
  if (stop_flag.load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded("discovery index resync deadline exceeded");
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (size_t t = 0; t < to_add.size(); ++t) {
    // A concurrent AddTable may have raced us here; replace-by-name keeps
    // exactly one entry either way.
    AddTableLocked(to_add[t].first, std::move(to_add[t].second),
                   std::move(built[t]));
  }
  version_ = std::max(version_, version);
  return Status::OK();
}

uint64_t DiscoveryIndex::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

size_t DiscoveryIndex::num_tables() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_name_.size();
}

size_t DiscoveryIndex::num_columns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lsh_.num_entries();
}

std::vector<DiscoveryIndex::CandidateRef>
DiscoveryIndex::CandidateSnapshotLocked(
    const std::vector<const ColumnSketch*>& query, size_t k,
    size_t exclude_slot) const {
  // Candidate generation: any table one of whose columns shares an LSH
  // band bucket with a query column. Slot order (ascending) keeps the
  // scoring loop deterministic.
  std::vector<char> is_candidate(entries_.size(), 0);
  for (const ColumnSketch* qc : query) {
    for (uint32_t id : lsh_.Query(qc->signature)) {
      is_candidate[col_refs_[id].first] = 1;
    }
  }
  std::vector<size_t> slots;
  for (size_t slot = 0; slot < entries_.size(); ++slot) {
    if (is_candidate[slot] && entries_[slot].live && slot != exclude_slot) {
      slots.push_back(slot);
    }
  }
  // Small-lake / sparse-collision fallback: when LSH surfaces fewer than k
  // tables, score everything rather than return a short list. Recall never
  // drops below brute force for small k; large lakes stay on the LSH path.
  if (slots.size() < k) {
    slots.clear();
    for (size_t slot = 0; slot < entries_.size(); ++slot) {
      if (entries_[slot].live && slot != exclude_slot) slots.push_back(slot);
    }
  }
  std::vector<CandidateRef> out;
  out.reserve(slots.size());
  for (size_t slot : slots) {
    out.push_back(CandidateRef{entries_[slot].name, entries_[slot].columns});
  }
  return out;
}

Result<std::vector<DiscoveryCandidate>> DiscoveryIndex::ScoreCandidates(
    const std::vector<const ColumnSketch*>& query,
    const std::vector<CandidateRef>& candidates, size_t k,
    const RequestContext& ctx, Truncation* truncation) const {
  // Sketch-scoring span: both TopK entry points funnel through here, so
  // one seam traces the candidate-ranking cost of every discovery query.
  ScopedSpan rank_span(ctx, "discover_rank");
  rank_span.AddAttr("candidates", static_cast<int64_t>(candidates.size()));
  rank_span.AddAttr("query_columns", static_cast<int64_t>(query.size()));
  std::vector<DiscoveryCandidate> out;
  const double denom = static_cast<double>(query.size());
  // Normalizing by the weight sum keeps score in [0, 1] for ANY valid
  // weight pair (Validate only requires non-negative, not sum == 1).
  const double weight_sum = options_.overlap_weight + options_.schema_weight;
  out.reserve(candidates.size());
  for (const CandidateRef& ref : candidates) {
    Status stop = ctx.CheckStop("discovery");
    if (!stop.ok()) {
      // Best-so-far degradation: under kTruncate a deadline stop ranks the
      // candidates scored so far instead of failing the search.
      if (!ctx.ShouldTruncate(stop.code())) return stop;
      if (truncation != nullptr && !truncation->truncated) {
        truncation->truncated = true;
        truncation->stage = Stage::kDiscover;
        truncation->reason = stop.message();
        truncation->components_completed = out.size();
        truncation->components_skipped = candidates.size() - out.size();
      }
      break;
    }
    DiscoveryCandidate cand;
    cand.name = ref.name;
    for (const ColumnSketch* qc : query) {
      double best = 0.0, best_j = 0.0, best_c = 0.0;
      for (const ColumnSketch& tc : *ref.columns) {
        if (tc.empty()) continue;
        const double j = EstimateJaccard(*qc, tc);
        const double c = SchemaCompatibility(*qc, tc);
        const double s = (options_.overlap_weight * j +
                          options_.schema_weight * c) /
                         weight_sum;
        if (s > best) {
          best = s;
          best_j = j;
          best_c = c;
        }
      }
      cand.score += best;
      cand.overlap += best_j;
      cand.compat += best_c;
      if (best_j > 0.0) ++cand.matched_columns;
    }
    cand.score /= denom;
    cand.overlap /= denom;
    cand.compat /= denom;
    out.push_back(std::move(cand));
  }
  std::sort(out.begin(), out.end(),
            [](const DiscoveryCandidate& a, const DiscoveryCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.name < b.name;
            });
  if (out.size() > k) out.resize(k);
  rank_span.AddAttr("ranked", static_cast<int64_t>(out.size()));
  return out;
}

Result<std::vector<DiscoveryCandidate>> DiscoveryIndex::TopK(
    const std::vector<ColumnSketch>& query, size_t k,
    const RequestContext& ctx, Truncation* truncation) const {
  if (k == 0) {
    return Status::InvalidArgument("discovery k must be positive");
  }
  std::vector<const ColumnSketch*> qcols;
  for (const ColumnSketch& qc : query) {
    if (!qc.empty()) qcols.push_back(&qc);
  }
  if (qcols.empty()) {
    return std::vector<DiscoveryCandidate>();  // no signal: all scores 0
  }
  std::vector<CandidateRef> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    candidates = CandidateSnapshotLocked(qcols, k, /*exclude_slot=*/SIZE_MAX);
  }
  // Scoring runs on the snapshot only — concurrent Register/Unregister and
  // other queries proceed in parallel.
  return ScoreCandidates(qcols, candidates, k, ctx, truncation);
}

Result<std::vector<DiscoveryCandidate>> DiscoveryIndex::TopKByName(
    const std::string& name, size_t k, const RequestContext& ctx,
    Truncation* truncation) const {
  if (k == 0) {
    return Status::InvalidArgument("discovery k must be positive");
  }
  // Keeps the query table's sketches alive through the unlocked scoring.
  std::shared_ptr<const std::vector<ColumnSketch>> query_columns;
  std::vector<const ColumnSketch*> qcols;
  std::vector<CandidateRef> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      return Status::NotFound(StrFormat(
          "table '%s' is not in the discovery index", name.c_str()));
    }
    query_columns = entries_[it->second].columns;
    for (const ColumnSketch& qc : *query_columns) {
      if (!qc.empty()) qcols.push_back(&qc);
    }
    if (qcols.empty()) return std::vector<DiscoveryCandidate>();
    candidates = CandidateSnapshotLocked(qcols, k, it->second);
  }
  return ScoreCandidates(qcols, candidates, k, ctx, truncation);
}

}  // namespace lakefuzz
