// DiscoveryIndex: lake-scale unionable-table search over sketches.
//
// The paper's operator integrates a *given* set of unionable tables; in a
// real lake someone must first find that set ("Table Integration in Data
// Lakes Unleashed" makes this a first-class stage, and Gen-T shows
// integration quality hinges on picking the right originating tables). A
// DiscoveryIndex is that stage: every registered table is summarized into
// per-column MinHash + profile sketches (column_sketch.h) and indexed in an
// LSH banding structure (lsh_index.h), so "which tables union with this
// one?" is answered from sketches alone — no cell data is touched at query
// time.
//
// Construction is incremental: LakeEngine feeds AddTable / RemoveTable as
// the registry mutates (sketching runs column-parallel on the session
// pool), and every index state carries the TableRegistry::version() it is
// consistent with. A query that observes a version mismatch first runs
// Resync — a bulk diff against a registry snapshot whose sketching
// parallelizes over (table, column) tasks — so the index also serves
// engines that defer building entirely (DiscoveryOptions::build_at_register
// = false, the bulk-load pattern benchmarked by bench_discovery).
//
// Determinism: sketches depend only on value content (see column_sketch.h),
// LSH candidate sets are sorted, and scoring iterates candidates in slot
// order with a (score desc, name asc) final sort — so the same lake yields
// identical top-k lists no matter how many threads built the index.
#ifndef LAKEFUZZ_DISCOVERY_DISCOVERY_H_
#define LAKEFUZZ_DISCOVERY_DISCOVERY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "discovery/column_sketch.h"
#include "discovery/lsh_index.h"
#include "fd/session_dict.h"
#include "table/table.h"
#include "util/request_context.h"
#include "util/result.h"

namespace lakefuzz {

class ThreadPool;

/// Discovery knobs, builder-style like EngineOptions. Validate() runs in
/// LakeEngine::Create before any resource is allocated.
struct DiscoveryOptions {
  /// MinHash functions per column signature (estimate error ~ 1/sqrt(k)).
  size_t signature_size = 64;
  /// LSH banding: `bands` bands of `rows_per_band` signature slots.
  /// bands · rows_per_band must not exceed signature_size. Two columns with
  /// Jaccard j collide with probability 1 - (1 - j^rows)^bands; the default
  /// 16 x 4 passes j = 0.5 columns ~65% of the time per column (and nearly
  /// always for tables sharing several columns) while dropping j < 0.1.
  size_t bands = 16;
  size_t rows_per_band = 4;
  /// Salt for the MinHash family.
  uint64_t seed = 0x1a4ef0 + 2026;
  /// Candidate score = (overlap_weight · estimated-Jaccard +
  /// schema_weight · profile-compatibility) / (overlap_weight +
  /// schema_weight), averaged over query columns — normalized, so score
  /// stays in [0, 1] for any valid weight pair.
  double overlap_weight = 0.7;
  double schema_weight = 0.3;
  /// Sketch and index each table as it registers (incremental, on the
  /// session pool). When false, registration is untouched and the whole
  /// index is built lazily — in one parallel bulk pass — by the first
  /// discovery call that observes a registry version mismatch.
  bool build_at_register = true;

  DiscoveryOptions& SetSignatureSize(size_t k) {
    signature_size = k;
    return *this;
  }
  DiscoveryOptions& SetBanding(size_t b, size_t r) {
    bands = b;
    rows_per_band = r;
    return *this;
  }
  DiscoveryOptions& SetWeights(double overlap, double schema) {
    overlap_weight = overlap;
    schema_weight = schema;
    return *this;
  }
  DiscoveryOptions& SetBuildAtRegister(bool eager) {
    build_at_register = eager;
    return *this;
  }

  Status Validate() const;
};

/// One scored discovery hit.
struct DiscoveryCandidate {
  std::string name;
  /// Combined score in [0, 1]: the quantity candidates are ranked by.
  double score = 0.0;
  /// Mean estimated value-overlap (Jaccard) of the best column match per
  /// query column — the "do these tables share data?" half of the score.
  double overlap = 0.0;
  /// Mean schema compatibility of those matches — the "do these tables
  /// share shape?" half.
  double compat = 0.0;
  /// Query columns whose best match had non-zero estimated overlap.
  size_t matched_columns = 0;
};

/// Sketch + LSH index over one engine session's registered tables.
/// Thread-safe: mutators and queries may run concurrently (one internal
/// mutex; the expensive sketching always happens outside it).
class DiscoveryIndex {
 public:
  /// `dict` supplies interned codes + content hashes for sketching; `pool`
  /// (nullable = serial) runs sketch builds. Neither is owned; both must
  /// outlive the index.
  DiscoveryIndex(DiscoveryOptions options, SessionDict* dict,
                 ThreadPool* pool);

  const DiscoveryOptions& options() const { return options_; }

  /// Sketches `table` (column-parallel on the pool) and indexes it under
  /// `name`, replacing any existing entry of that name. `version` is the
  /// registry version the corresponding Register produced (captured under
  /// the registry lock). The index version advances to `version` only when
  /// it was current at `version - 1` — an index that was already stale
  /// stays stale, so the next query's Resync still runs (this is what
  /// keeps a lazily built index from claiming freshness it does not have).
  void AddTable(const std::string& name, std::shared_ptr<const Table> table,
                uint64_t version);

  /// Drops `name` from the index (no-op when absent). Same version-advance
  /// rule as AddTable.
  void RemoveTable(const std::string& name, uint64_t version);

  /// Catalog-load form of AddTable: indexes `name` with pre-built sketches
  /// and pre-computed LSH band keys (band_keys[c] as produced by
  /// LshIndex::ComputeBandKeys; empty for unindexed columns) — no sketching
  /// and no band hashing happens here, which is what makes a warm catalog
  /// open re-sketch zero columns. The sketches must have been built with
  /// this index's options (the catalog manifest enforces that). Same
  /// version-advance rule as AddTable.
  void LoadTable(const std::string& name, std::shared_ptr<const Table> table,
                 std::vector<ColumnSketch> sketches,
                 const std::vector<std::vector<uint64_t>>& band_keys,
                 uint64_t version);

  /// The indexed sketches of `name`, or nullptr when the name is absent or
  /// its entry pins a different snapshot than `pin` (pointer identity, the
  /// same staleness check Resync uses). Lets the catalog writer persist
  /// already-built sketches instead of re-sketching.
  std::shared_ptr<const std::vector<ColumnSketch>> TableSketches(
      const std::string& name, const Table* pin) const;

  /// Reconciles the index against a full registry snapshot (sorted
  /// name → table pairs from TableRegistry::Snapshot): stale entries are
  /// removed, replaced tables re-sketched, missing tables added — sketching
  /// parallelized over (table, column) tasks. Idempotent; concurrent
  /// resyncs serialize. A fired token / expired deadline in `ctx` aborts
  /// the bulk sketch with kCancelled / kDeadlineExceeded and leaves the
  /// index stale (the next call resyncs from scratch) — this is the
  /// dominant cost of a lazy-mode discovery call, so it must honor the
  /// request's lifecycle.
  Status Resync(
      const std::vector<std::pair<std::string, std::shared_ptr<const Table>>>&
          snapshot,
      uint64_t version, const RequestContext& ctx = RequestContext());

  /// The registry version the index last reconciled with. A caller holding
  /// TableRegistry::version() != this must Resync before trusting queries.
  uint64_t version() const;

  size_t num_tables() const;
  /// Indexed (non-empty) columns across all tables.
  size_t num_columns() const;

  /// Sketches a registered table for indexing (column-parallel). Values
  /// are interned through the session dictionary, so the pinned column
  /// codes double as a warm start for later Integrate calls.
  std::vector<ColumnSketch> SketchTable(const Table& table) const;

  /// Sketches an ad-hoc query table without touching the session
  /// dictionary (MinHash needs only Value content hashes, which are
  /// identical either way) — one-off query traffic cannot grow the
  /// session-lifetime dictionary.
  std::vector<ColumnSketch> SketchQuery(const Table& table) const;

  /// Top-k candidates for an ad-hoc query sketch set, ranked by score with
  /// deterministic (score desc, name asc) order; fewer than k when the lake
  /// is small. `ctx` is polled between candidate scorings: a fired token
  /// surfaces as kCancelled, an expired deadline as kDeadlineExceeded —
  /// unless ctx.policy is kTruncate, in which case the candidates scored so
  /// far are ranked and returned with `truncation` (when given) recording
  /// the best-so-far cut at Stage::kDiscover.
  Result<std::vector<DiscoveryCandidate>> TopK(
      const std::vector<ColumnSketch>& query, size_t k,
      const RequestContext& ctx = RequestContext(),
      Truncation* truncation = nullptr) const;

  /// Top-k candidates for an indexed table, excluding itself.
  /// ErrorCode::kNotFound when `name` is not indexed. Same lifecycle and
  /// truncation contract as TopK.
  Result<std::vector<DiscoveryCandidate>> TopKByName(
      const std::string& name, size_t k,
      const RequestContext& ctx = RequestContext(),
      Truncation* truncation = nullptr) const;

 private:
  struct TableEntry {
    std::string name;
    std::shared_ptr<const Table> pin;  ///< identity check for Resync
    /// Immutable once built: queries snapshot the shared_ptr under the
    /// index lock and score outside it (a concurrent RemoveTable cannot
    /// invalidate an in-flight scoring pass).
    std::shared_ptr<const std::vector<ColumnSketch>> columns;
    /// LSH id per column; kNoColId for empty (never-indexed) columns.
    std::vector<uint32_t> col_ids;
    bool live = false;
  };
  /// One scorable candidate snapshotted out of the index.
  struct CandidateRef {
    std::string name;
    std::shared_ptr<const std::vector<ColumnSketch>> columns;
  };
  static constexpr uint32_t kNoColId = UINT32_MAX;

  /// When `band_keys` is non-null, column c is LSH-inserted via its
  /// precomputed keys instead of hashing its signature (the catalog path).
  void AddTableLocked(
      const std::string& name, std::shared_ptr<const Table> table,
      std::vector<ColumnSketch> sketches,
      const std::vector<std::vector<uint64_t>>* band_keys = nullptr);
  void RemoveSlotLocked(size_t slot);
  /// LSH candidate generation + snapshot (called with mu_ held): the
  /// candidate tables' names and sketch vectors, in slot order.
  std::vector<CandidateRef> CandidateSnapshotLocked(
      const std::vector<const ColumnSketch*>& query, size_t k,
      size_t exclude_slot) const;
  /// Exact scoring over a snapshot — runs without the index lock.
  Result<std::vector<DiscoveryCandidate>> ScoreCandidates(
      const std::vector<const ColumnSketch*>& query,
      const std::vector<CandidateRef>& candidates, size_t k,
      const RequestContext& ctx, Truncation* truncation) const;

  DiscoveryOptions options_;
  SketchOptions sketch_options_;
  SessionDict* dict_;
  ThreadPool* pool_;

  mutable std::mutex mu_;  ///< guards everything below
  uint64_t version_ = 0;
  std::unordered_map<std::string, size_t> by_name_;
  std::vector<TableEntry> entries_;
  std::vector<size_t> free_slots_;
  /// LSH column id → (table slot, column index); freed ids are recycled.
  std::vector<std::pair<uint32_t, uint32_t>> col_refs_;
  std::vector<uint32_t> free_col_ids_;
  LshIndex lsh_;

  /// Serializes Resync's compute phase so concurrent stale queries don't
  /// sketch the same lake twice.
  mutable std::mutex resync_mu_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_DISCOVERY_DISCOVERY_H_
