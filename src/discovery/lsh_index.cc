#include "discovery/lsh_index.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"

namespace lakefuzz {

LshIndex::LshIndex(size_t bands, size_t rows)
    : bands_(bands), rows_(rows), tables_(bands) {}

uint64_t LshIndex::BandKey(size_t band,
                           const std::vector<uint64_t>& signature) const {
  assert(signature.size() >= bands_ * rows_);
  // FNV over the band's slice, salted by the band index so identical slices
  // in different bands land in independent buckets.
  uint64_t h = Mix64(0x15b1ab1e + band);
  for (size_t r = 0; r < rows_; ++r) {
    h = HashCombine(h, signature[band * rows_ + r]);
  }
  return h;
}

void LshIndex::Add(uint32_t id, const std::vector<uint64_t>& signature) {
  for (size_t band = 0; band < bands_; ++band) {
    tables_[band][BandKey(band, signature)].push_back(id);
  }
  ++num_entries_;
}

void LshIndex::Remove(uint32_t id, const std::vector<uint64_t>& signature) {
  for (size_t band = 0; band < bands_; ++band) {
    auto it = tables_[band].find(BandKey(band, signature));
    if (it == tables_[band].end()) continue;
    auto& bucket = it->second;
    auto pos = std::find(bucket.begin(), bucket.end(), id);
    if (pos == bucket.end()) continue;
    // Swap-erase: bucket order is never observable (Query sorts).
    *pos = bucket.back();
    bucket.pop_back();
    if (bucket.empty()) tables_[band].erase(it);
  }
  if (num_entries_ > 0) --num_entries_;
}

void LshIndex::ComputeBandKeys(const std::vector<uint64_t>& signature,
                               std::vector<uint64_t>* keys) const {
  keys->resize(bands_);
  for (size_t band = 0; band < bands_; ++band) {
    (*keys)[band] = BandKey(band, signature);
  }
}

void LshIndex::AddWithKeys(uint32_t id, const std::vector<uint64_t>& keys) {
  assert(keys.size() == bands_);
  for (size_t band = 0; band < bands_; ++band) {
    tables_[band][keys[band]].push_back(id);
  }
  ++num_entries_;
}

std::vector<uint32_t> LshIndex::Query(
    const std::vector<uint64_t>& signature) const {
  std::vector<uint32_t> out;
  for (size_t band = 0; band < bands_; ++band) {
    auto it = tables_[band].find(BandKey(band, signature));
    if (it == tables_[band].end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace lakefuzz
