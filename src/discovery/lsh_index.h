// LshIndex: MinHash banding index over column signatures.
//
// The classic LSH construction: a signature of b·r minima is cut into b
// bands of r rows; each band hashes to a bucket, and two columns collide in
// a band with probability j^r (j = their Jaccard similarity), hence in at
// least one band with probability 1 - (1 - j^r)^b — a sharp S-curve that
// passes similar columns and drops dissimilar ones. Candidate generation is
// therefore O(bands) hash lookups per query column, independent of lake
// size; exact scoring runs only on the survivors.
//
// The index stores opaque uint32 column ids assigned by the caller
// (DiscoveryIndex maps them back to (table, column)). Not internally
// synchronized: the owner serializes access.
#ifndef LAKEFUZZ_DISCOVERY_LSH_INDEX_H_
#define LAKEFUZZ_DISCOVERY_LSH_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lakefuzz {

class LshIndex {
 public:
  /// `bands` bands of `rows` signature slots each; signatures passed to
  /// Add/Remove/Query must hold at least bands·rows entries (validated by
  /// DiscoveryOptions).
  LshIndex(size_t bands, size_t rows);

  size_t bands() const { return bands_; }
  size_t rows() const { return rows_; }
  size_t num_entries() const { return num_entries_; }

  /// Inserts `id` into one bucket per band.
  void Add(uint32_t id, const std::vector<uint64_t>& signature);

  /// Removes `id` from every bucket Add(id, signature) put it in. The
  /// signature must be the one it was added with (sketches are immutable,
  /// so the owner always has it).
  void Remove(uint32_t id, const std::vector<uint64_t>& signature);

  /// All ids sharing at least one band bucket with `signature` — sorted and
  /// deduplicated, so the result is independent of insertion order (and
  /// therefore of index-build thread count).
  std::vector<uint32_t> Query(const std::vector<uint64_t>& signature) const;

  /// The bucket key per band for `signature` (keys[band] == the key Add
  /// would hash into). Pure function of (banding, signature) — the durable
  /// catalog persists these so a warm open re-buckets without recomputing.
  void ComputeBandKeys(const std::vector<uint64_t>& signature,
                       std::vector<uint64_t>* keys) const;

  /// Add from precomputed band keys (one per band, as produced by
  /// ComputeBandKeys). Remove still takes the signature: keys are a pure
  /// function of it, so the recomputed keys find the same buckets.
  void AddWithKeys(uint32_t id, const std::vector<uint64_t>& keys);

 private:
  uint64_t BandKey(size_t band, const std::vector<uint64_t>& signature) const;

  size_t bands_;
  size_t rows_;
  size_t num_entries_ = 0;
  /// One bucket map per band: band key → ids (unsorted; Query sorts).
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> tables_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_DISCOVERY_LSH_INDEX_H_
