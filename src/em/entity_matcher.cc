#include "em/entity_matcher.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "embedding/vector_ops.h"
#include "text/distance.h"
#include "text/normalize.h"
#include "text/tokenize.h"

namespace lakefuzz {

EntityMatcher::EntityMatcher(EntityMatcherOptions options)
    : options_(std::move(options)) {}

double EntityMatcher::RowSimilarity(const Table& table, size_t row_a,
                                    size_t row_b) const {
  double acc = 0.0;
  size_t overlap = 0;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const Value& va = table.At(row_a, c);
    const Value& vb = table.At(row_b, c);
    if (va.is_null() || vb.is_null()) continue;
    ++overlap;
    if (va == vb) {
      acc += 1.0;
      continue;
    }
    std::string sa = Normalize(va.ToString());
    std::string sb = Normalize(vb.ToString());
    if (sa == sb) {
      acc += 1.0;
    } else if (options_.model != nullptr) {
      acc += std::max(
          0.0, CosineSimilarity(options_.model->Embed(sa),
                                options_.model->Embed(sb)));
    } else {
      acc += JaroWinklerSimilarity(sa, sb);
    }
  }
  if (overlap < options_.min_overlap_columns) return 0.0;
  return acc / static_cast<double>(overlap);
}

std::vector<std::vector<size_t>> EntityMatcher::Cluster(
    const Table& table) const {
  const size_t n = table.NumRows();
  // Token blocking over all string-ish cells.
  std::unordered_map<std::string, std::vector<size_t>> blocks;
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      const Value& v = table.At(r, c);
      if (v.is_null()) continue;
      for (const auto& tok : WordTokens(Normalize(v.ToString()))) {
        if (tok.size() < 2) continue;
        auto& block = blocks[tok];
        if (block.empty() || block.back() != r) block.push_back(r);
      }
    }
  }

  // Union-find over rows.
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  // Score candidate pairs within blocks once (dedup via set of pairs).
  std::unordered_map<uint64_t, char> scored;
  for (const auto& [tok, rows] : blocks) {
    (void)tok;
    if (rows.size() < 2 || rows.size() > options_.max_block_size) continue;
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t j = i + 1; j < rows.size(); ++j) {
        size_t a = rows[i];
        size_t b = rows[j];
        if (find(a) == find(b)) continue;
        uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
        if (!scored.emplace(key, 1).second) continue;
        if (RowSimilarity(table, a, b) >= options_.similarity_threshold) {
          parent[find(a)] = find(b);
        }
      }
    }
  }

  std::unordered_map<size_t, std::vector<size_t>> groups;
  for (size_t r = 0; r < n; ++r) groups[find(r)].push_back(r);
  std::vector<std::vector<size_t>> out;
  out.reserve(groups.size());
  for (auto& [root, members] : groups) {
    (void)root;
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<uint64_t>> ExpandClustersToTids(
    const std::vector<FdResultTuple>& rows,
    const std::vector<std::vector<size_t>>& row_clusters) {
  std::vector<std::vector<uint64_t>> out;
  out.reserve(row_clusters.size());
  for (const auto& cluster : row_clusters) {
    std::vector<uint64_t> tids;
    for (size_t r : cluster) {
      for (uint32_t tid : rows[r].tids) tids.push_back(tid);
    }
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    out.push_back(std::move(tids));
  }
  return out;
}

}  // namespace lakefuzz
