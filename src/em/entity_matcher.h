// EntityMatcher: the paper's downstream task (Sec 3.2, "Downstreaming Task
// Effectiveness").
//
// A blocking + pairwise-similarity + transitive-closure entity resolver run
// over an *integrated* table. Integration quality shows through directly:
// regular FD leaves one real-world entity fragmented across rows with
// conflicting surface forms, which the resolver must re-match (losing
// recall) or mis-matches (losing precision); Fuzzy FD hands it pre-merged,
// more complete rows.
#ifndef LAKEFUZZ_EM_ENTITY_MATCHER_H_
#define LAKEFUZZ_EM_ENTITY_MATCHER_H_

#include <memory>

#include "embedding/model.h"
#include "fd/fd_tuple.h"
#include "table/table.h"

namespace lakefuzz {

struct EntityMatcherOptions {
  /// Minimum mean per-column similarity for two rows to match.
  double similarity_threshold = 0.8;
  /// Minimum number of columns where both rows are non-null; pairs with
  /// less shared evidence never match.
  size_t min_overlap_columns = 1;
  /// Embedding model for cell similarity; when null, Jaro-Winkler on
  /// normalized strings is used.
  std::shared_ptr<const EmbeddingModel> model;
  /// Token-blocking: candidate pairs must share one token key. Blocks
  /// larger than this are skipped (stop-token suppression).
  size_t max_block_size = 256;
};

/// Clusters the rows of an integrated table into entities.
class EntityMatcher {
 public:
  explicit EntityMatcher(EntityMatcherOptions options = EntityMatcherOptions());

  /// Returns clusters of row indices (transitive closure over matched
  /// pairs). Every row appears in exactly one cluster.
  std::vector<std::vector<size_t>> Cluster(const Table& table) const;

  /// Similarity of two rows in [0,1] (exposed for tests): mean similarity
  /// over columns where both are non-null, 0 when overlap is below
  /// min_overlap_columns.
  double RowSimilarity(const Table& table, size_t row_a, size_t row_b) const;

 private:
  EntityMatcherOptions options_;
};

/// Lifts row clusters to clusters of input-tuple TIDs using FD provenance:
/// the entity cluster of a row contains every input tuple merged into it.
/// This is the unit the benchmark evaluates on — it makes EM quality
/// comparable across integrations with different row granularity.
std::vector<std::vector<uint64_t>> ExpandClustersToTids(
    const std::vector<FdResultTuple>& rows,
    const std::vector<std::vector<size_t>>& row_clusters);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_EM_ENTITY_MATCHER_H_
