#include "embedding/column_embedder.h"

namespace lakefuzz {

ColumnEmbedder::ColumnEmbedder(std::shared_ptr<const EmbeddingModel> model,
                               ColumnEmbedderOptions options)
    : model_(std::move(model)), options_(options) {}

Vec ColumnEmbedder::EmbedColumn(const Table& table, size_t col) const {
  Vec acc(model_->dim(), 0.0f);
  auto distinct = table.DistinctNonNull(col);
  size_t n = std::min(distinct.size(), options_.sample_size);
  for (size_t i = 0; i < n; ++i) {
    Vec v = model_->Embed(distinct[i].ToString());
    AddScaled(&acc, v, 1.0 / static_cast<double>(n));
  }
  if (options_.header_weight > 0.0) {
    Vec h = model_->Embed(table.schema().field(col).name);
    Vec out(model_->dim(), 0.0f);
    AddScaled(&out, acc, 1.0 - options_.header_weight);
    AddScaled(&out, h, options_.header_weight);
    acc = std::move(out);
  }
  NormalizeInPlace(&acc);
  return acc;
}

}  // namespace lakefuzz
