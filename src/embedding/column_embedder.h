// ColumnEmbedder: column-level signatures for holistic schema matching.
//
// ALITE aligns columns by clustering column-level embeddings; we pool value
// embeddings (mean of up to `sample_size` distinct values) into a signature
// per column. Headers are deliberately excluded by default — data lake
// headers are unreliable (the paper's premise) — but can be blended in.
#ifndef LAKEFUZZ_EMBEDDING_COLUMN_EMBEDDER_H_
#define LAKEFUZZ_EMBEDDING_COLUMN_EMBEDDER_H_

#include <memory>

#include "embedding/model.h"
#include "table/table.h"

namespace lakefuzz {

struct ColumnEmbedderOptions {
  /// Max distinct values pooled per column (first-appearance order, so the
  /// signature is deterministic).
  size_t sample_size = 64;
  /// Weight of the header-name embedding in [0,1]; 0 ignores headers.
  double header_weight = 0.0;
};

/// Pools value embeddings into per-column signature vectors.
class ColumnEmbedder {
 public:
  ColumnEmbedder(std::shared_ptr<const EmbeddingModel> model,
                 ColumnEmbedderOptions options = ColumnEmbedderOptions());

  /// Signature of `table`'s column `col`: unit-norm mean of sampled distinct
  /// value embeddings (+ optional header blend). All-null columns get the
  /// zero vector. Unit-or-zero norm is an interface guarantee: consumers
  /// (HolisticSchemaMatcher) compare signatures with DotPrenormalized.
  Vec EmbedColumn(const Table& table, size_t col) const;

  const EmbeddingModel& model() const { return *model_; }

 private:
  std::shared_ptr<const EmbeddingModel> model_;
  ColumnEmbedderOptions options_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_EMBEDDING_COLUMN_EMBEDDER_H_
