#include "embedding/embedding_cache.h"

#include <functional>

namespace lakefuzz {
namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EmbeddingCache::EmbeddingCache(std::shared_ptr<const EmbeddingModel> model,
                               EmbeddingCacheOptions options)
    : model_(std::move(model)),
      options_(options),
      shards_(RoundUpPow2(options.shards == 0 ? 1 : options.shards)) {
  // Unwrap a CachingModel: this cache fully memoizes every lookup itself,
  // so an outer memo layer would only double-store each vector and funnel
  // parallel warm-up misses through its single global mutex.
  while (auto caching =
             std::dynamic_pointer_cast<const CachingModel>(model_)) {
    model_ = caching->inner();
  }
  model_prenormalized_ = model_->prenormalized();
}

EmbeddingCache::Shard& EmbeddingCache::ShardFor(std::string_view value) const {
  size_t h = std::hash<std::string_view>{}(value);
  return shards_[h & (shards_.size() - 1)];
}

std::shared_ptr<const Vec> EmbeddingCache::GetNormalized(
    const std::string& value) const {
  Shard& shard = ShardFor(value);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(value);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Embed outside the lock: model calls dominate and are thread-compatible.
  auto vec = std::make_shared<Vec>(model_->Embed(value));
  if (!model_prenormalized_) NormalizeInPlace(vec.get());

  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(value);
  if (it != shard.map.end()) {
    // Raced with another thread that inserted first. Counted as a hit so
    // the hit/miss totals stay deterministic across thread counts (one
    // miss per inserted key), even though this call did embed.
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (options_.max_entries != 0) {
    size_t claimed = total_entries_.fetch_add(1, std::memory_order_relaxed);
    if (claimed >= options_.max_entries) {
      total_entries_.fetch_sub(1, std::memory_order_relaxed);
      return vec;  // over budget: hand back uncached
    }
  }
  shard.map.emplace(value, vec);
  return vec;
}

size_t EmbeddingCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace lakefuzz
