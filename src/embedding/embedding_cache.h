// EmbeddingCache: the value-matching hot path's embedding memo.
//
// The sequential merge re-embeds the same strings over and over: every round
// embeds the incoming column's values, and group representatives — which
// mostly survive from round to round — are re-embedded each time they are
// compared. This cache memoizes value→vector lookups across columns and
// stores vectors *pre-normalized* to unit length, so the matcher's cosine
// distance degrades to a single dot product (CosineDistancePrenormalized)
// instead of three (Dot + two norm recomputations) per cell.
//
// Concurrency: lookups are sharded by string hash; each shard has its own
// mutex, so parallel cost-matrix workers warming the cache contend only
// within a shard. Entries are shared_ptr so a returned vector stays valid
// across rehashes and (bounded mode) non-insertion.
#ifndef LAKEFUZZ_EMBEDDING_EMBEDDING_CACHE_H_
#define LAKEFUZZ_EMBEDDING_EMBEDDING_CACHE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "embedding/model.h"

namespace lakefuzz {

struct EmbeddingCacheOptions {
  /// Upper bound on total cached entries; 0 = unbounded. At the bound,
  /// values are computed but not inserted (no eviction). Match results are
  /// unaffected either way; note that with a bound AND parallel warm-up,
  /// *which* keys land in the cache — and therefore the hit/miss counters —
  /// depends on arrival order across threads.
  size_t max_entries = 0;
  /// Number of independently locked shards (rounded up to a power of two).
  size_t shards = 16;
};

/// Memoizing, normalizing embedding lookup table. Thread-safe.
class EmbeddingCache {
 public:
  explicit EmbeddingCache(std::shared_ptr<const EmbeddingModel> model,
                          EmbeddingCacheOptions options = {});

  /// The unit-normalized embedding of `value`. The returned vector is
  /// immutable and remains valid for the cache's lifetime (or the caller's
  /// copy of the shared_ptr, whichever is longer). Takes const string& so a
  /// hit costs no allocation — call sites on the hot path already hold
  /// std::strings.
  std::shared_ptr<const Vec> GetNormalized(const std::string& value) const;

  const EmbeddingModel& model() const { return *model_; }

  size_t size() const;
  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Hit/miss counters read as one pair — the unit of per-request deltas
  /// when a LakeEngine shares this cache across Integrate calls (the
  /// matcher snapshots counters() before and after a call and reports the
  /// difference). With concurrent requests on one engine the attribution
  /// between requests is approximate; totals are exact.
  struct Counters {
    size_t hits = 0;
    size_t misses = 0;
  };
  Counters counters() const { return Counters{hits(), misses()}; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const Vec>> map;
  };

  Shard& ShardFor(std::string_view value) const;

  std::shared_ptr<const EmbeddingModel> model_;
  EmbeddingCacheOptions options_;
  /// True when the model already emits unit vectors (the invariant threaded
  /// through EmbeddingModel::prenormalized()); skips the defensive
  /// re-normalization.
  bool model_prenormalized_;
  mutable std::vector<Shard> shards_;
  /// Total entries across shards; enforces max_entries globally rather than
  /// as a per-shard quota.
  mutable std::atomic<size_t> total_entries_{0};
  mutable std::atomic<size_t> hits_{0};
  mutable std::atomic<size_t> misses_{0};
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_EMBEDDING_EMBEDDING_CACHE_H_
