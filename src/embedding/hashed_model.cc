#include "embedding/hashed_model.h"

#include <cctype>
#include <cmath>

#include "text/normalize.h"
#include "text/tokenize.h"
#include "text/acronym.h"
#include "util/hash.h"

namespace lakefuzz {

HashedNgramModel::HashedNgramModel(HashedModelConfig config)
    : config_(std::move(config)) {
  if (config_.dim == 0) config_.dim = 1;
  if (config_.ngram_min == 0) config_.ngram_min = 1;
  if (config_.ngram_max < config_.ngram_min) {
    config_.ngram_max = config_.ngram_min;
  }
}

void HashedNgramModel::AddFeature(std::string_view feature, double weight,
                                  Vec* out) const {
  // Two independent hash functions: one picks the bucket, one the sign —
  // the classic feature-hashing construction (unbiased inner products).
  uint64_t h = SaltedHash(feature, config_.seed);
  size_t bucket = static_cast<size_t>(h % config_.dim);
  double sign = (SaltedHash(feature, config_.seed ^ 0x5157) & 1) ? 1.0 : -1.0;
  (*out)[bucket] += static_cast<float>(sign * weight);
}

Vec HashedNgramModel::IdVector(uint64_t id) const {
  Vec v(config_.dim, 0.0f);
  // Dense pseudo-random unit vector seeded by the id: each dimension from a
  // counter-mode hash, roughly N(0,1) by sum of two uniforms - 1.
  for (size_t d = 0; d < config_.dim; ++d) {
    uint64_t h = Mix64(id ^ Mix64(d ^ config_.seed));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    v[d] = static_cast<float>(2.0 * u - 1.0);
  }
  NormalizeInPlace(&v);
  return v;
}

Vec HashedNgramModel::Embed(std::string_view value) const {
  Vec surface(config_.dim, 0.0f);
  const std::string norm = Normalize(value);

  // Character n-grams (padded): robust to typos and casing.
  for (size_t n = config_.ngram_min; n <= config_.ngram_max; ++n) {
    for (const auto& gram : CharNgrams(norm, n)) {
      AddFeature(gram, 1.0, &surface);
    }
  }
  // Whole tokens: words carry more identity than their grams alone.
  if (config_.use_word_tokens) {
    for (const auto& tok : WordTokens(norm)) {
      AddFeature("w:" + tok, 2.0, &surface);
    }
  }
  // Initials bridge acronyms and their expansions: "united states" emits
  // i:us, and the short token "us" also emits i:us.
  if (config_.use_initials_feature) {
    auto tokens = WordTokens(norm);
    if (tokens.size() >= 2) {
      AddFeature("i:" + Initials(norm), 3.0, &surface);
    } else if (!tokens.empty() && tokens[0].size() <= 4) {
      AddFeature("i:" + tokens[0], 1.5, &surface);
    }
  }
  if (config_.noise > 0.0) {
    // Deterministic per-value perturbation: the same value always gets the
    // same "representation error", as a fixed pre-trained model would have.
    uint64_t nid = Mix64(Fnv1a64(norm) ^ Mix64(config_.seed ^ 0xbad5eed));
    Vec noise_vec = IdVector(nid);
    double scale = config_.noise * (Norm(surface) > 0 ? Norm(surface) : 1.0);
    AddScaled(&surface, noise_vec, scale);
  }
  NormalizeInPlace(&surface);

  if (config_.knowledge_base != nullptr) {
    if (const auto* senses = config_.knowledge_base->LookupAll(value)) {
      // Ambiguous surface forms ("CA" = Canada | California) land between
      // their senses, as real contextual embeddings do.
      Vec concept_vec(config_.dim, 0.0f);
      for (ConceptId id : *senses) {
        AddScaled(&concept_vec, IdVector(id),
                  1.0 / static_cast<double>(senses->size()));
      }
      NormalizeInPlace(&concept_vec);
      Vec out(config_.dim, 0.0f);
      AddScaled(&out, surface, 1.0 - config_.kb_weight);
      AddScaled(&out, concept_vec, config_.kb_weight);
      NormalizeInPlace(&out);
      return out;
    }
  }
  return surface;
}

}  // namespace lakefuzz
