// HashedNgramModel: deterministic feature-hashing embeddings.
//
// The surface-similarity half of what an LLM embedding provides: values that
// share character n-grams and tokens land near each other (typos, casing,
// spacing); the semantic half (synonyms, codes) comes from an optional
// KnowledgeBase blend. Five configurations of this one model class simulate
// the paper's five embedding baselines (see model_zoo.h).
#ifndef LAKEFUZZ_EMBEDDING_HASHED_MODEL_H_
#define LAKEFUZZ_EMBEDDING_HASHED_MODEL_H_

#include <memory>
#include <string>

#include "embedding/knowledge_base.h"
#include "embedding/model.h"

namespace lakefuzz {

struct HashedModelConfig {
  std::string name = "hashed-ngram";
  size_t dim = 256;
  /// Character n-gram sizes hashed as features.
  size_t ngram_min = 3;
  size_t ngram_max = 5;
  /// Hash whole word tokens as features too.
  bool use_word_tokens = true;
  /// Add an "initials" feature for multi-token phrases and short all-caps
  /// tokens, letting acronyms ("US") meet their expansions ("United
  /// States"). LLM-grade profiles enable this.
  bool use_initials_feature = false;
  /// Knowledge base consulted for the value's concept; nullptr disables.
  std::shared_ptr<const KnowledgeBase> knowledge_base;
  /// Weight of the concept vector relative to surface features in [0,1].
  /// When a concept is found: embedding = (1-w)·surface + w·concept.
  double kb_weight = 0.8;
  /// Magnitude of deterministic per-value noise added to the surface
  /// features (models imperfect representations of rare strings).
  double noise = 0.0;
  /// Feature-hashing seed; different seeds give decorrelated models.
  uint64_t seed = 0x1a4ef0;
};

/// Deterministic embedding model; see HashedModelConfig.
class HashedNgramModel : public EmbeddingModel {
 public:
  explicit HashedNgramModel(HashedModelConfig config);

  Vec Embed(std::string_view value) const override;
  size_t dim() const override { return config_.dim; }
  std::string name() const override { return config_.name; }
  /// Embed() ends with NormalizeInPlace on every path (surface, noise, and
  /// knowledge-base blend), so outputs are unit or zero vectors.
  bool prenormalized() const override { return true; }

  const HashedModelConfig& config() const { return config_; }

 private:
  /// Unit vector derived deterministically from an id (concept vectors).
  Vec IdVector(uint64_t id) const;
  /// Accumulates a hashed feature with the given weight.
  void AddFeature(std::string_view feature, double weight, Vec* out) const;

  HashedModelConfig config_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_EMBEDDING_HASHED_MODEL_H_
