#include "embedding/knowledge_base.h"

#include <algorithm>

#include "embedding/vocab.h"
#include "text/normalize.h"
#include "util/hash.h"

namespace lakefuzz {

ConceptId ConceptIdOf(std::string_view canonical) {
  return Mix64(Fnv1a64(Normalize(canonical)) ^ 0xc0ffee);
}

std::string KnowledgeBase::Key(std::string_view surface) {
  return Normalize(surface);
}

void KnowledgeBase::AddAlias(std::string_view canonical,
                             std::string_view alias) {
  ConceptId id = ConceptIdOf(canonical);
  for (std::string_view surface : {canonical, alias}) {
    auto& senses = alias_to_concepts_[Key(surface)];
    if (std::find(senses.begin(), senses.end(), id) == senses.end()) {
      senses.push_back(id);
    }
  }
}

std::optional<ConceptId> KnowledgeBase::Lookup(std::string_view surface) const {
  const auto* senses = LookupAll(surface);
  if (senses == nullptr) return std::nullopt;
  return senses->front();
}

const std::vector<ConceptId>* KnowledgeBase::LookupAll(
    std::string_view surface) const {
  auto it = alias_to_concepts_.find(Key(surface));
  if (it == alias_to_concepts_.end() || it->second.empty()) return nullptr;
  return &it->second;
}

KnowledgeBase KnowledgeBase::Subset(double coverage, uint64_t seed) const {
  if (coverage < 0.0) coverage = 0.0;
  if (coverage > 1.0) coverage = 1.0;
  KnowledgeBase out;
  for (const auto& [alias, senses] : alias_to_concepts_) {
    std::vector<ConceptId> kept;
    for (ConceptId id : senses) {
      // Per-sense deterministic coin flip: stable across runs, independent
      // of map iteration order.
      uint64_t h = Mix64(Fnv1a64(alias) ^ Mix64(seed) ^ Mix64(id));
      double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (u < coverage) kept.push_back(id);
    }
    if (!kept.empty()) out.alias_to_concepts_[alias] = std::move(kept);
  }
  return out;
}

const KnowledgeBase& KnowledgeBase::BuiltIn() {
  static const KnowledgeBase* kb = [] {
    auto* built = new KnowledgeBase();
    for (const auto& topic : BuiltinTopics()) {
      for (const auto& group : topic.groups) {
        // Self-registration even for alias-free groups.
        built->AddAlias(group.canonical, group.canonical);
        for (const auto& alias : group.aliases) {
          built->AddAlias(group.canonical, alias);
        }
      }
    }
    for (const auto& [formal, nick] : Nicknames()) {
      built->AddAlias(formal, nick);
    }
    return built;
  }();
  return *kb;
}

}  // namespace lakefuzz
