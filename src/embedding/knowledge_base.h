// KnowledgeBase: alias → concept lookup, the simulated world knowledge of
// the LLM-grade embedding profiles.
//
// An LLM embeds "CA" near "Canada" because it has seen them used
// interchangeably; we model that as an explicit dictionary from normalized
// surface forms to canonical concept ids. Each simulated model owns a
// *subset* of the dictionary (its coverage), sampled deterministically —
// weaker models know fewer aliases, which is what separates FastText from
// Mistral in the paper's Table 1. See DESIGN.md §1.
#ifndef LAKEFUZZ_EMBEDDING_KNOWLEDGE_BASE_H_
#define LAKEFUZZ_EMBEDDING_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lakefuzz {

/// Stable identifier of a real-world concept (hash of its canonical name).
using ConceptId = uint64_t;

/// Immutable-after-build alias dictionary.
///
/// Aliases are genuinely ambiguous in the wild — "CA" is both Canada and
/// California — so a surface form maps to a *list* of concepts, in
/// registration order. Embedding models blend all of them, mirroring how an
/// LLM embeds an ambiguous token between its senses.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  /// The full built-in dictionary: every alias group in BuiltinTopics()
  /// plus first-name nicknames. Idempotent, cheap after first call.
  static const KnowledgeBase& BuiltIn();

  /// Registers `alias` (and the canonical itself) under the concept of
  /// `canonical`. Lookup keys are normalized internally; duplicate
  /// (alias, concept) registrations are ignored.
  void AddAlias(std::string_view canonical, std::string_view alias);

  /// First registered concept for a surface form, if any.
  std::optional<ConceptId> Lookup(std::string_view surface) const;

  /// All concepts for a surface form (nullptr when unknown).
  const std::vector<ConceptId>* LookupAll(std::string_view surface) const;

  /// Number of surface forms registered.
  size_t size() const { return alias_to_concepts_.size(); }

  /// A deterministic random subset: every (alias, concept) sense is kept
  /// independently with probability ~`coverage` (clamped to [0,1]) — a
  /// model may know CA=California but not CA=Canada. Aliases losing all
  /// senses disappear.
  KnowledgeBase Subset(double coverage, uint64_t seed) const;

 private:
  static std::string Key(std::string_view surface);

  std::unordered_map<std::string, std::vector<ConceptId>> alias_to_concepts_;
};

/// Concept id of a canonical name (exposed for tests).
ConceptId ConceptIdOf(std::string_view canonical);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_EMBEDDING_KNOWLEDGE_BASE_H_
