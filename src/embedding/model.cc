#include "embedding/model.h"

namespace lakefuzz {

Vec CachingModel::Embed(std::string_view value) const {
  std::string key(value);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  Vec v = inner_->Embed(value);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(std::move(key), std::move(v));
  return it->second;
}

size_t CachingModel::CacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace lakefuzz
