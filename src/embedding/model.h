// EmbeddingModel: the interface the value matcher consumes.
//
// The paper embeds each cell value with a language model and compares
// embeddings by cosine distance (Sec 2.2, "Embed Column Values"). Any
// implementation of this interface can be plugged into the matcher —
// including user-provided ones (see examples/custom_model.cc).
#ifndef LAKEFUZZ_EMBEDDING_MODEL_H_
#define LAKEFUZZ_EMBEDDING_MODEL_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "embedding/vector_ops.h"

namespace lakefuzz {

/// Maps strings to fixed-dimension dense vectors. Implementations must be
/// deterministic (same input → same vector) and thread-compatible for
/// concurrent Embed calls.
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  /// Embedding of a cell value. Must return a vector of dim() floats.
  virtual Vec Embed(std::string_view value) const = 0;

  /// Embedding dimensionality.
  virtual size_t dim() const = 0;

  /// Display name ("Mistral", "FastText", ...).
  virtual std::string name() const = 0;

  /// True when Embed() always returns a unit-norm (or all-zero) vector.
  /// Consumers holding two such vectors may use CosineDistancePrenormalized
  /// (a single dot product) instead of the norm-recomputing CosineDistance.
  /// EmbeddingCache re-normalizes defensively when this is false.
  virtual bool prenormalized() const { return false; }
};

/// Memoizing decorator: caches embeddings by exact input string. The value
/// matcher embeds each distinct value once per column, but representative
/// values recur across the sequential merge rounds — caching them is the
/// difference between O(values) and O(values × columns) embedding calls.
class CachingModel : public EmbeddingModel {
 public:
  explicit CachingModel(std::shared_ptr<const EmbeddingModel> inner)
      : inner_(std::move(inner)) {}

  Vec Embed(std::string_view value) const override;
  size_t dim() const override { return inner_->dim(); }
  std::string name() const override { return inner_->name(); }
  bool prenormalized() const override { return inner_->prenormalized(); }

  /// Number of cached entries (for tests / diagnostics).
  size_t CacheSize() const;

  /// The wrapped model (EmbeddingCache unwraps it to avoid double-caching).
  std::shared_ptr<const EmbeddingModel> inner() const { return inner_; }

 private:
  std::shared_ptr<const EmbeddingModel> inner_;
  mutable std::mutex mu_;
  mutable std::unordered_map<std::string, Vec> cache_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_EMBEDDING_MODEL_H_
