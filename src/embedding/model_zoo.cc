#include "embedding/model_zoo.h"

#include "embedding/hashed_model.h"
#include "embedding/knowledge_base.h"

namespace lakefuzz {

const std::vector<ModelKind>& AllModelKinds() {
  static const auto* kinds = new std::vector<ModelKind>{
      ModelKind::kFastText, ModelKind::kBert, ModelKind::kRoberta,
      ModelKind::kLlama3, ModelKind::kMistral,
  };
  return *kinds;
}

std::string_view ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kFastText:
      return "FastText";
    case ModelKind::kBert:
      return "BERT";
    case ModelKind::kRoberta:
      return "RoBERTa";
    case ModelKind::kLlama3:
      return "Llama3";
    case ModelKind::kMistral:
      return "Mistral";
  }
  return "unknown";
}

Result<ModelKind> ModelKindFromString(std::string_view name) {
  for (ModelKind kind : AllModelKinds()) {
    if (ModelKindToString(kind) == name) return kind;
  }
  return Status::InvalidArgument("unknown model: " + std::string(name));
}

std::shared_ptr<const EmbeddingModel> MakeModel(ModelKind kind, size_t dim) {
  HashedModelConfig cfg;
  cfg.dim = dim;
  cfg.name = std::string(ModelKindToString(kind));
  const KnowledgeBase& full = KnowledgeBase::BuiltIn();

  // Coverage/noise settings are the calibration knobs of the simulation:
  // they are fixed here once and validated by the Table 1 reproduction
  // (EXPERIMENTS.md), not tuned per dataset.
  switch (kind) {
    case ModelKind::kFastText:
      cfg.ngram_min = 3;
      cfg.ngram_max = 6;
      cfg.use_word_tokens = true;
      cfg.knowledge_base = nullptr;  // no world knowledge
      cfg.noise = 0.33;
      cfg.seed = 0xfa57;
      break;
    case ModelKind::kBert:
      cfg.ngram_min = 3;
      cfg.ngram_max = 4;
      cfg.use_word_tokens = true;
      cfg.knowledge_base = std::make_shared<KnowledgeBase>(
          full.Subset(/*coverage=*/0.55, /*seed=*/0xbe27));
      cfg.kb_weight = 0.5;
      cfg.noise = 0.13;
      cfg.seed = 0xbe27;
      break;
    case ModelKind::kRoberta:
      cfg.ngram_min = 3;
      cfg.ngram_max = 4;
      cfg.use_word_tokens = true;
      cfg.knowledge_base = std::make_shared<KnowledgeBase>(
          full.Subset(/*coverage=*/0.62, /*seed=*/0x20be));
      cfg.kb_weight = 0.5;
      cfg.noise = 0.12;
      cfg.seed = 0x20be;
      break;
    case ModelKind::kLlama3:
      cfg.ngram_min = 3;
      cfg.ngram_max = 5;
      cfg.use_word_tokens = true;
      cfg.use_initials_feature = true;
      cfg.knowledge_base = std::make_shared<KnowledgeBase>(
          full.Subset(/*coverage=*/0.9, /*seed=*/0x11a3));
      cfg.kb_weight = 0.55;
      cfg.noise = 0.10;
      cfg.seed = 0x11a3;
      break;
    case ModelKind::kMistral:
      cfg.ngram_min = 3;
      cfg.ngram_max = 5;
      cfg.use_word_tokens = true;
      cfg.use_initials_feature = true;
      // Full alias coverage: the paper's best model; its residual errors
      // come from noise, ambiguity, and the matcher itself.
      cfg.knowledge_base = std::make_shared<KnowledgeBase>(full);
      cfg.kb_weight = 0.55;
      cfg.noise = 0.07;
      cfg.seed = 0x7b1e;
      break;
  }
  return std::make_shared<CachingModel>(
      std::make_shared<HashedNgramModel>(std::move(cfg)));
}

}  // namespace lakefuzz
