// ModelZoo: the five embedding baselines of the paper's Table 1.
//
// Each is a HashedNgramModel profile whose knowledge-base coverage and noise
// simulate the corresponding pre-trained model's quality (DESIGN.md §1):
//
//   FastText — subword n-grams only, no world knowledge.
//   BERT     — tokens + n-grams, partial alias knowledge, some noise.
//   RoBERTa  — like BERT, slightly better coverage/noise.
//   Llama3   — near-complete alias knowledge, initials feature.
//   Mistral  — best coverage, least noise (the paper's pick).
#ifndef LAKEFUZZ_EMBEDDING_MODEL_ZOO_H_
#define LAKEFUZZ_EMBEDDING_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "embedding/model.h"
#include "util/result.h"

namespace lakefuzz {

enum class ModelKind {
  kFastText,
  kBert,
  kRoberta,
  kLlama3,
  kMistral,
};

/// All kinds in Table 1 row order.
const std::vector<ModelKind>& AllModelKinds();

std::string_view ModelKindToString(ModelKind kind);
Result<ModelKind> ModelKindFromString(std::string_view name);

/// Builds the profile for `kind`. Every call returns an equivalent,
/// deterministic model (wrapped in a CachingModel).
std::shared_ptr<const EmbeddingModel> MakeModel(ModelKind kind,
                                                size_t dim = 256);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_EMBEDDING_MODEL_ZOO_H_
