#include "embedding/vector_ops.h"

#include <cassert>
#include <cmath>

namespace lakefuzz {

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double Norm(const Vec& v) { return std::sqrt(Dot(v, v)); }

void NormalizeInPlace(Vec* v) {
  double n = Norm(*v);
  if (n <= 0.0) return;
  float inv = static_cast<float>(1.0 / n);
  for (auto& x : *v) x *= inv;
}

void AddScaled(Vec* a, const Vec& b, double scale) {
  assert(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    (*a)[i] += static_cast<float>(scale * b[i]);
  }
}

double CosineSimilarity(const Vec& a, const Vec& b) {
  double na = Norm(a);
  double nb = Norm(b);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

double CosineDistance(const Vec& a, const Vec& b) {
  return 1.0 - CosineSimilarity(a, b);
}

double DotPrenormalized(const Vec& a, const Vec& b) { return Dot(a, b); }

double CosineDistancePrenormalized(const Vec& a, const Vec& b) {
  return 1.0 - Dot(a, b);
}

}  // namespace lakefuzz
