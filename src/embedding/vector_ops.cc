#include "embedding/vector_ops.h"

#include <cassert>
#include <cmath>

// AVX2 kernel for the matcher's hot dot product, compiled per-function via
// target attributes (no global -mavx2, so the binary still runs on older
// x86-64) and selected once at runtime with __builtin_cpu_supports. Scalar
// fallback everywhere else.
#if defined(__GNUC__) && defined(__x86_64__)
#define LAKEFUZZ_HAVE_AVX2_DISPATCH 1
#include <immintrin.h>
#endif

namespace lakefuzz {
namespace {

double DotScalar(const float* a, const float* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

#ifdef LAKEFUZZ_HAVE_AVX2_DISPATCH

__attribute__((target("avx2,fma"))) double DotAvx2(const float* a,
                                                   const float* b, size_t n) {
  // Widen to double before accumulating — same precision class as the
  // scalar loop, so the parity bound is rounding-order noise only.
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 va = _mm256_loadu_ps(a + i);
    __m256 vb = _mm256_loadu_ps(b + i);
    __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    __m256d b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
    __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    __m256d b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
    acc_lo = _mm256_fmadd_pd(a_lo, b_lo, acc_lo);
    acc_hi = _mm256_fmadd_pd(a_hi, b_hi, acc_hi);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, _mm256_add_pd(acc_lo, acc_hi));
  double acc = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

#endif  // LAKEFUZZ_HAVE_AVX2_DISPATCH

using DotKernel = double (*)(const float*, const float*, size_t);

DotKernel ResolveDotKernel() {
#ifdef LAKEFUZZ_HAVE_AVX2_DISPATCH
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return DotAvx2;
  }
#endif
  return DotScalar;
}

}  // namespace

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  return DotScalar(a.data(), b.data(), a.size());
}

double Norm(const Vec& v) { return std::sqrt(Dot(v, v)); }

void NormalizeInPlace(Vec* v) {
  double n = Norm(*v);
  if (n <= 0.0) return;
  float inv = static_cast<float>(1.0 / n);
  for (auto& x : *v) x *= inv;
}

void AddScaled(Vec* a, const Vec& b, double scale) {
  assert(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    (*a)[i] += static_cast<float>(scale * b[i]);
  }
}

double CosineSimilarity(const Vec& a, const Vec& b) {
  double na = Norm(a);
  double nb = Norm(b);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

double CosineDistance(const Vec& a, const Vec& b) {
  return 1.0 - CosineSimilarity(a, b);
}

double DotPrenormalized(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  // Resolved once per process; thread-safe (magic static).
  static const DotKernel kernel = ResolveDotKernel();
  return kernel(a.data(), b.data(), a.size());
}

double CosineDistancePrenormalized(const Vec& a, const Vec& b) {
  return 1.0 - DotPrenormalized(a, b);
}

}  // namespace lakefuzz
