// Dense float vector operations used by the embedding layer.
#ifndef LAKEFUZZ_EMBEDDING_VECTOR_OPS_H_
#define LAKEFUZZ_EMBEDDING_VECTOR_OPS_H_

#include <vector>

namespace lakefuzz {

using Vec = std::vector<float>;

/// Dot product; vectors must have equal dimension.
double Dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double Norm(const Vec& v);

/// Scales `v` to unit norm in place; zero vectors are left unchanged.
void NormalizeInPlace(Vec* v);

/// a += scale * b.
void AddScaled(Vec* a, const Vec& b, double scale);

/// Cosine similarity in [-1, 1]; either vector zero → 0.
double CosineSimilarity(const Vec& a, const Vec& b);

/// Cosine distance in [0, 2]: 1 - CosineSimilarity. This is the `dist`
/// function of the paper's Definition 2 (thresholded at θ).
double CosineDistance(const Vec& a, const Vec& b);

/// Dot product of two *unit* (or zero) vectors — equals their cosine
/// similarity without recomputing norms. Callers must uphold the invariant
/// (EmbeddingCache and ColumnEmbedder outputs do; see
/// EmbeddingModel::prenormalized()). Zero vectors yield 0, matching
/// CosineSimilarity's convention.
///
/// This is the matcher's per-cell kernel: on x86-64 an AVX2+FMA version
/// (double accumulation, runtime-dispatched via cpuid) is used when the CPU
/// supports it, with the scalar loop as fallback. Both accumulate in double;
/// results agree to rounding-order noise (see the parity test).
double DotPrenormalized(const Vec& a, const Vec& b);

/// 1 - DotPrenormalized: cosine distance when both inputs are pre-normalized.
/// The matcher hot path uses this; the general CosineDistance stays for
/// external callers with arbitrary vectors.
double CosineDistancePrenormalized(const Vec& a, const Vec& b);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_EMBEDDING_VECTOR_OPS_H_
