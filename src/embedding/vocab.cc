#include "embedding/vocab.h"

#include <cstdio>
#include <cstdlib>

namespace lakefuzz {
namespace {

std::vector<TopicVocab> BuildTopics() {
  std::vector<TopicVocab> topics;

  topics.push_back(TopicVocab{
      "countries",
      {
          {"United States", {"US", "USA", "U.S.", "United States of America"}},
          {"United Kingdom", {"UK", "GB", "Great Britain"}},
          {"Germany", {"DE", "DEU", "Deutschland"}},
          {"Canada", {"CA", "CAN"}},
          {"Spain", {"ES", "ESP", "Espana"}},
          {"India", {"IN", "IND"}},
          {"France", {"FR", "FRA"}},
          {"Italy", {"IT", "ITA", "Italia"}},
          {"Japan", {"JP", "JPN", "Nippon"}},
          {"China", {"CN", "CHN", "PRC"}},
          {"Brazil", {"BR", "BRA", "Brasil"}},
          {"Mexico", {"MX", "MEX"}},
          {"Australia", {"AU", "AUS"}},
          {"Netherlands", {"NL", "NLD", "Holland"}},
          {"Switzerland", {"CH", "CHE"}},
          {"Sweden", {"SE", "SWE"}},
          {"Norway", {"NO", "NOR"}},
          {"Denmark", {"DK", "DNK"}},
          {"Finland", {"FI", "FIN"}},
          {"Poland", {"PL", "POL", "Polska"}},
          {"Austria", {"AT", "AUT"}},
          {"Belgium", {"BE", "BEL"}},
          {"Portugal", {"PT", "PRT"}},
          {"Greece", {"GR", "GRC", "Hellas"}},
          {"Ireland", {"IE", "IRL"}},
          {"Russia", {"RU", "RUS", "Russian Federation"}},
          {"Turkey", {"TR", "TUR", "Turkiye"}},
          {"South Korea", {"KR", "KOR", "Republic of Korea"}},
          {"North Korea", {"KP", "PRK", "DPRK"}},
          {"South Africa", {"ZA", "ZAF", "RSA"}},
          {"Egypt", {"EG", "EGY"}},
          {"Nigeria", {"NG", "NGA"}},
          {"Kenya", {"KE", "KEN"}},
          {"Argentina", {"AR", "ARG"}},
          {"Chile", {"CL", "CHL"}},
          {"Colombia", {"CO", "COL"}},
          {"Peru", {"PE", "PER"}},
          {"Venezuela", {"VE", "VEN"}},
          {"Thailand", {"TH", "THA", "Siam"}},
          {"Vietnam", {"VN", "VNM", "Viet Nam"}},
          {"Indonesia", {"ID", "IDN"}},
          {"Malaysia", {"MY", "MYS"}},
          {"Singapore", {"SG", "SGP"}},
          {"Philippines", {"PH", "PHL"}},
          {"New Zealand", {"NZ", "NZL", "Aotearoa"}},
          {"Saudi Arabia", {"SA", "SAU", "KSA"}},
          {"United Arab Emirates", {"AE", "ARE", "UAE"}},
          {"Israel", {"IL", "ISR"}},
          {"Iran", {"IR", "IRN", "Persia"}},
          {"Iraq", {"IQ", "IRQ"}},
          {"Pakistan", {"PK", "PAK"}},
          {"Bangladesh", {"BD", "BGD"}},
          {"Ukraine", {"UA", "UKR"}},
          {"Czech Republic", {"CZ", "CZE", "Czechia"}},
          {"Hungary", {"HU", "HUN"}},
          {"Romania", {"RO", "ROU"}},
          {"Bulgaria", {"BG", "BGR"}},
          {"Croatia", {"HR", "HRV", "Hrvatska"}},
          {"Iceland", {"IS", "ISL"}},
          {"Luxembourg", {"LU", "LUX"}},
      }});

  topics.push_back(TopicVocab{
      "us_states",
      {
          {"Alabama", {"AL"}},        {"Alaska", {"AK"}},
          {"Arizona", {"AZ"}},        {"Arkansas", {"AR"}},
          {"California", {"CA", "Calif."}},
          {"Colorado", {"CO", "Colo."}},
          {"Connecticut", {"CT", "Conn."}},
          {"Delaware", {"DE"}},       {"Florida", {"FL", "Fla."}},
          {"Georgia", {"GA"}},        {"Hawaii", {"HI"}},
          {"Idaho", {"ID"}},          {"Illinois", {"IL", "Ill."}},
          {"Indiana", {"IN", "Ind."}},
          {"Iowa", {"IA"}},           {"Kansas", {"KS", "Kan."}},
          {"Kentucky", {"KY"}},       {"Louisiana", {"LA"}},
          {"Maine", {"ME"}},          {"Maryland", {"MD"}},
          {"Massachusetts", {"MA", "Mass."}},
          {"Michigan", {"MI", "Mich."}},
          {"Minnesota", {"MN", "Minn."}},
          {"Mississippi", {"MS", "Miss."}},
          {"Missouri", {"MO"}},       {"Montana", {"MT", "Mont."}},
          {"Nebraska", {"NE", "Neb."}},
          {"Nevada", {"NV", "Nev."}}, {"New Hampshire", {"NH"}},
          {"New Jersey", {"NJ"}},     {"New Mexico", {"NM"}},
          {"New York", {"NY"}},       {"North Carolina", {"NC"}},
          {"North Dakota", {"ND"}},   {"Ohio", {"OH"}},
          {"Oklahoma", {"OK", "Okla."}},
          {"Oregon", {"OR", "Ore."}}, {"Pennsylvania", {"PA", "Penn."}},
          {"Rhode Island", {"RI"}},   {"South Carolina", {"SC"}},
          {"South Dakota", {"SD"}},   {"Tennessee", {"TN", "Tenn."}},
          {"Texas", {"TX", "Tex."}},  {"Utah", {"UT"}},
          {"Vermont", {"VT"}},        {"Virginia", {"VA"}},
          {"Washington", {"WA", "Wash."}},
          {"West Virginia", {"WV"}},  {"Wisconsin", {"WI", "Wis."}},
          {"Wyoming", {"WY", "Wyo."}},
      }});

  topics.push_back(TopicVocab{
      "months",
      {
          {"January", {"Jan", "Jan.", "01"}},
          {"February", {"Feb", "Feb.", "02"}},
          {"March", {"Mar", "Mar.", "03"}},
          {"April", {"Apr", "Apr.", "04"}},
          {"May", {"05"}},
          {"June", {"Jun", "Jun.", "06"}},
          {"July", {"Jul", "Jul.", "07"}},
          {"August", {"Aug", "Aug.", "08"}},
          {"September", {"Sep", "Sept", "Sept.", "09"}},
          {"October", {"Oct", "Oct.", "10"}},
          {"November", {"Nov", "Nov.", "11"}},
          {"December", {"Dec", "Dec.", "12"}},
      }});

  topics.push_back(TopicVocab{
      "weekdays",
      {
          {"Monday", {"Mon", "Mo"}},
          {"Tuesday", {"Tue", "Tues", "Tu"}},
          {"Wednesday", {"Wed", "We"}},
          {"Thursday", {"Thu", "Thurs", "Th"}},
          {"Friday", {"Fri", "Fr"}},
          {"Saturday", {"Sat", "Sa"}},
          {"Sunday", {"Sun", "Su"}},
      }});

  topics.push_back(TopicVocab{
      "elements",
      {
          {"Hydrogen", {"H"}},     {"Helium", {"He"}},
          {"Lithium", {"Li"}},     {"Beryllium", {"Be"}},
          {"Boron", {"B"}},        {"Carbon", {"C"}},
          {"Nitrogen", {"N"}},     {"Oxygen", {"O"}},
          {"Fluorine", {"F"}},     {"Neon", {"Ne"}},
          {"Sodium", {"Na"}},      {"Magnesium", {"Mg"}},
          {"Aluminium", {"Al", "Aluminum"}},
          {"Silicon", {"Si"}},     {"Phosphorus", {"P"}},
          {"Sulfur", {"S", "Sulphur"}},
          {"Chlorine", {"Cl"}},    {"Argon", {"Ar"}},
          {"Potassium", {"K"}},    {"Calcium", {"Ca"}},
          {"Titanium", {"Ti"}},    {"Chromium", {"Cr"}},
          {"Manganese", {"Mn"}},   {"Iron", {"Fe"}},
          {"Cobalt", {"Co"}},      {"Nickel", {"Ni"}},
          {"Copper", {"Cu"}},      {"Zinc", {"Zn"}},
          {"Silver", {"Ag"}},      {"Tin", {"Sn"}},
          {"Iodine", {"I"}},       {"Tungsten", {"W"}},
          {"Platinum", {"Pt"}},    {"Gold", {"Au"}},
          {"Mercury", {"Hg"}},     {"Lead", {"Pb"}},
          {"Uranium", {"U"}},      {"Radon", {"Rn"}},
          {"Barium", {"Ba"}},      {"Krypton", {"Kr"}},
      }});

  topics.push_back(TopicVocab{
      "currencies",
      {
          {"US Dollar", {"USD", "$", "Dollar"}},
          {"Euro", {"EUR", "€"}},
          {"British Pound", {"GBP", "Pound Sterling", "£"}},
          {"Japanese Yen", {"JPY", "Yen", "¥"}},
          {"Swiss Franc", {"CHF", "Franc"}},
          {"Canadian Dollar", {"CAD"}},
          {"Australian Dollar", {"AUD"}},
          {"Chinese Yuan", {"CNY", "RMB", "Renminbi"}},
          {"Indian Rupee", {"INR", "Rupee"}},
          {"Brazilian Real", {"BRL", "Real"}},
          {"Mexican Peso", {"MXN"}},
          {"South Korean Won", {"KRW", "Won"}},
          {"Russian Ruble", {"RUB", "Ruble"}},
          {"Turkish Lira", {"TRY", "Lira"}},
          {"Swedish Krona", {"SEK", "Krona"}},
          {"Norwegian Krone", {"NOK", "Krone"}},
          {"Danish Krone", {"DKK"}},
          {"Polish Zloty", {"PLN", "Zloty"}},
          {"Thai Baht", {"THB", "Baht"}},
          {"Singapore Dollar", {"SGD"}},
          {"Hong Kong Dollar", {"HKD"}},
          {"South African Rand", {"ZAR", "Rand"}},
          {"Israeli Shekel", {"ILS", "Shekel"}},
          {"Saudi Riyal", {"SAR", "Riyal"}},
          {"Egyptian Pound", {"EGP"}},
      }});

  topics.push_back(TopicVocab{
      "airports",
      {
          {"Los Angeles International Airport", {"LAX"}},
          {"John F Kennedy International Airport", {"JFK"}},
          {"Heathrow Airport", {"LHR", "London Heathrow"}},
          {"Charles de Gaulle Airport", {"CDG", "Paris CDG"}},
          {"Frankfurt Airport", {"FRA"}},
          {"Amsterdam Schiphol Airport", {"AMS", "Schiphol"}},
          {"Madrid Barajas Airport", {"MAD", "Barajas"}},
          {"Barcelona El Prat Airport", {"BCN", "El Prat"}},
          {"Dubai International Airport", {"DXB"}},
          {"Singapore Changi Airport", {"SIN", "Changi"}},
          {"Tokyo Haneda Airport", {"HND", "Haneda"}},
          {"Tokyo Narita Airport", {"NRT", "Narita"}},
          {"Beijing Capital International Airport", {"PEK"}},
          {"Hong Kong International Airport", {"HKG"}},
          {"Sydney Kingsford Smith Airport", {"SYD"}},
          {"Toronto Pearson International Airport", {"YYZ", "Pearson"}},
          {"Vancouver International Airport", {"YVR"}},
          {"O'Hare International Airport", {"ORD", "Chicago O'Hare"}},
          {"Hartsfield Jackson Atlanta International Airport", {"ATL"}},
          {"Denver International Airport", {"DEN"}},
          {"Seattle Tacoma International Airport", {"SEA", "SeaTac"}},
          {"Miami International Airport", {"MIA"}},
          {"San Francisco International Airport", {"SFO"}},
          {"Boston Logan International Airport", {"BOS", "Logan"}},
          {"Munich Airport", {"MUC"}},
          {"Zurich Airport", {"ZRH"}},
          {"Vienna International Airport", {"VIE"}},
          {"Copenhagen Airport", {"CPH"}},
          {"Oslo Gardermoen Airport", {"OSL", "Gardermoen"}},
          {"Istanbul Airport", {"IST"}},
      }});

  topics.push_back(TopicVocab{
      "languages",
      {
          {"English", {"en", "eng"}},   {"Spanish", {"es", "spa", "Espanol"}},
          {"French", {"fr", "fra", "Francais"}},
          {"German", {"de", "deu", "Deutsch"}},
          {"Italian", {"it", "ita", "Italiano"}},
          {"Portuguese", {"pt", "por"}},
          {"Dutch", {"nl", "nld", "Nederlands"}},
          {"Russian", {"ru", "rus"}},   {"Japanese", {"ja", "jpn"}},
          {"Chinese", {"zh", "zho", "Mandarin"}},
          {"Korean", {"ko", "kor"}},    {"Arabic", {"ar", "ara"}},
          {"Hindi", {"hi", "hin"}},     {"Bengali", {"bn", "ben"}},
          {"Turkish", {"tr", "tur"}},   {"Polish", {"pl", "pol"}},
          {"Swedish", {"sv", "swe"}},   {"Norwegian", {"no", "nor"}},
          {"Danish", {"da", "dan"}},    {"Finnish", {"fi", "fin"}},
          {"Greek", {"el", "ell"}},     {"Hebrew", {"he", "heb"}},
          {"Thai", {"th", "tha"}},      {"Vietnamese", {"vi", "vie"}},
          {"Indonesian", {"id", "ind", "Bahasa"}},
      }});

  topics.push_back(TopicVocab{
      "universities",
      {
          {"Massachusetts Institute of Technology", {"MIT"}},
          {"University of California Los Angeles", {"UCLA"}},
          {"University of California Berkeley", {"UC Berkeley", "Cal"}},
          {"New York University", {"NYU"}},
          {"University of Southern California", {"USC"}},
          {"Carnegie Mellon University", {"CMU"}},
          {"Georgia Institute of Technology", {"Georgia Tech", "GT"}},
          {"California Institute of Technology", {"Caltech", "CIT"}},
          {"University of Michigan", {"UMich", "U-M"}},
          {"University of Texas at Austin", {"UT Austin", "UT"}},
          {"University of Illinois Urbana-Champaign", {"UIUC"}},
          {"University of Washington", {"UW", "UDub"}},
          {"University of Pennsylvania", {"UPenn", "Penn"}},
          {"University of North Carolina", {"UNC"}},
          {"Ohio State University", {"OSU", "Ohio State"}},
          {"Pennsylvania State University", {"Penn State", "PSU"}},
          {"Virginia Polytechnic Institute", {"Virginia Tech", "VT"}},
          {"Texas A&M University", {"TAMU", "Texas A&M"}},
          {"University of Florida", {"UF", "Florida"}},
          {"University of Wisconsin Madison", {"UW-Madison"}},
          {"London School of Economics", {"LSE"}},
          {"University of British Columbia", {"UBC"}},
          {"Eidgenossische Technische Hochschule Zurich", {"ETH Zurich", "ETH"}},
          {"National University of Singapore", {"NUS"}},
          {"Northeastern University", {"NEU", "Northeastern"}},
          {"Worcester Polytechnic Institute", {"WPI"}},
          {"University of Waterloo", {"UWaterloo", "Waterloo"}},
      }});

  topics.push_back(TopicVocab{
      "units",
      {
          {"kilometer", {"km", "kilometre"}},
          {"meter", {"m", "metre"}},
          {"centimeter", {"cm", "centimetre"}},
          {"millimeter", {"mm", "millimetre"}},
          {"mile", {"mi"}},
          {"kilogram", {"kg", "kilo"}},
          {"gram", {"g"}},
          {"pound", {"lb", "lbs"}},
          {"ounce", {"oz"}},
          {"liter", {"L", "litre"}},
          {"milliliter", {"mL", "millilitre"}},
          {"gallon", {"gal"}},
          {"second", {"s", "sec"}},
          {"minute", {"min"}},
          {"hour", {"h", "hr"}},
          {"celsius", {"C", "°C"}},
          {"fahrenheit", {"F", "°F"}},
          {"kelvin", {"K"}},
          {"joule", {"J"}},
          {"watt", {"W"}},
          {"kilowatt", {"kW"}},
          {"volt", {"V"}},
          {"ampere", {"A", "amp"}},
          {"hertz", {"Hz"}},
          {"byte", {"B"}},
          {"kilobyte", {"kB", "KB"}},
          {"megabyte", {"MB"}},
          {"gigabyte", {"GB"}},
      }});

  topics.push_back(TopicVocab{
      "car_brands",
      {
          {"Mercedes-Benz", {"Mercedes", "Benz", "MB"}},
          {"Bayerische Motoren Werke", {"BMW"}},
          {"Volkswagen", {"VW"}},
          {"General Motors", {"GM"}},
          {"Ford Motor Company", {"Ford"}},
          {"Toyota Motor Corporation", {"Toyota"}},
          {"Honda Motor Company", {"Honda"}},
          {"Nissan Motor Company", {"Nissan", "Datsun"}},
          {"Hyundai Motor Company", {"Hyundai"}},
          {"Kia Corporation", {"Kia"}},
          {"Fiat Chrysler Automobiles", {"FCA", "Fiat Chrysler"}},
          {"Alfa Romeo", {"Alfa"}},
          {"Aston Martin", {"AM"}},
          {"Rolls-Royce", {"RR", "Rolls Royce"}},
          {"Land Rover", {"LR"}},
          {"Range Rover", {"RangeRover"}},
          {"Chevrolet", {"Chevy"}},
          {"Cadillac", {"Caddy"}},
          {"Porsche AG", {"Porsche"}},
          {"Ferrari S.p.A.", {"Ferrari"}},
          {"Lamborghini", {"Lambo"}},
          {"Tesla Inc", {"Tesla"}},
          {"Subaru Corporation", {"Subaru"}},
          {"Mazda Motor Corporation", {"Mazda"}},
          {"Mitsubishi Motors", {"Mitsubishi"}},
          {"Suzuki Motor Corporation", {"Suzuki"}},
          {"Renault Group", {"Renault"}},
          {"Peugeot", {"PSA Peugeot"}},
          {"Skoda Auto", {"Skoda"}},
          {"Volvo Cars", {"Volvo"}},
      }});

  topics.push_back(TopicVocab{
      "sports_teams",
      {
          {"New York Yankees", {"NYY", "Yankees"}},
          {"Boston Red Sox", {"BOS", "Red Sox"}},
          {"Los Angeles Lakers", {"LAL", "Lakers"}},
          {"Golden State Warriors", {"GSW", "Warriors"}},
          {"New England Patriots", {"NE", "Patriots", "Pats"}},
          {"Green Bay Packers", {"GB", "Packers"}},
          {"Dallas Cowboys", {"DAL", "Cowboys"}},
          {"Chicago Bulls", {"CHI", "Bulls"}},
          {"Toronto Raptors", {"TOR", "Raptors"}},
          {"Manchester United", {"Man Utd", "MUFC", "Man United"}},
          {"Manchester City", {"Man City", "MCFC"}},
          {"Real Madrid", {"RMA", "Los Blancos"}},
          {"FC Barcelona", {"Barca", "FCB"}},
          {"Bayern Munich", {"FCB Munich", "Bayern"}},
          {"Borussia Dortmund", {"BVB", "Dortmund"}},
          {"Paris Saint-Germain", {"PSG"}},
          {"Juventus FC", {"Juve", "Juventus"}},
          {"AC Milan", {"Milan", "ACM"}},
          {"Inter Milan", {"Inter", "Internazionale"}},
          {"Liverpool FC", {"LFC", "Liverpool"}},
          {"Chelsea FC", {"CFC", "Chelsea"}},
          {"Arsenal FC", {"AFC", "Gunners", "Arsenal"}},
          {"Tottenham Hotspur", {"Spurs", "THFC"}},
          {"Ajax Amsterdam", {"Ajax", "AFC Ajax"}},
          {"Atletico Madrid", {"Atleti", "ATM"}},
          {"Seattle Seahawks", {"SEA", "Seahawks"}},
          {"Denver Broncos", {"DEN", "Broncos"}},
          {"Miami Dolphins", {"MIA", "Dolphins"}},
          {"Philadelphia Eagles", {"PHI", "Eagles"}},
          {"San Francisco 49ers", {"SF", "Niners", "49ers"}},
      }});

  topics.push_back(TopicVocab{
      "programming_languages",
      {
          {"Python", {"py", "CPython"}},
          {"JavaScript", {"JS", "ECMAScript"}},
          {"TypeScript", {"TS"}},
          {"C++", {"cpp", "cplusplus"}},
          {"C#", {"csharp", "C Sharp"}},
          {"Objective-C", {"ObjC", "objective c"}},
          {"Visual Basic", {"VB", "VB.NET"}},
          {"Ruby on Rails", {"RoR", "Rails"}},
          {"Golang", {"Go"}},
          {"Rust", {"rs"}},
          {"Kotlin", {"kt"}},
          {"Swift", {"swift-lang"}},
          {"Haskell", {"hs"}},
          {"Erlang", {"erl"}},
          {"Elixir", {"ex"}},
          {"Fortran", {"f90", "FORTRAN"}},
          {"COBOL", {"Cobol"}},
          {"Assembly", {"ASM", "assembler"}},
          {"MATLAB", {"matlab"}},
          {"Perl", {"pl"}},
          {"Scala", {"sc"}},
          {"Clojure", {"clj"}},
          {"Julia", {"jl"}},
          {"Lua", {"lua"}},
          {"Shell", {"sh", "bash"}},
      }});

  return topics;
}

}  // namespace

const std::vector<TopicVocab>& BuiltinTopics() {
  static const std::vector<TopicVocab>* topics =
      new std::vector<TopicVocab>(BuildTopics());
  return *topics;
}

const TopicVocab& TopicByName(const std::string& name) {
  for (const auto& t : BuiltinTopics()) {
    if (t.topic == name) return t;
  }
  std::fprintf(stderr, "TopicByName: unknown topic '%s'\n", name.c_str());
  std::abort();
}

const std::vector<std::pair<std::string, std::string>>& Nicknames() {
  static const auto* pairs =
      new std::vector<std::pair<std::string, std::string>>{
          {"Robert", "Bob"},      {"Robert", "Rob"},
          {"William", "Bill"},    {"William", "Will"},
          {"Richard", "Dick"},    {"Richard", "Rick"},
          {"James", "Jim"},       {"James", "Jimmy"},
          {"John", "Jack"},       {"John", "Johnny"},
          {"Michael", "Mike"},    {"Christopher", "Chris"},
          {"Joseph", "Joe"},      {"Thomas", "Tom"},
          {"Charles", "Charlie"}, {"Charles", "Chuck"},
          {"Daniel", "Dan"},      {"Matthew", "Matt"},
          {"Anthony", "Tony"},    {"Donald", "Don"},
          {"Steven", "Steve"},    {"Andrew", "Andy"},
          {"Kenneth", "Ken"},     {"Edward", "Ed"},
          {"Edward", "Ted"},      {"Ronald", "Ron"},
          {"Timothy", "Tim"},     {"Jeffrey", "Jeff"},
          {"Gregory", "Greg"},    {"Benjamin", "Ben"},
          {"Samuel", "Sam"},      {"Patrick", "Pat"},
          {"Alexander", "Alex"},  {"Nicholas", "Nick"},
          {"Jonathan", "Jon"},    {"Lawrence", "Larry"},
          {"Elizabeth", "Liz"},   {"Elizabeth", "Beth"},
          {"Margaret", "Maggie"}, {"Margaret", "Peggy"},
          {"Katherine", "Kate"},  {"Katherine", "Kathy"},
          {"Jennifer", "Jen"},    {"Patricia", "Pat"},
          {"Barbara", "Barb"},    {"Susan", "Sue"},
          {"Jessica", "Jess"},    {"Rebecca", "Becky"},
          {"Deborah", "Debbie"},  {"Victoria", "Vicky"},
          {"Kimberly", "Kim"},    {"Christina", "Tina"},
          {"Samantha", "Sam"},    {"Alexandra", "Sandra"},
          {"Abigail", "Abby"},    {"Natalie", "Nat"},
      };
  return *pairs;
}

const std::vector<std::string>& FirstNames() {
  static const auto* names = new std::vector<std::string>{
      "James",   "John",     "Robert",  "Michael", "William", "David",
      "Richard", "Joseph",   "Thomas",  "Charles", "Daniel",  "Matthew",
      "Anthony", "Donald",   "Steven",  "Andrew",  "Kenneth", "Edward",
      "Ronald",  "Timothy",  "Jeffrey", "Gregory", "Benjamin","Samuel",
      "Patrick", "Alexander","Nicholas","Jonathan","Lawrence","Mary",
      "Patricia","Jennifer", "Linda",   "Elizabeth","Barbara","Susan",
      "Jessica", "Sarah",    "Karen",   "Nancy",   "Lisa",    "Margaret",
      "Betty",   "Sandra",   "Ashley",  "Dorothy", "Kimberly","Emily",
      "Donna",   "Michelle", "Carol",   "Amanda",  "Melissa", "Deborah",
      "Stephanie","Rebecca", "Laura",   "Sharon",  "Cynthia", "Katherine",
  };
  return *names;
}

const std::vector<std::string>& LastNames() {
  static const auto* names = new std::vector<std::string>{
      "Smith",    "Johnson",  "Williams", "Brown",    "Jones",   "Garcia",
      "Miller",   "Davis",    "Rodriguez","Martinez", "Hernandez","Lopez",
      "Gonzalez", "Wilson",   "Anderson", "Thomas",   "Taylor",  "Moore",
      "Jackson",  "Martin",   "Lee",      "Perez",    "Thompson","White",
      "Harris",   "Sanchez",  "Clark",    "Ramirez",  "Lewis",   "Robinson",
      "Walker",   "Young",    "Allen",    "King",     "Wright",  "Scott",
      "Torres",   "Nguyen",   "Hill",     "Flores",   "Green",   "Adams",
      "Nelson",   "Baker",    "Hall",     "Rivera",   "Campbell","Mitchell",
      "Carter",   "Roberts",  "Gomez",    "Phillips", "Evans",   "Turner",
      "Diaz",     "Parker",   "Cruz",     "Edwards",  "Collins", "Reyes",
  };
  return *names;
}

const std::vector<std::string>& CityNames() {
  static const auto* names = new std::vector<std::string>{
      "Berlin",     "Toronto",   "Barcelona", "New Delhi",  "Boston",
      "London",     "Paris",     "Madrid",    "Rome",       "Vienna",
      "Amsterdam",  "Brussels",  "Lisbon",    "Dublin",     "Prague",
      "Warsaw",     "Budapest",  "Athens",    "Stockholm",  "Oslo",
      "Copenhagen", "Helsinki",  "Zurich",    "Geneva",     "Munich",
      "Hamburg",    "Frankfurt", "Cologne",   "Milan",      "Naples",
      "Venice",     "Florence",  "Seville",   "Valencia",   "Porto",
      "Moscow",     "Istanbul",  "Ankara",    "Cairo",      "Lagos",
      "Nairobi",    "Cape Town", "Johannesburg","Casablanca","Tunis",
      "New York",   "Los Angeles","Chicago",  "Houston",    "Phoenix",
      "Philadelphia","San Antonio","San Diego","Dallas",    "San Jose",
      "Austin",     "Seattle",   "Denver",    "Washington", "Miami",
      "Atlanta",    "Detroit",   "Minneapolis","Portland",  "Las Vegas",
      "Montreal",   "Vancouver", "Calgary",   "Ottawa",     "Edmonton",
      "Mexico City","Guadalajara","Monterrey","Bogota",     "Lima",
      "Santiago",   "Buenos Aires","Sao Paulo","Rio de Janeiro","Brasilia",
      "Tokyo",      "Osaka",     "Kyoto",     "Seoul",      "Busan",
      "Beijing",    "Shanghai",  "Shenzhen",  "Guangzhou",  "Hong Kong",
      "Singapore",  "Bangkok",   "Jakarta",   "Manila",     "Kuala Lumpur",
      "Mumbai",     "Bangalore", "Chennai",   "Kolkata",    "Hyderabad",
      "Sydney",     "Melbourne", "Brisbane",  "Perth",      "Auckland",
  };
  return *names;
}

const std::vector<std::string>& CompanyHeadWords() {
  static const auto* words = new std::vector<std::string>{
      "Acme",     "Global",   "United",  "National", "Pacific", "Atlantic",
      "Northern", "Southern", "Eastern", "Western",  "Central", "Pioneer",
      "Summit",   "Vertex",   "Quantum", "Stellar",  "Apex",    "Nova",
      "Orion",    "Titan",    "Vanguard","Horizon",  "Cascade", "Granite",
      "Liberty",  "Frontier", "Beacon",  "Crescent", "Evergreen","Keystone",
  };
  return *words;
}

const std::vector<std::string>& CompanyTailWords() {
  static const auto* words = new std::vector<std::string>{
      "Systems",     "Technologies", "Industries",  "Solutions",
      "Dynamics",    "Networks",     "Analytics",   "Logistics",
      "Materials",   "Energy",       "Robotics",    "Software",
      "Electronics", "Aerospace",    "Biosciences", "Pharmaceuticals",
      "Financial",   "Holdings",     "Partners",    "Ventures",
  };
  return *words;
}

const std::vector<std::string>& CompanyLegalSuffixes() {
  static const auto* words = new std::vector<std::string>{
      "Inc.", "Inc", "Incorporated", "Corp.", "Corp", "Corporation",
      "LLC",  "Ltd.", "Ltd", "Limited", "Co.", "Company", "Group", "AG",
      "GmbH", "S.A.", "PLC",
  };
  return *words;
}

const std::vector<std::string>& TitleAdjectives() {
  static const auto* words = new std::vector<std::string>{
      "Midnight", "Golden",   "Silent",  "Broken",  "Electric", "Crimson",
      "Hidden",   "Eternal",  "Wild",    "Frozen",  "Burning",  "Lonely",
      "Distant",  "Shattered","Velvet",  "Neon",    "Silver",   "Hollow",
      "Restless", "Fading",   "Rising",  "Falling", "Endless",  "Savage",
  };
  return *words;
}

const std::vector<std::string>& TitleNouns() {
  static const auto* words = new std::vector<std::string>{
      "River",   "Sky",     "Heart",   "Road",    "Dream",   "Fire",
      "Shadow",  "Star",    "Ocean",   "Mountain","Storm",   "Garden",
      "Mirror",  "Window",  "Bridge",  "Tower",   "Forest",  "Desert",
      "Island",  "Harbor",  "Lantern", "Echo",    "Horizon", "Thunder",
  };
  return *words;
}

}  // namespace lakefuzz
