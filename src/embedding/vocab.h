// Built-in vocabularies: alias groups for real-world entities.
//
// Two consumers:
//  * KnowledgeBase — the simulated "world knowledge" of LLM-grade embedding
//    models (the paper embeds values with Mistral/Llama3; what those models
//    contribute beyond surface similarity is exactly alias knowledge like
//    "CA" ↔ "Canada"). See DESIGN.md §1 for the substitution rationale.
//  * datagen — the Auto-Join-style benchmark generator draws its 17 topics
//    from these tables.
#ifndef LAKEFUZZ_EMBEDDING_VOCAB_H_
#define LAKEFUZZ_EMBEDDING_VOCAB_H_

#include <string>
#include <utility>
#include <vector>

namespace lakefuzz {

/// A canonical entity name plus the alternate surface forms it appears as in
/// the wild (codes, abbreviations, reorderings).
struct AliasGroup {
  std::string canonical;
  std::vector<std::string> aliases;
};

/// A named topic with its alias groups.
struct TopicVocab {
  std::string topic;
  std::vector<AliasGroup> groups;
};

/// All built-in alias topics (countries, US states, months, elements, …).
/// Deterministic content and order.
const std::vector<TopicVocab>& BuiltinTopics();

/// Returns the topic with the given name; aborts if absent (programmer error).
const TopicVocab& TopicByName(const std::string& name);

/// Formal first names paired with their common nicknames.
const std::vector<std::pair<std::string, std::string>>& Nicknames();

/// Name parts for combinatorial person-name generation.
const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();

/// City names (fuzzed only syntactically — typos/case — by generators).
const std::vector<std::string>& CityNames();

/// Word stock for combinatorial company name generation.
const std::vector<std::string>& CompanyHeadWords();
const std::vector<std::string>& CompanyTailWords();
const std::vector<std::string>& CompanyLegalSuffixes();

/// Word stock for synthetic song / movie titles.
const std::vector<std::string>& TitleAdjectives();
const std::vector<std::string>& TitleNouns();

}  // namespace lakefuzz

#endif  // LAKEFUZZ_EMBEDDING_VOCAB_H_
