#include "fd/aligned_schema.h"

#include <unordered_map>
#include <unordered_set>

#include "util/str.h"

namespace lakefuzz {

std::vector<std::pair<size_t, size_t>> AlignedSchema::SourcesOf(
    size_t u) const {
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t l = 0; l < column_map.size(); ++l) {
    for (size_t c = 0; c < column_map[l].size(); ++c) {
      if (column_map[l][c] == u) out.emplace_back(l, c);
    }
  }
  return out;
}

Result<AlignedSchema> AlignByName(const TableList& tables) {
  AlignedSchema out;
  std::unordered_map<std::string, size_t> name_to_universal;
  out.column_map.resize(tables.size());
  for (size_t l = 0; l < tables.size(); ++l) {
    std::unordered_set<std::string> seen_in_table;
    for (size_t c = 0; c < tables[l]->NumColumns(); ++c) {
      const std::string& name = tables[l]->schema().field(c).name;
      if (!seen_in_table.insert(name).second) {
        return Status::InvalidArgument(
            StrFormat("table '%s' repeats column name '%s'",
                      tables[l]->name().c_str(), name.c_str()));
      }
      auto [it, inserted] =
          name_to_universal.emplace(name, out.universal_names.size());
      if (inserted) out.universal_names.push_back(name);
      out.column_map[l].push_back(it->second);
    }
  }
  return out;
}

Result<AlignedSchema> AlignByName(const std::vector<Table>& tables) {
  return AlignByName(BorrowTables(tables));
}

Status ValidateAlignedSchema(const AlignedSchema& aligned,
                             const TableList& tables) {
  if (aligned.column_map.size() != tables.size()) {
    return Status::InvalidArgument(
        StrFormat("column_map covers %zu tables, input has %zu",
                  aligned.column_map.size(), tables.size()));
  }
  for (size_t l = 0; l < tables.size(); ++l) {
    if (aligned.column_map[l].size() != tables[l]->NumColumns()) {
      return Status::InvalidArgument(
          StrFormat("column_map[%zu] has %zu entries, table has %zu columns",
                    l, aligned.column_map[l].size(),
                    tables[l]->NumColumns()));
    }
    std::unordered_set<size_t> used;
    for (size_t u : aligned.column_map[l]) {
      if (u >= aligned.universal_names.size()) {
        return Status::OutOfRange(
            StrFormat("universal index %zu out of range (%zu)", u,
                      aligned.universal_names.size()));
      }
      if (!used.insert(u).second) {
        return Status::InvalidArgument(StrFormat(
            "table %zu maps two columns to universal column %zu", l, u));
      }
    }
  }
  return Status::OK();
}

Status ValidateAlignedSchema(const AlignedSchema& aligned,
                             const std::vector<Table>& tables) {
  return ValidateAlignedSchema(aligned, BorrowTables(tables));
}

}  // namespace lakefuzz
