// AlignedSchema: how the columns of an integration set map into one
// universal (integrated) schema.
//
// Produced either by holistic schema matching (src/match/) or, for tables
// with trustworthy headers, by name equality (AlignByName). Consumed by the
// Full Disjunction operator and the fuzzy value matcher. At most one column
// per table may map to a given universal column — columns within a table
// never align with each other (paper Sec 2.1).
#ifndef LAKEFUZZ_FD_ALIGNED_SCHEMA_H_
#define LAKEFUZZ_FD_ALIGNED_SCHEMA_H_

#include <string>
#include <vector>

#include "table/table.h"
#include "util/result.h"

namespace lakefuzz {

/// Column alignment across an integration set.
struct AlignedSchema {
  /// Names of the universal columns (size U).
  std::vector<std::string> universal_names;
  /// column_map[l][c] = universal index of table l's column c.
  std::vector<std::vector<size_t>> column_map;

  size_t NumUniversal() const { return universal_names.size(); }

  /// For universal column u, the (table, column) pairs mapped to it, in
  /// table order.
  std::vector<std::pair<size_t, size_t>> SourcesOf(size_t u) const;
};

/// Aligns columns by exact header-name equality; every distinct name becomes
/// one universal column (first-appearance order). Fails if a table repeats a
/// column name (the mapping would be ambiguous).
Result<AlignedSchema> AlignByName(const TableList& tables);
Result<AlignedSchema> AlignByName(const std::vector<Table>& tables);

/// Checks `aligned` against `tables`: map sizes match table widths, universal
/// indices in range, and no two columns of one table share a universal
/// column.
Status ValidateAlignedSchema(const AlignedSchema& aligned,
                             const TableList& tables);
Status ValidateAlignedSchema(const AlignedSchema& aligned,
                             const std::vector<Table>& tables);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_ALIGNED_SCHEMA_H_
