// FdResultTuple: an integrated (joined) tuple with provenance.
#ifndef LAKEFUZZ_FD_FD_TUPLE_H_
#define LAKEFUZZ_FD_FD_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/table.h"

namespace lakefuzz {

/// The join of a connected, join-consistent set of input tuples: one value
/// per universal column (null where no member had a value), plus the sorted
/// TIDs of the members (the paper's "TIDs" provenance column in Fig. 1).
struct FdResultTuple {
  std::vector<Value> values;
  std::vector<uint32_t> tids;

  bool operator==(const FdResultTuple& other) const {
    return values == other.values && tids == other.tids;
  }
};

class ValueDict;

/// Interned twin of FdResultTuple: one dictionary code per universal column
/// (ValueDict::kNullCode where null) plus the sorted member TIDs. The FD
/// executors enumerate and subsume these flat integer rows and decode back
/// to Values once, when the final result set is materialized.
struct FdCodeTuple {
  std::vector<uint32_t> codes;
  std::vector<uint32_t> tids;

  bool operator==(const FdCodeTuple& other) const {
    return codes == other.codes && tids == other.tids;
  }
};

/// Decodes an interned tuple through the dictionary that produced it.
FdResultTuple DecodeCodeTuple(const FdCodeTuple& t, const ValueDict& dict);

/// True if `a`'s non-null values are a subset of `b`'s (b agrees wherever a
/// is non-null). Equal tuples subsume each other.
bool Subsumes(const FdResultTuple& b, const FdResultTuple& a);

/// Number of non-null values.
size_t NonNullCount(const FdResultTuple& t);

/// Deterministic ordering: by TID list, then values.
bool FdTupleLess(const FdResultTuple& a, const FdResultTuple& b);

/// Materializes results as a table. When `include_provenance` is set, a
/// leading "TIDs" column renders each provenance set as "{t0,t3}".
Table FdResultsToTable(const std::vector<FdResultTuple>& results,
                       const std::vector<std::string>& column_names,
                       const std::string& table_name,
                       bool include_provenance = false);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_FD_TUPLE_H_
