#include "fd/full_disjunction.h"

#include <algorithm>

#include "util/stopwatch.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

/// Mutable enumeration state for one component. All merge/consistency work
/// happens on interned uint32 code rows; the scratch arrays are owned by the
/// caller and reused across components.
class ComponentEnumerator {
 public:
  ComponentEnumerator(const FdProblem& problem,
                      const std::vector<uint32_t>& component,
                      std::atomic<int64_t>* budget, FdScratch* scratch,
                      const CancelToken* cancel)
      : problem_(problem),
        component_(component),
        budget_(budget),
        cancel_(cancel),
        s_(*scratch),
        num_cols_(problem.num_columns()) {}

  Result<std::vector<FdCodeTuple>> Enumerate() {
    // Fast path: the whole component is a single legal set iff every column
    // has at most one distinct non-null code across it (O(total cells)) and
    // no table contributes two tuples (an FD set holds at most one tuple
    // per relation).
    if (ComponentTablesDistinct() && ComponentFullyConsistent()) {
      FdCodeTuple t;
      t.codes = s_.merged;  // filled by ComponentFullyConsistent
      t.tids = component_;
      ResetMerged();
      return std::vector<FdCodeTuple>{std::move(t)};
    }

    // Seed extension set: with S = ∅ every component member is a
    // consistent extension (components are already sorted).
    LAKEFUZZ_RETURN_IF_ERROR(Extend(component_));
    return std::move(results_);
  }

  uint64_t nodes_used() const { return nodes_used_; }

 private:
  bool ComponentTablesDistinct() {
    for (uint32_t tid : component_) {
      uint32_t table = problem_.table_id(tid);
      if (s_.table_used[table]) {
        for (uint32_t seen : component_) {
          s_.table_used[problem_.table_id(seen)] = 0;
        }
        return false;
      }
      s_.table_used[table] = 1;
    }
    for (uint32_t tid : component_) {
      s_.table_used[problem_.table_id(tid)] = 0;
    }
    return true;
  }

  bool ComponentFullyConsistent() {
    for (uint32_t tid : component_) {
      const uint32_t* row = problem_.CodeRow(tid);
      for (size_t c = 0; c < num_cols_; ++c) {
        if (row[c] == FdProblem::kNullCode) continue;
        if (s_.merged[c] == FdProblem::kNullCode) {
          s_.merged[c] = row[c];
        } else if (s_.merged[c] != row[c]) {
          ResetMerged();
          return false;
        }
      }
    }
    return true;
  }

  void ResetMerged() {
    std::fill(s_.merged.begin(), s_.merged.end(), FdProblem::kNullCode);
  }

  bool ConsistentWithMerged(uint32_t tid) const {
    const uint32_t* row = problem_.CodeRow(tid);
    const uint32_t* merged = s_.merged.data();
    for (size_t c = 0; c < num_cols_; ++c) {
      const uint32_t rc = row[c];
      if (rc == FdProblem::kNullCode ||
          merged[c] == FdProblem::kNullCode) {
        continue;
      }
      if (merged[c] != rc) return false;
    }
    return true;
  }

  /// Adds `tid` to S; returns the columns that flipped null→non-null (undo
  /// record for backtracking).
  std::vector<size_t> Include(uint32_t tid) {
    std::vector<size_t> flipped;
    const uint32_t* row = problem_.CodeRow(tid);
    for (size_t c = 0; c < num_cols_; ++c) {
      if (row[c] == FdProblem::kNullCode ||
          s_.merged[c] != FdProblem::kNullCode) {
        continue;
      }
      s_.merged[c] = row[c];
      flipped.push_back(c);
    }
    s_.in_set[tid] = true;
    s_.table_used[problem_.table_id(tid)] = 1;
    members_.push_back(tid);
    return flipped;
  }

  void Undo(uint32_t tid, const std::vector<size_t>& flipped) {
    for (size_t c : flipped) s_.merged[c] = FdProblem::kNullCode;
    s_.in_set[tid] = false;
    s_.table_used[problem_.table_id(tid)] = 0;
    members_.pop_back();
  }

  /// Extension set of the seed set S = {v}: v's join-graph neighbors,
  /// filtered. The root's `ext` (all component members) is *not* neighbor-
  /// derived, so it must not be carried over — connectivity starts here.
  std::vector<uint32_t> SeedExtensions(uint32_t v) {
    std::vector<uint32_t> child;
    ++s_.epoch;
    problem_.ForEachCoPosted(v, [&](uint32_t nb) {
      if (s_.in_set[nb]) return;
      if (s_.seen_stamp[nb] == s_.epoch) return;
      s_.seen_stamp[nb] = s_.epoch;
      if (s_.table_used[problem_.table_id(nb)]) return;
      if (!ConsistentWithMerged(nb)) return;
      child.push_back(nb);
    });
    std::sort(child.begin(), child.end());
    return child;
  }

  /// Extension set after including `v` into S (|S| ≥ 1), derived
  /// incrementally from the parent's set `ext` (the consistent join-graph
  /// extensions of S, ignoring exclusions). Correctness rests on
  /// monotonicity: merged codes only gain columns and used tables only grow
  /// as S grows, so
  ///   ext(S ∪ {v}) = {u ∈ ext(S) : table(u) ≠ table(v), u agrees with v's
  ///                   newly `flipped` columns}
  ///                ∪ {u ∈ N(v) \ ext(S) : full table + consistency check}.
  /// A neighbor of an earlier member that failed its check once can never
  /// pass later, so re-testing only v's neighbors loses nothing. This
  /// replaces the former per-node rescan of *every* member's posting lists
  /// (the superlinear term on hub-heavy join graphs) with O(|ext| · |flipped|
  /// + deg(v)). The final sort keeps exploration order — and therefore
  /// results — identical to the materialized-adjacency implementation.
  std::vector<uint32_t> ChildExtensions(const std::vector<uint32_t>& ext,
                                        uint32_t v,
                                        const std::vector<size_t>& flipped) {
    std::vector<uint32_t> child;
    const uint32_t v_table = problem_.table_id(v);
    ++s_.epoch;
    for (uint32_t u : ext) {
      if (s_.in_set[u]) continue;  // v itself (just included)
      s_.seen_stamp[u] = s_.epoch;
      if (problem_.table_id(u) == v_table) continue;
      const uint32_t* row = problem_.CodeRow(u);
      bool ok = true;
      for (size_t c : flipped) {
        if (row[c] != FdProblem::kNullCode && row[c] != s_.merged[c]) {
          ok = false;
          break;
        }
      }
      if (ok) child.push_back(u);
    }
    problem_.ForEachCoPosted(v, [&](uint32_t nb) {
      if (s_.in_set[nb]) return;
      if (s_.seen_stamp[nb] == s_.epoch) return;
      s_.seen_stamp[nb] = s_.epoch;
      // One tuple per relation: a tuple whose table is already represented
      // can never extend S (neither now nor in any superset of S).
      if (s_.table_used[problem_.table_id(nb)]) return;
      if (!ConsistentWithMerged(nb)) return;
      child.push_back(nb);
    });
    std::sort(child.begin(), child.end());
    return child;
  }

  /// `ext` = consistent join-graph extensions of the current S, ignoring
  /// exclusions (the maximality test set), sorted ascending.
  Status Extend(const std::vector<uint32_t>& ext) {
    ++nodes_used_;
    if ((nodes_used_ & 0x3ff) == 0 || members_.empty()) {
      // Amortized budget check: draw down in blocks. The cancellation
      // checkpoint shares the amortization so a live token costs one atomic
      // load per 1024 search nodes, not per node.
      if (cancel_ != nullptr && cancel_->cancelled()) {
        return Status::Cancelled(
            "full disjunction cancelled mid-enumeration");
      }
      if (budget_ != nullptr &&
          budget_->fetch_sub(1024, std::memory_order_relaxed) <= 0) {
        return Status::FailedPrecondition(
            "full disjunction search budget exhausted "
            "(max_search_nodes); component too entangled");
      }
    }
    if (ext.empty()) {
      // S is ⊆-maximal among connected consistent sets: emit.
      FdCodeTuple t;
      t.codes = s_.merged;
      t.tids = members_;
      std::sort(t.tids.begin(), t.tids.end());
      results_.push_back(std::move(t));
      return Status::OK();
    }
    bool any_candidate = false;
    for (uint32_t u : ext) {
      if (!s_.excluded[u]) {
        any_candidate = true;
        break;
      }
    }
    if (!any_candidate) {
      // Extendable only by excluded tuples: every maximal superset contains
      // an excluded tuple and is enumerated in a sibling branch. Prune.
      return Status::OK();
    }
    std::vector<uint32_t> locally_excluded;
    for (uint32_t v : ext) {
      // S is identical across loop iterations (Include/Undo pairs), but the
      // exclusion set grows — skip candidates excluded by earlier siblings
      // (or on entry).
      if (s_.excluded[v]) continue;
      std::vector<size_t> flipped = Include(v);
      std::vector<uint32_t> child = members_.size() == 1
                                        ? SeedExtensions(v)
                                        : ChildExtensions(ext, v, flipped);
      Status st = Extend(child);
      Undo(v, flipped);
      if (!st.ok()) {
        for (uint32_t u : locally_excluded) s_.excluded[u] = false;
        return st;
      }
      s_.excluded[v] = true;
      locally_excluded.push_back(v);
    }
    for (uint32_t u : locally_excluded) s_.excluded[u] = false;
    return Status::OK();
  }

  const FdProblem& problem_;
  const std::vector<uint32_t>& component_;
  std::atomic<int64_t>* budget_;
  const CancelToken* cancel_;
  FdScratch& s_;
  const size_t num_cols_;

  std::vector<uint32_t> members_;
  std::vector<FdCodeTuple> results_;
  uint64_t nodes_used_ = 0;
};

}  // namespace

Result<std::vector<FdCodeTuple>> FullDisjunction::RunComponentCodes(
    const FdProblem& problem, const std::vector<uint32_t>& component,
    std::atomic<int64_t>* budget, uint64_t* nodes_used, FdScratch* scratch,
    const CancelToken* cancel) {
  ComponentEnumerator enumerator(problem, component, budget, scratch, cancel);
  auto result = enumerator.Enumerate();
  if (nodes_used != nullptr) *nodes_used = enumerator.nodes_used();
  return result;
}

Result<std::vector<FdResultTuple>> FullDisjunction::RunComponent(
    const FdProblem& problem, const std::vector<uint32_t>& component,
    std::atomic<int64_t>* budget, uint64_t* nodes_used) {
  FdScratch scratch(problem);
  LAKEFUZZ_ASSIGN_OR_RETURN(
      std::vector<FdCodeTuple> codes,
      RunComponentCodes(problem, component, budget, nodes_used, &scratch));
  std::vector<FdResultTuple> out;
  out.reserve(codes.size());
  for (const auto& t : codes) out.push_back(DecodeCodeTuple(t, problem.dict()));
  return out;
}

Result<std::vector<FdCodeTuple>> FullDisjunction::RunCodes(
    FdProblem* problem, FdStats* stats, const CancelToken& cancel,
    const ProgressFn& progress) const {
  Stopwatch index_watch;
  problem->BuildIndex();
  stats->index_seconds = index_watch.ElapsedSeconds();
  stats->num_input_tuples = problem->num_tuples();
  stats->num_components = problem->Components().size();
  stats->distinct_values = problem->index_stats().distinct_values;
  stats->posting_lists = problem->index_stats().posting_lists;
  stats->posting_entries = problem->index_stats().posting_entries;

  ReportProgress(progress, Stage::kFdEnumerate, 0, 1);
  Stopwatch enum_watch;
  std::atomic<int64_t> budget{
      static_cast<int64_t>(options_.max_search_nodes)};
  FdScratch scratch(*problem);
  std::vector<FdCodeTuple> code_tuples;
  for (const auto& comp : problem->Components()) {
    if (cancel.cancelled()) {
      return Status::Cancelled("full disjunction cancelled");
    }
    stats->largest_component =
        std::max(stats->largest_component, comp.size());
    uint64_t nodes = 0;
    LAKEFUZZ_ASSIGN_OR_RETURN(
        std::vector<FdCodeTuple> tuples,
        RunComponentCodes(*problem, comp, &budget, &nodes, &scratch,
                          &cancel));
    stats->search_nodes += nodes;
    for (auto& t : tuples) code_tuples.push_back(std::move(t));
  }
  stats->enumeration_seconds = enum_watch.ElapsedSeconds();
  stats->results_before_subsumption = code_tuples.size();
  ReportProgress(progress, Stage::kFdEnumerate, 1, 1);

  if (cancel.cancelled()) {
    return Status::Cancelled("full disjunction cancelled");
  }
  ReportProgress(progress, Stage::kFdSubsume, 0, 1);
  Stopwatch subsume_watch;
  code_tuples = EliminateSubsumedCodes(std::move(code_tuples));
  stats->subsumption_seconds = subsume_watch.ElapsedSeconds();
  stats->results = code_tuples.size();
  ReportProgress(progress, Stage::kFdSubsume, 1, 1);
  return code_tuples;
}

Result<FdResult> FullDisjunction::Run(FdProblem* problem) const {
  FdResult out;
  LAKEFUZZ_ASSIGN_OR_RETURN(std::vector<FdCodeTuple> code_tuples,
                            RunCodes(problem, &out.stats));
  // Decode wall time stays folded into subsumption_seconds, as before the
  // RunCodes split.
  Stopwatch decode_watch;
  out.tuples.reserve(code_tuples.size());
  for (const auto& t : code_tuples) {
    out.tuples.push_back(DecodeCodeTuple(t, problem->dict()));
  }
  out.stats.subsumption_seconds += decode_watch.ElapsedSeconds();
  return out;
}

Result<Table> FullDisjunction::RunToTable(const std::vector<Table>& tables,
                                          const AlignedSchema& aligned,
                                          bool include_provenance) const {
  LAKEFUZZ_ASSIGN_OR_RETURN(FdProblem problem,
                            FdProblem::Build(tables, aligned));
  LAKEFUZZ_ASSIGN_OR_RETURN(FdResult result, Run(&problem));
  return FdResultsToTable(result.tuples, problem.column_names(),
                          "full_disjunction", include_provenance);
}

}  // namespace lakefuzz
