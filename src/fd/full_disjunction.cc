#include "fd/full_disjunction.h"

#include <algorithm>
#include <unordered_map>

#include "util/str.h"

namespace lakefuzz {
namespace {

/// Mutable enumeration state for one component.
class ComponentEnumerator {
 public:
  ComponentEnumerator(const FdProblem& problem,
                      const std::vector<uint32_t>& component,
                      std::atomic<int64_t>* budget)
      : problem_(problem),
        component_(component),
        budget_(budget),
        num_cols_(problem.num_columns()) {
    merged_.assign(num_cols_, Value::Null());
    in_set_.assign(problem.num_tuples(), 0);
    excluded_.assign(problem.num_tuples(), 0);
    seen_stamp_.assign(problem.num_tuples(), 0);
    uint32_t max_table = 0;
    for (const auto& t : problem.tuples()) {
      max_table = std::max(max_table, t.table_id);
    }
    table_used_.assign(max_table + 1, 0);
  }

  Result<std::vector<FdResultTuple>> Enumerate() {
    // Fast path: the whole component is a single legal set iff every column
    // has at most one distinct non-null value across it (O(total values))
    // and no table contributes two tuples (an FD set holds at most one
    // tuple per relation).
    if (ComponentTablesDistinct() && ComponentFullyConsistent()) {
      FdResultTuple t;
      t.values = merged_;  // filled by ComponentFullyConsistent
      t.tids = component_;
      ResetMerged();
      return std::vector<FdResultTuple>{std::move(t)};
    }

    LAKEFUZZ_RETURN_IF_ERROR(Extend());
    return std::move(results_);
  }

  uint64_t nodes_used() const { return nodes_used_; }

 private:
  bool ComponentTablesDistinct() {
    for (uint32_t tid : component_) {
      uint32_t table = problem_.tuples()[tid].table_id;
      if (table_used_[table]) {
        for (uint32_t seen : component_) {
          table_used_[problem_.tuples()[seen].table_id] = 0;
        }
        return false;
      }
      table_used_[table] = 1;
    }
    for (uint32_t tid : component_) {
      table_used_[problem_.tuples()[tid].table_id] = 0;
    }
    return true;
  }

  bool ComponentFullyConsistent() {
    for (uint32_t tid : component_) {
      const auto& vals = problem_.tuples()[tid].values;
      for (size_t c = 0; c < num_cols_; ++c) {
        if (vals[c].is_null()) continue;
        if (merged_[c].is_null()) {
          merged_[c] = vals[c];
        } else if (!(merged_[c] == vals[c])) {
          ResetMerged();
          return false;
        }
      }
    }
    return true;
  }

  void ResetMerged() {
    for (auto& v : merged_) v = Value::Null();
  }

  bool ConsistentWithMerged(uint32_t tid) const {
    const auto& vals = problem_.tuples()[tid].values;
    for (size_t c = 0; c < num_cols_; ++c) {
      if (vals[c].is_null() || merged_[c].is_null()) continue;
      if (!(merged_[c] == vals[c])) return false;
    }
    return true;
  }

  /// Adds `tid` to S; returns the columns that flipped null→non-null (undo
  /// record for backtracking).
  std::vector<size_t> Include(uint32_t tid) {
    std::vector<size_t> flipped;
    const auto& vals = problem_.tuples()[tid].values;
    for (size_t c = 0; c < num_cols_; ++c) {
      if (vals[c].is_null() || !merged_[c].is_null()) continue;
      merged_[c] = vals[c];
      flipped.push_back(c);
    }
    in_set_[tid] = true;
    table_used_[problem_.tuples()[tid].table_id] = 1;
    members_.push_back(tid);
    return flipped;
  }

  void Undo(uint32_t tid, const std::vector<size_t>& flipped) {
    for (size_t c : flipped) merged_[c] = Value::Null();
    in_set_[tid] = false;
    table_used_[problem_.tuples()[tid].table_id] = 0;
    members_.pop_back();
  }

  /// Consistent join-graph extensions of the current set S. When S is empty
  /// every component member is a candidate (seeds). `any_consistent` is set
  /// if at least one extension exists *ignoring* exclusions — the
  /// maximality test.
  std::vector<uint32_t> Candidates(bool* any_consistent) {
    std::vector<uint32_t> cand;
    *any_consistent = false;
    if (members_.empty()) {
      for (uint32_t tid : component_) {
        *any_consistent = true;
        if (!excluded_[tid]) cand.push_back(tid);
      }
      return cand;
    }
    ++epoch_;
    for (uint32_t m : members_) {
      for (uint32_t nb : problem_.Neighbors(m)) {
        if (in_set_[nb]) continue;
        if (seen_stamp_[nb] == epoch_) continue;
        seen_stamp_[nb] = epoch_;
        // One tuple per relation: a tuple whose table is already represented
        // can never extend S (neither now nor in any superset of S).
        if (table_used_[problem_.tuples()[nb].table_id]) continue;
        if (!ConsistentWithMerged(nb)) continue;
        *any_consistent = true;
        if (!excluded_[nb]) cand.push_back(nb);
      }
    }
    std::sort(cand.begin(), cand.end());
    return cand;
  }

  Status Extend() {
    ++nodes_used_;
    if ((nodes_used_ & 0x3ff) == 0 || members_.empty()) {
      // Amortized budget check: draw down in blocks.
      if (budget_ != nullptr &&
          budget_->fetch_sub(1024, std::memory_order_relaxed) <= 0) {
        return Status::FailedPrecondition(
            "full disjunction search budget exhausted "
            "(max_search_nodes); component too entangled");
      }
    }
    bool any_consistent = false;
    std::vector<uint32_t> cand = Candidates(&any_consistent);
    if (!any_consistent) {
      // S is ⊆-maximal among connected consistent sets: emit.
      FdResultTuple t;
      t.values = merged_;
      t.tids = members_;
      std::sort(t.tids.begin(), t.tids.end());
      results_.push_back(std::move(t));
      return Status::OK();
    }
    if (cand.empty()) {
      // Extendable only by excluded tuples: every maximal superset contains
      // an excluded tuple and is enumerated in a sibling branch. Prune.
      return Status::OK();
    }
    std::vector<uint32_t> locally_excluded;
    locally_excluded.reserve(cand.size());
    for (uint32_t v : cand) {
      // S is identical across loop iterations (Include/Undo pairs), but the
      // exclusion set grows — skip candidates excluded by earlier siblings.
      if (excluded_[v]) continue;
      std::vector<size_t> flipped = Include(v);
      Status st = Extend();
      Undo(v, flipped);
      if (!st.ok()) {
        for (uint32_t u : locally_excluded) excluded_[u] = false;
        return st;
      }
      excluded_[v] = true;
      locally_excluded.push_back(v);
    }
    for (uint32_t u : locally_excluded) excluded_[u] = false;
    return Status::OK();
  }

  const FdProblem& problem_;
  const std::vector<uint32_t>& component_;
  std::atomic<int64_t>* budget_;
  const size_t num_cols_;

  std::vector<Value> merged_;
  std::vector<uint32_t> members_;
  std::vector<char> in_set_;
  std::vector<char> table_used_;
  std::vector<char> excluded_;
  std::vector<uint64_t> seen_stamp_;
  uint64_t epoch_ = 0;
  std::vector<FdResultTuple> results_;
  uint64_t nodes_used_ = 0;
};

}  // namespace

Result<std::vector<FdResultTuple>> FullDisjunction::RunComponent(
    const FdProblem& problem, const std::vector<uint32_t>& component,
    std::atomic<int64_t>* budget, uint64_t* nodes_used) {
  ComponentEnumerator enumerator(problem, component, budget);
  auto result = enumerator.Enumerate();
  if (nodes_used != nullptr) *nodes_used = enumerator.nodes_used();
  return result;
}

Result<FdResult> FullDisjunction::Run(FdProblem* problem) const {
  problem->BuildIndex();
  FdResult out;
  out.stats.num_input_tuples = problem->num_tuples();
  out.stats.num_components = problem->Components().size();

  std::atomic<int64_t> budget{
      static_cast<int64_t>(options_.max_search_nodes)};
  for (const auto& comp : problem->Components()) {
    out.stats.largest_component =
        std::max(out.stats.largest_component, comp.size());
    uint64_t nodes = 0;
    LAKEFUZZ_ASSIGN_OR_RETURN(
        std::vector<FdResultTuple> tuples,
        RunComponent(*problem, comp, &budget, &nodes));
    out.stats.search_nodes += nodes;
    for (auto& t : tuples) out.tuples.push_back(std::move(t));
  }
  out.stats.results_before_subsumption = out.tuples.size();
  out.tuples = EliminateSubsumed(std::move(out.tuples));
  out.stats.results = out.tuples.size();
  return out;
}

Result<Table> FullDisjunction::RunToTable(const std::vector<Table>& tables,
                                          const AlignedSchema& aligned,
                                          bool include_provenance) const {
  LAKEFUZZ_ASSIGN_OR_RETURN(FdProblem problem,
                            FdProblem::Build(tables, aligned));
  LAKEFUZZ_ASSIGN_OR_RETURN(FdResult result, Run(&problem));
  return FdResultsToTable(result.tuples, problem.column_names(),
                          "full_disjunction", include_provenance);
}

}  // namespace lakefuzz
