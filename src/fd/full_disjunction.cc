#include "fd/full_disjunction.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>

#include "obs/trace.h"
#include "util/arena.h"
#include "util/fault_injection.h"
#include "util/rss.h"
#include "util/stopwatch.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace lakefuzz {
namespace {

/// The node budget runs out under two different contracts: the library-wide
/// FdOptions::max_search_nodes safety valve (a caller-tunable precondition,
/// legacy kFailedPrecondition) and a request-scoped
/// ResourceBudget::max_fd_nodes (an overload signal, kResourceExhausted —
/// retryable with a larger budget, truncatable under kTruncate).
/// Components below this tuple count skip their per-component trace span:
/// tiny components dominate by count but not by time, and spanning each one
/// would flood the trace (and the span cap) with noise.
constexpr size_t kComponentSpanMinTuples = 64;

Status BudgetExhaustedError(const RequestContext* ctx) {
  if (ctx != nullptr && ctx->budget.max_fd_nodes > 0) {
    return Status::ResourceExhausted(
        "full disjunction node budget exhausted "
        "(ResourceBudget::max_fd_nodes)");
  }
  return Status::FailedPrecondition(
      "full disjunction search budget exhausted "
      "(max_search_nodes); component too entangled");
}

/// One independent subtree of the branch-and-exclude tree, fully described
/// by data (no live enumerator state): the ordinal path identifying the
/// subtree root (for the deterministic merge), the TIDs included along that
/// path (replayed onto a clean scratch), and the exclusion set as a short
/// chain of shared prefix views (exclude tids[0..prefix) of each link).
struct ExcludeLink {
  std::shared_ptr<const ExcludeLink> parent;
  std::shared_ptr<const std::vector<uint32_t>> tids;
  size_t prefix = 0;
};

struct SubtreeTask {
  std::vector<uint32_t> ordinals;
  std::vector<uint32_t> includes;
  std::shared_ptr<const ExcludeLink> excludes;
  /// Branch range [begin, end) of the node reached by `includes` that this
  /// task owns (chunking keeps task bookkeeping amortized over many
  /// branches). begin == end marks the whole-node root task, which also
  /// runs the node prelude (fast path, budget, pruning).
  uint32_t begin = 0;
  uint32_t end = 0;
};

/// Result tuples of one contiguous DFS run, tagged with the (depth-bounded)
/// ordinal path of the subtree that produced them. Tasks emit segments; the
/// runner sorts all segments lexicographically by path, which reproduces
/// the sequential DFS emission order exactly (each bounded path is
/// enumerated inline by exactly one task, and splitting only happens at
/// depths below the bound).
struct ResultSegment {
  std::vector<uint32_t> path;
  std::vector<FdCodeTuple> tuples;
};

/// Shared split policy + spawn hook handed to enumerators running inside
/// the intra-component runner. Null context = plain sequential enumeration.
struct SplitContext {
  size_t max_depth = 0;  ///< split nodes with |S| < max_depth
  size_t min_ext = 2;    ///< only split nodes with >= this many live branches
  size_t workers = 1;    ///< sizes the branch chunks of each split
  /// Backpressure gate: split only while fewer than this many tasks are
  /// queued (idle workers want food; a full queue means inline is cheaper).
  size_t queue_low_water = 0;
  std::atomic<size_t>* queued = nullptr;
  std::atomic<uint64_t>* spawned = nullptr;
  uint64_t spawn_cap = 0;
  /// Adaptive grain gate (FdOptions::intra_split_overhead_multiple; 0 =
  /// static gate). Until `calibration_tasks` tasks have finished, splits are
  /// free — the first round is how grain gets measured. Afterwards a node
  /// may split only while the finished tasks' mean execution time exceeds
  /// overhead_multiple × their mean split overhead (replay time, floored by
  /// a fixed per-task queue-bookkeeping estimate).
  double overhead_multiple = 0.0;
  uint64_t calibration_tasks = 0;
  std::atomic<uint64_t>* done_tasks = nullptr;
  std::atomic<uint64_t>* done_busy_ns = nullptr;
  std::atomic<uint64_t>* done_replay_ns = nullptr;
  std::function<void(SubtreeTask&&)> spawn;
};

/// Floor for the per-task split-overhead estimate: enqueue + dequeue +
/// descriptor construction cost real time even when the include-path replay
/// is trivially short, and that cost never shows up in replay_ns.
constexpr double kMinTaskOverheadNs = 2000.0;

/// Mutable enumeration state for one component (or one subtree task of a
/// component). All merge/consistency work happens on interned uint32 code
/// rows; the scratch arrays are owned by the caller and reused across
/// components and tasks.
class ComponentEnumerator {
 public:
  ComponentEnumerator(const FdProblem& problem,
                      const std::vector<uint32_t>& component,
                      std::atomic<int64_t>* budget, FdScratch* scratch,
                      const RequestContext* ctx,
                      SplitContext* split = nullptr)
      : problem_(problem),
        component_(component),
        budget_(budget),
        ctx_(ctx),
        split_(split),
        s_(*scratch),
        num_cols_(problem.num_columns()) {}

  /// Sequential whole-component enumeration (classic entry point).
  Result<std::vector<FdCodeTuple>> Enumerate() {
    SubtreeTask root;
    LAKEFUZZ_ASSIGN_OR_RETURN(std::vector<ResultSegment> segments,
                              EnumerateTask(root));
    std::vector<FdCodeTuple> out;
    size_t total = 0;
    for (const auto& seg : segments) total += seg.tuples.size();
    out.reserve(total);
    for (auto& seg : segments) {
      for (auto& t : seg.tuples) out.push_back(std::move(t));
    }
    return out;
  }

  /// Settles the shared budget to exact node counts: block draws are
  /// amortized permission for 1024 nodes each; the unused remainder is
  /// refunded (or the never-drawn tail charged) when the enumeration unit
  /// finishes. Keeps many small subtree tasks — which rarely hit a block
  /// boundary of their own — collectively accountable to one budget.
  void SettleBudget() {
    if (budget_ == nullptr) return;
    const int64_t drawn = static_cast<int64_t>(blocks_drawn_) * 1024;
    budget_->fetch_sub(static_cast<int64_t>(nodes_used_) - drawn,
                       std::memory_order_relaxed);
  }

  /// Runs one subtree task: replays the include path and exclusion chain
  /// onto the (clean) scratch, enumerates its branch range — spawning
  /// further tasks when the split context says so — and restores the
  /// scratch before returning, even on error. The root task (empty range)
  /// also owns the component fast path and the root-node prelude.
  Result<std::vector<ResultSegment>> EnumerateTask(const SubtreeTask& task) {
    if (task.includes.empty() && task.begin == task.end) {
      // Fast path: the whole component is a single legal set iff every
      // column has at most one distinct non-null code across it (O(total
      // cells)) and no table contributes two tuples (an FD set holds at
      // most one tuple per relation).
      if (ComponentTablesDistinct() && ComponentFullyConsistent()) {
        FdCodeTuple t;
        t.codes = s_.merged;  // filled by ComponentFullyConsistent
        t.tids = component_;
        ResetMerged();
        std::vector<ResultSegment> out(1);
        out[0].tuples.push_back(std::move(t));
        return out;
      }
      // Seed extension set: with S = ∅ every component member is a
      // consistent extension (components are already sorted).
      Status st = Extend(component_.data(), component_.size());
      ClearEntryExclusions();
      SettleBudget();
      if (!st.ok()) return st;
      return std::move(segments_);
    }

    // Everything up to the branch loop is split overhead — the price paid
    // for making this subtree a task instead of an inline recursion. The
    // adaptive gate compares it against measured task grain.
    const uint64_t replay_start = ThreadPool::NowNs();
    // Mark the exclusion chain (check-before-set so the clearing log stays
    // exact even when a TID appears in several links).
    for (const ExcludeLink* link = task.excludes.get(); link != nullptr;
         link = link->parent.get()) {
      const auto& tids = *link->tids;
      for (size_t i = 0; i < link->prefix; ++i) SetExcluded(tids[i]);
    }
    // Replay the include path, rebuilding the extension set exactly as the
    // sequential descent did (SeedExtensions for |S| = 1, then the
    // incremental ChildExtensions chain). Extensions ignore exclusions, so
    // marking the chain first cannot perturb the replay.
    ordinals_ = task.ordinals;
    std::vector<uint32_t> ext;
    std::vector<std::vector<uint32_t>> flips;
    flips.reserve(task.includes.size());
    for (uint32_t v : task.includes) {
      std::vector<uint32_t> flipped;
      Include(v, &flipped);
      std::vector<uint32_t> next;
      if (members_.size() == 1) {
        SeedExtensions(v, &next);
      } else {
        ChildExtensions(ext.data(), ext.size(), v, flipped.data(),
                        flipped.size(), &next);
      }
      ext = std::move(next);
      flips.push_back(std::move(flipped));
    }
    replay_ns_ = ThreadPool::NowNs() - replay_start;
    // The node prelude (node count, budget, pruning) ran in the task that
    // split this node; range tasks enumerate their branch slice directly.
    const std::vector<uint32_t>& node_ext =
        task.includes.empty() ? component_ : ext;
    Status st =
        RunBranchRange(node_ext.data(), node_ext.size(), task.begin, task.end);
    for (size_t k = task.includes.size(); k-- > 0;) {
      Undo(task.includes[k], flips[k].data(), flips[k].size());
    }
    ClearEntryExclusions();
    SettleBudget();
    if (!st.ok()) return st;
    return std::move(segments_);
  }

  uint64_t nodes_used() const { return nodes_used_; }

  /// Split-overhead time of this task (include-path replay + exclusion-chain
  /// marking); 0 for root tasks.
  uint64_t replay_ns() const { return replay_ns_; }

 private:
  void SetExcluded(uint32_t tid) {
    if (s_.excluded[tid]) return;
    s_.excluded[tid] = 1;
    if (split_ != nullptr) excluded_log_.push_back(tid);
  }

  void ClearExcluded(uint32_t tid) {
    s_.excluded[tid] = 0;
    if (split_ != nullptr) excluded_log_.pop_back();
  }

  /// Clears whatever exclusion marks remain logged (after Extend balanced
  /// its own, exactly the task-entry chain marks).
  void ClearEntryExclusions() {
    for (uint32_t tid : excluded_log_) s_.excluded[tid] = 0;
    excluded_log_.clear();
  }

  bool ComponentTablesDistinct() {
    for (uint32_t tid : component_) {
      uint32_t table = problem_.table_id(tid);
      if (s_.table_used[table]) {
        for (uint32_t seen : component_) {
          s_.table_used[problem_.table_id(seen)] = 0;
        }
        return false;
      }
      s_.table_used[table] = 1;
    }
    for (uint32_t tid : component_) {
      s_.table_used[problem_.table_id(tid)] = 0;
    }
    return true;
  }

  bool ComponentFullyConsistent() {
    for (uint32_t tid : component_) {
      const uint32_t* row = problem_.CodeRow(tid);
      for (size_t c = 0; c < num_cols_; ++c) {
        if (row[c] == FdProblem::kNullCode) continue;
        if (s_.merged[c] == FdProblem::kNullCode) {
          s_.merged[c] = row[c];
        } else if (s_.merged[c] != row[c]) {
          ResetMerged();
          return false;
        }
      }
    }
    return true;
  }

  void ResetMerged() {
    std::fill(s_.merged.begin(), s_.merged.end(), FdProblem::kNullCode);
  }

  bool ConsistentWithMerged(uint32_t tid) const {
    const uint32_t* row = problem_.CodeRow(tid);
    const uint32_t* merged = s_.merged.data();
    for (size_t c = 0; c < num_cols_; ++c) {
      const uint32_t rc = row[c];
      if (rc == FdProblem::kNullCode ||
          merged[c] == FdProblem::kNullCode) {
        continue;
      }
      if (merged[c] != rc) return false;
    }
    return true;
  }

  /// The arena backing per-node temporaries, or null when disabled (the
  /// ArenaVector/ArenaFrame call sites then fall back to the heap — one
  /// code path, two allocators, byte-identical output).
  ArenaAllocator* arena() {
    return s_.arena_enabled ? &s_.arena : nullptr;
  }

  /// Adds `tid` to S; appends the columns that flipped null→non-null to
  /// *flipped (undo record for backtracking). Vec = any push_back(uint32_t)
  /// container — ArenaVector on the hot path, std::vector in task replay.
  template <typename Vec>
  void Include(uint32_t tid, Vec* flipped) {
    const uint32_t* row = problem_.CodeRow(tid);
    for (size_t c = 0; c < num_cols_; ++c) {
      if (row[c] == FdProblem::kNullCode ||
          s_.merged[c] != FdProblem::kNullCode) {
        continue;
      }
      s_.merged[c] = row[c];
      flipped->push_back(static_cast<uint32_t>(c));
    }
    s_.in_set[tid] = true;
    s_.table_used[problem_.table_id(tid)] = 1;
    members_.push_back(tid);
  }

  void Undo(uint32_t tid, const uint32_t* flipped, size_t num_flipped) {
    for (size_t k = 0; k < num_flipped; ++k) {
      s_.merged[flipped[k]] = FdProblem::kNullCode;
    }
    s_.in_set[tid] = false;
    s_.table_used[problem_.table_id(tid)] = 0;
    members_.pop_back();
  }

  /// Extension set of the seed set S = {v}: v's join-graph neighbors,
  /// filtered. The root's `ext` (all component members) is *not* neighbor-
  /// derived, so it must not be carried over — connectivity starts here.
  template <typename Vec>
  void SeedExtensions(uint32_t v, Vec* child) {
    ++s_.epoch;
    problem_.ForEachCoPosted(v, [&](uint32_t nb) {
      if (s_.in_set[nb]) return;
      if (s_.seen_stamp[nb] == s_.epoch) return;
      s_.seen_stamp[nb] = s_.epoch;
      if (s_.table_used[problem_.table_id(nb)]) return;
      if (!ConsistentWithMerged(nb)) return;
      child->push_back(nb);
    });
    std::sort(child->begin(), child->end());
  }

  /// Extension set after including `v` into S (|S| ≥ 1), derived
  /// incrementally from the parent's set `ext` (the consistent join-graph
  /// extensions of S, ignoring exclusions). Correctness rests on
  /// monotonicity: merged codes only gain columns and used tables only grow
  /// as S grows, so
  ///   ext(S ∪ {v}) = {u ∈ ext(S) : table(u) ≠ table(v), u agrees with v's
  ///                   newly `flipped` columns}
  ///                ∪ {u ∈ N(v) \ ext(S) : full table + consistency check}.
  /// A neighbor of an earlier member that failed its check once can never
  /// pass later, so re-testing only v's neighbors loses nothing. This
  /// replaces the former per-node rescan of *every* member's posting lists
  /// (the superlinear term on hub-heavy join graphs) with O(|ext| · |flipped|
  /// + deg(v)). The final sort keeps exploration order — and therefore
  /// results — identical to the materialized-adjacency implementation.
  template <typename Vec>
  void ChildExtensions(const uint32_t* ext, size_t ext_size, uint32_t v,
                       const uint32_t* flipped, size_t num_flipped,
                       Vec* child) {
    const uint32_t v_table = problem_.table_id(v);
    ++s_.epoch;
    for (size_t i = 0; i < ext_size; ++i) {
      const uint32_t u = ext[i];
      if (s_.in_set[u]) continue;  // v itself (just included)
      s_.seen_stamp[u] = s_.epoch;
      if (problem_.table_id(u) == v_table) continue;
      const uint32_t* row = problem_.CodeRow(u);
      bool ok = true;
      for (size_t k = 0; k < num_flipped; ++k) {
        const uint32_t c = flipped[k];
        if (row[c] != FdProblem::kNullCode && row[c] != s_.merged[c]) {
          ok = false;
          break;
        }
      }
      if (ok) child->push_back(u);
    }
    problem_.ForEachCoPosted(v, [&](uint32_t nb) {
      if (s_.in_set[nb]) return;
      if (s_.seen_stamp[nb] == s_.epoch) return;
      s_.seen_stamp[nb] = s_.epoch;
      // One tuple per relation: a tuple whose table is already represented
      // can never extend S (neither now nor in any superset of S).
      if (s_.table_used[problem_.table_id(nb)]) return;
      if (!ConsistentWithMerged(nb)) return;
      child->push_back(nb);
    });
    std::sort(child->begin(), child->end());
  }

  void EmitResult() {
    FdCodeTuple t;
    t.codes = s_.merged;
    t.tids = members_;
    std::sort(t.tids.begin(), t.tids.end());
    if (segments_.empty() || segments_.back().path != ordinals_) {
      segments_.emplace_back();
      segments_.back().path = ordinals_;
    }
    segments_.back().tuples.push_back(std::move(t));
  }

  /// Adaptive grain gate (see SplitContext): is the measured per-task
  /// execution time still worth a split's measured overhead?
  bool GrainAllowsSplit() const {
    if (split_->overhead_multiple <= 0.0 || split_->done_tasks == nullptr) {
      return true;  // static gate
    }
    const uint64_t tasks =
        split_->done_tasks->load(std::memory_order_relaxed);
    if (tasks < split_->calibration_tasks) return true;
    const uint64_t busy =
        split_->done_busy_ns->load(std::memory_order_relaxed);
    const uint64_t replay =
        split_->done_replay_ns->load(std::memory_order_relaxed);
    // Mean busy ≥ multiple × mean overhead, compared as totals (same task
    // denominator on both sides, so no division).
    const double overhead =
        std::max(static_cast<double>(replay),
                 static_cast<double>(tasks) * kMinTaskOverheadNs);
    return static_cast<double>(busy) >= split_->overhead_multiple * overhead;
  }

  /// True when this node should hand its branches to the work queue
  /// instead of recursing: shallow enough to re-split, enough live
  /// branches, idle workers waiting, the global task cap not reached, and
  /// observed task grain coarse enough to pay for a split.
  bool ShouldSplit(const uint32_t* ext, size_t ext_size) {
    if (split_ == nullptr || members_.size() >= split_->max_depth) {
      return false;
    }
    if (split_->queued->load(std::memory_order_relaxed) >=
        split_->queue_low_water) {
      return false;
    }
    if (split_->spawned->load(std::memory_order_relaxed) >=
        split_->spawn_cap) {
      return false;
    }
    if (!GrainAllowsSplit()) return false;
    size_t live = 0;
    for (size_t i = 0; i < ext_size; ++i) {
      if (!s_.excluded[ext[i]] && ++live >= split_->min_ext) return true;
    }
    return false;
  }

  /// Splits the current node's branch list into range tasks — a few
  /// branches per worker rather than one task per branch, so the replay +
  /// queue bookkeeping amortizes over a whole chunk. Chunk k's exclusion
  /// set = every TID currently excluded here (snapshot of the log) plus the
  /// ext prefix before the chunk — exactly what the sequential loop would
  /// have accumulated on entry to its first branch; within the chunk the
  /// range loop grows exclusions normally.
  void SpawnChildren(const uint32_t* ext, size_t ext_size) {
    auto snapshot =
        std::make_shared<const std::vector<uint32_t>>(excluded_log_);
    auto shared_ext =
        std::make_shared<const std::vector<uint32_t>>(ext, ext + ext_size);
    std::shared_ptr<const ExcludeLink> base;
    if (!snapshot->empty()) {
      base = std::make_shared<const ExcludeLink>(
          ExcludeLink{nullptr, snapshot, snapshot->size()});
    }
    constexpr size_t kChunksPerWorker = 8;
    const size_t chunk = std::max<size_t>(
        1, ext_size / std::max<size_t>(1, split_->workers *
                                              kChunksPerWorker));
    uint64_t count = 0;
    for (size_t start = 0; start < ext_size; start += chunk) {
      const size_t end = std::min(ext_size, start + chunk);
      bool any_live = false;
      for (size_t i = start; i < end; ++i) {
        if (!s_.excluded[ext[i]]) {
          any_live = true;
          break;
        }
      }
      if (!any_live) continue;
      SubtreeTask child;
      child.ordinals = ordinals_;
      child.includes = members_;
      child.begin = static_cast<uint32_t>(start);
      child.end = static_cast<uint32_t>(end);
      child.excludes = std::make_shared<const ExcludeLink>(
          ExcludeLink{base, shared_ext, start});
      ++count;
      split_->spawn(std::move(child));
    }
    split_->spawned->fetch_add(count, std::memory_order_relaxed);
  }

  /// `ext` = consistent join-graph extensions of the current S, ignoring
  /// exclusions (the maximality test set), sorted ascending.
  Status Extend(const uint32_t* ext, size_t ext_size) {
    ++nodes_used_;
    if ((nodes_used_ & 0x3ff) == 0 || members_.empty()) {
      // Amortized budget check: draw down in blocks. The cancellation and
      // deadline checkpoints share the amortization so a live token (or a
      // set deadline) costs one poll per 1024 search nodes, not per node.
      if (ctx_ != nullptr) {
        LAKEFUZZ_RETURN_IF_ERROR(ctx_->CheckStop("full disjunction"));
      }
      if (budget_ != nullptr) {
        ++blocks_drawn_;
        if (budget_->fetch_sub(1024, std::memory_order_relaxed) <= 0) {
          return BudgetExhaustedError(ctx_);
        }
      }
    }
    if (ext_size == 0) {
      // S is ⊆-maximal among connected consistent sets: emit.
      EmitResult();
      return Status::OK();
    }
    bool any_candidate = false;
    for (size_t i = 0; i < ext_size; ++i) {
      if (!s_.excluded[ext[i]]) {
        any_candidate = true;
        break;
      }
    }
    if (!any_candidate) {
      // Extendable only by excluded tuples: every maximal superset contains
      // an excluded tuple and is enumerated in a sibling branch. Prune.
      return Status::OK();
    }
    if (ShouldSplit(ext, ext_size)) {
      SpawnChildren(ext, ext_size);
      return Status::OK();
    }
    return RunBranchRange(ext, ext_size, 0, ext_size);
  }

  /// The branch loop of one node, restricted to ext[begin, end): the unit
  /// both Extend (whole node) and spawned range tasks execute. S is
  /// identical across iterations (Include/Undo pairs), but the exclusion
  /// set grows — candidates excluded by earlier siblings (or on task
  /// entry) are skipped.
  ///
  /// Arena discipline: the node frame owns `locally_excluded`; each branch
  /// iteration opens its own frame for the flipped-column and child-ext
  /// temporaries and rewinds it before `locally_excluded` grows again, so
  /// the latter's buffer stays on top of the arena and push_back extends it
  /// in place (no dead copies pile up across siblings).
  Status RunBranchRange(const uint32_t* ext, size_t ext_size, size_t begin,
                        size_t end) {
    end = std::min(end, ext_size);
    const bool track_ordinals =
        split_ != nullptr && members_.size() < split_->max_depth;
    ArenaAllocator* a = arena();
    ArenaFrame node_frame(a);
    ArenaVector<uint32_t> locally_excluded(a);
    Status st = Status::OK();
    for (size_t i = begin; i < end; ++i) {
      const uint32_t v = ext[i];
      if (s_.excluded[v]) continue;
      if (track_ordinals) ordinals_.push_back(static_cast<uint32_t>(i));
      {
        ArenaFrame iter_frame(a);
        ArenaVector<uint32_t> flipped(a);
        Include(v, &flipped);
        ArenaVector<uint32_t> child(a);
        if (members_.size() == 1) {
          SeedExtensions(v, &child);
        } else {
          ChildExtensions(ext, ext_size, v, flipped.data(), flipped.size(),
                          &child);
        }
        st = Extend(child.data(), child.size());
        Undo(v, flipped.data(), flipped.size());
      }
      if (track_ordinals) ordinals_.pop_back();
      if (!st.ok()) break;
      SetExcluded(v);
      locally_excluded.push_back(v);
    }
    for (size_t k = locally_excluded.size(); k-- > 0;) {
      ClearExcluded(locally_excluded[k]);
    }
    return st;
  }

  const FdProblem& problem_;
  const std::vector<uint32_t>& component_;
  std::atomic<int64_t>* budget_;
  const RequestContext* ctx_;
  SplitContext* split_;
  FdScratch& s_;
  const size_t num_cols_;

  std::vector<uint32_t> members_;
  /// Branch-ordinal path from the component root to the current node,
  /// tracked only below the split depth bound (split mode only).
  std::vector<uint32_t> ordinals_;
  /// Every TID currently flagged excluded by this task, in set order
  /// (task-entry chain marks + live sibling exclusions). Split mode only.
  std::vector<uint32_t> excluded_log_;
  std::vector<ResultSegment> segments_;
  uint64_t nodes_used_ = 0;
  uint64_t blocks_drawn_ = 0;
  uint64_t replay_ns_ = 0;
};

/// Work queue + worker loops behind RunComponentCodesParallel. Tasks spawn
/// tasks; workers drain until nothing is queued or running. The first error
/// wins and flushes the queue.
class IntraComponentRunner {
 public:
  IntraComponentRunner(const FdProblem& problem,
                       const std::vector<uint32_t>& component,
                       const FdOptions& options, size_t workers,
                       std::atomic<int64_t>* budget,
                       const RequestContext* ctx)
      : problem_(problem),
        component_(component),
        budget_(budget),
        ctx_(ctx),
        workers_(workers) {
    split_template_.max_depth = std::max<size_t>(1, options.intra_split_depth);
    split_template_.min_ext = 2;
    split_template_.workers = workers;
    // With the adaptive gate measuring grain, the queue only needs enough
    // slack to keep workers fed; the wider 4× buffer is the legacy static
    // policy's only defense against starvation, so it stays when the gate
    // is disabled.
    split_template_.queue_low_water =
        options.intra_split_overhead_multiple > 0.0 ? workers * 2
                                                    : workers * 4;
    split_template_.queued = &queued_;
    split_template_.spawned = &spawned_;
    // Hard cap on total tasks: descriptor bookkeeping must stay a rounding
    // error next to enumeration even on adversarial fan-out.
    split_template_.spawn_cap = std::max<uint64_t>(4096, workers * 1024);
    split_template_.overhead_multiple = options.intra_split_overhead_multiple;
    // One round per worker plus one settles the measurement before the gate
    // starts trusting it.
    split_template_.calibration_tasks =
        std::max<uint64_t>(4, static_cast<uint64_t>(workers) * 2);
    split_template_.done_tasks = &done_tasks_;
    split_template_.done_busy_ns = &done_busy_ns_;
    split_template_.done_replay_ns = &done_replay_ns_;
  }

  Result<std::vector<FdCodeTuple>> Run(ThreadPool* pool,
                                       std::vector<FdScratch>* scratches,
                                       uint64_t* nodes_used,
                                       uint64_t* tasks_spawned,
                                       FdTaskProfile* profile) {
    Enqueue(SubtreeTask{});
    if (pool == nullptr || workers_ <= 1) {
      WorkerLoop(&(*scratches)[0]);
    } else {
      std::vector<std::future<void>> futures;
      futures.reserve(workers_);
      for (size_t w = 0; w < workers_; ++w) {
        FdScratch* scratch = &(*scratches)[w];
        futures.push_back(pool->Submit([this, scratch] {
          WorkerLoop(scratch);
        }));
      }
      for (auto& f : futures) f.get();
    }
    if (nodes_used != nullptr) *nodes_used += total_nodes_;
    if (tasks_spawned != nullptr) {
      *tasks_spawned += spawned_.load(std::memory_order_relaxed);
    }
    if (!first_error_.ok()) {
      if (profile != nullptr) profile->Merge(profile_);
      return first_error_;
    }

    // Deterministic merge: segments sorted by their bounded ordinal path
    // reproduce the sequential DFS emission order (ties are impossible —
    // each bounded path is owned by exactly one task). Only a compact index
    // array is sorted and only tuple ownership moves; no tuple bytes are
    // copied.
    const uint64_t merge_start = ThreadPool::NowNs();
    std::vector<uint32_t> order(segments_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
      return segments_[a].path < segments_[b].path;
    });
    std::vector<FdCodeTuple> out;
    size_t total = 0;
    for (const auto& seg : segments_) total += seg.tuples.size();
    out.reserve(total);
    for (uint32_t idx : order) {
      for (auto& t : segments_[idx].tuples) out.push_back(std::move(t));
    }
    profile_.merge_ns += ThreadPool::NowNs() - merge_start;
    if (profile != nullptr) profile->Merge(profile_);
    return out;
  }

 private:
  void Enqueue(SubtreeTask&& task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
      ++unfinished_;
    }
    queued_.fetch_add(1, std::memory_order_relaxed);
    cv_.notify_one();
  }

  void RecordError(const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_.ok()) first_error_ = status;
    // Flush pending work: queued tasks become no-ops so workers wind down
    // at task granularity instead of enumerating doomed subtrees.
    unfinished_ -= queue_.size();
    queue_.clear();
    queued_.store(0, std::memory_order_relaxed);
    cv_.notify_all();
  }

  void WorkerLoop(FdScratch* scratch) {
    SplitContext split = split_template_;
    split.spawn = [this](SubtreeTask&& t) { Enqueue(std::move(t)); };
    uint64_t wait_ns = 0;
    while (true) {
      SubtreeTask task;
      {
        const uint64_t wait_start = ThreadPool::NowNs();
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return !queue_.empty() || unfinished_ == 0; });
        wait_ns += ThreadPool::NowNs() - wait_start;
        if (queue_.empty()) {  // unfinished_ == 0: all work done
          profile_.wait_ns += wait_ns;
          return;
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      queued_.fetch_sub(1, std::memory_order_relaxed);

      Status st =
          ctx_ != nullptr ? ctx_->CheckStop("full disjunction") : Status::OK();
      if (st.ok() && budget_ != nullptr &&
          budget_->load(std::memory_order_relaxed) <= 0) {
        // Per-task budget gate: small subtrees rarely reach the in-tree
        // amortized check, so exhaustion is also enforced at task
        // granularity against the settled shared counter.
        st = BudgetExhaustedError(ctx_);
      }
#ifdef LAKEFUZZ_FAULT_POINTS
      // Task-spawn seam: a chaos-armed "fd/task" fault fails this task as a
      // real mid-enumeration error would (WorkerLoop returns void, so the
      // macro's return-propagation form cannot be used here).
      if (st.ok()) st = FaultInjector::Instance().Poke("fd/task");
#endif
      if (st.ok() && first_error_ok()) {
        // Tasks unwind every arena frame they open, but a Reset here makes
        // reuse unconditional: a task never inherits live bytes from a
        // predecessor on the same scratch.
        if (scratch->arena_enabled) scratch->arena.Reset();
        ScopedSpan task_span(ctx_ != nullptr ? ctx_->tracer : nullptr,
                             "fd_task",
                             ctx_ != nullptr ? ctx_->trace_parent : 0);
        const uint64_t task_start = ThreadPool::NowNs();
        ComponentEnumerator enumerator(problem_, component_, budget_, scratch,
                                       ctx_, &split);
        auto result = enumerator.EnumerateTask(task);
        const uint64_t busy = ThreadPool::NowNs() - task_start;
        const uint64_t nodes = enumerator.nodes_used();
        task_span.AddAttr("nodes", static_cast<int64_t>(nodes));
        task_span.End();
        total_nodes_.fetch_add(nodes, std::memory_order_relaxed);
        // The grain gate reads these lock-free from inside enumerations;
        // exactness doesn't matter there, ordering even less.
        done_busy_ns_.fetch_add(busy, std::memory_order_relaxed);
        done_replay_ns_.fetch_add(enumerator.replay_ns(),
                                  std::memory_order_relaxed);
        done_tasks_.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(mu_);
          profile_.AddTask(nodes, busy, enumerator.replay_ns());
          if (result.ok()) {
            for (auto& seg : *result) {
              if (!seg.tuples.empty()) segments_.push_back(std::move(seg));
            }
          }
        }
        if (!result.ok()) st = result.status();
      }
      if (!st.ok()) RecordError(st);

      bool done = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        done = --unfinished_ == 0;
      }
      if (done) cv_.notify_all();
    }
  }

  bool first_error_ok() {
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_.ok();
  }

  const FdProblem& problem_;
  const std::vector<uint32_t>& component_;
  std::atomic<int64_t>* budget_;
  const RequestContext* ctx_;
  const size_t workers_;
  SplitContext split_template_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<SubtreeTask> queue_;
  size_t unfinished_ = 0;
  Status first_error_ = Status::OK();
  std::vector<ResultSegment> segments_;
  FdTaskProfile profile_;  ///< guarded by mu_
  std::atomic<size_t> queued_{0};
  std::atomic<uint64_t> spawned_{0};
  std::atomic<uint64_t> total_nodes_{0};
  std::atomic<uint64_t> done_tasks_{0};
  std::atomic<uint64_t> done_busy_ns_{0};
  std::atomic<uint64_t> done_replay_ns_{0};
};

}  // namespace

Result<std::vector<FdCodeTuple>> FullDisjunction::RunComponentCodes(
    const FdProblem& problem, const std::vector<uint32_t>& component,
    std::atomic<int64_t>* budget, uint64_t* nodes_used, FdScratch* scratch,
    const RequestContext* ctx) {
  ComponentEnumerator enumerator(problem, component, budget, scratch, ctx);
  auto result = enumerator.Enumerate();
  if (nodes_used != nullptr) *nodes_used = enumerator.nodes_used();
  return result;
}

Result<std::vector<FdCodeTuple>> FullDisjunction::RunComponentCodesParallel(
    const FdProblem& problem, const std::vector<uint32_t>& component,
    const FdOptions& options, ThreadPool* pool, size_t workers,
    std::vector<FdScratch>* scratches, std::atomic<int64_t>* budget,
    uint64_t* nodes_used, uint64_t* tasks_spawned, const RequestContext* ctx,
    FdTaskProfile* profile) {
  workers = std::max<size_t>(1, std::min(workers, scratches->size()));
  IntraComponentRunner runner(problem, component, options, workers, budget,
                              ctx);
  return runner.Run(pool, scratches, nodes_used, tasks_spawned, profile);
}

Result<std::vector<FdResultTuple>> FullDisjunction::RunComponent(
    const FdProblem& problem, const std::vector<uint32_t>& component,
    std::atomic<int64_t>* budget, uint64_t* nodes_used) {
  FdScratch scratch(problem);
  LAKEFUZZ_ASSIGN_OR_RETURN(
      std::vector<FdCodeTuple> codes,
      RunComponentCodes(problem, component, budget, nodes_used, &scratch));
  std::vector<FdResultTuple> out;
  out.reserve(codes.size());
  for (const auto& t : codes) out.push_back(DecodeCodeTuple(t, problem.dict()));
  return out;
}

Result<std::vector<FdCodeTuple>> FullDisjunction::RunCodes(
    FdProblem* problem, FdStats* stats, const RequestContext& ctx,
    const ProgressFn& progress) const {
  ScopedSpan index_span(ctx, "fd_index");
  Stopwatch index_watch;
  problem->BuildIndex();
  index_span.AddAttr("distinct_values",
                     static_cast<int64_t>(problem->index_stats().distinct_values));
  index_span.End();
  stats->index_seconds = index_watch.ElapsedSeconds();
  stats->num_input_tuples = problem->num_tuples();
  stats->num_components = problem->Components().size();
  stats->distinct_values = problem->index_stats().distinct_values;
  stats->posting_lists = problem->index_stats().posting_lists;
  stats->posting_entries = problem->index_stats().posting_entries;
  stats->value_copies = problem->index_stats().value_copies;

  ReportProgress(progress, Stage::kFdEnumerate, 0, 1);
  ScopedSpan enum_span(ctx, "fd_enumerate");
  const RequestContext enum_ctx = ctx.WithSpan(enum_span.id());
  Stopwatch enum_watch;
  int64_t node_cap = static_cast<int64_t>(options_.max_search_nodes);
  if (ctx.budget.max_fd_nodes > 0) {
    node_cap =
        std::min(node_cap, static_cast<int64_t>(ctx.budget.max_fd_nodes));
  }
  std::atomic<int64_t> budget{node_cap};
  FdScratch scratch(*problem);
  scratch.arena_enabled = options_.scratch_arena;
  std::vector<FdCodeTuple> code_tuples;
  const auto& components = problem->Components();
  Status stop = Status::OK();
  size_t completed = 0;
  for (const auto& comp : components) {
    stop = ctx.CheckStop("full disjunction");
    if (stop.ok() && ctx.budget.max_scratch_bytes > 0 &&
        scratch.arena.bytes_reserved() > ctx.budget.max_scratch_bytes) {
      stop = Status::ResourceExhausted(
          "full disjunction scratch budget exhausted "
          "(ResourceBudget::max_scratch_bytes)");
    }
    if (!stop.ok()) break;
    stats->largest_component =
        std::max(stats->largest_component, comp.size());
    ScopedSpan comp_span(
        comp.size() >= kComponentSpanMinTuples ? enum_ctx.tracer : nullptr,
        "fd_component", enum_ctx.trace_parent);
    uint64_t nodes = 0;
    auto tuples = RunComponentCodes(*problem, comp, &budget, &nodes, &scratch,
                                    &enum_ctx);
    comp_span.AddAttr("tuples", static_cast<int64_t>(comp.size()));
    comp_span.AddAttr("nodes", static_cast<int64_t>(nodes));
    stats->search_nodes += nodes;
    if (!tuples.ok()) {
      stop = tuples.status();
      break;
    }
    for (auto& t : *tuples) code_tuples.push_back(std::move(t));
    ++completed;
  }
  enum_span.AddAttr("components", static_cast<int64_t>(components.size()));
  enum_span.AddAttr("search_nodes",
                    static_cast<int64_t>(stats->search_nodes));
  enum_span.End();
  stats->enumeration_seconds = enum_watch.ElapsedSeconds();
  stats->arena_bytes_reserved = scratch.arena.bytes_reserved();
  stats->arena_peak_bytes = scratch.arena.peak_bytes();
  stats->peak_rss_bytes = PeakRssBytes();
  if (!stop.ok()) {
    // Under kTruncate a deadline/budget stop keeps the components that
    // completed (mid-component partials are discarded; an FD component is
    // all-or-nothing). Cancellation always fails the request.
    if (!ctx.ShouldTruncate(stop.code())) return stop;
    stats->truncation.truncated = true;
    stats->truncation.stage = Stage::kFdEnumerate;
    stats->truncation.reason = stop.message();
    stats->truncation.components_completed = completed;
    stats->truncation.components_skipped = components.size() - completed;
  }
  stats->results_before_subsumption = code_tuples.size();
  ReportProgress(progress, Stage::kFdEnumerate, 1, 1);

  // Subsuming an already-truncated partial result is cleanup: it must keep
  // honoring cancellation but not be re-aborted by the expired deadline
  // that caused the truncation.
  const RequestContext subsume_ctx =
      stats->truncation.truncated ? ctx.CancelOnly() : ctx;
  LAKEFUZZ_RETURN_IF_ERROR(subsume_ctx.CheckStop("full disjunction"));
  ReportProgress(progress, Stage::kFdSubsume, 0, 1);
  ScopedSpan subsume_span(subsume_ctx, "fd_subsume");
  subsume_span.AddAttr("input_tuples",
                       static_cast<int64_t>(code_tuples.size()));
  Stopwatch subsume_watch;
  LAKEFUZZ_ASSIGN_OR_RETURN(
      code_tuples,
      EliminateSubsumedCodes(std::move(code_tuples), nullptr, &subsume_ctx));
  subsume_span.AddAttr("results", static_cast<int64_t>(code_tuples.size()));
  subsume_span.End();
  stats->subsumption_seconds = subsume_watch.ElapsedSeconds();
  stats->results = code_tuples.size();
  if (stats->truncation.truncated) {
    stats->truncation.tuples_emitted = code_tuples.size();
  }
  ReportProgress(progress, Stage::kFdSubsume, 1, 1);
  return code_tuples;
}

Result<FdResult> FullDisjunction::Run(FdProblem* problem) const {
  FdResult out;
  LAKEFUZZ_ASSIGN_OR_RETURN(std::vector<FdCodeTuple> code_tuples,
                            RunCodes(problem, &out.stats));
  // Decode wall time stays folded into subsumption_seconds, as before the
  // RunCodes split.
  Stopwatch decode_watch;
  out.tuples.reserve(code_tuples.size());
  for (const auto& t : code_tuples) {
    out.tuples.push_back(DecodeCodeTuple(t, problem->dict()));
  }
  out.stats.subsumption_seconds += decode_watch.ElapsedSeconds();
  return out;
}

Result<Table> FullDisjunction::RunToTable(const std::vector<Table>& tables,
                                          const AlignedSchema& aligned,
                                          bool include_provenance) const {
  LAKEFUZZ_ASSIGN_OR_RETURN(FdProblem problem,
                            FdProblem::Build(tables, aligned));
  LAKEFUZZ_ASSIGN_OR_RETURN(FdResult result, Run(&problem));
  return FdResultsToTable(result.tuples, problem.column_names(),
                          "full_disjunction", include_provenance);
}

}  // namespace lakefuzz
