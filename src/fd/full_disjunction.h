// Full Disjunction: the associative information-preserving integration
// operator (Galindo-Legaria 1994; Rajaraman & Ullman 1996).
//
// Semantics implemented (Cohen et al., VLDB 2006 characterization):
//   FD(T1..Tn) = subsumption-free set of joins of all *connected,
//   join-consistent* sets of input tuples over the aligned universal schema.
//
//   join-consistent: every pair of tuples in the set agrees on every column
//     where both are non-null;
//   connected: the graph linking tuples that share an equal non-null value
//     on some column is connected over the set.
//
// Algorithm: per join-graph component, branch-and-exclude enumeration of the
// ⊆-maximal connected join-consistent sets (each set found exactly once; the
// exclusion set prunes subtrees whose maximal supersets were already
// covered), with a column-wise fast path for fully-consistent components.
// Joins of non-maximal sets are subsumed by construction, so only maximal
// sets are materialized before the final subsumption pass.
//
// Equivalence with the textbook all-outer-join-orders definition is
// property-tested against fd/oracle.h on randomized inputs.
#ifndef LAKEFUZZ_FD_FULL_DISJUNCTION_H_
#define LAKEFUZZ_FD_FULL_DISJUNCTION_H_

#include <atomic>
#include <cstdint>

#include "fd/fd_tuple.h"
#include "fd/problem.h"
#include "fd/subsumption.h"
#include "util/result.h"

namespace lakefuzz {

struct FdOptions {
  /// Upper bound on enumeration nodes across the whole run; exceeded →
  /// FailedPrecondition (the instance is adversarially entangled).
  uint64_t max_search_nodes = 200'000'000;
};

/// Run diagnostics (reported by benchmarks).
struct FdStats {
  size_t num_input_tuples = 0;
  size_t num_components = 0;
  size_t largest_component = 0;
  uint64_t search_nodes = 0;
  size_t results_before_subsumption = 0;
  size_t results = 0;
};

struct FdResult {
  std::vector<FdResultTuple> tuples;  ///< sorted by FdTupleLess
  FdStats stats;
};

/// Sequential Full Disjunction executor.
class FullDisjunction {
 public:
  explicit FullDisjunction(FdOptions options = FdOptions())
      : options_(options) {}

  /// Computes FD over a prepared problem (builds its index if needed).
  Result<FdResult> Run(FdProblem* problem) const;

  /// Convenience: outer-union + FD + table materialization.
  Result<Table> RunToTable(const std::vector<Table>& tables,
                           const AlignedSchema& aligned,
                           bool include_provenance = false) const;

  /// Enumerates the joins of maximal connected consistent sets within one
  /// component (no subsumption). `budget` is decremented per search node;
  /// reaching zero aborts with FailedPrecondition. Exposed for the parallel
  /// executor and for tests.
  static Result<std::vector<FdResultTuple>> RunComponent(
      const FdProblem& problem, const std::vector<uint32_t>& component,
      std::atomic<int64_t>* budget, uint64_t* nodes_used);

 private:
  FdOptions options_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_FULL_DISJUNCTION_H_
