// Full Disjunction: the associative information-preserving integration
// operator (Galindo-Legaria 1994; Rajaraman & Ullman 1996).
//
// Semantics implemented (Cohen et al., VLDB 2006 characterization):
//   FD(T1..Tn) = subsumption-free set of joins of all *connected,
//   join-consistent* sets of input tuples over the aligned universal schema.
//
//   join-consistent: every pair of tuples in the set agrees on every column
//     where both are non-null;
//   connected: the graph linking tuples that share an equal non-null value
//     on some column is connected over the set.
//
// Algorithm: per join-graph component, branch-and-exclude enumeration of the
// ⊆-maximal connected join-consistent sets (each set found exactly once; the
// exclusion set prunes subtrees whose maximal supersets were already
// covered), with a column-wise fast path for fully-consistent components.
// Joins of non-maximal sets are subsumed by construction, so only maximal
// sets are materialized before the final subsumption pass.
//
// The whole pipeline runs on dictionary-encoded tuples: FdProblem interns
// every cell into a uint32 code, the enumerator merges and compares flat
// integer rows, candidates stream from the CSR posting-list join graph, and
// subsumption operates on code rows too. Values are decoded exactly once,
// when the final FdResult is materialized.
//
// Equivalence with the textbook all-outer-join-orders definition is
// property-tested against fd/oracle.h on randomized inputs.
#ifndef LAKEFUZZ_FD_FULL_DISJUNCTION_H_
#define LAKEFUZZ_FD_FULL_DISJUNCTION_H_

#include <atomic>
#include <cstdint>

#include "fd/fd_tuple.h"
#include "fd/problem.h"
#include "fd/subsumption.h"
#include "util/arena.h"
#include "util/request_context.h"
#include "util/result.h"

namespace lakefuzz {

class ThreadPool;

struct FdOptions {
  /// Upper bound on enumeration nodes across the whole run; exceeded →
  /// FailedPrecondition (the instance is adversarially entangled). A
  /// request-scoped ResourceBudget::max_fd_nodes tightens this per request
  /// and surfaces kResourceExhausted instead.
  uint64_t max_search_nodes = 200'000'000;
  /// Worker cap for *intra*-component parallelism (parallel executor only):
  /// a component of at least `intra_component_min_size` tuples has its
  /// branch-and-exclude tree split into independent subtree tasks — one per
  /// top-level branch (root tuple + its exclude prefix) — run on the
  /// executor pool with depth-bounded re-splitting for skew. Output is
  /// byte-identical at every setting. 0 = all pool workers, 1 = disable
  /// splitting (components enumerate serially, as before PR 4).
  size_t intra_component_threads = 0;
  /// Components smaller than this enumerate serially on one worker (task
  /// bookkeeping would cost more than it buys).
  size_t intra_component_min_size = 256;
  /// Subtree tasks re-split while their root depth is below this bound, so
  /// one dominant branch fans out again instead of serializing a worker.
  size_t intra_split_depth = 3;
  /// Adaptive intra-split gate: after a calibration round of tasks, a node
  /// re-splits only while the observed per-task grain (mean task execution
  /// time, from the stats of already-finished splits) exceeds this multiple
  /// of the measured per-task split overhead (include-path replay + queue
  /// bookkeeping). Small problems therefore stop fanning out once the first
  /// round proves tasks are overhead-bound, while giant components keep
  /// splitting deep. 0 restores the static PR 4 gate (queue low-water
  /// only). Output is byte-identical at every setting.
  double intra_split_overhead_multiple = 8.0;
  /// Back each worker's enumeration temporaries (extension sets, flipped-
  /// column lists) with a per-scratch bump arena instead of heap
  /// malloc/free per search node. Purely an allocator swap: output is
  /// byte-identical on or off (tests/fd_intra_test.cc asserts it).
  bool scratch_arena = true;
};

/// Aggregated execution profile of the intra-component subtree tasks of one
/// parallel FD run — the task-grain evidence the bench artifacts record so
/// "the parallel path doesn't pay" is diagnosable from committed JSON
/// instead of guessed at. All counters cover split-path tasks only.
struct FdTaskProfile {
  uint64_t tasks = 0;         ///< subtree tasks executed
  uint64_t nodes_min = 0;     ///< fewest enumeration nodes in one task
  uint64_t nodes_max = 0;     ///< most enumeration nodes in one task
  uint64_t nodes_sum = 0;     ///< Σ nodes across tasks
  uint64_t busy_ns = 0;       ///< Σ task execution time (replay + search)
  uint64_t replay_ns = 0;     ///< Σ include-path replay time (split cost)
  uint64_t wait_ns = 0;       ///< Σ worker dequeue-wait time
  uint64_t merge_ns = 0;      ///< deterministic segment-merge time

  void AddTask(uint64_t nodes, uint64_t busy, uint64_t replay) {
    if (tasks == 0 || nodes < nodes_min) nodes_min = nodes;
    if (nodes > nodes_max) nodes_max = nodes;
    nodes_sum += nodes;
    busy_ns += busy;
    replay_ns += replay;
    ++tasks;
  }

  /// Folds another profile in (per-component profiles → run totals).
  void Merge(const FdTaskProfile& o) {
    if (o.tasks > 0) {
      if (tasks == 0 || o.nodes_min < nodes_min) nodes_min = o.nodes_min;
      if (o.nodes_max > nodes_max) nodes_max = o.nodes_max;
    }
    tasks += o.tasks;
    nodes_sum += o.nodes_sum;
    busy_ns += o.busy_ns;
    replay_ns += o.replay_ns;
    wait_ns += o.wait_ns;
    merge_ns += o.merge_ns;
  }
};

/// Run diagnostics (reported by benchmarks).
struct FdStats {
  size_t num_input_tuples = 0;
  size_t num_components = 0;
  size_t largest_component = 0;
  uint64_t search_nodes = 0;
  /// Subtree tasks spawned by intra-component splitting (0 when every
  /// component ran serially). Scheduling-dependent; results never are.
  uint64_t intra_tasks = 0;
  size_t results_before_subsumption = 0;
  size_t results = 0;
  /// Interned-core counters: dictionary size and CSR join-graph extent.
  size_t distinct_values = 0;
  size_t posting_lists = 0;
  size_t posting_entries = 0;
  /// Value copies paid building the problem (see FdIndexStats::value_copies;
  /// near zero on the BuildInterned path with a warm session dictionary).
  size_t value_copies = 0;
  /// Stage wall times: BuildIndex (dictionary + CSR + components),
  /// per-component enumeration, and subsumption + decode.
  double index_seconds = 0.0;
  double enumeration_seconds = 0.0;
  double subsumption_seconds = 0.0;
  /// Time flattening per-component / per-segment results into the final
  /// tuple order (the deterministic merge). Part of enumeration_seconds.
  double merge_seconds = 0.0;
  /// Intra-component task-grain profile (see FdTaskProfile; all zero when
  /// no component took the split path).
  FdTaskProfile task_profile;
  /// Pool-level execution deltas over this run (parallel executor only).
  /// On a shared session pool these include any concurrent work the pool
  /// ran in the window. busy ≪ workers × wall time with queued work is the
  /// core-starved signature.
  uint64_t pool_tasks = 0;
  double pool_busy_seconds = 0.0;
  double pool_wait_seconds = 0.0;
  /// Scratch-arena footprint across all worker lanes (0 when
  /// FdOptions::scratch_arena is off).
  size_t arena_bytes_reserved = 0;
  size_t arena_peak_bytes = 0;
  /// Process-wide peak RSS (getrusage high-water mark) sampled when this
  /// run finalized. Monotonic across a process: comparing it before/after a
  /// workload bounds that workload's true memory cost, arena or not.
  size_t peak_rss_bytes = 0;
  /// Degradation report: set when a deadline/budget stop under
  /// BudgetPolicy::kTruncate cut the run short (completed components were
  /// kept, the rest skipped). truncated == false means a complete result.
  Truncation truncation;
};

struct FdResult {
  std::vector<FdResultTuple> tuples;  ///< sorted by FdTupleLess
  FdStats stats;
};

/// Reusable per-worker enumeration state. Allocating and zeroing these
/// O(num_tuples) arrays per component was an O(n · num_components) hidden
/// cost; a scratch is allocated once per worker and stays clean between
/// components (epoch stamps for the seen set; Include/Undo pairing restores
/// every flag it sets).
struct FdScratch {
  explicit FdScratch(const FdProblem& problem)
      : merged(problem.num_columns(), FdProblem::kNullCode),
        in_set(problem.num_tuples(), 0),
        excluded(problem.num_tuples(), 0),
        seen_stamp(problem.num_tuples(), 0),
        table_used(problem.num_tables(), 0) {}

  std::vector<uint32_t> merged;  ///< current join, as dictionary codes
  std::vector<char> in_set;
  std::vector<char> excluded;
  std::vector<uint64_t> seen_stamp;
  std::vector<char> table_used;
  uint64_t epoch = 0;
  /// Per-worker bump arena for the enumerator's per-node temporaries
  /// (extension sets, flipped-column lists): scope-framed alloc/rewind
  /// instead of one malloc/free pair per search node. Executors set
  /// `arena_enabled` from FdOptions::scratch_arena before enumerating;
  /// off = identical code path on heap allocations.
  ArenaAllocator arena;
  bool arena_enabled = true;
};

/// Sequential Full Disjunction executor.
class FullDisjunction {
 public:
  explicit FullDisjunction(FdOptions options = FdOptions())
      : options_(options) {}

  /// Computes FD over a prepared problem (builds its index if needed).
  Result<FdResult> Run(FdProblem* problem) const;

  /// The decode-free core of Run: post-subsumption interned result rows in
  /// final (TID-sorted) order. Fills `stats` (results counts the surviving
  /// code tuples; decode wall time is the caller's). `ctx` is polled per
  /// component and inside the enumerator's amortized budget check: a fired
  /// token returns Status::Cancelled, an expired deadline
  /// Status::DeadlineExceeded, an exhausted ResourceBudget
  /// Status::ResourceExhausted — or, under BudgetPolicy::kTruncate, the
  /// deadline/budget stop keeps the components completed so far and records
  /// the cut in stats->truncation. `progress` receives
  /// kFdEnumerate/kFdSubsume boundary events ((0,1) entry, (1,1)
  /// completion). Streaming consumers (LakeEngine row sinks) decode these
  /// in batches instead of materializing the full FdResult.
  Result<std::vector<FdCodeTuple>> RunCodes(
      FdProblem* problem, FdStats* stats,
      const RequestContext& ctx = RequestContext(),
      const ProgressFn& progress = ProgressFn()) const;

  /// Convenience: outer-union + FD + table materialization.
  Result<Table> RunToTable(const std::vector<Table>& tables,
                           const AlignedSchema& aligned,
                           bool include_provenance = false) const;

  /// Enumerates the joins of maximal connected consistent sets within one
  /// component (no subsumption), as interned code tuples. `budget` is
  /// decremented per search node; reaching zero aborts with
  /// FailedPrecondition (or kResourceExhausted when the bound came from
  /// `ctx`'s ResourceBudget). `scratch` must come from the same problem and
  /// is reused across calls — the executors keep one per worker. When `ctx`
  /// is non-null it is polled alongside the budget; a fired token aborts
  /// with Status::Cancelled, an expired deadline with
  /// Status::DeadlineExceeded.
  static Result<std::vector<FdCodeTuple>> RunComponentCodes(
      const FdProblem& problem, const std::vector<uint32_t>& component,
      std::atomic<int64_t>* budget, uint64_t* nodes_used, FdScratch* scratch,
      const RequestContext* ctx = nullptr);

  /// Intra-component parallel twin of RunComponentCodes: the component's
  /// branch-and-exclude tree is split into independent subtree tasks (one
  /// per top-level branch; depth-bounded re-splitting under skew, see
  /// FdOptions::intra_split_depth) executed by `workers` loops on `pool`
  /// via a shared work queue. Results merge in deterministic branch order,
  /// so output is byte-identical to RunComponentCodes at any worker count
  /// and schedule. `scratches` supplies one FdScratch per worker (size >=
  /// workers, same problem). When `pool` is null the whole tree runs inline
  /// on scratches[0]. Node totals are added to *nodes_used, spawned-task
  /// counts to *tasks_spawned, and when `profile` is non-null the per-task
  /// grain/timing counters are accumulated into it.
  static Result<std::vector<FdCodeTuple>> RunComponentCodesParallel(
      const FdProblem& problem, const std::vector<uint32_t>& component,
      const FdOptions& options, ThreadPool* pool, size_t workers,
      std::vector<FdScratch>* scratches, std::atomic<int64_t>* budget,
      uint64_t* nodes_used, uint64_t* tasks_spawned,
      const RequestContext* ctx = nullptr, FdTaskProfile* profile = nullptr);

  /// Decoded convenience wrapper around RunComponentCodes (tests).
  static Result<std::vector<FdResultTuple>> RunComponent(
      const FdProblem& problem, const std::vector<uint32_t>& component,
      std::atomic<int64_t>* budget, uint64_t* nodes_used);

 private:
  FdOptions options_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_FULL_DISJUNCTION_H_
