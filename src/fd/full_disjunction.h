// Full Disjunction: the associative information-preserving integration
// operator (Galindo-Legaria 1994; Rajaraman & Ullman 1996).
//
// Semantics implemented (Cohen et al., VLDB 2006 characterization):
//   FD(T1..Tn) = subsumption-free set of joins of all *connected,
//   join-consistent* sets of input tuples over the aligned universal schema.
//
//   join-consistent: every pair of tuples in the set agrees on every column
//     where both are non-null;
//   connected: the graph linking tuples that share an equal non-null value
//     on some column is connected over the set.
//
// Algorithm: per join-graph component, branch-and-exclude enumeration of the
// ⊆-maximal connected join-consistent sets (each set found exactly once; the
// exclusion set prunes subtrees whose maximal supersets were already
// covered), with a column-wise fast path for fully-consistent components.
// Joins of non-maximal sets are subsumed by construction, so only maximal
// sets are materialized before the final subsumption pass.
//
// The whole pipeline runs on dictionary-encoded tuples: FdProblem interns
// every cell into a uint32 code, the enumerator merges and compares flat
// integer rows, candidates stream from the CSR posting-list join graph, and
// subsumption operates on code rows too. Values are decoded exactly once,
// when the final FdResult is materialized.
//
// Equivalence with the textbook all-outer-join-orders definition is
// property-tested against fd/oracle.h on randomized inputs.
#ifndef LAKEFUZZ_FD_FULL_DISJUNCTION_H_
#define LAKEFUZZ_FD_FULL_DISJUNCTION_H_

#include <atomic>
#include <cstdint>

#include "fd/fd_tuple.h"
#include "fd/problem.h"
#include "fd/subsumption.h"
#include "util/cancellation.h"
#include "util/result.h"

namespace lakefuzz {

class ThreadPool;

struct FdOptions {
  /// Upper bound on enumeration nodes across the whole run; exceeded →
  /// FailedPrecondition (the instance is adversarially entangled).
  uint64_t max_search_nodes = 200'000'000;
  /// Worker cap for *intra*-component parallelism (parallel executor only):
  /// a component of at least `intra_component_min_size` tuples has its
  /// branch-and-exclude tree split into independent subtree tasks — one per
  /// top-level branch (root tuple + its exclude prefix) — run on the
  /// executor pool with depth-bounded re-splitting for skew. Output is
  /// byte-identical at every setting. 0 = all pool workers, 1 = disable
  /// splitting (components enumerate serially, as before PR 4).
  size_t intra_component_threads = 0;
  /// Components smaller than this enumerate serially on one worker (task
  /// bookkeeping would cost more than it buys).
  size_t intra_component_min_size = 256;
  /// Subtree tasks re-split while their root depth is below this bound, so
  /// one dominant branch fans out again instead of serializing a worker.
  size_t intra_split_depth = 3;
};

/// Run diagnostics (reported by benchmarks).
struct FdStats {
  size_t num_input_tuples = 0;
  size_t num_components = 0;
  size_t largest_component = 0;
  uint64_t search_nodes = 0;
  /// Subtree tasks spawned by intra-component splitting (0 when every
  /// component ran serially). Scheduling-dependent; results never are.
  uint64_t intra_tasks = 0;
  size_t results_before_subsumption = 0;
  size_t results = 0;
  /// Interned-core counters: dictionary size and CSR join-graph extent.
  size_t distinct_values = 0;
  size_t posting_lists = 0;
  size_t posting_entries = 0;
  /// Value copies paid building the problem (see FdIndexStats::value_copies;
  /// near zero on the BuildInterned path with a warm session dictionary).
  size_t value_copies = 0;
  /// Stage wall times: BuildIndex (dictionary + CSR + components),
  /// per-component enumeration, and subsumption + decode.
  double index_seconds = 0.0;
  double enumeration_seconds = 0.0;
  double subsumption_seconds = 0.0;
};

struct FdResult {
  std::vector<FdResultTuple> tuples;  ///< sorted by FdTupleLess
  FdStats stats;
};

/// Reusable per-worker enumeration state. Allocating and zeroing these
/// O(num_tuples) arrays per component was an O(n · num_components) hidden
/// cost; a scratch is allocated once per worker and stays clean between
/// components (epoch stamps for the seen set; Include/Undo pairing restores
/// every flag it sets).
struct FdScratch {
  explicit FdScratch(const FdProblem& problem)
      : merged(problem.num_columns(), FdProblem::kNullCode),
        in_set(problem.num_tuples(), 0),
        excluded(problem.num_tuples(), 0),
        seen_stamp(problem.num_tuples(), 0),
        table_used(problem.num_tables(), 0) {}

  std::vector<uint32_t> merged;  ///< current join, as dictionary codes
  std::vector<char> in_set;
  std::vector<char> excluded;
  std::vector<uint64_t> seen_stamp;
  std::vector<char> table_used;
  uint64_t epoch = 0;
};

/// Sequential Full Disjunction executor.
class FullDisjunction {
 public:
  explicit FullDisjunction(FdOptions options = FdOptions())
      : options_(options) {}

  /// Computes FD over a prepared problem (builds its index if needed).
  Result<FdResult> Run(FdProblem* problem) const;

  /// The decode-free core of Run: post-subsumption interned result rows in
  /// final (TID-sorted) order. Fills `stats` (results counts the surviving
  /// code tuples; decode wall time is the caller's). `cancel` is polled per
  /// component and inside the enumerator's amortized budget check; a fired
  /// token returns Status::Cancelled. `progress` receives
  /// kFdEnumerate/kFdSubsume boundary events ((0,1) entry, (1,1)
  /// completion). Streaming consumers (LakeEngine row sinks) decode these
  /// in batches instead of materializing the full FdResult.
  Result<std::vector<FdCodeTuple>> RunCodes(
      FdProblem* problem, FdStats* stats,
      const CancelToken& cancel = CancelToken(),
      const ProgressFn& progress = ProgressFn()) const;

  /// Convenience: outer-union + FD + table materialization.
  Result<Table> RunToTable(const std::vector<Table>& tables,
                           const AlignedSchema& aligned,
                           bool include_provenance = false) const;

  /// Enumerates the joins of maximal connected consistent sets within one
  /// component (no subsumption), as interned code tuples. `budget` is
  /// decremented per search node; reaching zero aborts with
  /// FailedPrecondition. `scratch` must come from the same problem and is
  /// reused across calls — the executors keep one per worker. When `cancel`
  /// is non-null it is polled alongside the budget; a fired token aborts
  /// with Status::Cancelled.
  static Result<std::vector<FdCodeTuple>> RunComponentCodes(
      const FdProblem& problem, const std::vector<uint32_t>& component,
      std::atomic<int64_t>* budget, uint64_t* nodes_used, FdScratch* scratch,
      const CancelToken* cancel = nullptr);

  /// Intra-component parallel twin of RunComponentCodes: the component's
  /// branch-and-exclude tree is split into independent subtree tasks (one
  /// per top-level branch; depth-bounded re-splitting under skew, see
  /// FdOptions::intra_split_depth) executed by `workers` loops on `pool`
  /// via a shared work queue. Results merge in deterministic branch order,
  /// so output is byte-identical to RunComponentCodes at any worker count
  /// and schedule. `scratches` supplies one FdScratch per worker (size >=
  /// workers, same problem). When `pool` is null the whole tree runs inline
  /// on scratches[0]. Node totals are added to *nodes_used, spawned-task
  /// counts to *tasks_spawned.
  static Result<std::vector<FdCodeTuple>> RunComponentCodesParallel(
      const FdProblem& problem, const std::vector<uint32_t>& component,
      const FdOptions& options, ThreadPool* pool, size_t workers,
      std::vector<FdScratch>* scratches, std::atomic<int64_t>* budget,
      uint64_t* nodes_used, uint64_t* tasks_spawned,
      const CancelToken* cancel = nullptr);

  /// Decoded convenience wrapper around RunComponentCodes (tests).
  static Result<std::vector<FdResultTuple>> RunComponent(
      const FdProblem& problem, const std::vector<uint32_t>& component,
      std::atomic<int64_t>* budget, uint64_t* nodes_used);

 private:
  FdOptions options_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_FULL_DISJUNCTION_H_
