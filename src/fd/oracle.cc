#include "fd/oracle.h"

#include <algorithm>

#include "util/str.h"

namespace lakefuzz {
namespace {

/// Join-consistency of a subset: every column has at most one distinct
/// non-null value. Fills `merged` on success.
bool SubsetConsistent(const FdProblem& problem,
                      const std::vector<uint32_t>& subset,
                      std::vector<Value>* merged) {
  merged->assign(problem.num_columns(), Value::Null());
  for (uint32_t tid : subset) {
    const auto& vals = problem.tuples()[tid].values;
    for (size_t c = 0; c < problem.num_columns(); ++c) {
      if (vals[c].is_null()) continue;
      if ((*merged)[c].is_null()) {
        (*merged)[c] = vals[c];
      } else if (!((*merged)[c] == vals[c])) {
        return false;
      }
    }
  }
  return true;
}

/// Connectivity of a subset under "shares an equal non-null value".
bool SubsetConnected(const FdProblem& problem,
                     const std::vector<uint32_t>& subset) {
  if (subset.size() <= 1) return true;
  auto share_value = [&](uint32_t a, uint32_t b) {
    const auto& va = problem.tuples()[a].values;
    const auto& vb = problem.tuples()[b].values;
    for (size_t c = 0; c < problem.num_columns(); ++c) {
      if (!va[c].is_null() && !vb[c].is_null() && va[c] == vb[c]) return true;
    }
    return false;
  };
  // BFS from subset[0] over the pairwise share-value graph.
  std::vector<char> visited(subset.size(), 0);
  std::vector<size_t> frontier{0};
  visited[0] = 1;
  size_t reached = 1;
  while (!frontier.empty()) {
    size_t i = frontier.back();
    frontier.pop_back();
    for (size_t j = 0; j < subset.size(); ++j) {
      if (visited[j] || !share_value(subset[i], subset[j])) continue;
      visited[j] = 1;
      ++reached;
      frontier.push_back(j);
    }
  }
  return reached == subset.size();
}

}  // namespace

Result<std::vector<FdResultTuple>> NaiveFdOracle(const FdProblem& problem,
                                                 size_t max_tuples) {
  const size_t n = problem.num_tuples();
  if (n > max_tuples) {
    return Status::InvalidArgument(
        StrFormat("oracle limited to %zu tuples, got %zu", max_tuples, n));
  }
  std::vector<FdResultTuple> results;
  std::vector<Value> merged;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    std::vector<uint32_t> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) subset.push_back(static_cast<uint32_t>(i));
    }
    // At most one tuple per relation in an FD set.
    bool table_repeat = false;
    for (size_t i = 0; i < subset.size() && !table_repeat; ++i) {
      for (size_t j = i + 1; j < subset.size(); ++j) {
        if (problem.tuples()[subset[i]].table_id ==
            problem.tuples()[subset[j]].table_id) {
          table_repeat = true;
          break;
        }
      }
    }
    if (table_repeat) continue;
    if (!SubsetConsistent(problem, subset, &merged)) continue;
    if (!SubsetConnected(problem, subset)) continue;
    FdResultTuple t;
    t.values = merged;
    t.tids = subset;
    results.push_back(std::move(t));
  }
  return EliminateSubsumed(std::move(results));
}

}  // namespace lakefuzz
