// NaiveFdOracle: brute-force Full Disjunction for tiny inputs.
//
// Directly materializes the definition — joins of ALL connected,
// join-consistent tuple subsets, then subsumption elimination — with no
// maximality shortcuts, component decomposition, or pruning. Exponential in
// the input size; exists solely as the ground truth the production
// implementation is property-tested against.
#ifndef LAKEFUZZ_FD_ORACLE_H_
#define LAKEFUZZ_FD_ORACLE_H_

#include "fd/full_disjunction.h"

namespace lakefuzz {

/// Computes FD by subset enumeration. Rejects instances with more than
/// `max_tuples` input tuples (default 20 ⇒ ~1M subsets).
Result<std::vector<FdResultTuple>> NaiveFdOracle(const FdProblem& problem,
                                                 size_t max_tuples = 20);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_ORACLE_H_
