#include "fd/parallel.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace lakefuzz {

Result<FdResult> ParallelFullDisjunction::Run(FdProblem* problem) const {
  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  ThreadPool pool(threads);

  FdResult out;
  Stopwatch index_watch;
  problem->BuildIndex(&pool);
  out.stats.index_seconds = index_watch.ElapsedSeconds();
  out.stats.num_input_tuples = problem->num_tuples();
  out.stats.num_components = problem->Components().size();
  out.stats.distinct_values = problem->index_stats().distinct_values;
  out.stats.posting_lists = problem->index_stats().posting_lists;
  out.stats.posting_entries = problem->index_stats().posting_entries;

  // Largest components first: they dominate runtime, so schedule them before
  // the long tail of singletons.
  std::vector<const std::vector<uint32_t>*> comps;
  comps.reserve(problem->Components().size());
  for (const auto& c : problem->Components()) {
    comps.push_back(&c);
    out.stats.largest_component =
        std::max(out.stats.largest_component, c.size());
  }
  std::stable_sort(comps.begin(), comps.end(),
                   [](const auto* a, const auto* b) {
                     return a->size() > b->size();
                   });

  Stopwatch enum_watch;
  std::atomic<int64_t> budget{
      static_cast<int64_t>(options_.fd.max_search_nodes)};
  std::vector<std::vector<FdCodeTuple>> per_comp(comps.size());
  std::mutex err_mu;
  Status first_error = Status::OK();
  std::atomic<uint64_t> total_nodes{0};

  // One scratch per work lane: enumeration state is O(num_tuples) to zero,
  // so it is allocated once here, not once per component.
  const size_t lanes = std::max<size_t>(
      1, std::min(comps.size(), pool.num_threads()));
  std::vector<FdScratch> scratches;
  scratches.reserve(lanes);
  for (size_t i = 0; i < lanes; ++i) scratches.emplace_back(*problem);

  pool.ParallelForWithLane(comps.size(), [&](size_t lane, size_t i) {
    uint64_t nodes = 0;
    auto res = FullDisjunction::RunComponentCodes(*problem, *comps[i], &budget,
                                                 &nodes, &scratches[lane]);
    total_nodes.fetch_add(nodes, std::memory_order_relaxed);
    if (!res.ok()) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (first_error.ok()) first_error = res.status();
      return;
    }
    per_comp[i] = std::move(res).value();
  });
  if (!first_error.ok()) return first_error;
  out.stats.search_nodes = total_nodes.load();
  out.stats.enumeration_seconds = enum_watch.ElapsedSeconds();

  std::vector<FdCodeTuple> code_tuples;
  for (auto& tuples : per_comp) {
    for (auto& t : tuples) code_tuples.push_back(std::move(t));
  }
  out.stats.results_before_subsumption = code_tuples.size();

  Stopwatch subsume_watch;
  code_tuples = EliminateSubsumedCodes(std::move(code_tuples), &pool);
  out.tuples.resize(code_tuples.size());
  pool.ParallelFor(code_tuples.size(), [&](size_t i) {
    out.tuples[i] = DecodeCodeTuple(code_tuples[i], problem->dict());
  });
  out.stats.subsumption_seconds = subsume_watch.ElapsedSeconds();
  out.stats.results = out.tuples.size();
  return out;
}

}  // namespace lakefuzz
