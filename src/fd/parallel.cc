#include "fd/parallel.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/rss.h"
#include "util/thread_pool.h"

namespace lakefuzz {
namespace {

/// Components below this tuple count skip their per-component trace span
/// (mirrors the serial executor's gate): the singleton tail dominates by
/// count, not by time, and would flood the trace.
constexpr size_t kComponentSpanMinTuples = 64;

/// Session pools (LakeEngine) are reused across calls; otherwise spawn a
/// pool for this run. The one pool-resolution rule for RunCodes and Run.
ThreadPool* ResolvePool(const ParallelFdOptions& options,
                        std::unique_ptr<ThreadPool>* owned) {
  if (options.pool != nullptr) return options.pool;
  size_t threads = options.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  *owned = std::make_unique<ThreadPool>(threads);
  return owned->get();
}

}  // namespace

Result<std::vector<FdCodeTuple>> ParallelFullDisjunction::RunCodes(
    FdProblem* problem, FdStats* stats, const RequestContext& ctx,
    const ProgressFn& progress) const {
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = ResolvePool(options_, &owned_pool);
  const PoolStats pool_before = pool->stats();

  ScopedSpan index_span(ctx, "fd_index");
  Stopwatch index_watch;
  problem->BuildIndex(pool);
  index_span.AddAttr("distinct_values",
                     static_cast<int64_t>(problem->index_stats().distinct_values));
  index_span.End();
  stats->index_seconds = index_watch.ElapsedSeconds();
  stats->num_input_tuples = problem->num_tuples();
  stats->num_components = problem->Components().size();
  stats->distinct_values = problem->index_stats().distinct_values;
  stats->posting_lists = problem->index_stats().posting_lists;
  stats->posting_entries = problem->index_stats().posting_entries;
  stats->value_copies = problem->index_stats().value_copies;

  // Largest components first: they dominate runtime, so schedule them before
  // the long tail of singletons.
  std::vector<const std::vector<uint32_t>*> comps;
  comps.reserve(problem->Components().size());
  for (const auto& c : problem->Components()) {
    comps.push_back(&c);
    stats->largest_component =
        std::max(stats->largest_component, c.size());
  }
  std::stable_sort(comps.begin(), comps.end(),
                   [](const auto* a, const auto* b) {
                     return a->size() > b->size();
                   });

  ReportProgress(progress, Stage::kFdEnumerate, 0, 1);
  ScopedSpan enum_span(ctx, "fd_enumerate");
  const RequestContext enum_ctx = ctx.WithSpan(enum_span.id());
  Stopwatch enum_watch;
  int64_t node_cap = static_cast<int64_t>(options_.fd.max_search_nodes);
  if (ctx.budget.max_fd_nodes > 0) {
    node_cap =
        std::min(node_cap, static_cast<int64_t>(ctx.budget.max_fd_nodes));
  }
  std::atomic<int64_t> budget{node_cap};
  std::vector<std::vector<FdCodeTuple>> per_comp(comps.size());
  std::mutex err_mu;
  Status first_error = Status::OK();   // guarded by err_mu
  Status trunc_stop = Status::OK();    // guarded by err_mu (kTruncate stops)
  std::atomic<uint64_t> total_nodes{0};

  // Intra-component parallelism: with a multi-worker pool, the biggest
  // components (a skewed lake often collapses into one giant component)
  // have their branch-and-exclude trees split across the whole pool instead
  // of serializing one worker. They sit at the front of the size-sorted
  // order, so the giants run first — one at a time, all workers inside —
  // and the long tail then fans out component-per-worker as before. Output
  // is byte-identical either way.
  size_t intra_workers =
      options_.fd.intra_component_threads == 0
          ? pool->num_threads()
          : std::min(options_.fd.intra_component_threads,
                     pool->num_threads());
  if (pool->num_threads() <= 1) intra_workers = 1;

  // One scratch per work lane: enumeration state is O(num_tuples) to zero,
  // so it is allocated once here, not once per component. The intra phase
  // reuses the same scratches (the two phases never overlap).
  const size_t lanes = std::max<size_t>(
      1, std::min(std::max(comps.size(), intra_workers),
                  pool->num_threads()));
  std::vector<FdScratch> scratches;
  scratches.reserve(lanes);
  for (size_t i = 0; i < lanes; ++i) {
    scratches.emplace_back(*problem);
    scratches.back().arena_enabled = options_.fd.scratch_arena;
  }

  // A component is "giant" when it is both absolutely large and a big
  // enough share of the total that component-level parallelism would starve
  // — at least 1/(2·workers) of all tuples. Lakes of many mid-size
  // components keep the cheaper component-per-worker path, where subtree
  // bookkeeping would only add overhead.
  size_t num_intra = 0;
  if (intra_workers > 1) {
    const size_t total = problem->num_tuples();
    while (num_intra < comps.size()) {
      const size_t size = comps[num_intra]->size();
      if (size < options_.fd.intra_component_min_size ||
          size * 2 * intra_workers < total) {
        break;
      }
      ++num_intra;
    }
  }
  uint64_t intra_tasks = 0;
  FdTaskProfile task_profile;
  std::atomic<size_t> completed{0};
  Status stop = Status::OK();
  size_t intra_done = 0;
  for (size_t i = 0; i < num_intra; ++i) {
    stop = ctx.CheckStop("full disjunction");
    if (stop.ok() && ctx.budget.max_scratch_bytes > 0) {
      size_t reserved = 0;
      for (const FdScratch& s : scratches) {
        reserved += s.arena.bytes_reserved();
      }
      if (reserved > ctx.budget.max_scratch_bytes) {
        stop = Status::ResourceExhausted(
            "full disjunction scratch budget exhausted "
            "(ResourceBudget::max_scratch_bytes)");
      }
    }
    if (!stop.ok()) break;
    ScopedSpan comp_span(enum_ctx, "fd_component");
    comp_span.AddAttr("tuples", static_cast<int64_t>(comps[i]->size()));
    comp_span.AddAttr("intra", int64_t{1});
    const RequestContext comp_ctx = enum_ctx.WithSpan(comp_span.id());
    uint64_t nodes = 0;
    auto res = FullDisjunction::RunComponentCodesParallel(
        *problem, *comps[i], options_.fd, pool, intra_workers, &scratches,
        &budget, &nodes, &intra_tasks, &comp_ctx, &task_profile);
    comp_span.AddAttr("nodes", static_cast<int64_t>(nodes));
    total_nodes.fetch_add(nodes, std::memory_order_relaxed);
    if (!res.ok()) {
      stop = res.status();
      break;
    }
    per_comp[i] = std::move(res).value();
    ++intra_done;
  }
  stats->intra_tasks = intra_tasks;
  stats->task_profile = task_profile;
  completed.fetch_add(intra_done, std::memory_order_relaxed);
  if (!stop.ok() && !ctx.ShouldTruncate(stop.code())) return stop;

  if (stop.ok()) {
    pool->ParallelForWithLane(comps.size() - num_intra, [&](size_t lane,
                                                            size_t idx) {
      const size_t i = num_intra + idx;
      // Per-component checkpoint: once the token fires or the deadline
      // passes, the remaining scheduled components become no-ops instead of
      // enumerating. Under kTruncate they count as skipped; otherwise the
      // stop is the request's error.
      Status cs = ctx.CheckStop("full disjunction");
      uint64_t nodes = 0;
      if (cs.ok()) {
        ScopedSpan comp_span(
            comps[i]->size() >= kComponentSpanMinTuples ? enum_ctx.tracer
                                                        : nullptr,
            "fd_component", enum_ctx.trace_parent);
        comp_span.AddAttr("tuples", static_cast<int64_t>(comps[i]->size()));
        auto res = FullDisjunction::RunComponentCodes(
            *problem, *comps[i], &budget, &nodes, &scratches[lane],
            &enum_ctx);
        comp_span.AddAttr("nodes", static_cast<int64_t>(nodes));
        total_nodes.fetch_add(nodes, std::memory_order_relaxed);
        if (res.ok()) {
          per_comp[i] = std::move(res).value();
          completed.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        cs = res.status();  // mid-component stop: the partial is discarded
      }
      std::lock_guard<std::mutex> lock(err_mu);
      if (ctx.ShouldTruncate(cs.code())) {
        if (trunc_stop.ok()) trunc_stop = cs;
      } else if (first_error.ok()) {
        first_error = cs;
      }
    });
    if (!first_error.ok()) return first_error;
    {
      std::lock_guard<std::mutex> lock(err_mu);
      if (!trunc_stop.ok()) stop = trunc_stop;
    }
  }
  if (!stop.ok()) {
    stats->truncation.truncated = true;
    stats->truncation.stage = Stage::kFdEnumerate;
    stats->truncation.reason = stop.message();
    stats->truncation.components_completed =
        completed.load(std::memory_order_relaxed);
    stats->truncation.components_skipped =
        comps.size() - stats->truncation.components_completed;
  }
  stats->search_nodes = total_nodes.load();
  for (const FdScratch& s : scratches) {
    stats->arena_bytes_reserved += s.arena.bytes_reserved();
    stats->arena_peak_bytes += s.arena.peak_bytes();
  }
  stats->peak_rss_bytes = PeakRssBytes();

  // Zero-copy flatten into final component order: one exact reservation,
  // then pure moves.
  const uint64_t merge_start = ThreadPool::NowNs();
  std::vector<FdCodeTuple> code_tuples;
  size_t total_tuples = 0;
  for (const auto& tuples : per_comp) total_tuples += tuples.size();
  code_tuples.reserve(total_tuples);
  for (auto& tuples : per_comp) {
    for (auto& t : tuples) code_tuples.push_back(std::move(t));
  }
  stats->task_profile.merge_ns += ThreadPool::NowNs() - merge_start;
  stats->merge_seconds =
      static_cast<double>(stats->task_profile.merge_ns) * 1e-9;
  enum_span.AddAttr("components", static_cast<int64_t>(comps.size()));
  enum_span.AddAttr("search_nodes",
                    static_cast<int64_t>(stats->search_nodes));
  enum_span.End();
  stats->enumeration_seconds = enum_watch.ElapsedSeconds();
  ReportProgress(progress, Stage::kFdEnumerate, 1, 1);
  stats->results_before_subsumption = code_tuples.size();

  // Subsuming an already-truncated partial result is cleanup: it still
  // honors cancellation but is not re-aborted by the expired deadline.
  const RequestContext subsume_ctx =
      stats->truncation.truncated ? ctx.CancelOnly() : ctx;
  LAKEFUZZ_RETURN_IF_ERROR(subsume_ctx.CheckStop("full disjunction"));
  ReportProgress(progress, Stage::kFdSubsume, 0, 1);
  ScopedSpan subsume_span(subsume_ctx, "fd_subsume");
  subsume_span.AddAttr("input_tuples",
                       static_cast<int64_t>(code_tuples.size()));
  Stopwatch subsume_watch;
  LAKEFUZZ_ASSIGN_OR_RETURN(
      code_tuples,
      EliminateSubsumedCodes(std::move(code_tuples), pool, &subsume_ctx));
  subsume_span.AddAttr("results", static_cast<int64_t>(code_tuples.size()));
  subsume_span.End();
  stats->subsumption_seconds = subsume_watch.ElapsedSeconds();
  stats->results = code_tuples.size();
  if (stats->truncation.truncated) {
    stats->truncation.tuples_emitted = code_tuples.size();
  }
  ReportProgress(progress, Stage::kFdSubsume, 1, 1);
  const PoolStats pool_delta = pool->stats() - pool_before;
  stats->pool_tasks = pool_delta.tasks;
  stats->pool_busy_seconds = static_cast<double>(pool_delta.busy_ns) * 1e-9;
  stats->pool_wait_seconds =
      static_cast<double>(pool_delta.queue_wait_ns) * 1e-9;
  return code_tuples;
}

Result<FdResult> ParallelFullDisjunction::Run(FdProblem* problem) const {
  // One pool for both RunCodes and the decode below (RunCodes would
  // otherwise spawn and join its own).
  std::unique_ptr<ThreadPool> owned_pool;
  ParallelFdOptions opts = options_;
  opts.pool = ResolvePool(options_, &owned_pool);
  FdResult out;
  LAKEFUZZ_ASSIGN_OR_RETURN(
      std::vector<FdCodeTuple> code_tuples,
      ParallelFullDisjunction(opts).RunCodes(problem, &out.stats));
  // Decode on the pool, timed into subsumption_seconds as before the
  // RunCodes split.
  Stopwatch decode_watch;
  out.tuples.resize(code_tuples.size());
  opts.pool->ParallelFor(code_tuples.size(), [&](size_t i) {
    out.tuples[i] = DecodeCodeTuple(code_tuples[i], problem->dict());
  });
  out.stats.subsumption_seconds += decode_watch.ElapsedSeconds();
  return out;
}

}  // namespace lakefuzz
