#include "fd/parallel.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <thread>

#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace lakefuzz {
namespace {

/// Session pools (LakeEngine) are reused across calls; otherwise spawn a
/// pool for this run. The one pool-resolution rule for RunCodes and Run.
ThreadPool* ResolvePool(const ParallelFdOptions& options,
                        std::unique_ptr<ThreadPool>* owned) {
  if (options.pool != nullptr) return options.pool;
  size_t threads = options.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  *owned = std::make_unique<ThreadPool>(threads);
  return owned->get();
}

}  // namespace

Result<std::vector<FdCodeTuple>> ParallelFullDisjunction::RunCodes(
    FdProblem* problem, FdStats* stats, const CancelToken& cancel,
    const ProgressFn& progress) const {
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = ResolvePool(options_, &owned_pool);

  Stopwatch index_watch;
  problem->BuildIndex(pool);
  stats->index_seconds = index_watch.ElapsedSeconds();
  stats->num_input_tuples = problem->num_tuples();
  stats->num_components = problem->Components().size();
  stats->distinct_values = problem->index_stats().distinct_values;
  stats->posting_lists = problem->index_stats().posting_lists;
  stats->posting_entries = problem->index_stats().posting_entries;

  // Largest components first: they dominate runtime, so schedule them before
  // the long tail of singletons.
  std::vector<const std::vector<uint32_t>*> comps;
  comps.reserve(problem->Components().size());
  for (const auto& c : problem->Components()) {
    comps.push_back(&c);
    stats->largest_component =
        std::max(stats->largest_component, c.size());
  }
  std::stable_sort(comps.begin(), comps.end(),
                   [](const auto* a, const auto* b) {
                     return a->size() > b->size();
                   });

  ReportProgress(progress, Stage::kFdEnumerate, 0, 1);
  Stopwatch enum_watch;
  std::atomic<int64_t> budget{
      static_cast<int64_t>(options_.fd.max_search_nodes)};
  std::vector<std::vector<FdCodeTuple>> per_comp(comps.size());
  std::mutex err_mu;
  Status first_error = Status::OK();
  std::atomic<uint64_t> total_nodes{0};

  // One scratch per work lane: enumeration state is O(num_tuples) to zero,
  // so it is allocated once here, not once per component.
  const size_t lanes = std::max<size_t>(
      1, std::min(comps.size(), pool->num_threads()));
  std::vector<FdScratch> scratches;
  scratches.reserve(lanes);
  for (size_t i = 0; i < lanes; ++i) scratches.emplace_back(*problem);

  pool->ParallelForWithLane(comps.size(), [&](size_t lane, size_t i) {
    // Per-component cancellation checkpoint: once the token fires, the
    // remaining scheduled components become no-ops instead of enumerating.
    if (cancel.cancelled()) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (first_error.ok()) {
        first_error = Status::Cancelled("full disjunction cancelled");
      }
      return;
    }
    uint64_t nodes = 0;
    auto res = FullDisjunction::RunComponentCodes(*problem, *comps[i], &budget,
                                                 &nodes, &scratches[lane],
                                                 &cancel);
    total_nodes.fetch_add(nodes, std::memory_order_relaxed);
    if (!res.ok()) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (first_error.ok()) first_error = res.status();
      return;
    }
    per_comp[i] = std::move(res).value();
  });
  if (!first_error.ok()) return first_error;
  stats->search_nodes = total_nodes.load();
  stats->enumeration_seconds = enum_watch.ElapsedSeconds();
  ReportProgress(progress, Stage::kFdEnumerate, 1, 1);

  std::vector<FdCodeTuple> code_tuples;
  for (auto& tuples : per_comp) {
    for (auto& t : tuples) code_tuples.push_back(std::move(t));
  }
  stats->results_before_subsumption = code_tuples.size();

  if (cancel.cancelled()) {
    return Status::Cancelled("full disjunction cancelled");
  }
  ReportProgress(progress, Stage::kFdSubsume, 0, 1);
  Stopwatch subsume_watch;
  code_tuples = EliminateSubsumedCodes(std::move(code_tuples), pool);
  stats->subsumption_seconds = subsume_watch.ElapsedSeconds();
  stats->results = code_tuples.size();
  ReportProgress(progress, Stage::kFdSubsume, 1, 1);
  return code_tuples;
}

Result<FdResult> ParallelFullDisjunction::Run(FdProblem* problem) const {
  // One pool for both RunCodes and the decode below (RunCodes would
  // otherwise spawn and join its own).
  std::unique_ptr<ThreadPool> owned_pool;
  ParallelFdOptions opts = options_;
  opts.pool = ResolvePool(options_, &owned_pool);
  FdResult out;
  LAKEFUZZ_ASSIGN_OR_RETURN(
      std::vector<FdCodeTuple> code_tuples,
      ParallelFullDisjunction(opts).RunCodes(problem, &out.stats));
  // Decode on the pool, timed into subsumption_seconds as before the
  // RunCodes split.
  Stopwatch decode_watch;
  out.tuples.resize(code_tuples.size());
  opts.pool->ParallelFor(code_tuples.size(), [&](size_t i) {
    out.tuples[i] = DecodeCodeTuple(code_tuples[i], problem->dict());
  });
  out.stats.subsumption_seconds += decode_watch.ElapsedSeconds();
  return out;
}

}  // namespace lakefuzz
