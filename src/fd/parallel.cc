#include "fd/parallel.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include "util/thread_pool.h"

namespace lakefuzz {

Result<FdResult> ParallelFullDisjunction::Run(FdProblem* problem) const {
  problem->BuildIndex();
  FdResult out;
  out.stats.num_input_tuples = problem->num_tuples();
  out.stats.num_components = problem->Components().size();

  // Largest components first: they dominate runtime, so schedule them before
  // the long tail of singletons.
  std::vector<const std::vector<uint32_t>*> comps;
  comps.reserve(problem->Components().size());
  for (const auto& c : problem->Components()) {
    comps.push_back(&c);
    out.stats.largest_component =
        std::max(out.stats.largest_component, c.size());
  }
  std::stable_sort(comps.begin(), comps.end(),
                   [](const auto* a, const auto* b) {
                     return a->size() > b->size();
                   });

  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  ThreadPool pool(threads);

  std::atomic<int64_t> budget{
      static_cast<int64_t>(options_.fd.max_search_nodes)};
  std::vector<std::vector<FdResultTuple>> per_comp(comps.size());
  std::mutex err_mu;
  Status first_error = Status::OK();
  std::atomic<uint64_t> total_nodes{0};

  pool.ParallelFor(comps.size(), [&](size_t i) {
    uint64_t nodes = 0;
    auto res = FullDisjunction::RunComponent(*problem, *comps[i], &budget,
                                             &nodes);
    total_nodes.fetch_add(nodes, std::memory_order_relaxed);
    if (!res.ok()) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (first_error.ok()) first_error = res.status();
      return;
    }
    per_comp[i] = std::move(res).value();
  });
  if (!first_error.ok()) return first_error;

  for (auto& tuples : per_comp) {
    for (auto& t : tuples) out.tuples.push_back(std::move(t));
  }
  out.stats.search_nodes = total_nodes.load();
  out.stats.results_before_subsumption = out.tuples.size();
  out.tuples = EliminateSubsumed(std::move(out.tuples));
  out.stats.results = out.tuples.size();
  return out;
}

}  // namespace lakefuzz
