// ParallelFullDisjunction: component-level parallel FD executor.
//
// Join-graph components are independent FD subproblems (Paganelli et al.,
// Big Data Research 2019, parallelize FD the same way); this executor
// distributes them over a thread pool, largest-first to balance the skewed
// component-size distribution of real lakes.
#ifndef LAKEFUZZ_FD_PARALLEL_H_
#define LAKEFUZZ_FD_PARALLEL_H_

#include <cstddef>

#include "fd/full_disjunction.h"

namespace lakefuzz {

class ThreadPool;

struct ParallelFdOptions {
  FdOptions fd;
  /// 0 → hardware concurrency. Ignored when `pool` is set.
  size_t num_threads = 0;
  /// Externally owned worker pool (a LakeEngine's session pool). When set,
  /// the executor runs on it instead of spawning its own — repeated
  /// requests stop paying thread start-up per call. Not owned.
  ThreadPool* pool = nullptr;
};

/// Thread-pool FD executor. Results are identical (same order) to the
/// sequential FullDisjunction — merging is deterministic regardless of
/// completion order.
class ParallelFullDisjunction {
 public:
  explicit ParallelFullDisjunction(
      ParallelFdOptions options = ParallelFdOptions())
      : options_(options) {}

  Result<FdResult> Run(FdProblem* problem) const;

  /// Post-subsumption interned result rows (see FullDisjunction::RunCodes).
  /// `ctx` (cancel + deadline + budget) is polled per scheduled component
  /// and inside the enumerator; under BudgetPolicy::kTruncate a
  /// deadline/budget stop returns the components completed so far and
  /// records the cut in stats->truncation. `progress` events fire from the
  /// coordinating thread only (never from pool workers).
  Result<std::vector<FdCodeTuple>> RunCodes(
      FdProblem* problem, FdStats* stats,
      const RequestContext& ctx = RequestContext(),
      const ProgressFn& progress = ProgressFn()) const;

 private:
  ParallelFdOptions options_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_PARALLEL_H_
