// ParallelFullDisjunction: component-level parallel FD executor.
//
// Join-graph components are independent FD subproblems (Paganelli et al.,
// Big Data Research 2019, parallelize FD the same way); this executor
// distributes them over a thread pool, largest-first to balance the skewed
// component-size distribution of real lakes.
#ifndef LAKEFUZZ_FD_PARALLEL_H_
#define LAKEFUZZ_FD_PARALLEL_H_

#include <cstddef>

#include "fd/full_disjunction.h"

namespace lakefuzz {

struct ParallelFdOptions {
  FdOptions fd;
  /// 0 → hardware concurrency.
  size_t num_threads = 0;
};

/// Thread-pool FD executor. Results are identical (same order) to the
/// sequential FullDisjunction — merging is deterministic regardless of
/// completion order.
class ParallelFullDisjunction {
 public:
  explicit ParallelFullDisjunction(
      ParallelFdOptions options = ParallelFdOptions())
      : options_(options) {}

  Result<FdResult> Run(FdProblem* problem) const;

 private:
  ParallelFdOptions options_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_PARALLEL_H_
