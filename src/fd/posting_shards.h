// Sharded (column, code) posting-list construction over dense code rows —
// the kernel shared by FdProblem::BuildIndex and EliminateSubsumedCodes.
//
// Keys are 64-bit (column << 32 | code) integers. Each shard owns the keys
// hashing to it and rescans all rows keeping only those, so inserts never
// contend and per-shard output is deterministic. The rescan is cheap
// flat-integer work, but it multiplies with shard count — PostingShardCount
// gates sharding on problem size.
#ifndef LAKEFUZZ_FD_POSTING_SHARDS_H_
#define LAKEFUZZ_FD_POSTING_SHARDS_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fd/value_dict.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace lakefuzz {

/// One shard of posting lists: key → list id, plus the lists (row ids in
/// ascending order).
struct PostingShard {
  std::unordered_map<uint64_t, uint32_t> index;
  std::vector<std::vector<uint32_t>> lists;
};

inline uint64_t PostingKey(size_t col, uint32_t code) {
  return (static_cast<uint64_t>(col) << 32) | code;
}

/// Shard owning `key` among `shards`.
inline size_t PostingShardOf(uint64_t key, size_t shards) {
  return shards > 1 ? Mix64(key) % shards : 0;
}

/// Shard count for `cells` total code cells on `pool` (1 without a pool).
inline size_t PostingShardCount(const ThreadPool* pool, size_t cells) {
  constexpr size_t kCellsPerShard = 1 << 16;
  if (pool == nullptr) return 1;
  return std::max<size_t>(
      1, std::min(pool->num_threads(), 1 + cells / kCellsPerShard));
}

/// Builds sharded posting lists over `num_rows` code rows of width `cols`.
/// `row(i)` returns the i-th row (or nullptr to skip the row entirely);
/// ValueDict::kNullCode cells are skipped. Runs on `pool` when provided;
/// shard contents are identical for any schedule.
template <typename RowFn>
std::vector<PostingShard> BuildPostingShards(ThreadPool* pool, size_t num_rows,
                                             size_t cols, const RowFn& row) {
  const size_t cells = num_rows * cols;
  const size_t shards = PostingShardCount(pool, cells);
  std::vector<PostingShard> out(shards);
  MaybeParallelFor(pool, shards, [&](size_t s) {
    PostingShard& sh = out[s];
    sh.index.reserve(cells / shards / 2 + 16);
    for (uint32_t i = 0; i < num_rows; ++i) {
      const uint32_t* r = row(i);
      if (r == nullptr) continue;
      for (size_t c = 0; c < cols; ++c) {
        const uint32_t code = r[c];
        if (code == ValueDict::kNullCode) continue;
        const uint64_t key = PostingKey(c, code);
        if (PostingShardOf(key, shards) != s) continue;
        auto [it, inserted] =
            sh.index.emplace(key, static_cast<uint32_t>(sh.lists.size()));
        if (inserted) sh.lists.emplace_back();
        sh.lists[it->second].push_back(i);
      }
    }
  });
  return out;
}

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_POSTING_SHARDS_H_
