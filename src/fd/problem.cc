#include "fd/problem.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "fd/posting_shards.h"
#include "fd/session_dict.h"
#include "util/hash.h"
#include "util/str.h"
#include "util/thread_pool.h"
#include "util/union_find.h"

namespace lakefuzz {

Result<FdProblem> FdProblem::Build(const TableList& tables,
                                   const AlignedSchema& aligned) {
  LAKEFUZZ_RETURN_IF_ERROR(ValidateAlignedSchema(aligned, tables));
  FdProblem problem(aligned.NumUniversal(), aligned.universal_names);
  for (size_t l = 0; l < tables.size(); ++l) {
    const Table& t = *tables[l];
    for (size_t r = 0; r < t.NumRows(); ++r) {
      std::vector<Value> padded(aligned.NumUniversal());
      for (size_t c = 0; c < t.NumColumns(); ++c) {
        padded[aligned.column_map[l][c]] = t.At(r, c);
      }
      problem.value_copies_ += t.NumColumns();
      LAKEFUZZ_RETURN_IF_ERROR(
          problem.AddTuple(static_cast<uint32_t>(l), std::move(padded)));
    }
  }
  return problem;
}

Result<FdProblem> FdProblem::Build(const std::vector<Table>& tables,
                                   const AlignedSchema& aligned) {
  return Build(BorrowTables(tables), aligned);
}

Result<FdProblem> FdProblem::BuildInterned(const TableList& tables,
                                           const AlignedSchema& aligned,
                                           SessionDict* dict) {
  if (dict == nullptr) {
    return Status::InvalidArgument("BuildInterned requires a SessionDict");
  }
  LAKEFUZZ_RETURN_IF_ERROR(ValidateAlignedSchema(aligned, tables));
  FdProblem problem(aligned.NumUniversal(), aligned.universal_names);
  const size_t cols = aligned.NumUniversal();
  size_t total_rows = 0;
  for (const Table* t : tables) total_rows += t->NumRows();
  problem.codes_.assign(total_rows * cols, kNullCode);
  problem.table_ids_.reserve(total_rows);

  const uint64_t interned_before = dict->stats().values_interned;
  size_t base = 0;
  for (size_t l = 0; l < tables.size(); ++l) {
    const Table& t = *tables[l];
    const size_t rows = t.NumRows();
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      auto column = dict->ColumnCodes(t, c);
      const uint32_t* src = column->data();
      uint32_t* dst = problem.codes_.data() + base * cols +
                      aligned.column_map[l][c];
      for (size_t r = 0; r < rows; ++r) dst[r * cols] = src[r];
    }
    for (size_t r = 0; r < rows; ++r) {
      problem.table_ids_.push_back(static_cast<uint32_t>(l));
    }
    problem.num_tables_ =
        std::max(problem.num_tables_, static_cast<uint32_t>(l) + 1);
    base += rows;
  }
  problem.value_copies_ = dict->stats().values_interned - interned_before;
  problem.external_dict_ = &dict->dict();
  problem.codes_ready_ = true;
  return problem;
}

Status FdProblem::AddTuple(uint32_t table_id, std::vector<Value> values) {
  if (external_dict_ != nullptr) {
    return Status::InvalidArgument(
        "cannot AddTuple into a BuildInterned problem");
  }
  if (values.size() != num_columns_) {
    return Status::InvalidArgument(
        StrFormat("tuple has %zu values, problem has %zu columns",
                  values.size(), num_columns_));
  }
  tuples_.push_back(FdInputTuple{table_id, std::move(values)});
  table_ids_.push_back(table_id);
  num_tables_ = std::max(num_tables_, table_id + 1);
  index_built_ = false;
  codes_ready_ = false;
  return Status::OK();
}

std::vector<uint32_t> FdProblem::Neighbors(uint32_t tid) const {
  assert(index_built_);
  std::vector<uint32_t> out;
  ForEachCoPosted(tid, [&out](uint32_t other) { out.push_back(other); });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const std::vector<std::vector<uint32_t>>& FdProblem::Components() const {
  assert(index_built_);
  return components_;
}

void FdProblem::BuildIndex(ThreadPool* pool) {
  if (index_built_) return;
  const uint32_t n = static_cast<uint32_t>(num_tuples());
  const size_t cols = num_columns_;
  const size_t cells = static_cast<size_t>(n) * cols;

  if (!codes_ready_) {
    // ---- Phase 1: hash every non-null cell (pure per tuple → parallel).
    std::vector<uint64_t> cell_hash(cells, 0);
    MaybeParallelFor(pool, n, [&](size_t tid) {
      const auto& vals = tuples_[tid].values;
      uint64_t* out = cell_hash.data() + tid * cols;
      for (size_t c = 0; c < cols; ++c) {
        if (!vals[c].is_null()) out[c] = vals[c].Hash();
      }
    });

    // ---- Phase 2: intern cells into flat code rows. Serial on purpose: the
    // first-occurrence order defines codes, so the dictionary is identical on
    // every run; the string hashing already happened in phase 1.
    dict_ = ValueDict();
    dict_.Reserve(cells / 4 + 16);
    codes_.assign(cells, kNullCode);
    for (uint32_t tid = 0; tid < n; ++tid) {
      const auto& vals = tuples_[tid].values;
      const uint64_t* h = cell_hash.data() + static_cast<size_t>(tid) * cols;
      uint32_t* out = codes_.data() + static_cast<size_t>(tid) * cols;
      for (size_t c = 0; c < cols; ++c) {
        if (!vals[c].is_null()) out[c] = dict_.InternHashed(vals[c], h[c]);
      }
    }
    value_copies_ += dict_.NumDistinct();
    codes_ready_ = true;
  }

  // ---- Phase 3: sharded posting maps over (column, code) integer keys
  // (fd/posting_shards.h). Singleton lists are then dropped — they induce
  // no join edges.
  std::vector<PostingShard> shard = BuildPostingShards(
      pool, n, cols,
      [this, cols](uint32_t tid) {
        return codes_.data() + static_cast<size_t>(tid) * cols;
      });
  const size_t shards = shard.size();
  MaybeParallelFor(pool, shards, [&](size_t s) {
    auto& lists = shard[s].lists;
    shard[s].index.clear();
    size_t kept = 0;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (lists[i].size() < 2) continue;
      if (kept != i) lists[kept] = std::move(lists[i]);
      ++kept;
    }
    lists.resize(kept);
  });

  // ---- Phase 4: CSR posting arrays + union-find component merge. Shards
  // write disjoint ranges; the parallel path merges through a lock-free
  // union-find, the serial path through an iterative union-by-rank one.
  std::vector<size_t> posting_base(shards + 1, 0);
  std::vector<size_t> entry_base(shards + 1, 0);
  for (size_t s = 0; s < shards; ++s) {
    size_t entries = 0;
    for (const auto& lst : shard[s].lists) entries += lst.size();
    posting_base[s + 1] = posting_base[s] + shard[s].lists.size();
    entry_base[s + 1] = entry_base[s] + entries;
  }
  const size_t num_postings = posting_base[shards];
  const size_t num_entries = entry_base[shards];
  posting_offsets_.assign(num_postings + 1, 0);
  posting_offsets_[num_postings] = num_entries;
  posting_tids_.assign(num_entries, 0);

  auto fill_shard = [&](size_t s, auto& union_find) {
    size_t p = posting_base[s];
    size_t e = entry_base[s];
    for (const auto& lst : shard[s].lists) {
      posting_offsets_[p++] = e;
      for (size_t i = 0; i < lst.size(); ++i) {
        posting_tids_[e++] = lst[i];
        if (i > 0) union_find.Union(lst[0], lst[i]);
      }
    }
  };
  std::vector<uint32_t> root(n);
  if (pool != nullptr && shards > 1) {
    AtomicUnionFind uf(n);
    pool->ParallelFor(shards, [&](size_t s) { fill_shard(s, uf); });
    for (uint32_t i = 0; i < n; ++i) root[i] = uf.Find(i);
  } else {
    UnionFind uf(n);
    for (size_t s = 0; s < shards; ++s) fill_shard(s, uf);
    for (uint32_t i = 0; i < n; ++i) root[i] = uf.Find(i);
  }
  shard.clear();

  // ---- Phase 5: tuple → posting-list CSR (counting sort over the flat
  // posting entries; deterministic and O(entries)).
  tuple_offsets_.assign(n + 1, 0);
  for (size_t e = 0; e < num_entries; ++e) {
    ++tuple_offsets_[posting_tids_[e] + 1];
  }
  for (size_t i = 0; i < n; ++i) tuple_offsets_[i + 1] += tuple_offsets_[i];
  tuple_postings_.assign(num_entries, 0);
  std::vector<uint64_t> cursor(tuple_offsets_.begin(),
                               tuple_offsets_.end() - 1);
  for (size_t p = 0; p < num_postings; ++p) {
    for (uint64_t e = posting_offsets_[p]; e < posting_offsets_[p + 1]; ++e) {
      tuple_postings_[cursor[posting_tids_[e]]++] = static_cast<uint32_t>(p);
    }
  }

  // ---- Phase 6: components, grouped by union-find root. Iterating TIDs in
  // order makes every component sorted and the component list ordered by
  // smallest member, independent of shard count or thread schedule.
  components_.clear();
  std::vector<uint32_t> comp_of_root(n, UINT32_MAX);
  for (uint32_t tid = 0; tid < n; ++tid) {
    uint32_t& slot = comp_of_root[root[tid]];
    if (slot == UINT32_MAX) {
      slot = static_cast<uint32_t>(components_.size());
      components_.emplace_back();
    }
    components_[slot].push_back(tid);
  }

  if (external_dict_ == nullptr) {
    index_stats_.distinct_values = dict_.NumDistinct();
  } else {
    // Session dictionary: its size covers the whole session, not this
    // problem. Count the codes actually present so the stat keeps
    // describing the problem it is attached to.
    std::vector<char> seen(external_dict_->NumDistinct() + 1, 0);
    size_t distinct = 0;
    for (uint32_t code : codes_) {
      if (code == kNullCode || seen[code]) continue;
      seen[code] = 1;
      ++distinct;
    }
    index_stats_.distinct_values = distinct;
  }
  index_stats_.posting_lists = num_postings;
  index_stats_.posting_entries = num_entries;
  index_stats_.value_copies = value_copies_;
  index_built_ = true;
}

}  // namespace lakefuzz
