#include "fd/problem.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "util/hash.h"
#include "util/str.h"

namespace lakefuzz {

Result<FdProblem> FdProblem::Build(const std::vector<Table>& tables,
                                   const AlignedSchema& aligned) {
  LAKEFUZZ_RETURN_IF_ERROR(ValidateAlignedSchema(aligned, tables));
  FdProblem problem(aligned.NumUniversal(), aligned.universal_names);
  for (size_t l = 0; l < tables.size(); ++l) {
    const Table& t = tables[l];
    for (size_t r = 0; r < t.NumRows(); ++r) {
      std::vector<Value> padded(aligned.NumUniversal());
      for (size_t c = 0; c < t.NumColumns(); ++c) {
        padded[aligned.column_map[l][c]] = t.At(r, c);
      }
      LAKEFUZZ_RETURN_IF_ERROR(
          problem.AddTuple(static_cast<uint32_t>(l), std::move(padded)));
    }
  }
  return problem;
}

Status FdProblem::AddTuple(uint32_t table_id, std::vector<Value> values) {
  if (values.size() != num_columns_) {
    return Status::InvalidArgument(
        StrFormat("tuple has %zu values, problem has %zu columns",
                  values.size(), num_columns_));
  }
  tuples_.push_back(FdInputTuple{table_id, std::move(values)});
  index_built_ = false;
  return Status::OK();
}

const std::vector<uint32_t>& FdProblem::Neighbors(uint32_t tid) const {
  assert(index_built_);
  return adjacency_[tid];
}

const std::vector<std::vector<uint32_t>>& FdProblem::Components() const {
  assert(index_built_);
  return components_;
}

namespace {

struct PostingKey {
  size_t col;
  Value value;
  bool operator==(const PostingKey& other) const {
    return col == other.col && value == other.value;
  }
};

struct PostingKeyHasher {
  size_t operator()(const PostingKey& k) const {
    return static_cast<size_t>(
        HashCombine(Mix64(static_cast<uint64_t>(k.col)), k.value.Hash()));
  }
};

}  // namespace

void FdProblem::BuildIndex() {
  if (index_built_) return;
  const uint32_t n = static_cast<uint32_t>(tuples_.size());

  std::unordered_map<PostingKey, std::vector<uint32_t>, PostingKeyHasher>
      postings;
  for (uint32_t tid = 0; tid < n; ++tid) {
    const auto& vals = tuples_[tid].values;
    for (size_t c = 0; c < num_columns_; ++c) {
      if (vals[c].is_null()) continue;
      postings[PostingKey{c, vals[c]}].push_back(tid);
    }
  }

  adjacency_.assign(n, {});
  // Union-find for components.
  std::vector<uint32_t> parent(n);
  for (uint32_t i = 0; i < n; ++i) parent[i] = i;
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (const auto& [key, tids] : postings) {
    (void)key;
    if (tids.size() < 2) continue;
    for (size_t i = 0; i < tids.size(); ++i) {
      for (size_t j = i + 1; j < tids.size(); ++j) {
        adjacency_[tids[i]].push_back(tids[j]);
        adjacency_[tids[j]].push_back(tids[i]);
      }
      parent[find(tids[i])] = find(tids[0]);
    }
  }
  for (auto& adj : adjacency_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }

  std::unordered_map<uint32_t, std::vector<uint32_t>> comp_map;
  for (uint32_t tid = 0; tid < n; ++tid) comp_map[find(tid)].push_back(tid);
  components_.clear();
  components_.reserve(comp_map.size());
  for (auto& [root, tids] : comp_map) {
    (void)root;
    std::sort(tids.begin(), tids.end());
    components_.push_back(std::move(tids));
  }
  // Deterministic component order: by smallest member TID.
  std::sort(components_.begin(), components_.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  index_built_ = true;
}

}  // namespace lakefuzz
