// FdProblem: the outer-union representation Full Disjunction operates on.
//
// Every input tuple is padded to the universal schema with nulls and tagged
// with its source table and a global tuple id (TID). BuildIndex interns all
// cell values into a per-problem ValueDict so tuples become flat uint32 code
// rows, then builds posting lists over (column, code) pairs. The posting
// lists *are* the join graph, stored implicitly in CSR form: tuples sharing
// an equal non-null value on a universal column are joinable neighbors, and
// a posting list of k tuples represents its k·(k−1) adjacency edges in O(k)
// space — no materialized all-pairs edge lists. Connected components of the
// graph partition the FD computation.
#ifndef LAKEFUZZ_FD_PROBLEM_H_
#define LAKEFUZZ_FD_PROBLEM_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "fd/aligned_schema.h"
#include "fd/value_dict.h"
#include "table/table.h"
#include "util/result.h"

namespace lakefuzz {

class SessionDict;
class ThreadPool;

/// One null-padded input tuple.
struct FdInputTuple {
  uint32_t table_id = 0;
  /// Values over the universal schema (size = FdProblem::num_columns()).
  std::vector<Value> values;
};

/// Size counters of the CSR join-graph index (reported by FdStats).
struct FdIndexStats {
  size_t distinct_values = 0;   ///< non-null dictionary entries
  size_t posting_lists = 0;     ///< multi-tuple (joinable) posting lists
  size_t posting_entries = 0;   ///< Σ posting-list lengths (CSR size)
  /// Value objects copied while constructing + interning the problem. The
  /// legacy Build path pays O(rows × columns) (padded outer-union rows) plus
  /// one copy per distinct value; BuildInterned pays only the distinct
  /// values *new to the session dictionary* — zero on a warm cache.
  size_t value_copies = 0;
};

/// A materialized Full Disjunction instance.
class FdProblem {
 public:
  /// Code of a null cell in interned rows (== ValueDict::kNullCode).
  static constexpr uint32_t kNullCode = ValueDict::kNullCode;

  FdProblem(size_t num_columns, std::vector<std::string> column_names)
      : num_columns_(num_columns), column_names_(std::move(column_names)) {}

  /// Outer-unions `tables` under `aligned` (validated first). The TableList
  /// form borrows (the engine request path); the vector<Table> overload
  /// forwards.
  static Result<FdProblem> Build(const TableList& tables,
                                 const AlignedSchema& aligned);
  static Result<FdProblem> Build(const std::vector<Table>& tables,
                                 const AlignedSchema& aligned);

  /// Zero-copy outer union: interns codes directly from source-table cells
  /// into the flat uint32 rows — no padded std::vector<Value> per tuple, no
  /// AddTuple copy. `dict` (not owned; must outlive the problem) supplies
  /// and keeps the codes, so repeated builds over the same tables only pay
  /// dictionary lookups — or, for tables pinned in the session dictionary,
  /// a flat scatter of memoized column codes with zero hashing. Problems
  /// built this way have no materialized tuples(): all downstream work runs
  /// on code rows and decodes through dict().
  static Result<FdProblem> BuildInterned(const TableList& tables,
                                         const AlignedSchema& aligned,
                                         SessionDict* dict);

  size_t num_columns() const { return num_columns_; }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  /// Padded input tuples (legacy Build/AddTuple path only; empty for
  /// BuildInterned problems, which never materialize per-tuple Values).
  const std::vector<FdInputTuple>& tuples() const { return tuples_; }
  size_t num_tuples() const { return table_ids_.size(); }

  /// One more than the largest table_id added (0 for an empty problem).
  uint32_t num_tables() const { return num_tables_; }
  uint32_t table_id(uint32_t tid) const { return table_ids_[tid]; }

  /// Appends a tuple (used by Build and by tests constructing instances
  /// directly). `values` must have num_columns() entries.
  Status AddTuple(uint32_t table_id, std::vector<Value> values);

  /// Builds the value dictionary, interned code rows, CSR posting lists,
  /// and components. Idempotent. When `pool` is non-null the cell-hashing,
  /// posting-shard, and union-find phases run on it; results are identical
  /// to the serial build. BuildInterned problems skip the hash + intern
  /// phases entirely (their code rows already exist).
  void BuildIndex(ThreadPool* pool = nullptr);
  bool index_built() const { return index_built_; }

  /// The interning dictionary: the problem-owned one (legacy Build), or the
  /// session dictionary a BuildInterned problem was encoded against.
  /// Requires BuildIndex() on the legacy path.
  const ValueDict& dict() const {
    return external_dict_ != nullptr ? *external_dict_ : dict_;
  }

  /// Interned row of `tid`: num_columns() codes, kNullCode where null.
  /// Requires BuildIndex().
  const uint32_t* CodeRow(uint32_t tid) const {
    return codes_.data() + static_cast<size_t>(tid) * num_columns_;
  }

  /// TIDs adjacent to `tid` in the join graph: tuples sharing at least one
  /// equal non-null (column, value). Materialized on demand from the CSR
  /// index — sorted, deduplicated, excludes `tid` itself. Requires
  /// BuildIndex().
  std::vector<uint32_t> Neighbors(uint32_t tid) const;

  /// Streams the co-posted tuples of `tid` (every tuple sharing a posting
  /// list with it, excluding `tid`). A tuple sharing several values with
  /// `tid` is visited once per shared posting list — callers dedup, which
  /// the FD enumerator does with epoch stamps anyway. This is the zero-
  /// allocation hot-path form of Neighbors(). Requires BuildIndex().
  template <typename F>
  void ForEachCoPosted(uint32_t tid, F&& fn) const {
    assert(index_built_);
    for (uint64_t k = tuple_offsets_[tid]; k < tuple_offsets_[tid + 1]; ++k) {
      const uint32_t p = tuple_postings_[k];
      for (uint64_t e = posting_offsets_[p]; e < posting_offsets_[p + 1];
           ++e) {
        const uint32_t other = posting_tids_[e];
        if (other != tid) fn(other);
      }
    }
  }

  /// Connected components of the join graph, each a sorted TID list, ordered
  /// by smallest member. Singleton tuples (no joinable partner) form
  /// singleton components. Requires BuildIndex().
  const std::vector<std::vector<uint32_t>>& Components() const;

  /// Index size counters. Requires BuildIndex().
  const FdIndexStats& index_stats() const { return index_stats_; }

 private:
  size_t num_columns_;
  std::vector<std::string> column_names_;
  std::vector<FdInputTuple> tuples_;  ///< legacy Build path only
  std::vector<uint32_t> table_ids_;   ///< table id per TID (both paths)
  uint32_t num_tables_ = 0;

  bool index_built_ = false;
  /// True once codes_ holds the interned rows (set by BuildInterned, or by
  /// BuildIndex phases 1–2 on the legacy path).
  bool codes_ready_ = false;
  ValueDict dict_;
  /// Session dictionary the rows were encoded against (BuildInterned); not
  /// owned, must outlive the problem. Null on the legacy path.
  const ValueDict* external_dict_ = nullptr;
  size_t value_copies_ = 0;      ///< see FdIndexStats::value_copies
  std::vector<uint32_t> codes_;  ///< num_tuples × num_columns interned cells

  // CSR join graph. Posting lists keep only multi-tuple lists (singletons
  // induce no edges). posting_offsets_ has one extra trailing entry; the
  // TIDs of posting p are posting_tids_[posting_offsets_[p] ..
  // posting_offsets_[p+1]). tuple_offsets_/tuple_postings_ map each TID to
  // the posting lists containing it.
  std::vector<uint64_t> posting_offsets_;
  std::vector<uint32_t> posting_tids_;
  std::vector<uint64_t> tuple_offsets_;
  std::vector<uint32_t> tuple_postings_;

  std::vector<std::vector<uint32_t>> components_;
  FdIndexStats index_stats_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_PROBLEM_H_
