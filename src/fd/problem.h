// FdProblem: the outer-union representation Full Disjunction operates on.
//
// Every input tuple is padded to the universal schema with nulls and tagged
// with its source table and a global tuple id (TID). Posting lists over
// (column, value) pairs induce the *join graph*: tuples sharing an equal
// non-null value on a universal column are joinable neighbors; its connected
// components partition the FD computation.
#ifndef LAKEFUZZ_FD_PROBLEM_H_
#define LAKEFUZZ_FD_PROBLEM_H_

#include <cstdint>
#include <vector>

#include "fd/aligned_schema.h"
#include "table/table.h"
#include "util/result.h"

namespace lakefuzz {

/// One null-padded input tuple.
struct FdInputTuple {
  uint32_t table_id = 0;
  /// Values over the universal schema (size = FdProblem::num_columns()).
  std::vector<Value> values;
};

/// A materialized Full Disjunction instance.
class FdProblem {
 public:
  FdProblem(size_t num_columns, std::vector<std::string> column_names)
      : num_columns_(num_columns), column_names_(std::move(column_names)) {}

  /// Outer-unions `tables` under `aligned` (validated first).
  static Result<FdProblem> Build(const std::vector<Table>& tables,
                                 const AlignedSchema& aligned);

  size_t num_columns() const { return num_columns_; }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  const std::vector<FdInputTuple>& tuples() const { return tuples_; }
  size_t num_tuples() const { return tuples_.size(); }

  /// Appends a tuple (used by Build and by tests constructing instances
  /// directly). `values` must have num_columns() entries.
  Status AddTuple(uint32_t table_id, std::vector<Value> values);

  /// TIDs adjacent to `tid` in the join graph: tuples sharing at least one
  /// equal non-null (column, value). Deduplicated, excludes `tid` itself.
  /// Requires BuildIndex() to have been called.
  const std::vector<uint32_t>& Neighbors(uint32_t tid) const;

  /// Connected components of the join graph, each a sorted TID list.
  /// Singleton tuples (no joinable partner) form singleton components.
  /// Requires BuildIndex().
  const std::vector<std::vector<uint32_t>>& Components() const;

  /// Builds posting lists, adjacency, and components. Idempotent.
  void BuildIndex();
  bool index_built() const { return index_built_; }

 private:
  size_t num_columns_;
  std::vector<std::string> column_names_;
  std::vector<FdInputTuple> tuples_;

  bool index_built_ = false;
  std::vector<std::vector<uint32_t>> adjacency_;
  std::vector<std::vector<uint32_t>> components_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_PROBLEM_H_
