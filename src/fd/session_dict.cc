#include "fd/session_dict.h"

namespace lakefuzz {

std::shared_ptr<const std::vector<uint32_t>> SessionDict::InternColumnLocked(
    const Table& table, size_t col) {
  const std::vector<Value>& values = table.ColumnValues(col);
  auto codes = std::make_shared<std::vector<uint32_t>>();
  codes->reserve(values.size());
  const size_t before = dict_.NumDistinct();
  for (const Value& v : values) codes->push_back(dict_.Intern(v));
  stats_.values_interned += dict_.NumDistinct() - before;
  return codes;
}

void SessionDict::PinTable(std::shared_ptr<const Table> table) {
  if (table == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  TableEntry& entry = cache_[table.get()];
  if (entry.pin == nullptr) entry.pin = std::move(table);
}

std::shared_ptr<const std::vector<uint32_t>> SessionDict::ColumnCodes(
    const Table& table, size_t col) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.column_requests;
  auto it = cache_.find(&table);
  if (it == cache_.end()) return InternColumnLocked(table, col);
  auto& columns = it->second.columns;
  if (columns.size() < table.NumColumns()) columns.resize(table.NumColumns());
  if (columns[col] != nullptr) {
    ++stats_.column_hits;
    return columns[col];
  }
  columns[col] = InternColumnLocked(table, col);
  return columns[col];
}

uint32_t SessionDict::InternValue(const Value& v) {
  if (v.is_null()) return ValueDict::kNullCode;
  std::lock_guard<std::mutex> lock(mu_);
  const size_t before = dict_.NumDistinct();
  const uint32_t code = dict_.Intern(v);
  stats_.values_interned += dict_.NumDistinct() - before;
  return code;
}

void SessionDict::DropTable(const Table* table) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.erase(table);
}

size_t SessionDict::NumDistinct() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dict_.NumDistinct();
}

SessionDict::Stats SessionDict::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lakefuzz
