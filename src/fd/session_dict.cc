#include "fd/session_dict.h"

namespace lakefuzz {

std::shared_ptr<const std::vector<uint32_t>> SessionDict::InternColumn(
    const Table& table, size_t col) {
  const std::vector<Value>& values = table.ColumnValues(col);
  auto codes = std::make_shared<std::vector<uint32_t>>();
  codes->reserve(values.size());
  uint64_t appended = 0;
  bool inserted = false;
  for (const Value& v : values) {
    codes->push_back(dict_.Intern(v, &inserted));
    appended += inserted ? 1 : 0;
  }
  values_interned_.fetch_add(appended, std::memory_order_relaxed);
  return codes;
}

void SessionDict::PinTable(std::shared_ptr<const Table> table) {
  if (table == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  TableEntry& entry = cache_[table.get()];
  if (entry.pin == nullptr) entry.pin = std::move(table);
}

void SessionDict::PinTableWithCodes(
    std::shared_ptr<const Table> table,
    std::vector<std::shared_ptr<const std::vector<uint32_t>>> columns) {
  if (table == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  TableEntry& entry = cache_[table.get()];
  if (entry.pin == nullptr) entry.pin = std::move(table);
  if (entry.columns.size() < columns.size()) {
    entry.columns.resize(columns.size());
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    if (entry.columns[c] == nullptr) entry.columns[c] = std::move(columns[c]);
  }
}

uint32_t SessionDict::RestoreValue(Value v, uint64_t hash) {
  if (v.is_null()) return ValueDict::kNullCode;
  bool inserted = false;
  const uint32_t code = dict_.InternHashed(std::move(v), hash, &inserted);
  if (inserted) values_interned_.fetch_add(1, std::memory_order_relaxed);
  return code;
}

std::shared_ptr<const std::vector<uint32_t>> SessionDict::ColumnCodes(
    const Table& table, size_t col) {
  column_requests_.fetch_add(1, std::memory_order_relaxed);
  bool pinned = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(&table);
    if (it != cache_.end()) {
      pinned = true;
      auto& columns = it->second.columns;
      if (columns.size() < table.NumColumns()) {
        columns.resize(table.NumColumns());
      }
      if (columns[col] != nullptr) {
        column_hits_.fetch_add(1, std::memory_order_relaxed);
        return columns[col];
      }
    }
  }
  // Cold column: intern outside the memo lock so concurrent registrations /
  // sketch builds only contend inside the dictionary's hash shards. A racing
  // thread computing the same column produces an identical span (the dict
  // deduplicates); first store wins below.
  auto codes = InternColumn(table, col);
  if (!pinned) return codes;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(&table);
  if (it == cache_.end()) return codes;  // dropped while interning
  auto& columns = it->second.columns;
  if (columns.size() < table.NumColumns()) columns.resize(table.NumColumns());
  if (columns[col] == nullptr) columns[col] = std::move(codes);
  return columns[col];
}

uint32_t SessionDict::InternValue(const Value& v) {
  bool inserted = false;
  const uint32_t code = dict_.Intern(v, &inserted);
  if (inserted) values_interned_.fetch_add(1, std::memory_order_relaxed);
  return code;
}

void SessionDict::DropTable(const Table* table) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.erase(table);
}

SessionDict::Stats SessionDict::stats() const {
  Stats out;
  out.column_requests = column_requests_.load(std::memory_order_relaxed);
  out.column_hits = column_hits_.load(std::memory_order_relaxed);
  out.values_interned = values_interned_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace lakefuzz
