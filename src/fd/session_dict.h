// SessionDict: a ValueDict whose lifetime spans an engine session, plus a
// per-registered-column code cache.
//
// FdProblem::Build used to copy every cell of every input table into padded
// outer-union rows and re-intern the whole lake on *each* request. A
// SessionDict removes both costs: the dictionary is owned by the LakeEngine
// (codes are stable for the session, so values interned by one request are
// free for every later one), and the interned code column of a registered
// table is memoized keyed by (table address, column) — a warm
// FdProblem::BuildInterned is a flat uint32 scatter with zero hashing and
// zero Value copies. The memoized code spans double as the input of
// discovery sketching (src/discovery/): ColumnCodes hands out the span and
// dict().HashOf supplies the content hash MinHash signatures are built
// over, so sketching a registered table re-hashes no strings.
//
// Thread safety: the underlying ValueDict is internally sharded
// (fd/value_dict.h), so concurrent cold interning — several tables
// registering or being sketched at once — contends per hash shard instead
// of serializing on one dictionary mutex. The SessionDict mutex only guards
// the per-table column memo; a memo miss computes its codes OUTSIDE that
// lock. Two threads racing on the same cold column both intern it (the
// dictionary deduplicates, so they produce identical spans) and one result
// is memoized. Decode / HashOf are deliberately lock-free: ValueDict's
// bucketed storage keeps decoded references stable under growth, so a
// request may stream-decode its result set while another request is still
// interning.
//
// Cache safety: only tables pinned via PinTable are ever memoized, and the
// pin is a shared_ptr — a cached table cannot be destroyed (and its address
// cannot be reused by an aliasing table) while its entry exists. Tables
// never pinned (rewrite-stage temporaries, ad-hoc callers) intern through
// the same dictionary but are recomputed per call. The engine pins every
// registration and calls DropTable when it is released.
#ifndef LAKEFUZZ_FD_SESSION_DICT_H_
#define LAKEFUZZ_FD_SESSION_DICT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fd/value_dict.h"
#include "table/table.h"

namespace lakefuzz {

class SessionDict {
 public:
  /// Cumulative traffic counters (observability; see LakeEngine accessors).
  struct Stats {
    uint64_t column_requests = 0;  ///< ColumnCodes calls
    uint64_t column_hits = 0;      ///< answered from the per-column cache
    uint64_t values_interned = 0;  ///< distinct values appended to the dict
  };

  /// The backing dictionary. Decode / HashOf on the returned reference are
  /// safe concurrently with interning (see file comment); Intern must go
  /// through ColumnCodes / InternValue.
  const ValueDict& dict() const { return dict_; }

  /// Marks `table` as a session-owned snapshot whose interned column codes
  /// may be memoized, pinning it alive for as long as the entry exists.
  void PinTable(std::shared_ptr<const Table> table);

  /// PinTable plus a pre-computed code memo: `columns[c]` must hold the
  /// interned codes of column c (length table.NumRows()). The catalog
  /// loader uses this to seed the memo from persisted code spans, so the
  /// first Integrate over a warm-loaded table interns nothing. First store
  /// wins per column; a table already pinned keeps any codes it has.
  void PinTableWithCodes(
      std::shared_ptr<const Table> table,
      std::vector<std::shared_ptr<const std::vector<uint32_t>>> columns);

  /// Interned codes for column `col` of `table`, length table.NumRows()
  /// (kNullCode for nulls). Memoized iff the table is pinned; otherwise
  /// computed per call (the dictionary still deduplicates values).
  /// Thread-safe; cold columns intern concurrently on the sharded dict.
  std::shared_ptr<const std::vector<uint32_t>> ColumnCodes(const Table& table,
                                                           size_t col);

  /// Interns one value (thread-safe; nulls map to kNullCode).
  uint32_t InternValue(const Value& v);

  /// Catalog-load form of InternValue: interns `v` under its persisted
  /// content `hash` (must equal v.Hash(); the catalog's golden hash test
  /// locks the function so persisted hashes stay valid across builds)
  /// without re-hashing the payload. Returns the session code — equal to
  /// the file code when loading into a fresh dictionary.
  uint32_t RestoreValue(Value v, uint64_t hash);

  /// Unpins `table` and drops its cached column codes. Codes already handed
  /// out stay valid (shared ownership); the dictionary never shrinks.
  void DropTable(const Table* table);

  /// Distinct non-null values interned so far.
  size_t NumDistinct() const { return dict_.NumDistinct(); }

  Stats stats() const;

 private:
  struct TableEntry {
    std::shared_ptr<const Table> pin;
    /// Per-column cached code vectors (null until first use).
    std::vector<std::shared_ptr<const std::vector<uint32_t>>> columns;
  };

  /// Interns one whole column; called outside mu_ (the dictionary is
  /// internally synchronized).
  std::shared_ptr<const std::vector<uint32_t>> InternColumn(
      const Table& table, size_t col);

  mutable std::mutex mu_;  ///< guards cache_ only
  ValueDict dict_;
  std::unordered_map<const Table*, TableEntry> cache_;
  std::atomic<uint64_t> column_requests_{0};
  std::atomic<uint64_t> column_hits_{0};
  std::atomic<uint64_t> values_interned_{0};
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_SESSION_DICT_H_
