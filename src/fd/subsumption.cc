#include "fd/subsumption.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <unordered_map>

#include "fd/posting_shards.h"
#include "fd/value_dict.h"
#include "util/hash.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace lakefuzz {

FdResultTuple DecodeCodeTuple(const FdCodeTuple& t, const ValueDict& dict) {
  FdResultTuple out;
  out.values.reserve(t.codes.size());
  for (uint32_t code : t.codes) out.values.push_back(dict.Decode(code));
  out.tids = t.tids;
  return out;
}

bool Subsumes(const FdResultTuple& b, const FdResultTuple& a) {
  assert(a.values.size() == b.values.size());
  for (size_t c = 0; c < a.values.size(); ++c) {
    if (a.values[c].is_null()) continue;
    if (b.values[c].is_null() || !(b.values[c] == a.values[c])) return false;
  }
  return true;
}

size_t NonNullCount(const FdResultTuple& t) {
  size_t n = 0;
  for (const auto& v : t.values) {
    if (!v.is_null()) ++n;
  }
  return n;
}

bool FdTupleLess(const FdResultTuple& a, const FdResultTuple& b) {
  if (a.tids != b.tids) return a.tids < b.tids;
  for (size_t c = 0; c < a.values.size() && c < b.values.size(); ++c) {
    if (a.values[c] == b.values[c]) continue;
    return a.values[c] < b.values[c];
  }
  return a.values.size() < b.values.size();
}

Table FdResultsToTable(const std::vector<FdResultTuple>& results,
                       const std::vector<std::string>& column_names,
                       const std::string& table_name,
                       bool include_provenance) {
  std::vector<std::string> names;
  if (include_provenance) names.push_back("TIDs");
  names.insert(names.end(), column_names.begin(), column_names.end());
  Table out(table_name, Schema::FromNames(names));
  for (const auto& r : results) {
    std::vector<Value> row;
    row.reserve(names.size());
    if (include_provenance) {
      std::string prov = "{";
      for (size_t i = 0; i < r.tids.size(); ++i) {
        if (i > 0) prov += ",";
        prov += StrFormat("t%u", r.tids[i]);
      }
      prov += "}";
      row.push_back(Value::String(std::move(prov)));
    }
    row.insert(row.end(), r.values.begin(), r.values.end());
    Status s = out.AppendRow(std::move(row));
    assert(s.ok());
    (void)s;
  }
  return out;
}

namespace {

uint64_t ValuesSignature(const FdResultTuple& t) {
  uint64_t h = 0x5ca1ab1e;
  for (size_t c = 0; c < t.values.size(); ++c) {
    if (t.values[c].is_null()) continue;
    h = HashCombine(h, HashCombine(Mix64(c), t.values[c].Hash()));
  }
  return h;
}

}  // namespace

std::vector<FdResultTuple> EliminateSubsumed(
    std::vector<FdResultTuple> tuples) {
  // Pass 1: collapse exact duplicates (same values). The survivor is the
  // copy with the most complete provenance (largest TID set), then the
  // lexicographically smallest — this makes the production enumerator
  // (which only materializes maximal sets) and the subset oracle agree
  // tuple-for-tuple, TIDs included.
  auto prefer = [](const FdResultTuple& a, const FdResultTuple& b) {
    if (a.tids.size() != b.tids.size()) {
      return a.tids.size() > b.tids.size();
    }
    return a.tids < b.tids;
  };
  std::unordered_map<uint64_t, std::vector<size_t>> by_sig;
  std::vector<char> dead(tuples.size(), 0);
  for (size_t i = 0; i < tuples.size(); ++i) {
    auto& bucket = by_sig[ValuesSignature(tuples[i])];
    bool merged = false;
    for (size_t j : bucket) {
      if (tuples[j].values == tuples[i].values) {
        if (prefer(tuples[i], tuples[j])) {
          std::swap(tuples[i], tuples[j]);
        }
        dead[i] = 1;
        merged = true;
        break;
      }
    }
    if (!merged) bucket.push_back(i);
  }

  // Pass 2: posting lists over live tuples; each tuple checks only tuples
  // sharing its rarest non-null (column, value).
  struct Key {
    size_t col;
    uint64_t vhash;
    bool operator==(const Key& o) const {
      return col == o.col && vhash == o.vhash;
    }
  };
  struct KeyHasher {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(HashCombine(Mix64(k.col), k.vhash));
    }
  };
  std::unordered_map<Key, std::vector<size_t>, KeyHasher> postings;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (dead[i]) continue;
    for (size_t c = 0; c < tuples[i].values.size(); ++c) {
      if (tuples[i].values[c].is_null()) continue;
      postings[Key{c, tuples[i].values[c].Hash()}].push_back(i);
    }
  }
  size_t live_count = 0;
  for (size_t i = 0; i < tuples.size(); ++i) live_count += !dead[i];
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (dead[i]) continue;
    size_t nn_i = NonNullCount(tuples[i]);
    if (nn_i == 0) {
      // All-null tuple: subsumed by any *other* tuple (vacuously); survives
      // only when it is the sole live tuple. Pass 1 collapsed all-null
      // duplicates to one, so live_count > 1 means a distinct tuple exists.
      if (live_count > 1) dead[i] = 1;
      continue;
    }
    // Rarest posting for tuple i.
    const std::vector<size_t>* best = nullptr;
    for (size_t c = 0; c < tuples[i].values.size(); ++c) {
      if (tuples[i].values[c].is_null()) continue;
      const auto& lst = postings[Key{c, tuples[i].values[c].Hash()}];
      if (best == nullptr || lst.size() < best->size()) best = &lst;
    }
    for (size_t j : *best) {
      if (j == i || dead[j]) continue;
      if (NonNullCount(tuples[j]) <= nn_i) continue;  // equal ⇒ duplicate, handled
      if (Subsumes(tuples[j], tuples[i])) {
        dead[i] = 1;
        break;
      }
    }
  }

  std::vector<FdResultTuple> out;
  out.reserve(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (!dead[i]) out.push_back(std::move(tuples[i]));
  }
  std::sort(out.begin(), out.end(), FdTupleLess);
  return out;
}

namespace {

uint64_t CodesSignature(const FdCodeTuple& t) {
  uint64_t h = 0x5ca1ab1e;
  for (size_t c = 0; c < t.codes.size(); ++c) {
    if (t.codes[c] == ValueDict::kNullCode) continue;
    h = HashCombine(h, HashCombine(Mix64(c), Mix64(t.codes[c])));
  }
  return h;
}

/// Code-row form of Subsumes: b agrees wherever a is non-null.
bool SubsumesCodes(const FdCodeTuple& b, const FdCodeTuple& a) {
  for (size_t c = 0; c < a.codes.size(); ++c) {
    const uint32_t ac = a.codes[c];
    if (ac == ValueDict::kNullCode) continue;
    if (b.codes[c] != ac) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<FdCodeTuple>> EliminateSubsumedCodes(
    std::vector<FdCodeTuple> tuples, ThreadPool* pool,
    const RequestContext* ctx) {
  const size_t n = tuples.size();
  if (n == 0) return tuples;

  // Cancel/deadline checkpoints: parallel passes flag a stop at amortized
  // intervals and drain as no-ops (a lambda cannot early-return the loop);
  // the typed status is re-derived between passes on the driving thread.
  std::atomic<bool> stop_flag{false};
  auto stopped = [&](size_t i) {
    if (ctx == nullptr) return false;
    if ((i & 0xfff) == 0 && !ctx->CheckStop("subsumption").ok()) {
      stop_flag.store(true, std::memory_order_relaxed);
    }
    return stop_flag.load(std::memory_order_relaxed);
  };
  auto check_stop = [&]() {
    return ctx == nullptr ? Status::OK() : ctx->CheckStop("subsumption");
  };

  // Signatures and non-null counts are pure per tuple → parallel.
  std::vector<uint64_t> sig(n);
  std::vector<uint32_t> nn(n);
  MaybeParallelFor(pool, n, [&](size_t i) {
    if (stopped(i)) return;
    sig[i] = CodesSignature(tuples[i]);
    uint32_t count = 0;
    for (uint32_t code : tuples[i].codes) {
      count += code != ValueDict::kNullCode;
    }
    nn[i] = count;
  });
  LAKEFUZZ_RETURN_IF_ERROR(check_stop());

  // Pass 1 (serial): collapse exact duplicates (same codes). The survivor —
  // most complete provenance, then lexicographically smallest TIDs — is a
  // running maximum under a total preference, so it does not depend on the
  // order the executors appended results in.
  auto prefer = [](const FdCodeTuple& a, const FdCodeTuple& b) {
    if (a.tids.size() != b.tids.size()) {
      return a.tids.size() > b.tids.size();
    }
    return a.tids < b.tids;
  };
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_sig;
  by_sig.reserve(n);
  std::vector<char> dead(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    if ((i & 0xfff) == 0) LAKEFUZZ_RETURN_IF_ERROR(check_stop());
    auto& bucket = by_sig[sig[i]];
    bool merged = false;
    for (uint32_t j : bucket) {
      if (tuples[j].codes == tuples[i].codes) {
        // nn/sig depend only on codes, so the swap keeps them consistent.
        if (prefer(tuples[i], tuples[j])) std::swap(tuples[i], tuples[j]);
        dead[i] = 1;
        merged = true;
        break;
      }
    }
    if (!merged) bucket.push_back(i);
  }

  // Pass 2: sharded posting lists over live tuples, keyed by (column, code)
  // (fd/posting_shards.h).
  const size_t cols = tuples[0].codes.size();
  std::vector<PostingShard> shard = BuildPostingShards(
      pool, n, cols, [&](uint32_t i) -> const uint32_t* {
        return dead[i] ? nullptr : tuples[i].codes.data();
      });
  const size_t shards = shard.size();
  LAKEFUZZ_RETURN_IF_ERROR(check_stop());

  // Pass 3: each tuple checks only the tuples sharing its rarest non-null
  // (column, code). Runs against the pass-1 snapshot of `dead`, which gives
  // the same survivor set as the sequential in-place version: any subsumer
  // that is itself subsumed is subsumed by a strictly-more-complete live
  // tuple appearing in the same posting lists, so reachability of a live
  // subsumer is order-independent.
  size_t live_count = 0;
  for (size_t i = 0; i < n; ++i) live_count += !dead[i];
  std::vector<char> dead_out = dead;
  MaybeParallelFor(pool, n, [&](size_t i) {
    if (stopped(i) || dead[i]) return;
    const uint32_t nn_i = nn[i];
    if (nn_i == 0) {
      // All-null tuple: subsumed by any *other* tuple (vacuously); survives
      // only when it is the sole live tuple. Pass 1 collapsed all-null
      // duplicates to one, so live_count > 1 means a distinct tuple exists.
      if (live_count > 1) dead_out[i] = 1;
      return;
    }
    const auto& codes = tuples[i].codes;
    const std::vector<uint32_t>* best = nullptr;
    for (size_t c = 0; c < codes.size(); ++c) {
      if (codes[c] == ValueDict::kNullCode) continue;
      const uint64_t key = PostingKey(c, codes[c]);
      const PostingShard& sh = shard[PostingShardOf(key, shards)];
      const auto& lst = sh.lists[sh.index.find(key)->second];
      if (best == nullptr || lst.size() < best->size()) best = &lst;
    }
    for (uint32_t j : *best) {
      if (j == i || dead[j]) continue;
      if (nn[j] <= nn_i) continue;  // equal ⇒ duplicate, handled in pass 1
      if (SubsumesCodes(tuples[j], tuples[i])) {
        dead_out[i] = 1;
        break;
      }
    }
  });

  LAKEFUZZ_RETURN_IF_ERROR(check_stop());

  // Surviving FD tuples never share a TID set (values are a function of the
  // member set, and identical code rows were collapsed in pass 1), so TID
  // order alone is total — and matches FdTupleLess on the decoded tuples.
  std::vector<FdCodeTuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!dead_out[i]) out.push_back(std::move(tuples[i]));
  }
  std::sort(out.begin(), out.end(),
            [](const FdCodeTuple& a, const FdCodeTuple& b) {
              return a.tids < b.tids;
            });
  return out;
}

}  // namespace lakefuzz
