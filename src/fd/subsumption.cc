#include "fd/subsumption.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"
#include "util/str.h"

namespace lakefuzz {

bool Subsumes(const FdResultTuple& b, const FdResultTuple& a) {
  assert(a.values.size() == b.values.size());
  for (size_t c = 0; c < a.values.size(); ++c) {
    if (a.values[c].is_null()) continue;
    if (b.values[c].is_null() || !(b.values[c] == a.values[c])) return false;
  }
  return true;
}

size_t NonNullCount(const FdResultTuple& t) {
  size_t n = 0;
  for (const auto& v : t.values) {
    if (!v.is_null()) ++n;
  }
  return n;
}

bool FdTupleLess(const FdResultTuple& a, const FdResultTuple& b) {
  if (a.tids != b.tids) return a.tids < b.tids;
  for (size_t c = 0; c < a.values.size() && c < b.values.size(); ++c) {
    if (a.values[c] == b.values[c]) continue;
    return a.values[c] < b.values[c];
  }
  return a.values.size() < b.values.size();
}

Table FdResultsToTable(const std::vector<FdResultTuple>& results,
                       const std::vector<std::string>& column_names,
                       const std::string& table_name,
                       bool include_provenance) {
  std::vector<std::string> names;
  if (include_provenance) names.push_back("TIDs");
  names.insert(names.end(), column_names.begin(), column_names.end());
  Table out(table_name, Schema::FromNames(names));
  for (const auto& r : results) {
    std::vector<Value> row;
    row.reserve(names.size());
    if (include_provenance) {
      std::string prov = "{";
      for (size_t i = 0; i < r.tids.size(); ++i) {
        if (i > 0) prov += ",";
        prov += StrFormat("t%u", r.tids[i]);
      }
      prov += "}";
      row.push_back(Value::String(std::move(prov)));
    }
    row.insert(row.end(), r.values.begin(), r.values.end());
    Status s = out.AppendRow(std::move(row));
    assert(s.ok());
    (void)s;
  }
  return out;
}

namespace {

uint64_t ValuesSignature(const FdResultTuple& t) {
  uint64_t h = 0x5ca1ab1e;
  for (size_t c = 0; c < t.values.size(); ++c) {
    if (t.values[c].is_null()) continue;
    h = HashCombine(h, HashCombine(Mix64(c), t.values[c].Hash()));
  }
  return h;
}

}  // namespace

std::vector<FdResultTuple> EliminateSubsumed(
    std::vector<FdResultTuple> tuples) {
  // Pass 1: collapse exact duplicates (same values). The survivor is the
  // copy with the most complete provenance (largest TID set), then the
  // lexicographically smallest — this makes the production enumerator
  // (which only materializes maximal sets) and the subset oracle agree
  // tuple-for-tuple, TIDs included.
  auto prefer = [](const FdResultTuple& a, const FdResultTuple& b) {
    if (a.tids.size() != b.tids.size()) {
      return a.tids.size() > b.tids.size();
    }
    return a.tids < b.tids;
  };
  std::unordered_map<uint64_t, std::vector<size_t>> by_sig;
  std::vector<char> dead(tuples.size(), 0);
  for (size_t i = 0; i < tuples.size(); ++i) {
    auto& bucket = by_sig[ValuesSignature(tuples[i])];
    bool merged = false;
    for (size_t j : bucket) {
      if (tuples[j].values == tuples[i].values) {
        if (prefer(tuples[i], tuples[j])) {
          std::swap(tuples[i], tuples[j]);
        }
        dead[i] = 1;
        merged = true;
        break;
      }
    }
    if (!merged) bucket.push_back(i);
  }

  // Pass 2: posting lists over live tuples; each tuple checks only tuples
  // sharing its rarest non-null (column, value).
  struct Key {
    size_t col;
    uint64_t vhash;
    bool operator==(const Key& o) const {
      return col == o.col && vhash == o.vhash;
    }
  };
  struct KeyHasher {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(HashCombine(Mix64(k.col), k.vhash));
    }
  };
  std::unordered_map<Key, std::vector<size_t>, KeyHasher> postings;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (dead[i]) continue;
    for (size_t c = 0; c < tuples[i].values.size(); ++c) {
      if (tuples[i].values[c].is_null()) continue;
      postings[Key{c, tuples[i].values[c].Hash()}].push_back(i);
    }
  }
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (dead[i]) continue;
    size_t nn_i = NonNullCount(tuples[i]);
    if (nn_i == 0) {
      // All-null tuple: subsumed by anything; only survives alone.
      if (tuples.size() > 1) dead[i] = 1;
      continue;
    }
    // Rarest posting for tuple i.
    const std::vector<size_t>* best = nullptr;
    for (size_t c = 0; c < tuples[i].values.size(); ++c) {
      if (tuples[i].values[c].is_null()) continue;
      const auto& lst = postings[Key{c, tuples[i].values[c].Hash()}];
      if (best == nullptr || lst.size() < best->size()) best = &lst;
    }
    for (size_t j : *best) {
      if (j == i || dead[j]) continue;
      if (NonNullCount(tuples[j]) <= nn_i) continue;  // equal ⇒ duplicate, handled
      if (Subsumes(tuples[j], tuples[i])) {
        dead[i] = 1;
        break;
      }
    }
  }

  std::vector<FdResultTuple> out;
  out.reserve(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (!dead[i]) out.push_back(std::move(tuples[i]));
  }
  std::sort(out.begin(), out.end(), FdTupleLess);
  return out;
}

}  // namespace lakefuzz
