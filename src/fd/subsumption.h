// Subsumption elimination: the final step of Full Disjunction.
//
// A result tuple is dropped when another result carries all its information
// (agrees on its non-null values and has at least as many). Duplicates are
// collapsed to the copy with the lexicographically smallest provenance, so
// output is deterministic.
#ifndef LAKEFUZZ_FD_SUBSUMPTION_H_
#define LAKEFUZZ_FD_SUBSUMPTION_H_

#include <vector>

#include "fd/fd_tuple.h"

namespace lakefuzz {

/// Removes subsumed and duplicate tuples. Output is sorted by FdTupleLess.
///
/// Complexity: near-linear via (column, value) posting lists — a tuple can
/// only be subsumed by one sharing its rarest non-null value — instead of
/// all-pairs comparison.
std::vector<FdResultTuple> EliminateSubsumed(
    std::vector<FdResultTuple> tuples);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_SUBSUMPTION_H_
