// Subsumption elimination: the final step of Full Disjunction.
//
// A result tuple is dropped when another result carries all its information
// (agrees on its non-null values and has at least as many). Duplicates are
// collapsed to the copy with the lexicographically smallest provenance, so
// output is deterministic.
#ifndef LAKEFUZZ_FD_SUBSUMPTION_H_
#define LAKEFUZZ_FD_SUBSUMPTION_H_

#include <vector>

#include "fd/fd_tuple.h"
#include "util/request_context.h"
#include "util/result.h"

namespace lakefuzz {

class ThreadPool;

/// Removes subsumed and duplicate tuples. Output is sorted by FdTupleLess.
///
/// Complexity: near-linear via (column, value) posting lists — a tuple can
/// only be subsumed by one sharing its rarest non-null value — instead of
/// all-pairs comparison.
std::vector<FdResultTuple> EliminateSubsumed(
    std::vector<FdResultTuple> tuples);

/// Interned-code twin of EliminateSubsumed — the FD executors' hot path.
/// Same algorithm and identical output (modulo decoding), but comparisons
/// and posting keys are flat uint32 codes, and the posting-list bucketing
/// plus the per-tuple subsumption scans run on `pool` when provided
/// (results are independent of the thread count). Output is sorted by TID
/// list, which is a total order here: distinct surviving FD tuples never
/// share a TID set.
///
/// When `ctx` is non-null its cancel token and deadline are polled at
/// amortized checkpoints inside every pass; a stop surfaces as
/// kCancelled / kDeadlineExceeded (subsumption has no partial output — the
/// caller decides whether that truncates the request).
Result<std::vector<FdCodeTuple>> EliminateSubsumedCodes(
    std::vector<FdCodeTuple> tuples, ThreadPool* pool = nullptr,
    const RequestContext* ctx = nullptr);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_SUBSUMPTION_H_
