#include "fd/value_dict.h"

#include <cassert>

namespace lakefuzz {

uint32_t ValueDict::InternHashed(const Value& v, uint64_t hash) {
  assert(!v.is_null());
  const size_t mask = slots_.size() - 1;
  size_t s = static_cast<size_t>(hash) & mask;
  while (true) {
    uint32_t code = slots_[s];
    if (code == kNullCode) break;
    // 64-bit hash equality first: a full Value compare only runs on repeat
    // occurrences of the same value (the common case) or true collisions.
    if (hashes_[code] == hash && values_[code] == v) return code;
    s = (s + 1) & mask;
  }
  uint32_t code = static_cast<uint32_t>(values_.size());
  values_.push_back(v);
  hashes_.push_back(hash);
  slots_[s] = code;
  // Grow at ~0.7 load to keep probe chains short.
  if (values_.size() * 10 >= slots_.size() * 7) Rehash(slots_.size() * 2);
  return code;
}

uint32_t ValueDict::Find(const Value& v) const {
  if (v.is_null()) return kNullCode;
  const uint64_t hash = v.Hash();
  const size_t mask = slots_.size() - 1;
  size_t s = static_cast<size_t>(hash) & mask;
  while (true) {
    uint32_t code = slots_[s];
    if (code == kNullCode) return kNullCode;
    if (hashes_[code] == hash && values_[code] == v) return code;
    s = (s + 1) & mask;
  }
}

void ValueDict::Reserve(size_t expected) {
  values_.reserve(expected + 1);
  hashes_.reserve(expected + 1);
  size_t want = kInitialSlots;
  while (want * 7 < (expected + 1) * 10) want <<= 1;
  if (want > slots_.size()) Rehash(want);
}

void ValueDict::Rehash(size_t new_slot_count) {
  slots_.assign(new_slot_count, kNullCode);
  const size_t mask = new_slot_count - 1;
  for (uint32_t code = 1; code < values_.size(); ++code) {
    size_t s = static_cast<size_t>(hashes_[code]) & mask;
    while (slots_[s] != kNullCode) s = (s + 1) & mask;
    slots_[s] = code;
  }
}

}  // namespace lakefuzz
