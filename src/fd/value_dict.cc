#include "fd/value_dict.h"

#include <cassert>

namespace lakefuzz {

ValueDict::ValueDict() {
  for (auto& b : buckets_) b.store(nullptr, std::memory_order_relaxed);
  for (auto& b : hash_buckets_) b.store(nullptr, std::memory_order_relaxed);
  // Code 0 = null: bucket 0 is allocated eagerly so Decode(kNullCode) /
  // HashOf(kNullCode) work on a fresh dictionary (default Value is null,
  // zero-initialized hash is 0).
  EnsureBucket(0);
  for (auto& sh : shards_) sh.slots.assign(kInitialSlots, kNullCode);
}

ValueDict::~ValueDict() { FreeBuckets(); }

void ValueDict::FreeBuckets() {
  for (auto& b : buckets_) {
    delete[] b.load(std::memory_order_relaxed);
    b.store(nullptr, std::memory_order_relaxed);
  }
  for (auto& b : hash_buckets_) {
    delete[] b.load(std::memory_order_relaxed);
    b.store(nullptr, std::memory_order_relaxed);
  }
  size_.store(1, std::memory_order_relaxed);
}

void ValueDict::CopyFrom(const ValueDict& other) {
  // Copy/assignment are documented as non-concurrent: `other` is quiescent.
  const uint32_t n = other.size_.load(std::memory_order_relaxed);
  EnsureBucket(0);
  for (uint32_t code = 1; code < n; ++code) {
    const size_t b = BucketOf(code);
    EnsureBucket(b);
    const size_t off = code - BucketBase(b);
    buckets_[b].load(std::memory_order_relaxed)[off] = other.Decode(code);
    hash_buckets_[b].load(std::memory_order_relaxed)[off] =
        other.HashOf(code);
  }
  size_.store(n, std::memory_order_relaxed);
  for (size_t s = 0; s < kShards; ++s) {
    shards_[s].slots = other.shards_[s].slots;
    shards_[s].used = other.shards_[s].used;
  }
}

ValueDict::ValueDict(const ValueDict& other) {
  for (auto& b : buckets_) b.store(nullptr, std::memory_order_relaxed);
  for (auto& b : hash_buckets_) b.store(nullptr, std::memory_order_relaxed);
  CopyFrom(other);
}

ValueDict& ValueDict::operator=(const ValueDict& other) {
  if (this == &other) return *this;
  FreeBuckets();
  CopyFrom(other);
  return *this;
}

ValueDict::ValueDict(ValueDict&& other) noexcept {
  size_.store(other.size_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  for (size_t b = 0; b < kMaxBuckets; ++b) {
    buckets_[b].store(other.buckets_[b].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    other.buckets_[b].store(nullptr, std::memory_order_relaxed);
    hash_buckets_[b].store(
        other.hash_buckets_[b].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other.hash_buckets_[b].store(nullptr, std::memory_order_relaxed);
  }
  for (size_t s = 0; s < kShards; ++s) {
    shards_[s].slots = std::move(other.shards_[s].slots);
    shards_[s].used = other.shards_[s].used;
    other.shards_[s].used = 0;
  }
  other.size_.store(1, std::memory_order_relaxed);
}

ValueDict& ValueDict::operator=(ValueDict&& other) noexcept {
  if (this == &other) return *this;
  FreeBuckets();
  size_.store(other.size_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  for (size_t b = 0; b < kMaxBuckets; ++b) {
    buckets_[b].store(other.buckets_[b].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    other.buckets_[b].store(nullptr, std::memory_order_relaxed);
    hash_buckets_[b].store(
        other.hash_buckets_[b].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other.hash_buckets_[b].store(nullptr, std::memory_order_relaxed);
  }
  for (size_t s = 0; s < kShards; ++s) {
    shards_[s].slots = std::move(other.shards_[s].slots);
    shards_[s].used = other.shards_[s].used;
    other.shards_[s].used = 0;
  }
  other.size_.store(1, std::memory_order_relaxed);
  return *this;
}

void ValueDict::EnsureBucket(size_t b) {
  if (buckets_[b].load(std::memory_order_acquire) != nullptr) return;
  std::lock_guard<std::mutex> lock(alloc_mu_);
  if (buckets_[b].load(std::memory_order_relaxed) != nullptr) return;
  // Value-initialize both arrays (null Values, zero hashes) BEFORE the
  // release publish, so a concurrent reader that wins the pointer race
  // never observes uninitialized slots.
  auto* hashes = new uint64_t[BucketCapacity(b)]();
  auto* values = new Value[BucketCapacity(b)];
  hash_buckets_[b].store(hashes, std::memory_order_release);
  buckets_[b].store(values, std::memory_order_release);
}

uint32_t ValueDict::Append(const Value& v, uint64_t hash) {
  const uint32_t code = size_.fetch_add(1, std::memory_order_acq_rel);
  assert(code != UINT32_MAX && "ValueDict code space exhausted");
  const size_t b = BucketOf(code);
  EnsureBucket(b);
  const size_t off = code - BucketBase(b);
  buckets_[b].load(std::memory_order_relaxed)[off] = v;
  hash_buckets_[b].load(std::memory_order_relaxed)[off] = hash;
  return code;
}

uint32_t ValueDict::Append(Value&& v, uint64_t hash) {
  const uint32_t code = size_.fetch_add(1, std::memory_order_acq_rel);
  assert(code != UINT32_MAX && "ValueDict code space exhausted");
  const size_t b = BucketOf(code);
  EnsureBucket(b);
  const size_t off = code - BucketBase(b);
  buckets_[b].load(std::memory_order_relaxed)[off] = std::move(v);
  hash_buckets_[b].load(std::memory_order_relaxed)[off] = hash;
  return code;
}

uint32_t ValueDict::InternHashed(Value&& v, uint64_t hash, bool* inserted) {
  assert(!v.is_null());
  Shard& sh = shards_[ShardOf(hash)];
  std::lock_guard<std::mutex> lock(sh.mu);
  const size_t mask = sh.slots.size() - 1;
  size_t s = static_cast<size_t>(hash) & mask;
  while (true) {
    uint32_t code = sh.slots[s];
    if (code == kNullCode) break;
    if (HashOf(code) == hash && Decode(code) == v) {
      if (inserted != nullptr) *inserted = false;
      return code;
    }
    s = (s + 1) & mask;
  }
  const uint32_t code = Append(std::move(v), hash);
  sh.slots[s] = code;
  ++sh.used;
  if (sh.used * 10 >= sh.slots.size() * 7) {
    RehashShard(sh, sh.slots.size() * 2);
  }
  if (inserted != nullptr) *inserted = true;
  return code;
}

uint32_t ValueDict::InternHashed(const Value& v, uint64_t hash,
                                 bool* inserted) {
  assert(!v.is_null());
  Shard& sh = shards_[ShardOf(hash)];
  std::lock_guard<std::mutex> lock(sh.mu);
  const size_t mask = sh.slots.size() - 1;
  size_t s = static_cast<size_t>(hash) & mask;
  while (true) {
    uint32_t code = sh.slots[s];
    if (code == kNullCode) break;
    // 64-bit hash equality first: a full Value compare only runs on repeat
    // occurrences of the same value (the common case) or true collisions.
    if (HashOf(code) == hash && Decode(code) == v) {
      if (inserted != nullptr) *inserted = false;
      return code;
    }
    s = (s + 1) & mask;
  }
  const uint32_t code = Append(v, hash);
  sh.slots[s] = code;
  ++sh.used;
  // Grow at ~0.7 load to keep probe chains short.
  if (sh.used * 10 >= sh.slots.size() * 7) {
    RehashShard(sh, sh.slots.size() * 2);
  }
  if (inserted != nullptr) *inserted = true;
  return code;
}

uint32_t ValueDict::Find(const Value& v) const {
  if (v.is_null()) return kNullCode;
  const uint64_t hash = v.Hash();
  const Shard& sh = shards_[ShardOf(hash)];
  std::lock_guard<std::mutex> lock(sh.mu);
  const size_t mask = sh.slots.size() - 1;
  size_t s = static_cast<size_t>(hash) & mask;
  while (true) {
    uint32_t code = sh.slots[s];
    if (code == kNullCode) return kNullCode;
    if (HashOf(code) == hash && Decode(code) == v) return code;
    s = (s + 1) & mask;
  }
}

void ValueDict::Reserve(size_t expected) {
  // Assume an even hash spread; each shard takes its slice.
  const size_t per_shard = expected / kShards + 1;
  size_t want = kInitialSlots;
  while (want * 7 < per_shard * 10) want <<= 1;
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    if (want > sh.slots.size()) RehashShard(sh, want);
  }
}

void ValueDict::RehashShard(Shard& shard, size_t new_slot_count) const {
  std::vector<uint32_t> old = std::move(shard.slots);
  shard.slots.assign(new_slot_count, kNullCode);
  const size_t mask = new_slot_count - 1;
  for (uint32_t code : old) {
    if (code == kNullCode) continue;
    size_t s = static_cast<size_t>(HashOf(code)) & mask;
    while (shard.slots[s] != kNullCode) s = (s + 1) & mask;
    shard.slots[s] = code;
  }
}

}  // namespace lakefuzz
