#include "fd/value_dict.h"

#include <cassert>

namespace lakefuzz {

ValueDict::ValueDict() {
  for (auto& b : buckets_) b.store(nullptr, std::memory_order_relaxed);
  Append(Value::Null());  // code 0 = null
  hashes_.push_back(0);
  slots_.assign(kInitialSlots, kNullCode);
}

ValueDict::~ValueDict() { FreeBuckets(); }

void ValueDict::FreeBuckets() {
  for (auto& b : buckets_) {
    delete[] b.load(std::memory_order_relaxed);
    b.store(nullptr, std::memory_order_relaxed);
  }
  size_ = 0;
}

void ValueDict::CopyFrom(const ValueDict& other) {
  hashes_ = other.hashes_;
  slots_ = other.slots_;
  for (size_t code = 0; code < other.size_; ++code) {
    Append(other.Decode(static_cast<uint32_t>(code)));
  }
}

ValueDict::ValueDict(const ValueDict& other) {
  for (auto& b : buckets_) b.store(nullptr, std::memory_order_relaxed);
  CopyFrom(other);
}

ValueDict& ValueDict::operator=(const ValueDict& other) {
  if (this == &other) return *this;
  FreeBuckets();
  CopyFrom(other);
  return *this;
}

ValueDict::ValueDict(ValueDict&& other) noexcept
    : size_(other.size_),
      hashes_(std::move(other.hashes_)),
      slots_(std::move(other.slots_)) {
  for (size_t b = 0; b < kMaxBuckets; ++b) {
    buckets_[b].store(other.buckets_[b].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    other.buckets_[b].store(nullptr, std::memory_order_relaxed);
  }
  other.size_ = 0;
}

ValueDict& ValueDict::operator=(ValueDict&& other) noexcept {
  if (this == &other) return *this;
  FreeBuckets();
  size_ = other.size_;
  hashes_ = std::move(other.hashes_);
  slots_ = std::move(other.slots_);
  for (size_t b = 0; b < kMaxBuckets; ++b) {
    buckets_[b].store(other.buckets_[b].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    other.buckets_[b].store(nullptr, std::memory_order_relaxed);
  }
  other.size_ = 0;
  return *this;
}

void ValueDict::Append(const Value& v) {
  const uint32_t code = static_cast<uint32_t>(size_);
  const size_t b = BucketOf(code);
  Value* bucket = buckets_[b].load(std::memory_order_relaxed);
  if (bucket == nullptr) {
    bucket = new Value[BucketCapacity(b)];
    // Release-publish so a concurrent Decode that reads the pointer sees
    // fully constructed (null) slots; the slot written below is only read
    // by threads that obtained `code` with its own happens-before edge.
    buckets_[b].store(bucket, std::memory_order_release);
  }
  bucket[code - BucketBase(b)] = v;
  ++size_;
}

uint32_t ValueDict::InternHashed(const Value& v, uint64_t hash) {
  assert(!v.is_null());
  const size_t mask = slots_.size() - 1;
  size_t s = static_cast<size_t>(hash) & mask;
  while (true) {
    uint32_t code = slots_[s];
    if (code == kNullCode) break;
    // 64-bit hash equality first: a full Value compare only runs on repeat
    // occurrences of the same value (the common case) or true collisions.
    if (hashes_[code] == hash && Decode(code) == v) return code;
    s = (s + 1) & mask;
  }
  uint32_t code = static_cast<uint32_t>(size_);
  Append(v);
  hashes_.push_back(hash);
  slots_[s] = code;
  // Grow at ~0.7 load to keep probe chains short.
  if (size_ * 10 >= slots_.size() * 7) Rehash(slots_.size() * 2);
  return code;
}

uint32_t ValueDict::Find(const Value& v) const {
  if (v.is_null()) return kNullCode;
  const uint64_t hash = v.Hash();
  const size_t mask = slots_.size() - 1;
  size_t s = static_cast<size_t>(hash) & mask;
  while (true) {
    uint32_t code = slots_[s];
    if (code == kNullCode) return kNullCode;
    if (hashes_[code] == hash && Decode(code) == v) return code;
    s = (s + 1) & mask;
  }
}

void ValueDict::Reserve(size_t expected) {
  hashes_.reserve(expected + 1);
  size_t want = kInitialSlots;
  while (want * 7 < (expected + 1) * 10) want <<= 1;
  if (want > slots_.size()) Rehash(want);
}

void ValueDict::Rehash(size_t new_slot_count) {
  slots_.assign(new_slot_count, kNullCode);
  const size_t mask = new_slot_count - 1;
  for (uint32_t code = 1; code < size_; ++code) {
    size_t s = static_cast<size_t>(hashes_[code]) & mask;
    while (slots_[s] != kNullCode) s = (s + 1) & mask;
    slots_[s] = code;
  }
}

}  // namespace lakefuzz
