// ValueDict: per-problem interning of cell values into dense integer codes.
//
// Full Disjunction only ever asks two questions of a cell: "is it null?" and
// "is it equal to that other cell?". Both are answered by a dictionary code:
// tuples become flat uint32 rows, the enumerator's merge/consistency loops
// compare integers instead of heap-backed Values, and posting-list keys are
// (column, code) integer pairs. Values are decoded back only when the final
// result tuples are materialized.
#ifndef LAKEFUZZ_FD_VALUE_DICT_H_
#define LAKEFUZZ_FD_VALUE_DICT_H_

#include <cstdint>
#include <vector>

#include "table/value.h"

namespace lakefuzz {

/// Interns distinct non-null Values into dense uint32 codes. Code 0 is
/// reserved for null; non-null values get 1, 2, ... in first-intern order,
/// so a fixed intern sequence yields identical codes on every run.
///
/// Internally an open-addressing table over 64-bit value hashes. Callers
/// that already computed v.Hash() (FdProblem::BuildIndex hashes all cells in
/// a parallel pre-pass) intern without re-hashing via InternHashed.
class ValueDict {
 public:
  static constexpr uint32_t kNullCode = 0;

  ValueDict() {
    values_.emplace_back();  // code 0 = null
    hashes_.push_back(0);
    slots_.assign(kInitialSlots, kNullCode);
  }

  /// Interns `v`; nulls map to kNullCode without touching the table.
  uint32_t Intern(const Value& v) {
    if (v.is_null()) return kNullCode;
    return InternHashed(v, v.Hash());
  }

  /// Intern with a precomputed hash; `hash` must equal v.Hash() and `v` must
  /// be non-null.
  uint32_t InternHashed(const Value& v, uint64_t hash);

  /// Code of `v`: kNullCode when null or never interned.
  uint32_t Find(const Value& v) const;

  /// Value for a code returned by Intern; Decode(kNullCode) is null.
  const Value& Decode(uint32_t code) const { return values_[code]; }

  /// Distinct non-null values interned so far.
  size_t NumDistinct() const { return values_.size() - 1; }

  /// Pre-sizes the table for `expected` distinct non-null values.
  void Reserve(size_t expected);

 private:
  static constexpr size_t kInitialSlots = 16;  // power of two

  void Rehash(size_t new_slot_count);

  std::vector<Value> values_;     ///< code → value; [0] = null
  std::vector<uint64_t> hashes_;  ///< code → hash; [0] unused
  std::vector<uint32_t> slots_;   ///< open-addressing table of codes; 0 = empty
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_VALUE_DICT_H_
