// ValueDict: interning of cell values into dense integer codes.
//
// Full Disjunction only ever asks two questions of a cell: "is it null?" and
// "is it equal to that other cell?". Both are answered by a dictionary code:
// tuples become flat uint32 rows, the enumerator's merge/consistency loops
// compare integers instead of heap-backed Values, and posting-list keys are
// (column, code) integer pairs. Values are decoded back only when the final
// result tuples are materialized.
#ifndef LAKEFUZZ_FD_VALUE_DICT_H_
#define LAKEFUZZ_FD_VALUE_DICT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "table/value.h"

namespace lakefuzz {

/// Interns distinct non-null Values into uint32 codes. Code 0 is reserved
/// for null; non-null values get 1, 2, ... in first-intern order, so a fixed
/// intern sequence yields identical codes on every run. (Concurrent
/// interners — see below — may interleave allocations; codes stay dense and
/// session-consistent, but their numeric order then depends on scheduling.
/// Nothing downstream orders by code value: the FD core uses codes as
/// equality keys only and sorts results by TID sets / decoded Values.)
///
/// Thread safety: Intern / InternHashed / Find are safe to call
/// concurrently. The hash index is bucketed into independently locked
/// shards (selected by value hash), so concurrent cold interning — e.g.
/// several tables registering into one engine session while discovery
/// sketches them — contends only within a shard instead of serializing on
/// one dictionary mutex. Copy/move/Reserve are NOT thread-safe; callers
/// quiesce the dictionary first.
///
/// Decoded values live in append-only geometric buckets (bucket b holds
/// 1024·2^b slots), so the `const Value&` returned by Decode — and the
/// 64-bit content hash returned by HashOf — stay valid and lock-free no
/// matter how much the dictionary grows afterwards. Any thread may Decode /
/// HashOf codes it obtained through a happens-before edge (a completed
/// Intern on this thread, or codes handed over under a lock) concurrently
/// with further interning.
class ValueDict {
 public:
  static constexpr uint32_t kNullCode = 0;

  ValueDict();
  ~ValueDict();

  ValueDict(const ValueDict& other);
  ValueDict& operator=(const ValueDict& other);
  ValueDict(ValueDict&& other) noexcept;
  ValueDict& operator=(ValueDict&& other) noexcept;

  /// Interns `v`; nulls map to kNullCode without touching the table. When
  /// `inserted` is non-null it receives whether this call appended a new
  /// dictionary entry (false for nulls and repeat values).
  uint32_t Intern(const Value& v, bool* inserted = nullptr) {
    if (v.is_null()) {
      if (inserted != nullptr) *inserted = false;
      return kNullCode;
    }
    return InternHashed(v, v.Hash(), inserted);
  }

  /// Intern with a precomputed hash; `hash` must equal v.Hash() and `v` must
  /// be non-null.
  uint32_t InternHashed(const Value& v, uint64_t hash,
                        bool* inserted = nullptr);

  /// Move form: `v` is consumed only when a new entry is appended (repeat
  /// values leave it valid-but-unspecified). The catalog loader restores
  /// persisted values through this without re-copying string payloads.
  uint32_t InternHashed(Value&& v, uint64_t hash, bool* inserted = nullptr);

  /// Code of `v`: kNullCode when null or never interned.
  uint32_t Find(const Value& v) const;

  /// Value for a code returned by Intern; Decode(kNullCode) is null. The
  /// reference is stable across later Intern calls.
  const Value& Decode(uint32_t code) const {
    const size_t b = BucketOf(code);
    return buckets_[b].load(std::memory_order_acquire)[code - BucketBase(b)];
  }

  /// Content hash (== Decode(code).Hash()) of an interned code, read from
  /// the stable side table — no value re-hashing. HashOf(kNullCode) is 0.
  /// Same lock-free validity rules as Decode. This is what discovery
  /// MinHash sketches are built over: the hash depends only on the value's
  /// content, never on code assignment order, so sketches are deterministic
  /// across intern interleavings and thread counts.
  uint64_t HashOf(uint32_t code) const {
    const size_t b = BucketOf(code);
    return hash_buckets_[b].load(
        std::memory_order_acquire)[code - BucketBase(b)];
  }

  /// Distinct non-null values interned so far.
  size_t NumDistinct() const {
    return size_.load(std::memory_order_acquire) - 1;
  }

  /// Pre-sizes the hash shards for `expected` distinct non-null values.
  void Reserve(size_t expected);

 private:
  // Bucket 0 holds 2^kBaseBits slots; bucket b holds 2^(kBaseBits+b). 22
  // buckets cover the full uint32 code space.
  static constexpr size_t kBaseBits = 10;
  static constexpr size_t kMaxBuckets = 33 - kBaseBits;
  // Independently locked hash-index shards (power of two, like
  // EmbeddingCache). Selected by high hash bits; in-shard probing uses the
  // low bits, so the two choices stay independent.
  static constexpr size_t kShards = 16;
  static constexpr size_t kInitialSlots = 16;  // per shard, power of two

  struct Shard {
    mutable std::mutex mu;
    /// Open-addressing table of codes; kNullCode = empty slot.
    std::vector<uint32_t> slots;
    size_t used = 0;  ///< codes stored in this shard
  };

  static size_t ShardOf(uint64_t hash) { return (hash >> 57) & (kShards - 1); }
  static size_t BucketOf(uint32_t code) {
    return 63 - static_cast<size_t>(
                    __builtin_clzll((static_cast<uint64_t>(code) >> kBaseBits) +
                                    1));
  }
  static size_t BucketBase(size_t b) {
    return ((size_t{1} << b) - 1) << kBaseBits;
  }
  static size_t BucketCapacity(size_t b) { return size_t{1} << (kBaseBits + b); }

  /// Allocates the next code and stores `v` + `hash` at it. Thread-safe
  /// against appends to other codes; the caller publishes the code through
  /// its shard table (or another happens-before edge) before readers use it.
  uint32_t Append(const Value& v, uint64_t hash);
  uint32_t Append(Value&& v, uint64_t hash);
  /// Ensures the storage bucket holding `code` exists (double-checked
  /// against alloc_mu_).
  void EnsureBucket(size_t b);
  void CopyFrom(const ValueDict& other);
  void FreeBuckets();

  void RehashShard(Shard& shard, size_t new_slot_count) const;

  /// code → value / hash, in geometric buckets; slot 0 = null. Pointers are
  /// published with release stores so concurrent Decode / HashOf never
  /// observe a half-initialized bucket.
  std::atomic<Value*> buckets_[kMaxBuckets];
  std::atomic<uint64_t*> hash_buckets_[kMaxBuckets];
  /// Values stored, including the null slot. fetch_add allocates codes.
  std::atomic<uint32_t> size_{1};
  std::mutex alloc_mu_;  ///< storage-bucket allocation
  Shard shards_[kShards];
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_VALUE_DICT_H_
