// ValueDict: interning of cell values into dense integer codes.
//
// Full Disjunction only ever asks two questions of a cell: "is it null?" and
// "is it equal to that other cell?". Both are answered by a dictionary code:
// tuples become flat uint32 rows, the enumerator's merge/consistency loops
// compare integers instead of heap-backed Values, and posting-list keys are
// (column, code) integer pairs. Values are decoded back only when the final
// result tuples are materialized.
#ifndef LAKEFUZZ_FD_VALUE_DICT_H_
#define LAKEFUZZ_FD_VALUE_DICT_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "table/value.h"

namespace lakefuzz {

/// Interns distinct non-null Values into dense uint32 codes. Code 0 is
/// reserved for null; non-null values get 1, 2, ... in first-intern order,
/// so a fixed intern sequence yields identical codes on every run.
///
/// Internally an open-addressing table over 64-bit value hashes. Callers
/// that already computed v.Hash() (FdProblem::BuildIndex hashes all cells in
/// a parallel pre-pass) intern without re-hashing via InternHashed.
///
/// Decoded values live in append-only geometric buckets (bucket b holds
/// 1024·2^b slots), so a `const Value&` returned by Decode stays valid for
/// the dictionary's lifetime no matter how much it grows afterwards. This is
/// what lets a session-lived dictionary (fd/session_dict.h) serve Decode to
/// one request while another request is still interning: Intern calls must
/// be externally serialized (SessionDict holds a mutex), but any thread may
/// Decode codes it obtained under that serialization concurrently with
/// further growth.
class ValueDict {
 public:
  static constexpr uint32_t kNullCode = 0;

  ValueDict();
  ~ValueDict();

  ValueDict(const ValueDict& other);
  ValueDict& operator=(const ValueDict& other);
  ValueDict(ValueDict&& other) noexcept;
  ValueDict& operator=(ValueDict&& other) noexcept;

  /// Interns `v`; nulls map to kNullCode without touching the table.
  uint32_t Intern(const Value& v) {
    if (v.is_null()) return kNullCode;
    return InternHashed(v, v.Hash());
  }

  /// Intern with a precomputed hash; `hash` must equal v.Hash() and `v` must
  /// be non-null.
  uint32_t InternHashed(const Value& v, uint64_t hash);

  /// Code of `v`: kNullCode when null or never interned.
  uint32_t Find(const Value& v) const;

  /// Value for a code returned by Intern; Decode(kNullCode) is null. The
  /// reference is stable across later Intern calls.
  const Value& Decode(uint32_t code) const {
    const size_t b = BucketOf(code);
    return buckets_[b].load(std::memory_order_acquire)[code - BucketBase(b)];
  }

  /// Distinct non-null values interned so far.
  size_t NumDistinct() const { return size_ - 1; }

  /// Pre-sizes the table for `expected` distinct non-null values.
  void Reserve(size_t expected);

 private:
  // Bucket 0 holds 2^kBaseBits slots; bucket b holds 2^(kBaseBits+b). 22
  // buckets cover the full uint32 code space.
  static constexpr size_t kBaseBits = 10;
  static constexpr size_t kMaxBuckets = 33 - kBaseBits;
  static constexpr size_t kInitialSlots = 16;  // power of two

  static size_t BucketOf(uint32_t code) {
    return 63 - static_cast<size_t>(
                    __builtin_clzll((static_cast<uint64_t>(code) >> kBaseBits) +
                                    1));
  }
  static size_t BucketBase(size_t b) {
    return ((size_t{1} << b) - 1) << kBaseBits;
  }
  static size_t BucketCapacity(size_t b) { return size_t{1} << (kBaseBits + b); }

  /// Appends `v` at code `size_`, allocating the bucket on first touch.
  void Append(const Value& v);
  void CopyFrom(const ValueDict& other);
  void FreeBuckets();

  void Rehash(size_t new_slot_count);

  /// code → value, in geometric buckets; slot 0 = null. Pointers are
  /// published with release stores so concurrent Decode never observes a
  /// half-initialized bucket.
  std::atomic<Value*> buckets_[kMaxBuckets];
  size_t size_ = 0;               ///< values stored, including the null slot
  std::vector<uint64_t> hashes_;  ///< code → hash; [0] unused
  std::vector<uint32_t> slots_;   ///< open-addressing table of codes; 0 = empty
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_FD_VALUE_DICT_H_
