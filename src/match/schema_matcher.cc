#include "match/schema_matcher.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "util/str.h"

namespace lakefuzz {

HolisticSchemaMatcher::HolisticSchemaMatcher(
    std::shared_ptr<const EmbeddingModel> model, SchemaMatcherOptions options)
    : model_(std::move(model)), options_(options) {}

Result<AlignedSchema> HolisticSchemaMatcher::Align(
    const TableList& tables) const {
  struct ColRef {
    size_t table;
    size_t col;
  };
  std::vector<ColRef> cols;
  for (size_t l = 0; l < tables.size(); ++l) {
    for (size_t c = 0; c < tables[l]->NumColumns(); ++c) {
      cols.push_back(ColRef{l, c});
    }
  }

  ColumnEmbedder embedder(model_, options_.embedder);
  std::vector<Vec> sigs(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    sigs[i] = embedder.EmbedColumn(*tables[cols[i].table], cols[i].col);
  }

  // Candidate edges between columns of different tables, best-first.
  struct Edge {
    double sim;
    size_t a;
    size_t b;
  };
  std::vector<Edge> edges;
  for (size_t i = 0; i < cols.size(); ++i) {
    for (size_t j = i + 1; j < cols.size(); ++j) {
      if (cols[i].table == cols[j].table) continue;
      // EmbedColumn signatures are unit (or zero) vectors, so the
      // pre-normalized dot is the cosine similarity without the O(dim)
      // norm recomputations of the general CosineSimilarity.
      double sim = DotPrenormalized(sigs[i], sigs[j]);
      const std::string& ni =
          tables[cols[i].table]->schema().field(cols[i].col).name;
      const std::string& nj =
          tables[cols[j].table]->schema().field(cols[j].col).name;
      if (!ni.empty() && ni == nj) sim += options_.header_bonus;
      if (sim >= options_.similarity_threshold) {
        edges.push_back(Edge{sim, i, j});
      }
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.sim != y.sim) return x.sim > y.sim;
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  });

  // Greedy constrained merge: a cluster may hold at most one column per
  // table (columns of one table never align with each other, Sec 2.1).
  std::vector<size_t> cluster(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) cluster[i] = i;
  std::unordered_map<size_t, std::set<size_t>> tables_in_cluster;
  for (size_t i = 0; i < cols.size(); ++i) {
    tables_in_cluster[i] = {cols[i].table};
  }
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (cluster[x] != x) {
      cluster[x] = cluster[cluster[x]];
      x = cluster[x];
    }
    return x;
  };
  for (const Edge& e : edges) {
    size_t ra = find(e.a);
    size_t rb = find(e.b);
    if (ra == rb) continue;
    const auto& ta = tables_in_cluster[ra];
    const auto& tb = tables_in_cluster[rb];
    bool conflict = false;
    for (size_t t : tb) {
      if (ta.count(t)) {
        conflict = true;
        break;
      }
    }
    if (conflict) continue;
    cluster[rb] = ra;
    tables_in_cluster[ra].insert(tb.begin(), tb.end());
    tables_in_cluster.erase(rb);
  }

  // Materialize clusters in deterministic (first-member) order.
  std::map<size_t, std::vector<size_t>> members;  // root -> column indices
  for (size_t i = 0; i < cols.size(); ++i) members[find(i)].push_back(i);

  AlignedSchema out;
  out.column_map.resize(tables.size());
  for (size_t l = 0; l < tables.size(); ++l) {
    out.column_map[l].resize(tables[l]->NumColumns());
  }
  std::unordered_map<std::string, size_t> name_uses;
  // Iterate clusters ordered by their smallest member index.
  std::vector<std::pair<size_t, const std::vector<size_t>*>> ordered;
  for (const auto& [root, mem] : members) {
    ordered.emplace_back(*std::min_element(mem.begin(), mem.end()), &mem);
  }
  std::sort(ordered.begin(), ordered.end());
  for (const auto& [first_idx, mem] : ordered) {
    (void)first_idx;
    // Universal name: most frequent header, ties → earliest member.
    std::map<std::string, size_t> counts;
    for (size_t i : *mem) {
      ++counts[tables[cols[i].table]->schema().field(cols[i].col).name];
    }
    std::string best;
    size_t best_count = 0;
    for (size_t i : *mem) {
      const std::string& name =
          tables[cols[i].table]->schema().field(cols[i].col).name;
      if (counts[name] > best_count) {
        best_count = counts[name];
        best = name;
      }
    }
    if (best.empty()) best = "col";
    size_t uses = name_uses[best]++;
    std::string uname = uses == 0 ? best : StrFormat("%s_%zu", best.c_str(), uses);
    size_t u = out.universal_names.size();
    out.universal_names.push_back(uname);
    for (size_t i : *mem) {
      out.column_map[cols[i].table][cols[i].col] = u;
    }
  }
  LAKEFUZZ_RETURN_IF_ERROR(ValidateAlignedSchema(out, tables));
  return out;
}

Result<AlignedSchema> HolisticSchemaMatcher::Align(
    const std::vector<Table>& tables) const {
  return Align(BorrowTables(tables));
}

}  // namespace lakefuzz
