// Holistic schema matching: ALITE's column-alignment stage.
//
// Data lake headers are unreliable, so columns are aligned by *content*:
// each column gets a pooled value-embedding signature (ColumnEmbedder), and
// signatures are clustered holistically across all tables of the integration
// set (Su et al., EDBT 2006 style), under the constraint that a cluster
// holds at most one column per table. Clusters become the universal columns
// of the AlignedSchema that Full Disjunction consumes.
#ifndef LAKEFUZZ_MATCH_SCHEMA_MATCHER_H_
#define LAKEFUZZ_MATCH_SCHEMA_MATCHER_H_

#include <memory>

#include "embedding/column_embedder.h"
#include "fd/aligned_schema.h"
#include "table/table.h"
#include "util/result.h"

namespace lakefuzz {

struct SchemaMatcherOptions {
  /// Minimum cosine similarity for two column signatures to be merged.
  /// Calibrated so that code-vs-full-name columns of one domain align
  /// (pooled signatures agree through the knowledge-base component) while
  /// unrelated columns (near-orthogonal signatures) stay apart.
  double similarity_threshold = 0.30;
  ColumnEmbedderOptions embedder;
  /// Tie-break/assist weight for equal header names in [0,1]: added to the
  /// content similarity when headers match exactly (data lakes can't rely
  /// on headers, but when present and equal they are evidence).
  double header_bonus = 0.05;
};

/// Greedy constrained agglomerative clustering of column signatures.
class HolisticSchemaMatcher {
 public:
  HolisticSchemaMatcher(std::shared_ptr<const EmbeddingModel> model,
                        SchemaMatcherOptions options = SchemaMatcherOptions());

  /// Aligns the integration set into an AlignedSchema. Universal column
  /// names are the most frequent header among each cluster's members
  /// (ties → first by table order), uniquified with numeric suffixes.
  /// The TableList form is the engine's non-copying request path; the
  /// vector<Table> overload borrows and forwards.
  Result<AlignedSchema> Align(const TableList& tables) const;
  Result<AlignedSchema> Align(const std::vector<Table>& tables) const;

 private:
  std::shared_ptr<const EmbeddingModel> model_;
  SchemaMatcherOptions options_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_MATCH_SCHEMA_MATCHER_H_
