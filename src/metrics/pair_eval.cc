#include "metrics/pair_eval.h"

#include <cassert>
#include <map>

namespace lakefuzz {

ItemPair MakePair(uint64_t a, uint64_t b) {
  assert(a != b);
  return a < b ? ItemPair{a, b} : ItemPair{b, a};
}

Prf EvaluatePairs(const std::set<ItemPair>& predicted,
                  const std::set<ItemPair>& ground_truth) {
  Prf out;
  for (const auto& p : predicted) {
    if (ground_truth.count(p)) {
      ++out.tp;
    } else {
      ++out.fp;
    }
  }
  for (const auto& g : ground_truth) {
    if (!predicted.count(g)) ++out.fn;
  }
  return out;
}

std::set<ItemPair> ClustersToPairs(
    const std::vector<std::vector<uint64_t>>& clusters) {
  std::set<ItemPair> pairs;
  for (const auto& cluster : clusters) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        if (cluster[i] == cluster[j]) continue;
        pairs.insert(MakePair(cluster[i], cluster[j]));
      }
    }
  }
  return pairs;
}

Prf EvaluateClustering(
    const std::vector<std::vector<uint64_t>>& predicted,
    const std::vector<std::pair<uint64_t, uint64_t>>& item_labels) {
  std::map<uint64_t, std::vector<uint64_t>> by_label;
  for (const auto& [item, label] : item_labels) {
    by_label[label].push_back(item);
  }
  std::vector<std::vector<uint64_t>> gt_clusters;
  gt_clusters.reserve(by_label.size());
  for (auto& [label, items] : by_label) {
    (void)label;
    gt_clusters.push_back(std::move(items));
  }
  return EvaluatePairs(ClustersToPairs(predicted),
                       ClustersToPairs(gt_clusters));
}

}  // namespace lakefuzz
