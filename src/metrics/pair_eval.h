// Pairwise evaluation of matchings and clusterings against ground truth.
#ifndef LAKEFUZZ_METRICS_PAIR_EVAL_H_
#define LAKEFUZZ_METRICS_PAIR_EVAL_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "metrics/prf.h"

namespace lakefuzz {

/// An unordered pair of item ids, stored canonically (first < second).
using ItemPair = std::pair<uint64_t, uint64_t>;

/// Canonicalizes (a, b); a == b is a programming error for match pairs.
ItemPair MakePair(uint64_t a, uint64_t b);

/// Compares predicted vs ground-truth pair sets.
Prf EvaluatePairs(const std::set<ItemPair>& predicted,
                  const std::set<ItemPair>& ground_truth);

/// Expands a clustering (groups of item ids) into its set of intra-cluster
/// pairs — the standard pairwise view of a clustering.
std::set<ItemPair> ClustersToPairs(
    const std::vector<std::vector<uint64_t>>& clusters);

/// Pairwise P/R/F1 of a predicted clustering against a ground-truth
/// labeling: items[i] carries label labels[i]; ground-truth pairs are items
/// sharing a label.
Prf EvaluateClustering(const std::vector<std::vector<uint64_t>>& predicted,
                       const std::vector<std::pair<uint64_t, uint64_t>>&
                           item_labels /* (item, label) */);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_METRICS_PAIR_EVAL_H_
