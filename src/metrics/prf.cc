#include "metrics/prf.h"

#include <vector>

#include "util/str.h"

namespace lakefuzz {

double Prf::precision() const {
  size_t denom = tp + fp;
  return denom == 0 ? 1.0 : static_cast<double>(tp) / denom;
}

double Prf::recall() const {
  size_t denom = tp + fn;
  return denom == 0 ? 1.0 : static_cast<double>(tp) / denom;
}

double Prf::f1() const {
  double p = precision();
  double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

std::string Prf::ToString() const {
  return StrFormat("P=%.2f R=%.2f F1=%.2f", precision(), recall(), f1());
}

Prf MicroAverage(const std::vector<Prf>& parts) {
  Prf out;
  for (const auto& p : parts) {
    out.tp += p.tp;
    out.fp += p.fp;
    out.fn += p.fn;
  }
  return out;
}

std::string MacroPrf::ToString() const {
  return StrFormat("P=%.2f R=%.2f F1=%.2f", precision, recall, f1);
}

MacroPrf MacroAverage(const std::vector<Prf>& parts) {
  MacroPrf out;
  if (parts.empty()) return out;
  for (const auto& p : parts) {
    out.precision += p.precision();
    out.recall += p.recall();
    out.f1 += p.f1();
  }
  out.precision /= static_cast<double>(parts.size());
  out.recall /= static_cast<double>(parts.size());
  out.f1 /= static_cast<double>(parts.size());
  return out;
}

}  // namespace lakefuzz
