// Precision / Recall / F1 — the paper's effectiveness metrics.
#ifndef LAKEFUZZ_METRICS_PRF_H_
#define LAKEFUZZ_METRICS_PRF_H_

#include <cstddef>
#include <string>
#include <vector>

namespace lakefuzz {

/// Counts plus derived scores. Conventions: P = tp/(tp+fp) (1 when no
/// predictions), R = tp/(tp+fn) (1 when nothing to find), F1 harmonic mean
/// (0 when P+R = 0).
struct Prf {
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;

  double precision() const;
  double recall() const;
  double f1() const;

  /// "P=0.81 R=0.86 F1=0.82".
  std::string ToString() const;
};

/// Micro-average: sums counts across parts (every decision weighs equally).
Prf MicroAverage(const std::vector<Prf>& parts);

/// Macro-averaged P/R/F1 over parts — what the paper's Table 1 reports
/// ("average performance over 31 sets"). Parts are weighted equally.
struct MacroPrf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::string ToString() const;
};
MacroPrf MacroAverage(const std::vector<Prf>& parts);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_METRICS_PRF_H_
