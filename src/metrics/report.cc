#include "metrics/report.h"

#include <algorithm>

namespace lakefuzz {

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::Render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string* out) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out->append("  ");
      out->append(row[c]);
      out->append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!out->empty() && out->back() == ' ') out->pop_back();
    out->push_back('\n');
  };
  std::string out;
  emit_row(headers_, &out);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c ? 2 : 0);
  out.append(rule, '-');
  out.push_back('\n');
  for (const auto& row : rows_) emit_row(row, &out);
  return out;
}

}  // namespace lakefuzz
