// Paper-style result tables for benchmark output.
#ifndef LAKEFUZZ_METRICS_REPORT_H_
#define LAKEFUZZ_METRICS_REPORT_H_

#include <string>
#include <vector>

namespace lakefuzz {

/// Accumulates rows of string cells and renders an aligned text table, the
/// format every bench binary prints its paper table/figure in.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Aligned rendering with a header rule.
  std::string Render() const;

  size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_METRICS_REPORT_H_
