#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace lakefuzz {

size_t MetricShardIndex(size_t num_shards) {
  static std::atomic<size_t> next{0};
  thread_local size_t dense_id =
      next.fetch_add(1, std::memory_order_relaxed);
  return dense_id % num_shards;
}

// ---------------------------------------------------------------- Histogram

namespace {

/// Index of the highest set bit (value must be non-zero).
size_t Msb(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - static_cast<size_t>(__builtin_clzll(v));
#else
  size_t msb = 0;
  while (v >>= 1) ++msb;
  return msb;
#endif
}

}  // namespace

Histogram::Histogram() : shards_(new Shard[kShards]) {
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      shards_[s].counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  const size_t msb = Msb(value);
  const size_t sub =
      static_cast<size_t>(value >> (msb - kSubBits)) - kSubBuckets;
  return (msb - kSubBits + 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t msb = index / kSubBuckets + kSubBits - 1;
  const size_t sub = index % kSubBuckets;
  return (uint64_t{1} << msb) + sub * (uint64_t{1} << (msb - kSubBits));
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t msb = index / kSubBuckets + kSubBits - 1;
  return BucketLowerBound(index) + (uint64_t{1} << (msb - kSubBits)) - 1;
}

void Histogram::Observe(uint64_t value) {
  Shard& shard = shards_[MetricShardIndex(kShards)];
  shard.counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.counts.assign(kNumBuckets, 0);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      snap.counts[b] +=
          shards_[s].counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shards_[s].sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.total_count += c;
  return snap;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (total_count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample (1-based), then walk the cumulative counts.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total_count) + 0.5));
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    if (seen + counts[b] >= rank) {
      // Interpolate linearly inside the bucket by the rank's position.
      const uint64_t lo = Histogram::BucketLowerBound(b);
      const uint64_t hi = Histogram::BucketUpperBound(b);
      const double frac = counts[b] == 1
                              ? 0.5
                              : static_cast<double>(rank - seen - 1) /
                                    static_cast<double>(counts[b] - 1);
      return lo + static_cast<uint64_t>(
                      frac * static_cast<double>(hi - lo) + 0.5);
    }
    seen += counts[b];
  }
  return Histogram::BucketUpperBound(counts.size() - 1);
}

// ----------------------------------------------------------------- Registry

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == MetricKind::kCounter
               ? it->second.counter.get()
               : nullptr;
  }
  Entry entry;
  entry.kind = MetricKind::kCounter;
  entry.help = help;
  entry.counter = std::make_unique<Counter>();
  Counter* out = entry.counter.get();
  entries_.emplace(name, std::move(entry));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == MetricKind::kGauge ? it->second.gauge.get()
                                                 : nullptr;
  }
  Entry entry;
  entry.kind = MetricKind::kGauge;
  entry.help = help;
  entry.gauge = std::make_unique<Gauge>();
  Gauge* out = entry.gauge.get();
  entries_.emplace(name, std::move(entry));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == MetricKind::kHistogram
               ? it->second.histogram.get()
               : nullptr;
  }
  Entry entry;
  entry.kind = MetricKind::kHistogram;
  entry.help = help;
  entry.histogram = std::make_unique<Histogram>();
  Histogram* out = entry.histogram.get();
  entries_.emplace(name, std::move(entry));
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample sample;
    sample.name = name;
    sample.help = entry.help;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        sample.value = static_cast<double>(entry.counter->Value());
        break;
      case MetricKind::kGauge:
        sample.value = static_cast<double>(entry.gauge->Value());
        break;
      case MetricKind::kHistogram:
        sample.hist = entry.histogram->Snapshot();
        break;
    }
    snap.samples.push_back(std::move(sample));
  }
  return snap;
}

const MetricSample* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// --------------------------------------------------------------- exposition

std::string RenderMetricsText(const MetricsSnapshot& snapshot) {
  std::string out;
  char buf[192];
  for (const MetricSample& s : snapshot.samples) {
    if (!s.help.empty()) {
      out += "# HELP " + s.name + " " + s.help + "\n";
    }
    out += "# TYPE " + s.name + " ";
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "counter\n";
        break;
      case MetricKind::kGauge:
        out += "gauge\n";
        break;
      case MetricKind::kHistogram:
        out += "histogram\n";
        break;
    }
    if (s.kind != MetricKind::kHistogram) {
      // Counters/gauges are integral in practice; print without exponent.
      std::snprintf(buf, sizeof(buf), "%s %.0f\n", s.name.c_str(), s.value);
      out += buf;
      continue;
    }
    uint64_t cumulative = 0;
    for (size_t b = 0; b < s.hist.counts.size(); ++b) {
      if (s.hist.counts[b] == 0) continue;
      cumulative += s.hist.counts[b];
      std::snprintf(buf, sizeof(buf),
                    "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                    s.name.c_str(), Histogram::BucketUpperBound(b),
                    cumulative);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                  s.name.c_str(), s.hist.total_count);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_sum %" PRIu64 "\n", s.name.c_str(),
                  s.hist.sum);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n", s.name.c_str(),
                  s.hist.total_count);
    out += buf;
  }
  return out;
}

}  // namespace lakefuzz
