// Process metrics: counters, gauges, log-scale histograms, and a registry
// with Prometheus-style text exposition.
//
// Counters and histograms shard their hot path per thread: an increment is
// one relaxed atomic add on a cache-line-padded cell picked by a
// thread-local dense index — no lock, no contention between pipeline
// workers — and a scrape merges the shards into one consistent-enough
// snapshot (relaxed reads; each cell is monotonic, so a concurrent scrape
// can only under-count in-flight increments, never corrupt).
//
// Histograms are log-linear ("HDR-style"): values 0..3 get exact buckets,
// then every power-of-two octave is split into 4 sub-buckets, so the
// relative width of any bucket is at most 25% — which bounds the quantile
// estimation error at 25% of the true value (the obs tests assert this).
// Bucket geometry is fixed at compile time (252 buckets covering the full
// uint64 range), so merging shards — or snapshots from different processes
// — is element-wise addition.
//
// The MetricsRegistry hands out stable Counter*/Gauge*/Histogram* by name
// (register once at startup, increment forever) and Snapshot() renders
// them into a MetricsSnapshot sorted by name. RenderMetricsText() formats
// a snapshot — and only a snapshot — as Prometheus text exposition, so
// LakeEngine::MetricsSnapshot() and `engine_service --metrics_out` can
// never disagree: they are two views of the same object.
#ifndef LAKEFUZZ_OBS_METRICS_H_
#define LAKEFUZZ_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lakefuzz {

/// Dense per-thread shard index (stable for a thread's lifetime); shared by
/// every sharded metric so a thread always hits the same cache line.
size_t MetricShardIndex(size_t num_shards);

/// Monotonic counter. Add() is one relaxed fetch_add on a padded
/// thread-local shard; Value() sums the shards.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) {
    shards_[MetricShardIndex(kShards)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Cell& cell : shards_) {
      sum += cell.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell shards_[kShards];
};

/// Last-write-wins instantaneous value (queue depth, RSS, table count).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t v) { v_.fetch_add(v, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Merged view of one histogram at scrape time. Fixed bucket geometry (see
/// Histogram) means snapshots merge by element-wise addition.
struct HistogramSnapshot {
  std::vector<uint64_t> counts;  ///< size Histogram::kNumBuckets
  uint64_t total_count = 0;
  uint64_t sum = 0;  ///< exact sum of observed values

  /// Estimated q-quantile (q in [0,1]) by cumulative bucket walk with
  /// linear interpolation inside the landing bucket. Relative error is
  /// bounded by the bucket width: at most 25% of the true value.
  uint64_t Quantile(double q) const;
};

/// Fixed-bucket log-linear histogram of non-negative integer samples
/// (nanoseconds, counts, bytes).
class Histogram {
 public:
  /// Sub-bucket resolution: each power-of-two octave splits into
  /// 2^kSubBits = 4 linear sub-buckets.
  static constexpr size_t kSubBits = 2;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBits;
  /// 0..3 exact (4 buckets), then 4 sub-buckets per octave for each of the
  /// 62 octaves with msb 2..63 — 252 buckets covering all of uint64.
  static constexpr size_t kNumBuckets = (64 - kSubBits + 1) * kSubBuckets;
  static constexpr size_t kShards = 8;

  Histogram();

  void Observe(uint64_t value);

  HistogramSnapshot Snapshot() const;

  /// Bucket geometry, exposed for tests and the text exposition.
  /// BucketIndex(v) is the bucket recording v; bounds are inclusive:
  /// BucketLowerBound(i) <= v <= BucketUpperBound(i).
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketUpperBound(size_t index);

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> counts[kNumBuckets];
    std::atomic<uint64_t> sum{0};
  };
  std::unique_ptr<Shard[]> shards_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric at scrape time.
struct MetricSample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;       ///< counter / gauge
  HistogramSnapshot hist;   ///< histogram only
};

/// All metrics at one scrape, sorted by name (deterministic exposition).
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  const MetricSample* Find(const std::string& name) const;
};

/// Name → metric registry. Get* registers on first use and returns the
/// same stable pointer thereafter (kind mismatches return nullptr rather
/// than aliasing two kinds under one name). Thread-safe; pointer
/// increments never take the registry lock.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    MetricKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  ///< ordered → sorted snapshots
};

/// Prometheus-style text exposition of a snapshot: `# TYPE` comments,
/// `name value` lines, and `_bucket{le="..."}/_sum/_count` series for
/// histograms (only non-empty buckets are listed, plus `+Inf`).
std::string RenderMetricsText(const MetricsSnapshot& snapshot);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_OBS_METRICS_H_
