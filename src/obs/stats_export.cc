#include "obs/stats_export.h"

#include "util/rss.h"

namespace lakefuzz {

double PeakRssMb() {
  return static_cast<double>(PeakRssBytes()) / (1 << 20);
}

std::vector<std::pair<std::string, double>> FdExecutionExtras(
    const FdStats& stats) {
  const FdTaskProfile& prof = stats.task_profile;
  const double tasks_d =
      prof.tasks > 0 ? static_cast<double>(prof.tasks) : 1.0;
  return {
      {"intra_tasks", static_cast<double>(stats.intra_tasks)},
      {"merge_s", stats.merge_seconds},
      {"task_nodes_mean", static_cast<double>(prof.nodes_sum) / tasks_d},
      {"task_nodes_min", static_cast<double>(prof.nodes_min)},
      {"task_nodes_max", static_cast<double>(prof.nodes_max)},
      {"task_busy_s", static_cast<double>(prof.busy_ns) * 1e-9},
      {"task_replay_s", static_cast<double>(prof.replay_ns) * 1e-9},
      {"worker_wait_s", static_cast<double>(prof.wait_ns) * 1e-9},
      {"pool_tasks", static_cast<double>(stats.pool_tasks)},
      {"pool_busy_s", stats.pool_busy_seconds},
      {"pool_wait_s", stats.pool_wait_seconds},
      {"arena_peak_bytes", static_cast<double>(stats.arena_peak_bytes)},
      {"peak_rss_mb", PeakRssMb()},
  };
}

}  // namespace lakefuzz
