// One mapping from FD execution stats to named numbers.
//
// The FD executors fill FdStats (task profile, pool counters, arena and RSS
// peaks); the engine's metrics registry and the benchmark JSON artifacts
// both report those numbers. Before this helper each bench binary hand-built
// its own key list and the engine wired fields separately, so the two could
// silently diverge. Now FdStats is the single source and this is the single
// field→name mapping: the bench `extra` keys below correspond 1:1 to the
// engine metrics of the same meaning (task_busy_s ↔
// lakefuzz_fd_task_busy_ns_total, intra_tasks ↔
// lakefuzz_fd_intra_tasks_total, peak_rss_mb ↔
// lakefuzz_process_peak_rss_bytes, ...), differing only in unit.
#ifndef LAKEFUZZ_OBS_STATS_EXPORT_H_
#define LAKEFUZZ_OBS_STATS_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "fd/full_disjunction.h"

namespace lakefuzz {

/// Process peak RSS in MiB — the one rounding rule every artifact uses
/// (wraps util/rss.h's PeakRssBytes()).
double PeakRssMb();

/// The FD execution profile as ordered (key, value) pairs, ready for
/// BenchJsonWriter::AddFromStats `extra` (or any other flat export):
/// task-grain evidence (mean/min/max nodes per subtree task, busy vs.
/// dequeue-wait vs. replay time), pool-level busy vs. wall, merge cost,
/// arena peak, and process peak RSS.
std::vector<std::pair<std::string, double>> FdExecutionExtras(
    const FdStats& stats);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_OBS_STATS_EXPORT_H_
