#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <memory>
#include <thread>

namespace lakefuzz {
namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// span names and attribute strings are short identifiers, not documents.
void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendMs(std::string* out, double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  *out += buf;
}

/// Aggregation node for FlameSummary: one entry per distinct name *path*
/// through the tree, children ordered by first occurrence.
struct FlameNode {
  std::string name;
  size_t count = 0;
  uint64_t total_ns = 0;
  std::vector<std::unique_ptr<FlameNode>> children;

  FlameNode* Child(const std::string& child_name) {
    for (auto& c : children) {
      if (c->name == child_name) return c.get();
    }
    children.push_back(std::make_unique<FlameNode>());
    children.back()->name = child_name;
    return children.back().get();
  }
};

void PrintFlame(const FlameNode& node, size_t depth, std::string* out) {
  std::string label(depth * 2, ' ');
  label += node.name;
  if (node.count > 1) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " x%zu", node.count);
    label += buf;
  }
  if (label.size() < 44) label.resize(44, ' ');
  *out += label;
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %10.3f ms\n",
                static_cast<double>(node.total_ns) / 1e6);
  *out += buf;
  for (const auto& c : node.children) PrintFlame(*c, depth + 1, out);
}

}  // namespace

Tracer::Tracer(TraceOptions options)
    : epoch_ns_(SteadyNowNs()), options_(options) {}

uint64_t Tracer::NowNs() const { return SteadyNowNs() - epoch_ns_; }

uint64_t Tracer::BeginSpan(const char* name, uint64_t parent) {
  const uint64_t now = NowNs();
  const uint64_t thread_hash =
      static_cast<uint64_t>(std::hash<std::thread::id>{}(
          std::this_thread::get_id()));
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= options_.max_spans) {
    ++dropped_;
    return 0;
  }
  auto [it, inserted] =
      tids_.emplace(thread_hash, static_cast<uint32_t>(tids_.size()));
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = name;
  span.start_ns = now;
  span.tid = it->second;
  span.open = true;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (!span.open) return;
  span.open = false;
  span.duration_ns = now >= span.start_ns ? now - span.start_ns : 0;
}

void Tracer::AddAttr(uint64_t id, const char* key, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  SpanAttr attr;
  attr.key = key;
  attr.num = value;
  spans_[id - 1].attrs.push_back(std::move(attr));
}

void Tracer::AddAttr(uint64_t id, const char* key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  SpanAttr attr;
  attr.key = key;
  attr.is_string = true;
  attr.str = std::move(value);
  spans_[id - 1].attrs.push_back(std::move(attr));
}

std::vector<Span> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

uint64_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<Span> spans = Spans();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans) {
    if (span.open) continue;  // still running at export time
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, span.name);
    out += "\",\"ph\":\"X\",\"ts\":";
    AppendMs(&out, static_cast<double>(span.start_ns) / 1e3);
    out += ",\"dur\":";
    AppendMs(&out, static_cast<double>(span.duration_ns) / 1e3);
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"pid\":%" PRIu64 ",\"tid\":%u",
                  options_.request_id, span.tid);
    out += buf;
    out += ",\"args\":{\"id\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ",\"parent\":%" PRIu64,
                  span.id, span.parent);
    out += buf;
    for (const SpanAttr& attr : span.attrs) {
      out += ",\"";
      AppendJsonEscaped(&out, attr.key);
      out += "\":";
      if (attr.is_string) {
        out += "\"";
        AppendJsonEscaped(&out, attr.str);
        out += "\"";
      } else {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(attr.num));
        out += buf;
      }
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string Tracer::FlameSummary() const {
  const std::vector<Span> spans = Spans();
  // Spans get ids in BeginSpan order, so every parent precedes its
  // children — one forward pass resolves each span's aggregation node.
  FlameNode root;
  std::vector<FlameNode*> node_of(spans.size() + 1, nullptr);
  for (const Span& span : spans) {
    FlameNode* parent =
        (span.parent != 0 && span.parent < span.id &&
         node_of[span.parent] != nullptr)
            ? node_of[span.parent]
            : &root;
    FlameNode* node = parent->Child(span.name);
    ++node->count;
    node->total_ns += span.duration_ns;
    node_of[span.id] = node;
  }
  std::string out;
  for (const auto& c : root.children) PrintFlame(*c, 0, &out);
  return out;
}

std::vector<std::pair<std::string, double>> Tracer::StageTotals() const {
  const std::vector<Span> spans = Spans();
  std::vector<char> is_root(spans.size() + 1, 0);
  for (const Span& span : spans) {
    if (span.parent == 0) is_root[span.id] = 1;
  }
  std::vector<std::pair<std::string, double>> totals;
  for (const Span& span : spans) {
    if (span.parent == 0 || span.parent > spans.size() ||
        !is_root[span.parent]) {
      continue;
    }
    const double seconds = static_cast<double>(span.duration_ns) / 1e9;
    bool found = false;
    for (auto& entry : totals) {
      if (entry.first == span.name) {
        entry.second += seconds;
        found = true;
        break;
      }
    }
    if (!found) totals.emplace_back(span.name, seconds);
  }
  return totals;
}

std::string SlowRequestLine(const SlowLogInfo& info, const Tracer* tracer) {
  char buf[160];
  std::string out = "slow_request";
  std::snprintf(buf, sizeof(buf),
                " id=%" PRIu64 " mode=%s total_ms=%.1f threshold_ms=%.1f",
                info.request_id, info.mode.c_str(), info.total_ms,
                info.threshold_ms);
  out += buf;
  out += " error=";
  out += info.error.empty() ? "ok" : info.error;
  out += info.truncated ? " truncated=1" : " truncated=0";
  out += " tables=";
  for (size_t i = 0; i < info.tables.size(); ++i) {
    if (i > 0) out += ",";
    out += info.tables[i];
  }
  out += " stages=[";
  if (tracer != nullptr) {
    const auto totals = tracer->StageTotals();
    for (size_t i = 0; i < totals.size(); ++i) {
      if (i > 0) out += " ";
      std::snprintf(buf, sizeof(buf), "%s=%.1f", totals[i].first.c_str(),
                    totals[i].second * 1e3);
      out += buf;
    }
  }
  out += "]";
  return out;
}

}  // namespace lakefuzz
