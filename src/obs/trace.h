// Request tracing: per-request trees of timed spans.
//
// A Tracer collects Spans — steady-clock (start, duration) intervals named
// after pipeline stages, with integer/string attributes for stage counters
// (nodes, tuples, cache hits). Spans are opened via the RAII ScopedSpan at
// stage seams and carried down the pipeline on RequestContext
// (ctx.tracer + ctx.trace_parent), so they compose with deadlines and
// cancellation without any extra plumbing: a stage that already receives a
// RequestContext can open a child span.
//
// Tracing is observation-only by contract: no pipeline code may branch on
// tracer state, so results are byte-identical with tracing on or off (the
// obs tests lock this at 1/2/8 threads). Spans open/close only at stage
// boundaries — O(stages + components + tasks) per request, never per
// search node — so one mutex-protected append per span is cheap relative
// to the work it brackets, and TSan-clean by construction. A null tracer
// costs one pointer test per seam; defining LAKEFUZZ_DISABLE_TRACING
// compiles ScopedSpan down to an empty struct (the compile-time-checkable
// null path).
//
// Exports: Chrome trace_event JSON (load in chrome://tracing or
// https://ui.perfetto.dev), a human-readable flame summary, per-stage
// totals for the slow-request log, and SlowRequestLine() building the
// threshold-gated structured log line.
#ifndef LAKEFUZZ_OBS_TRACE_H_
#define LAKEFUZZ_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/request_context.h"

namespace lakefuzz {

struct TraceOptions {
  /// Request id stamped into the export (Chrome `pid`, slow-log `id=`).
  uint64_t request_id = 0;
  /// Span-count cap: BeginSpan past the cap returns the null id and bumps
  /// dropped_spans() instead of growing without bound. The default is far
  /// above a normal request (spans are per stage/component/task, not per
  /// node) — it exists to bound pathological component counts.
  size_t max_spans = 100000;
};

/// One attribute on a span: integer counters (nodes, tuples, hits) or short
/// strings (mode, table name).
struct SpanAttr {
  std::string key;
  bool is_string = false;
  int64_t num = 0;
  std::string str;
};

/// One completed (or still-open) span. Times are steady-clock nanoseconds
/// relative to the tracer's construction; duration_ns == 0 with open == true
/// means EndSpan has not run yet (e.g. exported mid-request).
struct Span {
  uint64_t id = 0;      ///< 1-based; 0 is the null/"no span" id
  uint64_t parent = 0;  ///< parent span id, 0 = root
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t tid = 0;  ///< dense per-tracer thread index (0 = first seen)
  bool open = false;
  std::vector<SpanAttr> attrs;
};

class Tracer {
 public:
  explicit Tracer(TraceOptions options = TraceOptions());

  /// Opens a span; returns its id (0 when the span cap is hit — the null
  /// id, accepted and ignored by every other method). Thread-safe.
  uint64_t BeginSpan(const char* name, uint64_t parent = 0);
  /// Closes `id`, fixing its duration. No-op for the null id.
  void EndSpan(uint64_t id);
  void AddAttr(uint64_t id, const char* key, int64_t value);
  void AddAttr(uint64_t id, const char* key, std::string value);

  /// Steady-clock nanoseconds since construction (the span clock).
  uint64_t NowNs() const;

  /// Snapshot of all spans recorded so far, in BeginSpan order.
  std::vector<Span> Spans() const;
  size_t span_count() const;
  uint64_t dropped_spans() const;
  const TraceOptions& options() const { return options_; }

  /// Chrome trace_event JSON: one complete ("ph":"X") event per closed
  /// span, microsecond timestamps, pid = request_id, tid = dense thread
  /// index, attributes under "args". Loadable in chrome://tracing and
  /// Perfetto. Deterministic given the same spans.
  std::string ToChromeJson() const;

  /// Indented per-path aggregation (name path → count, total ms), ordered
  /// by first occurrence:
  ///   request                             12.3 ms
  ///     align                              0.4 ms
  ///     fd                                 9.8 ms
  ///       fd_task x16                      9.1 ms
  std::string FlameSummary() const;

  /// Total seconds per top-level stage: direct children of root spans,
  /// aggregated by name in first-occurrence order. Feeds the slow-request
  /// log's per-stage breakdown.
  std::vector<std::pair<std::string, double>> StageTotals() const;

 private:
  uint64_t epoch_ns_;  ///< steady-clock origin
  TraceOptions options_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::unordered_map<uint64_t, uint32_t> tids_;  ///< thread hash → dense id
  uint64_t dropped_ = 0;
};

#ifdef LAKEFUZZ_DISABLE_TRACING

/// Tracing compiled out: every instrumentation seam reduces to an empty
/// object the optimizer deletes. The Tracer class itself stays available
/// (tools may still construct one), but no pipeline span is ever recorded.
inline constexpr bool kTracingCompiledIn = false;

class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer*, const char*, uint64_t = 0) {}
  ScopedSpan(const RequestContext&, const char*) {}
  void AddAttr(const char*, int64_t) {}
  void AddAttr(const char*, std::string) {}
  void End() {}
  uint64_t id() const { return 0; }
  bool active() const { return false; }
};

#else

inline constexpr bool kTracingCompiledIn = true;

/// RAII span handle: opens on construction (when the tracer is non-null),
/// closes on destruction or explicit End(). Move-only. The null state
/// (default-constructed, null tracer, or cap-dropped span) makes every
/// method a no-op, so instrumentation sites need no branching.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, const char* name, uint64_t parent = 0)
      : tracer_(tracer),
        id_(tracer != nullptr ? tracer->BeginSpan(name, parent) : 0) {}
  /// The common pipeline form: parented under the context's current span.
  ScopedSpan(const RequestContext& ctx, const char* name)
      : ScopedSpan(ctx.tracer, name, ctx.trace_parent) {}

  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
    other.id_ = 0;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      id_ = other.id_;
      other.tracer_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }

  void AddAttr(const char* key, int64_t value) {
    if (tracer_ != nullptr && id_ != 0) tracer_->AddAttr(id_, key, value);
  }
  void AddAttr(const char* key, std::string value) {
    if (tracer_ != nullptr && id_ != 0) {
      tracer_->AddAttr(id_, key, std::move(value));
    }
  }

  /// Closes the span early (before scope exit).
  void End() {
    if (tracer_ != nullptr && id_ != 0) tracer_->EndSpan(id_);
    tracer_ = nullptr;
    id_ = 0;
  }

  uint64_t id() const { return id_; }
  bool active() const { return id_ != 0; }

 private:
  Tracer* tracer_ = nullptr;
  uint64_t id_ = 0;
};

#endif  // LAKEFUZZ_DISABLE_TRACING

/// What the slow-request log needs beyond the trace tree.
struct SlowLogInfo {
  uint64_t request_id = 0;
  std::string mode;                 ///< "integrate" / "sink" / "discover+integrate"
  std::vector<std::string> tables;  ///< request table set
  double total_ms = 0.0;
  double threshold_ms = 0.0;
  std::string error;  ///< canonical error-code name; "ok" on success
  bool truncated = false;
};

/// One structured slow-request line, e.g.:
///   slow_request id=7 mode=integrate total_ms=812.4 threshold_ms=500
///   error=ok truncated=0 tables=a,b,c stages=[align=3.1 match=400.2 fd=401.0]
/// The per-stage breakdown comes from the trace tree (Tracer::StageTotals);
/// pass nullptr when the request ran untraced and the stages=[] list is
/// simply empty.
std::string SlowRequestLine(const SlowLogInfo& info, const Tracer* tracer);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_OBS_TRACE_H_
