#include "table/csv.h"

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/fault_injection.h"
#include "util/str.h"

namespace lakefuzz {
namespace {

/// One parsed record: the raw field texts plus whether each was quoted
/// (quoted fields are exempt from trimming and are never inferred as null).
struct RawRecord {
  std::vector<std::string> fields;
  std::vector<bool> quoted;
};

/// Streaming RFC-4180 tokenizer.
class CsvParser {
 public:
  CsvParser(std::string_view text, char delimiter, size_t max_cell_bytes)
      : text_(text), delim_(delimiter), max_cell_(max_cell_bytes) {}

  /// Reads the next record into `out`. Returns false at end of input.
  /// A trailing newline does not produce an empty final record.
  Result<bool> Next(RawRecord* out) {
    out->fields.clear();
    out->quoted.clear();
    if (pos_ >= text_.size()) return false;

    std::string field;
    bool in_quotes = false;
    bool field_was_quoted = false;
    bool any_char = false;

    auto flush_field = [&] {
      out->fields.push_back(std::move(field));
      out->quoted.push_back(field_was_quoted);
      field.clear();
      field_was_quoted = false;
    };

    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (in_quotes) {
        if (c == '"') {
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '"') {
            field.push_back('"');
            pos_ += 2;
          } else {
            in_quotes = false;
            ++pos_;
          }
        } else {
          field.push_back(c);
          ++pos_;
        }
        if (max_cell_ != 0 && field.size() > max_cell_) {
          return CellLimitError();
        }
        any_char = true;
        continue;
      }
      if (c == '"' && field.empty() && !field_was_quoted) {
        in_quotes = true;
        field_was_quoted = true;
        any_char = true;
        ++pos_;
        continue;
      }
      if (c == delim_) {
        flush_field();
        any_char = true;
        ++pos_;
        continue;
      }
      if (c == '\r') {
        // Swallow CR; CRLF and bare CR both terminate the record.
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '\n') ++pos_;
        flush_field();
        return true;
      }
      if (c == '\n') {
        ++pos_;
        flush_field();
        return true;
      }
      field.push_back(c);
      if (max_cell_ != 0 && field.size() > max_cell_) {
        return CellLimitError();
      }
      any_char = true;
      ++pos_;
    }

    if (in_quotes) {
      return Status::InvalidArgument("unterminated quoted field at end of CSV");
    }
    if (any_char || !out->fields.empty()) {
      flush_field();
      return true;
    }
    return false;
  }

 private:
  Status CellLimitError() const {
    return Status::InvalidArgument(StrFormat(
        "CSV cell exceeds CsvOptions::max_cell_bytes=%zu", max_cell_));
  }

  std::string_view text_;
  char delim_;
  size_t max_cell_;
  size_t pos_ = 0;
};

Value FieldToValue(const std::string& raw, bool quoted,
                   const CsvOptions& options) {
  std::string text = raw;
  if (!quoted && options.trim_unquoted) text = Trim(text);
  if (text.empty() && !quoted) return Value::Null();
  if (options.infer_types && !quoted) return Value::Parse(text);
  if (text.empty()) return Value::Null();
  return Value::String(std::move(text));
}

bool NeedsQuoting(const std::string& s, char delimiter) {
  for (char c : s) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  // Leading/trailing whitespace must be preserved through a read round-trip.
  return !s.empty() && (std::isspace(static_cast<unsigned char>(s.front())) ||
                        std::isspace(static_cast<unsigned char>(s.back())));
}

void AppendCsvField(const Value& v, char delimiter, std::string* out) {
  std::string text = v.ToString();
  if (v.type() == ValueType::kString &&
      (NeedsQuoting(text, delimiter) || text.empty())) {
    out->push_back('"');
    for (char c : text) {
      if (c == '"') out->push_back('"');
      out->push_back(c);
    }
    out->push_back('"');
  } else {
    out->append(text);
  }
}

}  // namespace

Result<Table> ReadCsv(std::string_view text, std::string table_name,
                      const CsvOptions& options) {
  CsvParser parser(text, options.delimiter, options.max_cell_bytes);
  RawRecord record;

  // Header (or synthesized names from the first record's width).
  LAKEFUZZ_ASSIGN_OR_RETURN(bool has_first, parser.Next(&record));
  if (!has_first) {
    return Table(std::move(table_name), Schema());
  }

  std::vector<std::string> names;
  std::vector<RawRecord> pending;
  if (options.has_header) {
    for (const auto& f : record.fields) names.push_back(Trim(f));
  } else {
    for (size_t i = 0; i < record.fields.size(); ++i) {
      names.push_back(StrFormat("c%zu", i));
    }
    pending.push_back(record);
  }

  Table table(std::move(table_name), Schema::FromNames(names));
  size_t row_number = options.has_header ? 1 : 0;
  auto append = [&](const RawRecord& rec) -> Status {
    ++row_number;
    if (rec.fields.size() != names.size()) {
      return Status::InvalidArgument(
          StrFormat("record %zu has %zu fields, expected %zu", row_number,
                    rec.fields.size(), names.size()));
    }
    std::vector<Value> row;
    row.reserve(rec.fields.size());
    for (size_t i = 0; i < rec.fields.size(); ++i) {
      row.push_back(FieldToValue(rec.fields[i], rec.quoted[i], options));
    }
    return table.AppendRow(std::move(row));
  };

  for (const auto& rec : pending) {
    LAKEFUZZ_RETURN_IF_ERROR(append(rec));
  }
  while (true) {
    LAKEFUZZ_ASSIGN_OR_RETURN(bool more, parser.Next(&record));
    if (!more) break;
    LAKEFUZZ_RETURN_IF_ERROR(append(record));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  LAKEFUZZ_FAULT_POINT("csv/read");
  // stat first: an ifstream failbit cannot distinguish "missing" from
  // "directory" from "empty file", and opening a directory for read may
  // even succeed on some platforms.
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IoError("cannot open " + path + ": no such file");
  }
  if (!S_ISREG(st.st_mode)) {
    return Status::IoError("cannot open " + path + ": not a regular file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for " + path);
  // Table name = file stem.
  size_t slash = path.find_last_of('/');
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  return ReadCsv(buf.str(), stem, options);
}

std::string WriteCsv(const Table& table, char delimiter) {
  std::string out;
  const auto names = table.schema().FieldNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out.push_back(delimiter);
    AppendCsvField(Value::String(names[i]), delimiter, &out);
  }
  out.push_back('\n');
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      if (c > 0) out.push_back(delimiter);
      AppendCsvField(table.At(r, c), delimiter, &out);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << WriteCsv(table, delimiter);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace lakefuzz
