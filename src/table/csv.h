// RFC-4180 CSV reader/writer for data lake tables.
//
// Handles quoted fields, escaped quotes (""), embedded delimiters and
// newlines, CRLF and LF line endings, and optional type inference.
#ifndef LAKEFUZZ_TABLE_CSV_H_
#define LAKEFUZZ_TABLE_CSV_H_

#include <string>
#include <string_view>

#include "table/table.h"
#include "util/result.h"

namespace lakefuzz {

struct CsvOptions {
  char delimiter = ',';
  /// First record is the header row; when false, columns are named c0, c1, …
  bool has_header = true;
  /// Parse cells with Value::Parse (type inference); otherwise everything
  /// non-empty is a String and "" is Null.
  bool infer_types = true;
  /// Trim ASCII whitespace around unquoted fields before parsing.
  bool trim_unquoted = true;
  /// Ceiling on one cell's byte length — a guard against a malformed file
  /// (e.g. a runaway unterminated quote) ballooning a single field to the
  /// size of the whole input. Exceeding it fails the parse with
  /// kInvalidArgument. 0 disables the check.
  size_t max_cell_bytes = size_t{64} << 20;
};

/// Parses CSV text into a table named `table_name`.
/// Fails on structural errors: unterminated quote, or a record whose field
/// count differs from the header/first record.
Result<Table> ReadCsv(std::string_view text, std::string table_name,
                      const CsvOptions& options = CsvOptions());

/// Reads and parses a CSV file; the table is named after the file stem.
/// A missing or unreadable path (or a non-regular file such as a
/// directory) fails with ErrorCode::kIoError naming the path.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = CsvOptions());

/// Serializes a table to CSV (always emits a header row). Fields containing
/// the delimiter, quotes, CR or LF are quoted; quotes are doubled.
std::string WriteCsv(const Table& table, char delimiter = ',');

/// Writes CSV to a file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace lakefuzz

#endif  // LAKEFUZZ_TABLE_CSV_H_
