#include "table/print.h"

#include <algorithm>

#include "util/str.h"

namespace lakefuzz {
namespace {

/// Display width in columns; counts UTF-8 lead bytes so multi-byte glyphs
/// (e.g. "⊥") occupy one cell instead of three.
size_t DisplayWidth(const std::string& s) {
  size_t w = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++w;  // not a UTF-8 continuation byte
  }
  return w;
}

std::string Clip(const std::string& s, size_t max_width) {
  if (DisplayWidth(s) <= max_width) return s;
  std::string out;
  size_t w = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    unsigned char c = s[i];
    if ((c & 0xC0) != 0x80) {
      if (w + 1 > max_width - 1) break;
      ++w;
    }
    out.push_back(static_cast<char>(c));
  }
  out += "…";
  return out;
}

void AppendPadded(const std::string& s, size_t width, std::string* out) {
  out->append(s);
  size_t w = DisplayWidth(s);
  for (size_t i = w; i < width; ++i) out->push_back(' ');
}

}  // namespace

std::string RenderTable(const Table& table, const PrintOptions& options) {
  const size_t cols = table.NumColumns();
  const size_t shown_rows = std::min(table.NumRows(), options.max_rows);

  std::vector<std::vector<std::string>> cells(shown_rows + 1,
                                              std::vector<std::string>(cols));
  for (size_t c = 0; c < cols; ++c) {
    cells[0][c] = Clip(table.schema().field(c).name, options.max_cell_width);
  }
  for (size_t r = 0; r < shown_rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const Value& v = table.At(r, c);
      cells[r + 1][c] =
          Clip(v.is_null() ? options.null_text : v.ToString(),
               options.max_cell_width);
    }
  }

  std::vector<size_t> widths(cols, 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < cols; ++c) {
      widths[c] = std::max(widths[c], DisplayWidth(row[c]));
    }
  }

  std::string out;
  out += StrFormat("== %s (%zu rows x %zu cols) ==\n", table.name().c_str(),
                   table.NumRows(), cols);
  auto rule = [&] {
    out += "+";
    for (size_t c = 0; c < cols; ++c) {
      out.append(widths[c] + 2, '-');
      out += "+";
    }
    out += "\n";
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    out += "|";
    for (size_t c = 0; c < cols; ++c) {
      out += " ";
      AppendPadded(row[c], widths[c], &out);
      out += " |";
    }
    out += "\n";
  };

  rule();
  emit_row(cells[0]);
  rule();
  for (size_t r = 0; r < shown_rows; ++r) emit_row(cells[r + 1]);
  rule();
  if (table.NumRows() > shown_rows) {
    out += StrFormat("… (%zu more rows)\n", table.NumRows() - shown_rows);
  }
  return out;
}

}  // namespace lakefuzz
