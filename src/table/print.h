// Fixed-width pretty printer for tables (examples and debugging output).
#ifndef LAKEFUZZ_TABLE_PRINT_H_
#define LAKEFUZZ_TABLE_PRINT_H_

#include <string>

#include "table/table.h"

namespace lakefuzz {

struct PrintOptions {
  /// Rows beyond this limit are elided with a "… (N more rows)" marker.
  size_t max_rows = 50;
  /// Cell text wider than this is truncated with an ellipsis.
  size_t max_cell_width = 32;
  /// Rendering of nulls (the paper uses the "Ʇ" symbol; we default to ⊥).
  std::string null_text = "⊥";
};

/// Renders the table as an aligned ASCII grid with a title line.
std::string RenderTable(const Table& table,
                        const PrintOptions& options = PrintOptions());

}  // namespace lakefuzz

#endif  // LAKEFUZZ_TABLE_PRINT_H_
