#include "table/schema.h"

namespace lakefuzz {

Schema Schema::FromNames(const std::vector<std::string>& names) {
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (const auto& n : names) fields.push_back(Field{n, ValueType::kNull});
  return Schema(std::move(fields));
}

size_t Schema::AddField(Field f) {
  fields_.push_back(std::move(f));
  return fields_.size() - 1;
}

size_t Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return kNotFound;
}

std::vector<std::string> Schema::FieldNames() const {
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const auto& f : fields_) names.push_back(f.name);
  return names;
}

}  // namespace lakefuzz
