// Schema: ordered, named columns of a table.
#ifndef LAKEFUZZ_TABLE_SCHEMA_H_
#define LAKEFUZZ_TABLE_SCHEMA_H_

#include <string>
#include <vector>

#include "table/value.h"

namespace lakefuzz {

/// One column declaration. `type` is advisory (kNull means "untyped/any");
/// data lake CSVs routinely violate declared types, so enforcement is opt-in.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of fields with by-name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  /// Convenience: untyped fields from names.
  static Schema FromNames(const std::vector<std::string>& names);

  size_t NumFields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Appends a field; returns its index.
  size_t AddField(Field f);

  /// Index of the first field with this name, or npos.
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  size_t FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const {
    return FieldIndex(name) != kNotFound;
  }

  std::vector<std::string> FieldNames() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_TABLE_SCHEMA_H_
