#include "table/stats.h"

#include <unordered_set>

#include "util/str.h"

namespace lakefuzz {

ValueType ColumnStats::dominant_type() const {
  size_t best = 0;  // kNull
  for (size_t t = 1; t < type_counts.size(); ++t) {
    if (type_counts[t] > type_counts[best] ||
        (best == 0 && type_counts[t] > 0)) {
      best = t;
    }
  }
  return static_cast<ValueType>(best);
}

ColumnStats ComputeColumnStats(const Table& table, size_t col) {
  ColumnStats stats;
  stats.row_count = table.NumRows();
  std::unordered_set<Value, ValueHasher> distinct;
  size_t total_length = 0;
  for (const Value& v : table.ColumnValues(col)) {
    ++stats.type_counts[static_cast<size_t>(v.type())];
    if (v.is_null()) {
      ++stats.null_count;
      continue;
    }
    distinct.insert(v);
    total_length += v.ToString().size();
  }
  stats.distinct_count = distinct.size();
  size_t non_null = stats.row_count - stats.null_count;
  stats.mean_length =
      non_null == 0 ? 0.0 : static_cast<double>(total_length) / non_null;
  return stats;
}

std::string RenderColumnStats(const ColumnStats& stats) {
  return StrFormat(
      "rows=%zu nulls=%.0f%% distinct=%.2f type=%s len=%.1f",
      stats.row_count, stats.null_fraction() * 100.0, stats.distinct_ratio(),
      std::string(ValueTypeToString(stats.dominant_type())).c_str(),
      stats.mean_length);
}

}  // namespace lakefuzz
