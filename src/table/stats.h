// Column profiling: the quick statistics a data lake system keeps per
// column (used for diagnostics and as cheap signals alongside embeddings).
#ifndef LAKEFUZZ_TABLE_STATS_H_
#define LAKEFUZZ_TABLE_STATS_H_

#include <array>
#include <string>

#include "table/table.h"

namespace lakefuzz {

/// Per-column profile.
struct ColumnStats {
  size_t row_count = 0;
  size_t null_count = 0;
  size_t distinct_count = 0;
  /// Counts per ValueType (indexed by static_cast<size_t>(type)).
  std::array<size_t, 5> type_counts{};
  /// Mean ToString() length of non-null values.
  double mean_length = 0.0;

  double null_fraction() const {
    return row_count == 0 ? 0.0
                          : static_cast<double>(null_count) / row_count;
  }
  /// Distinct values per non-null value — 1.0 means key-like.
  double distinct_ratio() const {
    size_t non_null = row_count - null_count;
    return non_null == 0
               ? 0.0
               : static_cast<double>(distinct_count) / non_null;
  }
  /// The most frequent non-null type, or kNull for all-null columns.
  ValueType dominant_type() const;
};

/// Profiles one column.
ColumnStats ComputeColumnStats(const Table& table, size_t col);

/// One-line rendering, e.g. "rows=100 nulls=3% distinct=0.97 type=string".
std::string RenderColumnStats(const ColumnStats& stats);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_TABLE_STATS_H_
