#include "table/table.h"

#include <cassert>

#include "util/str.h"

namespace lakefuzz {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.resize(schema_.NumFields());
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != schema_.NumFields()) {
    return Status::InvalidArgument(StrFormat(
        "row has %zu values, schema has %zu fields", row.size(),
        schema_.NumFields()));
  }
  for (size_t c = 0; c < row.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  ++num_rows_;
  return Status::OK();
}

const Value& Table::At(size_t row, size_t col) const {
  assert(row < num_rows_ && col < columns_.size());
  return columns_[col][row];
}

void Table::Set(size_t row, size_t col, Value v) {
  assert(row < num_rows_ && col < columns_.size());
  columns_[col][row] = std::move(v);
}

const std::vector<Value>& Table::ColumnValues(size_t col) const {
  assert(col < columns_.size());
  return columns_[col];
}

std::vector<Value> Table::Row(size_t row) const {
  assert(row < num_rows_);
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col[row]);
  return out;
}

std::vector<Value> Table::DistinctNonNull(size_t col) const {
  assert(col < columns_.size());
  std::vector<Value> out;
  std::unordered_set<Value, ValueHasher> seen;
  for (const auto& v : columns_[col]) {
    if (v.is_null()) continue;
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

size_t Table::NullCount(size_t col) const {
  assert(col < columns_.size());
  size_t n = 0;
  for (const auto& v : columns_[col]) {
    if (v.is_null()) ++n;
  }
  return n;
}

Result<Table> Table::FromRows(std::string name,
                              std::vector<std::string> column_names,
                              std::vector<std::vector<Value>> rows) {
  Table t(std::move(name), Schema::FromNames(column_names));
  for (auto& row : rows) {
    LAKEFUZZ_RETURN_IF_ERROR(t.AppendRow(std::move(row)));
  }
  return t;
}

Table Table::SelectRows(const std::vector<size_t>& row_indices) const {
  Table out(name_, schema_);
  for (size_t r : row_indices) {
    assert(r < num_rows_);
    std::vector<Value> row;
    row.reserve(columns_.size());
    for (const auto& col : columns_) row.push_back(col[r]);
    Status s = out.AppendRow(std::move(row));
    assert(s.ok());
    (void)s;
  }
  return out;
}

}  // namespace lakefuzz
