// Table: the in-memory relational unit that everything in lakefuzz consumes.
//
// Storage is columnar (vector<Value> per column) — the fuzzy-matching stages
// are column-oriented (distinct values per column, per-column rewrites), and
// Full Disjunction scans columns to build posting lists.
#ifndef LAKEFUZZ_TABLE_TABLE_H_
#define LAKEFUZZ_TABLE_TABLE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "table/schema.h"
#include "table/value.h"
#include "util/result.h"

namespace lakefuzz {

/// A named table: schema + columnar rows.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return schema_.NumFields(); }

  /// Appends a row; `row.size()` must equal NumColumns().
  Status AppendRow(std::vector<Value> row);

  /// Cell accessors (bounds-asserted in debug builds).
  const Value& At(size_t row, size_t col) const;
  void Set(size_t row, size_t col, Value v);

  /// Whole-column view.
  const std::vector<Value>& ColumnValues(size_t col) const;

  /// Materializes one row.
  std::vector<Value> Row(size_t row) const;

  /// Distinct non-null values of a column, in first-appearance order —
  /// the clean-clean value universe the fuzzy matcher operates on.
  std::vector<Value> DistinctNonNull(size_t col) const;

  /// Number of nulls in a column.
  size_t NullCount(size_t col) const;

  /// Builds a table from rows (convenience for tests and examples).
  static Result<Table> FromRows(std::string name,
                                std::vector<std::string> column_names,
                                std::vector<std::vector<Value>> rows);

  /// Returns a copy restricted to `row_indices` (in the given order).
  Table SelectRows(const std::vector<size_t>& row_indices) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
  size_t num_rows_ = 0;
};

/// Non-owning view of an integration set — the currency of the pipeline
/// internals, so a LakeEngine can serve requests over registry-owned tables
/// without copying them per call. Callers guarantee the pointed-to tables
/// outlive the operation.
using TableList = std::vector<const Table*>;

/// Borrows every table of an owning vector (adapter for the value-based
/// convenience overloads).
inline TableList BorrowTables(const std::vector<Table>& tables) {
  TableList out;
  out.reserve(tables.size());
  for (const Table& t : tables) out.push_back(&t);
  return out;
}

}  // namespace lakefuzz

#endif  // LAKEFUZZ_TABLE_TABLE_H_
