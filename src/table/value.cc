#include "table/value.h"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/str.h"

namespace lakefuzz {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kString:
      return "string";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kBool:
      return "bool";
  }
  return "unknown";
}

namespace {

bool LooksLikeInt(std::string_view s) {
  size_t i = 0;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

bool LooksLikeDouble(std::string_view s) {
  // Require at least one digit and only [0-9.+-eE] characters; strtod does
  // the real validation.
  bool digit = false;
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      digit = true;
    } else if (c != '.' && c != '+' && c != '-' && c != 'e' && c != 'E') {
      return false;
    }
  }
  return digit;
}

}  // namespace

Value Value::Parse(std::string_view text) {
  if (text.empty()) return Null();
  if (LooksLikeInt(text)) {
    errno = 0;
    std::string buf(text);
    char* end = nullptr;
    long long v = std::strtoll(buf.c_str(), &end, 10);
    if (errno == 0 && end == buf.c_str() + buf.size()) {
      return Int(static_cast<int64_t>(v));
    }
    // Overflowing integer literals fall through to String: turning them into
    // doubles would silently lose digits.
    return String(std::move(buf));
  }
  if (LooksLikeDouble(text)) {
    std::string buf(text);
    char* end = nullptr;
    errno = 0;
    double d = std::strtod(buf.c_str(), &end);
    if (errno == 0 && end == buf.c_str() + buf.size() && std::isfinite(d)) {
      return Double(d);
    }
    return String(std::move(buf));
  }
  if (EqualsIgnoreCase(text, "true")) return Bool(true);
  if (EqualsIgnoreCase(text, "false")) return Bool(false);
  return String(std::string(text));
}

const std::string& Value::AsString() const {
  assert(type_ == ValueType::kString);
  static const std::string kEmpty;
  return type_ == ValueType::kString ? str_ : kEmpty;
}

int64_t Value::AsInt() const {
  assert(type_ == ValueType::kInt64);
  return type_ == ValueType::kInt64 ? int_ : 0;
}

double Value::AsDouble() const {
  assert(type_ == ValueType::kDouble);
  return type_ == ValueType::kDouble ? dbl_ : 0.0;
}

bool Value::AsBool() const {
  assert(type_ == ValueType::kBool);
  return type_ == ValueType::kBool ? bool_ : false;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "";
    case ValueType::kString:
      return str_;
    case ValueType::kInt64:
      return std::to_string(int_);
    case ValueType::kDouble: {
      std::string out = StrFormat("%.17g", dbl_);
      // Prefer the shorter %.15g form when it round-trips.
      std::string shorter = StrFormat("%.15g", dbl_);
      if (std::strtod(shorter.c_str(), nullptr) == dbl_) out = shorter;
      return out;
    }
    case ValueType::kBool:
      return bool_ ? "true" : "false";
  }
  return "";
}

bool Value::operator<(const Value& other) const {
  if (type_ != other.type_) return type_ < other.type_;
  switch (type_) {
    case ValueType::kNull:
      return false;
    case ValueType::kString:
      return str_ < other.str_;
    case ValueType::kInt64:
      return int_ < other.int_;
    case ValueType::kDouble:
      return dbl_ < other.dbl_;
    case ValueType::kBool:
      return bool_ < other.bool_;
  }
  return false;
}

}  // namespace lakefuzz
