// Value: the cell type of lakefuzz tables.
//
// A Value is null or a typed scalar (string / int64 / double / bool). Nulls
// are untyped. Equality is type-sensitive (Int64(1) != Double(1.0)): Full
// Disjunction joins on *value identity*, and silently coercing types would
// manufacture joins the input does not support.
#ifndef LAKEFUZZ_TABLE_VALUE_H_
#define LAKEFUZZ_TABLE_VALUE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/hash.h"

namespace lakefuzz {

enum class ValueType : uint8_t {
  kNull = 0,
  kString,
  kInt64,
  kDouble,
  kBool,
};

std::string_view ValueTypeToString(ValueType t);

/// A nullable scalar cell.
class Value {
 public:
  /// Null value.
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value String(std::string s) {
    Value v;
    v.type_ = ValueType::kString;
    v.str_ = std::move(s);
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = ValueType::kInt64;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = ValueType::kDouble;
    v.dbl_ = d;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.type_ = ValueType::kBool;
    v.bool_ = b;
    return v;
  }

  /// Parses `text` with type inference: "" → null, integer literals → Int64,
  /// decimal/scientific → Double, "true"/"false" (any case) → Bool, otherwise
  /// String. Leading/trailing whitespace is significant (kept as String) —
  /// CSV ingestion decides about trimming, not the value parser.
  static Value Parse(std::string_view text);

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (asserts in debug builds, returns a default in release).
  const std::string& AsString() const;
  int64_t AsInt() const;
  double AsDouble() const;
  bool AsBool() const;

  /// Canonical text rendering: null → "", Int64 → decimal, Double → shortest
  /// round-trip via %.17g trimmed, Bool → "true"/"false".
  std::string ToString() const;

  /// Type-sensitive equality. Null == Null is true here — FD code treats
  /// nulls specially and never joins on them; container use (dedup, hashing)
  /// needs reflexive equality. Defined inline: dictionary interning
  /// (fd/value_dict.h) calls this once per cell occurrence.
  bool operator==(const Value& other) const {
    if (type_ != other.type_) return false;
    switch (type_) {
      case ValueType::kNull:
        return true;
      case ValueType::kString:
        return str_ == other.str_;
      case ValueType::kInt64:
        return int_ == other.int_;
      case ValueType::kDouble:
        return dbl_ == other.dbl_;
      case ValueType::kBool:
        return bool_ == other.bool_;
    }
    return false;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order (by type tag, then payload) for deterministic sorting.
  bool operator<(const Value& other) const;

  /// Deterministic hash consistent with operator==. Inline for the same
  /// reason as operator==: it is the per-cell cost of index construction.
  uint64_t Hash() const {
    const uint64_t tag = static_cast<uint64_t>(type_);
    switch (type_) {
      case ValueType::kNull:
        return Mix64(tag);
      case ValueType::kString:
        return HashCombine(Mix64(tag), Fnv1a64(str_));
      case ValueType::kInt64:
        return HashCombine(Mix64(tag), Mix64(static_cast<uint64_t>(int_)));
      case ValueType::kDouble: {
        uint64_t bits;
        double d = dbl_ == 0.0 ? 0.0 : dbl_;  // collapse -0.0 and +0.0
        std::memcpy(&bits, &d, sizeof(bits));
        return HashCombine(Mix64(tag), Mix64(bits));
      }
      case ValueType::kBool:
        return HashCombine(Mix64(tag), Mix64(bool_ ? 1 : 0));
    }
    return 0;
  }

 private:
  ValueType type_;
  std::string str_;
  union {
    int64_t int_;
    double dbl_;
    bool bool_;
  };
};

/// std-container adapter for Value hashing.
struct ValueHasher {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

}  // namespace lakefuzz

#endif  // LAKEFUZZ_TABLE_VALUE_H_
