#include "text/acronym.h"

#include <cctype>

#include "text/tokenize.h"
#include "util/str.h"

namespace lakefuzz {

std::string Initials(std::string_view phrase) {
  std::string out;
  for (const auto& tok : WordTokens(phrase)) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(tok[0]))));
  }
  return out;
}

bool IsAcronymOf(std::string_view candidate, std::string_view phrase) {
  auto tokens = WordTokens(phrase);
  if (tokens.size() < 2) return false;
  std::string cand = ToLower(Trim(candidate));
  // Drop periods: "U.S." → "us".
  std::string cleaned;
  for (char c : cand) {
    if (c != '.' && c != ' ') cleaned.push_back(c);
  }
  if (cleaned.size() < 2) return false;
  return cleaned == Initials(phrase);
}

bool IsAbbreviationOf(std::string_view abbrev, std::string_view full) {
  std::string a = ToLower(Trim(abbrev));
  std::string f = ToLower(Trim(full));
  // Strip a trailing period: "Dept." → "Dept".
  if (!a.empty() && a.back() == '.') a.pop_back();
  if (a.size() < 2 || a.size() >= f.size()) return false;
  if (WordTokens(a).size() != 1 || WordTokens(f).size() != 1) return false;
  // Truncation: "Dep" ⊑ "Department".
  if (f.compare(0, a.size(), a) == 0) return true;
  // Subsequence with matching first letter and consonant skeleton:
  // "Dept" vs "Department", "Mr" vs "Mister".
  if (a[0] != f[0]) return false;
  size_t i = 0;
  for (char c : f) {
    if (i < a.size() && c == a[i]) ++i;
  }
  return i == a.size();
}

double AcronymAffinity(std::string_view a, std::string_view b) {
  if (IsAcronymOf(a, b) || IsAcronymOf(b, a)) return 1.0;
  if (IsAbbreviationOf(a, b) || IsAbbreviationOf(b, a)) return 1.0;
  return 0.0;
}

}  // namespace lakefuzz
