// Acronym and abbreviation heuristics.
//
// Used by the higher-tier simulated embedding models ("LLM-grade" profiles)
// to recognize that "USA" abbreviates "United States of America" — the kind
// of world knowledge an LLM embedding encodes and a pure n-gram model lacks.
#ifndef LAKEFUZZ_TEXT_ACRONYM_H_
#define LAKEFUZZ_TEXT_ACRONYM_H_

#include <string>
#include <string_view>

namespace lakefuzz {

/// First letters of each word token, lowercased ("United States" → "us").
std::string Initials(std::string_view phrase);

/// True if `candidate` equals the initials of `phrase` (case-insensitive),
/// for phrases of at least two tokens ("US" / "United States").
bool IsAcronymOf(std::string_view candidate, std::string_view phrase);

/// True if `abbrev` plausibly abbreviates `full` by truncation or vowel
/// dropping of a single token ("Inc" / "Incorporated", "Mr" / "Mister",
/// "Dept" / "Department"). Requires |abbrev| >= 2 and |abbrev| < |full|.
bool IsAbbreviationOf(std::string_view abbrev, std::string_view full);

/// Symmetric heuristic score in [0,1]: 1 when either side acronymizes or
/// abbreviates the other, otherwise 0.
double AcronymAffinity(std::string_view a, std::string_view b);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_TEXT_ACRONYM_H_
