#include "text/distance.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "text/tokenize.h"

namespace lakefuzz {

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter: O(|b|) space
  if (b.empty()) return a.size();
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

size_t LevenshteinLengthLowerBound(std::string_view a, std::string_view b) {
  return a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
}

size_t LevenshteinBagLowerBound(std::string_view a, std::string_view b) {
  // counts[ch] = (occurrences in a) - (occurrences in b). Characters `a`
  // has in surplus need a delete/substitute each; `b`'s surplus an
  // insert/substitute — one substitution can fix one of each, so the bound
  // is max(surplus_a, surplus_b).
  int counts[256] = {0};
  for (unsigned char ch : a) ++counts[ch];
  for (unsigned char ch : b) --counts[ch];
  size_t surplus_a = 0;
  size_t surplus_b = 0;
  for (int c : counts) {
    if (c > 0) {
      surplus_a += static_cast<size_t>(c);
    } else {
      surplus_b += static_cast<size_t>(-c);
    }
  }
  return std::max(surplus_a, surplus_b);
}

size_t LevenshteinBounded(std::string_view a, std::string_view b,
                          size_t max_dist) {
  if (a.size() < b.size()) std::swap(a, b);
  const size_t m = a.size();
  const size_t n = b.size();
  // The distance never exceeds the longer length, so larger budgets are
  // equivalent — and clamping keeps kPruned / the band bounds below from
  // overflowing when callers pass e.g. SIZE_MAX as "no limit".
  max_dist = std::min(max_dist, m);
  if (m - n > max_dist) return max_dist + 1;
  if (n == 0) return m;  // m - 0 <= max_dist from the check above
  const size_t kPruned = max_dist + 1;
  // Ukkonen band: cell (i, j) can hold a value <= max_dist only when
  // |i - j| <= max_dist, so each row only evaluates that diagonal strip.
  // Cells bordering the strip must read as "over budget"; the row loop
  // maintains a kPruned sentinel at the band's upper edge (the lower edge is
  // covered by cur[lo-1] below, and row 0 is fully initialized).
  std::vector<size_t> prev(n + 1);
  std::vector<size_t> cur(n + 1, kPruned);
  for (size_t j = 0; j <= n; ++j) prev[j] = j;
  for (size_t i = 1; i <= m; ++i) {
    const size_t lo = i > max_dist ? i - max_dist : 1;
    const size_t hi = std::min(n, i + max_dist);
    cur[lo - 1] = lo == 1 ? std::min(i, kPruned) : kPruned;
    size_t row_min = kPruned;
    for (size_t j = lo; j <= hi; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t best = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
      cur[j] = std::min(best, kPruned);
      row_min = std::min(row_min, cur[j]);
    }
    if (hi < n) cur[hi + 1] = kPruned;
    if (row_min >= kPruned) return kPruned;  // the whole band is hopeless
    std::swap(prev, cur);
  }
  return std::min(prev[n], kPruned);
}

size_t DamerauLevenshtein(std::string_view a, std::string_view b) {
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return n;
  if (n == 0) return m;
  // Three rolling rows (transposition looks two rows back).
  std::vector<size_t> two(n + 1);
  std::vector<size_t> prev(n + 1);
  std::vector<size_t> cur(n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = j;
  for (size_t i = 1; i <= m; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= n; ++j) {
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], two[j - 2] + 1);
      }
    }
    std::swap(two, prev);
    std::swap(prev, cur);
  }
  return prev[n];
}

double NormalizedLevenshtein(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 0.0;
  return static_cast<double>(Levenshtein(a, b)) / static_cast<double>(max_len);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  const size_t window =
      std::max(a.size(), b.size()) / 2 == 0
          ? 0
          : std::max(a.size(), b.size()) / 2 - 1;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t t = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++t;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() + (m - t / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  if (jaro < 0.7) return jaro;  // standard boost threshold
  size_t prefix = 0;
  size_t cap = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < cap && a[prefix] == b[prefix]) ++prefix;
  return jaro + 0.1 * static_cast<double>(prefix) * (1.0 - jaro);
}

double NgramJaccard(std::string_view a, std::string_view b, size_t n) {
  auto ga = CharNgrams(a, n);
  auto gb = CharNgrams(b, n);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  std::unordered_set<std::string> sa(ga.begin(), ga.end());
  std::unordered_set<std::string> sb(gb.begin(), gb.end());
  size_t inter = 0;
  for (const auto& g : sa) inter += sb.count(g);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

double DiceBigram(std::string_view a, std::string_view b) {
  auto ga = CharNgrams(a, 2, /*pad=*/false);
  auto gb = CharNgrams(b, 2, /*pad=*/false);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  std::unordered_map<std::string, size_t> counts;
  for (const auto& g : ga) ++counts[g];
  size_t inter = 0;
  for (const auto& g : gb) {
    auto it = counts.find(g);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++inter;
    }
  }
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(ga.size() + gb.size());
}

double TokenJaccard(std::string_view a, std::string_view b) {
  auto ta = WordTokens(a);
  auto tb = WordTokens(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  std::unordered_set<std::string> sa(ta.begin(), ta.end());
  std::unordered_set<std::string> sb(tb.begin(), tb.end());
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

double BoundedNormalizedLevenshtein(std::string_view a, std::string_view b,
                                    double budget, bool* pruned) {
  if (pruned != nullptr) *pruned = false;
  const size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 0.0;
  if (budget >= 1.0) return NormalizedLevenshtein(a, b);  // nothing to prune
  if (budget <= 0.0) {
    if (pruned != nullptr) *pruned = true;
    return 1.0;
  }
  // Exactness contract: every raw distance d with d/max_len < budget must be
  // computed exactly. d < budget·max_len  ⇒  d <= max_dist below, so the
  // banded DP covers the entire sub-budget range.
  const size_t max_dist =
      static_cast<size_t>(std::ceil(budget * static_cast<double>(max_len)));
  // Cheap lower bounds first: O(1) length test, then O(|a|+|b|) character
  // bags. Either proving d > max_dist skips the DP entirely.
  size_t lb = LevenshteinLengthLowerBound(a, b);
  if (lb <= max_dist) {
    lb = std::max(lb, LevenshteinBagLowerBound(a, b));
  }
  if (lb > max_dist) {
    if (pruned != nullptr) *pruned = true;
    return 1.0;
  }
  size_t d = LevenshteinBounded(a, b, max_dist);
  if (d > max_dist) {
    if (pruned != nullptr) *pruned = true;
    return 1.0;
  }
  return static_cast<double>(d) / static_cast<double>(max_len);
}

BoundedStringDistanceFn MakeBoundedStringDistance(StringDistanceKind kind) {
  if (kind == StringDistanceKind::kNormalizedLevenshtein) {
    return [](std::string_view a, std::string_view b, double budget,
              bool* pruned) {
      return BoundedNormalizedLevenshtein(a, b, budget, pruned);
    };
  }
  StringDistanceFn plain = MakeStringDistance(kind);
  return [plain = std::move(plain)](std::string_view a, std::string_view b,
                                    double /*budget*/, bool* pruned) {
    if (pruned != nullptr) *pruned = false;
    return plain(a, b);
  };
}

std::string_view StringDistanceKindToString(StringDistanceKind kind) {
  switch (kind) {
    case StringDistanceKind::kNormalizedLevenshtein:
      return "levenshtein";
    case StringDistanceKind::kJaroWinkler:
      return "jaro-winkler";
    case StringDistanceKind::kNgramJaccard:
      return "ngram-jaccard";
    case StringDistanceKind::kTokenJaccard:
      return "token-jaccard";
  }
  return "unknown";
}

Result<StringDistanceKind> StringDistanceKindFromString(
    std::string_view name) {
  if (name == "levenshtein") return StringDistanceKind::kNormalizedLevenshtein;
  if (name == "jaro-winkler") return StringDistanceKind::kJaroWinkler;
  if (name == "ngram-jaccard") return StringDistanceKind::kNgramJaccard;
  if (name == "token-jaccard") return StringDistanceKind::kTokenJaccard;
  return Status::InvalidArgument("unknown string distance: " +
                                 std::string(name));
}

StringDistanceFn MakeStringDistance(StringDistanceKind kind) {
  switch (kind) {
    case StringDistanceKind::kNormalizedLevenshtein:
      return [](std::string_view a, std::string_view b) {
        return NormalizedLevenshtein(a, b);
      };
    case StringDistanceKind::kJaroWinkler:
      return [](std::string_view a, std::string_view b) {
        return 1.0 - JaroWinklerSimilarity(a, b);
      };
    case StringDistanceKind::kNgramJaccard:
      return [](std::string_view a, std::string_view b) {
        return 1.0 - NgramJaccard(a, b, 3);
      };
    case StringDistanceKind::kTokenJaccard:
      return [](std::string_view a, std::string_view b) {
        return 1.0 - TokenJaccard(a, b);
      };
  }
  return nullptr;
}

}  // namespace lakefuzz
