// Classic string similarity / distance functions.
//
// These serve two roles: (1) ablation baselines against embedding cosine in
// the ValueMatcher (paper implicitly compares embedding families only; we add
// the classic-similarity ablation), and (2) building blocks for the entity
// matcher. All "distance" functions return values in [0, 1] where 0 means
// identical, matching the cosine-distance convention of the matcher.
#ifndef LAKEFUZZ_TEXT_DISTANCE_H_
#define LAKEFUZZ_TEXT_DISTANCE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "util/result.h"

namespace lakefuzz {

/// Unit-cost edit distance (insert/delete/substitute). O(|a|·|b|) time,
/// O(min) space.
size_t Levenshtein(std::string_view a, std::string_view b);

/// Banded (Ukkonen) Levenshtein with early exit: returns the exact distance
/// when it is <= max_dist, otherwise max_dist + 1 as soon as every band cell
/// exceeds the budget. O((max_dist+1)·min(|a|,|b|)) time instead of the full
/// O(|a|·|b|) DP — the fast path the matcher uses to skip hopeless pairs.
size_t LevenshteinBounded(std::string_view a, std::string_view b,
                          size_t max_dist);

/// Length-difference lower bound: Levenshtein(a, b) >= ||a| - |b||. O(1).
size_t LevenshteinLengthLowerBound(std::string_view a, std::string_view b);

/// Bag-of-characters lower bound: ignoring positions, each character of `a`
/// missing from `b`'s multiset (and vice versa) needs its own edit.
/// O(|a| + |b|), no allocation; always >= the length bound's information on
/// substitution-heavy pairs.
size_t LevenshteinBagLowerBound(std::string_view a, std::string_view b);

/// Edit distance with adjacent transposition (optimal string alignment
/// variant of Damerau-Levenshtein).
size_t DamerauLevenshtein(std::string_view a, std::string_view b);

/// Levenshtein normalized to [0,1] by max length (0 = identical).
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// Jaro similarity in [0,1] (1 = identical).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity with standard prefix scale 0.1, prefix cap 4.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of the *sets* of character n-grams (1 = identical;
/// both empty → 1).
double NgramJaccard(std::string_view a, std::string_view b, size_t n = 3);

/// Dice coefficient of character bigram multisets.
double DiceBigram(std::string_view a, std::string_view b);

/// Jaccard similarity of word-token sets.
double TokenJaccard(std::string_view a, std::string_view b);

/// Named distance functions selectable in configs/benchmarks.
enum class StringDistanceKind {
  kNormalizedLevenshtein,
  kJaroWinkler,   ///< 1 - JaroWinklerSimilarity
  kNgramJaccard,  ///< 1 - NgramJaccard(3)
  kTokenJaccard,  ///< 1 - TokenJaccard
};

std::string_view StringDistanceKindToString(StringDistanceKind kind);
Result<StringDistanceKind> StringDistanceKindFromString(std::string_view name);

/// A [0,1] distance function over strings.
using StringDistanceFn =
    std::function<double(std::string_view, std::string_view)>;

/// Returns the distance function for `kind`.
StringDistanceFn MakeStringDistance(StringDistanceKind kind);

/// A threshold-aware [0,1] distance: must return the exact distance whenever
/// it is < `budget`; for hopeless pairs it may skip work and return any
/// value >= budget (1.0 by convention), setting *pruned. Callers that solve
/// unconstrained and filter afterwards should pass budget = 1.0 + eps to
/// keep every value exact.
using BoundedStringDistanceFn = std::function<double(
    std::string_view, std::string_view, double budget, bool* pruned)>;

/// NormalizedLevenshtein with the full pruning ladder: length lower bound →
/// bag-of-characters lower bound → banded DP with early exit. Exact below
/// `budget`; returns 1.0 with *pruned = true once any stage proves the
/// distance >= budget.
double BoundedNormalizedLevenshtein(std::string_view a, std::string_view b,
                                    double budget, bool* pruned);

/// Threshold-aware variant of MakeStringDistance. Levenshtein gets the
/// banded fast path above; the other kinds have no sub-quadratic band, so
/// they evaluate exactly and never prune.
BoundedStringDistanceFn MakeBoundedStringDistance(StringDistanceKind kind);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_TEXT_DISTANCE_H_
