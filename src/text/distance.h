// Classic string similarity / distance functions.
//
// These serve two roles: (1) ablation baselines against embedding cosine in
// the ValueMatcher (paper implicitly compares embedding families only; we add
// the classic-similarity ablation), and (2) building blocks for the entity
// matcher. All "distance" functions return values in [0, 1] where 0 means
// identical, matching the cosine-distance convention of the matcher.
#ifndef LAKEFUZZ_TEXT_DISTANCE_H_
#define LAKEFUZZ_TEXT_DISTANCE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "util/result.h"

namespace lakefuzz {

/// Unit-cost edit distance (insert/delete/substitute). O(|a|·|b|) time,
/// O(min) space.
size_t Levenshtein(std::string_view a, std::string_view b);

/// Edit distance with adjacent transposition (optimal string alignment
/// variant of Damerau-Levenshtein).
size_t DamerauLevenshtein(std::string_view a, std::string_view b);

/// Levenshtein normalized to [0,1] by max length (0 = identical).
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// Jaro similarity in [0,1] (1 = identical).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity with standard prefix scale 0.1, prefix cap 4.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of the *sets* of character n-grams (1 = identical;
/// both empty → 1).
double NgramJaccard(std::string_view a, std::string_view b, size_t n = 3);

/// Dice coefficient of character bigram multisets.
double DiceBigram(std::string_view a, std::string_view b);

/// Jaccard similarity of word-token sets.
double TokenJaccard(std::string_view a, std::string_view b);

/// Named distance functions selectable in configs/benchmarks.
enum class StringDistanceKind {
  kNormalizedLevenshtein,
  kJaroWinkler,   ///< 1 - JaroWinklerSimilarity
  kNgramJaccard,  ///< 1 - NgramJaccard(3)
  kTokenJaccard,  ///< 1 - TokenJaccard
};

std::string_view StringDistanceKindToString(StringDistanceKind kind);
Result<StringDistanceKind> StringDistanceKindFromString(std::string_view name);

/// A [0,1] distance function over strings.
using StringDistanceFn =
    std::function<double(std::string_view, std::string_view)>;

/// Returns the distance function for `kind`.
StringDistanceFn MakeStringDistance(StringDistanceKind kind);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_TEXT_DISTANCE_H_
