#include "text/normalize.h"

#include <cctype>

namespace lakefuzz {

std::string Normalize(std::string_view s, const NormalizeOptions& options) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c < 0x80) {
      if (options.strip_punctuation && std::ispunct(c)) continue;
      if (options.case_fold) c = static_cast<unsigned char>(std::tolower(c));
    }
    out.push_back(static_cast<char>(c));
  }
  if (options.collapse_whitespace) {
    std::string collapsed;
    collapsed.reserve(out.size());
    bool in_ws = false;
    for (unsigned char c : out) {
      if (c < 0x80 && std::isspace(c)) {
        in_ws = true;
        continue;
      }
      if (in_ws && !collapsed.empty()) collapsed.push_back(' ');
      in_ws = false;
      collapsed.push_back(static_cast<char>(c));
    }
    out = std::move(collapsed);
  }
  if (options.trim) {
    size_t b = 0;
    size_t e = out.size();
    while (b < e && std::isspace(static_cast<unsigned char>(out[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(out[e - 1]))) --e;
    out = out.substr(b, e - b);
  }
  return out;
}

std::string NormalizeForIdentity(std::string_view s) {
  NormalizeOptions opts;
  opts.strip_punctuation = false;
  return Normalize(s, opts);
}

}  // namespace lakefuzz
