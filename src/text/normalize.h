// Text normalization applied to cell values before similarity computation.
//
// Data lake values differ in case, punctuation, and spacing long before they
// differ semantically; every matcher in lakefuzz funnels values through here
// first so those trivial inconsistencies never reach the expensive stages.
#ifndef LAKEFUZZ_TEXT_NORMALIZE_H_
#define LAKEFUZZ_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace lakefuzz {

struct NormalizeOptions {
  bool case_fold = true;        ///< ASCII lowercase.
  bool strip_punctuation = true;///< Drop ASCII punctuation (keeps alnum/space).
  bool collapse_whitespace = true;  ///< Runs of whitespace → single space.
  bool trim = true;             ///< Remove leading/trailing whitespace.
};

/// Applies the enabled normalizations, in the order: case fold → punctuation
/// strip → whitespace collapse → trim. Bytes >= 0x80 pass through unchanged
/// (UTF-8 payloads are preserved, not folded).
std::string Normalize(std::string_view s,
                      const NormalizeOptions& options = NormalizeOptions());

/// Normalization preset used for *join-value identity* (the exact-match
/// pre-pass): case fold + trim + whitespace collapse, but punctuation kept —
/// "U.S." and "US" should count as fuzzy, not identical.
std::string NormalizeForIdentity(std::string_view s);

}  // namespace lakefuzz

#endif  // LAKEFUZZ_TEXT_NORMALIZE_H_
