#include "text/tokenize.h"

#include <cctype>

namespace lakefuzz {

std::vector<std::string> WordTokens(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  auto is_word = [](unsigned char c) {
    return c >= 0x80 || std::isalnum(c);
  };
  while (i < s.size()) {
    while (i < s.size() && !is_word(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && is_word(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> CharNgrams(std::string_view s, size_t n, bool pad) {
  std::vector<std::string> out;
  if (n == 0) return out;
  std::string framed;
  if (pad && n > 1) {
    framed.assign(n - 1, '\x01');
    framed.append(s);
    framed.append(n - 1, '\x01');
  } else {
    framed.assign(s);
  }
  if (framed.size() < n) {
    if (!framed.empty()) out.push_back(framed);
    return out;
  }
  out.reserve(framed.size() - n + 1);
  for (size_t i = 0; i + n <= framed.size(); ++i) {
    out.push_back(framed.substr(i, n));
  }
  return out;
}

std::vector<std::string> CharNgramRange(std::string_view s, size_t n_min,
                                        size_t n_max, bool pad) {
  std::vector<std::string> out;
  for (size_t n = n_min; n <= n_max; ++n) {
    auto grams = CharNgrams(s, n, pad);
    out.insert(out.end(), grams.begin(), grams.end());
  }
  return out;
}

}  // namespace lakefuzz
